#!/usr/bin/env bash
# Runs the analysis micro-benchmarks with -benchmem and records name,
# ns/op, and allocs/op in BENCH_PR10.json so the performance trajectory is
# tracked in-repo. BenchmarkFigure3Policy runs the Figure 3 sub-sweep once
# per replacement policy (lru, fifo, plru), so the JSON carries one row per
# policy; BenchmarkHierarchyFrontier runs the same sub-sweep with an L2
# behind every L1. Override the measurement length for a CI smoke run:
#
#   BENCHTIME=1x ./scripts/bench.sh
#
# COUNT > 1 runs each benchmark that many times and records the per-name
# minimum — the standard low-noise estimator on shared machines, where the
# minimum approaches the true cost and everything above it is interference.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
PATTERN="${PATTERN:-^(BenchmarkAnalyzeXFull|BenchmarkAnalyzeXIncremental|BenchmarkStateClone|BenchmarkStateJoin|BenchmarkFigure3|BenchmarkFigure3Policy|BenchmarkHierarchyFrontier)$}"
OUT="${OUT:-BENCH_PR10.json}"

raw=$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count="$COUNT" .)
echo "$raw"

echo "$raw" | awk '
  $1 ~ /^Benchmark/ && $NF == "allocs/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "" || allocs == "") next
    if (!(name in best)) order[++n] = name
    if (!(name in best) || ns + 0 < best[name] + 0) {
      best[name] = ns
      bestallocs[name] = allocs
    }
  }
  END {
    print "["
    for (i = 1; i <= n; i++) {
      name = order[i]
      printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
        name, best[name], bestallocs[name], (i < n ? "," : "")
    }
    print "]"
  }
' > "$OUT"
echo "wrote $OUT"
