#!/usr/bin/env bash
# Runs the analysis micro-benchmarks with -benchmem and records name,
# ns/op, and allocs/op in BENCH_PR3.json so the performance trajectory is
# tracked in-repo. BenchmarkFigure3Policy runs the Figure 3 sub-sweep once
# per replacement policy (lru, fifo, plru), so the JSON carries one row per
# policy. Override the measurement length for a CI smoke run:
#
#   BENCHTIME=1x ./scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
PATTERN="${PATTERN:-^(BenchmarkAnalyzeXFull|BenchmarkAnalyzeXIncremental|BenchmarkStateClone|BenchmarkStateJoin|BenchmarkFigure3|BenchmarkFigure3Policy)$}"
OUT="${OUT:-BENCH_PR3.json}"

raw=$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count=1 .)
echo "$raw"

echo "$raw" | awk '
  $1 ~ /^Benchmark/ && $NF == "allocs/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "" || allocs == "") next
    rows[++n] = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs)
  }
  END {
    print "["
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    print "]"
  }
' > "$OUT"
echo "wrote $OUT"
