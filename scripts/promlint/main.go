// Command promlint validates a Prometheus text exposition read from stdin
// against the invariants the obs renderer promises: HELP and TYPE precede
// every family's samples, no family appears twice, sample names match their
// family, label values are quoted and escaped, and values parse as numbers.
// CI pipes a live /metrics scrape through it.
//
// Usage:
//
//	curl -s localhost:8080/metrics | go run ./scripts/promlint
package main

import (
	"fmt"
	"os"

	"ucp/internal/obs"
)

func main() {
	if err := obs.Lint(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}
