package ucp

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`), plus the ablation studies
// DESIGN.md lists and micro-benchmarks of the analysis stack. The figure
// benches default to a representative sub-sweep so the whole suite finishes
// in minutes on one core; `cmd/ucp-bench -all` runs the full 37×36×2 sweep.

import (
	"context"
	"fmt"
	"io"
	"testing"

	"ucp/internal/absint"
	"ucp/internal/cache"
	"ucp/internal/core"
	"ucp/internal/energy"
	"ucp/internal/experiment"
	"ucp/internal/hwpref"
	"ucp/internal/ilp"
	"ucp/internal/ipet"
	"ucp/internal/isa"
	"ucp/internal/locking"
	"ucp/internal/malardalen"
	"ucp/internal/sim"
	"ucp/internal/vivu"
	"ucp/internal/wcet"
)

// benchPrograms is the representative program subset used by the figure
// benches: two giants, the unrolled DCTs, branchy codecs, and kernels.
var benchPrograms = []string{"adpcm", "compress", "crc", "fdct", "statemate"}

// benchConfigs samples the capacity ladder at both block sizes and all
// associativities: k1, k5, k9, k14, k27, k33.
var benchConfigs = []int{0, 4, 8, 13, 26, 32}

func benchSweep(b *testing.B, programs []string, configs []int, techs []energy.Tech) *experiment.Suite {
	b.Helper()
	var suite *experiment.Suite
	for i := 0; i < b.N; i++ {
		var err error
		suite, err = experiment.Run(experiment.Options{
			Programs:         programs,
			Configs:          configs,
			Techs:            techs,
			Runs:             1,
			ValidationBudget: 80,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return suite
}

// BenchmarkTable1Programs regenerates Table 1: the 37 benchmark programs.
func BenchmarkTable1Programs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		all := malardalen.All()
		if len(all) != 37 {
			b.Fatal("suite must hold 37 programs")
		}
	}
	experiment.Table1(io.Discard)
}

// BenchmarkTable2Configs regenerates Table 2: the 36 cache configurations.
func BenchmarkTable2Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(cache.Table2()) != 36 {
			b.Fatal("Table 2 must hold 36 configurations")
		}
	}
	experiment.Table2(io.Discard)
}

// BenchmarkFigure3 regenerates Figure 3: average improvement of energy,
// ACET and WCET per cache size.
func BenchmarkFigure3(b *testing.B) {
	suite := benchSweep(b, benchPrograms, benchConfigs, []energy.Tech{energy.Tech45})
	suite.Figure3(benchOut(b))
}

// BenchmarkFigure3Policy regenerates the Figure 3 sub-sweep once per cache
// replacement policy, so the cost of the policy-generic analysis seam is
// tracked per policy (BENCH_PR3.json): LRU runs the exact classical
// transfers, FIFO and PLRU the conservative ones of DESIGN.md §9.
func BenchmarkFigure3Policy(b *testing.B) {
	for _, pol := range cache.Policies() {
		b.Run(pol.String(), func(b *testing.B) {
			var suite *experiment.Suite
			for i := 0; i < b.N; i++ {
				var err error
				suite, err = experiment.Run(experiment.Options{
					Programs:         benchPrograms,
					Configs:          benchConfigs,
					Techs:            []energy.Tech{energy.Tech45},
					Policy:           pol,
					Runs:             1,
					ValidationBudget: 80,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			suite.Figure3(benchOut(b))
		})
	}
}

// BenchmarkHierarchyFrontier regenerates the hierarchy frontier: the
// Figure 3 sub-sweep with an 8KB L2 behind every L1 (BENCH_PR8.json), so
// the cost of the two-level analysis stack — per-level abstract
// interpretation, three-outcome pricing, the L2 candidate phase — is
// tracked next to the single-level sweep it extends.
func BenchmarkHierarchyFrontier(b *testing.B) {
	var suite *experiment.Suite
	for i := 0; i < b.N; i++ {
		var err error
		suite, err = experiment.Run(experiment.Options{
			Programs:         benchPrograms,
			Configs:          benchConfigs,
			Techs:            []energy.Tech{energy.Tech45},
			L2:               cache.Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 8192},
			Runs:             1,
			ValidationBudget: 80,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	suite.HierarchyFrontier(benchOut(b))
}

// BenchmarkFigure4 regenerates Figure 4: the miss-rate impact per cache
// size.
func BenchmarkFigure4(b *testing.B) {
	suite := benchSweep(b, benchPrograms, benchConfigs, []energy.Tech{energy.Tech45})
	suite.Figure4(benchOut(b))
}

// BenchmarkFigure5 regenerates Figure 5: the optimized binary on half and
// quarter capacity versus the original on the full capacity.
func BenchmarkFigure5(b *testing.B) {
	suite := benchSweep(b, benchPrograms, []int{13, 21, 26, 32}, []energy.Tech{energy.Tech45})
	suite.Figure5(benchOut(b))
}

// BenchmarkFigure7 regenerates Figure 7: the per-use-case WCET ratio at
// 32nm (Inequation 12) — the Theorem-1 guarantee made visible.
func BenchmarkFigure7(b *testing.B) {
	suite := benchSweep(b, benchPrograms, benchConfigs, []energy.Tech{energy.Tech32})
	for _, c := range suite.Cells {
		if c.TauOpt > c.TauOrig {
			b.Fatalf("WCET regression at %s/%s — Theorem 1 violated", c.Program, c.ConfigID)
		}
	}
	suite.Figure7(benchOut(b))
}

// BenchmarkFigure8 regenerates Figure 8: the executed-instruction ratio.
func BenchmarkFigure8(b *testing.B) {
	suite := benchSweep(b, benchPrograms, benchConfigs, []energy.Tech{energy.Tech45})
	suite.Figure8(benchOut(b))
}

// BenchmarkAblationHardwarePrefetch compares the hardware prefetching
// mechanisms of Section 2 against on-demand fetching and the paper's
// software approach on one mid-pressure cell.
func BenchmarkAblationHardwarePrefetch(b *testing.B) {
	prog, _ := malardalen.ByName("fdct")
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	mdl := energy.NewModel(cfg, energy.Tech45)
	par := mdl.WCETParams()
	out := benchOut(b)
	for i := 0; i < b.N; i++ {
		base := sim.Run(prog.Prog, cfg, sim.Options{Par: par, Runs: 1, Seed: 3})
		fmt.Fprintf(out, "%-18s missrate=%5.2f%% dram=%d\n", "on-demand", 100*base.MissRate(), base.DRAMReads)
		for _, hw := range hwpref.All() {
			s := sim.Run(prog.Prog, cfg, sim.Options{Par: par, Runs: 1, Seed: 3, HW: hw})
			fmt.Fprintf(out, "%-18s missrate=%5.2f%% dram=%d\n", hw.Name(), 100*s.MissRate(), s.DRAMReads)
		}
		opt, _, err := core.Optimize(context.Background(), prog.Prog, cfg, core.Options{Par: par, ValidationBudget: 120})
		if err != nil {
			b.Fatal(err)
		}
		s := sim.Run(opt, cfg, sim.Options{Par: par, Runs: 1, Seed: 3})
		fmt.Fprintf(out, "%-18s missrate=%5.2f%% dram=%d\n", "sw-prefetch (ours)", 100*s.MissRate(), s.DRAMReads)
	}
}

// BenchmarkAblationLocking contrasts static cache locking with the unlocked
// prefetching approach: the energy-for-predictability trade of Section 2.2.
func BenchmarkAblationLocking(b *testing.B) {
	prog, _ := malardalen.ByName("adpcm")
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	mdl := energy.NewModel(cfg, energy.Tech32)
	par := mdl.WCETParams()
	out := benchOut(b)
	for i := 0; i < b.N; i++ {
		sel, err := locking.Select(context.Background(), prog.Prog, cfg, par)
		if err != nil {
			b.Fatal(err)
		}
		locked := sim.Run(prog.Prog, cfg, sim.Options{Par: par, Runs: 1, Seed: 3, Locked: sel.Blocks})
		unlocked := sim.Run(prog.Prog, cfg, sim.Options{Par: par, Runs: 1, Seed: 3})
		eL := mdl.Energy(locked.Account()).TotalPJ()
		eU := mdl.Energy(unlocked.Account()).TotalPJ()
		fmt.Fprintf(out, "locked:   acet=%d energy=%.0fnJ (bound %d, exact)\n", locked.Cycles, eL/1e3, sel.TauW)
		fmt.Fprintf(out, "unlocked: acet=%d energy=%.0fnJ\n", unlocked.Cycles, eU/1e3)
	}
}

// BenchmarkAblationCriterion disables individual pieces of the joint
// improvement criterion (Section 4.3) on one cell and reports the effect.
func BenchmarkAblationCriterion(b *testing.B) {
	prog, _ := malardalen.ByName("fdct")
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	par := energy.NewModel(cfg, energy.Tech45).WCETParams()
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"full-criterion", core.Options{Par: par, ValidationBudget: 120}},
		{"no-effectiveness", core.Options{Par: par, ValidationBudget: 80, DisableEffectiveness: true}},
		{"no-miss-check", core.Options{Par: par, ValidationBudget: 80, DisableMissCheck: true}},
		{"pad-to-block", core.Options{Par: par, ValidationBudget: 80, PadToBlock: true}},
		{"no-validation", core.Options{Par: par, MaxInsertions: 40, DisableValidation: true}},
	}
	out := benchOut(b)
	for i := 0; i < b.N; i++ {
		for _, v := range variants {
			_, rep, err := core.Optimize(context.Background(), prog.Prog, cfg, v.opt)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Fprintf(out, "%-17s ins=%-3d τ %d->%d misses %d->%d\n",
				v.name, rep.Inserted, rep.TauBefore, rep.TauAfter, rep.MissesBefore, rep.MissesAfter)
		}
	}
}

// benchOut prints the regenerated series once (on the verbose first
// iteration) and discards repeats.
func benchOut(b *testing.B) io.Writer {
	if testing.Verbose() {
		return testingWriter{b}
	}
	return io.Discard
}

type testingWriter struct{ b *testing.B }

func (w testingWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// --- micro-benchmarks of the analysis stack ---

func BenchmarkVIVUExpand(b *testing.B) {
	p, _ := malardalen.ByName("statemate")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := vivu.Expand(p.Prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAbstractInterpretation(b *testing.B) {
	p, _ := malardalen.ByName("statemate")
	x, err := vivu.Expand(p.Prog)
	if err != nil {
		b.Fatal(err)
	}
	lay := isa.NewLayout(p.Prog)
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		absint.Analyze(context.Background(), x, lay, cfg, 16)
	}
}

// BenchmarkAnalyzeXFull measures one from-scratch analysis of the mutated
// program — the cost every validation paid before incremental re-validation.
func BenchmarkAnalyzeXFull(b *testing.B) {
	p, _ := malardalen.ByName("statemate")
	prog := p.Prog.Clone()
	x, err := vivu.Expand(prog)
	if err != nil {
		b.Fatal(err)
	}
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	par := wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wcet.AnalyzeX(context.Background(), x, cfg, par); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIncrementalAnchor picks the insertion anchor the incremental
// benchmark toggles a prefetch at: the middle block of the program, so
// roughly half the layout shifts per mutation — the average case for the
// optimizer's trial insertions.
func benchIncrementalAnchor(prog *isa.Program) isa.InstrRef {
	b := prog.Blocks[len(prog.Blocks)/2]
	for len(b.Instrs) < 2 {
		b = prog.Blocks[(b.ID+1)%len(prog.Blocks)]
	}
	return isa.InstrRef{Block: b.ID, Index: len(b.Instrs) - 2}
}

// BenchmarkAnalyzeXIncremental measures the optimizer's steady state: each
// iteration mutates the program (toggling a prefetch at a mid-program
// anchor, shifting half the layout) and re-validates with AnalyzeXFrom
// seeded from the previous result.
func BenchmarkAnalyzeXIncremental(b *testing.B) {
	p, _ := malardalen.ByName("statemate")
	prog := p.Prog.Clone()
	x, err := vivu.Expand(prog)
	if err != nil {
		b.Fatal(err)
	}
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	par := wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 16}
	anchor := benchIncrementalAnchor(prog)
	target := isa.InstrRef{Block: prog.Blocks[0].ID, Index: 0}
	prev, err := wcet.AnalyzeX(context.Background(), x, cfg, par)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			prog.InsertInstr(anchor, isa.Instr{Kind: isa.KindPrefetch, Target: target})
		} else {
			prog.RemoveInstr(anchor)
		}
		prev, err = wcet.AnalyzeXFrom(context.Background(), x, cfg, par, prev)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// densestState returns the converged in-state with the most entries — the
// worst case for Clone and Join.
func densestState(res *absint.Result) *absint.State {
	var best *absint.State
	bestN := -1
	for _, st := range res.In {
		if st == nil {
			continue
		}
		if n := st.Entries(); n > bestN {
			best, bestN = st, n
		}
	}
	return best
}

func BenchmarkStateClone(b *testing.B) {
	p, _ := malardalen.ByName("statemate")
	x, err := vivu.Expand(p.Prog)
	if err != nil {
		b.Fatal(err)
	}
	lay := isa.NewLayout(p.Prog)
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	res, err := absint.Analyze(context.Background(), x, lay, cfg, 16)
	if err != nil {
		b.Fatal(err)
	}
	st := densestState(res)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Clone()
	}
}

func BenchmarkStateJoin(b *testing.B) {
	p, _ := malardalen.ByName("statemate")
	x, err := vivu.Expand(p.Prog)
	if err != nil {
		b.Fatal(err)
	}
	lay := isa.NewLayout(p.Prog)
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	res, err := absint.Analyze(context.Background(), x, lay, cfg, 16)
	if err != nil {
		b.Fatal(err)
	}
	a := densestState(res)
	c := res.In[x.Entry]
	for _, st := range res.In {
		if st != nil && st != a {
			c = st
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		absint.Join(a, c)
	}
}

func BenchmarkWCETStructural(b *testing.B) {
	p, _ := malardalen.ByName("statemate")
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	par := wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wcet.Analyze(context.Background(), p.Prog, cfg, par); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIPETILP(b *testing.B) {
	p, _ := malardalen.ByName("ludcmp")
	par := wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 16}
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	res, err := wcet.Analyze(context.Background(), p.Prog, cfg, par)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := ipet.BuildExtra(res.X, res.Cost, res.Extra)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexLP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := ilp.NewProblem(40)
		for v := 0; v < 40; v++ {
			p.Objective[v] = float64(1 + v%7)
			p.Le(map[int]float64{v: 1}, 10, "box")
		}
		for r := 0; r < 20; r++ {
			co := map[int]float64{}
			for v := r; v < 40; v += 5 {
				co[v] = float64(1 + (r+v)%3)
			}
			p.Le(co, float64(25+r), "row")
		}
		if _, err := p.SolveLP(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeMid(b *testing.B) {
	p, _ := malardalen.ByName("fdct")
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	par := energy.NewModel(cfg, energy.Tech45).WCETParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Optimize(context.Background(), p.Prog, cfg, core.Options{Par: par, ValidationBudget: 120}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator(b *testing.B) {
	p, _ := malardalen.ByName("adpcm")
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	par := wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 16}
	b.ReportAllocs()
	var fetches int64
	for i := 0; i < b.N; i++ {
		s := sim.Run(p.Prog, cfg, sim.Options{Par: par, Runs: 1, Seed: int64(i)})
		fetches += s.Fetches
	}
	b.ReportMetric(float64(fetches)/float64(b.N), "fetches/run")
}

func BenchmarkConcreteCache(b *testing.B) {
	st := cache.NewState(cache.Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 4096})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Access(uint64(i*7) % 1024)
	}
}
