package cliutil

import (
	"testing"

	"ucp/internal/cache"
	"ucp/internal/energy"
)

func TestConfig(t *testing.T) {
	i, err := Config("k1")
	if err != nil || i != 0 {
		t.Fatalf("k1 -> %d, %v", i, err)
	}
	i, err = Config("k36")
	if err != nil || i != 35 {
		t.Fatalf("k36 -> %d, %v", i, err)
	}
	if _, err := Config("k37"); err == nil {
		t.Fatal("k37 must be rejected")
	}
	if _, err := Config("bogus"); err == nil {
		t.Fatal("bogus label must be rejected")
	}
}

func TestTech(t *testing.T) {
	for _, s := range []string{"45nm", "45"} {
		if tech, err := Tech(s); err != nil || tech != energy.Tech45 {
			t.Fatalf("Tech(%q) = %v, %v", s, tech, err)
		}
	}
	if tech, err := Tech("32nm"); err != nil || tech != energy.Tech32 {
		t.Fatalf("Tech(32nm) = %v, %v", tech, err)
	}
	if _, err := Tech("28nm"); err == nil {
		t.Fatal("28nm must be rejected")
	}
}

func TestBenchmark(t *testing.T) {
	b, err := Benchmark("crc")
	if err != nil || b.Name != "crc" {
		t.Fatalf("Benchmark(crc) = %v, %v", b.Name, err)
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Fatal("unknown benchmark must be rejected")
	}
}

func TestLists(t *testing.T) {
	if l, err := ConfigList("all"); err != nil || l != nil {
		t.Fatal("all must map to nil (no restriction)")
	}
	l, err := ConfigList("k1, k5 ,12")
	if err != nil || len(l) != 3 || l[0] != 0 || l[1] != 4 || l[2] != 11 {
		t.Fatalf("ConfigList = %v, %v", l, err)
	}
	if _, err := ConfigList("k1,zap"); err == nil {
		t.Fatal("bad config entry must be rejected")
	}
	p, err := ProgramList("crc, fdct")
	if err != nil || len(p) != 2 {
		t.Fatalf("ProgramList = %v, %v", p, err)
	}
	if _, err := ProgramList("crc,ghost"); err == nil {
		t.Fatal("bad program entry must be rejected")
	}
	ts, err := TechList("45nm,32nm")
	if err != nil || len(ts) != 2 {
		t.Fatalf("TechList = %v, %v", ts, err)
	}
	if _, err := TechList("45nm,90nm"); err == nil {
		t.Fatal("bad tech entry must be rejected")
	}
}

func TestPolicy(t *testing.T) {
	for in, want := range map[string]cache.Policy{
		"": cache.LRU, "lru": cache.LRU, " FIFO ": cache.FIFO, "Plru": cache.PLRU,
	} {
		got, err := Policy(in)
		if err != nil || got != want {
			t.Errorf("Policy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := Policy("mru"); err == nil {
		t.Fatal("unknown policy must be rejected")
	}

	ps, err := PolicyList("lru,fifo,plru")
	if err != nil || len(ps) != 3 || ps[1] != cache.FIFO {
		t.Fatalf("PolicyList = %v, %v", ps, err)
	}
	if ps, err := PolicyList("all"); err != nil || ps != nil {
		t.Fatalf(`PolicyList("all") = %v, %v; want nil (full axis)`, ps, err)
	}
	if _, err := PolicyList("lru,bogus"); err == nil {
		t.Fatal("bad policy entry must be rejected")
	}
}
