// Package cliutil holds the small argument parsers shared by the command
// line tools: configuration labels (k1..k36), technology names, and
// benchmark lookups with helpful error messages.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ucp/internal/cache"
	"ucp/internal/energy"
	"ucp/internal/isa"
	"ucp/internal/malardalen"
)

// Config resolves a Table 2 label (k1..k36) to its index.
func Config(label string) (int, error) {
	for i := range cache.Table2() {
		if cache.ConfigID(i) == label {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown configuration %q (want k1..k36)", label)
}

// Policy resolves a replacement-policy name ("" or "lru", "fifo", "plru").
func Policy(s string) (cache.Policy, error) {
	return cache.ParsePolicy(strings.ToLower(strings.TrimSpace(s)))
}

// PolicyList parses a comma-separated policy list, or "all".
func PolicyList(s string) ([]cache.Policy, error) {
	if s == "" || s == "all" {
		return nil, nil
	}
	var out []cache.Policy
	for _, part := range strings.Split(s, ",") {
		p, err := Policy(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// L2Flags registers the -l2-assoc, -l2-block-bytes, -l2-capacity-bytes and
// -l2-policy flags on fs (the default command-line set when nil) and returns
// a resolver to call after flag parsing. Leaving every flag at its default
// resolves to the zero Config — the single-level marker every layer treats
// as "no L2"; setting any geometry flag requires all three.
func L2Flags(fs *flag.FlagSet) func() (cache.Config, error) {
	if fs == nil {
		fs = flag.CommandLine
	}
	assoc := fs.Int("l2-assoc", 0, "L2 associativity (0 = no L2; the three l2 geometry flags go together)")
	block := fs.Int("l2-block-bytes", 0, "L2 block size in bytes (a multiple of the L1's)")
	capacity := fs.Int("l2-capacity-bytes", 0, "L2 capacity in bytes (at least the L1's)")
	policy := fs.String("l2-policy", "", "L2 replacement policy: lru, fifo, or plru (default lru)")
	return func() (cache.Config, error) {
		if *assoc == 0 && *block == 0 && *capacity == 0 && *policy == "" {
			return cache.Config{}, nil
		}
		if *assoc <= 0 || *block <= 0 || *capacity <= 0 {
			return cache.Config{}, fmt.Errorf("an L2 needs -l2-assoc, -l2-block-bytes and -l2-capacity-bytes together")
		}
		pol, err := Policy(*policy)
		if err != nil {
			return cache.Config{}, fmt.Errorf("l2: %v", err)
		}
		cfg := cache.Config{Assoc: *assoc, BlockBytes: *block, CapacityBytes: *capacity, Policy: pol}
		if err := cfg.Valid(); err != nil {
			return cache.Config{}, fmt.Errorf("l2: %v", err)
		}
		return cfg, nil
	}
}

// L2Geometry parses an "ASSOCxBLOCKxCAPACITY[:policy]" L2 description, e.g.
// "4x32x8192" or "2x64x16384:fifo". The empty string and "none" are the
// single-level marker and yield the zero Config.
func L2Geometry(s string) (cache.Config, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return cache.Config{}, nil
	}
	geom, polName, _ := strings.Cut(s, ":")
	parts := strings.Split(geom, "x")
	if len(parts) != 3 {
		return cache.Config{}, fmt.Errorf("bad L2 geometry %q (want ASSOCxBLOCKxCAPACITY[:policy] or none)", s)
	}
	var dims [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return cache.Config{}, fmt.Errorf("bad L2 geometry %q: %q is not a positive integer", s, p)
		}
		dims[i] = n
	}
	pol, err := Policy(polName)
	if err != nil {
		return cache.Config{}, fmt.Errorf("l2 %q: %v", s, err)
	}
	cfg := cache.Config{Assoc: dims[0], BlockBytes: dims[1], CapacityBytes: dims[2], Policy: pol}
	if err := cfg.Valid(); err != nil {
		return cache.Config{}, fmt.Errorf("l2 %q: %v", s, err)
	}
	return cfg, nil
}

// L2GeometryList parses a comma-separated list of L2 geometries — a
// hierarchy sweep axis. "none" entries select a single-level cell, so
// "none,4x32x8192" sweeps L1-only against L1+L2.
func L2GeometryList(s string) ([]cache.Config, error) {
	if s == "" {
		return nil, nil
	}
	var out []cache.Config
	for _, part := range strings.Split(s, ",") {
		cfg, err := L2Geometry(part)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

// Tech resolves a technology name.
func Tech(s string) (energy.Tech, error) {
	switch s {
	case "45nm", "45":
		return energy.Tech45, nil
	case "32nm", "32":
		return energy.Tech32, nil
	}
	return 0, fmt.Errorf("unknown technology %q (want 45nm or 32nm)", s)
}

// ConfigTech resolves the (configuration label, technology name) pair the
// single-shot CLI tools all take, returning the Table 2 index, the
// concrete configuration, and the technology node.
func ConfigTech(config, tech string) (int, cache.Config, energy.Tech, error) {
	ci, err := Config(config)
	if err != nil {
		return 0, cache.Config{}, 0, err
	}
	tn, err := Tech(tech)
	if err != nil {
		return 0, cache.Config{}, 0, err
	}
	return ci, cache.Table2()[ci], tn, nil
}

// Benchmark resolves a benchmark by name.
func Benchmark(name string) (malardalen.Benchmark, error) {
	b, ok := malardalen.ByName(name)
	if !ok {
		return malardalen.Benchmark{}, fmt.Errorf("unknown program %q; known: %s",
			name, strings.Join(malardalen.Names(), " "))
	}
	return b, nil
}

// ConfigList parses a comma-separated list of k-labels, or "all".
func ConfigList(s string) ([]int, error) {
	if s == "" || s == "all" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if i, err := Config(part); err == nil {
			out = append(out, i)
			continue
		}
		// Also accept bare indices 1..36.
		if n, err := strconv.Atoi(part); err == nil && n >= 1 && n <= len(cache.Table2()) {
			out = append(out, n-1)
			continue
		}
		return nil, fmt.Errorf("bad configuration %q", part)
	}
	return out, nil
}

// ProgramList parses a comma-separated benchmark list, or "all".
func ProgramList(s string) ([]string, error) {
	if s == "" || s == "all" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if _, ok := malardalen.ByName(part); !ok {
			return nil, fmt.Errorf("unknown program %q", part)
		}
		out = append(out, part)
	}
	return out, nil
}

// TechList parses a comma-separated technology list, or "all".
func TechList(s string) ([]energy.Tech, error) {
	if s == "" || s == "all" {
		return nil, nil
	}
	var out []energy.Tech
	for _, part := range strings.Split(s, ",") {
		t, err := Tech(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// LoadProgram resolves a program argument: a path to a textual program file
// (see isa.ParseAsm) when it names a readable file, otherwise a benchmark
// name from the suite.
func LoadProgram(arg string) (*isa.Program, string, error) {
	if f, err := os.Open(arg); err == nil {
		defer f.Close()
		p, err := isa.ParseAsm(f)
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", arg, err)
		}
		if err := isa.Validate(p); err != nil {
			return nil, "", fmt.Errorf("%s: %w", arg, err)
		}
		return p, p.Name + " (from " + arg + ")", nil
	}
	b, err := Benchmark(arg)
	if err != nil {
		return nil, "", err
	}
	return b.Prog, b.Name + " (" + b.ID + ")", nil
}
