package cliutil

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"ucp/internal/obs"
)

// PrintSpanTree renders a span tree indented on w, attributes sorted so
// the output is stable. Shared by the CLI tools' -trace flags (ucp-wcet,
// ucp-opt); the same trees feed ?trace=1 responses in ucp-serve.
func PrintSpanTree(w io.Writer, t *obs.SpanTree, depth int) {
	fmt.Fprintf(w, "%s%-16s %8.3fms", strings.Repeat("  ", depth), t.Name,
		float64(t.DurationUS)/1000)
	keys := make([]string, 0, len(t.Attrs))
	for k := range t.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %s=%v", k, t.Attrs[k])
	}
	if t.Dropped > 0 {
		fmt.Fprintf(w, "  dropped_children=%d", t.Dropped)
	}
	fmt.Fprintln(w)
	for _, c := range t.Children {
		PrintSpanTree(w, c, depth+1)
	}
}

// SaveTrace appends one span tree to the durable trace sink at dir,
// creating the sink if needed. It is the one-shot variant of ucp-serve's
// long-lived -trace-dir sink, used by the batch CLIs (ucp-bench, ucp-wcet,
// ucp-opt) where the process writes a single trace and exits.
func SaveTrace(dir, id string, t *obs.SpanTree) error {
	if dir == "" || t == nil {
		return nil
	}
	sink, err := obs.OpenSink(dir, 0)
	if err != nil {
		return err
	}
	werr := sink.WriteTrace(context.Background(), id, t)
	if cerr := sink.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
