package cfg

import (
	"testing"
	"testing/quick"
)

// diamond: 0 -> 1,2 -> 3
func diamond() Graph {
	return Graph{Succs: [][]int{{1, 2}, {3}, {3}, {}}, Entry: 0}
}

// loopGraph: 0 -> 1(head) -> 2(body) -> 1, 1 -> 3(exit)
func loopGraph() Graph {
	return Graph{Succs: [][]int{{1}, {2, 3}, {1}, {}}, Entry: 0}
}

func TestReversePostorderDiamond(t *testing.T) {
	rpo := ReversePostorder(diamond())
	if rpo[0] != 0 || rpo[len(rpo)-1] != 3 {
		t.Fatalf("rpo = %v", rpo)
	}
	pos := map[int]int{}
	for i, v := range rpo {
		pos[v] = i
	}
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Fatalf("rpo %v is not topological", rpo)
	}
}

func TestTopologicalRejectsCycles(t *testing.T) {
	if _, err := Topological(loopGraph()); err == nil {
		t.Fatal("expected cycle error")
	}
	order, err := Topological(diamond())
	if err != nil {
		t.Fatalf("Topological: %v", err)
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	idom := Dominators(diamond())
	want := []int{0, 0, 0, 0}
	for v, w := range want {
		if idom[v] != w {
			t.Fatalf("idom[%d] = %d, want %d (all %v)", v, idom[v], w, idom)
		}
	}
	if !Dominates(idom, 0, 3) {
		t.Fatal("entry must dominate the sink")
	}
	if Dominates(idom, 1, 3) {
		t.Fatal("side of a diamond must not dominate the join")
	}
}

func TestDominatorsLoop(t *testing.T) {
	idom := Dominators(loopGraph())
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 1 {
		t.Fatalf("idom = %v", idom)
	}
	if !IsBackEdge(idom, 2, 1) {
		t.Fatal("2->1 should be a back edge")
	}
	if IsBackEdge(idom, 1, 2) {
		t.Fatal("1->2 should not be a back edge")
	}
}

func TestFindLoopsSimple(t *testing.T) {
	loops := FindLoops(loopGraph())
	if len(loops) != 1 {
		t.Fatalf("loops = %v", loops)
	}
	l := loops[0]
	if l.Head != 1 {
		t.Fatalf("head = %d", l.Head)
	}
	if len(l.Blocks) != 2 || l.Blocks[0] != 1 || l.Blocks[1] != 2 {
		t.Fatalf("blocks = %v", l.Blocks)
	}
	if len(l.Latches) != 1 || l.Latches[0] != 2 {
		t.Fatalf("latches = %v", l.Latches)
	}
}

func TestFindLoopsNested(t *testing.T) {
	// 0 -> 1(outer head) -> 2(inner head) -> 3(inner body) -> 2; 2 -> 4 -> 1; 1 -> 5
	g := Graph{Succs: [][]int{{1}, {2, 5}, {3, 4}, {2}, {1}, {}}, Entry: 0}
	loops := FindLoops(g)
	if len(loops) != 2 {
		t.Fatalf("loops = %+v", loops)
	}
	if loops[0].Head != 1 || loops[1].Head != 2 {
		t.Fatalf("heads = %d,%d", loops[0].Head, loops[1].Head)
	}
	// Inner loop {2,3} must be a subset of outer loop {1,2,3,4}.
	outer := map[int]bool{}
	for _, b := range loops[0].Blocks {
		outer[b] = true
	}
	for _, b := range loops[1].Blocks {
		if !outer[b] {
			t.Fatalf("inner block %d outside outer loop %v", b, loops[0].Blocks)
		}
	}
}

func TestPredsInvertsSuccs(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		n := 8
		g := Graph{Succs: make([][]int, n), Entry: 0}
		for _, e := range raw {
			u, v := int(e[0])%n, int(e[1])%n
			g.Succs[u] = append(g.Succs[u], v)
		}
		preds := g.Preds()
		// Every edge present exactly as often in both directions.
		count := func(list []int, v int) int {
			c := 0
			for _, x := range list {
				if x == v {
					c++
				}
			}
			return c
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if count(g.Succs[u], v) != count(preds[v], u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: reverse postorder of an acyclic graph is a topological order.
func TestReversePostorderTopologicalProperty(t *testing.T) {
	f := func(raw [][2]uint8) bool {
		n := 10
		g := Graph{Succs: make([][]int, n), Entry: 0}
		for _, e := range raw {
			u, v := int(e[0])%n, int(e[1])%n
			if u < v { // forward edges only: guarantees acyclicity
				g.Succs[u] = append(g.Succs[u], v)
			}
		}
		rpo := ReversePostorder(g)
		pos := map[int]int{}
		for i, v := range rpo {
			pos[v] = i
		}
		for u, ss := range g.Succs {
			if _, ok := pos[u]; !ok {
				continue
			}
			for _, v := range ss {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dominator array computed by the iterative algorithm agrees with
// a brute-force definition (v dominates w iff removing v disconnects w from
// the entry) on small random graphs.
func TestDominatorsAgainstBruteForce(t *testing.T) {
	f := func(raw [][2]uint8) bool {
		n := 7
		g := Graph{Succs: make([][]int, n), Entry: 0}
		for _, e := range raw {
			u, v := int(e[0])%n, int(e[1])%n
			g.Succs[u] = append(g.Succs[u], v)
		}
		idom := Dominators(g)

		reachableWithout := func(skip int) []bool {
			seen := make([]bool, n)
			if skip == 0 {
				return seen
			}
			seen[0] = true
			stack := []int{0}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, v := range g.Succs[u] {
					if v != skip && !seen[v] {
						seen[v] = true
						stack = append(stack, v)
					}
				}
			}
			return seen
		}
		reach := reachableWithout(-1)
		for v := 0; v < n; v++ {
			if !reach[v] {
				continue
			}
			for w := 0; w < n; w++ {
				if !reach[w] || v == w {
					continue
				}
				brute := !reachableWithout(v)[w] // v dominates w
				if Dominates(idom, v, w) != brute {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologicalIgnoresUnreachable(t *testing.T) {
	// Vertex 3 unreachable: order covers only the reachable part.
	g := Graph{Succs: [][]int{{1}, {2}, {}, {2}}, Entry: 0}
	order, err := Topological(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v, want 3 reachable vertices", order)
	}
}

func TestFindLoopsSharedHeaderMerges(t *testing.T) {
	// Two back edges into the same header: one merged loop.
	g := Graph{Succs: [][]int{{1}, {2, 3}, {1}, {1, 4}, {}}, Entry: 0}
	loops := FindLoops(g)
	if len(loops) != 1 {
		t.Fatalf("loops = %+v, want one merged loop", loops)
	}
	if len(loops[0].Latches) != 2 {
		t.Fatalf("latches = %v, want 2", loops[0].Latches)
	}
}

func TestDominatesReflexive(t *testing.T) {
	idom := Dominators(diamond())
	for v := 0; v < 4; v++ {
		if !Dominates(idom, v, v) {
			t.Fatalf("%d must dominate itself", v)
		}
	}
}
