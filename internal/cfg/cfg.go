// Package cfg provides the control-flow graph algorithms the analysis
// pipeline is built on: reverse postorder, topological sorting, dominator
// trees, and natural-loop discovery. The algorithms are generic over an
// adjacency-list representation so they serve both the original program CFG
// and the VIVU-expanded graph.
package cfg

import (
	"fmt"
	"sort"
)

// Graph is a directed graph in adjacency-list form: Succs[v] lists the
// successors of vertex v. Vertices are 0..N-1 and Entry is the unique start
// vertex.
type Graph struct {
	Succs [][]int
	Entry int
}

// N returns the number of vertices.
func (g Graph) N() int { return len(g.Succs) }

// Preds computes the predecessor lists of g.
func (g Graph) Preds() [][]int {
	preds := make([][]int, g.N())
	for v, ss := range g.Succs {
		for _, s := range ss {
			preds[s] = append(preds[s], v)
		}
	}
	return preds
}

// ReversePostorder returns the vertices reachable from the entry in reverse
// postorder of a depth-first search. For a DAG this is a topological order;
// for a cyclic graph it is the canonical iteration order for forward
// dataflow fixpoints.
func ReversePostorder(g Graph) []int {
	seen := make([]bool, g.N())
	post := make([]int, 0, g.N())
	var dfs func(v int)
	dfs = func(v int) {
		seen[v] = true
		for _, s := range g.Succs[v] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, v)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Topological returns a topological order of the reachable vertices and
// fails if the reachable subgraph contains a cycle.
func Topological(g Graph) ([]int, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, g.N())
	post := make([]int, 0, g.N())
	var dfs func(v int) error
	dfs = func(v int) error {
		color[v] = grey
		for _, s := range g.Succs[v] {
			switch color[s] {
			case grey:
				return fmt.Errorf("cfg: cycle through vertex %d", s)
			case white:
				if err := dfs(s); err != nil {
					return err
				}
			}
		}
		color[v] = black
		post = append(post, v)
		return nil
	}
	if err := dfs(g.Entry); err != nil {
		return nil, err
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post, nil
}

// Dominators computes the immediate-dominator array of g using the
// Cooper–Harvey–Kennedy iterative algorithm. idom[Entry] = Entry; vertices
// unreachable from the entry get idom -1.
func Dominators(g Graph) []int {
	rpo := ReversePostorder(g)
	order := make([]int, g.N()) // order[v] = position of v in rpo
	for i := range order {
		order[i] = -1
	}
	for i, v := range rpo {
		order[v] = i
	}
	preds := g.Preds()
	idom := make([]int, g.N())
	for i := range idom {
		idom[i] = -1
	}
	idom[g.Entry] = g.Entry

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, v := range rpo {
			if v == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[v] {
				if order[p] < 0 || idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given the immediate-dominator
// array produced by Dominators.
func Dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		if b == idom[b] || idom[b] == -1 {
			return false
		}
		b = idom[b]
	}
}

// NaturalLoop describes one natural loop discovered by FindLoops.
type NaturalLoop struct {
	Head    int
	Latches []int // sources of back edges into Head
	Blocks  []int // loop members, Head included, ascending
}

// FindLoops discovers the natural loops of g: for every back edge t→h (where
// h dominates t), the loop is h plus every vertex that can reach t without
// passing through h. Loops sharing a header are merged, matching the usual
// compiler convention.
func FindLoops(g Graph) []NaturalLoop {
	idom := Dominators(g)
	preds := g.Preds()
	byHead := map[int]*NaturalLoop{}
	var heads []int

	for t, ss := range g.Succs {
		if idom[t] == -1 && t != g.Entry {
			continue // unreachable
		}
		for _, h := range ss {
			if !Dominates(idom, h, t) {
				continue
			}
			nl := byHead[h]
			if nl == nil {
				nl = &NaturalLoop{Head: h}
				byHead[h] = nl
				heads = append(heads, h)
			}
			nl.Latches = append(nl.Latches, t)
			inLoop := map[int]bool{h: true}
			stack := []int{t}
			inLoop[t] = true
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range preds[v] {
					if !inLoop[p] {
						inLoop[p] = true
						stack = append(stack, p)
					}
				}
			}
			for v := range inLoop {
				nl.Blocks = appendUnique(nl.Blocks, v)
			}
		}
	}
	loops := make([]NaturalLoop, 0, len(heads))
	for _, h := range heads {
		nl := byHead[h]
		sort.Ints(nl.Blocks)
		loops = append(loops, *nl)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Head < loops[j].Head })
	return loops
}

// IsBackEdge reports whether the edge from → to is a back edge with respect
// to the dominator array idom (i.e. its target dominates its source).
func IsBackEdge(idom []int, from, to int) bool { return Dominates(idom, to, from) }

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
