package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ucp/internal/faults"
	"ucp/internal/journal"
	"ucp/internal/store"
)

// quietLogger discards logs; resume tests build servers by hand (testServer
// cannot restart one).
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// resumeSweep is six cells with the two hang-prone bs cells LAST, so a
// single-worker server deterministically finishes the first four before a
// fault pins cell 5 — the restart then has exactly 4 journaled cells and 2
// to re-execute.
const resumeSweep = `{"programs":["fibcall","fac","bs"],"configs":["k1","k2"],"techs":["45nm"],"runs":1,"validation_budget":20}`

// rawResults extracts the raw bytes of the "results" array from a job
// status body, for byte-identity comparison across restarts.
func rawResults(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	r, ok := m["results"]
	if !ok {
		t.Fatalf("no results in job body: %s", body)
	}
	return string(r)
}

// TestSweepResumeAfterRestart is the tentpole acceptance test: a journaled
// sweep interrupted mid-run resumes on the next server under its original
// ID, re-executes only the unfinished cells (the journal answers the rest
// with zero pipeline runs), and its final results are byte-identical to an
// uninterrupted run.
func TestSweepResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	sdir := filepath.Join(dir, "store")

	// Control: the same sweep on a clean, journal-less server.
	ctlTS, _ := testServer(t, Config{})
	resp, _ := postJSON(t, ctlTS.URL+"/v1/sweep", resumeSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("control submit: %d", resp.StatusCode)
	}
	if st := pollJob(t, ctlTS.URL+"/v1/jobs/job-000001"); st.State != string(jobDone) {
		t.Fatalf("control job: %+v", st)
	}
	_, ctlBody := getBody(t, ctlTS.URL+"/v1/jobs/job-000001")
	control := rawResults(t, ctlBody)

	// Server 1: one worker (serial cells), journal + store. The bs cells sit
	// at indexes 4 and 5; the armed delay pins cell 4 until drain, so cells
	// 0–3 are journaled and 4–5 are not.
	if err := faults.Arm("service.analyze:bs=delay:30s"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)

	st1, err := store.Open(sdir, 0)
	if err != nil {
		t.Fatal(err)
	}
	jnl1, err := journal.Open(jdir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := New(Config{Workers: 1, Journal: jnl1, Store: st1, Logger: quietLogger()})
	ts1 := httptest.NewServer(svc1.Handler())

	resp, _ = postJSON(t, ts1.URL+"/v1/sweep", resumeSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, body := getBody(t, ts1.URL+"/v1/jobs/job-000001")
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Done == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 4 done cells: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// "Crash": drain cancels the pinned cell; the job fails by interrupt
	// WITHOUT a terminal journal record, which is what makes it resumable.
	ts1.Close()
	svc1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	faults.Disarm()

	j1, ok, _ := svc1.jobs.get("job-000001")
	if !ok || j1.currentState() != jobFailed {
		t.Fatalf("interrupted job should be failed in the dying process, got %v", j1.currentState())
	}

	// Server 2: same journal and store directories. Recovery runs inside
	// New, before the listener exists.
	st2, err := store.Open(sdir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	jnl2, err := journal.Open(jdir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{Workers: 2, Journal: jnl2, Store: st2, Logger: quietLogger()})
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() { ts2.Close(); svc2.Close() }()

	final := pollJob(t, ts2.URL+"/v1/jobs/job-000001")
	if final.State != string(jobDone) {
		t.Fatalf("resumed job: %+v", final)
	}
	if !final.Resumed {
		t.Fatal("resumed job not marked resumed:true")
	}
	if final.Done != 6 || final.Failed != 0 {
		t.Fatalf("resumed job done=%d failed=%d, want 6/0", final.Done, final.Failed)
	}

	_, body := getBody(t, ts2.URL+"/v1/jobs/job-000001")
	if got := rawResults(t, body); got != control {
		t.Errorf("resumed results differ from uninterrupted run:\ncontrol: %s\nresumed: %s", control, got)
	}

	_, metrics := getBody(t, ts2.URL+"/metrics")
	if v := metricValue(t, string(metrics), "ucp_jobs_resumed_total"); v != 1 {
		t.Errorf("ucp_jobs_resumed_total = %v, want 1", v)
	}
	if v := metricValue(t, string(metrics), "ucp_journal_replay_cells_total"); v != 4 {
		t.Errorf("ucp_journal_replay_cells_total = %v, want 4 (cells journaled before the crash)", v)
	}
	// Only the two unfinished cells may have touched the pipeline; the four
	// replayed ones must not (that is the whole point of the journal).
	if v := metricValue(t, string(metrics), "ucp_analyses_total"); v > 2 {
		t.Errorf("ucp_analyses_total = %v, want <= 2 (only unfinished cells re-execute)", v)
	}
}

// TestJournalReplayTerminalJob: a finished job's results survive a restart
// and answer /v1/jobs/{id} without any pipeline run.
func TestJournalReplayTerminalJob(t *testing.T) {
	jdir := t.TempDir()
	jnl1, err := journal.Open(jdir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := New(Config{Workers: 2, Journal: jnl1, Logger: quietLogger()})
	ts1 := httptest.NewServer(svc1.Handler())

	sweep := `{"programs":["fibcall"],"configs":["k1"],"techs":["45nm"],"runs":1,"validation_budget":20}`
	if resp, _ := postJSON(t, ts1.URL+"/v1/sweep", sweep); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st := pollJob(t, ts1.URL+"/v1/jobs/job-000001"); st.State != string(jobDone) {
		t.Fatalf("job: %+v", st)
	}
	_, wantBody := getBody(t, ts1.URL+"/v1/jobs/job-000001")
	want := rawResults(t, wantBody)
	ts1.Close()
	svc1.Close()

	jnl2, err := journal.Open(jdir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{Workers: 2, Journal: jnl2, Logger: quietLogger()})
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() { ts2.Close(); svc2.Close() }()

	resp, body := getBody(t, ts2.URL+"/v1/jobs/job-000001")
	if resp.StatusCode != 200 {
		t.Fatalf("replayed job status: %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != string(jobDone) || st.Done != 1 || st.Resumed {
		t.Fatalf("replayed terminal job: %+v", st)
	}
	if got := rawResults(t, body); got != want {
		t.Errorf("replayed results differ:\nwant %s\ngot  %s", want, got)
	}
	_, metrics := getBody(t, ts2.URL+"/metrics")
	if v := metricValue(t, string(metrics), "ucp_analyses_total"); v != 0 {
		t.Errorf("terminal replay ran %v analyses, want 0", v)
	}
	// A new submission on the restarted server must continue the sequence,
	// not collide with the replayed ID.
	resp, body = postJSON(t, ts2.URL+"/v1/sweep", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-restart submit: %d", resp.StatusCode)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.JobID != "job-000002" {
		t.Errorf("post-restart job ID = %s, want job-000002", sub.JobID)
	}
}

// TestJournalAppendFaultDoesNotFailJob: journaling is a durability
// upgrade, never a gate — a job whose every append fails still completes.
func TestJournalAppendFaultDoesNotFailJob(t *testing.T) {
	jnl, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Arm("journal.append:*=err"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)
	ts, _ := testServer(t, Config{Journal: jnl})
	sweep := `{"programs":["fibcall"],"configs":["k1"],"techs":["45nm"],"runs":1,"validation_budget":20}`
	if resp, _ := postJSON(t, ts.URL+"/v1/sweep", sweep); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st := pollJob(t, ts.URL+"/v1/jobs/job-000001"); st.State != string(jobDone) {
		t.Fatalf("job with failing journal should still finish: %+v", st)
	}
}

// TestJournalSeqSurvivesRestart: IDs stay monotonic across a restart even
// when nothing is left to replay, preserving the expired-404 contract.
func TestJournalSeqSurvivesRestartAfterPrune(t *testing.T) {
	jdir := t.TempDir()
	jnl, err := journal.Open(jdir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate history: the journal once saw job 12, since pruned.
	w, err := jnl.Begin(t.Context(), "job-000012", time.Now().UTC(), 1, json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	w.Finish(t.Context(), "done", "")
	if err := jnl.Remove("job-000012"); err != nil {
		t.Fatal(err)
	}

	jnl2, err := journal.Open(jdir)
	if err != nil {
		t.Fatal(err)
	}
	ts, svc := testServer(t, Config{Journal: jnl2})
	if got := svc.jobs.seq; got != 12 {
		t.Fatalf("seq seed = %d, want 12", got)
	}
	resp, body := getBody(t, ts.URL+"/v1/jobs/job-000005")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if want := fmt.Sprintf("job %q expired", "job-000005"); !json.Valid(body) ||
		!containsString(body, want) {
		t.Fatalf("body %s, want expired message %q", body, want)
	}
}

func containsString(body []byte, want string) bool {
	var e apiError
	if err := json.Unmarshal(body, &e); err != nil {
		return false
	}
	return e.Error == want
}
