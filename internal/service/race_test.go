package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// post is a goroutine-safe POST helper (no t.Fatal): it returns the status
// code and body, or an error string via the second return.
func post(url, body string) (int, []byte, string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err.Error()
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err.Error()
	}
	return resp.StatusCode, b, ""
}

// TestConcurrentSweepsAndAnalyzes hammers the shared worker pool from many
// clients at once: overlapping sweep jobs and synchronous analyzes racing
// for the same cache keys. Run with -race this exercises the pool, the
// LRU, the job store, and the metrics under contention.
func TestConcurrentSweepsAndAnalyzes(t *testing.T) {
	ts, svc := testServer(t, Config{Workers: 4})

	sweep := `{"programs":["fibcall","fac","bs"],"configs":["k1","k2"],"techs":["45nm"],"runs":1,"validation_budget":20}`

	var wg sync.WaitGroup
	errs := make(chan string, 64)

	// Four identical sweep jobs racing each other.
	jobURLs := make(chan string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, errstr := post(ts.URL+"/v1/sweep", sweep)
			if errstr != "" {
				errs <- errstr
				return
			}
			if status != http.StatusAccepted {
				errs <- "sweep submit: unexpected status " + string(body)
				return
			}
			var sub struct {
				StatusURL string `json:"status_url"`
			}
			if err := json.Unmarshal(body, &sub); err != nil {
				errs <- err.Error()
				return
			}
			jobURLs <- sub.StatusURL
		}()
	}

	// Eight clients re-asking the same two questions.
	for i := 0; i < 8; i++ {
		body := smallAnalyze
		if i%2 == 1 {
			body = strings.Replace(body, "k1", "k2", 1)
		}
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			for n := 0; n < 3; n++ {
				status, b, errstr := post(ts.URL+"/v1/analyze", body)
				if errstr != "" {
					errs <- errstr
					return
				}
				if status != 200 {
					errs <- "analyze: unexpected status: " + string(b)
					return
				}
			}
		}(body)
	}

	wg.Wait()
	close(jobURLs)
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	for u := range jobURLs {
		st := pollJob(t, ts.URL+u)
		if st.State != string(jobDone) {
			t.Errorf("job %s: state=%s err=%s", st.ID, st.State, st.Error)
		}
		if len(st.Results) != 6 {
			t.Errorf("job %s: results=%d, want 6", st.ID, len(st.Results))
		}
	}

	// The cache must have collapsed the duplicated work: every lookup is
	// accounted for, and the workload of identical queries produced hits
	// (concurrent first misses may race, but repeats must be served).
	hits, misses, _ := svc.cache.stats()
	if hits == 0 {
		t.Error("no cache hits under a workload of identical queries")
	}
	total := int64(4*6 + 8*3) // sweep cells + analyze calls
	if hits+misses < total {
		t.Errorf("cache saw %d lookups, want >= %d", hits+misses, total)
	}
}
