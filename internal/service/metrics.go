package service

import (
	"io"
	"time"

	"ucp/internal/obs"
)

// metrics holds the server's operational instruments, all registered in the
// server's private obs registry so several Servers can coexist in one
// process (tests do) without sharing counters. Process-wide series — the
// wcet analysis-mode counters and the pool panic counter — live in
// obs.Global and are rendered alongside by renderMetrics.
type metrics struct {
	requests      *obs.CounterVec // ucp_requests_total{route}
	policy        *obs.CounterVec // ucp_analysis_policy_total{policy}
	analyses      *obs.Counter
	failures      *obs.Counter
	jobsRejected  *obs.Counter
	cellsCanceled *obs.Counter
	flightMerged  *obs.Counter
	batchCells    *obs.Counter
	batchFailures *obs.Counter
	batchRejected *obs.Counter
	jobsResumed   *obs.Counter
	replayCells   *obs.Counter
	latency       *obs.Histogram // rendered as a summary; see obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		requests: reg.CounterVec("ucp_requests_total",
			"HTTP requests served, by route.", "route"),
		policy: reg.CounterVec("ucp_analysis_policy_total",
			"Executed analyses by cache replacement policy.", "policy"),
		analyses: reg.Counter("ucp_analyses_total",
			"Analyses executed (cache misses that ran the optimizer)."),
		failures: reg.Counter("ucp_analysis_failures_total",
			"Executed analyses that returned an error."),
		jobsRejected: reg.Counter("ucp_jobs_rejected_total",
			"Sweep submissions refused by admission control (429)."),
		cellsCanceled: reg.Counter("ucp_cells_canceled_total",
			"Sweep cells stopped by cancellation or deadline."),
		flightMerged: reg.Counter("ucp_flight_merged_total",
			"Analyze requests coalesced onto an identical in-flight execution."),
		batchCells: reg.Counter("ucp_batch_cells_total",
			"Batch cells processed (served, executed, or failed)."),
		batchFailures: reg.Counter("ucp_batch_cell_failures_total",
			"Batch cells that failed (error or panic, isolated per cell)."),
		batchRejected: reg.Counter("ucp_batch_rejected_total",
			"Batch submissions refused by admission control (429)."),
		jobsResumed: reg.Counter("ucp_jobs_resumed_total",
			"Journaled sweep jobs resumed after a restart."),
		replayCells: reg.Counter("ucp_journal_replay_cells_total",
			"Cells answered from the job journal during replay (zero pipeline runs)."),
		latency: reg.Histogram("ucp_analysis_latency_seconds",
			"Latency of executed analyses (recent window).", nil, nil),
	}
}

// registerPulls wires the families whose values live with other components
// — the result cache and the job store — as render-time callbacks. Called
// once from New after those components exist.
func (s *Server) registerPulls() {
	s.reg.CounterFunc("ucp_cache_hits_total", "Result-cache hits.", func() int64 {
		hits, _, _ := s.cache.stats()
		return hits
	})
	s.reg.CounterFunc("ucp_cache_misses_total", "Result-cache misses.", func() int64 {
		_, misses, _ := s.cache.stats()
		return misses
	})
	s.reg.GaugeFunc("ucp_cache_entries", "Resident result-cache entries.", func() float64 {
		_, _, entries := s.cache.stats()
		return float64(entries)
	})
	s.reg.GaugeVecFunc("ucp_jobs", "Sweep jobs by state.", "state", func() []obs.Sample {
		counts := s.jobs.counts()
		out := make([]obs.Sample, 0, 4)
		for _, st := range []jobState{jobQueued, jobRunning, jobDone, jobFailed} {
			out = append(out, obs.Sample{Label: string(st), Value: float64(counts[st])})
		}
		return out
	})
	// The persistent tier's families exist only when a store is configured,
	// so a store-less exposition is byte-identical to the pre-store one.
	if st := s.cfg.Store; st != nil {
		s.reg.CounterFunc("ucp_result_store_hits_total",
			"Persistent result-store entries served (verified).", func() int64 {
				return st.Stats().Hits
			})
		s.reg.CounterFunc("ucp_result_store_misses_total",
			"Persistent result-store lookups with no usable entry.", func() int64 {
				return st.Stats().Misses
			})
		s.reg.CounterFunc("ucp_result_store_evictions_total",
			"Persistent result-store entries removed (capacity or corruption).", func() int64 {
				return st.Stats().Evictions
			})
		s.reg.GaugeFunc("ucp_result_store_entries",
			"Resident persistent result-store entries.", func() float64 {
				return float64(st.Stats().Entries)
			})
		s.reg.GaugeFunc("ucp_result_store_bytes",
			"Resident persistent result-store bytes.", func() float64 {
				return float64(st.Stats().Bytes)
			})
	}
}

// countRequest bumps the per-route request counter.
func (m *metrics) countRequest(route string) { m.requests.With(route).Inc() }

// countPolicy bumps the per-replacement-policy analysis counter.
func (m *metrics) countPolicy(policy string) { m.policy.With(policy).Inc() }

// countJobRejected records one sweep submission refused with 429.
func (m *metrics) countJobRejected() { m.jobsRejected.Inc() }

// countCellCanceled records one sweep cell stopped by a cancellation or
// deadline rather than by finishing.
func (m *metrics) countCellCanceled() { m.cellsCanceled.Inc() }

// countFlightMerged records one analyze request that rode another
// request's in-flight identical execution instead of starting its own.
func (m *metrics) countFlightMerged() { m.flightMerged.Inc() }

// countBatchCell records one finished batch cell and whether it failed.
func (m *metrics) countBatchCell(failed bool) {
	m.batchCells.Inc()
	if failed {
		m.batchFailures.Inc()
	}
}

// countBatchRejected records one batch refused with 429.
func (m *metrics) countBatchRejected() { m.batchRejected.Inc() }

// countJobResumed records one journaled job resumed after a restart.
func (m *metrics) countJobResumed() { m.jobsResumed.Inc() }

// countReplayCell records one cell answered from the journal during
// replay, with no pipeline run.
func (m *metrics) countReplayCell() { m.replayCells.Inc() }

// observeAnalysis records one executed (non-cached) analysis.
func (m *metrics) observeAnalysis(d time.Duration, ok bool) {
	m.analyses.Inc()
	if !ok {
		m.failures.Inc()
	}
	m.latency.Observe(d.Seconds())
}

// renderMetrics writes the Prometheus text exposition: the server's own
// families plus the process-wide ones (wcet analysis modes, recovered
// panics) from the Global registry.
func (s *Server) renderMetrics(w io.Writer) error {
	return obs.WritePrometheus(w, s.reg, obs.Global())
}
