package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ucp/internal/pool"
	"ucp/internal/wcet"
)

// latencyWindow is how many recent analysis latencies the quantile
// estimator keeps. A fixed ring keeps /metrics O(window) regardless of
// uptime; with 1024 samples the p99 estimate rests on ~10 observations,
// coarse but honest for an operational dashboard.
const latencyWindow = 1024

// metrics holds the server's operational counters. The cache and job
// counters live with their owners (resultCache, jobStore) and are pulled
// in at render time; this struct owns the request and latency series.
type metrics struct {
	mu        sync.Mutex
	byRoute   map[string]int64
	byPolicy  map[string]int64       // executed analyses by replacement policy
	analyses  int64                  // analyses actually executed (cache misses that ran)
	failures  int64                  // executed analyses that returned an error
	latencies [latencyWindow]float64 // seconds
	lat       int                    // next write position
	latN      int                    // filled entries

	// Fault-tolerance counters; atomics because the hot paths that bump
	// them (sweep cells, admission checks) should not contend on mu.
	jobsRejected  atomic.Int64 // sweep submissions refused by admission control
	cellsCanceled atomic.Int64 // sweep cells stopped by cancellation or deadline
}

func newMetrics() *metrics {
	return &metrics{byRoute: map[string]int64{}, byPolicy: map[string]int64{}}
}

// countRequest bumps the per-route request counter.
func (m *metrics) countRequest(route string) {
	m.mu.Lock()
	m.byRoute[route]++
	m.mu.Unlock()
}

// countPolicy bumps the per-replacement-policy analysis counter.
func (m *metrics) countPolicy(policy string) {
	m.mu.Lock()
	m.byPolicy[policy]++
	m.mu.Unlock()
}

// countJobRejected records one sweep submission refused with 429.
func (m *metrics) countJobRejected() { m.jobsRejected.Add(1) }

// countCellCanceled records one sweep cell stopped by a cancellation or
// deadline rather than by finishing.
func (m *metrics) countCellCanceled() { m.cellsCanceled.Add(1) }

// observeAnalysis records one executed (non-cached) analysis.
func (m *metrics) observeAnalysis(d time.Duration, ok bool) {
	m.mu.Lock()
	m.analyses++
	if !ok {
		m.failures++
	}
	m.latencies[m.lat] = d.Seconds()
	m.lat = (m.lat + 1) % latencyWindow
	if m.latN < latencyWindow {
		m.latN++
	}
	m.mu.Unlock()
}

// quantiles returns the requested quantiles over the latency window using
// the nearest-rank method, or zeros when nothing has been observed.
func (m *metrics) quantiles(qs ...float64) []float64 {
	m.mu.Lock()
	sorted := make([]float64, m.latN)
	copy(sorted, m.latencies[:m.latN])
	m.mu.Unlock()
	out := make([]float64, len(qs))
	if len(sorted) == 0 {
		return out
	}
	sort.Float64s(sorted)
	for i, q := range qs {
		rank := int(q * float64(len(sorted)-1))
		out[i] = sorted[rank]
	}
	return out
}

// render writes the Prometheus text exposition of every counter the server
// keeps: requests, cache effectiveness, job states, and analysis latency.
func (s *Server) renderMetrics(w io.Writer) error {
	ew := &metricsWriter{w: w}

	ew.head("ucp_requests_total", "counter", "HTTP requests served, by route.")
	s.metrics.mu.Lock()
	routes := make([]string, 0, len(s.metrics.byRoute))
	for r := range s.metrics.byRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		ew.printf("ucp_requests_total{route=%q} %d\n", r, s.metrics.byRoute[r])
	}
	analyses, failures := s.metrics.analyses, s.metrics.failures
	policies := make([]string, 0, len(s.metrics.byPolicy))
	for p := range s.metrics.byPolicy {
		policies = append(policies, p)
	}
	sort.Strings(policies)
	policyCounts := make([]int64, len(policies))
	for i, p := range policies {
		policyCounts[i] = s.metrics.byPolicy[p]
	}
	s.metrics.mu.Unlock()

	hits, misses, entries := s.cache.stats()
	ew.head("ucp_cache_hits_total", "counter", "Result-cache hits.")
	ew.printf("ucp_cache_hits_total %d\n", hits)
	ew.head("ucp_cache_misses_total", "counter", "Result-cache misses.")
	ew.printf("ucp_cache_misses_total %d\n", misses)
	ew.head("ucp_cache_entries", "gauge", "Resident result-cache entries.")
	ew.printf("ucp_cache_entries %d\n", entries)

	ew.head("ucp_analyses_total", "counter", "Analyses executed (cache misses that ran the optimizer).")
	ew.printf("ucp_analyses_total %d\n", analyses)
	ew.head("ucp_analysis_failures_total", "counter", "Executed analyses that returned an error.")
	ew.printf("ucp_analysis_failures_total %d\n", failures)

	ew.head("ucp_analysis_policy_total", "counter", "Executed analyses by cache replacement policy.")
	for i, p := range policies {
		ew.printf("ucp_analysis_policy_total{policy=%q} %d\n", p, policyCounts[i])
	}

	// Incremental-analysis effectiveness: inside every optimizer run, how
	// many WCET re-validations were served from the previous fixpoint
	// versus computed from scratch. Process-wide (wcet package counters),
	// so the sweep engine's cells are included too.
	as := wcet.Stats()
	ew.head("ucp_analysis_incremental_hits_total", "counter", "WCET re-analyses seeded incrementally from a previous result.")
	ew.printf("ucp_analysis_incremental_hits_total %d\n", as.Incremental)
	ew.head("ucp_analysis_full_reanalyses_total", "counter", "WCET analyses computed from scratch.")
	ew.printf("ucp_analysis_full_reanalyses_total %d\n", as.Full)

	counts := s.jobs.counts()
	ew.head("ucp_jobs", "gauge", "Sweep jobs by state.")
	for _, st := range []jobState{jobQueued, jobRunning, jobDone, jobFailed} {
		ew.printf("ucp_jobs{state=%q} %d\n", string(st), counts[st])
	}

	// Fault-tolerance counters. Panics are process-wide (pool package
	// counter) so panics recovered in ucp-bench sweeps inside this process
	// are included too.
	ew.head("ucp_panics_recovered_total", "counter", "Panics recovered from analysis tasks.")
	ew.printf("ucp_panics_recovered_total %d\n", pool.PanicsRecovered())
	ew.head("ucp_jobs_rejected_total", "counter", "Sweep submissions refused by admission control (429).")
	ew.printf("ucp_jobs_rejected_total %d\n", s.metrics.jobsRejected.Load())
	ew.head("ucp_cells_canceled_total", "counter", "Sweep cells stopped by cancellation or deadline.")
	ew.printf("ucp_cells_canceled_total %d\n", s.metrics.cellsCanceled.Load())

	qs := s.metrics.quantiles(0.5, 0.99)
	ew.head("ucp_analysis_latency_seconds", "summary", "Latency of executed analyses (recent window).")
	ew.printf("ucp_analysis_latency_seconds{quantile=\"0.5\"} %.6f\n", qs[0])
	ew.printf("ucp_analysis_latency_seconds{quantile=\"0.99\"} %.6f\n", qs[1])
	return ew.err
}

// metricsWriter latches the first write error like experiment's errWriter.
type metricsWriter struct {
	w   io.Writer
	err error
}

func (m *metricsWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

func (m *metricsWriter) head(name, typ, help string) {
	m.printf("# HELP %s %s\n", name, help)
	m.printf("# TYPE %s %s\n", name, typ)
}
