package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ucp/internal/cache"
)

// routes wires the API. Method-qualified patterns (Go 1.22 ServeMux) give
// 405 on wrong methods for free.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/configs", s.handleConfigs)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	return mux
}

// writeJSON renders v with a status code; encoding errors are logged, not
// recoverable (headers are gone).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses the JSON request body into v, translating the body
// size limit into 413 and malformed JSON into 400. It reports whether
// decoding succeeded; on failure the error response has been written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// resolveErr maps a resolution error onto its HTTP status.
func (s *Server) resolveErr(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		s.writeError(w, he.status, "%s", he.msg)
		return
	}
	s.writeError(w, http.StatusInternalServerError, "%v", err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.renderMetrics(w); err != nil {
		s.log.Error("render metrics", "err", err)
	}
}

// benchmarkInfo is one /v1/benchmarks entry.
type benchmarkInfo struct {
	Name         string `json:"name"`
	ID           string `json:"id"`
	Instructions int    `json:"instructions"`
	Blocks       int    `json:"blocks"`
	Loops        int    `json:"loops"`
	Note         string `json:"note"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	out := make([]benchmarkInfo, 0, len(s.benchNames))
	for _, name := range s.benchNames {
		b := s.benches[name]
		out = append(out, benchmarkInfo{
			Name:         b.Name,
			ID:           b.ID,
			Instructions: b.Prog.NInstr(),
			Blocks:       len(b.Prog.Blocks),
			Loops:        len(b.Prog.Loops),
			Note:         b.Note,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// configInfo is one /v1/configs entry. Policies lists the replacement
// policies the configuration supports (every Table 2 associativity is a
// power of two, so all three policies apply to all entries; the field keeps
// clients from hard-coding that).
type configInfo struct {
	Label         string   `json:"label"`
	Assoc         int      `json:"assoc"`
	BlockBytes    int      `json:"block_bytes"`
	CapacityBytes int      `json:"capacity_bytes"`
	Sets          int      `json:"sets"`
	Policies      []string `json:"policies"`
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	cfgs := cache.Table2()
	out := make([]configInfo, 0, len(cfgs))
	for i, c := range cfgs {
		var policies []string
		for _, p := range cache.Policies() {
			pc := c
			pc.Policy = p
			if pc.Valid() == nil {
				policies = append(policies, p.String())
			}
		}
		out = append(out, configInfo{
			Label:         cache.ConfigID(i),
			Assoc:         c.Assoc,
			BlockBytes:    c.BlockBytes,
			CapacityBytes: c.CapacityBytes,
			Sets:          c.NumSets(),
			Policies:      policies,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	uc, err := s.resolve(req)
	if err != nil {
		s.resolveErr(w, err)
		return
	}
	// The synchronous path still goes through the shared pool so a burst
	// of /v1/analyze requests cannot oversubscribe the machine; one
	// request occupies exactly one worker slot.
	var (
		res    Result
		cached bool
	)
	perr := s.pool.ForEach(r.Context(), 1, func(_ context.Context, _ int) error {
		var aerr error
		res, cached, aerr = s.analyze(uc)
		return aerr
	})
	if perr != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", perr)
		return
	}
	s.writeJSON(w, http.StatusOK, analyzeResponse{Result: res, Cached: cached})
}

// analyzeResponse wraps a Result with its cache provenance.
type analyzeResponse struct {
	Result
	Cached bool `json:"cached"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	cases, err := s.resolveSweep(req)
	if err != nil {
		s.resolveErr(w, err)
		return
	}
	j := s.startSweep(cases)
	s.writeJSON(w, http.StatusAccepted, map[string]any{
		"job_id":     j.id,
		"cells":      len(cases),
		"status_url": "/v1/jobs/" + j.id,
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, j.status())
}
