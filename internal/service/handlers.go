package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ucp/internal/cache"
	"ucp/internal/cliutil"
	"ucp/internal/core"
	"ucp/internal/interrupt"
	"ucp/internal/obs"
	"ucp/internal/pool"
)

// routes wires the API. Method-qualified patterns (Go 1.22 ServeMux) give
// 405 on wrong methods for free.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/configs", s.handleConfigs)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	if s.cfg.EnableWorker {
		mux.HandleFunc("POST /v1/worker/cell", s.handleWorkerCell)
	}
	return mux
}

// writeJSON renders v with a status code; encoding errors are logged, not
// recoverable (headers are gone).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// unavailable writes an admission-control 503 with the same Retry-After
// hint the 429 path carries: a load balancer or client backing off for a
// beat will find either a drained-and-restarted replica or a sibling.
func (s *Server) unavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "30")
	s.writeError(w, http.StatusServiceUnavailable, format, args...)
}

// tooMany writes an admission-control 429. Every 429 carries Retry-After —
// the sweep path always did, and this helper keeps any future refusal path
// from forgetting the header (clients use it to back off instead of
// hammering a saturated server).
func (s *Server) tooMany(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "30")
	s.writeError(w, http.StatusTooManyRequests, format, args...)
}

// decodeBody parses the JSON request body into v, translating the body
// size limit into 413 and malformed JSON into 400. It reports whether
// decoding succeeded; on failure the error response has been written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// resolveErr maps a resolution error onto its HTTP status.
func (s *Server) resolveErr(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		s.writeError(w, he.status, "%s", he.msg)
		return
	}
	s.writeError(w, http.StatusInternalServerError, "%v", err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether the server is accepting new work: 503 while
// draining (shutdown has begun) or while the job queue is saturated, 200
// otherwise. Liveness (/healthz) stays 200 in both 503 cases — the process
// is healthy, it just should not receive new traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if s.jobs.activeJobs() >= s.cfg.MaxQueuedJobs {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.renderMetrics(w); err != nil {
		s.log.Error("render metrics", "err", err)
	}
}

// benchmarkInfo is one /v1/benchmarks entry.
type benchmarkInfo struct {
	Name         string `json:"name"`
	ID           string `json:"id"`
	Instructions int    `json:"instructions"`
	Blocks       int    `json:"blocks"`
	Loops        int    `json:"loops"`
	Note         string `json:"note"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	out := make([]benchmarkInfo, 0, len(s.benchNames))
	for _, name := range s.benchNames {
		b := s.benches[name]
		out = append(out, benchmarkInfo{
			Name:         b.Name,
			ID:           b.ID,
			Instructions: b.Prog.NInstr(),
			Blocks:       len(b.Prog.Blocks),
			Loops:        len(b.Prog.Loops),
			Note:         b.Note,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// configInfo is one /v1/configs entry. Policies lists the replacement
// policies the configuration supports (every Table 2 associativity is a
// power of two, so all three policies apply to all entries; the field keeps
// clients from hard-coding that).
type configInfo struct {
	Label         string   `json:"label"`
	Assoc         int      `json:"assoc"`
	BlockBytes    int      `json:"block_bytes"`
	CapacityBytes int      `json:"capacity_bytes"`
	Sets          int      `json:"sets"`
	Policies      []string `json:"policies"`
	// L2Valid reports whether the configuration forms a valid hierarchy
	// with the L2 given via the l2_* query parameters; present only when
	// such an L2 was supplied.
	L2Valid *bool `json:"l2_valid,omitempty"`
}

// configsL2 parses the optional l2_assoc / l2_block_bytes /
// l2_capacity_bytes (and l2_policy) query of /v1/configs. The parameters
// describe a candidate L2; each listed configuration then reports whether
// it can serve as the L1 underneath it.
func configsL2(r *http.Request) (*cache.Config, error) {
	q := r.URL.Query()
	if q.Get("l2_assoc") == "" && q.Get("l2_block_bytes") == "" && q.Get("l2_capacity_bytes") == "" {
		return nil, nil
	}
	num := func(name string) (int, error) {
		v := q.Get(name)
		if v == "" {
			return 0, errorf(400, "missing %s (an l2_* query needs the full geometry)", name)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return 0, errorf(400, "bad %s %q", name, v)
		}
		return n, nil
	}
	assoc, err := num("l2_assoc")
	if err != nil {
		return nil, err
	}
	bb, err := num("l2_block_bytes")
	if err != nil {
		return nil, err
	}
	capacity, err := num("l2_capacity_bytes")
	if err != nil {
		return nil, err
	}
	pol, err := cliutil.Policy(q.Get("l2_policy"))
	if err != nil {
		return nil, errorf(400, "l2_policy: %v", err)
	}
	cfg := cache.Config{Assoc: assoc, BlockBytes: bb, CapacityBytes: capacity, Policy: pol}
	if err := cfg.Valid(); err != nil {
		return nil, errorf(400, "l2: %v", err)
	}
	return &cfg, nil
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	l2, err := configsL2(r)
	if err != nil {
		s.resolveErr(w, err)
		return
	}
	cfgs := cache.Table2()
	out := make([]configInfo, 0, len(cfgs))
	for i, c := range cfgs {
		var policies []string
		for _, p := range cache.Policies() {
			pc := c
			pc.Policy = p
			if pc.Valid() == nil {
				policies = append(policies, p.String())
			}
		}
		info := configInfo{
			Label:         cache.ConfigID(i),
			Assoc:         c.Assoc,
			BlockBytes:    c.BlockBytes,
			CapacityBytes: c.CapacityBytes,
			Sets:          c.NumSets(),
			Policies:      policies,
		}
		if l2 != nil {
			ok := (cache.Hierarchy{L1: c, L2: *l2}).Valid() == nil
			info.L2Valid = &ok
		}
		out = append(out, info)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.unavailable(w, "server is draining")
		return
	}
	var req AnalyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	uc, err := s.resolve(req)
	if err != nil {
		s.resolveErr(w, err)
		return
	}
	timeout, err := s.analyzeTimeout(r)
	if err != nil {
		s.resolveErr(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// ?trace=1 turns on the observability surface for this one request: a
	// span recorder captures the pipeline's timing tree and the optimizer
	// produces its per-prefetch-decision explain report. Tracing bypasses
	// the result-cache read (a cache hit has no pipeline to trace) — and
	// the singleflight group, whose shared execution could not carry a
	// per-request recorder — but still publishes its Result for later
	// plain requests.
	if r.URL.Query().Get("trace") == "1" {
		s.handleAnalyzeTraced(ctx, w, r, uc)
		return
	}

	// With a trace sink configured, every plain request records spans too;
	// whether the tree is *persisted* is decided at the tail — failures and
	// slow requests always, the rest through the head sampler — so the rare
	// bad request is kept without paying disk for the bulk (DESIGN.md §15).
	// The flight body runs on the server's context, so only handler-level
	// outcomes land in this tree; ?trace=1 remains the deep-pipeline view.
	var rec *obs.Recorder
	reqStart := time.Now()
	if s.cfg.TraceSink != nil {
		rec = obs.NewRecorder("analyze")
		rec.Root().Attr("request_id", requestID(r.Context()))
		rec.Root().Attr("program", uc.bench.Name)
		ctx = rec.Install(ctx)
	}
	finishTrace := func(failed bool) {
		if rec == nil {
			return
		}
		rec.Release()
		keep := failed || time.Since(reqStart) >= slowTraceThreshold
		s.persistTrace(requestID(r.Context()), rec.Tree(), keep)
	}

	// Plain requests go cache → singleflight → pipeline. The cache read
	// here is the fast path; the flight leader re-checks it, so a result
	// published between the two reads is still served without execution.
	key := s.keyFor(uc)
	if v, ok := s.cache.get(ctx, key); ok {
		rec.Root().Attr("cached", true)
		finishTrace(false)
		s.writeJSON(w, http.StatusOK, analyzeResponse{Result: v, Cached: true})
		return
	}
	// The flight leader occupies exactly one pool slot however many
	// identical requests pile up behind it; the herd waits slot-free. The
	// execution runs on the server's context (see New), so a waiter that
	// disconnects or times out detaches without cancelling the flight.
	res, joined, err := s.flight.Do(ctx, key, func(fctx context.Context) (Result, error) {
		var out Result
		perr := s.pool.ForEach(fctx, 1, func(ctx context.Context, _ int) error {
			r, _, _, aerr := s.analyzeExplain(ctx, uc, false)
			out = r
			return aerr
		})
		return out, perr
	})
	if joined {
		s.metrics.countFlightMerged()
	}
	if err != nil {
		rec.Root().Attr("error", err.Error())
		finishTrace(true)
		s.analyzeErr(w, err)
		return
	}
	rec.Root().Attr("coalesced", joined)
	finishTrace(false)
	s.writeJSON(w, http.StatusOK, analyzeResponse{Result: res, Coalesced: joined})
}

// handleAnalyzeTraced is the ?trace=1 path: a private recorder, a direct
// pool slot (no flight — the span tree belongs to this request alone),
// and the explain report in the response.
func (s *Server) handleAnalyzeTraced(ctx context.Context, w http.ResponseWriter, r *http.Request, uc useCase) {
	rec := obs.NewRecorder("analyze")
	rec.Root().Attr("request_id", requestID(r.Context()))
	rec.Root().Attr("program", uc.bench.Name)
	defer rec.Release()
	ctx = rec.Install(ctx)
	var (
		res       Result
		decisions []core.Decision
		cached    bool
	)
	perr := s.pool.ForEach(ctx, 1, func(ctx context.Context, _ int) error {
		var aerr error
		res, decisions, cached, aerr = s.analyzeExplain(ctx, uc, true)
		return aerr
	})
	if perr != nil {
		rec.Root().Attr("error", perr.Error())
		rec.Release()
		// An explicitly traced request is always persisted, success or not.
		s.persistTrace(requestID(r.Context()), rec.Tree(), true)
		s.analyzeErr(w, perr)
		return
	}
	rec.Release()
	tree := rec.Tree()
	s.persistTrace(requestID(r.Context()), tree, true)
	resp := analyzeResponse{Result: res, Cached: cached, Trace: tree, Explain: decisions}
	s.writeJSON(w, http.StatusOK, resp)
}

// analyzeTimeout resolves the per-request deadline: the configured
// AnalyzeTimeout, which ?timeout= (a Go duration) may lower but never
// raise — a client cannot buy itself more of the server's time than the
// operator allowed.
func (s *Server) analyzeTimeout(r *http.Request) (time.Duration, error) {
	timeout := s.cfg.AnalyzeTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return 0, errorf(400, "bad timeout %q: %v", v, err)
		}
		if d <= 0 {
			return 0, errorf(400, "timeout must be positive")
		}
		if d < timeout {
			timeout = d
		}
	}
	return timeout, nil
}

// analyzeErr maps an analysis failure onto its HTTP status: a recovered
// panic is 500 with a sanitized body (the stack goes to the log only), a
// deadline is 504, a cancellation (client gone or server draining) is 503,
// and anything else keeps the plain-500 behavior.
func (s *Server) analyzeErr(w http.ResponseWriter, err error) {
	var pe *pool.PanicError
	switch {
	case errors.As(err, &pe):
		s.log.Error("analysis panicked", "panic", fmt.Sprint(pe.Value), "stack", string(pe.Stack))
		s.writeError(w, http.StatusInternalServerError, "internal panic during analysis")
	case errors.Is(err, interrupt.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusGatewayTimeout, "analysis deadline exceeded")
	case errors.Is(err, interrupt.ErrCanceled), errors.Is(err, context.Canceled):
		s.writeError(w, http.StatusServiceUnavailable, "analysis canceled")
	default:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// analyzeResponse wraps a Result with its cache provenance and, for
// ?trace=1 requests, the span tree and the optimizer's explain report.
type analyzeResponse struct {
	Result
	Cached bool `json:"cached"`
	// Coalesced marks a response served by joining another request's
	// in-flight identical execution (singleflight) rather than by a cache
	// hit or an execution of its own.
	Coalesced bool            `json:"coalesced,omitempty"`
	Trace     *obs.SpanTree   `json:"trace,omitempty"`
	Explain   []core.Decision `json:"explain,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.unavailable(w, "server is draining")
		return
	}
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	cases, err := s.resolveSweep(req)
	if err != nil {
		s.resolveErr(w, err)
		return
	}
	j, pruned, err := s.jobs.tryAdd(req, cases, s.cfg.MaxQueuedJobs)
	if err != nil {
		// The backlog is bounded; tell the client when trying again is
		// likely to succeed rather than letting jobs pile up unbounded.
		s.metrics.countJobRejected()
		s.tooMany(w, "job queue full (%d unfinished jobs); retry later", s.cfg.MaxQueuedJobs)
		return
	}
	// ?trace=1 records the whole sweep under one per-job recorder; the
	// stitched tree (local spans plus grafted remote worker trees) rides
	// the final job status and the trace sink.
	if r.URL.Query().Get("trace") == "1" {
		j.traced = true
	}
	s.removeJournals(pruned)
	s.journalSubmit(j)
	s.startSweep(j)
	s.writeJSON(w, http.StatusAccepted, map[string]any{
		"job_id":     j.id,
		"cells":      len(cases),
		"status_url": "/v1/jobs/" + j.id,
		"events_url": "/v1/jobs/" + j.id + "/events",
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok, expired := s.jobs.get(id)
	if !ok {
		if expired {
			// The ID was real once; its job has been pruned from the
			// bounded store. The body shape is pinned by tests — clients
			// distinguish "expired, results gone" from a typo'd ID.
			s.writeError(w, http.StatusNotFound, "job %q expired", id)
			return
		}
		s.writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, j.status())
}

// handleJobEvents streams one job's progress as NDJSON: the buffered event
// history first (a late subscriber sees the whole story so far), then live
// events as cells start and finish, closed by the terminal job_finished
// line. The stream ends when the job reaches a terminal state or the
// client disconnects; polling /v1/jobs/{id} stays the cheap alternative.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok, expired := s.jobs.get(id)
	if !ok {
		if expired {
			s.writeError(w, http.StatusNotFound, "job %q expired", id)
			return
		}
		s.writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}

	// Subscribe before writing anything so no event can fall between the
	// history snapshot and the live channel.
	past, ch := j.subscribe()
	if ch != nil {
		defer j.unsubscribe(ch)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	write := func(ev jobEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range past {
		if !write(ev) {
			return
		}
	}
	if ch == nil {
		// Already terminal: the history replay ended with job_finished.
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			if !write(ev) {
				return
			}
		}
	}
}
