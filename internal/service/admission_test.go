package service

import (
	"net/http"
	"testing"
)

// TestAdmissionRetryAfter (satellite) audits every admission-control
// refusal across the four POST routes: saturation 429s (sweep, batch) and
// draining 503s (analyze, sweep, batch, worker/cell) must all carry
// Retry-After, so a client that honors the header backs off on every
// refusal path, not just the one the first test happened to pin.
func TestAdmissionRetryAfter(t *testing.T) {
	ts, svc := testServer(t, Config{MaxQueuedJobs: 1, EnableWorker: true})

	// Occupy the single job slot with a queued job that is never started:
	// the store counts it active, nothing runs.
	if _, _, err := svc.jobs.tryAdd(SweepRequest{}, nil, 1); err != nil {
		t.Fatal(err)
	}

	sweepBody := `{"programs":["fibcall"],"configs":["k1"],"techs":["45nm"],"runs":1,"validation_budget":20}`
	saturated := []struct {
		name, path, body string
	}{
		{"sweep", "/v1/sweep", sweepBody},
		{"batch", "/v1/batch", sweepBody},
	}
	for _, tc := range saturated {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("saturated %s: status = %d, want 429 (body %s)", tc.name, resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Errorf("saturated %s: 429 without Retry-After", tc.name)
		}
	}

	// Drain flips every POST route to 503 — again with Retry-After, so load
	// balancers rotating a restarting replica get the same back-off hint.
	svc.Drain()
	drained := []struct {
		name, path, body string
	}{
		{"analyze", "/v1/analyze", smallAnalyze},
		{"sweep", "/v1/sweep", sweepBody},
		{"batch", "/v1/batch", sweepBody},
		{"worker/cell", "/v1/worker/cell", smallAnalyze},
	}
	for _, tc := range drained {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining %s: status = %d, want 503 (body %s)", tc.name, resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Errorf("draining %s: 503 without Retry-After", tc.name)
		}
	}
}
