package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ucp/internal/cache"
	"ucp/internal/interrupt"
	"ucp/internal/obs"
	"ucp/internal/pool"
)

// BatchRequest submits many use cases in one request. Cells may be listed
// explicitly, or expanded from a matrix exactly like /v1/sweep (explicit
// cells win when both are present). Unlike /v1/sweep — which returns a job
// ID to poll — the batch response is a stream: one NDJSON line per cell,
// written in completion order as analyses finish, closed by a summary
// line. Runs and ValidationBudget are defaults for cells that leave their
// own zero.
type BatchRequest struct {
	Cells            []AnalyzeRequest `json:"cells,omitempty"`
	Programs         []string         `json:"programs,omitempty"`
	Configs          []string         `json:"configs,omitempty"`
	Techs            []string         `json:"techs,omitempty"`
	Policies         []string         `json:"policies,omitempty"`
	Runs             int              `json:"runs,omitempty"`
	ValidationBudget int              `json:"validation_budget,omitempty"`
	// L2 is the default second cache level for cells that carry none of
	// their own (and for the matrix form).
	L2 *L2Request `json:"l2,omitempty"`
}

// batchCellLine is one NDJSON cell outcome (Result or Error, never both).
// Index is the cell's position in the resolved request order, so clients
// can reassemble deterministic order from the completion-ordered stream.
type batchCellLine struct {
	Index   int     `json:"index"`
	Program string  `json:"program"`
	Config  string  `json:"config"`
	Tech    string  `json:"tech"`
	Policy  string  `json:"policy"`
	Cached  bool    `json:"cached,omitempty"`
	Result  *Result `json:"result,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// batchSummaryLine closes the stream; Done is always true, so clients can
// key on it to tell the summary from a cell.
type batchSummaryLine struct {
	Done      bool   `json:"done"`
	Total     int    `json:"total"`
	OK        int    `json:"ok"`
	Failed    int    `json:"failed"`
	CacheHits int    `json:"cache_hits"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Error     string `json:"error,omitempty"`
}

// resolveBatch expands a BatchRequest into resolved use cases.
func (s *Server) resolveBatch(req BatchRequest) ([]useCase, error) {
	if len(req.Cells) == 0 {
		return s.resolveSweep(SweepRequest{
			Programs:         req.Programs,
			Configs:          req.Configs,
			Techs:            req.Techs,
			Policies:         req.Policies,
			Runs:             req.Runs,
			ValidationBudget: req.ValidationBudget,
			L2:               req.L2,
		})
	}
	if len(req.Cells) > maxSweepCells {
		return nil, errorf(400, "batch has %d cells, limit %d", len(req.Cells), maxSweepCells)
	}
	cases := make([]useCase, 0, len(req.Cells))
	for i, c := range req.Cells {
		if c.Runs == 0 {
			c.Runs = req.Runs
		}
		if c.ValidationBudget == 0 {
			c.ValidationBudget = req.ValidationBudget
		}
		if c.L2 == nil {
			c.L2 = req.L2
		}
		uc, err := s.resolve(c)
		if err != nil {
			return nil, errorf(statusOf(err), "cell %d: %v", i, err)
		}
		cases = append(cases, uc)
	}
	return cases, nil
}

// statusOf extracts an httpError's status (500 otherwise).
func statusOf(err error) int {
	if he, ok := err.(*httpError); ok {
		return he.status
	}
	return http.StatusInternalServerError
}

// handleBatch streams cell results back as NDJSON. Failure isolation is
// per cell, reusing the sweep-job policy: an erroring or panicking cell
// becomes one error line and its siblings continue; an interruption (the
// client disconnecting, the job timeout, server drain) stops the whole
// batch and is reported in the summary line.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.unavailable(w, "server is draining")
		return
	}
	// Batch admission mirrors /readyz's saturation signal: a server with a
	// full job backlog refuses new multi-cell work with the same 429 +
	// Retry-After contract as /v1/sweep (a batch is sweep-sized; letting it
	// through while sweeps bounce would make the bound meaningless).
	if s.jobs.activeJobs() >= s.cfg.MaxQueuedJobs {
		s.metrics.countBatchRejected()
		s.tooMany(w, "server saturated (%d unfinished jobs); retry later", s.cfg.MaxQueuedJobs)
		return
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	cases, err := s.resolveBatch(req)
	if err != nil {
		s.resolveErr(w, err)
		return
	}

	// The batch is bounded like a sweep job: the per-job timeout applies,
	// and a server drain cancels it even though it rides a live request
	// context (the listener keeps request contexts alive during Shutdown).
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// One encoder, one mutex: lines are written whole, in completion
	// order, flushed eagerly so clients see progress while cells run.
	var (
		wmu       sync.Mutex
		ok        int
		failed    int
		cacheHits int
	)
	writeLine := func(line any) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := json.NewEncoder(w).Encode(line); err != nil {
			s.log.Error("encode batch line", "err", err)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	start := time.Now()
	batchErr := s.pool.ForEach(ctx, len(cases), func(ctx context.Context, i int) error {
		uc := cases[i]
		ctx, span := obs.Start(ctx, "service.batchcell")
		defer span.End()
		var (
			res    Result
			cached bool
		)
		aerr := pool.Recover(func() error {
			var e error
			res, cached, e = s.analyze(ctx, uc)
			return e
		})
		line := batchCellLine{
			Index:   i,
			Program: uc.bench.Name,
			Config:  cache.ConfigID(uc.cfgIdx),
			Tech:    uc.tech.String(),
			Policy:  uc.cfg.Policy.String(),
		}
		if aerr != nil {
			if interrupt.Is(aerr) {
				s.metrics.countCellCanceled()
				return interrupt.Wrap(aerr)
			}
			s.metrics.countBatchCell(true)
			line.Error = sanitizeCellError(aerr)
			wmu.Lock()
			failed++
			wmu.Unlock()
			writeLine(line)
			return nil
		}
		s.metrics.countBatchCell(false)
		line.Cached = cached
		line.Result = &res
		wmu.Lock()
		ok++
		if cached {
			cacheHits++
		}
		wmu.Unlock()
		writeLine(line)
		return nil
	})

	summary := batchSummaryLine{
		Done:      true,
		Total:     len(cases),
		OK:        ok,
		Failed:    failed,
		CacheHits: cacheHits,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	if batchErr != nil {
		summary.Error = interrupt.Wrap(batchErr).Error()
	}
	writeLine(summary)
}

// sanitizeCellError renders a cell failure for the stream: panics keep
// their stack out of the response (it goes to the log via pool counters),
// matching the /v1/analyze 500 body policy.
func sanitizeCellError(err error) string {
	var pe *pool.PanicError
	if errors.As(err, &pe) {
		return fmt.Sprintf("internal panic during analysis: %v", pe.Value)
	}
	return err.Error()
}
