package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ucp/internal/store"
)

// openStore opens a result store in dir for one test server.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestStoreRestartServesFromDisk is the issue's durability criterion: a
// server restarted onto the same store directory answers a previously
// computed analysis from disk — byte-identical Result, counted as a store
// hit, with no pipeline execution.
func TestStoreRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	// First server computes and persists.
	st1 := openStore(t, dir)
	ts1, svc1 := testServer(t, Config{Store: st1})
	resp, body := postJSON(t, ts1.URL+"/v1/analyze", smallAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("first analyze: %d %s", resp.StatusCode, body)
	}
	var first analyzeResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	firstJSON, err := json.Marshal(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	svc1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second server: fresh process state (empty memory cache, zeroed
	// counters), same directory.
	st2 := openStore(t, dir)
	ts2, _ := testServer(t, Config{Store: st2})
	resp, body = postJSON(t, ts2.URL+"/v1/analyze", smallAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("restart analyze: %d %s", resp.StatusCode, body)
	}
	var second analyzeResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("restarted server must serve the persisted result as a cache hit")
	}
	secondJSON, err := json.Marshal(second.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstJSON, secondJSON) {
		t.Errorf("restart result differs:\n before %s\n after  %s", firstJSON, secondJSON)
	}

	_, mb := getBody(t, ts2.URL+"/metrics")
	m := string(mb)
	if v := metricValue(t, m, "ucp_result_store_hits_total"); v < 1 {
		t.Errorf("ucp_result_store_hits_total = %g, want >= 1", v)
	}
	if v := metricValue(t, m, "ucp_analyses_total"); v != 0 {
		t.Errorf("ucp_analyses_total = %g, want 0 (the pipeline must not re-run)", v)
	}
	if v := metricValue(t, m, "ucp_result_store_entries"); v < 1 {
		t.Errorf("ucp_result_store_entries = %g, want >= 1", v)
	}
}

// TestStoreSharedAcrossReplicas: two live servers on one directory behave
// like replicas behind a load balancer — a result computed by one is a
// store hit for the other.
func TestStoreSharedAcrossReplicas(t *testing.T) {
	dir := t.TempDir()
	tsA, _ := testServer(t, Config{Store: openStore(t, dir)})
	tsB, _ := testServer(t, Config{Store: openStore(t, dir)})

	if resp, body := postJSON(t, tsA.URL+"/v1/analyze", smallAnalyze); resp.StatusCode != 200 {
		t.Fatalf("replica A: %d %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, tsB.URL+"/v1/analyze", smallAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("replica B: %d %s", resp.StatusCode, body)
	}
	var got analyzeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Error("replica B must find replica A's result in the shared store")
	}
	_, mb := getBody(t, tsB.URL+"/metrics")
	if v := metricValue(t, string(mb), "ucp_analyses_total"); v != 0 {
		t.Errorf("replica B ucp_analyses_total = %g, want 0", v)
	}
}

// TestSingleflightCoalescesIdenticalAnalyzes is the issue's thundering-herd
// criterion: N concurrent identical /v1/analyze requests run the pipeline
// exactly once; the herd rides the leader's flight.
func TestSingleflightCoalescesIdenticalAnalyzes(t *testing.T) {
	// The delay holds the leader in the pipeline long enough for the whole
	// herd to arrive and join its flight.
	armFaults(t, "service.analyze:*=delay:300ms")
	ts, _ := testServer(t, Config{Workers: 4})

	const herd = 8
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		coalesced int
		executed  int
	)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze)
			if resp.StatusCode != 200 {
				t.Errorf("herd member: %d %s", resp.StatusCode, body)
				return
			}
			var r analyzeResponse
			if err := json.Unmarshal(body, &r); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if r.Coalesced {
				coalesced++
			}
			if !r.Coalesced && !r.Cached {
				executed++
			}
		}()
	}
	wg.Wait()

	_, mb := getBody(t, ts.URL+"/metrics")
	m := string(mb)
	if v := metricValue(t, m, "ucp_analyses_total"); v != 1 {
		t.Fatalf("ucp_analyses_total = %g, want exactly 1 for %d identical requests", v, herd)
	}
	if executed != 1 {
		t.Errorf("executed (neither coalesced nor cached) = %d, want exactly 1 leader", executed)
	}
	if coalesced < 1 {
		t.Errorf("coalesced = 0, want at least one joined waiter out of %d", herd)
	}
	if v := metricValue(t, m, "ucp_flight_merged_total"); v != float64(coalesced) {
		t.Errorf("ucp_flight_merged_total = %g, want %d (one per coalesced response)", v, coalesced)
	}
}

// TestSingleflightWaiterTimeoutKeepsFlight: a waiter whose own (lowered)
// deadline expires gets 504, but the flight keeps running on the server's
// context and serves the patient caller — and the published result means
// no re-execution afterwards.
func TestSingleflightWaiterTimeoutKeepsFlight(t *testing.T) {
	armFaults(t, "service.analyze:*=delay:400ms")
	ts, _ := testServer(t, Config{Workers: 2})

	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze)
		done <- resp.StatusCode
	}()
	// Let the leader start, then join with a deadline shorter than the
	// injected delay.
	time.Sleep(100 * time.Millisecond)
	resp, body := postJSON(t, ts.URL+"/v1/analyze?timeout=50ms", smallAnalyze)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("impatient waiter: %d %s, want 504", resp.StatusCode, body)
	}
	if leader := <-done; leader != 200 {
		t.Fatalf("leader: %d, want 200 — the waiter's timeout must not kill the flight", leader)
	}
	_, mb := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, string(mb), "ucp_analyses_total"); v != 1 {
		t.Errorf("ucp_analyses_total = %g, want 1", v)
	}
}

// decodeBatchStream splits an NDJSON batch response into cell lines and
// the closing summary.
func decodeBatchStream(t *testing.T, body []byte) ([]batchCellLine, batchSummaryLine) {
	t.Helper()
	var (
		cells   []batchCellLine
		summary batchSummaryLine
		sawDone bool
	)
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if sawDone {
			t.Fatalf("line after summary: %s", line)
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatal(err)
			}
			sawDone = true
			continue
		}
		var cell batchCellLine
		if err := json.Unmarshal(line, &cell); err != nil {
			t.Fatal(err)
		}
		cells = append(cells, cell)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatalf("stream ended without a summary line:\n%s", body)
	}
	return cells, summary
}

// TestBatchStreamsCells: the happy path — explicit cells stream back as
// NDJSON, one line per cell plus a summary, and a repeat batch is answered
// from the cache.
func TestBatchStreamsCells(t *testing.T) {
	ts, _ := testServer(t, Config{})
	req := `{"cells":[
		{"program":"fibcall","config":"k1","tech":"45nm"},
		{"program":"fac","config":"k2","tech":"32nm"}],
		"runs":1,"validation_budget":20}`

	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	cells, summary := decodeBatchStream(t, body)
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if summary.Total != 2 || summary.OK != 2 || summary.Failed != 0 {
		t.Fatalf("summary = %+v, want total 2, ok 2", summary)
	}
	byIndex := map[int]batchCellLine{}
	for _, c := range cells {
		byIndex[c.Index] = c
	}
	if c := byIndex[0]; c.Program != "fibcall" || c.Config != "k1" || c.Tech != "45nm" {
		t.Errorf("cell 0 = %+v, want fibcall/k1/45nm", c)
	}
	if c := byIndex[1]; c.Program != "fac" || c.Config != "k2" || c.Tech != "32nm" {
		t.Errorf("cell 1 = %+v, want fac/k2/32nm", c)
	}
	for i, c := range byIndex {
		if c.Result == nil || c.Error != "" {
			t.Errorf("cell %d: result %v, error %q", i, c.Result, c.Error)
		} else if c.Result.WCETOrig <= 0 {
			t.Errorf("cell %d: degenerate result %+v", i, c.Result)
		}
	}

	// The same batch again: both cells from the cache.
	resp, body = postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != 200 {
		t.Fatalf("second batch: %d", resp.StatusCode)
	}
	_, summary = decodeBatchStream(t, body)
	if summary.CacheHits != 2 {
		t.Errorf("second batch cache_hits = %d, want 2", summary.CacheHits)
	}

	_, mb := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, string(mb), "ucp_batch_cells_total"); v != 4 {
		t.Errorf("ucp_batch_cells_total = %g, want 4", v)
	}
}

// TestBatchMatrixExpansion: a matrix batch expands exactly like /v1/sweep.
func TestBatchMatrixExpansion(t *testing.T) {
	ts, _ := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/batch",
		`{"programs":["fibcall","fac"],"configs":["k1"],"techs":["45nm"],"runs":1,"validation_budget":20}`)
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	cells, summary := decodeBatchStream(t, body)
	if len(cells) != 2 || summary.Total != 2 || summary.OK != 2 {
		t.Fatalf("cells = %d, summary = %+v, want 2/2", len(cells), summary)
	}
}

// TestBatchCellFailureIsolated: an injected failure in one cell becomes
// one error line; siblings complete and the stream still closes with a
// summary. This is the per-cell isolation criterion for /v1/batch.
func TestBatchCellFailureIsolated(t *testing.T) {
	armFaults(t, "experiment.cell:fibcall/k1/45nm=panic")
	ts, _ := testServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/batch", `{"cells":[
		{"program":"fibcall","config":"k1","tech":"45nm"},
		{"program":"fac","config":"k1","tech":"45nm"}],
		"runs":1,"validation_budget":20}`)
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	cells, summary := decodeBatchStream(t, body)
	if summary.OK != 1 || summary.Failed != 1 {
		t.Fatalf("summary = %+v, want ok 1 failed 1", summary)
	}
	var failed, succeeded *batchCellLine
	for i := range cells {
		if cells[i].Error != "" {
			failed = &cells[i]
		} else {
			succeeded = &cells[i]
		}
	}
	if failed == nil || failed.Program != "fibcall" {
		t.Fatalf("failed line = %+v, want fibcall", failed)
	}
	if !strings.Contains(failed.Error, "panic") {
		t.Errorf("failed error = %q, want a sanitized panic message", failed.Error)
	}
	if strings.Contains(failed.Error, "goroutine") {
		t.Errorf("error leaks a stack trace: %q", failed.Error)
	}
	if succeeded == nil || succeeded.Program != "fac" || succeeded.Result == nil {
		t.Fatalf("sibling = %+v, want a fac result", succeeded)
	}
	_, mb := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, string(mb), "ucp_batch_cell_failures_total"); v != 1 {
		t.Errorf("ucp_batch_cell_failures_total = %g, want 1", v)
	}
}

// TestBatchValidation: resolution errors surface as plain HTTP errors
// before any streaming begins.
func TestBatchValidation(t *testing.T) {
	ts, _ := testServer(t, Config{})
	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"unknown program", `{"cells":[{"program":"nope","config":"k1","tech":"45nm"}]}`, 404},
		{"bad config", `{"cells":[{"program":"fibcall","config":"zzz","tech":"45nm"}]}`, 400},
		{"malformed json", `{"cells":`, 400},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/batch", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}

// TestWorkerCellEndpoint: the worker endpoint exists only when enabled,
// and returns a full experiment.Cell for a coordinator to place.
func TestWorkerCellEndpoint(t *testing.T) {
	ts, _ := testServer(t, Config{EnableWorker: true})
	resp, body := postJSON(t, ts.URL+"/v1/worker/cell",
		`{"program":"fibcall","config":"k1","tech":"45nm","runs":1,"validation_budget":20,"skip_reduced":true}`)
	if resp.StatusCode != 200 {
		t.Fatalf("worker cell: %d %s", resp.StatusCode, body)
	}
	var env struct {
		Cell struct {
			Program  string
			ConfigID string
			TauOrig  int64
			TauOpt   int64
		} `json:"cell"`
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	cell := env.Cell
	if cell.Program != "fibcall" || cell.ConfigID != "k1" || cell.TauOrig <= 0 {
		t.Fatalf("cell = %+v, want a measured fibcall/k1", cell)
	}
	// No traceparent header on the request: the envelope ships no trace.
	if len(env.Trace) != 0 {
		t.Errorf("untraced worker cell returned trace %s", env.Trace)
	}

	// Errors keep the analyze-path status mapping.
	resp, _ = postJSON(t, ts.URL+"/v1/worker/cell", `{"program":"nope","config":"k1","tech":"45nm"}`)
	if resp.StatusCode != 404 {
		t.Errorf("unknown program: %d, want 404", resp.StatusCode)
	}

	// A default server does not expose the endpoint at all.
	tsOff, _ := testServer(t, Config{})
	resp, _ = postJSON(t, tsOff.URL+"/v1/worker/cell",
		`{"program":"fibcall","config":"k1","tech":"45nm"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled worker endpoint: %d, want 404", resp.StatusCode)
	}
}

// TestDrainingSendsRetryAfter pins the satellite fix: every admission
// refusal during drain — analyze, sweep, batch, worker cell — carries the
// same Retry-After hint the 429 path has always had.
func TestDrainingSendsRetryAfter(t *testing.T) {
	ts, svc := testServer(t, Config{EnableWorker: true})
	svc.Drain()

	for _, tc := range []struct{ path, body string }{
		{"/v1/analyze", smallAnalyze},
		{"/v1/sweep", `{"programs":["fibcall"]}`},
		{"/v1/batch", `{"cells":[{"program":"fibcall","config":"k1","tech":"45nm"}]}`},
		{"/v1/worker/cell", smallAnalyze},
	} {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: %d (%s), want 503", tc.path, resp.StatusCode, body)
			continue
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Errorf("%s: draining 503 without a Retry-After header", tc.path)
		} else if _, err := fmt.Sscanf(ra, "%d", new(int)); err != nil {
			t.Errorf("%s: Retry-After = %q, want delay-seconds", tc.path, ra)
		}
	}
}
