package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"ucp/internal/cache"
	"ucp/internal/energy"
	"ucp/internal/obs"
)

// hierAnalyze is smallAnalyze on a two-level hierarchy: the k1 L1 (256B)
// backed by an 8KB L2.
const hierAnalyze = `{"program":"fibcall","config":"k1","tech":"45nm","runs":1,"validation_budget":20,` +
	`"l2":{"assoc":4,"block_bytes":32,"capacity_bytes":8192}}`

// TestCacheKeyHierarchyNoCollision is the satellite regression test for the
// content address: an L1-only key and an L1+L2 key over the same use case
// must never collide, distinct L2 geometries must get distinct keys, and
// the single-level key must be byte-identical to the pre-hierarchy scheme
// (append-only suffix).
func TestCacheKeyHierarchyNoCollision(t *testing.T) {
	l1 := cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 256}
	none := cache.Config{}
	l2a := cache.Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 8192}
	l2b := cache.Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 16384}
	l2c := cache.Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 8192, Policy: cache.FIFO}

	keys := map[string]string{}
	for name, l2 := range map[string]cache.Config{"none": none, "a": l2a, "b": l2b, "c": l2c} {
		k := cacheKey("fp", l1, energy.Tech45, 3, 0, l2)
		for prev, pk := range keys {
			if pk == k {
				t.Fatalf("key collision between L2 variants %q and %q", prev, name)
			}
		}
		keys[name] = k
	}
	if keys["none"] != cacheKey("fp", l1, energy.Tech45, 3, 0, cache.Config{}) {
		t.Fatal("single-level key not deterministic")
	}
}

func TestAnalyzeWithL2(t *testing.T) {
	ts, _ := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", hierAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out analyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.L2 == nil {
		t.Fatalf("hierarchy response missing l2 block: %s", body)
	}
	if out.L2.CapacityBytes != 8192 || out.L2.Policy != "lru" {
		t.Fatalf("l2 block wrong: %+v", out.L2)
	}
	if out.WCETOpt > out.WCETOrig {
		t.Fatalf("WCET regressed: %d -> %d", out.WCETOrig, out.WCETOpt)
	}

	// The same use case without the L2 must answer from a *different*
	// cache entry with no l2 block — the two requests must not share a key.
	resp2, body2 := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze)
	if resp2.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp2.StatusCode, body2)
	}
	var out2 analyzeResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.L2 != nil {
		t.Fatalf("single-level response grew an l2 block: %s", body2)
	}
	if bytes.Contains(body2, []byte(`"l2"`)) {
		t.Fatalf("single-level response body mentions l2: %s", body2)
	}
	if out2.CacheKey == out.CacheKey {
		t.Fatal("L1-only and L1+L2 requests share a cache key")
	}
}

// TestAnalyzeDegenerateL2 is the satellite-3 service check: inconsistent
// hierarchy geometry is a 400, never a 500 or a silent single-level run.
func TestAnalyzeDegenerateL2(t *testing.T) {
	ts, _ := testServer(t, Config{})
	cases := []string{
		// L2 smaller than the k1 L1 (256B).
		`{"program":"fibcall","config":"k1","tech":"45nm","l2":{"assoc":1,"block_bytes":16,"capacity_bytes":128}}`,
		// L2 block size not a multiple of the L1's (k1 blocks are 16B).
		`{"program":"fibcall","config":"k1","tech":"45nm","l2":{"assoc":1,"block_bytes":24,"capacity_bytes":8192}}`,
		// L2 invalid on its own.
		`{"program":"fibcall","config":"k1","tech":"45nm","l2":{"assoc":3,"block_bytes":16,"capacity_bytes":8192}}`,
		// Unknown L2 policy.
		`{"program":"fibcall","config":"k1","tech":"45nm","l2":{"assoc":4,"block_bytes":32,"capacity_bytes":8192,"policy":"rand"}}`,
	}
	for _, body := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/analyze", body)
		if resp.StatusCode != 400 {
			t.Errorf("analyze %s: status = %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
	// The same geometry guard holds on the sweep and batch surfaces.
	resp, b := postJSON(t, ts.URL+"/v1/sweep",
		`{"programs":["fibcall"],"configs":["k1"],"l2":{"assoc":1,"block_bytes":16,"capacity_bytes":64}}`)
	if resp.StatusCode != 400 {
		t.Errorf("sweep: status = %d (%s), want 400", resp.StatusCode, b)
	}
	resp, b = postJSON(t, ts.URL+"/v1/batch",
		`{"programs":["fibcall"],"configs":["k1"],"l2":{"assoc":1,"block_bytes":16,"capacity_bytes":64}}`)
	if resp.StatusCode != 400 {
		t.Errorf("batch: status = %d (%s), want 400", resp.StatusCode, b)
	}
}

func TestSweepWithL2(t *testing.T) {
	ts, _ := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep",
		`{"programs":["fibcall","bs"],"configs":["k1"],"techs":["45nm"],"runs":1,"validation_budget":20,`+
			`"l2":{"assoc":4,"block_bytes":32,"capacity_bytes":8192}}`)
	if resp.StatusCode != 202 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var acc struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = getBody(t, ts.URL+"/v1/jobs/"+acc.JobID)
		if resp.StatusCode != 200 {
			t.Fatalf("job status = %d: %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == string(jobDone) {
			if len(st.Results) != 2 {
				t.Fatalf("results = %d, want 2", len(st.Results))
			}
			for _, r := range st.Results {
				if r.L2 == nil || r.L2.CapacityBytes != 8192 {
					t.Fatalf("sweep result missing l2 block: %+v", r)
				}
			}
			return
		}
		if st.State == string(jobFailed) {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestBatchWithL2(t *testing.T) {
	ts, _ := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/batch",
		`{"programs":["fibcall"],"configs":["k1","k13"],"techs":["45nm"],"runs":1,"validation_budget":20,`+
			`"l2":{"assoc":4,"block_bytes":32,"capacity_bytes":8192}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	cells := 0
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Done   bool    `json:"done"`
			Result *Result `json:"result"`
			Error  string  `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", line, err)
		}
		if probe.Done {
			continue
		}
		cells++
		if probe.Error != "" {
			t.Fatalf("cell failed: %s", probe.Error)
		}
		if probe.Result == nil || probe.Result.L2 == nil {
			t.Fatalf("batch cell missing l2 block: %s", line)
		}
	}
	if cells != 2 {
		t.Fatalf("cells = %d, want 2", cells)
	}
}

func TestConfigsL2Query(t *testing.T) {
	ts, _ := testServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/v1/configs?l2_assoc=4&l2_block_bytes=32&l2_capacity_bytes=2048")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var cfgs []configInfo
	if err := json.Unmarshal(body, &cfgs); err != nil {
		t.Fatal(err)
	}
	sawValid, sawInvalid := false, false
	for _, c := range cfgs {
		if c.L2Valid == nil {
			t.Fatalf("config %s missing l2_valid", c.Label)
		}
		if *c.L2Valid {
			sawValid = true
			if c.CapacityBytes > 2048 {
				t.Errorf("config %s (%dB) cannot sit under a 2KB L2", c.Label, c.CapacityBytes)
			}
		} else {
			sawInvalid = true
		}
	}
	if !sawValid || !sawInvalid {
		t.Fatalf("want both valid and invalid pairings against a 2KB L2 (valid=%t invalid=%t)", sawValid, sawInvalid)
	}

	// Degenerate l2_* queries are 400; no query keeps the plain shape.
	resp, _ = getBody(t, ts.URL+"/v1/configs?l2_assoc=4")
	if resp.StatusCode != 400 {
		t.Fatalf("partial l2 query: status = %d, want 400", resp.StatusCode)
	}
	resp, body = getBody(t, ts.URL+"/v1/configs")
	if resp.StatusCode != 200 || bytes.Contains(body, []byte("l2_valid")) {
		t.Fatalf("plain configs changed shape: %d %s", resp.StatusCode, body[:100])
	}
}

// TestLevelCounterFamilies checks that the per-level tally counters the
// experiment layer maintains surface on /metrics with both level children
// after a hierarchy analysis, under lint-clean metadata.
func TestLevelCounterFamilies(t *testing.T) {
	ts, _ := testServer(t, Config{})
	if resp, body := postJSON(t, ts.URL+"/v1/analyze", hierAnalyze); resp.StatusCode != 200 {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, body)
	}
	_, mbody := getBody(t, ts.URL+"/metrics")
	m := string(mbody)
	if err := obs.Lint(strings.NewReader(m)); err != nil {
		t.Errorf("exposition fails lint: %v", err)
	}
	for _, want := range []string{
		"# TYPE ucp_cache_level_hits_total counter",
		"# TYPE ucp_cache_level_misses_total counter",
		`ucp_cache_level_hits_total{level="1"}`,
		`ucp_cache_level_hits_total{level="2"}`,
		`ucp_cache_level_misses_total{level="1"}`,
		`ucp_cache_level_misses_total{level="2"}`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestAnalyzeTraceCarriesLevelTallies checks the satellite-6 surface: a
// ?trace=1 hierarchy analysis exposes the per-level hit/miss tallies as
// span attributes of the pipeline's cell span.
func TestAnalyzeTraceCarriesLevelTallies(t *testing.T) {
	ts, _ := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/analyze?trace=1", hierAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	for _, attr := range []string{`"l1_hits"`, `"l1_misses"`, `"l2_hits"`, `"l2_misses"`} {
		if !bytes.Contains(body, []byte(attr)) {
			t.Errorf("trace missing %s attribute", attr)
		}
	}
}
