package service

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: a bounded LRU keyed by
// the SHA-256 cache key of a use case (see cacheKey). Because the key
// covers the program fingerprint and every option that changes the
// numbers, a hit can be returned verbatim — the cached value is the value
// a fresh analysis would compute.
type resultCache struct {
	mu    sync.Mutex
	limit int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key string
	val Result
}

func newResultCache(limit int) *resultCache {
	if limit <= 0 {
		limit = 512
	}
	return &resultCache{
		limit: limit,
		ll:    list.New(),
		byKey: make(map[string]*list.Element, limit),
	}
}

// get returns the cached result and promotes it to most recently used.
func (c *resultCache) get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return Result{}, false
}

// put stores the result, evicting the least recently used entry when the
// bound is exceeded. Storing an existing key refreshes its value and
// recency.
func (c *resultCache) put(key string, v Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: v})
	for c.ll.Len() > c.limit {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns the hit/miss counters and the current entry count.
func (c *resultCache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
