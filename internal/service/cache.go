package service

import (
	"container/list"
	"context"
	"encoding/json"
	"sync"

	"ucp/internal/obs"
	"ucp/internal/store"
)

// resultCache is the content-addressed result store: a bounded LRU keyed by
// the SHA-256 cache key of a use case (see cacheKey). Because the key
// covers the program fingerprint and every option that changes the
// numbers, a hit can be returned verbatim — the cached value is the value
// a fresh analysis would compute.
type resultCache struct {
	mu    sync.Mutex
	limit int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key string
	val Result
}

func newResultCache(limit int) *resultCache {
	if limit <= 0 {
		limit = 512
	}
	return &resultCache{
		limit: limit,
		ll:    list.New(),
		byKey: make(map[string]*list.Element, limit),
	}
}

// get returns the cached result and promotes it to most recently used.
func (c *resultCache) get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return Result{}, false
}

// put stores the result, evicting the least recently used entry when the
// bound is exceeded. Storing an existing key refreshes its value and
// recency.
func (c *resultCache) put(key string, v Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: v})
	for c.ll.Len() > c.limit {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns the hit/miss counters and the current entry count.
func (c *resultCache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// tieredCache layers the in-memory LRU over the optional persistent
// content-addressed store (internal/store): memory answers the hot set at
// pointer speed, disk survives restarts and is shared across replicas.
// Both tiers are keyed by the same sha256 content address, and both hold
// the same deterministic Result — a disk hit is promoted into memory and
// is indistinguishable from a memory hit to the caller.
type tieredCache struct {
	mem  *resultCache
	disk *store.Store // nil = memory only (the pre-store behavior)
}

func newTieredCache(memEntries int, disk *store.Store) *tieredCache {
	return &tieredCache{mem: newResultCache(memEntries), disk: disk}
}

// get consults memory, then the store. A store hit decodes the persisted
// envelope payload and promotes it into the memory tier.
func (c *tieredCache) get(ctx context.Context, key string) (Result, bool) {
	if v, ok := c.mem.get(key); ok {
		return v, true
	}
	if c.disk == nil {
		return Result{}, false
	}
	_, span := obs.Start(ctx, "store.get")
	payload, ok := c.disk.Get(key)
	span.End()
	if !ok {
		return Result{}, false
	}
	var v Result
	if err := json.Unmarshal(payload, &v); err != nil {
		// The envelope verified but the schema moved underneath us (the
		// cache-key version tag should prevent this); treat as a miss.
		return Result{}, false
	}
	c.mem.put(key, v)
	return v, true
}

// put publishes the result to both tiers. Store write failures (disk
// full, permissions) are surfaced to the caller's log by returning the
// error, but the memory tier has already accepted the value — persistence
// is an upgrade, never a gate.
func (c *tieredCache) put(ctx context.Context, key string, v Result) error {
	c.mem.put(key, v)
	if c.disk == nil {
		return nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, span := obs.Start(ctx, "store.put")
	err = c.disk.Put(key, payload)
	span.End()
	return err
}

// stats exposes the memory tier's counters (the ucp_cache_* families);
// the store reports its own through store.Stats.
func (c *tieredCache) stats() (hits, misses int64, entries int) {
	return c.mem.stats()
}
