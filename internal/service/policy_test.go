package service

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPolicyAnalyze runs the same cheap use case under two policies: both
// must produce complete results, echo their policy, and address the result
// cache under different keys.
func TestPolicyAnalyze(t *testing.T) {
	ts, _ := testServer(t, Config{})

	results := map[string]analyzeResponse{}
	for _, pol := range []string{"lru", "fifo"} {
		body := `{"program":"fibcall","config":"k1","tech":"45nm","runs":1,"validation_budget":20,"policy":"` + pol + `"}`
		resp, b := postJSON(t, ts.URL+"/v1/analyze", body)
		if resp.StatusCode != 200 {
			t.Fatalf("%s analyze: status %d: %s", pol, resp.StatusCode, b)
		}
		var r analyzeResponse
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatal(err)
		}
		if r.Policy != pol {
			t.Errorf("echoed policy = %q, want %q", r.Policy, pol)
		}
		if r.WCETOrig <= 0 || r.ACETOrig <= 0 || r.EnergyOrigPJ <= 0 {
			t.Errorf("%s: degenerate measurements: %+v", pol, r.Result)
		}
		results[pol] = r
	}
	if results["lru"].CacheKey == results["fifo"].CacheKey {
		t.Error("policy must be part of the cache key; lru and fifo collided")
	}

	// An omitted policy field and an explicit "lru" are the same use case.
	resp, b := postJSON(t, ts.URL+"/v1/analyze",
		`{"program":"fibcall","config":"k1","tech":"45nm","runs":1,"validation_budget":20}`)
	if resp.StatusCode != 200 {
		t.Fatalf("default-policy analyze: status %d: %s", resp.StatusCode, b)
	}
	var def analyzeResponse
	if err := json.Unmarshal(b, &def); err != nil {
		t.Fatal(err)
	}
	if !def.Cached || def.CacheKey != results["lru"].CacheKey {
		t.Errorf("omitted policy should hit the lru cache entry (cached=%v, key match=%v)",
			def.Cached, def.CacheKey == results["lru"].CacheKey)
	}

	_, mbody := getBody(t, ts.URL+"/metrics")
	m := string(mbody)
	for _, want := range []string{
		`ucp_analysis_policy_total{policy="lru"} 1`,
		`ucp_analysis_policy_total{policy="fifo"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

func TestPolicyAnalyzeRejectsUnknown(t *testing.T) {
	ts, _ := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/analyze",
		`{"program":"fibcall","config":"k1","tech":"45nm","policy":"random"}`)
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "policy") {
		t.Fatalf("error should name the policy: %s", body)
	}
}

// Every Table 2 associativity is a power of two, so /v1/configs must
// advertise all three policies on every entry.
func TestPolicyConfigsAdvertisePolicies(t *testing.T) {
	ts, _ := testServer(t, Config{})
	_, body := getBody(t, ts.URL+"/v1/configs")
	var cfgs []configInfo
	if err := json.Unmarshal(body, &cfgs); err != nil {
		t.Fatal(err)
	}
	for _, c := range cfgs {
		if len(c.Policies) != 3 {
			t.Errorf("%s advertises %v; want lru, fifo, plru", c.Label, c.Policies)
		}
	}
}

// A sweep with an explicit policy axis multiplies the matrix; an omitted
// axis stays LRU-only so pre-existing sweeps keep their size.
func TestPolicySweepAxis(t *testing.T) {
	ts, _ := testServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/sweep",
		`{"programs":["fibcall"],"configs":["k1"],"techs":["45nm"],"policies":["lru","fifo","plru"],"runs":1,"validation_budget":20}`)
	if resp.StatusCode != 202 {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID     string `json:"job_id"`
		Cells     int    `json:"cells"`
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Cells != 3 {
		t.Fatalf("cells = %d, want 3 (one per policy)", accepted.Cells)
	}
	st := pollJob(t, ts.URL+accepted.StatusURL)
	if st.State != "done" {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	seen := map[string]bool{}
	for _, r := range st.Results {
		seen[r.Policy] = true
	}
	if !seen["lru"] || !seen["fifo"] || !seen["plru"] {
		t.Fatalf("sweep results cover %v; want all three policies", seen)
	}

	resp, body = postJSON(t, ts.URL+"/v1/sweep",
		`{"programs":["fibcall"],"configs":["k1"],"techs":["45nm"],"runs":1,"validation_budget":20}`)
	if resp.StatusCode != 202 {
		t.Fatalf("default sweep: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Cells != 1 {
		t.Fatalf("default sweep cells = %d, want 1 (policy axis defaults to lru only)", accepted.Cells)
	}

	resp, body = postJSON(t, ts.URL+"/v1/sweep",
		`{"programs":["fibcall"],"configs":["k1"],"techs":["45nm"],"policies":["bogus"]}`)
	if resp.StatusCode != 400 {
		t.Fatalf("bogus policy sweep: status %d, want 400 (%s)", resp.StatusCode, body)
	}
}
