package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"ucp/internal/cache"
	"ucp/internal/cliutil"
	"ucp/internal/core"
	"ucp/internal/energy"
	"ucp/internal/experiment"
	"ucp/internal/faults"
	"ucp/internal/isa"
	"ucp/internal/malardalen"
)

// AnalyzeRequest selects one use case: a benchmark program, a Table 2
// cache configuration, and a process technology.
type AnalyzeRequest struct {
	Program string `json:"program"`
	Config  string `json:"config"`
	Tech    string `json:"tech"`
	// Policy is the cache replacement policy ("lru", "fifo", "plru");
	// empty selects LRU, the paper's machine model.
	Policy string `json:"policy,omitempty"`
	// Runs is the number of average-case simulations (default 3).
	Runs int `json:"runs,omitempty"`
	// ValidationBudget caps the optimizer's re-analyses (0 = default).
	ValidationBudget int `json:"validation_budget,omitempty"`
	// L2 backs the selected Table 2 configuration (the L1) with a second
	// cache level; omitted = the paper's single-level model.
	L2 *L2Request `json:"l2,omitempty"`
}

// L2Request is the optional second cache level of a request. The geometry
// must form a valid hierarchy with the selected L1 (capacity at least the
// L1's, block size a multiple of the L1's) or the request is rejected with
// 400.
type L2Request struct {
	Assoc         int `json:"assoc"`
	BlockBytes    int `json:"block_bytes"`
	CapacityBytes int `json:"capacity_bytes"`
	// Policy is the L2 replacement policy; empty selects LRU.
	Policy string `json:"policy,omitempty"`
}

// ResultL2 carries the per-L2 measurements of a hierarchy analysis.
type ResultL2 struct {
	Assoc          int     `json:"assoc"`
	BlockBytes     int     `json:"block_bytes"`
	CapacityBytes  int     `json:"capacity_bytes"`
	Policy         string  `json:"policy"`
	InsertedL2     int     `json:"inserted_l2"`
	WCETMissesOrig int64   `json:"wcet_misses_orig"`
	WCETMissesOpt  int64   `json:"wcet_misses_opt"`
	MissRateOrig   float64 `json:"missrate_orig"`
	MissRateOpt    float64 `json:"missrate_opt"`
}

// Result is the measurement of one use case: the paper's per-cell metrics
// before and after the prefetch optimization, plus the content address the
// result is cached under.
type Result struct {
	Program       string  `json:"program"`
	Config        string  `json:"config"`
	Assoc         int     `json:"assoc"`
	BlockBytes    int     `json:"block_bytes"`
	CapacityBytes int     `json:"capacity_bytes"`
	Policy        string  `json:"policy"`
	Tech          string  `json:"tech"`
	Inserted      int     `json:"inserted"`
	Cond3Reverted bool    `json:"cond3_reverted"`
	WCETOrig      int64   `json:"wcet_orig"`
	WCETOpt       int64   `json:"wcet_opt"`
	ACETOrig      float64 `json:"acet_orig"`
	ACETOpt       float64 `json:"acet_opt"`
	MissRateOrig  float64 `json:"missrate_orig"`
	MissRateOpt   float64 `json:"missrate_opt"`
	EnergyOrigPJ  float64 `json:"energy_orig_pj"`
	EnergyOptPJ   float64 `json:"energy_opt_pj"`
	// L2 is present only for hierarchy requests; single-level responses
	// keep their historical shape.
	L2       *ResultL2 `json:"l2,omitempty"`
	CacheKey string    `json:"cache_key"`
}

// httpError carries a status code from request resolution to the handler.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// useCase is a fully resolved AnalyzeRequest.
type useCase struct {
	bench  malardalen.Benchmark
	cfgIdx int
	cfg    cache.Config
	// l2 is the second cache level; the zero value means single-level.
	l2     cache.Config
	tech   energy.Tech
	runs   int
	budget int
}

// resolve validates an AnalyzeRequest against the benchmark suite and the
// configuration table. An unknown program is 404 (the resource does not
// exist); malformed configs, techs, and option values are 400.
func (s *Server) resolve(req AnalyzeRequest) (useCase, error) {
	b, ok := s.benches[req.Program]
	if !ok {
		return useCase{}, errorf(404, "unknown benchmark %q", req.Program)
	}
	ci, err := cliutil.Config(req.Config)
	if err != nil {
		return useCase{}, errorf(400, "%v", err)
	}
	policy, err := cliutil.Policy(req.Policy)
	if err != nil {
		return useCase{}, errorf(400, "%v", err)
	}
	tech, err := cliutil.Tech(req.Tech)
	if err != nil {
		return useCase{}, errorf(400, "%v", err)
	}
	runs := req.Runs
	if runs == 0 {
		runs = 3
	}
	if runs < 0 || runs > maxRuns {
		return useCase{}, errorf(400, "runs %d out of range [1,%d]", req.Runs, maxRuns)
	}
	if req.ValidationBudget < 0 {
		return useCase{}, errorf(400, "validation_budget must be non-negative")
	}
	cfg := cache.Table2()[ci]
	cfg.Policy = policy
	if err := cfg.Valid(); err != nil {
		return useCase{}, errorf(400, "%v", err)
	}
	var l2 cache.Config
	if req.L2 != nil {
		l2pol, err := cliutil.Policy(req.L2.Policy)
		if err != nil {
			return useCase{}, errorf(400, "l2: %v", err)
		}
		l2 = cache.Config{
			Assoc:         req.L2.Assoc,
			BlockBytes:    req.L2.BlockBytes,
			CapacityBytes: req.L2.CapacityBytes,
			Policy:        l2pol,
		}
		// Degenerate hierarchy geometry (L2 smaller than L1, mismatched
		// block sizes, an invalid L2 on its own) is a client error.
		if err := (cache.Hierarchy{L1: cfg, L2: l2}).Valid(); err != nil {
			return useCase{}, errorf(400, "%v", err)
		}
	}
	return useCase{
		bench:  b,
		cfgIdx: ci,
		cfg:    cfg,
		l2:     l2,
		tech:   tech,
		runs:   runs,
		budget: req.ValidationBudget,
	}, nil
}

// maxRuns bounds the per-request simulation count so a single query cannot
// monopolize a worker for long.
const maxRuns = 64

// cacheKey is the content address of a use-case result: a SHA-256 over the
// program fingerprint (which already covers the full instruction stream,
// layout, and flow facts) and every option that changes the numbers. The
// leading version tag invalidates the scheme wholesale when the encoding
// or the pipeline semantics change. The replacement policy is part of the
// address: two requests differing only in policy must never share a result.
//
// A configured L2 appends its full geometry and policy behind an "|l2|"
// marker. The suffix is append-only and absent for single-level requests,
// so every pre-hierarchy key — including entries in persistent stores — is
// still addressed byte-identically, while an L1-only and an L1+L2 request
// can never collide (their preimages differ in the marker).
func cacheKey(fp string, cfg cache.Config, tech energy.Tech, runs, budget int, l2 cache.Config) string {
	pre := fmt.Appendf(nil, "ucp-v1|%s|%d|%d|%d|%s|%d|%d|%s",
		fp, cfg.Assoc, cfg.BlockBytes, cfg.CapacityBytes, tech, runs, budget, cfg.Policy)
	if l2 != (cache.Config{}) {
		pre = fmt.Appendf(pre, "|l2|%d|%d|%d|%s",
			l2.Assoc, l2.BlockBytes, l2.CapacityBytes, l2.Policy)
	}
	h := sha256.Sum256(pre)
	return hex.EncodeToString(h[:])
}

// keyFor computes the content address of a resolved use case.
func (s *Server) keyFor(uc useCase) string {
	return cacheKey(isa.Fingerprint(uc.bench.Prog), uc.cfg, uc.tech, uc.runs, uc.budget, uc.l2)
}

// analyze returns the measurement for one resolved use case, serving it
// from the content-addressed cache when an identical query has already
// been answered. cached reports where the result came from. The analysis
// polls ctx cooperatively; an interrupted analysis returns a typed
// interrupt error and caches nothing.
func (s *Server) analyze(ctx context.Context, uc useCase) (res Result, cached bool, err error) {
	res, _, cached, err = s.analyzeExplain(ctx, uc, false)
	return res, cached, err
}

// analyzeExplain is analyze with an optional per-prefetch-decision explain
// report. An explaining request bypasses the cache *read* — the cached
// Result carries no decisions, and a trace of a cache hit would explain
// nothing — but still publishes its Result for later plain requests.
func (s *Server) analyzeExplain(ctx context.Context, uc useCase, explain bool) (res Result, decisions []core.Decision, cached bool, err error) {
	key := s.keyFor(uc)
	if !explain {
		if v, ok := s.cache.get(ctx, key); ok {
			return v, nil, true, nil
		}
	}
	if err := faults.Fire(ctx, "service.analyze", uc.bench.Name); err != nil {
		return Result{}, nil, false, err
	}

	// The remote-execution seam: a coordinator-configured server ships the
	// cell to a worker replica instead of running the pipeline locally.
	runCell := experiment.RunCell
	if s.cfg.CellExec != nil {
		runCell = s.cfg.CellExec
	}
	start := time.Now()
	cell, err := runCell(ctx, uc.bench, uc.cfgIdx, uc.tech, experiment.Options{
		Policy:           uc.cfg.Policy,
		L2:               uc.l2,
		Runs:             uc.runs,
		ValidationBudget: uc.budget,
		SkipReduced:      true,
		Explain:          explain,
	})
	s.metrics.observeAnalysis(time.Since(start), err == nil)
	s.metrics.countPolicy(uc.cfg.Policy.String())
	if err != nil {
		// The pipeline is total over the suite, so this is unexpected;
		// it is not a cacheable result either way.
		return Result{}, nil, false, fmt.Errorf("analyze %s/%s/%s: %w",
			uc.bench.Name, cache.ConfigID(uc.cfgIdx), uc.tech, err)
	}
	res = Result{
		Program:       cell.Program,
		Config:        cell.ConfigID,
		Assoc:         cell.Cfg.Assoc,
		BlockBytes:    cell.Cfg.BlockBytes,
		CapacityBytes: cell.Cfg.CapacityBytes,
		Policy:        cell.Cfg.Policy.String(),
		Tech:          cell.Tech.String(),
		Inserted:      cell.Inserted,
		Cond3Reverted: cell.Cond3Reverted,
		WCETOrig:      cell.TauOrig,
		WCETOpt:       cell.TauOpt,
		ACETOrig:      cell.ACETOrig,
		ACETOpt:       cell.ACETOpt,
		MissRateOrig:  cell.MissRateOrig,
		MissRateOpt:   cell.MissRateOpt,
		EnergyOrigPJ:  cell.EnergyOrig,
		EnergyOptPJ:   cell.EnergyOpt,
		CacheKey:      key,
	}
	if cell.HasL2() {
		res.L2 = &ResultL2{
			Assoc:          cell.L2Cfg.Assoc,
			BlockBytes:     cell.L2Cfg.BlockBytes,
			CapacityBytes:  cell.L2Cfg.CapacityBytes,
			Policy:         cell.L2Cfg.Policy.String(),
			InsertedL2:     cell.InsertedL2,
			WCETMissesOrig: cell.L2MissWOrig,
			WCETMissesOpt:  cell.L2MissWOpt,
			MissRateOrig:   cell.L2MissRateOrig,
			MissRateOpt:    cell.L2MissRateOpt,
		}
	}
	if perr := s.cache.put(ctx, key, res); perr != nil {
		// Persistence is an upgrade, not a gate: the result is correct and
		// resident in memory, so a full disk degrades into restart misses.
		s.log.Warn("result store put failed", "key", key, "err", perr)
	}
	return res, cell.Decisions, false, nil
}
