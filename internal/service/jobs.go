package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"ucp/internal/cache"
	"ucp/internal/interrupt"
	"ucp/internal/journal"
	"ucp/internal/obs"
	"ucp/internal/pool"
)

// SweepRequest submits a program × configuration × technology × policy
// matrix. An empty list selects the full axis (all 37 programs, all 36
// Table 2 configurations, both technologies) — except Policies, where empty
// means LRU only, so pre-existing sweeps keep their size and meaning.
type SweepRequest struct {
	Programs         []string `json:"programs,omitempty"`
	Configs          []string `json:"configs,omitempty"`
	Techs            []string `json:"techs,omitempty"`
	Policies         []string `json:"policies,omitempty"`
	Runs             int      `json:"runs,omitempty"`
	ValidationBudget int      `json:"validation_budget,omitempty"`
	// L2 backs every swept configuration with a second cache level;
	// omitted keeps the single-level matrix.
	L2 *L2Request `json:"l2,omitempty"`
}

type jobState string

const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// JobStatus is the wire view of a sweep job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Total int    `json:"total"`
	Done  int    `json:"done"`
	// CacheHits counts cells answered from the result cache.
	CacheHits int `json:"cache_hits"`
	// Failed counts cells whose analysis errored or panicked; those cells
	// carry a zero Result and an entry in CellErrors, the rest of the job
	// completes normally.
	Failed     int       `json:"failed,omitempty"`
	Error      string    `json:"error,omitempty"`
	CreatedAt  time.Time `json:"created_at"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// Resumed marks a job that survived a server restart: it was replayed
	// from the job journal and continued under its original ID.
	Resumed bool `json:"resumed,omitempty"`
	// CellErrors lists up to maxCellErrors per-cell failure messages
	// ("program/config/tech: reason"); Failed carries the full count.
	CellErrors []string `json:"cell_errors,omitempty"`
	// Results lists one entry per cell, in deterministic (program,
	// config, technology) request order; present only when State is done.
	Results []Result `json:"results,omitempty"`
	// Trace is the job's stitched span tree — coordinator spans with every
	// remote worker subtree grafted under its dispatch span — present once
	// the job finished and only when the sweep was submitted with ?trace=1.
	Trace *obs.SpanTree `json:"trace,omitempty"`
}

// maxCellErrors bounds the per-job failure log so a pathological sweep
// cannot grow its status payload without bound.
const maxCellErrors = 16

// job is one asynchronous sweep: a list of resolved use cases worked
// through the server's shared pool.
type job struct {
	id    string
	cases []useCase
	// req is the original sweep request, kept so the journal's submit
	// record can re-resolve the exact same cell list on resume.
	req SweepRequest

	mu         sync.Mutex
	state      jobState
	resumed    bool
	done       int
	cacheHits  int
	failed     int
	cellErrors []string
	errMsg     string
	created    time.Time
	finished   time.Time
	results    []Result
	// jw journals this job's progress; nil when the server runs without a
	// journal (the historical, memory-only behavior).
	jw *journal.Writer
	// have/pre carry journal-replayed cells into startSweep on resume:
	// have[i] means cell i already completed in a previous process and
	// pre[i] is its result — it is answered with zero pipeline runs.
	have []bool
	pre  []Result
	// traced marks a ?trace=1 submission: startSweep installs a per-job
	// recorder and the finished tree lands in trace (and the trace sink).
	traced bool
	trace  *obs.SpanTree
	// events is the job's bounded progress log, replayed to every
	// /v1/jobs/{id}/events subscriber on connect; subs holds the live
	// subscriber channels, closed when the job reaches a terminal state.
	events        []jobEvent
	eventsDropped int
	subs          map[chan jobEvent]struct{}
	// durSumMS/durCount estimate the mean cell duration for the ETA in
	// progress events; resume pre-seeds them from the journal's recorded
	// per-cell durations, so a restarted job's first ETA is already sane.
	durSumMS int64
	durCount int
}

// jobEvent is one NDJSON line of the GET /v1/jobs/{id}/events stream.
// Event is one of cells_resumed, cell_started, cell_finished, cell_failed,
// or job_finished (the terminal line; State carries "done" or "failed").
// Done/Remaining snapshot overall progress at emission time; EtaMS is the
// naive remaining×mean-duration forecast, present once at least one cell
// duration (live or journal-seeded) is known.
type jobEvent struct {
	Event     string    `json:"event"`
	Time      time.Time `json:"time"`
	Cell      *int      `json:"cell,omitempty"`
	Program   string    `json:"program,omitempty"`
	Config    string    `json:"config,omitempty"`
	Tech      string    `json:"tech,omitempty"`
	Cached    bool      `json:"cached,omitempty"`
	DurMS     int64     `json:"dur_ms,omitempty"`
	Error     string    `json:"error,omitempty"`
	Done      int       `json:"done"`
	Failed    int       `json:"failed,omitempty"`
	Remaining int       `json:"remaining"`
	EtaMS     int64     `json:"eta_ms,omitempty"`
	State     string    `json:"state,omitempty"`
}

// maxJobEvents bounds the per-job event buffer: two events per cell of the
// largest admissible sweep plus lifecycle lines. Beyond it, new events
// still reach live subscribers but are dropped from the replay buffer.
const maxJobEvents = 2*maxSweepCells + 16

// eventChanBuffer is each subscriber's buffer; a consumer that falls this
// far behind loses events (the connect-time replay and the terminal event
// keep it coherent) rather than blocking the sweep.
const eventChanBuffer = 256

// publishLocked timestamps ev, appends it to the bounded event buffer, and
// offers it to every live subscriber without blocking. Callers hold j.mu.
func (j *job) publishLocked(ev jobEvent) {
	ev.Time = time.Now().UTC()
	if len(j.events) < maxJobEvents {
		j.events = append(j.events, ev)
	} else {
		j.eventsDropped++
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// closeSubsLocked ends every live event stream; called once, with the
// terminal event already published. Callers hold j.mu.
func (j *job) closeSubsLocked() {
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// subscribe returns a snapshot of the job's event history and, while the
// job is live, a channel carrying subsequent events. The channel is closed
// when the job reaches a terminal state; it is nil when the job is already
// terminal (the snapshot then ends with the job_finished event).
func (j *job) subscribe() (past []jobEvent, ch chan jobEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	past = append([]jobEvent(nil), j.events...)
	if j.state == jobDone || j.state == jobFailed {
		return past, nil
	}
	ch = make(chan jobEvent, eventChanBuffer)
	if j.subs == nil {
		j.subs = map[chan jobEvent]struct{}{}
	}
	j.subs[ch] = struct{}{}
	return past, ch
}

// unsubscribe detaches one event stream (client disconnect). The channel
// is not closed here — closeSubsLocked owns that — only forgotten.
func (j *job) unsubscribe(ch chan jobEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// progressLocked snapshots done/failed/remaining and the ETA for an event.
// Callers hold j.mu.
func (j *job) progressLocked() (done, failed, remaining int, etaMS int64) {
	done, failed = j.done, j.failed
	remaining = len(j.cases) - done - failed
	if remaining < 0 {
		remaining = 0
	}
	if j.durCount > 0 {
		etaMS = int64(remaining) * (j.durSumMS / int64(j.durCount))
	}
	return done, failed, remaining, etaMS
}

// status snapshots the job for the wire. Results are shared read-only once
// the job is done (they are never mutated afterwards).
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		State:      string(j.state),
		Total:      len(j.cases),
		Done:       j.done,
		CacheHits:  j.cacheHits,
		Failed:     j.failed,
		Error:      j.errMsg,
		CreatedAt:  j.created,
		FinishedAt: j.finished,
		Resumed:    j.resumed,
		CellErrors: j.cellErrors,
	}
	if j.state == jobDone {
		st.Results = j.results
	}
	if j.state == jobDone || j.state == jobFailed {
		st.Trace = j.trace
	}
	return st
}

// failCell records one cell's failure without failing the job.
func (j *job) failCell(uc useCase, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.failed++
	if len(j.cellErrors) < maxCellErrors {
		j.cellErrors = append(j.cellErrors,
			fmt.Sprintf("%s/%s/%s: %v", uc.bench.Name, cache.ConfigID(uc.cfgIdx), uc.tech, err))
	}
}

// maxFinishedJobs bounds the job store: once exceeded, the oldest finished
// jobs (and their result payloads) are dropped. Queued and running jobs
// are never pruned.
const maxFinishedJobs = 256

// jobStore indexes jobs by ID and assigns sequential IDs.
type jobStore struct {
	mu    sync.Mutex
	seq   int
	jobs  map[string]*job
	order []string // creation order, for pruning
}

// newJobStore builds a store whose sequence counter starts at seed — the
// journal's persisted high-water mark, so IDs stay monotonic across
// restarts and the expired-404 contract keeps holding after recovery.
func newJobStore(seed int) *jobStore {
	return &jobStore{seq: seed, jobs: map[string]*job{}}
}

// errJobQueueFull is tryAdd's admission refusal; the handler maps it to
// 429 with a Retry-After header.
var errJobQueueFull = fmt.Errorf("job queue full")

// tryAdd registers a job unless the store already holds maxActive
// unfinished (queued or running) jobs. The admission check and the insert
// happen under one lock so concurrent submissions cannot both squeeze past
// the bound. pruned lists the IDs of finished jobs dropped to make room;
// the caller removes their journal files outside the lock.
func (s *jobStore) tryAdd(req SweepRequest, cases []useCase, maxActive int) (j *job, pruned []string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	active := 0
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			if st := j.currentState(); st == jobQueued || st == jobRunning {
				active++
			}
		}
	}
	if active >= maxActive {
		return nil, nil, errJobQueueFull
	}
	s.seq++
	j = &job{
		id:      fmt.Sprintf("job-%06d", s.seq),
		req:     req,
		cases:   cases,
		state:   jobQueued,
		created: time.Now().UTC(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return j, s.prune(), nil
}

// adopt inserts a journal-replayed job under its original ID, advancing
// the sequence counter past it. Duplicate IDs are a replay bug and are
// ignored rather than clobbering a live job.
func (s *jobStore) adopt(j *job) (pruned []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.jobs[j.id]; exists {
		return nil
	}
	if n, err := strconv.Atoi(strings.TrimPrefix(j.id, "job-")); err == nil && n > s.seq {
		s.seq = n
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return s.prune()
}

// activeJobs counts unfinished (queued or running) jobs, for /readyz.
func (s *jobStore) activeJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	active := 0
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			if st := j.currentState(); st == jobQueued || st == jobRunning {
				active++
			}
		}
	}
	return active
}

// prune drops the oldest finished jobs beyond maxFinishedJobs and returns
// their IDs so the caller can unlink their journals. Caller holds s.mu.
func (s *jobStore) prune() (pruned []string) {
	finished := 0
	for _, id := range s.order {
		if st := s.jobs[id]; st != nil && (st.currentState() == jobDone || st.currentState() == jobFailed) {
			finished++
		}
	}
	if finished <= maxFinishedJobs {
		return nil
	}
	keep := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j != nil && finished > maxFinishedJobs && (j.currentState() == jobDone || j.currentState() == jobFailed) {
			delete(s.jobs, id)
			pruned = append(pruned, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
	return pruned
}

func (j *job) currentState() jobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// get looks a job up by ID. expired reports that the ID was once assigned
// but the job has since been pruned from the store — job IDs are handed
// out sequentially ("job-%06d") and only leave the map through prune, so
// an absent ID at or below the current sequence number must have been
// pruned. Handlers use the distinction to answer a stable "expired" 404
// instead of pretending the job never existed.
func (s *jobStore) get(id string) (j *job, ok, expired bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, true, false
	}
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "job-")); err == nil &&
		strings.HasPrefix(id, "job-") && n >= 1 && n <= s.seq {
		return nil, false, true
	}
	return nil, false, false
}

// counts tallies jobs by state for /metrics.
func (s *jobStore) counts() map[jobState]int {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := map[jobState]int{jobQueued: 0, jobRunning: 0, jobDone: 0, jobFailed: 0}
	for _, j := range jobs {
		out[j.currentState()]++
	}
	return out
}

// startSweep launches an admitted job on the shared worker pool. The job's
// context inherits the server's base context (cancelled on shutdown) and
// the configured per-job timeout.
//
// Failure isolation is per cell: a cell whose analysis errors or panics is
// recorded as failed (with a bounded error log) and its siblings continue —
// one poisoned use case cannot take down a 2664-cell sweep. Interruptions
// are different: a job-timeout or shutdown cancellation must stop the whole
// job, so typed interrupt errors propagate and fail the job with the cause.
func (s *Server) startSweep(j *job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()

		// A ?trace=1 job carries its own recorder for the whole sweep: every
		// cell's spans — including dist dispatch attempts and the grafted
		// remote worker trees — accumulate into one tree under the job root.
		var rec *obs.Recorder
		j.mu.Lock()
		if j.traced {
			rec = obs.NewRecorder("sweep")
			rec.Root().Attr("job", j.id)
			rec.Root().Attr("cells", len(j.cases))
			ctx = rec.Install(ctx)
		}
		j.state = jobRunning
		results := make([]Result, len(j.cases))
		// Cells the journal already answered (resume): copy their results
		// in and never touch the pipeline for them again.
		replayedCells := 0
		for i, ok := range j.have {
			if ok {
				results[i] = j.pre[i]
				replayedCells++
			}
		}
		if replayedCells > 0 {
			_, _, remaining, eta := j.progressLocked()
			j.publishLocked(jobEvent{
				Event: "cells_resumed", Done: j.done, Failed: j.failed,
				Remaining: remaining, EtaMS: eta,
			})
		}
		j.mu.Unlock()
		s.sinkJobEvent(rec, "job_started", j.id, map[string]any{
			"cells": len(j.cases), "replayed": replayedCells,
		})

		err := s.pool.ForEach(ctx, len(j.cases), func(ctx context.Context, i int) error {
			j.mu.Lock()
			replayed := i < len(j.have) && j.have[i]
			if !replayed {
				uc := j.cases[i]
				done, failed, remaining, eta := j.progressLocked()
				j.publishLocked(jobEvent{
					Event: "cell_started", Cell: &i,
					Program: uc.bench.Name, Config: cache.ConfigID(uc.cfgIdx), Tech: uc.tech.String(),
					Done: done, Failed: failed, Remaining: remaining, EtaMS: eta,
				})
			}
			j.mu.Unlock()
			if replayed {
				return nil
			}
			uc := j.cases[i]
			ctx, span := obs.Start(ctx, "sweep.cell")
			span.Attr("cell", i)
			span.Attr("program", uc.bench.Name)
			span.Attr("config", cache.ConfigID(uc.cfgIdx))
			span.Attr("tech", uc.tech.String())
			defer span.End()
			var (
				res    Result
				cached bool
			)
			start := time.Now()
			aerr := pool.Recover(func() error {
				var e error
				res, cached, e = s.analyze(ctx, uc)
				return e
			})
			dur := time.Since(start)
			if aerr != nil {
				if interrupt.Is(aerr) {
					s.metrics.countCellCanceled()
					return interrupt.Wrap(aerr)
				}
				span.Attr("error", sanitizeCellError(aerr))
				j.failCell(uc, aerr)
				j.mu.Lock()
				done, failed, remaining, eta := j.progressLocked()
				j.publishLocked(jobEvent{
					Event: "cell_failed", Cell: &i,
					Program: uc.bench.Name, Config: cache.ConfigID(uc.cfgIdx), Tech: uc.tech.String(),
					DurMS: dur.Milliseconds(), Error: sanitizeCellError(aerr),
					Done: done, Failed: failed, Remaining: remaining, EtaMS: eta,
				})
				j.mu.Unlock()
				s.journalCellFailed(ctx, j, i, aerr)
				return nil
			}
			span.Attr("cached", cached)
			results[i] = res
			j.mu.Lock()
			j.done++
			if cached {
				j.cacheHits++
			}
			j.durSumMS += dur.Milliseconds()
			j.durCount++
			done, failed, remaining, eta := j.progressLocked()
			j.publishLocked(jobEvent{
				Event: "cell_finished", Cell: &i,
				Program: uc.bench.Name, Config: cache.ConfigID(uc.cfgIdx), Tech: uc.tech.String(),
				Cached: cached, DurMS: dur.Milliseconds(),
				Done: done, Failed: failed, Remaining: remaining, EtaMS: eta,
			})
			j.mu.Unlock()
			s.journalCell(ctx, j, i, cached, dur, res)
			return nil
		})

		// The recorder closes before the terminal state is published so a
		// client that sees state=done also sees the finished trace.
		var tree *obs.SpanTree
		if rec != nil {
			rec.Release()
			tree = rec.Tree()
		}

		j.mu.Lock()
		j.finished = time.Now().UTC()
		j.trace = tree
		jw := j.jw
		if err != nil {
			j.state = jobFailed
			j.errMsg = err.Error()
			done, failed, remaining, _ := j.progressLocked()
			j.publishLocked(jobEvent{
				Event: "job_finished", State: string(jobFailed), Error: j.errMsg,
				Done: done, Failed: failed, Remaining: remaining,
			})
			j.closeSubsLocked()
			j.mu.Unlock()
			s.persistTrace(j.id, tree, true)
			s.sinkJobEvent(rec, "job_finished", j.id, map[string]any{"state": string(jobFailed), "error": err.Error()})
			// An interrupted job (drain, shutdown, job timeout) closes its
			// journal WITHOUT a terminal record: the unfinished journal is
			// exactly the signal the next process resumes from.
			if jw != nil {
				jw.Close()
			}
			return
		}
		j.state = jobDone
		j.results = results
		done, failed, remaining, _ := j.progressLocked()
		j.publishLocked(jobEvent{
			Event: "job_finished", State: string(jobDone),
			Done: done, Failed: failed, Remaining: remaining,
		})
		j.closeSubsLocked()
		j.mu.Unlock()
		s.persistTrace(j.id, tree, true)
		s.sinkJobEvent(rec, "job_finished", j.id, map[string]any{
			"state": string(jobDone), "done": done, "failed": failed,
		})
		if jw != nil {
			// The terminal record makes the completion durable; from here a
			// restart replays the job as finished, results intact.
			if ferr := jw.Finish(context.Background(), string(jobDone), ""); ferr != nil {
				s.log.Warn("journal finish failed", "job", j.id, "err", ferr)
			}
		}
	}()
}

// sinkJobEvent appends one job lifecycle event to the trace sink (no-op
// without one). rec, when non-nil, supplies the trace ID linking the event
// to the job's trace.
func (s *Server) sinkJobEvent(rec *obs.Recorder, event, jobID string, attrs map[string]any) {
	sink := s.cfg.TraceSink
	if sink == nil {
		return
	}
	traceID := ""
	if rec != nil {
		traceID = rec.TraceID()
	}
	if err := sink.WriteEvent(context.Background(), event, jobID, traceID, attrs); err != nil {
		s.log.Warn("trace sink event write failed", "job", jobID, "event", event, "err", err)
	}
}

// journalCell durably records one completed cell. Journal failures are a
// durability downgrade (the cell would re-execute after a crash), never a
// reason to fail the cell — mirroring the result store's put policy.
func (s *Server) journalCell(ctx context.Context, j *job, i int, cached bool, dur time.Duration, res Result) {
	j.mu.Lock()
	jw := j.jw
	j.mu.Unlock()
	if jw == nil {
		return
	}
	payload, err := json.Marshal(res)
	if err == nil {
		err = jw.Cell(ctx, i, cached, dur, payload)
	}
	if err != nil && !interrupt.Is(err) {
		s.log.Warn("journal cell append failed", "job", j.id, "cell", i, "err", err)
	}
}

// journalCellFailed records one failed cell (informational: resume retries
// failed cells).
func (s *Server) journalCellFailed(ctx context.Context, j *job, i int, cellErr error) {
	j.mu.Lock()
	jw := j.jw
	j.mu.Unlock()
	if jw == nil {
		return
	}
	if err := jw.CellFailed(ctx, i, sanitizeCellError(cellErr)); err != nil && !interrupt.Is(err) {
		s.log.Warn("journal cellfail append failed", "job", j.id, "cell", i, "err", err)
	}
}

// resolveSweep expands a SweepRequest into the deterministic use-case
// list: programs × configs × techs in request (or canonical) order.
func (s *Server) resolveSweep(req SweepRequest) ([]useCase, error) {
	programs := req.Programs
	if len(programs) == 0 {
		programs = s.benchNames
	}
	configs := req.Configs
	if len(configs) == 0 {
		configs = s.configLabels
	}
	techs := req.Techs
	if len(techs) == 0 {
		techs = []string{"45nm", "32nm"}
	}
	policies := req.Policies
	if len(policies) == 0 {
		policies = []string{"lru"}
	}
	total := len(programs) * len(configs) * len(techs) * len(policies)
	if total > maxSweepCells {
		return nil, errorf(400, "sweep matrix has %d cells, limit %d", total, maxSweepCells)
	}
	cases := make([]useCase, 0, total)
	for _, p := range programs {
		for _, c := range configs {
			for _, t := range techs {
				for _, pol := range policies {
					uc, err := s.resolve(AnalyzeRequest{
						Program:          p,
						Config:           c,
						Tech:             t,
						Policy:           pol,
						Runs:             req.Runs,
						ValidationBudget: req.ValidationBudget,
						L2:               req.L2,
					})
					if err != nil {
						return nil, err
					}
					cases = append(cases, uc)
				}
			}
		}
	}
	return cases, nil
}

// maxSweepCells caps one job at the full evaluation matrix (37 × 36 × 2 =
// 2664) with headroom; larger requests should be split into several jobs.
const maxSweepCells = 4096
