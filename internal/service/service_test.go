package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer spins up the service on an httptest listener with quiet
// logging and a small worker pool.
func testServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

// smallAnalyze is a cheap use case: the tiniest benchmark, one run, a
// small optimizer budget.
const smallAnalyze = `{"program":"fibcall","config":"k1","tech":"45nm","runs":1,"validation_budget":20}`

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestHealthz(t *testing.T) {
	ts, _ := testServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("body = %s", body)
	}
}

func TestBenchmarksAndConfigs(t *testing.T) {
	ts, _ := testServer(t, Config{})

	resp, body := getBody(t, ts.URL+"/v1/benchmarks")
	if resp.StatusCode != 200 {
		t.Fatalf("benchmarks status = %d", resp.StatusCode)
	}
	var benches []benchmarkInfo
	if err := json.Unmarshal(body, &benches); err != nil {
		t.Fatal(err)
	}
	if len(benches) != 37 {
		t.Fatalf("benchmarks = %d, want 37", len(benches))
	}

	resp, body = getBody(t, ts.URL+"/v1/configs")
	if resp.StatusCode != 200 {
		t.Fatalf("configs status = %d", resp.StatusCode)
	}
	var cfgs []configInfo
	if err := json.Unmarshal(body, &cfgs); err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 36 {
		t.Fatalf("configs = %d, want 36", len(cfgs))
	}
	if cfgs[0].Label != "k1" || cfgs[35].Label != "k36" {
		t.Fatalf("config labels wrong: %s..%s", cfgs[0].Label, cfgs[35].Label)
	}
}

// metricValue extracts the value of a single-sample metric line.
func metricValue(t *testing.T, metricsText, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metricsText, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, metricsText)
	return 0
}

func TestAnalyzeAndCacheHit(t *testing.T) {
	ts, _ := testServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("first analyze: status %d: %s", resp.StatusCode, body)
	}
	var first analyzeResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request must not be served from cache")
	}
	if first.Program != "fibcall" || first.Config != "k1" || first.Tech != "45nm" {
		t.Fatalf("echoed identity wrong: %+v", first.Result)
	}
	if first.WCETOrig <= 0 || first.ACETOrig <= 0 || first.EnergyOrigPJ <= 0 {
		t.Fatalf("degenerate measurements: %+v", first.Result)
	}
	if first.WCETOpt > first.WCETOrig {
		t.Fatalf("WCET regressed: %d -> %d", first.WCETOrig, first.WCETOpt)
	}
	if len(first.CacheKey) != 64 {
		t.Fatalf("cache key %q is not a sha256 hex digest", first.CacheKey)
	}

	resp, body = postJSON(t, ts.URL+"/v1/analyze", smallAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("second analyze: status %d", resp.StatusCode)
	}
	var second analyzeResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical request must be served from cache")
	}
	if second.CacheKey != first.CacheKey || second.WCETOpt != first.WCETOpt {
		t.Error("cached result differs from computed result")
	}

	_, mbody := getBody(t, ts.URL+"/metrics")
	m := string(mbody)
	if hits := metricValue(t, m, "ucp_cache_hits_total"); hits < 1 {
		t.Errorf("ucp_cache_hits_total = %g, want >= 1", hits)
	}
	if misses := metricValue(t, m, "ucp_cache_misses_total"); misses < 1 {
		t.Errorf("ucp_cache_misses_total = %g, want >= 1", misses)
	}
	if n := metricValue(t, m, "ucp_analyses_total"); n != 1 {
		t.Errorf("ucp_analyses_total = %g, want 1 (second request must not re-run)", n)
	}
	if !strings.Contains(m, `ucp_requests_total{route="POST /v1/analyze"} 2`) {
		t.Errorf("request counter missing or wrong:\n%s", m)
	}
	// The analysis-mode counters are process-wide (they also count other
	// tests in this binary), so assert presence and a sane floor: the one
	// executed analysis performed at least one from-scratch AnalyzeX.
	if full := metricValue(t, m, "ucp_analysis_full_reanalyses_total"); full < 1 {
		t.Errorf("ucp_analysis_full_reanalyses_total = %g, want >= 1", full)
	}
	if inc := metricValue(t, m, "ucp_analysis_incremental_hits_total"); inc < 0 {
		t.Errorf("ucp_analysis_incremental_hits_total = %g, want >= 0", inc)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	ts, _ := testServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown benchmark", `{"program":"nope","config":"k1","tech":"45nm"}`, 404},
		{"unknown config", `{"program":"fibcall","config":"k99","tech":"45nm"}`, 400},
		{"unknown tech", `{"program":"fibcall","config":"k1","tech":"28nm"}`, 400},
		{"negative runs", `{"program":"fibcall","config":"k1","tech":"45nm","runs":-2}`, 400},
		{"malformed json", `{"program":`, 400},
		{"unknown field", `{"program":"fibcall","config":"k1","tech":"45nm","frobnicate":1}`, 400},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		if !bytes.Contains(body, []byte(`"error"`)) {
			t.Errorf("%s: missing error body: %s", tc.name, body)
		}
	}

	// Wrong method on a valid route.
	resp, _ := getBody(t, ts.URL+"/v1/analyze")
	if resp.StatusCode != 405 {
		t.Errorf("GET /v1/analyze: status = %d, want 405", resp.StatusCode)
	}
}

func TestOversizedBody413(t *testing.T) {
	ts, _ := testServer(t, Config{MaxBodyBytes: 128})
	huge := `{"program":"fibcall","config":"k1","tech":"45nm","programs":"` +
		strings.Repeat("x", 4096) + `"}`
	resp, body := postJSON(t, ts.URL+"/v1/analyze", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, body)
	}
}

// pollJob polls the job endpoint until it leaves the running states.
func pollJob(t *testing.T, url string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := getBody(t, url)
		if resp.StatusCode != 200 {
			t.Fatalf("job poll: status %d: %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == string(jobDone) || st.State == string(jobFailed) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after deadline (%d/%d cells)", st.State, st.Done, st.Total)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	ts, _ := testServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/sweep",
		`{"programs":["fibcall","fac"],"configs":["k1","k2"],"techs":["45nm"],"runs":1,"validation_budget":20}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: status %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		JobID     string `json:"job_id"`
		Cells     int    `json:"cells"`
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Cells != 4 {
		t.Fatalf("cells = %d, want 4", sub.Cells)
	}

	st := pollJob(t, ts.URL+sub.StatusURL)
	if st.State != string(jobDone) {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	if st.Done != 4 || len(st.Results) != 4 {
		t.Fatalf("done = %d, results = %d, want 4", st.Done, len(st.Results))
	}
	// Deterministic (program, config, tech) request ordering.
	wantOrder := []string{"fibcall/k1", "fibcall/k2", "fac/k1", "fac/k2"}
	for i, r := range st.Results {
		if got := r.Program + "/" + r.Config; got != wantOrder[i] {
			t.Fatalf("results[%d] = %s, want %s", i, got, wantOrder[i])
		}
	}

	// A second identical sweep is answered fully from the cache.
	resp, body = postJSON(t, ts.URL+"/v1/sweep",
		`{"programs":["fibcall","fac"],"configs":["k1","k2"],"techs":["45nm"],"runs":1,"validation_budget":20}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second sweep: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	st = pollJob(t, ts.URL+sub.StatusURL)
	if st.State != string(jobDone) || st.CacheHits != 4 {
		t.Fatalf("second sweep: state=%s cache_hits=%d, want done/4", st.State, st.CacheHits)
	}

	// Unknown jobs are 404.
	resp, _ = getBody(t, ts.URL+"/v1/jobs/job-999999")
	if resp.StatusCode != 404 {
		t.Errorf("unknown job: status = %d, want 404", resp.StatusCode)
	}
}

func TestSweepValidation(t *testing.T) {
	ts, _ := testServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/sweep", `{"programs":["nope"],"configs":["k1"]}`)
	if resp.StatusCode != 404 {
		t.Errorf("unknown program in sweep: status = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sweep", `{"programs":["fibcall"],"configs":["bogus"]}`)
	if resp.StatusCode != 400 {
		t.Errorf("bad config in sweep: status = %d, want 400", resp.StatusCode)
	}
}

// TestResultCachePutExistingKey pins put's re-publish contract: storing a
// key that is already resident must refresh its value and recency in
// place — one entry, never a duplicate node pushing a sibling out — and
// must be atomic under concurrent re-publishers of the same key.
func TestResultCachePutExistingKey(t *testing.T) {
	c := newResultCache(2)
	c.put("a", Result{Program: "a1"})
	c.put("b", Result{Program: "b"})

	// Re-put updates value + recency without growing the list.
	c.put("a", Result{Program: "a2"})
	if _, _, entries := c.stats(); entries != 2 {
		t.Fatalf("entries = %d after re-put, want 2", entries)
	}
	if v, ok := c.get("a"); !ok || v.Program != "a2" {
		t.Fatalf("a = %+v (%v), want the refreshed a2", v, ok)
	}
	// The re-put made "a" most recent, so inserting "c" evicts "b".
	c.put("c", Result{Program: "c"})
	if _, ok := c.get("b"); ok {
		t.Error("b survived; re-put did not refresh a's recency")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite being most recently re-put")
	}

	// Concurrent same-key re-puts: the entry count must stay exact and the
	// final value must be one of the published ones (run under -race).
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.put("a", Result{Program: fmt.Sprintf("a-%d", i)})
			}
		}(i)
	}
	wg.Wait()
	if _, _, entries := c.stats(); entries != 2 {
		t.Fatalf("entries = %d after concurrent re-puts, want 2", entries)
	}
	if v, ok := c.get("a"); !ok || !strings.HasPrefix(v.Program, "a-") {
		t.Fatalf("a = %+v (%v), want one of the concurrently published values", v, ok)
	}
}

func TestResultCacheLRUBound(t *testing.T) {
	c := newResultCache(2)
	c.put("a", Result{Program: "a"})
	c.put("b", Result{Program: "b"})
	if _, ok := c.get("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	c.put("c", Result{Program: "c"}) // evicts b (LRU)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be resident")
	}
	hits, misses, entries := c.stats()
	if entries != 2 {
		t.Errorf("entries = %d, want 2", entries)
	}
	if hits != 3 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
}
