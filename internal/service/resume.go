package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"ucp/internal/journal"
)

// journalSubmit opens a fresh journal for a newly admitted job. Journal
// failures degrade durability (the job would not survive a crash) but
// never block admission; the job runs memory-only like before.
func (s *Server) journalSubmit(j *job) {
	jnl := s.cfg.Journal
	if jnl == nil {
		return
	}
	raw, err := json.Marshal(j.req)
	if err == nil {
		var w *journal.Writer
		w, err = jnl.Begin(s.baseCtx, j.id, j.created, len(j.cases), raw)
		if err == nil {
			j.mu.Lock()
			j.jw = w
			j.mu.Unlock()
			return
		}
	}
	s.log.Warn("job journal begin failed; job runs memory-only", "job", j.id, "err", err)
}

// removeJournals unlinks the journal files of pruned jobs.
func (s *Server) removeJournals(ids []string) {
	jnl := s.cfg.Journal
	if jnl == nil {
		return
	}
	for _, id := range ids {
		if err := jnl.Remove(id); err != nil {
			s.log.Warn("journal remove failed", "job", id, "err", err)
		}
	}
}

// recoverJobs replays the journal directory at startup. Terminal jobs are
// re-adopted as finished (their results answer /v1/jobs/{id} with zero
// pipeline runs); unfinished jobs — the crash survivors — are resumed
// under their original IDs: journal-replayed cells are injected as
// already-done and only the incomplete remainder re-executes.
func (s *Server) recoverJobs() {
	jnl := s.cfg.Journal
	if jnl == nil {
		return
	}
	replayed, err := jnl.Replay()
	if err != nil {
		s.log.Warn("journal replay failed; jobs start empty", "err", err)
		return
	}
	for _, rj := range replayed {
		var req SweepRequest
		var cases []useCase
		uerr := json.Unmarshal(rj.Sweep, &req)
		if uerr == nil {
			cases, uerr = s.resolveSweep(req)
		}
		if uerr == nil && len(cases) != rj.Total {
			uerr = fmt.Errorf("journal total %d != resolved %d cells", rj.Total, len(cases))
		}
		if uerr != nil {
			// The sweep no longer resolves (corrupt submit record, a
			// benchmark or config that stopped existing). The job becomes a
			// terminal failure rather than vanishing — the client polling
			// its ID learns why.
			s.adoptUnresolvable(rj, uerr)
			continue
		}
		j := &job{
			id:      rj.ID,
			req:     req,
			cases:   cases,
			created: rj.Created,
			resumed: rj.Resumed,
		}
		switch rj.State {
		case string(jobDone):
			s.adoptDone(j, rj)
		case string(jobFailed):
			j.state = jobFailed
			j.errMsg = rj.Error
			j.finished = rj.Finished
			j.publishLocked(jobEvent{
				Event: "job_finished", State: string(jobFailed), Error: j.errMsg,
			})
		default:
			s.prepareResume(j, rj)
		}
		s.removeJournals(s.jobs.adopt(j))
		if j.currentState() == jobQueued {
			s.startSweep(j)
		}
	}
}

// adoptDone reconstructs a finished job from its journal: every cell
// record becomes a result, failure records become the bounded error log.
func (s *Server) adoptDone(j *job, rj journal.Job) {
	j.state = jobDone
	j.finished = rj.Finished
	j.results = make([]Result, rj.Total)
	for i := 0; i < rj.Total; i++ {
		c, ok := rj.Cells[i]
		if !ok {
			continue
		}
		var res Result
		if err := json.Unmarshal(c.Result, &res); err != nil {
			s.log.Warn("journal cell payload unreadable", "job", j.id, "cell", i, "err", err)
			continue
		}
		j.results[i] = res
		j.done++
		if c.Cached {
			j.cacheHits++
		}
		s.metrics.countReplayCell()
	}
	for i := 0; i < rj.Total; i++ {
		msg, ok := rj.Failures[i]
		if !ok {
			continue
		}
		j.failed++
		if len(j.cellErrors) < maxCellErrors {
			j.cellErrors = append(j.cellErrors, msg)
		}
	}
	// A replayed-finished job still answers its event stream coherently:
	// the history is gone with the old process, but the terminal line is
	// reconstructible. No lock needed — the job is not yet published.
	j.publishLocked(jobEvent{
		Event: "job_finished", State: string(jobDone),
		Done: j.done, Failed: j.failed,
	})
	s.log.Info("journal replayed finished job", "job", j.id, "cells", j.done)
}

// prepareResume stages an unfinished job for startSweep: completed cells
// ride in via have/pre, failed cells are forgotten (they retry), and the
// journal reopens in append mode with a resume marker.
func (s *Server) prepareResume(j *job, rj journal.Job) {
	j.state = jobQueued
	j.resumed = true
	j.have = make([]bool, rj.Total)
	j.pre = make([]Result, rj.Total)
	for i, c := range rj.Cells {
		var res Result
		if err := json.Unmarshal(c.Result, &res); err != nil {
			s.log.Warn("journal cell payload unreadable; cell re-executes",
				"job", j.id, "cell", i, "err", err)
			continue
		}
		j.have[i] = true
		j.pre[i] = res
		j.done++
		if c.Cached {
			j.cacheHits++
		}
		// Journaled durations seed the ETA estimator, so the resumed job's
		// first progress events forecast from real history instead of
		// starting blind.
		if c.DurMS > 0 {
			j.durSumMS += c.DurMS
			j.durCount++
		}
		s.metrics.countReplayCell()
	}
	w, err := s.cfg.Journal.Resume(s.baseCtx, j.id)
	if err != nil {
		s.log.Warn("journal resume open failed; job continues memory-only", "job", j.id, "err", err)
	} else {
		j.jw = w
	}
	s.metrics.countJobResumed()
	s.log.Info("resuming journaled job", "job", j.id,
		"done", j.done, "total", rj.Total, "skipped_lines", rj.Skipped)
}

// adoptUnresolvable parks a replayed-but-unresolvable job as a terminal
// failure, writing the terminal record so the next restart does not try
// again.
func (s *Server) adoptUnresolvable(rj journal.Job, cause error) {
	j := &job{
		id:       rj.ID,
		cases:    nil,
		created:  rj.Created,
		resumed:  rj.Resumed,
		state:    jobFailed,
		errMsg:   fmt.Sprintf("journal replay: %v", cause),
		finished: time.Now().UTC(),
	}
	j.publishLocked(jobEvent{
		Event: "job_finished", State: string(jobFailed), Error: j.errMsg,
	})
	s.log.Warn("journaled job no longer resolvable", "job", rj.ID, "err", cause)
	if rj.State == "" {
		if w, err := s.cfg.Journal.Resume(context.Background(), rj.ID); err == nil {
			if ferr := w.Finish(context.Background(), string(jobFailed), j.errMsg); ferr != nil {
				s.log.Warn("journal finish failed", "job", rj.ID, "err", ferr)
			}
		}
	}
	s.removeJournals(s.jobs.adopt(j))
}
