package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// markDone flips a job terminal so the store's prune considers it.
func markDone(j *job) {
	j.mu.Lock()
	j.state = jobDone
	j.mu.Unlock()
}

// TestJobStorePruneVsGetConcurrent (satellite) hammers tryAdd+prune against
// get under -race and locks in the sequential-ID contract: an ID the store
// ever allocated answers get with either the live job (ok) or expired —
// never the "never existed" miss that would turn a pruned job's 404 into a
// lie. The store is seeded well past maxFinishedJobs so every submission
// prunes.
func TestJobStorePruneVsGetConcurrent(t *testing.T) {
	s := newJobStore(0)
	const seed = maxFinishedJobs + 50
	for i := 0; i < seed; i++ {
		j, _, err := s.tryAdd(SweepRequest{}, nil, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		markDone(j)
	}

	// allocated is the high-water mark of IDs handed out; getters probe at
	// and below it while submitters race it upward.
	var allocated atomic.Int64
	allocated.Store(seed)

	var wg sync.WaitGroup
	const (
		submitters = 4
		getters    = 4
		perWorker  = 200
	)
	errs := make(chan string, submitters*perWorker+getters*perWorker)

	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				j, _, err := s.tryAdd(SweepRequest{}, nil, 1<<30)
				if err != nil {
					errs <- fmt.Sprintf("tryAdd: %v", err)
					return
				}
				allocated.Add(1)
				markDone(j)
				s.mu.Lock()
				s.prune()
				s.mu.Unlock()
			}
		}()
	}
	for w := 0; w < getters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Probe a spread of allocated IDs: old (certainly pruned),
				// recent, and the current frontier.
				hi := allocated.Load()
				for _, n := range []int64{1, hi / 2, hi} {
					id := fmt.Sprintf("job-%06d", n)
					j, ok, expired := s.get(id)
					if !ok && !expired {
						errs <- fmt.Sprintf("get(%s) claims the job never existed (hi=%d)", id, hi)
						return
					}
					if ok && j == nil {
						errs <- fmt.Sprintf("get(%s) ok with nil job", id)
						return
					}
				}
				// An ID beyond the frontier may legitimately be a plain miss
				// only while no submitter has reached it; never expired.
				if _, ok, expired := s.get(fmt.Sprintf("job-%06d", hi+submitters*perWorker+1)); !ok && expired {
					errs <- "get past the frontier reported expired"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// After the dust settles the bound holds and every allocated ID still
	// answers ok-or-expired.
	if got := len(s.jobs); got > maxFinishedJobs+1 {
		t.Errorf("store holds %d jobs, want <= %d after pruning", got, maxFinishedJobs+1)
	}
	for n := int64(1); n <= allocated.Load(); n += 37 {
		id := fmt.Sprintf("job-%06d", n)
		if _, ok, expired := s.get(id); !ok && !expired {
			t.Fatalf("post-race get(%s): allocated ID reported as never existed", id)
		}
	}
}
