package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ucp/internal/dist"
	"ucp/internal/obs"
)

// openSink opens a trace sink in dir for one test server; the server never
// closes its configured sink, so the test does.
func openSink(t *testing.T, dir string) *obs.Sink {
	t.Helper()
	sink, err := obs.OpenSink(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.Close() })
	return sink
}

// pollJobDone polls /v1/jobs/{id} until the job reaches a terminal state.
func pollJobDone(t *testing.T, base, jobID string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		_, body := getBody(t, base+"/v1/jobs/"+jobID)
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("job status: %v: %s", err, body)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobStatus{}
}

// sinkTraceIDs collects the trace IDs of every "trace" record in a sink
// directory.
func sinkTraceIDs(t *testing.T, dir string) map[string]bool {
	t.Helper()
	records, skipped, err := obs.ReadSink(dir)
	if err != nil {
		t.Fatalf("read sink %s: %v", dir, err)
	}
	if skipped != 0 {
		t.Errorf("sink %s: %d unreadable lines in a clean run", dir, skipped)
	}
	ids := map[string]bool{}
	for _, r := range records {
		if r.Kind == "trace" {
			ids[r.TraceID] = true
		}
	}
	return ids
}

// TestTracedDistributedSweepStitchesOneTree is the tentpole acceptance: a
// ?trace=1 sweep dispatched across two worker replicas returns ONE span
// tree under one trace ID, with each worker's spans grafted under the
// coordinator's dispatch span, and the same trace is recoverable from the
// durable sinks of all three processes after the request has ended.
func TestTracedDistributedSweepStitchesOneTree(t *testing.T) {
	coordDir, w1Dir, w2Dir := t.TempDir(), t.TempDir(), t.TempDir()

	w1, _ := testServer(t, Config{EnableWorker: true, TraceSink: openSink(t, w1Dir)})
	w2, _ := testServer(t, Config{EnableWorker: true, TraceSink: openSink(t, w2Dir)})

	coord, err := dist.New(dist.Options{Workers: []string{w1.URL, w2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts, _ := testServer(t, Config{CellExec: coord.Exec, TraceSink: openSink(t, coordDir)})

	// Two cells: the round-robin tie-break sends one to each worker.
	resp, body := postJSON(t, ts.URL+"/v1/sweep?trace=1",
		`{"programs":["fibcall","bs"],"configs":["k1"],"techs":["45nm"],"runs":1,"validation_budget":20}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sub struct {
		JobID string `json:"job_id"`
		Cells int    `json:"cells"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Cells != 2 {
		t.Fatalf("cells = %d, want 2", sub.Cells)
	}

	st := pollJobDone(t, ts.URL, sub.JobID)
	if st.State != "done" || st.Failed != 0 {
		t.Fatalf("job state=%s failed=%d errors=%v", st.State, st.Failed, st.CellErrors)
	}
	if st.Trace == nil {
		t.Fatal("traced sweep returned no span tree")
	}
	traceID := st.Trace.TraceID
	if len(traceID) != 32 {
		t.Fatalf("root trace ID = %q, want 32 hex digits", traceID)
	}

	// One stitched tree: worker-rooted subtrees hang under the dispatch
	// spans, share the coordinator's trace ID, and are parented on the
	// enclosing dist.attempt span's ID.
	type stitch struct {
		attemptSpanID string
		worker        *obs.SpanTree
	}
	var stitched []stitch
	var walk func(tr *obs.SpanTree)
	walk = func(tr *obs.SpanTree) {
		if tr.Name == "dist.attempt" {
			for _, c := range tr.Children {
				if c.Name == "worker" {
					stitched = append(stitched, stitch{tr.SpanID, c})
				}
			}
		}
		for _, c := range tr.Children {
			walk(c)
		}
	}
	walk(st.Trace)
	if len(stitched) != 2 {
		t.Fatalf("found %d worker subtrees under dist.attempt spans, want 2", len(stitched))
	}
	for _, sw := range stitched {
		if sw.worker.TraceID != traceID {
			t.Errorf("worker subtree trace ID = %q, want %q", sw.worker.TraceID, traceID)
		}
		if sw.worker.ParentSpanID != sw.attemptSpanID {
			t.Errorf("worker subtree parent span = %q, want enclosing dist.attempt %q",
				sw.worker.ParentSpanID, sw.attemptSpanID)
		}
		names := map[string]bool{}
		spanNames(sw.worker, names)
		if !names["worker.cell"] {
			t.Errorf("worker subtree missing worker.cell span (have %v)", names)
		}
	}

	// The same trace survives the request in every process's durable sink.
	if ids := sinkTraceIDs(t, coordDir); !ids[traceID] {
		t.Errorf("coordinator sink lacks trace %s (has %v)", traceID, ids)
	}
	for i, dir := range []string{w1Dir, w2Dir} {
		if ids := sinkTraceIDs(t, dir); !ids[traceID] {
			t.Errorf("worker %d sink lacks trace %s (has %v)", i+1, traceID, ids)
		}
	}
}

// TestJobEventsStreamOneEventPerCell pins the live-telemetry acceptance:
// GET /v1/jobs/{id}/events streams NDJSON and carries at least one event
// per cell, ending with the terminal job_finished line, after which the
// stream closes. A reconnect replays the same history.
func TestJobEventsStreamOneEventPerCell(t *testing.T) {
	ts, _ := testServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/sweep",
		`{"programs":["fibcall","bs","insertsort"],"configs":["k1"],"techs":["45nm"],"runs":1,"validation_budget":20}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sub struct {
		JobID     string `json:"job_id"`
		Cells     int    `json:"cells"`
		EventsURL string `json:"events_url"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.EventsURL != "/v1/jobs/"+sub.JobID+"/events" {
		t.Fatalf("events_url = %q", sub.EventsURL)
	}

	readStream := func() []jobEvent {
		res, err := http.Get(ts.URL + sub.EventsURL)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != 200 {
			t.Fatalf("events: status %d", res.StatusCode)
		}
		if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("events content type = %q", ct)
		}
		var events []jobEvent
		sc := bufio.NewScanner(res.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			var ev jobEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("event line %q: %v", sc.Text(), err)
			}
			events = append(events, ev)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return events
	}

	// Live stream: connects while the job runs (or just after — the replay
	// covers that race), ends when the job does.
	events := readStream()
	if len(events) == 0 {
		t.Fatal("event stream was empty")
	}
	last := events[len(events)-1]
	if last.Event != "job_finished" || last.State != "done" {
		t.Fatalf("last event = %+v, want terminal job_finished/done", last)
	}
	perCell := map[int]int{}
	for _, ev := range events {
		if ev.Cell != nil {
			perCell[*ev.Cell]++
		}
		switch ev.Event {
		case "cell_finished", "cell_failed":
			if ev.DurMS < 0 {
				t.Errorf("%s carries negative duration: %+v", ev.Event, ev)
			}
		}
	}
	for i := 0; i < sub.Cells; i++ {
		if perCell[i] == 0 {
			t.Errorf("no events for cell %d", i)
		}
	}

	// Terminal replay: a late subscriber gets the full history again,
	// still ending with job_finished, and the request returns immediately.
	replay := readStream()
	if len(replay) == 0 || replay[len(replay)-1].Event != "job_finished" {
		t.Fatalf("replay = %d events, want history ending in job_finished", len(replay))
	}

	// Events for an unknown job 404 like the status endpoint.
	res, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: status %d, want 404", res.StatusCode)
	}
}

// TestTraceSinkPersistenceRules pins which requests land durably: ?trace=1
// always, head-sampled successes at the configured rate, failures always,
// and nothing else.
func TestTraceSinkPersistenceRules(t *testing.T) {
	// Rate 0: only explicit ?trace=1 (and failures) persist.
	dir := t.TempDir()
	ts, _ := testServer(t, Config{TraceSink: openSink(t, dir)})

	if resp, body := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze); resp.StatusCode != 200 {
		t.Fatalf("analyze: %d %s", resp.StatusCode, body)
	}
	if ids := sinkTraceIDs(t, dir); len(ids) != 0 {
		t.Fatalf("unsampled successful analyze persisted a trace: %v", ids)
	}

	resp, body := postJSON(t, ts.URL+"/v1/analyze?trace=1", smallAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("traced analyze: %d %s", resp.StatusCode, body)
	}
	var tr analyzeResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	ids := sinkTraceIDs(t, dir)
	if !ids[tr.Trace.TraceID] {
		t.Fatalf("?trace=1 trace %s not in sink (has %v)", tr.Trace.TraceID, ids)
	}

	// Rate 1: every successful request persists.
	dir2 := t.TempDir()
	ts2, _ := testServer(t, Config{TraceSink: openSink(t, dir2), TraceSample: 1})
	if resp, body := postJSON(t, ts2.URL+"/v1/analyze", smallAnalyze); resp.StatusCode != 200 {
		t.Fatalf("analyze: %d %s", resp.StatusCode, body)
	}
	if ids := sinkTraceIDs(t, dir2); len(ids) != 1 {
		t.Fatalf("sampled-at-1 analyze persisted %d traces, want 1", len(ids))
	}
}

// lockedBuffer is a goroutine-safe log capture target.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestWorkerAdoptsRequestIDAndTraceparent pins the cross-process
// correlation contract: a dispatch carrying X-Request-Id and traceparent
// headers answers with a span tree rooted in the remote trace, tags it
// with the forwarded request ID, and logs the worker's cell line under
// that same ID — one grep correlates coordinator and replica logs.
func TestWorkerAdoptsRequestIDAndTraceparent(t *testing.T) {
	logs := &lockedBuffer{}
	ts, _ := testServer(t, Config{
		EnableWorker: true,
		Logger:       slog.New(slog.NewTextHandler(logs, nil)),
	})

	const (
		reqID   = "coord-req-000042"
		traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
		spanID  = "00f067aa0ba902b7"
	)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/worker/cell",
		strings.NewReader(`{"program":"fibcall","config":"k1","tech":"45nm","runs":1,"validation_budget":20,"skip_reduced":true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", reqID)
	req.Header.Set("traceparent", fmt.Sprintf("00-%s-%s-01", traceID, spanID))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("worker cell: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Errorf("response X-Request-Id = %q, want the forwarded %q", got, reqID)
	}

	var env workerCellResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Trace == nil {
		t.Fatal("traceparent dispatch returned no worker span tree")
	}
	if env.Trace.TraceID != traceID {
		t.Errorf("worker trace ID = %q, want adopted %q", env.Trace.TraceID, traceID)
	}
	if env.Trace.ParentSpanID != spanID {
		t.Errorf("worker parent span = %q, want remote %q", env.Trace.ParentSpanID, spanID)
	}
	if got, _ := env.Trace.Attrs["request_id"].(string); got != reqID {
		t.Errorf("worker root request_id attr = %v, want %q", env.Trace.Attrs["request_id"], reqID)
	}

	out := logs.String()
	if !strings.Contains(out, "request_id="+reqID) {
		t.Errorf("worker logs lack request_id=%s:\n%s", reqID, out)
	}
	if !strings.Contains(out, "worker cell") {
		t.Errorf("worker logs lack the per-cell line:\n%s", out)
	}

	// A malformed traceparent must not fail the request — it falls back to
	// a fresh trace.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/worker/cell",
		strings.NewReader(`{"program":"fibcall","config":"k1","tech":"45nm","runs":1,"validation_budget":20,"skip_reduced":true}`))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("traceparent", "garbage-header")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("malformed traceparent: %d %s", resp2.StatusCode, b2)
	}
	var env2 workerCellResponse
	if err := json.Unmarshal(b2, &env2); err != nil {
		t.Fatal(err)
	}
	if env2.Trace == nil || env2.Trace.TraceID == traceID {
		t.Errorf("malformed traceparent should yield a fresh trace, got %+v", env2.Trace)
	}
}

// TestResumedJobSeedsETAFromJournal: a job resumed from the journal emits
// a cells_resumed event whose ETA comes from the journaled per-cell
// durations rather than starting blind.
func TestResumedJobSeedsETAFromJournal(t *testing.T) {
	// Covered end-to-end by resume tests plus prepareResume's seeding; here
	// we pin the estimator arithmetic.
	j := &job{cases: make([]useCase, 10), done: 4, durSumMS: 4000, durCount: 4}
	done, failed, remaining, eta := j.progressLocked()
	if done != 4 || failed != 0 || remaining != 6 {
		t.Fatalf("progress = %d/%d/%d", done, failed, remaining)
	}
	if eta != 6*1000 {
		t.Fatalf("eta = %dms, want 6000 (6 cells × 1000ms mean)", eta)
	}
}
