package service

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"ucp/internal/obs"
)

// spanNames flattens a span tree into the set of span names it contains.
func spanNames(t *obs.SpanTree, into map[string]bool) {
	if t == nil {
		return
	}
	into[t.Name] = true
	for _, c := range t.Children {
		spanNames(c, into)
	}
}

func TestAnalyzeTrace(t *testing.T) {
	ts, _ := testServer(t, Config{})

	// Warm the cache so the traced request below demonstrably bypasses the
	// cache read: a plain request would be served cached, a traced one must
	// re-run the pipeline.
	resp, body := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("warm-up analyze: status %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/analyze?trace=1", smallAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("traced analyze: status %d: %s", resp.StatusCode, body)
	}
	var tr analyzeResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Cached {
		t.Error("traced analyze reported cached=true; tracing must bypass the cache read")
	}
	if tr.Trace == nil {
		t.Fatal("traced analyze returned no span tree")
	}

	names := map[string]bool{}
	spanNames(tr.Trace, names)
	for _, want := range []string{
		"experiment.cell", "vivu.expand", "absint.solve",
		"core.optimize", "wcet.analyze", "wcet.solve",
	} {
		if !names[want] {
			t.Errorf("span tree missing %q (have %v)", want, names)
		}
	}
	if id, _ := tr.Trace.Attrs["request_id"].(string); !strings.HasPrefix(id, "req-") {
		t.Errorf("root span request_id = %v, want req-NNNNNN", tr.Trace.Attrs["request_id"])
	}

	// The explain report must cover every candidate verdict: the inserted
	// entries must match the result's insertion count, and every entry
	// carries a deciding reason.
	var inserted int
	for _, d := range tr.Explain {
		if d.Reason == "" {
			t.Errorf("decision for bb%d[%d] has no reason", d.Block, d.Index)
		}
		if d.Inserted {
			inserted++
			if d.Reason != "inserted" {
				t.Errorf("inserted decision has reason %q", d.Reason)
			}
		}
	}
	if inserted != tr.Inserted {
		t.Errorf("explain lists %d inserted decisions, result says %d", inserted, tr.Inserted)
	}
	if tr.Inserted > 0 && len(tr.Explain) == 0 {
		t.Error("prefetches were inserted but the explain report is empty")
	}

	// A plain request must not pay for tracing: no trace or explain keys.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", smallAnalyze)
	if resp.StatusCode != 200 {
		t.Fatalf("plain analyze: status %d: %s", resp.StatusCode, body)
	}
	var plain map[string]json.RawMessage
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if _, ok := plain["trace"]; ok {
		t.Error("untraced response contains a trace")
	}
	if _, ok := plain["explain"]; ok {
		t.Error("untraced response contains an explain report")
	}
}

// TestMetricsFamiliesGolden pins the metric families the service exposes:
// every family that predates the obs registry must still be present under
// its original name, label key, and HELP string, and the whole exposition
// must pass the lint the renderer promises.
func TestMetricsFamiliesGolden(t *testing.T) {
	ts, _ := testServer(t, Config{})

	// One analysis and one sweep-free request mix so labeled families have
	// at least one child each.
	if resp, body := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze); resp.StatusCode != 200 {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, body)
	}

	_, mbody := getBody(t, ts.URL+"/metrics")
	m := string(mbody)

	if err := obs.Lint(strings.NewReader(m)); err != nil {
		t.Errorf("exposition fails lint: %v", err)
	}

	for _, want := range []string{
		"# HELP ucp_requests_total HTTP requests served, by route.\n# TYPE ucp_requests_total counter",
		"# HELP ucp_cache_hits_total Result-cache hits.\n# TYPE ucp_cache_hits_total counter",
		"# HELP ucp_cache_misses_total Result-cache misses.\n# TYPE ucp_cache_misses_total counter",
		"# HELP ucp_cache_entries Resident result-cache entries.\n# TYPE ucp_cache_entries gauge",
		"# HELP ucp_analyses_total Analyses executed (cache misses that ran the optimizer).\n# TYPE ucp_analyses_total counter",
		"# HELP ucp_analysis_failures_total Executed analyses that returned an error.\n# TYPE ucp_analysis_failures_total counter",
		"# HELP ucp_analysis_policy_total Executed analyses by cache replacement policy.\n# TYPE ucp_analysis_policy_total counter",
		"# HELP ucp_analysis_incremental_hits_total WCET re-analyses seeded incrementally from a previous result.\n# TYPE ucp_analysis_incremental_hits_total counter",
		"# HELP ucp_analysis_full_reanalyses_total WCET analyses computed from scratch.\n# TYPE ucp_analysis_full_reanalyses_total counter",
		"# HELP ucp_jobs Sweep jobs by state.\n# TYPE ucp_jobs gauge",
		"# HELP ucp_panics_recovered_total Panics recovered from analysis tasks.\n# TYPE ucp_panics_recovered_total counter",
		"# HELP ucp_jobs_rejected_total Sweep submissions refused by admission control (429).\n# TYPE ucp_jobs_rejected_total counter",
		"# HELP ucp_cells_canceled_total Sweep cells stopped by cancellation or deadline.\n# TYPE ucp_cells_canceled_total counter",
		"# HELP ucp_analysis_latency_seconds Latency of executed analyses (recent window).\n# TYPE ucp_analysis_latency_seconds summary",
		"# HELP ucp_go_goroutines Live goroutines in the process.\n# TYPE ucp_go_goroutines gauge",
		"# HELP ucp_go_heap_bytes Heap bytes currently allocated and in use.\n# TYPE ucp_go_heap_bytes gauge",
		"# HELP ucp_go_gc_pause_seconds Cumulative stop-the-world GC pause time in seconds.\n# TYPE ucp_go_gc_pause_seconds gauge",
		"# HELP ucp_build_info Build metadata; the value is always 1.\n# TYPE ucp_build_info gauge",
		"# HELP ucp_phase_seconds Wall-clock pipeline phase duration per cell, by phase, in seconds.\n# TYPE ucp_phase_seconds summary",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("exposition missing family header:\n%s", want)
		}
	}

	// Label keys and shapes that clients scrape by.
	for _, want := range []string{
		`ucp_requests_total{route="POST /v1/analyze"} `,
		`ucp_analysis_policy_total{policy="lru"} 1`,
		`ucp_jobs{state="queued"} 0`,
		`ucp_jobs{state="running"} 0`,
		`ucp_jobs{state="done"} 0`,
		`ucp_jobs{state="failed"} 0`,
		`ucp_analysis_latency_seconds{quantile="0.5"} `,
		`ucp_analysis_latency_seconds{quantile="0.99"} `,
		`ucp_go_goroutines `,
		`ucp_build_info{go_version="` + runtime.Version() + `"} 1`,
		`ucp_phase_seconds{phase="optimize",quantile="0.5"} `,
		`ucp_phase_seconds_count{phase="optimize"} `,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("exposition missing sample %q", want)
		}
	}
}
