package service

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"ucp/internal/cache"
	"ucp/internal/experiment"
	"ucp/internal/faults"
	"ucp/internal/obs"
)

// workerCellRequest is the coordinator→worker wire format: one sweep cell,
// selected like an AnalyzeRequest plus the two execution switches a
// distributed sweep must control. SkipReduced distinguishes the two
// callers: a coordinator fronting /v1/analyze ships skip_reduced=true
// (Results carry no reduced-capacity series), while a distributed
// ucp-bench sweep ships false so the returned Cell feeds Figure 5 and the
// CSV byte-identically to a local run.
type workerCellRequest struct {
	AnalyzeRequest
	SkipReduced bool `json:"skip_reduced,omitempty"`
	Explain     bool `json:"explain,omitempty"`
}

// workerCellResponse is the worker→coordinator envelope. Trace is present
// only when the request carried a traceparent header: the worker's span
// tree, rooted in the remote trace context, which the coordinator grafts
// under its dispatch span so one tree spans both processes. It mirrors
// internal/dist's cellResponse — the two sides of the same wire format.
type workerCellResponse struct {
	Cell  experiment.Cell `json:"cell"`
	Trace *obs.SpanTree   `json:"trace,omitempty"`
}

// handleWorkerCell executes one cell in this process and returns the full
// experiment.Cell as JSON. It is the distributed execution primitive: no
// result caching (the coordinator owns the cache tiers), no singleflight
// (the coordinator dedups), just bounded, cancellable, fault-isolated
// pipeline execution. The endpoint exists only when Config.EnableWorker is
// set — it belongs on interior replicas behind a coordinator, not on
// public edges.
func (s *Server) handleWorkerCell(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.unavailable(w, "server is draining")
		return
	}
	var req workerCellRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	uc, err := s.resolve(req.AnalyzeRequest)
	if err != nil {
		s.resolveErr(w, err)
		return
	}
	reqID := requestID(r.Context())
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AnalyzeTimeout)
	defer cancel()

	// A dispatch carrying a traceparent header joins the coordinator's
	// trace: this process records its spans under the remote span ID and
	// ships the finished tree back in the response envelope. finish closes
	// the recorder exactly once, persists the worker-side tree to the local
	// sink (always — the coordinator decided this request is traced), and
	// returns the tree for the envelope.
	var rec *obs.Recorder
	if tp := r.Header.Get("traceparent"); tp != "" {
		rec = obs.NewChildRecorder("worker", tp)
		rec.Root().Attr("request_id", reqID)
		ctx = rec.Install(ctx)
	}
	finish := func() *obs.SpanTree {
		if rec == nil {
			return nil
		}
		rec.Release()
		tree := rec.Tree()
		rec = nil
		s.persistTrace(reqID, tree, true)
		return tree
	}
	defer finish()

	ctx, span := obs.Start(ctx, "worker.cell")
	span.Attr("program", uc.bench.Name)
	span.Attr("config", cache.ConfigID(uc.cfgIdx))

	// The fault site for distributed acceptance tests: UCP_FAULTS rules at
	// worker.cell can delay, fail, or kill this replica mid-sweep so the
	// coordinator's retry and failover paths get exercised for real.
	if err := faults.Fire(ctx, "worker.cell",
		fmt.Sprintf("%s/%s/%s", uc.bench.Name, cache.ConfigID(uc.cfgIdx), uc.tech)); err != nil {
		span.Attr("error", err.Error())
		span.End()
		s.analyzeErr(w, err)
		return
	}

	var cell experiment.Cell
	start := time.Now()
	perr := s.pool.ForEach(ctx, 1, func(ctx context.Context, _ int) error {
		var aerr error
		cell, aerr = experiment.RunCell(ctx, uc.bench, uc.cfgIdx, uc.tech, experiment.Options{
			Policy:           uc.cfg.Policy,
			L2:               uc.l2,
			Runs:             uc.runs,
			ValidationBudget: uc.budget,
			SkipReduced:      req.SkipReduced,
			Explain:          req.Explain,
		})
		return aerr
	})
	elapsed := time.Since(start)
	s.metrics.observeAnalysis(elapsed, perr == nil)
	s.metrics.countPolicy(uc.cfg.Policy.String())
	s.log.Info("worker cell",
		"request_id", reqID,
		"program", uc.bench.Name,
		"config", cache.ConfigID(uc.cfgIdx),
		"tech", uc.tech.String(),
		"duration_ms", elapsed.Milliseconds(),
		"ok", perr == nil,
	)
	if perr != nil {
		span.Attr("error", perr.Error())
		span.End()
		s.analyzeErr(w, perr)
		return
	}
	span.Attr("inserted", cell.Inserted)
	span.End()
	s.writeJSON(w, http.StatusOK, workerCellResponse{Cell: cell, Trace: finish()})
}
