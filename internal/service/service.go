// Package service exposes the full unlocked-cache-prefetching pipeline
// (assemble → VIVU expansion → abstract interpretation → prefetch
// optimization → simulation → energy model) as a long-running
// JSON-over-HTTP service. Exact cache analysis is expensive and heavily
// re-requested — the same (program, configuration, technology) cells recur
// across sweeps and clients — so the server memoizes every answer in a
// bounded, content-addressed result cache keyed by the program fingerprint
// and the analysis options, and schedules cells onto a bounded worker pool
// shared with internal/experiment.
//
// Endpoints:
//
//	POST /v1/analyze    one use case, synchronous
//	POST /v1/sweep      a use-case matrix, asynchronous (returns a job ID)
//	GET  /v1/jobs/{id}  job status and, when done, the ordered results
//	GET  /v1/jobs/{id}/events  live NDJSON progress stream for one job
//	GET  /v1/benchmarks the Mälardalen suite
//	GET  /v1/configs    the Table 2 configurations
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 while draining or saturated)
//	GET  /metrics       Prometheus text counters
//
// The execution layer is fault-tolerant (DESIGN.md §10): analyses are
// cooperatively cancellable (request deadlines, job timeouts, shutdown), a
// panicking analysis fails only its own cell, and admission control sheds
// work (429/503) before it can pile up behind the bounded worker pool.
package service

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucp/internal/cache"
	"ucp/internal/experiment"
	"ucp/internal/flight"
	"ucp/internal/journal"
	"ucp/internal/malardalen"
	"ucp/internal/obs"
	"ucp/internal/pool"
	"ucp/internal/store"
)

// Config tunes the server. The zero value is production-usable.
type Config struct {
	// Workers bounds concurrently running analysis cells across all
	// requests and jobs (0 = GOMAXPROCS).
	Workers int
	// CacheEntries bounds the content-addressed result cache
	// (0 = 512 entries).
	CacheEntries int
	// MaxBodyBytes bounds request bodies; larger requests get 413
	// (0 = 1 MiB).
	MaxBodyBytes int64
	// JobTimeout cancels a sweep job that has run longer
	// (0 = 15 minutes).
	JobTimeout time.Duration
	// AnalyzeTimeout bounds one synchronous /v1/analyze request; the
	// in-flight analysis is cancelled cooperatively when it expires and the
	// request gets 504 (0 = 2 minutes). Clients may lower — never raise —
	// the bound per request with ?timeout=30s.
	AnalyzeTimeout time.Duration
	// MaxQueuedJobs bounds sweep jobs admitted but not yet finished
	// (queued + running). Beyond it, POST /v1/sweep gets 429 with a
	// Retry-After header instead of growing the backlog (0 = 32).
	MaxQueuedJobs int
	// Store, when non-nil, adds a persistent second tier beneath the
	// in-memory result cache: results survive restarts and are shared with
	// every replica pointing at the same directory. The Server does not
	// close the store; its owner (cmd/ucp-serve, tests) does, after Close.
	Store *store.Store
	// Journal, when non-nil, makes sweep jobs durable: every submission,
	// completed cell, and terminal state is appended to a per-job journal,
	// and New replays the directory — finished jobs come back queryable,
	// unfinished jobs resume under their original IDs with only their
	// incomplete cells re-executing (DESIGN.md §14). The Server does not
	// own the directory's lifecycle; cmd/ucp-serve opens it.
	Journal *journal.Journal
	// EnableWorker exposes POST /v1/worker/cell, the raw cell-execution
	// endpoint a distributed coordinator (internal/dist) fans sweep cells
	// out to. Off by default: the endpoint returns full experiment.Cell
	// payloads and belongs on interior replicas, not public edges.
	EnableWorker bool
	// CellExec, when non-nil, replaces local pipeline execution for
	// /v1/analyze, sweeps, and batches — the coordinator configuration: a
	// front replica that caches, dedups, and admits, while the heavy
	// analysis runs on worker replicas (see internal/dist.Coordinator).
	CellExec experiment.CellExec
	// TraceSink, when non-nil, durably records traces and job lifecycle
	// events as NDJSON (obs.OpenSink): every request records spans, and the
	// tree is persisted when the request failed, ran slow, asked for
	// ?trace=1, or won the TraceSample coin flip — tail-based keeping on a
	// head-recorded trace. The Server does not close the sink; its owner
	// (cmd/ucp-serve, tests) does, after Close.
	TraceSink *obs.Sink
	// TraceSample is the sampling rate in [0,1] for persisting traces of
	// ordinary successful requests to TraceSink. Zero keeps only failed,
	// slow, and explicitly traced requests.
	TraceSample float64
	// Logger receives one structured line per request (nil = slog default).
	Logger *slog.Logger
}

// Server is the analysis service. Create with New, expose via Handler,
// stop background jobs with Close.
type Server struct {
	cfg     Config
	pool    *pool.Pool
	cache   *tieredCache
	flight  *flight.Group[Result]
	jobs    *jobStore
	reg     *obs.Registry
	metrics *metrics
	mux     *http.ServeMux
	log     *slog.Logger
	reqID   atomic.Int64
	sampler *obs.Sampler

	// benches indexes the suite by name; the contained Programs are
	// treated as read-only and shared across workers (the optimizer
	// clones before mutating).
	benches      map[string]malardalen.Benchmark
	benchNames   []string
	configLabels []string

	baseCtx  context.Context
	stop     context.CancelFunc
	wg       sync.WaitGroup
	draining atomic.Bool
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 15 * time.Minute
	}
	if cfg.AnalyzeTimeout <= 0 {
		cfg.AnalyzeTimeout = 2 * time.Minute
	}
	if cfg.MaxQueuedJobs <= 0 {
		cfg.MaxQueuedJobs = 32
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	// The journal's persisted high-water mark seeds the ID sequence, so a
	// restarted server never re-issues an ID — even one whose journal file
	// was pruned long ago.
	seqSeed := 0
	if cfg.Journal != nil {
		seqSeed = cfg.Journal.Seq()
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:     cfg,
		pool:    pool.New(cfg.Workers),
		cache:   newTieredCache(cfg.CacheEntries, cfg.Store),
		jobs:    newJobStore(seqSeed),
		reg:     reg,
		metrics: newMetrics(reg),
		log:     cfg.Logger,
		sampler: obs.NewSampler(cfg.TraceSample),
		benches: map[string]malardalen.Benchmark{},
	}
	s.registerPulls()
	for _, b := range malardalen.All() {
		s.benches[b.Name] = b
		s.benchNames = append(s.benchNames, b.Name)
	}
	for i := range cache.Table2() {
		s.configLabels = append(s.configLabels, cache.ConfigID(i))
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	// Flights run on the server's lifetime, not any one request's: a
	// waiter that disconnects detaches without cancelling the execution
	// the remaining waiters are riding. Drain cancels baseCtx and with it
	// every in-flight execution.
	s.flight = flight.New[Result](func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(s.baseCtx, s.cfg.AnalyzeTimeout)
	})
	s.mux = s.routes()
	// Crash recovery runs last, once the pool, flight group, and base
	// context exist: unfinished journaled jobs restart here, before the
	// listener comes up, so a client polling its old job ID never sees a
	// gap.
	s.recoverJobs()
	return s
}

// Handler returns the HTTP handler: the API routes wrapped in request
// logging, metrics, and the body size limit.
func (s *Server) Handler() http.Handler {
	var h http.Handler = s.mux
	h = http.MaxBytesHandler(h, s.cfg.MaxBodyBytes)
	return s.logging(h)
}

// Drain stops admitting work: /readyz flips to 503 so load balancers stop
// routing here, new sweeps and analyses are refused, and every running
// job's context is cancelled so in-flight cells unwind cooperatively. Call
// it before shutting the HTTP listener down; already-accepted requests
// still get their (error) responses.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.stop()
}

// Close drains (if not already draining) and waits for the job goroutines
// to exit. Call after the HTTP server has shut down.
func (s *Server) Close() {
	s.Drain()
	s.wg.Wait()
}

// isDraining reports whether Drain or Close has been called.
func (s *Server) isDraining() bool { return s.draining.Load() }

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// ctxKey keys values this package stores in request contexts.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// requestID returns the request ID the logging middleware assigned, or ""
// outside a request context.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// maxRequestIDLen bounds adopted X-Request-Id headers; anything longer (or
// carrying non-printable bytes) is discarded and the request gets a minted
// ID, so a hostile client cannot inject log lines or bloat span attrs.
const maxRequestIDLen = 128

// sanitizeRequestID validates an incoming X-Request-Id header. It returns
// "" (mint a fresh one) unless the header is non-empty, bounded, and made
// of printable non-space ASCII.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return ""
		}
	}
	return id
}

// slowTraceThreshold is the tail-based keep rule for request traces: a
// request at least this slow is persisted to the trace sink regardless of
// the sampling decision — the slow outliers are exactly the traces an
// operator goes looking for.
const slowTraceThreshold = 2 * time.Second

// persistTrace writes one finished request's span tree to the configured
// trace sink. keep bypasses the head sampler (failed, slow, or explicitly
// traced requests are always persisted); otherwise the sampler decides.
// Sink failures degrade observability, never the request.
func (s *Server) persistTrace(reqID string, tree *obs.SpanTree, keep bool) {
	sink := s.cfg.TraceSink
	if sink == nil || tree == nil {
		return
	}
	if !keep && !s.sampler.Sample() {
		return
	}
	// The request context may already be cancelled (client gone, deadline
	// hit) — exactly the traces worth keeping — so the write runs on a
	// background context.
	if err := sink.WriteTrace(context.Background(), reqID, tree); err != nil {
		s.log.Warn("trace sink write failed", "trace_id", tree.TraceID, "err", err)
	}
}

// logging assigns each request an ID, emits one structured line per
// request, and feeds the per-route request counter. An ID arriving in the
// X-Request-Id request header is adopted verbatim — a coordinator forwards
// its own ID to workers, so one grep correlates a request across every
// replica's log — otherwise a fresh one is minted. The ID rides the
// request context (handlers attach it to trace spans, internal/dist
// forwards it downstream) and is echoed in the X-Request-Id response
// header so a client can quote it when reporting a failure.
func (s *Server) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = fmt.Sprintf("req-%06d", s.reqID.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
		r = r.WithContext(obs.WithRequestID(ctx, id))
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		// Normalize the parameterized routes so /metrics label cardinality
		// stays bounded.
		path := r.URL.Path
		if strings.HasPrefix(path, "/v1/jobs/") {
			if strings.HasSuffix(path, "/events") {
				path = "/v1/jobs/{id}/events"
			} else {
				path = "/v1/jobs/{id}"
			}
		}
		s.metrics.countRequest(r.Method + " " + path)
		s.log.Info("request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", time.Since(start).Milliseconds(),
			"remote", r.RemoteAddr,
		)
	})
}
