package service

import (
	"encoding/json"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"ucp/internal/faults"
)

// armFaults installs a fault spec for the duration of one test. The fault
// registry is process-global, so tests that arm it must not run in
// parallel.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	if err := faults.Arm(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)
}

// submitSweep posts a sweep request and returns the job's status URL.
func submitSweep(t *testing.T, ts string, body string) string {
	t.Helper()
	resp, b := postJSON(t, ts+"/v1/sweep", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: status %d, body %s", resp.StatusCode, b)
	}
	var sub struct {
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatal(err)
	}
	return sub.StatusURL
}

// TestJobTimeoutStopsHungCell is the issue's first acceptance criterion: a
// sweep cell that never returns on its own (the hang action blocks until
// its context dies — an injected infinite loop, as far as the scheduler
// can tell) must be stopped by JobTimeout, and the job must reach a
// terminal state within 2× the configured timeout.
func TestJobTimeoutStopsHungCell(t *testing.T) {
	armFaults(t, "experiment.cell:*=hang")
	const timeout = 500 * time.Millisecond
	ts, _ := testServer(t, Config{JobTimeout: timeout})

	start := time.Now()
	url := submitSweep(t, ts.URL, `{"programs":["fibcall"],"configs":["k1"],"techs":["45nm"],"runs":1}`)

	deadline := time.Now().Add(2 * timeout)
	var st JobStatus
	for {
		resp, b := getBody(t, ts.URL+url)
		if resp.StatusCode != 200 {
			t.Fatalf("job poll: status %d, body %s", resp.StatusCode, b)
		}
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == string(jobDone) || st.State == string(jobFailed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after %v (2x the %v timeout)", st.State, time.Since(start), timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != string(jobFailed) {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("job error = %q, want a deadline error", st.Error)
	}

	_, body := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, string(body), "ucp_cells_canceled_total"); v < 1 {
		t.Errorf("ucp_cells_canceled_total = %v, want >= 1", v)
	}
}

// TestPanicFailsOnlyItsCell is the issue's second acceptance criterion: a
// panic injected into one sweep cell fails that cell alone — its siblings
// complete, the job finishes, and the server keeps serving.
func TestPanicFailsOnlyItsCell(t *testing.T) {
	armFaults(t, "experiment.cell:fibcall/k1/45nm=panic")
	ts, _ := testServer(t, Config{})

	url := submitSweep(t, ts.URL, `{"programs":["fibcall","fac"],"configs":["k1"],"techs":["45nm"],"runs":1,"validation_budget":20}`)
	st := pollJob(t, ts.URL+url)

	if st.State != string(jobDone) {
		t.Fatalf("state = %s (err %q), want done: the panic must not fail the job", st.State, st.Error)
	}
	if st.Failed != 1 || st.Done != 1 {
		t.Fatalf("failed = %d, done = %d, want 1 and 1", st.Failed, st.Done)
	}
	if len(st.CellErrors) != 1 || !strings.Contains(st.CellErrors[0], "fibcall/k1/45nm") {
		t.Fatalf("cell errors = %q, want one entry naming fibcall/k1/45nm", st.CellErrors)
	}
	if len(st.Results) != 2 {
		t.Fatalf("results = %d, want 2 (failed cell keeps its zero slot)", len(st.Results))
	}
	if st.Results[0].Program != "" {
		t.Errorf("failed cell result = %+v, want zero", st.Results[0])
	}
	if st.Results[1].Program != "fac" {
		t.Errorf("sibling result = %+v, want fac", st.Results[1])
	}

	// The server survived: liveness and a fresh analysis both work.
	resp, _ := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz after panic: %d", resp.StatusCode)
	}
	resp, b := postJSON(t, ts.URL+"/v1/analyze", `{"program":"fac","config":"k1","tech":"45nm","runs":1,"validation_budget":20}`)
	if resp.StatusCode != 200 {
		t.Fatalf("analyze after panic: %d %s", resp.StatusCode, b)
	}

	_, body := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, string(body), "ucp_panics_recovered_total"); v < 1 {
		t.Errorf("ucp_panics_recovered_total = %v, want >= 1", v)
	}
}

// TestAnalyzePanicSanitized500 pins the synchronous path's panic contract:
// 500, a stable sanitized message, and no stack trace in the body.
func TestAnalyzePanicSanitized500(t *testing.T) {
	armFaults(t, "service.analyze:fibcall=panic")
	ts, _ := testServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var e apiError
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error != "internal panic during analysis" {
		t.Fatalf("error = %q, want the sanitized message", e.Error)
	}
	if strings.Contains(string(body), "goroutine") {
		t.Fatalf("body leaks a stack trace: %s", body)
	}
}

// TestAnalyzeRequestTimeout504 checks the per-request deadline: a hung
// analysis under ?timeout= comes back 504, and the client-supplied value
// can only lower the server's bound, never raise it.
func TestAnalyzeRequestTimeout504(t *testing.T) {
	armFaults(t, "service.analyze:*=hang")
	ts, _ := testServer(t, Config{AnalyzeTimeout: 200 * time.Millisecond})

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/analyze?timeout=50ms", smallAnalyze)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}

	// ?timeout= must not raise the configured bound: even asking for an
	// hour, the hung analysis dies at the server's 200ms.
	start = time.Now()
	resp, body = postJSON(t, ts.URL+"/v1/analyze?timeout=1h", smallAnalyze)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("?timeout=1h stretched the server bound: took %v", elapsed)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/analyze?timeout=bogus", smallAnalyze)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status = %d, want 400", resp.StatusCode)
	}
}

// TestExpiredJob404Body pins the two 404 shapes of the job endpoint: an ID
// the store has pruned answers "expired", an ID never issued answers
// "unknown". Clients rely on the distinction to know their results are
// gone rather than mistyped.
func TestExpiredJob404Body(t *testing.T) {
	ts, svc := testServer(t, Config{MaxQueuedJobs: 10_000})

	// Fill the store past its finished-job bound so the earliest job is
	// pruned. Driving >256 real sweeps through HTTP would dominate the
	// suite, so finished jobs are injected directly.
	for i := 0; i < maxFinishedJobs+2; i++ {
		j, _, err := svc.jobs.tryAdd(SweepRequest{}, nil, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		j.mu.Lock()
		j.state = jobDone
		j.mu.Unlock()
	}
	// One more add runs prune over the now-finished backlog.
	if _, _, err := svc.jobs.tryAdd(SweepRequest{}, nil, 10_000); err != nil {
		t.Fatal(err)
	}

	resp, body := getBody(t, ts.URL+"/v1/jobs/job-000001")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var e apiError
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if want := `job "job-000001" expired`; e.Error != want {
		t.Fatalf("expired body = %q, want %q", e.Error, want)
	}

	resp, body = getBody(t, ts.URL+"/v1/jobs/job-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if want := `unknown job "job-999999"`; e.Error != want {
		t.Fatalf("unknown body = %q, want %q", e.Error, want)
	}
}

// TestReadyzStates walks /readyz through its three answers: ready,
// saturated (job queue full), draining (shutdown begun).
func TestReadyzStates(t *testing.T) {
	ts, svc := testServer(t, Config{MaxQueuedJobs: 1})

	resp, body := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ready") {
		t.Fatalf("fresh server: %d %s, want 200 ready", resp.StatusCode, body)
	}

	if _, _, err := svc.jobs.tryAdd(SweepRequest{}, nil, 1); err != nil {
		t.Fatal(err)
	}
	resp, body = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "saturated") {
		t.Fatalf("full queue: %d %s, want 503 saturated", resp.StatusCode, body)
	}

	svc.Drain()
	resp, body = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining: %d %s, want 503 draining", resp.StatusCode, body)
	}
	// Liveness is unaffected; work submission is refused.
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz while draining: %d, want 200", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("analyze while draining: %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sweep", `{"programs":["fibcall"]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep while draining: %d, want 503", resp.StatusCode)
	}
}

// TestSweepQueueFull429 checks admission control: beyond MaxQueuedJobs
// unfinished jobs, submissions get 429 with a Retry-After hint and are
// counted, not queued.
func TestSweepQueueFull429(t *testing.T) {
	armFaults(t, "experiment.cell:*=hang")
	ts, _ := testServer(t, Config{MaxQueuedJobs: 1, JobTimeout: time.Hour})

	sweep := `{"programs":["fibcall"],"configs":["k1"],"techs":["45nm"],"runs":1}`
	submitSweep(t, ts.URL, sweep) // occupies the whole queue, hung

	resp, body := postJSON(t, ts.URL+"/v1/sweep", sweep)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	_, mb := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, string(mb), "ucp_jobs_rejected_total"); v != 1 {
		t.Errorf("ucp_jobs_rejected_total = %v, want 1", v)
	}
	// testServer's cleanup drains; the hung cell unwinds on the base
	// context and the job goroutine exits (the leak test below watches
	// the same path under -race).
}

// TestShutdownDuringActiveSweep drives the drain path while a sweep is
// mid-flight: Close must cancel the hung cells, the job must land in a
// terminal state, and no goroutines may leak. Run under -race in CI.
func TestShutdownDuringActiveSweep(t *testing.T) {
	before := runtime.NumGoroutine()

	armFaults(t, "experiment.cell:*=hang")
	ts, svc := testServer(t, Config{JobTimeout: time.Hour, Workers: 4})
	url := submitSweep(t, ts.URL, `{"programs":["fibcall","fac","bs"],"configs":["k1","k2"],"techs":["45nm"],"runs":1}`)

	// Let the job reach running with cells blocked in the hang hook.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, b := getBody(t, ts.URL+url)
		if resp.StatusCode != 200 {
			t.Fatalf("job poll: %d %s", resp.StatusCode, b)
		}
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == string(jobRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	svc.Close() // Drain + wait: cancels the hung cells, joins the job goroutine

	resp, b := getBody(t, ts.URL+url)
	if resp.StatusCode != 200 {
		t.Fatalf("job poll after close: %d %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != string(jobFailed) {
		t.Fatalf("state after shutdown = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "cancel") {
		t.Fatalf("job error = %q, want a cancellation", st.Error)
	}

	ts.Close()

	// No goroutine leaks: the count must return to (near) the baseline.
	// runtime.NumGoroutine is noisy — httptest and the runtime keep a few
	// transient goroutines — so poll with slack instead of pinning equality.
	leakDeadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines: %d before, %d after shutdown — leak", before, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestFaultEnvArmed is the CI fault-injection matrix entry: it runs only
// when the driver exports UCP_FAULTS=service.analyze:fibcall=panic (see
// .github/workflows/ci.yml) and verifies the env-armed harness end to end
// — the injected panic 500s fibcall while the server keeps serving fac.
func TestFaultEnvArmed(t *testing.T) {
	if os.Getenv("UCP_FAULTS") != "service.analyze:fibcall=panic" {
		t.Skip("set UCP_FAULTS=service.analyze:fibcall=panic to run")
	}
	if !faults.Armed() {
		t.Fatal("UCP_FAULTS set but harness not armed")
	}
	ts, _ := testServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/analyze", smallAnalyze)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("fibcall: status = %d (%s), want 500 from the injected panic", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/analyze", `{"program":"fac","config":"k1","tech":"45nm","runs":1,"validation_budget":20}`)
	if resp.StatusCode != 200 {
		t.Fatalf("fac: status = %d (%s), want 200 — the panic must not poison the server", resp.StatusCode, body)
	}
}
