package vivu

import (
	"testing"

	"ucp/internal/isa"
)

func expand(t *testing.T, p *isa.Program) *Prog {
	t.Helper()
	x, err := Expand(p)
	if err != nil {
		t.Fatalf("Expand(%s): %v", p.Name, err)
	}
	return x
}

func TestExpandStraightLine(t *testing.T) {
	p := isa.Build("s", isa.Code(5))
	x := expand(t, p)
	if len(x.Blocks) != 1 {
		t.Fatalf("expanded blocks = %d, want 1", len(x.Blocks))
	}
	if x.Blocks[0].Ctx != "" {
		t.Fatalf("ctx = %q", x.Blocks[0].Ctx)
	}
	if x.NRefs() != p.NInstr() {
		t.Fatalf("NRefs = %d, want %d", x.NRefs(), p.NInstr())
	}
}

func TestExpandSimpleLoop(t *testing.T) {
	p := isa.Build("l", isa.Loop(4, 3, isa.Code(2)))
	x := expand(t, p)
	// Original blocks: entry(pre), head, body, exit. Head and body get F and
	// R copies: 2 + 2*2 = 6 expanded blocks.
	if len(x.Blocks) != 6 {
		t.Fatalf("expanded blocks = %d, want 6", len(x.Blocks))
	}
	if len(x.Loops) != 1 {
		t.Fatalf("loop instances = %d", len(x.Loops))
	}
	inst := x.Loops[0]
	if inst.Bound != 4 || inst.HeadRest == -1 {
		t.Fatalf("instance = %+v", inst)
	}
	// Exactly one back edge: bodyR -> headR.
	var backs int
	for _, xb := range x.Blocks {
		for _, e := range xb.Succs {
			if e.Back {
				backs++
				if e.To != inst.HeadRest {
					t.Fatalf("back edge targets %d, want HeadRest %d", e.To, inst.HeadRest)
				}
				if x.Blocks[xb.ID].Ctx != "R" {
					t.Fatalf("back edge source ctx = %q, want R", xb.Ctx)
				}
			}
		}
	}
	if backs != 1 {
		t.Fatalf("back edges = %d, want 1", backs)
	}
}

func TestExpandBoundOneLoopHasNoRestContext(t *testing.T) {
	p := isa.Build("l1", isa.Loop(1, 1, isa.Code(3)))
	x := expand(t, p)
	for _, xb := range x.Blocks {
		for _, c := range xb.Ctx {
			if c == 'R' {
				t.Fatalf("bound-1 loop produced an R context: %+v", xb)
			}
		}
		for _, e := range xb.Succs {
			if e.Back {
				t.Fatal("bound-1 loop kept a back edge")
			}
		}
	}
	if x.Loops[0].HeadRest != -1 {
		t.Fatalf("HeadRest = %d, want -1", x.Loops[0].HeadRest)
	}
}

func TestExpandNestedLoops(t *testing.T) {
	p := isa.Build("n", isa.Loop(5, 4, isa.Loop(3, 2, isa.Code(1))))
	x := expand(t, p)
	// Inner loop blocks appear in 4 contexts: FF, FR, RF, RR.
	inner := p.Loops[1]
	counts := map[Context]int{}
	for _, xb := range x.Blocks {
		if xb.Orig == inner.Head {
			counts[xb.Ctx]++
		}
	}
	for _, want := range []Context{"FF", "FR", "RF", "RR"} {
		if counts[want] != 1 {
			t.Fatalf("inner head contexts = %v, missing %q", counts, want)
		}
	}
	// Four inner loop instances (one per outer context) + two outer?? No:
	// outer has one instance, inner has two (enclosing F and R).
	var innerInst, outerInst int
	for _, li := range x.Loops {
		if li.Orig == 1 {
			innerInst++
		} else {
			outerInst++
		}
	}
	if outerInst != 1 || innerInst != 2 {
		t.Fatalf("instances outer=%d inner=%d, want 1 and 2", outerInst, innerInst)
	}
}

func TestExpandIfInsideLoop(t *testing.T) {
	p := isa.Build("il", isa.Loop(6, 5, isa.If(0.5, isa.S(isa.Code(2)), isa.S(isa.Code(3)))))
	x := expand(t, p)
	if err := checkTopo(x); err != "" {
		t.Fatal(err)
	}
}

func TestTopoCoversAllBlocksAndRespectsEdges(t *testing.T) {
	progs := []*isa.Program{
		isa.Build("a", isa.Code(3)),
		isa.Build("b", isa.If(0.5, isa.S(isa.Code(1)), nil)),
		isa.Build("c", isa.Loop(9, 4, isa.Code(2), isa.IfThen(0.2, isa.Code(4)))),
		isa.Build("d", isa.Loop(4, 2, isa.Loop(4, 2, isa.Code(1))), isa.Code(2)),
	}
	for _, p := range progs {
		x := expand(t, p)
		if msg := checkTopo(x); msg != "" {
			t.Errorf("%s: %s", p.Name, msg)
		}
	}
}

func checkTopo(x *Prog) string {
	if len(x.Topo) != len(x.Blocks) {
		return "topo does not cover all blocks"
	}
	pos := make([]int, len(x.Blocks))
	for i, id := range x.Topo {
		pos[id] = i
	}
	for _, xb := range x.Blocks {
		for _, e := range xb.Succs {
			if e.Back {
				if pos[e.To] > pos[xb.ID] {
					return "back edge goes forward in topo order"
				}
				continue
			}
			if pos[xb.ID] >= pos[e.To] {
				return "forward edge violates topo order"
			}
		}
	}
	return ""
}

func TestPredsMatchSuccs(t *testing.T) {
	p := isa.Build("pm", isa.Loop(3, 2, isa.IfThen(0.5, isa.Code(2))), isa.Code(1))
	x := expand(t, p)
	count := func(list []int, v int) int {
		c := 0
		for _, e := range list {
			if e == v {
				c++
			}
		}
		return c
	}
	for _, xb := range x.Blocks {
		for _, e := range xb.Succs {
			if count(x.Blocks[e.To].Preds, xb.ID) < 1 {
				t.Fatalf("edge %d->%d missing from Preds", xb.ID, e.To)
			}
		}
	}
}

func TestInstrRefMapsBack(t *testing.T) {
	p := isa.Build("ir", isa.Loop(3, 2, isa.Code(2)))
	x := expand(t, p)
	for _, xb := range x.Blocks {
		for i := range p.Blocks[xb.Orig].Instrs {
			ref := x.InstrRef(Ref{XB: xb.ID, Index: i})
			if ref.Block != xb.Orig || ref.Index != i {
				t.Fatalf("InstrRef mismatch: %v", ref)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	p := isa.Build("lk", isa.Loop(3, 2, isa.Code(2)))
	x := expand(t, p)
	head := p.Loops[0].Head
	if x.Lookup(head, "F") == -1 {
		t.Fatal("missing F instance of loop head")
	}
	if x.Lookup(head, "R") == -1 {
		t.Fatal("missing R instance of loop head")
	}
	if x.Lookup(head, "Z") != -1 {
		t.Fatal("bogus context resolved")
	}
}

func TestContextString(t *testing.T) {
	if Context("").String() != "·" {
		t.Fatal("empty context rendering")
	}
	if Context("FR").String() != "F.R" {
		t.Fatalf("got %q", Context("FR").String())
	}
}

func TestExpandRejectsIrreducibleEdge(t *testing.T) {
	// Hand-build a CFG with an edge jumping into the middle of a loop
	// (bypassing the header): VIVU must refuse it.
	p := isa.Build("irr", isa.Code(2), isa.Loop(3, 2, isa.Code(4)), isa.Code(2))
	body := -1
	head := p.Loops[0].Head
	for _, b := range p.Loops[0].Blocks {
		if b != head {
			body = b
		}
	}
	// Redirect the entry block's jump straight into the body.
	entry := p.Blocks[p.Entry]
	entry.Succs = []int{body}
	if _, err := Expand(p); err == nil {
		t.Fatal("irreducible entry into a loop body must be rejected")
	}
}

func TestExpandRejectsInvalidProgram(t *testing.T) {
	p := isa.Build("bad", isa.Code(3))
	p.Blocks[0].Succs = []int{99}
	if _, err := Expand(p); err == nil {
		t.Fatal("invalid program must be rejected")
	}
}

func TestNRefsMatchesContexts(t *testing.T) {
	p := isa.Build("n", isa.Loop(4, 2, isa.Code(3)))
	x := expand(t, p)
	want := 0
	for _, xb := range x.Blocks {
		want += len(p.Blocks[xb.Orig].Instrs)
	}
	if x.NRefs() != want {
		t.Fatalf("NRefs = %d, want %d", x.NRefs(), want)
	}
}

func TestRegionMembersInnermost(t *testing.T) {
	p := isa.Build("rm", isa.Loop(4, 2, isa.Loop(3, 2, isa.Code(2))))
	x := expand(t, p)
	for _, inst := range x.Loops {
		if inst.HeadRest == -1 {
			continue
		}
		for _, xb := range x.RegionMembers(inst) {
			ctx := x.Blocks[xb].Ctx
			want := inst.Enclosing + "R"
			if len(ctx) < len(want) || ctx[:len(want)] != want {
				t.Fatalf("member %d has ctx %q outside region %q", xb, ctx, want)
			}
		}
	}
}
