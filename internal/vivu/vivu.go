// Package vivu implements the VIVU transformation ("virtual inlining,
// virtual unrolling") that classical cache-aware WCET analysis applies
// before abstract interpretation: every loop is virtually unrolled once, so
// each basic block is replicated into a *first-iteration* context and an
// *other-iterations* context per enclosing loop. The result is the paper's
// context-expanded graph: dropping its back edges yields the acyclic ACFG
// (Definition 6) on which the reverse prefetching analysis runs, while
// keeping them yields the graph on which the must/may fixpoint and the IPET
// formulation operate.
package vivu

import (
	"context"
	"fmt"
	"strings"

	"ucp/internal/cfg"
	"ucp/internal/isa"
	"ucp/internal/obs"
)

// Context is a VIVU context string: one letter per enclosing loop, outermost
// first; 'F' marks the first iteration, 'R' the remaining iterations.
type Context string

// Edge is one control-flow edge of the expanded graph.
type Edge struct {
	To   int  // target expanded block ID
	Back bool // true for the residual back edges of 'R' contexts
}

// Block is one expanded basic block: an original block instantiated in a
// VIVU context.
type Block struct {
	ID    int
	Orig  int // original basic-block ID
	Ctx   Context
	Succs []Edge
	Preds []int // filled by Expand; predecessor expanded block IDs
}

// LoopInstance identifies one instantiation of an original loop in a given
// enclosing context, together with the expanded header blocks the IPET bound
// constraints attach to.
type LoopInstance struct {
	Orig      int     // index into Program.Loops
	Enclosing Context // context of the surrounding code
	Bound     int
	HeadFirst int // expanded ID of the header in the F context
	HeadRest  int // expanded ID of the header in the R context, or -1
}

// Prog is the context-expanded program.
type Prog struct {
	Prog   *isa.Program
	Blocks []*Block
	Entry  int
	Loops  []LoopInstance
	// Topo is a topological order of Blocks ignoring back edges (the ACFG
	// order); back edges only close the R-context self-loops.
	Topo []int

	index map[instKey]int
}

type instKey struct {
	orig int
	ctx  Context
}

// Lookup returns the expanded block ID for (original block, context), or -1.
func (x *Prog) Lookup(orig int, ctx Context) int {
	if id, ok := x.index[instKey{orig, ctx}]; ok {
		return id
	}
	return -1
}

// NRefs returns the total number of expanded references (instruction
// instances) in the expanded program.
func (x *Prog) NRefs() int {
	n := 0
	for _, b := range x.Blocks {
		n += len(x.Prog.Blocks[b.Orig].Instrs)
	}
	return n
}

// ExpandCtx is Expand with a "vivu.expand" span recording the expansion's
// size: original blocks in, expanded blocks and references out.
func ExpandCtx(ctx context.Context, p *isa.Program) (*Prog, error) {
	_, sp := obs.Start(ctx, "vivu.expand")
	x, err := Expand(p)
	if sp != nil && err == nil {
		sp.Attr("blocks", len(p.Blocks))
		sp.Attr("expanded_blocks", len(x.Blocks))
		sp.Attr("refs", x.NRefs())
	}
	sp.End()
	return x, err
}

// Expand applies the VIVU transformation to p. Loops with bound 1 get no
// R context (their back edge is infeasible); every other loop contributes a
// factor of two to the contexts of its members.
func Expand(p *isa.Program) (*Prog, error) {
	if err := isa.Validate(p); err != nil {
		return nil, fmt.Errorf("vivu: %w", err)
	}
	chains, err := loopChains(p)
	if err != nil {
		return nil, err
	}

	x := &Prog{Prog: p, index: map[instKey]int{}}

	// Instantiate every block in every feasible context of its loop chain.
	for b := range p.Blocks {
		for _, ctx := range contextsFor(p, chains[b]) {
			xb := &Block{ID: len(x.Blocks), Orig: b, Ctx: ctx}
			x.Blocks = append(x.Blocks, xb)
			x.index[instKey{b, ctx}] = xb.ID
		}
	}
	x.Entry = x.index[instKey{p.Entry, ""}]

	// Wire the expanded edges.
	for _, xb := range x.Blocks {
		u := xb.Orig
		cu := xb.Ctx
		for _, v := range p.Blocks[u].Succs {
			tc, back, feasible, err := targetContext(p, chains, u, cu, v)
			if err != nil {
				return nil, err
			}
			if !feasible {
				continue
			}
			tid, ok := x.index[instKey{v, tc}]
			if !ok {
				return nil, fmt.Errorf("vivu: missing instance of block %d in context %q", v, tc)
			}
			xb.Succs = append(xb.Succs, Edge{To: tid, Back: back})
		}
	}
	for _, xb := range x.Blocks {
		for _, e := range xb.Succs {
			x.Blocks[e.To].Preds = append(x.Blocks[e.To].Preds, xb.ID)
		}
	}

	// Register loop instances.
	for li, l := range p.Loops {
		enclosing := chains[l.Head]
		enclosing = enclosing[:len(enclosing)-1] // the chain minus the loop itself
		for _, ectx := range contextsFor(p, enclosing) {
			inst := LoopInstance{Orig: li, Enclosing: ectx, Bound: l.Bound}
			inst.HeadFirst = x.index[instKey{l.Head, ectx + "F"}]
			inst.HeadRest = -1
			if l.Bound > 1 {
				inst.HeadRest = x.index[instKey{l.Head, ectx + "R"}]
			}
			x.Loops = append(x.Loops, inst)
		}
	}

	// Topological order of the DAG obtained by dropping back edges.
	dag := cfg.Graph{Succs: make([][]int, len(x.Blocks)), Entry: x.Entry}
	for _, xb := range x.Blocks {
		for _, e := range xb.Succs {
			if !e.Back {
				dag.Succs[xb.ID] = append(dag.Succs[xb.ID], e.To)
			}
		}
	}
	topo, err := cfg.Topological(dag)
	if err != nil {
		return nil, fmt.Errorf("vivu: expanded graph not acyclic after removing back edges: %w", err)
	}
	x.Topo = topo
	if len(topo) != len(x.Blocks) {
		return nil, fmt.Errorf("vivu: %d of %d expanded blocks unreachable", len(x.Blocks)-len(topo), len(x.Blocks))
	}
	return x, nil
}

// loopChains returns, for every block, the indexes of its enclosing loops
// from outermost to innermost, derived from the program's loop annotations.
func loopChains(p *isa.Program) ([][]int, error) {
	chains := make([][]int, len(p.Blocks))
	depth := func(li int) int {
		d := 0
		for li >= 0 {
			d++
			li = p.Loops[li].Parent
		}
		return d
	}
	// innermost[b] = deepest loop containing b, or -1
	innermost := make([]int, len(p.Blocks))
	for i := range innermost {
		innermost[i] = -1
	}
	for li := range p.Loops {
		for _, b := range p.Loops[li].Blocks {
			if innermost[b] == -1 || depth(li) > depth(innermost[b]) {
				innermost[b] = li
			}
		}
	}
	for b := range p.Blocks {
		var rev []int
		for li := innermost[b]; li >= 0; li = p.Loops[li].Parent {
			rev = append(rev, li)
		}
		chain := make([]int, len(rev))
		for i := range rev {
			chain[len(rev)-1-i] = rev[i]
		}
		chains[b] = chain
	}
	return chains, nil
}

// contextsFor enumerates the feasible contexts for a block with the given
// loop chain: {F} for bound-1 loops, {F, R} otherwise, as a cross product
// outermost-first.
func contextsFor(p *isa.Program, chain []int) []Context {
	ctxs := []Context{""}
	for _, li := range chain {
		letters := "F"
		if p.Loops[li].Bound > 1 {
			letters = "FR"
		}
		var next []Context
		for _, c := range ctxs {
			for _, l := range letters {
				next = append(next, c+Context(l))
			}
		}
		ctxs = next
	}
	return ctxs
}

// targetContext computes the context in which the successor v of block u
// (instantiated in context cu) must be instantiated, and whether the edge is
// a residual back edge or infeasible (a back edge of a bound-1 loop).
func targetContext(p *isa.Program, chains [][]int, u int, cu Context, v int) (tc Context, back, feasible bool, err error) {
	cuS := string(cu)
	chainU := chains[u]
	chainV := chains[v]

	// Back edge of the original program: v is the header of one of u's
	// enclosing loops. In the expanded graph the copy matters: from an F
	// context the edge *enters* the R region for the first time (a forward
	// edge of the ACFG), while from an R context it closes the residual
	// cycle and is a true back edge.
	for k, li := range chainU {
		if p.Loops[li].Head == v && len(chainV) == k+1 && sameChain(chainV, chainU[:k+1]) {
			if p.Loops[li].Bound == 1 {
				return "", false, false, nil // infeasible: at most one iteration
			}
			return Context(cuS[:k] + "R"), cuS[k] == 'R', true, nil
		}
	}

	switch {
	case len(chainV) == len(chainU)+1 && sameChain(chainV[:len(chainU)], chainU):
		// Loop entry: v must be the header of the entered loop.
		li := chainV[len(chainV)-1]
		if p.Loops[li].Head != v {
			return "", false, false, fmt.Errorf("vivu: edge %d->%d enters loop %d not at its header", u, v, li)
		}
		return Context(cuS) + "F", false, true, nil
	case len(chainV) <= len(chainU) && sameChain(chainV, chainU[:len(chainV)]):
		// Loop exit (possibly multi-level) or same-level flow.
		return Context(cuS[:len(chainV)]), false, true, nil
	default:
		return "", false, false, fmt.Errorf("vivu: irreducible edge %d->%d (chains %v -> %v)", u, v, chainU, chainV)
	}
}

func sameChain(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RegionMembers returns the expanded blocks of the residual (R-copy) region
// of a loop instance: members of the original loop whose context extends
// Enclosing+"R". Both the structural WCET solver and the IPET formulation
// attach their per-entry costs and bounds to this region.
func (x *Prog) RegionMembers(inst LoopInstance) []int {
	loop := x.Prog.Loops[inst.Orig]
	inLoop := map[int]bool{}
	for _, b := range loop.Blocks {
		inLoop[b] = true
	}
	want := inst.Enclosing + "R"
	var out []int
	for _, xb := range x.Blocks {
		if !inLoop[xb.Orig] {
			continue
		}
		if len(xb.Ctx) >= len(want) && xb.Ctx[:len(want)] == want {
			out = append(out, xb.ID)
		}
	}
	return out
}

// Ref identifies one expanded reference: instruction Index of the expanded
// block XB. Its address (and memory block) is that of the underlying
// original instruction, shared by all contexts.
type Ref struct {
	XB    int
	Index int
}

// InstrRef returns the original-program instruction reference underlying r.
func (x *Prog) InstrRef(r Ref) isa.InstrRef {
	return isa.InstrRef{Block: x.Blocks[r.XB].Orig, Index: r.Index}
}

// String renders a context for diagnostics.
func (c Context) String() string {
	if c == "" {
		return "·"
	}
	return strings.Join(strings.Split(string(c), ""), ".")
}
