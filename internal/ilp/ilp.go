// Package ilp is a from-scratch linear programming and integer linear
// programming solver: a dense two-phase primal simplex with Bland's
// anti-cycling rule, plus branch-and-bound for integrality. It exists to
// solve the IPET formulations of WCET analysis (Section 3.2 of the paper),
// whose constraint matrices are network-like and therefore solve quickly and
// almost always integrally at the LP relaxation already.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relational operator of a constraint.
type Sense int

const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

// String returns the operator glyph.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Constraint is a single linear constraint sum(Coeffs[i]*x_i) Sense RHS.
// Coeffs is sparse: absent variables have coefficient zero.
type Constraint struct {
	Coeffs map[int]float64
	Sense  Sense
	RHS    float64
	Name   string // optional, for diagnostics
}

// Problem is a maximization problem over non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; maximize Objective · x
	Constraints []Constraint
	Integer     []bool // nil, or length NumVars: which variables are integral
}

// Solution is an optimal assignment.
type Solution struct {
	X         []float64
	Objective float64
}

// ErrInfeasible is returned when no assignment satisfies the constraints.
var ErrInfeasible = errors.New("ilp: infeasible")

// ErrUnbounded is returned when the objective can grow without limit.
var ErrUnbounded = errors.New("ilp: unbounded")

const eps = 1e-7

// NewProblem returns an empty maximization problem with n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n)}
}

// AddConstraint appends a constraint.
func (p *Problem) AddConstraint(c Constraint) { p.Constraints = append(p.Constraints, c) }

// Le is shorthand for adding sum(coeffs·x) ≤ rhs.
func (p *Problem) Le(coeffs map[int]float64, rhs float64, name string) {
	p.AddConstraint(Constraint{Coeffs: coeffs, Sense: LE, RHS: rhs, Name: name})
}

// Eq is shorthand for adding sum(coeffs·x) = rhs.
func (p *Problem) Eq(coeffs map[int]float64, rhs float64, name string) {
	p.AddConstraint(Constraint{Coeffs: coeffs, Sense: EQ, RHS: rhs, Name: name})
}

// SolveLP solves the LP relaxation with a two-phase dense simplex.
func (p *Problem) SolveLP() (*Solution, error) {
	t, err := newTableau(p)
	if err != nil {
		return nil, err
	}
	if err := t.phase1(); err != nil {
		return nil, err
	}
	if err := t.phase2(); err != nil {
		return nil, err
	}
	x := t.extract()
	return &Solution{X: x, Objective: dot(p.Objective, x)}, nil
}

// SolveILP solves the problem with branch-and-bound over the variables
// marked integral. Problems without integral variables degenerate to
// SolveLP.
func (p *Problem) SolveILP() (*Solution, error) {
	if p.Integer == nil {
		return p.SolveLP()
	}
	best := (*Solution)(nil)
	var solve func(extra []Constraint) error
	solve = func(extra []Constraint) error {
		sub := &Problem{
			NumVars:     p.NumVars,
			Objective:   p.Objective,
			Constraints: append(append([]Constraint(nil), p.Constraints...), extra...),
		}
		sol, err := sub.SolveLP()
		if errors.Is(err, ErrInfeasible) {
			return nil // prune
		}
		if err != nil {
			return err
		}
		if best != nil && sol.Objective <= best.Objective+eps {
			return nil // bound
		}
		frac := -1
		for i := 0; i < p.NumVars; i++ {
			if p.Integer[i] && math.Abs(sol.X[i]-math.Round(sol.X[i])) > eps {
				frac = i
				break
			}
		}
		if frac == -1 {
			rounded := make([]float64, len(sol.X))
			for i, v := range sol.X {
				if p.Integer != nil && i < len(p.Integer) && p.Integer[i] {
					rounded[i] = math.Round(v)
				} else {
					rounded[i] = v
				}
			}
			best = &Solution{X: rounded, Objective: dot(p.Objective, rounded)}
			return nil
		}
		v := sol.X[frac]
		lo := Constraint{Coeffs: map[int]float64{frac: 1}, Sense: LE, RHS: math.Floor(v)}
		hi := Constraint{Coeffs: map[int]float64{frac: 1}, Sense: GE, RHS: math.Ceil(v)}
		if err := solve(append(append([]Constraint(nil), extra...), hi)); err != nil {
			return err
		}
		return solve(append(append([]Constraint(nil), extra...), lo))
	}
	if err := solve(nil); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	return best, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// tableau is the dense simplex tableau. Columns are laid out as
// [structural | slack/surplus | artificial | rhs]; rows one per constraint
// plus the objective row last.
type tableau struct {
	m, n      int // constraints, structural variables
	cols      int // total columns excluding rhs
	nArt      int
	a         [][]float64 // m rows × (cols+1); last column is rhs
	basis     []int       // basis[r] = column basic in row r
	obj       []float64   // phase-2 objective over all columns
	artStart  int
	structObj []float64
}

func newTableau(p *Problem) (*tableau, error) {
	if len(p.Objective) != p.NumVars {
		return nil, fmt.Errorf("ilp: objective length %d != NumVars %d", len(p.Objective), p.NumVars)
	}
	m := len(p.Constraints)
	n := p.NumVars

	// Count slack and artificial columns.
	nSlack := 0
	for _, c := range p.Constraints {
		if c.Sense != EQ {
			nSlack++
		}
	}
	t := &tableau{m: m, n: n}
	t.artStart = n + nSlack
	t.cols = n + nSlack // artificials appended lazily below
	rows := make([][]float64, m)

	slackIdx := 0
	type rowInfo struct {
		needsArt bool
	}
	info := make([]rowInfo, m)
	for r, c := range p.Constraints {
		row := make([]float64, n+nSlack+1)
		for v, coef := range c.Coeffs {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("ilp: constraint %q references variable %d outside [0,%d)", c.Name, v, n)
			}
			row[v] += coef
		}
		row[n+nSlack] = c.RHS
		sense := c.Sense
		// Normalize to non-negative rhs.
		if row[n+nSlack] < 0 {
			for i := range row {
				row[i] = -row[i]
			}
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			row[n+slackIdx] = 1
			slackIdx++
		case GE:
			row[n+slackIdx] = -1
			slackIdx++
			info[r].needsArt = true
		case EQ:
			info[r].needsArt = true
		}
		rows[r] = row
	}

	// A LE row with non-negative rhs starts basic in its slack; others get
	// artificial variables.
	nArt := 0
	for r := range info {
		if info[r].needsArt {
			nArt++
		}
	}
	t.nArt = nArt
	t.cols = n + nSlack + nArt
	t.a = make([][]float64, m)
	t.basis = make([]int, m)
	artIdx := 0
	for r, row := range rows {
		full := make([]float64, t.cols+1)
		copy(full, row[:n+nSlack])
		full[t.cols] = row[n+nSlack]
		if info[r].needsArt {
			full[t.artStart+artIdx] = 1
			t.basis[r] = t.artStart + artIdx
			artIdx++
		} else {
			// The slack of this row is its basic variable: find it.
			b := -1
			for j := n; j < n+nSlack; j++ {
				if full[j] == 1 {
					isBasicElsewhere := false
					for r2 := 0; r2 < r; r2++ {
						if t.basis[r2] == j {
							isBasicElsewhere = true
							break
						}
					}
					if !isBasicElsewhere {
						b = j
						break
					}
				}
			}
			if b == -1 {
				return nil, errors.New("ilp: internal error finding basic slack")
			}
			t.basis[r] = b
		}
		t.a[r] = full
	}

	t.structObj = make([]float64, t.cols)
	copy(t.structObj, p.Objective)
	return t, nil
}

// phase1 drives the artificial variables to zero.
func (t *tableau) phase1() error {
	if t.nArt == 0 {
		return nil
	}
	// Phase-1 objective: minimize sum of artificials == maximize -sum.
	obj := make([]float64, t.cols)
	for j := t.artStart; j < t.artStart+t.nArt; j++ {
		obj[j] = -1
	}
	val, err := t.optimize(obj)
	if err != nil {
		return err
	}
	if val < -eps {
		return ErrInfeasible
	}
	// Pivot any artificial still basic (at zero) out of the basis.
	for r := 0; r < t.m; r++ {
		if t.basis[r] < t.artStart || t.basis[r] >= t.artStart+t.nArt {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[r][j]) > eps {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row; leave the zero artificial basic, it can never
			// grow because its column will be excluded in phase 2.
			_ = pivoted
		}
	}
	return nil
}

func (t *tableau) phase2() error {
	_, err := t.optimize(t.structObj)
	return err
}

// optimize runs primal simplex for the given objective (maximization) and
// returns the optimal objective value.
func (t *tableau) optimize(obj []float64) (float64, error) {
	// reduced[j] = obj[j] - sum over rows of obj[basis[r]] * a[r][j]
	for iter := 0; ; iter++ {
		if iter > 20000+50*(t.m+t.cols) {
			return 0, errors.New("ilp: simplex iteration limit exceeded")
		}
		// Compute reduced costs; choose entering column by Bland's rule.
		enter := -1
		for j := 0; j < t.cols; j++ {
			if t.isArtificial(j) && !t.objUsesArtificials(obj) {
				continue
			}
			rc := obj[j]
			for r := 0; r < t.m; r++ {
				b := t.basis[r]
				if b < len(obj) && obj[b] != 0 {
					rc -= obj[b] * t.a[r][j]
				}
			}
			if rc > eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			// Optimal: compute objective value.
			val := 0.0
			for r := 0; r < t.m; r++ {
				b := t.basis[r]
				if b < len(obj) {
					val += obj[b] * t.a[r][t.cols]
				}
			}
			return val, nil
		}
		// Ratio test; Bland's rule ties broken by smallest basis column.
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < t.m; r++ {
			if t.a[r][enter] > eps {
				ratio := t.a[r][t.cols] / t.a[r][enter]
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave == -1 || t.basis[r] < t.basis[leave])) {
					bestRatio = ratio
					leave = r
				}
			}
		}
		if leave == -1 {
			return 0, ErrUnbounded
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) isArtificial(j int) bool { return j >= t.artStart && j < t.artStart+t.nArt }

func (t *tableau) objUsesArtificials(obj []float64) bool {
	for j := t.artStart; j < t.artStart+t.nArt; j++ {
		if obj[j] != 0 {
			return true
		}
	}
	return false
}

func (t *tableau) pivot(r, c int) {
	pv := t.a[r][c]
	row := t.a[r]
	for j := range row {
		row[j] /= pv
	}
	for r2 := 0; r2 < t.m; r2++ {
		if r2 == r {
			continue
		}
		f := t.a[r2][c]
		if f == 0 {
			continue
		}
		for j := range t.a[r2] {
			t.a[r2][j] -= f * row[j]
		}
	}
	t.basis[r] = c
}

func (t *tableau) extract() []float64 {
	x := make([]float64, t.n)
	for r := 0; r < t.m; r++ {
		if t.basis[r] < t.n {
			x[t.basis[r]] = t.a[r][t.cols]
		}
	}
	for i, v := range x {
		if math.Abs(v) < eps {
			x[i] = 0
		}
	}
	return x
}
