package ilp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-5 }

func TestSimpleLP(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x=4, y=0, obj=12.
	p := NewProblem(2)
	p.Objective = []float64{3, 2}
	p.Le(map[int]float64{0: 1, 1: 1}, 4, "c1")
	p.Le(map[int]float64{0: 1, 1: 3}, 6, "c2")
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 12) {
		t.Fatalf("objective = %v", sol.Objective)
	}
	if !almost(sol.X[0], 4) || !almost(sol.X[1], 0) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestLPWithEquality(t *testing.T) {
	// max x + y s.t. x + y = 3, x <= 2 → obj 3.
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.Eq(map[int]float64{0: 1, 1: 1}, 3, "sum")
	p.Le(map[int]float64{0: 1}, 2, "xcap")
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 3) {
		t.Fatalf("objective = %v", sol.Objective)
	}
}

func TestLPWithGE(t *testing.T) {
	// max -x (i.e. minimize x) s.t. x >= 2.5 → x = 2.5.
	p := NewProblem(1)
	p.Objective = []float64{-1}
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 1}, Sense: GE, RHS: 2.5})
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.X[0], 2.5) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.Le(map[int]float64{0: 1}, 1, "hi")
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 1}, Sense: GE, RHS: 2})
	if _, err := p.SolveLP(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.Objective = []float64{1}
	if _, err := p.SolveLP(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want unbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 with x,y >= 0 means y >= x + 1; max x + y with y <= 5:
	// best x = 4, y = 5.
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.Le(map[int]float64{0: 1, 1: -1}, -1, "neg")
	p.Le(map[int]float64{1: 1}, 5, "ycap")
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 9) {
		t.Fatalf("objective = %v (x=%v)", sol.Objective, sol.X)
	}
}

func TestILPBranching(t *testing.T) {
	// max x + y s.t. 2x + 2y <= 5 → LP gives 2.5, ILP must give 2.
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.Le(map[int]float64{0: 2, 1: 2}, 5, "cap")
	p.Integer = []bool{true, true}
	sol, err := p.SolveILP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 2) {
		t.Fatalf("ILP objective = %v", sol.Objective)
	}
}

func TestILPKnapsack(t *testing.T) {
	// Knapsack: values {6,5,4}, weights {5,4,3}, capacity 7, x_i ∈ {0,1}.
	// Optimum: items 2 and 3 → value 9.
	p := NewProblem(3)
	p.Objective = []float64{6, 5, 4}
	p.Le(map[int]float64{0: 5, 1: 4, 2: 3}, 7, "cap")
	for i := 0; i < 3; i++ {
		p.Le(map[int]float64{i: 1}, 1, "bin")
	}
	p.Integer = []bool{true, true, true}
	sol, err := p.SolveILP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 9) {
		t.Fatalf("knapsack = %v (x=%v)", sol.Objective, sol.X)
	}
}

func TestDegenerateConstraintDoesNotCycle(t *testing.T) {
	// A classic degenerate instance; Bland's rule must terminate.
	p := NewProblem(4)
	p.Objective = []float64{0.75, -150, 0.02, -6}
	p.Le(map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9}, 0, "")
	p.Le(map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3}, 0, "")
	p.Le(map[int]float64{2: 1}, 1, "")
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 0.05) {
		t.Fatalf("objective = %v, want 0.05", sol.Objective)
	}
}

// Property: the LP optimum of max Σx_i over random ≤-constraints is an upper
// bound for any feasible point found by rounding the solution down, and the
// solution satisfies every constraint.
func TestLPSolutionFeasibility(t *testing.T) {
	f := func(seedRows []uint8) bool {
		nv := 3
		p := NewProblem(nv)
		for i := 0; i < nv; i++ {
			p.Objective[i] = 1
		}
		// Bounded box so the LP is never unbounded.
		for i := 0; i < nv; i++ {
			p.Le(map[int]float64{i: 1}, 10, "box")
		}
		for r, b := range seedRows {
			if r >= 4 {
				break
			}
			co := map[int]float64{}
			for i := 0; i < nv; i++ {
				co[i] = float64((int(b)>>uint(i))&3) / 2
			}
			p.Le(co, float64(3+int(b)%7), "rand")
		}
		sol, err := p.SolveLP()
		if err != nil {
			return false
		}
		for _, c := range p.Constraints {
			lhs := 0.0
			for v, coef := range c.Coeffs {
				lhs += coef * sol.X[v]
			}
			if c.Sense == LE && lhs > c.RHS+1e-6 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ILP optimum ≤ LP optimum, and ILP solutions are integral.
func TestILPBoundedByLP(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p := NewProblem(2)
		p.Objective = []float64{float64(a%5 + 1), float64(b%5 + 1)}
		p.Le(map[int]float64{0: 2, 1: 3}, float64(c%20+1), "cap")
		p.Le(map[int]float64{0: 1}, 8, "box0")
		p.Le(map[int]float64{1: 1}, 8, "box1")
		lp, err := p.SolveLP()
		if err != nil {
			return false
		}
		p.Integer = []bool{true, true}
		ilpSol, err := p.SolveILP()
		if err != nil {
			return false
		}
		if ilpSol.Objective > lp.Objective+1e-6 {
			return false
		}
		for _, x := range ilpSol.X {
			if math.Abs(x-math.Round(x)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualityOnlySystem(t *testing.T) {
	// x + y = 4, x - y = 2 → x=3, y=1 (unique feasible point).
	p := NewProblem(2)
	p.Objective = []float64{1, 0}
	p.Eq(map[int]float64{0: 1, 1: 1}, 4, "sum")
	p.Eq(map[int]float64{0: 1, 1: -1}, 2, "diff")
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.X[0], 3) || !almost(sol.X[1], 1) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestZeroObjective(t *testing.T) {
	p := NewProblem(1)
	p.Le(map[int]float64{0: 1}, 5, "cap")
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 0) {
		t.Fatalf("objective = %v", sol.Objective)
	}
}

func TestConstraintVariableOutOfRange(t *testing.T) {
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.Le(map[int]float64{3: 1}, 5, "oops")
	if _, err := p.SolveLP(); err == nil {
		t.Fatal("out-of-range variable must be rejected")
	}
}
