package journal

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ucp/internal/faults"
)

func mustBegin(t *testing.T, l *Journal, id string, total int) *Writer {
	t.Helper()
	w, err := l.Begin(context.Background(), id, time.Now().UTC(), total, json.RawMessage(`{"programs":["fibcall"]}`))
	if err != nil {
		t.Fatalf("Begin(%s): %v", id, err)
	}
	return w
}

func replayOne(t *testing.T, l *Journal) Job {
	t.Helper()
	jobs, err := l.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(jobs) != 1 {
		t.Fatalf("Replay returned %d jobs, want 1", len(jobs))
	}
	return jobs[0]
}

func TestJournalRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w := mustBegin(t, l, "job-000001", 3)
	if err := w.Cell(ctx, 0, false, 1500*time.Millisecond, json.RawMessage(`{"program":"fibcall","wcet_orig":42}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Cell(ctx, 2, true, 0, json.RawMessage(`{"program":"fac"}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.CellFailed(ctx, 1, "boom"); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(ctx, "done", ""); err != nil {
		t.Fatal(err)
	}

	j := replayOne(t, l)
	if j.ID != "job-000001" || j.Total != 3 || j.State != "done" {
		t.Fatalf("bad replay: %+v", j)
	}
	if len(j.Cells) != 2 || j.Cells[0].Cached || !j.Cells[2].Cached {
		t.Fatalf("bad cells: %+v", j.Cells)
	}
	if j.Cells[0].DurMS != 1500 || j.Cells[2].DurMS != 0 {
		t.Fatalf("durations lost in replay: %+v", j.Cells)
	}
	if !strings.Contains(string(j.Cells[0].Result), `"wcet_orig":42`) {
		t.Fatalf("cell 0 result lost: %s", j.Cells[0].Result)
	}
	if j.Failures[1] != "boom" {
		t.Fatalf("bad failures: %+v", j.Failures)
	}
	if j.Resumed || j.Skipped != 0 {
		t.Fatalf("unexpected resumed=%v skipped=%d", j.Resumed, j.Skipped)
	}
	if j.Finished.IsZero() {
		t.Fatal("finish time not replayed")
	}
}

// TestJournalTornTailTolerated is the crash signature: the process died
// mid-append, leaving a partial final line. Replay must keep everything
// before it and report the job as unfinished (the resume signal).
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w := mustBegin(t, l, "job-000001", 4)
	if err := w.Cell(ctx, 0, false, 0, json.RawMessage(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Cell(ctx, 1, false, 0, json.RawMessage(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "job-000001.ndjson"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"cell","index":2,"resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j := replayOne(t, l)
	if len(j.Cells) != 2 || j.State != "" {
		t.Fatalf("want 2 cells and unfinished state, got %d cells state %q", len(j.Cells), j.State)
	}
	if j.Skipped != 1 {
		t.Fatalf("torn tail should count as 1 skipped line, got %d", j.Skipped)
	}
}

// TestJournalCorruptMidFileSkipsLine: corruption in the middle must not
// shadow the valid records after it.
func TestJournalCorruptMidFileSkipsLine(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w := mustBegin(t, l, "job-000001", 2)
	if err := w.Cell(ctx, 0, false, 0, json.RawMessage(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	path := filepath.Join(dir, "job-000001.ndjson")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, []byte("NOT JSON AT ALL\n")...)
	b = append(b, []byte(`{"type":"cell","index":1,"result":{"a":2}}`+"\n")...)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	j := replayOne(t, l)
	if len(j.Cells) != 2 {
		t.Fatalf("want both cells despite mid-file garbage, got %+v", j.Cells)
	}
	if j.Skipped != 1 {
		t.Fatalf("want 1 skipped line, got %d", j.Skipped)
	}
}

// TestJournalSeqSurvivesPrune: the high-water mark must outlive the
// journal files themselves — the service's expired-404 contract needs IDs
// retired forever even after pruning.
func TestJournalSeqSurvivesPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := mustBegin(t, l, "job-000007", 1)
	w.Finish(context.Background(), "done", "")
	if got := l.Seq(); got != 7 {
		t.Fatalf("Seq after Begin = %d, want 7", got)
	}
	if err := l.Remove("job-000007"); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Seq(); got != 7 {
		t.Fatalf("Seq after Remove+reopen = %d, want 7 (SEQ file must persist)", got)
	}
	jobs, err := l2.Replay()
	if err != nil || len(jobs) != 0 {
		t.Fatalf("removed job still replays: %v %v", jobs, err)
	}
}

// TestJournalSeqFromFilenameOnly: a crash between file creation and SEQ
// persistence leaves the filename as the only witness of the allocation.
func TestJournalSeqFromFilenameOnly(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000042.ndjson"),
		[]byte(`{"type":"submit","v":1,"id":"job-000042","total":1,"sweep":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, seqFile))
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Seq(); got != 42 {
		t.Fatalf("Seq from filename = %d, want 42", got)
	}
}

func TestJournalResumeMarker(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w := mustBegin(t, l, "job-000001", 3)
	if err := w.Cell(ctx, 0, false, 0, json.RawMessage(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	w.Close() // crash: no terminal record

	w2, err := l.Resume(ctx, "job-000001")
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := w2.Cell(ctx, 1, false, 0, json.RawMessage(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Cell(ctx, 2, false, 0, json.RawMessage(`{"a":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Finish(ctx, "done", ""); err != nil {
		t.Fatal(err)
	}

	j := replayOne(t, l)
	if !j.Resumed {
		t.Fatal("resume marker lost")
	}
	if len(j.Cells) != 3 || j.State != "done" {
		t.Fatalf("bad resumed replay: %+v", j)
	}
}

// TestJournalForeignFilesIgnored: the SEQ file, editor droppings, and
// non-job names must never confuse replay.
func TestJournalForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]string{
		"notes.txt":          "hello",
		"evil.ndjson":        `{"type":"submit","id":"evil","total":1}` + "\n",
		"job-garbage.ndjson": "not a journal\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	w := mustBegin(t, l, "job-000001", 1)
	w.Finish(context.Background(), "done", "")
	j := replayOne(t, l)
	if j.ID != "job-000001" {
		t.Fatalf("replayed wrong job: %+v", j)
	}
}

func TestJournalInvalidIDRejected(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "job-", "job-0", "../../etc/passwd", "job-1x", "other-1"} {
		if id == "job-0" {
			continue // numeric but < 1, checked below
		}
		if _, err := l.Begin(context.Background(), id, time.Now(), 1, nil); err == nil {
			t.Errorf("Begin(%q) accepted", id)
		}
	}
	if _, err := l.Begin(context.Background(), "job-0", time.Now(), 1, nil); err == nil {
		t.Error(`Begin("job-0") accepted`)
	}
}

// TestJournalAppendFaultSite: the journal.append hook must surface as an
// append error (which the service treats as a durability downgrade, not a
// job failure).
func TestJournalAppendFaultSite(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w := mustBegin(t, l, "job-000001", 2)
	if err := faults.Arm("journal.append:*=err"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)
	if err := w.Cell(ctx, 0, false, 0, json.RawMessage(`{"a":1}`)); err == nil {
		t.Fatal("armed journal.append fault did not fire")
	}
	faults.Disarm()
	if err := w.Cell(ctx, 0, false, 0, json.RawMessage(`{"a":1}`)); err != nil {
		t.Fatalf("append after disarm: %v", err)
	}
	if err := w.Finish(ctx, "done", ""); err != nil {
		t.Fatal(err)
	}
	if j := replayOne(t, l); len(j.Cells) != 1 {
		t.Fatalf("want 1 cell, got %+v", j.Cells)
	}
}
