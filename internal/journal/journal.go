// Package journal is the durable-job layer: an append-only, per-job NDJSON
// journal that records a sweep job's lifecycle — submit → per-cell
// done/failed → terminal state — so a ucp-serve restart can resume queued
// and running jobs exactly where they left off instead of silently losing
// them with the in-memory job store.
//
// Durability follows internal/store's discipline: every append is a single
// write followed by fsync, the sequence high-water mark is persisted via
// atomic temp+rename, and replay is corruption-tolerant — a torn final
// line (the signature of a crash mid-append) or an unparsable line is
// skipped, never fatal, because losing one cell record only costs one
// re-executed cell.
//
// One file per job (<id>.ndjson) keeps appends contention-free across jobs
// and makes removal (job pruning) a single unlink. The submit record
// embeds the original sweep request as opaque JSON and each cell record
// embeds the cell's full result payload, so replay can answer completed
// cells with zero pipeline runs even without a result store.
package journal

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ucp/internal/faults"
)

// version tags the submit record so a future format change can replay old
// journals knowingly.
const version = 1

// record is the NDJSON wire form, a union over the record types:
//
//	submit   opens a job: id, creation time, total cells, the sweep request
//	cell     one completed cell: index, cache provenance, result payload
//	cellfail one failed cell: index and the sanitized error
//	resume   a restart picked the job back up (informational marker)
//	finish   terminal state ("done" or "failed") and, if failed, why
type record struct {
	Type string `json:"type"`

	// submit fields.
	V       int             `json:"v,omitempty"`
	ID      string          `json:"id,omitempty"`
	Created time.Time       `json:"created,omitzero"`
	Total   int             `json:"total,omitempty"`
	Sweep   json.RawMessage `json:"sweep,omitempty"`

	// cell / cellfail fields.
	Index  int             `json:"index,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	DurMS  int64           `json:"dur_ms,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`

	// finish fields.
	State    string    `json:"state,omitempty"`
	Finished time.Time `json:"finished,omitzero"`
}

// Cell is one replayed completed cell.
type Cell struct {
	Cached bool
	// DurMS is the cell's wall-clock analysis duration in milliseconds
	// (0 for records written before the field existed, or cache hits fast
	// enough to round down). Resume seeds its ETA estimate from it.
	DurMS  int64
	Result json.RawMessage
}

// Job is one job reconstructed by Replay.
type Job struct {
	ID      string
	Created time.Time
	Total   int
	// Sweep is the original submit payload, opaque to this package; the
	// service re-resolves it into use cases on resume.
	Sweep json.RawMessage
	// Cells maps cell index → completed cell. Failures maps cell index →
	// error message; a non-terminal job's failed cells are re-executed on
	// resume, so Failures matters only for terminal replay.
	Cells    map[int]Cell
	Failures map[int]string
	// Resumed reports that the journal carries at least one resume marker —
	// some earlier process already picked this job back up once.
	Resumed bool
	// State is "" while the job is unfinished (crash mid-sweep — the resume
	// case), "done" or "failed" otherwise.
	State    string
	Error    string
	Finished time.Time
	// Skipped counts journal lines dropped as unparsable (torn tail after a
	// crash, corruption); the job is still usable, minus those records.
	Skipped int
}

// Journal manages one directory of per-job NDJSON files plus the persisted
// job-sequence high-water mark.
type Journal struct {
	dir string

	mu  sync.Mutex
	seq int
}

// seqFile persists the highest job sequence number ever allocated, so job
// IDs stay monotonic across restarts even after every journal file has
// been pruned — the service's "expired" 404 contract depends on IDs never
// being reused.
const seqFile = "SEQ"

// Open creates dir if needed and loads the sequence high-water mark from
// the SEQ file and any resident journal filenames (whichever is higher —
// a crash between file creation and SEQ persistence leaves the filename
// as the only witness).
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	l := &Journal{dir: dir}
	if b, err := os.ReadFile(filepath.Join(dir, seqFile)); err == nil {
		if n, err := strconv.Atoi(strings.TrimSpace(string(b))); err == nil && n > l.seq {
			l.seq = n
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		if n, ok := seqOf(strings.TrimSuffix(e.Name(), ".ndjson")); ok && n > l.seq {
			l.seq = n
		}
	}
	return l, nil
}

// Dir returns the journal directory.
func (l *Journal) Dir() string { return l.dir }

// Seq returns the persisted sequence high-water mark: the highest numeric
// job-ID suffix this directory has ever seen.
func (l *Journal) Seq() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// seqOf extracts the numeric suffix of a "job-%06d" ID.
func seqOf(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// validID guards file paths built from job IDs (same idea as the store's
// hex-key guard): only "job-<number>" names ever touch the filesystem.
func validID(id string) bool {
	_, ok := seqOf(id)
	return ok
}

// reserve persists max(seq, n) so the ID can never be handed out again,
// even after its journal file is pruned. Atomic temp+rename, like the
// store's writes; fsynced so a crash right after cannot roll it back.
// Caller holds l.mu.
func (l *Journal) reserve(n int) error {
	if n <= l.seq {
		return nil
	}
	l.seq = n
	f, err := os.CreateTemp(l.dir, "seq-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := fmt.Fprintf(f, "%d\n", n)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return os.Rename(tmp, filepath.Join(l.dir, seqFile))
}

// path returns the journal file of one job.
func (l *Journal) path(id string) string {
	return filepath.Join(l.dir, id+".ndjson")
}

// Begin opens a fresh journal for a newly admitted job and writes its
// submit record. The job's numeric suffix becomes the new sequence
// high-water mark. sweep is the original request, stored opaquely.
func (l *Journal) Begin(ctx context.Context, id string, created time.Time, total int, sweep json.RawMessage) (*Writer, error) {
	if !validID(id) {
		return nil, fmt.Errorf("journal: invalid job id %q", id)
	}
	l.mu.Lock()
	n, _ := seqOf(id)
	err := l.reserve(n)
	l.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("journal: reserve seq: %w", err)
	}
	f, err := os.OpenFile(l.path(id), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f, id: id}
	if err := w.append(ctx, record{
		Type: "submit", V: version, ID: id, Created: created, Total: total, Sweep: sweep,
	}); err != nil {
		f.Close()
		os.Remove(l.path(id))
		return nil, err
	}
	return w, nil
}

// Resume reopens an unfinished job's journal for appending and writes a
// resume marker, so later replays (and operators reading the file) can see
// the job survived a restart.
func (l *Journal) Resume(ctx context.Context, id string) (*Writer, error) {
	if !validID(id) {
		return nil, fmt.Errorf("journal: invalid job id %q", id)
	}
	f, err := os.OpenFile(l.path(id), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f, id: id}
	if err := w.append(ctx, record{Type: "resume", ID: id}); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Remove unlinks a job's journal file (called when the job store prunes
// the job). The sequence mark survives, keeping the ID retired forever.
func (l *Journal) Remove(id string) error {
	if !validID(id) {
		return fmt.Errorf("journal: invalid job id %q", id)
	}
	err := os.Remove(l.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Replay scans every journal file in the directory and reconstructs its
// job, sorted by ID (creation order for sequential IDs). Files without a
// valid submit record — foreign files, total corruption — are skipped
// rather than fatal; within a file, unparsable lines (a torn tail from a
// crash mid-append) are counted in Job.Skipped and ignored.
func (l *Journal) Replay() ([]Job, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var jobs []Job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ndjson") {
			continue
		}
		id := strings.TrimSuffix(e.Name(), ".ndjson")
		if !validID(id) {
			continue
		}
		j, ok := l.replayFile(filepath.Join(l.dir, e.Name()), id)
		if ok {
			jobs = append(jobs, j)
		}
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs, nil
}

// maxLine bounds one journal line during replay; a cell record embeds one
// Result (well under a kilobyte), so 4 MiB is generous headroom.
const maxLine = 4 << 20

// replayFile reconstructs one job; ok is false when the file never yields
// a valid submit record.
func (l *Journal) replayFile(path, id string) (Job, bool) {
	f, err := os.Open(path)
	if err != nil {
		return Job{}, false
	}
	defer f.Close()

	j := Job{ID: id, Cells: map[int]Cell{}, Failures: map[int]string{}}
	submitted := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			j.Skipped++
			continue
		}
		switch r.Type {
		case "submit":
			if r.ID != id || r.Total <= 0 {
				j.Skipped++
				continue
			}
			j.Created = r.Created
			j.Total = r.Total
			j.Sweep = append(json.RawMessage(nil), r.Sweep...)
			submitted = true
		case "cell":
			if !submitted || r.Index < 0 || r.Index >= j.Total || len(r.Result) == 0 {
				j.Skipped++
				continue
			}
			j.Cells[r.Index] = Cell{Cached: r.Cached, DurMS: r.DurMS, Result: append(json.RawMessage(nil), r.Result...)}
			delete(j.Failures, r.Index)
		case "cellfail":
			if !submitted || r.Index < 0 || r.Index >= j.Total {
				j.Skipped++
				continue
			}
			j.Failures[r.Index] = r.Error
		case "resume":
			j.Resumed = true
		case "finish":
			if !submitted || (r.State != "done" && r.State != "failed") {
				j.Skipped++
				continue
			}
			j.State = r.State
			j.Error = r.Error
			j.Finished = r.Finished
		default:
			j.Skipped++
		}
	}
	// A scanner error (over-long line) truncates the replay at that point;
	// everything before it is still good, which is exactly the torn-tail
	// contract.
	if !submitted {
		return Job{}, false
	}
	return j, true
}

// Writer appends records to one job's journal. Appends are serialized by
// an internal mutex (sweep cells complete concurrently) and each one is
// fsynced before returning, so an acknowledged record survives a crash.
type Writer struct {
	mu sync.Mutex
	f  *os.File
	id string
}

// append marshals and durably writes one record. The faults site
// "journal.append" (key = job ID) injects append failures for robustness
// tests; callers treat journal errors as a durability downgrade, never as
// a reason to fail the job itself.
func (w *Writer) append(ctx context.Context, r record) error {
	if err := faults.Fire(ctx, "journal.append", w.id); err != nil {
		return err
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: writer for %s is closed", w.id)
	}
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Cell records one completed cell: its index in the deterministic sweep
// order, whether it was served from a cache, how long its analysis took,
// and its full result payload. The duration is informational — resume uses
// it to seed the remaining-cells ETA — so a zero is always acceptable.
func (w *Writer) Cell(ctx context.Context, index int, cached bool, dur time.Duration, result json.RawMessage) error {
	return w.append(ctx, record{Type: "cell", Index: index, Cached: cached, DurMS: dur.Milliseconds(), Result: result})
}

// CellFailed records one cell whose analysis errored (the job continues;
// on resume the cell is retried).
func (w *Writer) CellFailed(ctx context.Context, index int, msg string) error {
	return w.append(ctx, record{Type: "cellfail", Index: index, Error: msg})
}

// Finish writes the terminal record and closes the file. Interrupted jobs
// (drain, timeout, crash) deliberately never get one — an unfinished
// journal is the resume signal.
func (w *Writer) Finish(ctx context.Context, state, errMsg string) error {
	err := w.append(ctx, record{Type: "finish", State: state, Error: errMsg, Finished: time.Now().UTC()})
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close releases the file handle without writing a terminal record.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
