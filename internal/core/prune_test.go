package core

import (
	"context"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/sim"
	"ucp/internal/vivu"
	"ucp/internal/wcet"
)

// TestPruneRemovesHandInsertedParasite plants an obviously useless prefetch
// (its target is resident whenever it runs) and checks the cleanup pass
// deletes it without touching anything useful.
func TestPruneRemovesHandInsertedParasite(t *testing.T) {
	p := isa.Build("parasite", isa.Loop(20, 16, isa.Code(90)))
	cfg := thrashCfg()

	// Optimize normally first: the output must not contain prefetches whose
	// removal would be free.
	q, rep, err := Optimize(context.Background(), p, cfg, Options{Par: testPar})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted == 0 {
		t.Skip("no insertions to check")
	}
	before, err := wcet.Analyze(context.Background(), q, cfg, testPar)
	if err != nil {
		t.Fatal(err)
	}
	// Remove each remaining prefetch by hand: every removal must hurt
	// (otherwise the pruner left a parasite behind).
	for bi, b := range q.Blocks {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			if b.Instrs[i].Kind != isa.KindPrefetch {
				continue
			}
			trial := q.Clone()
			trial.RemoveInstr(isa.InstrRef{Block: bi, Index: i})
			after, err := wcet.Analyze(context.Background(), trial, cfg, testPar)
			if err != nil {
				t.Fatal(err)
			}
			if after.TauW <= before.TauW && after.Misses <= before.Misses {
				t.Fatalf("prefetch at block %d index %d is a parasite the pruner missed", bi, i)
			}
		}
	}
}

// TestPlacementHoistsOutOfLoop checks the downstream-sliding placement: a
// prefetch whose target is only used after a loop must not execute once per
// iteration.
func TestPlacementHoistsOutOfLoop(t *testing.T) {
	// A hot loop followed by a tail that conflicts with loop-resident
	// blocks: the tail's blocks get evicted during the loop and their use
	// is after it.
	p := isa.Build("hoist",
		isa.Code(8),
		isa.Loop(40, 36, isa.Code(70)),
		isa.Code(60), // tail, overlapping the loop's sets
	)
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	q, rep, err := Optimize(context.Background(), p, cfg, Options{Par: testPar})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted == 0 {
		t.Skip("nothing inserted in this scenario")
	}
	// Count dynamic prefetch executions: with hoisting they must be far
	// fewer than (insertions × loop bound).
	s := sim.Run(q, cfg, sim.Options{Par: testPar, Runs: 1, Seed: 1})
	perIteration := int64(rep.Inserted) * 36
	if s.PrefetchExecuted >= perIteration {
		t.Fatalf("prefetches executed %d times — placement did not hoist (bound was %d)",
			s.PrefetchExecuted, perIteration)
	}
}

func TestDisableEffectivenessFindsMoreCandidates(t *testing.T) {
	p := thrasher()
	strict, err1 := count(p, Options{Par: testPar})
	loose, err2 := count(p, Options{Par: testPar, DisableEffectiveness: true})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if loose.RejectedIneffective != 0 {
		t.Fatal("ablation must disable the effectiveness rejection")
	}
	if strict.RejectedIneffective > 0 && loose.Candidates < strict.Candidates {
		t.Fatal("disabling a filter cannot shrink the candidate stream")
	}
}

func count(p *isa.Program, o Options) (*Report, error) {
	_, rep, err := Optimize(context.Background(), p, thrashCfg(), o)
	return rep, err
}

// TestBackwardWindowMatchesAssociativity checks the detection semantics
// directly: with associativity A, a straight-line program whose per-set
// reuse distance exceeds A yields candidates, and one within A does not.
func TestBackwardWindowMatchesAssociativity(t *testing.T) {
	par := testPar
	// 2-way cache with 2 sets (64B): a straight line through 6 blocks puts
	// 3 blocks in each set — one over the ways.
	p := isa.Build("bw", isa.Code(22))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64}
	_, rep, err := Optimize(context.Background(), p, cfg, Options{Par: par})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates == 0 {
		t.Fatal("3 blocks per 2-way set must overflow the backward window")
	}

	// Same program, 4-way 1-set cache of the same capacity: 6 blocks still
	// overflow; but a tiny program that fits (2 blocks per set) must not.
	small := isa.Build("bw2", isa.Code(10)) // 12 instrs = 3 blocks over 2 sets
	_, rep2, err := Optimize(context.Background(), small, cfg, Options{Par: par})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Candidates != 0 {
		t.Fatalf("a fitting program produced %d candidates", rep2.Candidates)
	}
}

// TestOptimizeAcrossTable2 smoke-tests the optimizer against every cache
// configuration of the paper on one mid-size program.
func TestOptimizeAcrossTable2(t *testing.T) {
	p := isa.Build("sweep",
		isa.Code(30),
		isa.Loop(12, 10, isa.Code(120), isa.IfThen(0.8, isa.Code(40))),
		isa.Code(25),
	)
	for i, cfg := range cache.Table2() {
		q, rep, err := Optimize(context.Background(), p, cfg, Options{Par: testPar, ValidationBudget: 30})
		if err != nil {
			t.Fatalf("k%d: %v", i+1, err)
		}
		if rep.TauAfter > rep.TauBefore {
			t.Fatalf("k%d: Theorem 1 violated", i+1)
		}
		if !isa.PrefetchEquivalent(p, q) {
			t.Fatalf("k%d: equivalence broken", i+1)
		}
	}
}

// TestExpansionReusedAcrossInsertions pins the structural assumption the
// optimizer relies on: insertions never change the expanded graph shape.
func TestExpansionReusedAcrossInsertions(t *testing.T) {
	p := thrasher()
	x1, err := vivu.Expand(p)
	if err != nil {
		t.Fatal(err)
	}
	q, rep, err := Optimize(context.Background(), p, thrashCfg(), Options{Par: testPar})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted == 0 {
		t.Skip("no insertions")
	}
	x2, err := vivu.Expand(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(x1.Blocks) != len(x2.Blocks) {
		t.Fatal("insertion changed the expanded block set")
	}
	for i := range x1.Blocks {
		if x1.Blocks[i].Orig != x2.Blocks[i].Orig || x1.Blocks[i].Ctx != x2.Blocks[i].Ctx {
			t.Fatal("insertion permuted the expansion")
		}
	}
}
