package core

import (
	"context"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/malardalen"
	"ucp/internal/wcet"
)

// TestDifferentialRefreshMatchesFull runs the real optimizer — batched
// commits, bisection on rejection, rollback, pruning — and cross-checks
// every incremental refresh against a from-scratch analysis of the same
// program state. This exercises the incremental path under exactly the
// mutation patterns production sees (batch insert, partial rollback via
// snapshot restore, prefetch removal during pruning).
func TestDifferentialRefreshMatchesFull(t *testing.T) {
	par := wcet.Params{HitCycles: 1, MissPenalty: 10, Lambda: 10}
	configs := cache.Table2()
	checks := 0
	testRefreshCheck = func(inc *wcet.Result) {
		checks++
		full, err := wcet.AnalyzeX(context.Background(), inc.X, inc.Cfg, inc.Par)
		if err != nil {
			t.Fatal(err)
		}
		if inc.TauW != full.TauW || inc.Misses != full.Misses || inc.Fetches != full.Fetches {
			t.Fatalf("refresh diverges: τ_w %d/%d misses %d/%d fetches %d/%d",
				inc.TauW, full.TauW, inc.Misses, full.Misses, inc.Fetches, full.Fetches)
		}
		for id := range full.Nw {
			if inc.Nw[id] != full.Nw[id] || inc.Cost[id] != full.Cost[id] || inc.Extra[id] != full.Extra[id] {
				t.Fatalf("refresh diverges at block %d (Nw/Cost/Extra)", id)
			}
			for i := range full.AI.Class[id] {
				if inc.AI.Class[id][i] != full.AI.Class[id][i] {
					t.Fatalf("refresh classification diverges at block %d ref %d", id, i)
				}
			}
		}
	}
	defer func() { testRefreshCheck = nil }()

	for _, tc := range []struct {
		prog string
		cfg  int
	}{
		{"crc", 0},
		{"fdct", 4},
		{"statemate", 26},
	} {
		bm, ok := malardalen.ByName(tc.prog)
		if !ok {
			t.Fatalf("unknown program %s", tc.prog)
		}
		_, rep, err := Optimize(context.Background(), bm.Prog, configs[tc.cfg], Options{Par: par, ValidationBudget: 30})
		if err != nil {
			t.Fatalf("%s: %v", tc.prog, err)
		}
		if rep.Validations == 0 {
			t.Fatalf("%s: optimizer performed no validations; test is vacuous", tc.prog)
		}
	}
	if checks == 0 {
		t.Fatal("refresh hook never fired")
	}
}
