package core

import (
	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/vivu"
)

// This file implements the prefetch-into-L2 candidate phase of hierarchy
// optimizations. The proposal mechanism is the same reverse-execution-order
// walk as the L1 phase (analysis.go), run at L2 block granularity against an
// LRU image of the L2: a replacement event identifies an L2 block that
// cannot survive in the L2 until its next use — a guaranteed future L2 miss
// — and the point right behind the replacing reference is the latest
// insertion point from which a Level-2 prefetch fill still survives there.
//
// The Equation 9 accounting differs from the L1 phase in what the prefetch
// can save: a Level-2 prefetch leaves the L1 untouched, so the targeted
// fetch still pays HitCycles + L2HitCycles — only the MissPenalty term is
// removable. mcost is therefore MissPenalty × n_w(r_j), and the already-hit
// screen passes only when the use currently pays more than an L2 hit.
// Commitment runs through the same validate-or-rollback analysis as the L1
// phase, with the joint L1+L2 miss count as Condition 2.

// backward2 returns the per-block backward L2 states for the current
// analysis result, cached per result pointer like backward().
func (o *optimizer) backward2() []*cache.State {
	if o.bwRes2 != o.res {
		o.bwOut2 = o.backwardOut2()
		o.bwRes2 = o.res
	}
	return o.bwOut2
}

// backwardOut2 mirrors backwardOut at L2 granularity.
func (o *optimizer) backwardOut2() []*cache.State {
	res := o.res
	x := res.X
	n := len(x.Blocks)
	bwIn := make([]*cache.State, n)
	bwOut := make([]*cache.State, n)
	valid := make([]bool, n)
	for id := range bwIn {
		bwIn[id] = cache.NewState(o.bwCfg2)
		bwOut[id] = cache.NewState(o.bwCfg2)
	}
	for round := 0; round < 3; round++ {
		for ti := len(x.Topo) - 1; ti >= 0; ti-- {
			id := x.Topo[ti]
			succ := o.wcetSuccBlock(id)
			if succ == -1 || !valid[succ] {
				bwOut[id].Reset()
			} else {
				bwOut[id].CopyFrom(bwIn[succ])
			}
			bwIn[id].CopyFrom(bwOut[id])
			o.applyBackward2(bwIn[id], id, 0)
			valid[id] = true
		}
	}
	return bwOut
}

// applyBackward2 pushes the references of expanded block id through a
// backward L2 state in reverse order, down to (and excluding) index stop.
// Only prefetches that are effective *at the L2* (Level-2 prefetches whose
// fill latency is hidden; see absint.AnalyzeL2) satisfy the future use of
// their target there — an L1-level prefetch's fill passes through the L2 at
// an unknown time and cannot be relied on.
func (o *optimizer) applyBackward2(st *cache.State, id int, stop int) {
	res := o.res
	xb := res.X.Blocks[id]
	instrs := res.Prog.Blocks[xb.Orig].Instrs
	for i := len(instrs) - 1; i >= stop; i-- {
		if instrs[i].Kind == isa.KindPrefetch && res.AI2 != nil && res.AI2.Effective[id][i] {
			st.Remove(res.Lay.MemBlock(instrs[i].Target, o.h.L2.BlockBytes))
		}
		st.Access(o.memBlock2Of(vivu.Ref{XB: id, Index: i}))
	}
}

// collectL2 runs one reverse sweep at L2 granularity and returns the
// Level-2 prefetch candidates that pass every local check.
func (o *optimizer) collectL2() ([]candidate, error) {
	res := o.res
	order := res.X.Topo
	seen := map[candidateKey]bool{}
	var out []candidate
	bw := o.backward2()
	if o.bwScratch2 == nil {
		o.bwScratch2 = cache.NewState(o.bwCfg2)
	}
	st := o.bwScratch2
	for ti := len(order) - 1; ti >= 0; ti-- {
		if err := o.chk.Check(); err != nil {
			return nil, err
		}
		xbID := order[ti]
		if !res.OnWCETPath(xbID) {
			continue
		}
		xb := res.X.Blocks[xbID]
		instrs := res.Prog.Blocks[xb.Orig].Instrs
		st.CopyFrom(bw[xbID])
		for i := len(instrs) - 1; i >= 0; i-- {
			r := vivu.Ref{XB: xbID, Index: i}
			if instrs[i].Kind == isa.KindPrefetch && res.AI2.Effective[xbID][i] {
				st.Remove(res.Lay.MemBlock(instrs[i].Target, o.h.L2.BlockBytes))
			}
			_, evicted := st.Access(o.memBlock2Of(r))
			if evicted == cache.InvalidBlock {
				continue
			}
			if c, ok := o.screenL2(r, evicted); ok && !seen[c.key] {
				seen[c.key] = true
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// screenL2 applies the joint improvement criterion to one L2 replacement
// event and builds the Level-2 candidate.
func (o *optimizer) screenL2(r vivu.Ref, evicted uint64) (candidate, bool) {
	res := o.res
	o.rep.Candidates++
	origRef := res.X.InstrRef(r)

	key := candidateKey{origRef.Block, origRef.Index, evicted, 2}
	if o.rejected[key] {
		return candidate{}, false
	}
	use, gap, path, found := o.findNextUse(r, evicted, true)
	if !found {
		o.rep.RejectedNoUse++
		if o.dec != nil {
			o.explainReject(key, "no-next-use", Decision{})
		}
		return candidate{}, false
	}
	anchor := o.slidePlacement(path, use)
	at, before, ok := o.insertionPoint(anchor, res.X.InstrRef(anchor))
	if !ok {
		o.rep.RejectedTerminator++
		if o.dec != nil {
			o.explainReject(key, "terminator", Decision{
				Use: res.X.InstrRef(use), MCost: o.l2MCost(use), Gap: gap,
			})
		}
		return candidate{}, false
	}
	useRef := res.X.InstrRef(use)
	if res.Prog.Instr(useRef).Kind == isa.KindPrefetch {
		o.rep.RejectedTargetIsPft++
		if o.dec != nil {
			o.explainReject(key, "target-is-prefetch", Decision{
				At: at, Before: before, Use: useRef,
				PCost: o.explainPCost(at.Block), Gap: gap,
				Effective: gap >= o.opt.Par.Lambda,
			})
		}
		return candidate{}, false
	}
	// Already served by the L2 (or the L1): the fetch pays at most an L2
	// hit per execution, so there is no MissPenalty left to remove.
	if !o.opt.DisableMissCheck && res.RefTime(use) <= o.opt.Par.HitCycles+o.opt.Par.L2HitCycles {
		o.rep.RejectedAlreadyHit++
		if o.dec != nil {
			l1c, l2c := o.classOf(use)
			o.explainReject(key, "already-hit", Decision{
				At: at, Before: before, Use: useRef,
				L1Class: l1c, L2Class: l2c,
				MCost: o.l2MCost(use), PCost: o.explainPCost(at.Block), Gap: gap,
				Effective: gap >= o.opt.Par.Lambda,
			})
		}
		return candidate{}, false
	}
	if !o.opt.DisableEffectiveness && gap < o.opt.Par.Lambda {
		o.rep.RejectedIneffective++
		if o.dec != nil {
			o.explainReject(key, "ineffective", Decision{
				At: at, Before: before, Use: useRef,
				MCost: o.l2MCost(use), PCost: o.explainPCost(at.Block), Gap: gap,
				Profitable: o.l2MCost(use) > o.explainPCost(at.Block),
			})
		}
		return candidate{}, false
	}
	if o.duplicateAt(at, evicted, 2) {
		o.rep.RejectedDuplicate++
		if o.dec != nil {
			o.explainReject(key, "duplicate", Decision{
				At: at, Before: before, Use: useRef,
				MCost: o.l2MCost(use), PCost: o.explainPCost(at.Block), Gap: gap,
				Effective: true,
			})
		}
		return candidate{}, false
	}
	c := candidate{
		at: at, before: before, use: useRef, key: key,
		value: o.l2MCost(use), gap: gap, level: 2,
	}
	if o.dec != nil {
		c.l1c, c.l2c = o.classOf(use)
	}
	return c, true
}

// l2MCost is the removable τ_w contribution of an L2 miss at the use: the
// MissPenalty term per WCET-scenario execution. The HitCycles + L2HitCycles
// part of the fetch stays whatever the Level-2 prefetch achieves.
func (o *optimizer) l2MCost(use vivu.Ref) int64 {
	return o.opt.Par.MissPenalty * o.res.RefCount(use)
}
