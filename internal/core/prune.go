package core

import (
	"sort"

	"ucp/internal/isa"
)

// The batched commit criterion accepts a set of prefetches when the set as
// a whole removes WCET-scenario misses. Individual members can still be
// parasites: their own target keeps missing (another member or a layout
// shift did the real work), so they contribute nothing but fetch cycles and
// a DRAM transfer per execution — pure dynamic-energy waste (they are the
// reason Condition 2 talks about the miss *rate*, not just the WCET).
//
// pruneUseless mirrors the insertion machinery: it tries to *remove*
// prefetches, keeping a removal only when τ_w does not grow and no
// WCET-scenario miss reappears. Removing a useful prefetch re-introduces
// its miss and is rolled back; removing a parasite is accepted and even
// shaves its fetch time off τ_w.
func (o *optimizer) pruneUseless() error {
	for {
		if err := o.chk.Check(); err != nil {
			return err
		}
		refs := o.collectPrefetches()
		if len(refs) == 0 {
			return nil
		}
		n, err := o.pruneBisect(refs)
		if err != nil {
			return err
		}
		o.rep.Pruned += n
		if n == 0 || o.rep.Validations >= o.budget {
			return nil
		}
	}
}

// collectPrefetches lists every prefetch instruction, descending program
// position so earlier removals do not shift later coordinates.
func (o *optimizer) collectPrefetches() []isa.InstrRef {
	var out []isa.InstrRef
	for _, b := range o.res.Prog.Blocks {
		for i, in := range b.Instrs {
			if in.Kind == isa.KindPrefetch {
				out = append(out, isa.InstrRef{Block: b.ID, Index: i})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Block != out[j].Block {
			return out[i].Block > out[j].Block
		}
		return out[i].Index > out[j].Index
	})
	return out
}

func (o *optimizer) pruneBisect(refs []isa.InstrRef) (int, error) {
	if len(refs) == 0 || o.rep.Validations >= o.budget {
		return 0, nil
	}
	ok, err := o.tryRemoveSubset(refs)
	if err != nil {
		return 0, err
	}
	if ok {
		return len(refs), nil
	}
	if len(refs) == 1 {
		return 0, nil
	}
	mid := len(refs) / 2
	// The halves keep valid coordinates: refs are sorted descending and
	// removals only shift strictly larger indices of the same block.
	n1, err := o.pruneBisect(refs[:mid])
	if err != nil {
		return n1, err
	}
	n2, err := o.pruneBisect(refs[mid:])
	return n1 + n2, err
}

// removal records one accepted prefetch deletion: n instructions (the
// prefetch plus its trailing pads) taken out at ref.
type removal struct {
	ref isa.InstrRef
	n   int
}

// tryRemoveSubset deletes the prefetches (and their trailing pads, when the
// PadToBlock ablation added them), re-analyzes, and keeps the removal only
// when τ_w does not grow and the WCET-scenario miss count does not grow.
func (o *optimizer) tryRemoveSubset(refs []isa.InstrRef) (bool, error) {
	prog := o.res.Prog
	snapshot := make([][]isa.Instr, len(prog.Blocks))
	for i, b := range prog.Blocks {
		snapshot[i] = append([]isa.Instr(nil), b.Instrs...)
	}
	removed := make([]removal, 0, len(refs))
	for _, ref := range refs {
		// Remove trailing pads first so the prefetch's index stays valid.
		b := prog.Blocks[ref.Block]
		n := 1
		for ref.Index+1 < len(b.Instrs) && b.Instrs[ref.Index+1].Kind == isa.KindPad {
			prog.RemoveInstr(isa.InstrRef{Block: ref.Block, Index: ref.Index + 1})
			n++
		}
		prog.RemoveInstr(ref)
		removed = append(removed, removal{ref: ref, n: n})
	}
	prevRes := o.res
	if err := o.refresh(); err != nil {
		return false, err
	}
	// Joint miss count across the hierarchy, like trySubset's Condition 2:
	// removing a parasite must not let a miss reappear at either level.
	if o.res.TauW <= prevRes.TauW && o.res.Misses+o.res.L2Misses <= prevRes.Misses+prevRes.L2Misses {
		o.trackRemovals(removed)
		return true, nil
	}
	for i, b := range prog.Blocks {
		b.Instrs = snapshot[i]
	}
	o.res = prevRes // also revives the backward cache (keyed on the pointer)
	return false, nil
}
