// Package core implements the paper's contribution: a code optimization
// that inserts software prefetch instructions into a program so that the
// instruction-cache miss rate drops while the memory contribution to the
// WCET provably does not increase (Theorem 1).
//
// The algorithm follows Section 4 and Supplement S.1 of the paper:
//
//   - a preliminary WCET analysis (internal/wcet) provides t_w, n_w and the
//     WCET path;
//   - a reverse-execution-order walk (Algorithm 3) applies the prefetching
//     update function Û_e (Algorithm 1) to a cache state maintained in
//     reverse reference order. A replacement detected by Property 3 in this
//     backward state identifies a block that cannot survive until its next
//     use — a guaranteed future miss — and the point right behind the
//     replacing reference is the latest insertion point from which a
//     prefetch fill still survives until that use;
//   - the prefetching join function J_SE (Algorithm 2) propagates, at every
//     control-flow split, the state of the branch on the WCET path;
//   - a prefetch is inserted only if it is effective (Definition 10) and
//     profitable (Equation 9), and the insertion relocates code only up to
//     the next alignment firewall (see internal/isa).
//
// On top of the paper's local criterion this implementation re-runs the
// full sound analysis before committing insertions — batched, with
// bisection on failure — and rolls back any batch that would increase τ_w
// or fail to remove WCET-scenario misses. Theorem 1 therefore holds by
// construction, with the paper's criterion acting as the proposal filter
// (see DESIGN.md).
package core

import (
	"context"
	"fmt"
	"os"
	"sort"

	"ucp/internal/cache"
	"ucp/internal/interrupt"
	"ucp/internal/isa"
	"ucp/internal/obs"
	"ucp/internal/vivu"
	"ucp/internal/wcet"
)

// Options tunes the optimizer. The zero value of the Disable* fields runs
// the full joint improvement criterion of Section 4.3; they exist for the
// ablation benchmarks.
type Options struct {
	// Par are the memory timing parameters (hit time, miss penalty, Λ).
	Par wcet.Params
	// MaxInsertions caps the number of prefetches (safety valve; 0 means
	// one prefetch per original instruction).
	MaxInsertions int
	// DisableEffectiveness skips the Λ ≤ t_w(r_{i+1}, r_{j-1}) check of
	// Definition 10 (ablation).
	DisableEffectiveness bool
	// DisableValidation trusts the local criterion and skips the global
	// validate-and-commit re-analysis (ablation; Theorem 1 may then fail).
	DisableValidation bool
	// DisableMissCheck drops the requirement that the targeted reference
	// actually misses in the WCET scenario (ablation).
	DisableMissCheck bool
	// PadToBlock pads every insertion to a whole cache block with nops
	// (ablation). With the aligned layout of internal/isa this is normally
	// counterproductive: the alignment boundaries already confine the
	// relocation, and the pads only add fetch pressure.
	PadToBlock bool
	// ValidationBudget caps the number of sound re-analyses one Optimize
	// call may spend (0 means the default of 700). Candidates are proposed
	// in reverse execution order — synergistic chains stay contiguous, so
	// the batched bisection accepts them in few analyses and the budget
	// only trims the long tail of rejections.
	ValidationBudget int
	// Explain records one Decision per distinct prefetch candidate into
	// Report.Decisions: the costs the joint improvement criterion weighed
	// and the condition that decided the candidate's fate. Off by default —
	// the log costs an allocation per candidate.
	Explain bool
}

// Decision is one entry of the explain report: a prefetch candidate,
// identified by the replacing reference r_i and the replaced memory block,
// together with the quantities the joint improvement criterion weighs — the
// mcost/pcost/rcost terms of Equation 9 — and the condition that decided it.
type Decision struct {
	// Block and Index locate the replacing reference r_i in original
	// program coordinates; Target is the replaced memory block s' the
	// prefetch would load.
	Block  int    `json:"block"`
	Index  int    `json:"index"`
	Target uint64 `json:"target"`

	// Level is the cache level the candidate prefetch fills: 0 for the
	// classic L1 prefetch, 2 for the prefetch-into-L2 candidate class of
	// hierarchy runs.
	Level uint8 `json:"level,omitempty"`

	// At is the chosen insertion point (original coordinates) and Before
	// its placement side; Use is the targeted reference r_j. Meaningful
	// once an insertion point was found — not for the "no-next-use" and
	// "terminator" rejections.
	At     isa.InstrRef `json:"insert_at"`
	Before bool         `json:"insert_before,omitempty"`
	Use    isa.InstrRef `json:"use"`

	// L1Class and L2Class are the per-level analysis verdicts of the
	// targeted use at decision time ("ah", "am", "fm", "nc"); L2Class is
	// empty when no L2 is configured. Filled for decisions that identified
	// a use.
	L1Class string `json:"l1_class,omitempty"`
	L2Class string `json:"l2_class,omitempty"`

	// MCost is the τ_w contribution of the targeted miss — what the
	// prefetch can save (Equation 2 for r_j). PCost is the fetch cost of
	// executing the prefetch itself in the WCET scenario (hit time × the
	// insertion block's n_w). RCost is the τ_w regression observed when a
	// sound re-analysis rejected the insertion; zero everywhere else.
	MCost int64 `json:"mcost"`
	PCost int64 `json:"pcost"`
	RCost int64 `json:"rcost"`

	// Gap is the WCET-scenario time between the insertion point and the
	// use; effectiveness (Definition 10) requires Gap ≥ Lambda.
	Gap    int64 `json:"gap"`
	Lambda int64 `json:"lambda"`

	Effective  bool `json:"effective"`
	Profitable bool `json:"profitable"`
	Inserted   bool `json:"inserted"`
	// Reason is the deciding condition: "inserted", or the first check
	// that failed — "no-next-use", "terminator", "target-is-prefetch",
	// "already-hit", "ineffective", "duplicate", "validation" (the sound
	// re-analysis measured a regression; see RCost), or "pruned" (it was
	// committed, then removed by the cleanup pass as a parasite).
	Reason string `json:"reason"`
}

// Report summarizes one optimization run.
type Report struct {
	Inserted   int // prefetches committed
	Candidates int // replacement points considered

	RejectedTerminator  int // no insertion slot behind the replacing reference
	RejectedNoUse       int // replaced block never used again on the path
	RejectedAlreadyHit  int // next use already classified a hit
	RejectedIneffective int // Definition 10 failed
	RejectedTargetIsPft int // next use is itself a prefetch (Equation 9)
	RejectedDuplicate   int // an equivalent prefetch already sits there
	RejectedValidation  int // τ_w or WCET-miss regression on re-analysis

	Passes        int // reverse sweeps over the program
	Pruned        int // parasitic prefetches removed by the cleanup pass
	Validations   int // sound re-analyses paid for commits and rejections
	TauBefore     int64
	TauAfter      int64
	MissesBefore  int64
	MissesAfter   int64
	FetchesBefore int64
	FetchesAfter  int64
	// L2MissesBefore/After are the WCET-scenario L2 miss counts; zero for
	// single-level runs.
	L2MissesBefore int64
	L2MissesAfter  int64

	// Decisions is the explain report (Options.Explain): one entry per
	// distinct candidate, inserted and rejected alike.
	Decisions []Decision `json:"decisions,omitempty"`
}

// Optimize returns a prefetch-equivalent optimized copy of p for the given
// cache configuration (Problem 1). The input program is not modified.
//
// Optimize is cooperatively cancellable: when ctx is canceled or its
// deadline passes, the current pass (reverse walk or validation analysis)
// unwinds and the call returns a typed interrupt error with no program and
// no report. A canceled optimization therefore never produces output —
// Theorem 1 is all-or-nothing, there is no partially validated result to
// misuse (see DESIGN.md §10).
func Optimize(ctx context.Context, p *isa.Program, cfg cache.Config, opt Options) (*isa.Program, *Report, error) {
	return OptimizeHier(ctx, p, cache.Hier1(cfg), opt)
}

// OptimizeHier optimizes p for the cache hierarchy h. With no L2 configured
// it is exactly Optimize on h.L1 — same analyses, same decisions, same
// output bits. With an L2, the classic L1 candidate phase runs first against
// the hierarchical analysis (fetch outcomes priced per level), then a second
// phase proposes prefetch-into-L2 candidates: Level-2 prefetches whose fill
// installs into the L2 only, converting guaranteed future L2 misses into L2
// hits. Both phases commit through the same validate-or-rollback machinery,
// so Theorem 1 (τ_w never increases) holds for the hierarchy by the same
// construction, with the joint miss count (L1+L2) taking the role of the
// WCET-scenario miss count in Condition 2.
func OptimizeHier(ctx context.Context, p *isa.Program, h cache.Hierarchy, opt Options) (*isa.Program, *Report, error) {
	if err := opt.Par.Valid(); err != nil {
		return nil, nil, err
	}
	if err := h.Valid(); err != nil {
		return nil, nil, err
	}
	cfg := h.L1
	ctx, span := obs.Start(ctx, "core.optimize")
	defer span.End()
	q := p.Clone()
	x, err := vivu.ExpandCtx(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	maxIns := opt.MaxInsertions
	if maxIns == 0 {
		maxIns = p.NInstr()
	}

	res, err := wcet.AnalyzeXHier(ctx, x, h, opt.Par)
	if err != nil {
		return nil, nil, err
	}
	// The seed result's states stay live for the whole optimization (every
	// incremental re-validation chains from them, aliasing what did not
	// change), so hash-consing identical converged states across VIVU
	// contexts here pays once and shrinks the retained set for the entire
	// run. The intern table travels down the result chain.
	res.AI.Intern()
	rep := &Report{
		TauBefore:      res.TauW,
		MissesBefore:   res.Misses,
		L2MissesBefore: res.L2Misses,
		FetchesBefore:  res.Fetches,
	}

	bwCfg := cfg
	bwCfg.Policy = cache.LRU
	o := &optimizer{
		x: x, cfg: cfg, h: h, bwCfg: bwCfg, opt: opt, rep: rep, res: res,
		rejected: map[candidateKey]bool{},
		ctx:      ctx, chk: interrupt.NewChecker(ctx, 64),
	}
	if h.HasL2() {
		o.bwCfg2 = h.L2
		o.bwCfg2.Policy = cache.LRU
	}
	if opt.Explain {
		o.dec = newDecisionLog()
	}
	o.topoPos = make([]int, len(x.Blocks))
	for i, id := range x.Topo {
		o.topoPos[id] = i
	}
	o.budget = opt.ValidationBudget
	if o.budget == 0 {
		o.budget = 700
	}

	for rep.Inserted < maxIns && rep.Validations < o.budget {
		rep.Passes++
		cands, err := o.collect()
		if err != nil {
			return nil, nil, err
		}
		if len(cands) == 0 {
			break
		}
		if len(cands) > maxIns-rep.Inserted {
			cands = cands[:maxIns-rep.Inserted]
		}
		n, err := o.bisect(cands)
		if err != nil {
			return nil, nil, err
		}
		if debugEnabled {
			fmt.Printf("pass %d: cands=%d accepted=%d validations=%d\n", rep.Passes, len(cands), n, rep.Validations)
		}
		rep.Inserted += n
		if n == 0 {
			break
		}
	}

	// Prefetch-into-L2 phase: with the L1 candidates settled, a second
	// reverse walk at L2 block granularity proposes Level-2 prefetches for
	// blocks that provably cannot survive in the L2 until their next use.
	// Converting those L2 misses into L2 hits shaves the full MissPenalty
	// off every remaining L1-miss fetch of the block, at the price of one
	// extra fetched instruction — Equation 9 with the L2 terms.
	if h.HasL2() {
		for rep.Inserted < maxIns && rep.Validations < o.budget {
			rep.Passes++
			cands, err := o.collectL2()
			if err != nil {
				return nil, nil, err
			}
			if len(cands) == 0 {
				break
			}
			if len(cands) > maxIns-rep.Inserted {
				cands = cands[:maxIns-rep.Inserted]
			}
			n, err := o.bisect(cands)
			if err != nil {
				return nil, nil, err
			}
			if debugEnabled {
				fmt.Printf("l2 pass %d: cands=%d accepted=%d validations=%d\n", rep.Passes, len(cands), n, rep.Validations)
			}
			rep.Inserted += n
			if n == 0 {
				break
			}
		}
	}

	// Remove the prefetches that failed to convert their target into a hit
	// (see prune.go); they would only waste fetch cycles and DRAM energy.
	if !opt.DisableValidation && rep.Inserted > 0 {
		o.budget += 80 // the cleanup usually needs only a handful of analyses
		if err := o.pruneUseless(); err != nil {
			return nil, nil, err
		}
		rep.Inserted = q.NPrefetch()
	}

	rep.TauAfter = o.res.TauW
	rep.MissesAfter = o.res.Misses
	rep.L2MissesAfter = o.res.L2Misses
	rep.FetchesAfter = o.res.Fetches
	if o.dec != nil {
		rep.Decisions = o.dec.list
	}
	if span != nil {
		span.Attr("candidates", rep.Candidates)
		span.Attr("inserted", rep.Inserted)
		span.Attr("rejected", rep.RejectedTerminator+rep.RejectedNoUse+
			rep.RejectedAlreadyHit+rep.RejectedIneffective+
			rep.RejectedTargetIsPft+rep.RejectedDuplicate+rep.RejectedValidation)
		span.Attr("passes", rep.Passes)
		span.Attr("pruned", rep.Pruned)
		span.Attr("validations", rep.Validations)
		span.Attr("tau_before", rep.TauBefore)
		span.Attr("tau_after", rep.TauAfter)
	}
	// With validation active, Theorem 1 holds by construction; any
	// violation is an internal error. The DisableValidation ablation is
	// exactly the mode that may break the guarantee, so it is exempt.
	if !opt.DisableValidation && rep.TauAfter > rep.TauBefore {
		return nil, nil, fmt.Errorf("core: internal error: τ_w increased from %d to %d", rep.TauBefore, rep.TauAfter)
	}
	if !isa.PrefetchEquivalent(p, q) {
		return nil, nil, fmt.Errorf("core: internal error: output not prefetch-equivalent to input")
	}
	return q, rep, nil
}

var debugEnabled = os.Getenv("UCP_DEBUG") != ""

type candidateKey struct {
	block, index int    // replacing reference r_i (original coordinates)
	target       uint64 // replaced memory block s'
	level        uint8  // cache level the prefetch fills (0 = L1, 2 = L2)
}

// candidate is one proposed prefetch insertion.
type candidate struct {
	at     isa.InstrRef // insertion anchor (original program coordinates)
	before bool         // insert before `at` instead of after it
	use    isa.InstrRef // the targeted reference r_j
	key    candidateKey
	value  int64 // τ_w contribution of the targeted miss (ranking key)
	gap    int64 // WCET-scenario time between insertion point and use
	level  uint8 // cache level the prefetch fills (0 = L1, 2 = L2)
	// l1c/l2c are the per-level verdicts of the use at screen time, for the
	// explain report (empty when Explain is off).
	l1c, l2c string
}

type optimizer struct {
	x   *vivu.Prog
	cfg cache.Config
	// h is the cache hierarchy being optimized for; h.L1 == cfg always.
	h cache.Hierarchy
	// ctx and chk make the run cancellable: the reverse walk polls the
	// amortized checker per expanded block, and every validation re-analysis
	// passes ctx down to the fixpoint.
	ctx context.Context
	chk *interrupt.Checker
	// bwCfg is cfg with the policy forced to LRU: the reverse walk's states
	// encode next-use order *as* LRU order (Property 3 reads an eviction in
	// them as "at least `associativity` distinct same-set blocks before the
	// next use"), which holds whatever policy the analyzed cache runs. The
	// walk is only the proposal heuristic — validation (refresh) analyzes
	// under the real policy.
	bwCfg cache.Config
	opt   Options
	rep   *Report
	res   *wcet.Result

	// bwOut caches the backward cache state at every expanded block's exit,
	// and bwRes records which analysis result it was computed for. backward()
	// revalidates the pair against o.res by pointer identity, so a refresh
	// invalidates it and a rollback (which restores the previous result
	// pointer) revives it — invalidation is structural, not by convention.
	bwOut []*cache.State
	bwRes *wcet.Result
	// bwScratch is the reusable walking state of collect's reverse sweep.
	bwScratch *cache.State
	// bwCfg2/bwOut2/bwRes2/bwScratch2 are the L2-granularity counterparts
	// used by the prefetch-into-L2 phase (see hier.go); unused without an L2.
	bwCfg2     cache.Config
	bwOut2     []*cache.State
	bwRes2     *wcet.Result
	bwScratch2 *cache.State
	// topoPos[id] is the position of expanded block id in x.Topo (the
	// expansion, and hence this order, is stable across insertions).
	topoPos []int

	// visitCnt/visitGen are the epoch-stamped visit counters of the
	// WCET-path walks (findNextUse/wcetSucc): bumping visitEpoch resets
	// every counter in O(1), replacing a per-call map allocation.
	visitCnt   []int32
	visitGen   []uint32
	visitEpoch uint32
	// pathBuf is findNextUse's reusable path buffer; the returned path
	// aliases it and is only valid until the next findNextUse call.
	pathBuf []pathStep

	// rejected memoizes validation failures so later sweeps do not re-pay
	// the full re-analysis for a candidate already refuted.
	rejected map[candidateKey]bool
	// dec is the explain log (nil unless Options.Explain); decRefs keeps
	// each committed decision pinned to its instruction's live coordinates.
	dec     *decisionLog
	decRefs []decRef
	// lastTauDelta is the τ_w movement of the most recent rejected
	// trySubset, for attributing rcost to single-candidate rejections.
	lastTauDelta int64
	// insLog records committed insertions so sibling bisection branches
	// can shift their pending coordinates.
	insLog []insertion
	// budget caps Validations.
	budget int
}

// insertion records one committed program growth event.
type insertion struct {
	block, pos, grown int
}

// collect runs one reverse-execution-order sweep (Algorithm 3) and returns
// the prefetch candidates that pass every local check, most-downstream
// first. The sweep polls the cancellation checker once per expanded block.
func (o *optimizer) collect() ([]candidate, error) {
	res := o.res
	order := res.X.Topo
	seen := map[candidateKey]bool{}
	var out []candidate
	bw := o.backward()
	if o.bwScratch == nil {
		o.bwScratch = cache.NewState(o.bwCfg)
	}
	st := o.bwScratch
	for ti := len(order) - 1; ti >= 0; ti-- {
		if err := o.chk.Check(); err != nil {
			return nil, err
		}
		xbID := order[ti]
		if !res.OnWCETPath(xbID) {
			continue
		}
		xb := res.X.Blocks[xbID]
		instrs := res.Prog.Blocks[xb.Orig].Instrs
		st.CopyFrom(bw[xbID])
		for i := len(instrs) - 1; i >= 0; i-- {
			r := vivu.Ref{XB: xbID, Index: i}
			if instrs[i].Kind == isa.KindPrefetch && res.AI.Effective[xbID][i] {
				st.Remove(res.Lay.MemBlock(instrs[i].Target, o.cfg.BlockBytes))
			}
			_, evicted := st.Access(o.memBlockOf(r))
			if evicted == cache.InvalidBlock {
				continue
			}
			if c, ok := o.screen(r, evicted); ok && !seen[c.key] {
				seen[c.key] = true
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// screen applies the cheap parts of the joint improvement criterion
// (Section 4.3) to one replacement event and builds the candidate.
func (o *optimizer) screen(r vivu.Ref, evicted uint64) (candidate, bool) {
	res := o.res
	o.rep.Candidates++
	origRef := res.X.InstrRef(r)

	key := candidateKey{origRef.Block, origRef.Index, evicted, 1}
	if o.rejected[key] {
		return candidate{}, false
	}
	use, gap, path, found := o.findNextUse(r, evicted, false)
	if !found {
		o.rep.RejectedNoUse++
		if o.dec != nil {
			o.explainReject(key, "no-next-use", Decision{})
		}
		return candidate{}, false
	}
	anchor := o.slidePlacement(path, use)
	at, before, ok := o.insertionPoint(anchor, res.X.InstrRef(anchor))
	if !ok {
		o.rep.RejectedTerminator++
		if o.dec != nil {
			o.explainReject(key, "terminator", Decision{
				Use: res.X.InstrRef(use), MCost: res.Contribution(use), Gap: gap,
			})
		}
		return candidate{}, false
	}
	useRef := res.X.InstrRef(use)
	if res.Prog.Instr(useRef).Kind == isa.KindPrefetch {
		// Equation 9: profit is zero when r_j is a prefetch.
		o.rep.RejectedTargetIsPft++
		if o.dec != nil {
			o.explainReject(key, "target-is-prefetch", Decision{
				At: at, Before: before, Use: useRef,
				PCost: o.explainPCost(at.Block), Gap: gap,
				Effective: gap >= o.opt.Par.Lambda,
			})
		}
		return candidate{}, false
	}
	if !o.opt.DisableMissCheck && res.RefTime(use) <= o.opt.Par.HitCycles {
		o.rep.RejectedAlreadyHit++
		if o.dec != nil {
			l1c, l2c := o.classOf(use)
			o.explainReject(key, "already-hit", Decision{
				At: at, Before: before, Use: useRef,
				L1Class: l1c, L2Class: l2c,
				MCost: res.Contribution(use), PCost: o.explainPCost(at.Block), Gap: gap,
				Effective: gap >= o.opt.Par.Lambda,
			})
		}
		return candidate{}, false
	}
	if !o.opt.DisableEffectiveness && gap < o.opt.Par.Lambda {
		// Definition 10: Λ must not exceed the WCET-scenario time spent
		// between the insertion point and the use.
		o.rep.RejectedIneffective++
		if o.dec != nil {
			o.explainReject(key, "ineffective", Decision{
				At: at, Before: before, Use: useRef,
				MCost: res.Contribution(use), PCost: o.explainPCost(at.Block), Gap: gap,
				Profitable: res.Contribution(use) > o.explainPCost(at.Block),
			})
		}
		return candidate{}, false
	}
	if o.duplicateAt(at, evicted, 0) {
		o.rep.RejectedDuplicate++
		if o.dec != nil {
			o.explainReject(key, "duplicate", Decision{
				At: at, Before: before, Use: useRef,
				MCost: res.Contribution(use), PCost: o.explainPCost(at.Block), Gap: gap,
				Effective: true,
			})
		}
		return candidate{}, false
	}
	c := candidate{
		at: at, before: before, use: useRef, key: key,
		value: res.Contribution(use), gap: gap,
	}
	if o.dec != nil {
		c.l1c, c.l2c = o.classOf(use)
	}
	return c, true
}

// classOf returns the per-level classification strings of a reference, for
// the explain report; the L2 verdict is empty without a configured L2.
func (o *optimizer) classOf(use vivu.Ref) (l1, l2 string) {
	l1 = o.res.AI.Class[use.XB][use.Index].String()
	if o.res.AI2 != nil {
		l2 = o.res.AI2.Class[use.XB][use.Index].String()
	}
	return l1, l2
}

// explainPCost is insertionFetchCost gated on the explain log being live,
// so the disabled path never pays the block scan.
func (o *optimizer) explainPCost(block int) int64 {
	if o.dec == nil {
		return 0
	}
	return o.insertionFetchCost(block)
}

// bisect commits as many of the candidates as the sound analysis accepts:
// it inserts the whole set, re-analyzes once, and on a τ_w or miss
// regression rolls everything back and recurses on the halves, keeping the
// coordinates of the pending half consistent with the insertions the other
// half committed.
func (o *optimizer) bisect(cands []candidate) (int, error) {
	if len(cands) == 0 || o.rep.Validations >= o.budget {
		return 0, nil
	}
	ok, err := o.trySubset(cands)
	if err != nil {
		return 0, err
	}
	if ok {
		return len(cands), nil
	}
	if len(cands) == 1 {
		o.rejected[cands[0].key] = true
		o.rep.RejectedValidation++
		o.explainValidationReject(cands[0], o.lastTauDelta)
		return 0, nil
	}
	mid := len(cands) / 2
	mark := len(o.insLog)
	n1, err := o.bisect(cands[:mid])
	if err != nil {
		return n1, err
	}
	right := cands[mid:]
	if len(o.insLog) > mark {
		right = adjustCandidates(right, o.insLog[mark:])
	}
	n2, err := o.bisect(right)
	return n1 + n2, err
}

// adjustCandidates shifts candidate coordinates past the logged insertions.
func adjustCandidates(cands []candidate, log []insertion) []candidate {
	out := append([]candidate(nil), cands...)
	for _, ins := range log {
		for i := range out {
			c := &out[i]
			if c.at.Block == ins.block && c.at.Index >= ins.pos {
				c.at.Index += ins.grown
			}
			if c.use.Block == ins.block && c.use.Index >= ins.pos {
				c.use.Index += ins.grown
			}
		}
	}
	return out
}

// trySubset inserts the candidates (descending program position, so pending
// coordinates stay valid), re-analyzes, and keeps the insertions only when
// τ_w does not grow (Condition 1 / Lemma 2) and the WCET-scenario miss
// count shrinks (Condition 2).
func (o *optimizer) trySubset(cands []candidate) (bool, error) {
	prog := o.res.Prog
	sorted := append([]candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].at.Block != sorted[j].at.Block {
			return sorted[i].at.Block > sorted[j].at.Block
		}
		return sorted[i].at.Index > sorted[j].at.Index
	})

	snapshot := make([][]isa.Instr, len(prog.Blocks))
	for i, b := range prog.Blocks {
		snapshot[i] = append([]isa.Instr(nil), b.Instrs...)
	}

	pads := 0
	if o.opt.PadToBlock {
		pads = o.cfg.BlockBytes/isa.InstrBytes - 1
	}
	var inserted []insertion
	var poss []isa.InstrRef
	if o.dec != nil {
		poss = make([]isa.InstrRef, len(sorted))
	}
	for ci, c := range sorted {
		ins := isa.Instr{Kind: isa.KindPrefetch, Level: c.level, Target: c.use}
		var pos isa.InstrRef
		if c.before {
			pos = prog.InsertInstrBefore(c.at, ins)
		} else {
			pos = prog.InsertInstr(c.at, ins)
		}
		if poss != nil {
			poss[ci] = pos
		}
		cur := pos
		for k := 0; k < pads; k++ {
			cur = prog.InsertInstr(cur, isa.Instr{Kind: isa.KindPad})
		}
		// Shift the pending candidates' use coordinates past the insertion;
		// their anchors are weakly upstream by the sort order and stay put.
		grown := 1 + pads
		inserted = append(inserted, insertion{block: pos.Block, pos: pos.Index, grown: grown})
		for cj := ci + 1; cj < len(sorted); cj++ {
			p := &sorted[cj]
			if p.use.Block == pos.Block && p.use.Index >= pos.Index {
				p.use.Index += grown
			}
		}
	}

	prevRes := o.res
	if err := o.refresh(); err != nil {
		return false, err
	}
	// Condition 2 counts misses jointly across the hierarchy: an L1
	// prefetch removes an L1 miss, a Level-2 prefetch removes an L2 miss,
	// and either kind must not re-introduce misses at the other level. For
	// single-level runs L2Misses is identically zero and this is exactly
	// the original condition.
	if o.opt.DisableValidation ||
		(o.res.TauW <= prevRes.TauW && o.res.Misses+o.res.L2Misses < prevRes.Misses+prevRes.L2Misses) {
		for _, ins := range inserted {
			o.insLog = append(o.insLog, ins)
		}
		if o.dec != nil {
			for ci, c := range sorted {
				o.explainInsert(c, poss[ci], 1+pads)
			}
		}
		return true, nil
	}
	o.lastTauDelta = o.res.TauW - prevRes.TauW
	for i, b := range prog.Blocks {
		b.Instrs = snapshot[i]
	}
	// Restoring the previous result also revives the backward-state cache:
	// backward() keys it on the result pointer.
	o.res = prevRes
	return false, nil
}

// testRefreshCheck, when set by the differential tests, receives every
// incrementally refreshed result so it can be compared against a
// from-scratch analysis of the same program state.
var testRefreshCheck func(*wcet.Result)

// refresh re-runs the WCET analysis after a program mutation, incrementally
// seeded from the current result: only the blocks the mutation actually
// perturbed (plus their forward closure) are re-solved. The backward-state
// cache needs no explicit reset here — it is keyed on the result pointer
// (see backward()), so replacing o.res invalidates it exactly once per
// refresh.
func (o *optimizer) refresh() error {
	res, err := wcet.AnalyzeXHierFrom(o.ctx, o.x, o.h, o.opt.Par, o.res)
	if err != nil {
		return err
	}
	if testRefreshCheck != nil {
		testRefreshCheck(res)
	}
	o.rep.Validations++
	o.res = res
	return nil
}

// insertionPoint picks where π goes: immediately after r inside its block,
// or — when r is a block terminator — at the head of the successor block on
// the WCET path (the edge (r_i, r_{i+1}) of the ACFG then crosses a block
// boundary). The returned flag selects InsertInstrBefore semantics.
func (o *optimizer) insertionPoint(r vivu.Ref, origRef isa.InstrRef) (isa.InstrRef, bool, bool) {
	res := o.res
	origBlk := res.Prog.Blocks[origRef.Block]
	k := origBlk.Instrs[origRef.Index].Kind
	if origRef.Index != len(origBlk.Instrs)-1 || (k != isa.KindBranch && k != isa.KindJump) {
		return origRef, false, true
	}
	// Terminator: place the prefetch at the head of the WCET successor.
	xb := res.X.Blocks[r.XB]
	bestN := int64(-1)
	best := -1
	for _, e := range xb.Succs {
		n := res.Nw[e.To]
		switch {
		case n > bestN:
			bestN, best = n, e.To
		case n == bestN && best != -1 && o.topoPos[e.To] < o.topoPos[best]:
			best = e.To
		}
	}
	if best == -1 || bestN <= 0 {
		return isa.InstrRef{}, false, false
	}
	return isa.InstrRef{Block: res.X.Blocks[best].Orig, Index: 0}, true, true
}

// duplicateAt reports whether an equivalent prefetch (same target block at
// the same cache level) already sits adjacent to the insertion point.
func (o *optimizer) duplicateAt(origRef isa.InstrRef, target uint64, level uint8) bool {
	b := o.res.Prog.Blocks[origRef.Block]
	bb := o.cfg.BlockBytes
	if level == 2 {
		bb = o.h.L2.BlockBytes
	}
	for _, idx := range []int{origRef.Index, origRef.Index + 1, origRef.Index + 2} {
		if idx < 0 || idx >= len(b.Instrs) {
			continue
		}
		in := b.Instrs[idx]
		if in.Kind != isa.KindPrefetch || (in.Level == 2) != (level == 2) {
			continue
		}
		if o.res.Lay.MemBlock(in.Target, bb) == target {
			return true
		}
	}
	return false
}

func (o *optimizer) memBlockOf(r vivu.Ref) uint64 {
	return o.res.Lay.MemBlock(o.res.X.InstrRef(r), o.cfg.BlockBytes)
}

// memBlock2Of maps a reference to its L2 memory block.
func (o *optimizer) memBlock2Of(r vivu.Ref) uint64 {
	return o.res.Lay.MemBlock(o.res.X.InstrRef(r), o.h.L2.BlockBytes)
}
