package core

import (
	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/vivu"
)

// This file implements the state bookkeeping of the reverse analysis of
// Section 4.2 / Supplement S.1.
//
// The reverse walk maintains a cache state built by pushing memory blocks in
// *reverse* execution order (the states of Figure 1b). At a program point P
// this state holds, per cache set, the blocks whose next use after P comes
// soonest — with LRU order equal to next-use order. Applying Property 3 to
// two successive backward states therefore identifies, at each reference
// r_i, a block s' that cannot survive in cache until its next use no matter
// what the forward execution cached before P: at least `associativity`
// distinct same-set blocks are referenced between r_i and that use. Every
// such s' is a guaranteed future miss (a conflict or cold miss), and the
// point right behind r_i is the *latest* insertion point from which a
// prefetch fill of s' still survives until the use — exactly where
// Algorithm 1 places π_{s'}.
//
// At control-flow splits the backward state is propagated from the successor
// on the WCET path, mirroring the prefetching join function J_SE of
// Algorithm 2. Residual loop back edges are followed (the other-iterations
// context sees the next iteration's needs), with a bounded fixpoint.

// backward returns the per-block backward exit states for the current
// analysis result, recomputing them only when o.res changed since the last
// computation. Keying the cache on the result pointer makes invalidation
// exact: refresh() swaps the pointer (stale states can never be read), and
// a rollback that restores the previous result revives its still-valid
// states for free.
func (o *optimizer) backward() []*cache.State {
	if o.bwRes != o.res {
		o.bwOut = o.backwardOut()
		o.bwRes = o.res
	}
	return o.bwOut
}

// backwardOut computes, for every expanded block, the backward cache state
// at the block's *exit* (i.e. the state describing the references executed
// after the block on the WCET path). Each block gets dedicated in/out
// states up front and the rounds copy into them, so one call allocates the
// states once instead of cloning per block per round. (bwOut must not alias
// bwIn of the successor: a single-block residual loop is its own WCET
// successor, and its exit state must be the pre-update value.)
func (o *optimizer) backwardOut() []*cache.State {
	res := o.res
	x := res.X
	n := len(x.Blocks)
	bwIn := make([]*cache.State, n)
	bwOut := make([]*cache.State, n)
	valid := make([]bool, n)
	for id := range bwIn {
		bwIn[id] = cache.NewState(o.bwCfg)
		bwOut[id] = cache.NewState(o.bwCfg)
	}

	// Residual back edges make the other-iterations context depend on its
	// own entry state; a few rounds approximate the cyclic future well
	// enough for the proposal mechanism (validation is exact anyway).
	for round := 0; round < 3; round++ {
		for ti := len(x.Topo) - 1; ti >= 0; ti-- {
			id := x.Topo[ti]
			succ := o.wcetSuccBlock(id)
			if succ == -1 || !valid[succ] {
				bwOut[id].Reset()
			} else {
				bwOut[id].CopyFrom(bwIn[succ])
			}
			bwIn[id].CopyFrom(bwOut[id])
			o.applyBackward(bwIn[id], id, 0)
			valid[id] = true
		}
	}
	return bwOut
}

// wcetSuccBlock picks the successor of expanded block id on the WCET path:
// maximal n_w, ties to the earliest topological position; residual back
// edges participate (the backward window of a loop body sees the next
// iteration).
func (o *optimizer) wcetSuccBlock(id int) int {
	res := o.res
	xb := res.X.Blocks[id]
	bestN := int64(-1)
	best := -1
	for _, e := range xb.Succs {
		n := res.Nw[e.To]
		if n <= 0 {
			continue
		}
		switch {
		case n > bestN:
			bestN, best = n, e.To
		case n == bestN && best != -1 && o.topoPos[e.To] < o.topoPos[best]:
			best = e.To
		}
	}
	return best
}

// applyBackward pushes the references of expanded block id through a
// backward state, in reverse order, down to (and excluding) instruction
// index stop. A prefetch's own fetch is a reference like any other; its
// fill satisfies the future use of the target block, so the target is
// dropped from the window (upstream code no longer needs to preserve it).
func (o *optimizer) applyBackward(st *cache.State, id int, stop int) {
	res := o.res
	xb := res.X.Blocks[id]
	instrs := res.Prog.Blocks[xb.Orig].Instrs
	for i := len(instrs) - 1; i >= stop; i-- {
		if instrs[i].Kind == isa.KindPrefetch && res.AI.Effective[id][i] {
			st.Remove(res.Lay.MemBlock(instrs[i].Target, o.cfg.BlockBytes))
		}
		st.Access(o.memBlockOf(vivu.Ref{XB: id, Index: i}))
	}
}

// backwardStateBefore returns the backward state at the program point just
// behind reference r — the state Û_e(ĉ, r_i) is applied to. The per-block
// exit states are cached per analysis refresh.
func (o *optimizer) backwardStateBefore(r vivu.Ref) *cache.State {
	st := o.backward()[r.XB].Clone()
	o.applyBackward(st, r.XB, r.Index+1)
	return st
}

// pathStep is one reference on the WCET-path walk towards the next use,
// with the time accumulated strictly after it up to the use (the
// t_w(r_{i+1}, r_{j-1}) of Equation 5 when inserting right behind it).
type pathStep struct {
	ref vivu.Ref
	// gapAfter is filled in by findNextUse once the use is located.
	gapAfter int64
}

// findNextUse walks the WCET path forward from the reference following r and
// returns the first reference to memory block target, the WCET-scenario
// time spent strictly between r and that use (Equation 5), and the walked
// path (for downstream placement sliding). The l2 flag selects the block
// granularity the target is matched at (the prefetch-into-L2 phase walks in
// L2 blocks).
//
// The walk follows the WCET successors of the expanded graph. A residual
// back edge may be traversed once per loop instance — emulating the exit of
// the other-iterations context towards the code after the loop — after
// which the already-walked blocks are not re-entered.
// The returned path aliases the optimizer's reusable buffer and is only
// valid until the next findNextUse call.
func (o *optimizer) findNextUse(r vivu.Ref, target uint64, l2 bool) (use vivu.Ref, gap int64, path []pathStep, found bool) {
	res := o.res
	x := res.X
	blockOf := o.memBlockOf
	if l2 {
		blockOf = o.memBlock2Of
	}
	o.beginVisits()
	o.addVisit(r.XB)
	cur := r
	gap = 0
	limit := x.NRefs() + len(x.Blocks)
	path = append(o.pathBuf[:0], pathStep{ref: r})
	defer func() { o.pathBuf = path[:0] }()
	for steps := 0; steps <= limit; steps++ {
		next, ok := o.wcetSucc(cur)
		if !ok {
			return vivu.Ref{}, 0, nil, false
		}
		if next.Index == 0 {
			o.addVisit(next.XB)
		}
		if blockOf(next) == target {
			// Backfill the remaining time after every path position.
			acc := int64(0)
			for i := len(path) - 1; i >= 0; i-- {
				path[i].gapAfter = acc
				if i > 0 {
					acc += res.RefTime(path[i].ref)
				}
			}
			return next, gap, path, true
		}
		gap += res.RefTime(next)
		path = append(path, pathStep{ref: next})
		cur = next
	}
	return vivu.Ref{}, 0, nil, false
}

// beginVisits starts a fresh visit-counting epoch; counters from earlier
// epochs read as zero without being cleared.
func (o *optimizer) beginVisits() {
	if o.visitCnt == nil {
		o.visitCnt = make([]int32, len(o.x.Blocks))
		o.visitGen = make([]uint32, len(o.x.Blocks))
	}
	o.visitEpoch++
	if o.visitEpoch == 0 { // wraparound: stale stamps could read as current
		for i := range o.visitGen {
			o.visitGen[i] = 0
		}
		o.visitEpoch = 1
	}
}

func (o *optimizer) visitsOf(id int) int32 {
	if o.visitGen[id] != o.visitEpoch {
		return 0
	}
	return o.visitCnt[id]
}

func (o *optimizer) addVisit(id int) {
	if o.visitGen[id] != o.visitEpoch {
		o.visitGen[id] = o.visitEpoch
		o.visitCnt[id] = 0
	}
	o.visitCnt[id]++
}

// slidePlacement picks the best insertion anchor along the walked path: the
// latest position whose execution count does not exceed the use's (so a
// prefetch for a post-loop block hoists out of the loop body instead of
// re-issuing every iteration), still leaving at least Λ of WCET time before
// the use. The detection point itself is the fallback.
func (o *optimizer) slidePlacement(path []pathStep, use vivu.Ref) vivu.Ref {
	res := o.res
	useN := res.Nw[use.XB]
	anchor := path[0].ref
	if res.Nw[anchor.XB] <= useN {
		return anchor
	}
	lambda := o.opt.Par.Lambda
	if o.opt.DisableEffectiveness {
		lambda = 0
	}
	for i := len(path) - 1; i > 0; i-- {
		p := path[i]
		if res.Nw[p.ref.XB] <= useN && p.gapAfter >= lambda {
			return p.ref
		}
	}
	return anchor
}

// wcetSucc returns the reference executed after cur on the WCET path: the
// next instruction of the block, or the entry of the chosen successor
// block. Successors on the WCET path (n_w > 0) are preferred by descending
// n_w, then by topological position; a block already visited twice in this
// walk (per the current visit epoch) is never re-entered, which bounds the
// walk while still letting it leave a residual loop body through its back
// edge once.
func (o *optimizer) wcetSucc(cur vivu.Ref) (vivu.Ref, bool) {
	res := o.res
	x := res.X
	xb := x.Blocks[cur.XB]
	if cur.Index+1 < len(res.Prog.Blocks[xb.Orig].Instrs) {
		return vivu.Ref{XB: cur.XB, Index: cur.Index + 1}, true
	}
	bestN := int64(-1)
	best := -1
	for _, e := range xb.Succs {
		if res.Nw[e.To] <= 0 || o.visitsOf(e.To) >= 2 {
			continue
		}
		// Prefer fresh blocks over revisits so the second arrival at a
		// residual header immediately takes the exit.
		n := res.Nw[e.To] - int64(o.visitsOf(e.To))*(1<<40)
		switch {
		case n > bestN:
			bestN, best = n, e.To
		case n == bestN && best != -1 && o.topoPos[e.To] < o.topoPos[best]:
			best = e.To
		}
	}
	if best == -1 {
		return vivu.Ref{}, false
	}
	return vivu.Ref{XB: best, Index: 0}, true
}
