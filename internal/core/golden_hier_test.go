package core

import (
	"context"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/malardalen"
	"ucp/internal/wcet"
)

// TestSingleLevelDifferentialGolden is the hierarchy refactor's differential
// golden: with no L2 configured, the hierarchy-aware pipeline must be
// byte-identical to the original single-level one — same optimized program
// fingerprint, same report numbers, same WCET — across the Mälardalen suite
// and all three replacement policies. Any drift here means the zero-value
// gating leaks hierarchy behavior into single-level runs.
func TestSingleLevelDifferentialGolden(t *testing.T) {
	par := wcet.Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}
	benches := malardalen.All()
	if testing.Short() {
		benches = benches[:10]
	}
	for _, pol := range cache.Policies() {
		cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256, Policy: pol}
		h := cache.Hier1(cfg)
		for _, b := range benches {
			// Analysis level: the hierarchy entry point with Hier1 must
			// reproduce the single-level result exactly.
			r1, err := wcet.Analyze(context.Background(), b.Prog, cfg, par)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, pol, err)
			}
			r2, err := wcet.AnalyzeHier(context.Background(), b.Prog, h, par)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, pol, err)
			}
			if r1.TauW != r2.TauW || r1.Misses != r2.Misses || r1.Fetches != r2.Fetches {
				t.Errorf("%s/%s: analysis drift: τ_w %d vs %d, misses %d vs %d, fetches %d vs %d",
					b.Name, pol, r1.TauW, r2.TauW, r1.Misses, r2.Misses, r1.Fetches, r2.Fetches)
			}
			if r2.L2Misses != 0 || r2.AI2 != nil {
				t.Errorf("%s/%s: single-level analysis grew L2 state", b.Name, pol)
			}

			// Optimizer level: same insertions, same program bytes.
			o := Options{Par: par, ValidationBudget: 25}
			p1, rep1, err := Optimize(context.Background(), b.Prog, cfg, o)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, pol, err)
			}
			p2, rep2, err := OptimizeHier(context.Background(), b.Prog, h, o)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, pol, err)
			}
			if fp1, fp2 := isa.Fingerprint(p1), isa.Fingerprint(p2); fp1 != fp2 {
				t.Errorf("%s/%s: optimized program fingerprints diverge: %s vs %s", b.Name, pol, fp1, fp2)
			}
			if rep1.TauAfter != rep2.TauAfter || rep1.Inserted != rep2.Inserted ||
				rep1.MissesAfter != rep2.MissesAfter || rep1.Validations != rep2.Validations {
				t.Errorf("%s/%s: report drift: τ %d vs %d, inserted %d vs %d, misses %d vs %d, validations %d vs %d",
					b.Name, pol, rep1.TauAfter, rep2.TauAfter, rep1.Inserted, rep2.Inserted,
					rep1.MissesAfter, rep2.MissesAfter, rep1.Validations, rep2.Validations)
			}
			if rep2.L2MissesBefore != 0 || rep2.L2MissesAfter != 0 {
				t.Errorf("%s/%s: single-level report carries L2 misses", b.Name, pol)
			}
		}
	}
}
