package core

import (
	"context"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/wcet"
)

var hierPar = wcet.Params{HitCycles: 1, MissPenalty: 9, Lambda: 10, L2HitCycles: 3}

// hierTestHierarchy builds the canonical L2-profitable geometry: an L1 so
// small that prefetched blocks are evicted again before their use (every
// Λ-window spans more distinct L1 blocks than the L1 holds), backed by an
// L2 that is larger than the L1 but still smaller than the loop body, so
// the backward window at L2 granularity sees replacement events too.
func hierTestHierarchy() cache.Hierarchy {
	return cache.Hierarchy{
		L1: cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 32},
		L2: cache.Config{Assoc: 2, BlockBytes: 32, CapacityBytes: 256},
	}
}

func TestOptimizeHierSingleLevelIdentical(t *testing.T) {
	// The zero-value hierarchy path must be the existing optimizer, bit for
	// bit: same program, same report.
	p := thrasher()
	q1, rep1, err := Optimize(context.Background(), p, thrashCfg(), Options{Par: testPar})
	if err != nil {
		t.Fatal(err)
	}
	q2, rep2, err := OptimizeHier(context.Background(), thrasher(), cache.Hier1(thrashCfg()), Options{Par: testPar})
	if err != nil {
		t.Fatal(err)
	}
	if isa.Fingerprint(q1) != isa.Fingerprint(q2) {
		t.Fatal("single-level OptimizeHier produced a different program than Optimize")
	}
	if rep1.TauAfter != rep2.TauAfter || rep1.Inserted != rep2.Inserted ||
		rep1.MissesAfter != rep2.MissesAfter || rep1.Validations != rep2.Validations {
		t.Fatalf("reports differ:\n %+v\n %+v", rep1, rep2)
	}
	if rep1.L2MissesBefore != 0 || rep1.L2MissesAfter != 0 {
		t.Fatalf("single-level run reported L2 misses: %+v", rep1)
	}
}

func TestOptimizeHierInvalidHierarchy(t *testing.T) {
	h := hierTestHierarchy()
	h.L2.CapacityBytes = 16 // smaller than the L1
	_, _, err := OptimizeHier(context.Background(), thrasher(), h, Options{Par: hierPar})
	if err == nil {
		t.Fatal("want error for degenerate hierarchy (L2 smaller than L1)")
	}
}

func TestOptimizeHierNeedsL2HitCycles(t *testing.T) {
	_, _, err := OptimizeHier(context.Background(), thrasher(), hierTestHierarchy(), Options{Par: testPar})
	if err == nil {
		t.Fatal("want error when an L2 is configured but Par.L2HitCycles is 0")
	}
}

func TestOptimizeHierInsertsL2Prefetches(t *testing.T) {
	p := thrasher()
	h := hierTestHierarchy()
	q, rep, err := OptimizeHier(context.Background(), p, h, Options{Par: hierPar})
	if err != nil {
		t.Fatal(err)
	}
	nL2 := 0
	for _, b := range q.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == isa.KindPrefetch && in.Level == 2 {
				nL2++
			}
		}
	}
	if nL2 == 0 {
		t.Fatalf("no Level-2 prefetches inserted; report %+v", rep)
	}
	if rep.TauAfter > rep.TauBefore {
		t.Fatalf("τ_w grew: %d -> %d", rep.TauBefore, rep.TauAfter)
	}
	if rep.L2MissesAfter >= rep.L2MissesBefore {
		t.Fatalf("L2 misses did not improve: %d -> %d", rep.L2MissesBefore, rep.L2MissesAfter)
	}
	if !isa.PrefetchEquivalent(p, q) {
		t.Fatal("output must equal input modulo prefetches")
	}
}

// TestOptimizeHierTheorem1 re-proves the Theorem 1 property against the
// hierarchy: the optimized program's WCET bound never exceeds the input's,
// and the joint WCET-scenario miss count never grows.
func TestOptimizeHierTheorem1(t *testing.T) {
	progs := []*isa.Program{
		thrasher(),
		isa.Build("cold", isa.Code(100)),
		isa.Build("nest", isa.Loop(8, 6, isa.Code(20), isa.Loop(4, 3, isa.Code(40)))),
	}
	for _, p := range progs {
		for _, pol := range []cache.Policy{cache.LRU, cache.FIFO, cache.PLRU} {
			h := hierTestHierarchy()
			h.L1.Policy = pol
			h.L2.Policy = pol
			q, rep, err := OptimizeHier(context.Background(), p, h, Options{Par: hierPar})
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, pol, err)
			}
			if rep.TauAfter > rep.TauBefore {
				t.Errorf("%s/%s: τ_w grew %d -> %d", p.Name, pol, rep.TauBefore, rep.TauAfter)
			}
			joint0 := rep.MissesBefore + rep.L2MissesBefore
			joint1 := rep.MissesAfter + rep.L2MissesAfter
			if joint1 > joint0 {
				t.Errorf("%s/%s: joint misses grew %d -> %d", p.Name, pol, joint0, joint1)
			}
			res, err := wcet.AnalyzeHier(context.Background(), q, h, hierPar)
			if err != nil {
				t.Fatalf("%s/%s: re-analysis: %v", p.Name, pol, err)
			}
			if res.TauW != rep.TauAfter {
				t.Errorf("%s/%s: report τ_w %d != fresh analysis %d", p.Name, pol, rep.TauAfter, res.TauW)
			}
		}
	}
}

// TestOptimizeHierExplainLevels checks that the explain report carries
// per-level verdicts for hierarchy runs: committed Level-2 decisions state
// the level and the per-level classifications at the use.
func TestOptimizeHierExplainLevels(t *testing.T) {
	_, rep, err := OptimizeHier(context.Background(), thrasher(), hierTestHierarchy(),
		Options{Par: hierPar, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	sawL2 := false
	for _, d := range rep.Decisions {
		if d.Inserted && d.Level == 2 {
			sawL2 = true
			if d.L1Class == "" || d.L2Class == "" {
				t.Fatalf("L2 insertion decision missing per-level classes: %+v", d)
			}
			if d.MCost <= d.PCost {
				t.Errorf("Equation 9 gap not visible: mcost %d <= pcost %d", d.MCost, d.PCost)
			}
		}
	}
	if !sawL2 {
		t.Skip("no Level-2 insertion on this geometry (covered by TestOptimizeHierInsertsL2Prefetches)")
	}
}
