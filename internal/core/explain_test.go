package core

import (
	"context"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/malardalen"
	"ucp/internal/wcet"
)

// TestExplainDecisionsMatchProgram runs the optimizer with the explain log
// on programs that actually insert (and prune) prefetches and checks the
// report's accounting invariants: decisions still marked inserted are 1:1
// with the prefetch instructions present in the optimized program — even
// though candidate keys drift across passes and the cleanup pass removes
// committed parasites — and every decision carries a verdict.
func TestExplainDecisionsMatchProgram(t *testing.T) {
	par := wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 16}
	configs := cache.Table2()

	for _, tc := range []struct {
		prog string
		cfg  int
	}{
		{"fdct", 0}, // inserts dozens, prunes parasites (k1)
		{"crc", 0},  // inserts nothing: the report must still be coherent
	} {
		bm, ok := malardalen.ByName(tc.prog)
		if !ok {
			t.Fatalf("unknown program %s", tc.prog)
		}
		q, rep, err := Optimize(context.Background(), bm.Prog, configs[tc.cfg],
			Options{Par: par, Explain: true, ValidationBudget: 150})
		if err != nil {
			t.Fatalf("%s: %v", tc.prog, err)
		}

		var inserted int
		for _, d := range rep.Decisions {
			if d.Reason == "" {
				t.Errorf("%s: decision for target %#x has no reason", tc.prog, d.Target)
			}
			if d.Inserted {
				inserted++
				if d.Reason != "inserted" {
					t.Errorf("%s: inserted decision has reason %q", tc.prog, d.Reason)
				}
				if d.MCost <= 0 {
					t.Errorf("%s: inserted decision for target %#x has mcost %d",
						tc.prog, d.Target, d.MCost)
				}
			}
		}
		if inserted != rep.Inserted {
			t.Errorf("%s: %d inserted decisions, report says %d prefetches",
				tc.prog, inserted, rep.Inserted)
		}
		if got := q.NPrefetch(); got != rep.Inserted {
			t.Errorf("%s: program has %d prefetches, report says %d",
				tc.prog, got, rep.Inserted)
		}
		if rep.Inserted > 0 && len(rep.Decisions) == 0 {
			t.Errorf("%s: prefetches inserted but no decisions logged", tc.prog)
		}
	}
}
