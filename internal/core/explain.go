package core

import "ucp/internal/isa"

// decisionLog accumulates the explain report. Decisions are keyed by
// candidateKey so each distinct candidate appears once even though the
// reverse sweep re-discovers the same replacement events every pass; a
// later decision overwrites an earlier one — the program has changed, so
// the newest verdict is the binding one — except that a committed
// insertion is never downgraded by a later screen rejection (after the
// insertion the same replacement event screens as "already-hit" or
// "duplicate", which describes the fix, not a failure).
//
// Candidate keys use original-program coordinates, which drift as
// insertions mutate the program, so two commitments in different passes
// can collide on one key while materializing two distinct prefetch
// instructions. A second insertion therefore appends a fresh decision
// rather than overwriting: inserted decisions stay 1:1 with committed
// prefetch instructions, which is what reconcilePruned counts against.
type decisionLog struct {
	idx  map[candidateKey]int
	list []Decision
}

func newDecisionLog() *decisionLog {
	return &decisionLog{idx: map[candidateKey]int{}}
}

// record stores d for key, applying the overwrite rules above, and returns
// the index the decision landed at.
func (l *decisionLog) record(key candidateKey, d Decision) int {
	if i, ok := l.idx[key]; ok {
		if l.list[i].Inserted {
			if !d.Inserted {
				return i
			}
			l.idx[key] = len(l.list)
			l.list = append(l.list, d)
			return len(l.list) - 1
		}
		l.list[i] = d
		return i
	}
	l.idx[key] = len(l.list)
	l.list = append(l.list, d)
	return len(l.list) - 1
}

// decRef pins a committed decision to the prefetch instruction it
// materialized, by current program coordinates. The coordinates are kept
// live under every later insertion and removal (the same shift rules the
// isa layer applies to prefetch targets), so the pruning pass can flip
// exactly the decisions whose instructions it deleted. Nothing weaker
// works: candidate keys and recorded targets both use coordinates frozen
// at screen time, which drift as insertions move the layout under them.
type decRef struct {
	ref isa.InstrRef
	dec int
}

// trackRemovals flips the decisions of pruned instructions. removed lists
// each deleted prefetch with the total instruction count n (prefetch +
// trailing pads) taken out at ref, in the order the removals were applied.
func (o *optimizer) trackRemovals(removed []removal) {
	if o.dec == nil {
		return
	}
	for _, rm := range removed {
		for i := 0; i < len(o.decRefs); {
			r := &o.decRefs[i]
			if r.ref.Block == rm.ref.Block {
				if r.ref.Index == rm.ref.Index {
					d := &o.dec.list[r.dec]
					d.Inserted = false
					d.Reason = "pruned"
					o.decRefs[i] = o.decRefs[len(o.decRefs)-1]
					o.decRefs = o.decRefs[:len(o.decRefs)-1]
					continue
				}
				if r.ref.Index > rm.ref.Index {
					r.ref.Index -= rm.n
				}
			}
			i++
		}
	}
}

// explainReject records a screen-stage rejection. The partially filled
// decision d carries whatever the screen had established before the
// failing check (use, gap, costs); key identity and the reason come in
// separately.
func (o *optimizer) explainReject(key candidateKey, reason string, d Decision) {
	if o.dec == nil {
		return
	}
	d.Block, d.Index, d.Target = key.block, key.index, key.target
	d.Level = key.level
	d.Lambda = o.opt.Par.Lambda
	d.Reason = reason
	o.dec.record(key, d)
}

// explainInsert records a committed insertion whose instruction landed at
// pos and occupies grown slots (prefetch + pads). Previously tracked
// instructions at or past pos shifted down by the insertion; replaying the
// commits in application order keeps every tracked coordinate current.
func (o *optimizer) explainInsert(c candidate, pos isa.InstrRef, grown int) {
	if o.dec == nil {
		return
	}
	for i := range o.decRefs {
		r := &o.decRefs[i]
		if r.ref.Block == pos.Block && r.ref.Index >= pos.Index {
			r.ref.Index += grown
		}
	}
	idx := o.dec.record(c.key, Decision{
		Block: c.key.block, Index: c.key.index, Target: c.key.target,
		Level: c.level, At: c.at, Before: c.before, Use: c.use,
		L1Class: c.l1c, L2Class: c.l2c,
		MCost: c.value, PCost: o.insertionFetchCost(c.at.Block),
		Gap: c.gap, Lambda: o.opt.Par.Lambda,
		Effective: true, Profitable: true,
		Inserted: true, Reason: "inserted",
	})
	o.decRefs = append(o.decRefs, decRef{ref: pos, dec: idx})
}

// explainValidationReject records a single-candidate validation rejection
// with the τ_w regression the re-analysis measured.
func (o *optimizer) explainValidationReject(c candidate, rcost int64) {
	if o.dec == nil {
		return
	}
	if rcost < 0 {
		rcost = 0
	}
	o.dec.record(c.key, Decision{
		Block: c.key.block, Index: c.key.index, Target: c.key.target,
		Level: c.level, At: c.at, Before: c.before, Use: c.use,
		L1Class: c.l1c, L2Class: c.l2c,
		MCost: c.value, PCost: o.insertionFetchCost(c.at.Block), RCost: rcost,
		Gap: c.gap, Lambda: o.opt.Par.Lambda,
		Effective: true, Profitable: true,
		Reason: "validation",
	})
}

// insertionFetchCost is the WCET-scenario fetch cost of one instruction
// added to the given original block: hit time × the block's total
// execution count across its VIVU contexts (prefetches are always fetched
// at hit time — they are resident by construction of the layout walk).
func (o *optimizer) insertionFetchCost(block int) int64 {
	var n int64
	for _, xb := range o.x.Blocks {
		if xb.Orig == block {
			n += o.res.Nw[xb.ID]
		}
	}
	return o.opt.Par.HitCycles * n
}
