package core

import (
	"context"
	"math/rand"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/wcet"
)

var testPar = wcet.Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}

func optimize(t *testing.T, p *isa.Program, cfg cache.Config) (*isa.Program, *Report) {
	t.Helper()
	q, rep, err := Optimize(context.Background(), p, cfg, Options{Par: testPar})
	if err != nil {
		t.Fatalf("Optimize(context.Background(), %s): %v", p.Name, err)
	}
	return q, rep
}

// thrasher is the canonical profitable scenario: a hot loop whose body
// exceeds a direct-mapped cache, so every iteration replaces blocks it will
// need again in the next iteration.
func thrasher() *isa.Program {
	return isa.Build("thrash", isa.Loop(20, 16, isa.Code(90)))
}

func thrashCfg() cache.Config {
	return cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 256}
}

func TestOptimizeInsertsOnThrashingLoop(t *testing.T) {
	p := thrasher()
	q, rep := optimize(t, p, thrashCfg())
	if rep.Inserted == 0 {
		t.Fatalf("no prefetches inserted; report = %+v", rep)
	}
	if q.NPrefetch() != rep.Inserted {
		t.Fatalf("program has %d prefetches, report says %d", q.NPrefetch(), rep.Inserted)
	}
	if rep.TauAfter >= rep.TauBefore {
		t.Fatalf("τ_w did not improve: %d -> %d", rep.TauBefore, rep.TauAfter)
	}
	if rep.MissesAfter >= rep.MissesBefore {
		t.Fatalf("WCET misses did not improve: %d -> %d", rep.MissesBefore, rep.MissesAfter)
	}
}

func TestOptimizeStraightLineColdChain(t *testing.T) {
	// Straight-line code larger than the cache: the reverse analysis (the
	// paper's Figure 1 scenario) detects the future cold/conflict misses
	// through the backward window and prefetches them ahead, converting
	// part of the cold chain into hits.
	p := isa.Build("cold", isa.Code(100))
	q, rep := optimize(t, p, thrashCfg())
	if rep.Inserted == 0 {
		t.Fatalf("no cold-chain prefetches inserted; report %+v", rep)
	}
	if rep.TauAfter >= rep.TauBefore {
		t.Fatalf("τ_w not improved: %d -> %d", rep.TauBefore, rep.TauAfter)
	}
	if !isa.PrefetchEquivalent(p, q) {
		t.Fatal("output must equal input modulo prefetches")
	}
}

func TestOptimizeFitsInCacheNoWork(t *testing.T) {
	// Everything fits: no replacements at all.
	p := isa.Build("fits", isa.Loop(10, 8, isa.Code(20)))
	_, rep := optimize(t, p, cache.Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 8192})
	if rep.Inserted != 0 {
		t.Fatalf("inserted %d prefetches although the program fits in cache", rep.Inserted)
	}
	if rep.Candidates != 0 {
		t.Fatalf("found %d replacement candidates in a fitting program", rep.Candidates)
	}
}

func randomProgram(rng *rand.Rand, name string) *isa.Program {
	var gen func(depth int) []isa.Node
	gen = func(depth int) []isa.Node {
		var nodes []isa.Node
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch k := rng.Intn(6); {
			case k < 2 || depth >= 2:
				nodes = append(nodes, isa.Code(4+rng.Intn(40)))
			case k < 4:
				nodes = append(nodes, isa.If(rng.Float64(), gen(depth+1), gen(depth+1)))
			default:
				b := 2 + rng.Intn(8)
				nodes = append(nodes, isa.Loop(b, float64(b-1), gen(depth+1)...))
			}
		}
		return nodes
	}
	return isa.Build(name, gen(0)...)
}

// Theorem 1 as a property test: over a corpus of random structured programs
// and cache configurations, the optimizer never increases τ_w and always
// returns a prefetch-equivalent program.
func TestTheorem1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(2013))
	cfgs := []cache.Config{
		{Assoc: 1, BlockBytes: 16, CapacityBytes: 256},
		{Assoc: 2, BlockBytes: 32, CapacityBytes: 512},
	}
	for i := 0; i < 12; i++ {
		p := randomProgram(rng, "t1")
		for _, cfg := range cfgs {
			q, rep, err := Optimize(context.Background(), p, cfg, Options{Par: testPar})
			if err != nil {
				t.Fatalf("program %d: %v", i, err)
			}
			if rep.TauAfter > rep.TauBefore {
				t.Fatalf("program %d cfg %v: τ_w increased %d -> %d", i, cfg, rep.TauBefore, rep.TauAfter)
			}
			if !isa.PrefetchEquivalent(p, q) {
				t.Fatalf("program %d: not prefetch-equivalent", i)
			}
			if rep.MissesAfter > rep.MissesBefore {
				t.Fatalf("program %d: WCET misses increased", i)
			}
			// Independent re-verification with a fresh analysis.
			before, err := wcet.Analyze(context.Background(), p, cfg, testPar)
			if err != nil {
				t.Fatal(err)
			}
			after, err := wcet.Analyze(context.Background(), q, cfg, testPar)
			if err != nil {
				t.Fatal(err)
			}
			if after.TauW > before.TauW {
				t.Fatalf("program %d: independent check: τ_w %d -> %d", i, before.TauW, after.TauW)
			}
			if before.TauW != rep.TauBefore || after.TauW != rep.TauAfter {
				t.Fatalf("program %d: report disagrees with fresh analysis", i)
			}
		}
	}
}

func TestInsertedPrefetchesAreWellFormed(t *testing.T) {
	p := thrasher()
	q, rep := optimize(t, p, thrashCfg())
	if rep.Inserted == 0 {
		t.Skip("scenario produced no insertions")
	}
	if err := isa.Validate(q); err != nil {
		t.Fatalf("optimized program invalid: %v", err)
	}
	for _, b := range q.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != isa.KindPrefetch {
				continue
			}
			tgt := q.Blocks[in.Target.Block]
			if in.Target.Index >= len(tgt.Instrs) {
				t.Fatal("dangling prefetch target")
			}
			if tgt.Instrs[in.Target.Index].Kind == isa.KindPrefetch {
				t.Fatal("prefetch targets another prefetch (Equation 9 forbids this)")
			}
		}
	}
}

func TestInputProgramUnmodified(t *testing.T) {
	p := thrasher()
	orig := p.Clone()
	optimize(t, p, thrashCfg())
	if p.NInstr() != orig.NInstr() {
		t.Fatal("Optimize mutated its input")
	}
	for bi := range p.Blocks {
		for ii := range p.Blocks[bi].Instrs {
			if p.Blocks[bi].Instrs[ii] != orig.Blocks[bi].Instrs[ii] {
				t.Fatal("Optimize mutated input instructions")
			}
		}
	}
}

func TestMaxInsertionsCap(t *testing.T) {
	p := thrasher()
	q, rep, err := Optimize(context.Background(), p, thrashCfg(), Options{Par: testPar, MaxInsertions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted > 2 || q.NPrefetch() > 2 {
		t.Fatalf("cap ignored: %d insertions", rep.Inserted)
	}
}

func TestDisableValidationStillEquivalent(t *testing.T) {
	p := thrasher()
	q, _, err := Optimize(context.Background(), p, thrashCfg(), Options{Par: testPar, DisableValidation: true, MaxInsertions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !isa.PrefetchEquivalent(p, q) {
		t.Fatal("ablated optimizer broke prefetch equivalence")
	}
}

func TestReportCountsConsistent(t *testing.T) {
	p := thrasher()
	_, rep := optimize(t, p, thrashCfg())
	rejected := rep.RejectedTerminator + rep.RejectedNoUse + rep.RejectedAlreadyHit +
		rep.RejectedIneffective + rep.RejectedTargetIsPft + rep.RejectedDuplicate +
		rep.RejectedValidation
	if rep.Inserted+rejected > rep.Candidates {
		t.Fatalf("more outcomes (%d+%d) than candidates (%d)", rep.Inserted, rejected, rep.Candidates)
	}
	if rep.Passes < 1 {
		t.Fatal("at least one pass must run")
	}
	if rep.FetchesAfter < rep.FetchesBefore {
		t.Fatalf("WCET fetches decreased: %d -> %d", rep.FetchesBefore, rep.FetchesAfter)
	}
}
