package flight

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoExecutesOnceForConcurrentCallers(t *testing.T) {
	g := New[int](nil)
	var execs atomic.Int64
	release := make(chan struct{})

	const callers = 16
	var wg sync.WaitGroup
	vals := make([]int, callers)
	joins := make([]bool, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], joins[i], errs[i] = g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
				execs.Add(1)
				<-release
				return 42, nil
			})
		}(i)
	}
	// Let every caller reach the flight before releasing it.
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	leaders := 0
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if vals[i] != 42 {
			t.Fatalf("caller %d got %d, want 42", i, vals[i])
		}
		if !joins[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers report leading the flight, want 1", leaders)
	}
	if g.InFlight() != 0 {
		t.Fatal("flight still registered after completion")
	}
}

// TestWaiterCancelDoesNotCancelFlight: the acceptance property from the
// issue — canceling one waiter must not cancel the flight.
func TestWaiterCancelDoesNotCancelFlight(t *testing.T) {
	g := New[string](nil)
	started := make(chan struct{})
	release := make(chan struct{})
	var flightCanceled atomic.Bool

	fn := func(ctx context.Context) (string, error) {
		close(started)
		select {
		case <-release:
			return "done", nil
		case <-ctx.Done():
			flightCanceled.Store(true)
			return "", ctx.Err()
		}
	}

	leaderRes := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", fn)
		leaderRes <- err
	}()
	<-started

	// Second caller joins, then gives up.
	wctx, wcancel := context.WithCancel(context.Background())
	waiterRes := make(chan error, 1)
	go func() {
		_, joined, err := g.Do(wctx, "k", fn)
		if !joined {
			t.Error("second caller should have joined the flight")
		}
		waiterRes <- err
	}()
	time.Sleep(10 * time.Millisecond)
	wcancel()
	if err := <-waiterRes; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}

	close(release)
	if err := <-leaderRes; err != nil {
		t.Fatalf("leader got %v after a sibling waiter canceled, want nil", err)
	}
	if flightCanceled.Load() {
		t.Fatal("flight context was canceled by a departing waiter")
	}
}

// TestLastWaiterCancelStopsFlight: when nobody is waiting anymore, the
// execution context is canceled so the worker is freed.
func TestLastWaiterCancelStopsFlight(t *testing.T) {
	g := New[string](nil)
	started := make(chan struct{})
	stopped := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(fctx context.Context) (string, error) {
			close(started)
			<-fctx.Done()
			close(stopped)
			return "", fctx.Err()
		})
		res <- err
	}()
	<-started
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("execution context was not canceled after the last waiter left")
	}
}

// TestSequentialCallsReexecute: flights do not memoize — a caller arriving
// after completion starts a new execution (memoization is the result
// cache's job).
func TestSequentialCallsReexecute(t *testing.T) {
	g := New[int](nil)
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		v, joined, err := g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
			return int(execs.Add(1)), nil
		})
		if err != nil || joined || v != i+1 {
			t.Fatalf("call %d: v=%d joined=%v err=%v", i, v, joined, err)
		}
	}
}

// TestErrorsAreShared: every waiter of a failing flight sees the same
// error.
func TestErrorsAreShared(t *testing.T) {
	g := New[int](nil)
	boom := errors.New("boom")
	release := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
				<-release
				return 0, boom
			})
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: %v, want boom", i, err)
		}
	}
}

// TestBaseContextBoundsExecution: the group's Base factory, not any
// waiter, decides the execution's deadline.
func TestBaseContextBoundsExecution(t *testing.T) {
	g := New[int](func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), 20*time.Millisecond)
	})
	_, _, err := g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline from the base context", err)
	}
}

// TestDistinctKeysRunConcurrently: different keys never wait on each
// other.
func TestDistinctKeysRunConcurrently(t *testing.T) {
	g := New[int](nil)
	var running atomic.Int64
	peak := make(chan int64, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(context.Background(), string(rune('a'+i)), func(ctx context.Context) (int, error) {
				peak <- running.Add(1)
				time.Sleep(20 * time.Millisecond)
				running.Add(-1)
				return 0, nil
			})
		}(i)
	}
	wg.Wait()
	max := int64(0)
	close(peak)
	for v := range peak {
		if v > max {
			max = v
		}
	}
	if max != 2 {
		t.Fatalf("peak concurrent flights = %d, want 2", max)
	}
}
