// Package flight coalesces concurrent identical work: when N callers ask
// for the same key at once, one execution runs and all N wait on it — the
// singleflight pattern, specialized for the analysis service's
// thundering-herd problem (a sweep fan-out or a retry storm issuing the
// same content-addressed analysis many times within one pipeline latency).
//
// The crucial difference from a bare sync/singleflight: the execution does
// NOT run on any single waiter's context. It runs on a context minted by
// the group's Base factory (the server's lifetime plus its own timeout),
// so a waiter that gives up — client disconnect, per-request deadline —
// detaches without cancelling the flight the other waiters are riding.
// Only when the last waiter detaches is the execution cancelled: nobody
// wants the answer anymore, so finishing it would waste a worker.
package flight

import (
	"context"
	"sync"
)

// Group deduplicates executions by key. The zero value is not usable;
// construct with New.
type Group[V any] struct {
	// base mints the context an execution runs on. It must be independent
	// of any caller's request context.
	base func() (context.Context, context.CancelFunc)

	mu    sync.Mutex
	calls map[string]*call[V]
}

// call is one in-flight execution and its waiters.
type call[V any] struct {
	done    chan struct{} // closed when val/err are final
	val     V
	err     error
	waiters int                // callers currently waiting; guarded by Group.mu
	cancel  context.CancelFunc // cancels the execution context
}

// New returns a Group whose executions run on contexts minted by base.
// A nil base means context.Background() — executions then outlive every
// caller until they finish on their own.
func New[V any](base func() (context.Context, context.CancelFunc)) *Group[V] {
	if base == nil {
		base = func() (context.Context, context.CancelFunc) {
			return context.WithCancel(context.Background())
		}
	}
	return &Group[V]{base: base, calls: map[string]*call[V]{}}
}

// Do returns the result of fn for key, executing fn exactly once however
// many callers ask concurrently. The first caller becomes the leader: fn
// runs in its own goroutine on a Base-minted context. Later callers join
// as waiters; joined reports that this caller shared a flight another
// caller started.
//
// ctx governs only this caller's wait. When it ends, the caller detaches
// with ctx's cause while the flight keeps running for the remaining
// waiters; when the last waiter detaches, the flight's context is
// cancelled and fn unwinds cooperatively. fn must honor its context and
// must not panic (wrap with pool.Recover or equivalent when it might).
func (g *Group[V]) Do(ctx context.Context, key string, fn func(ctx context.Context) (V, error)) (v V, joined bool, err error) {
	g.mu.Lock()
	c, ok := g.calls[key]
	if ok {
		c.waiters++
		g.mu.Unlock()
		return g.wait(ctx, key, c, true)
	}
	execCtx, cancel := g.base()
	c = &call[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		val, ferr := fn(execCtx)
		g.mu.Lock()
		// Remove the call before publishing: a caller arriving after the
		// flight completed must start a fresh one (the result may have
		// been cache-published by fn, but that is the caller's concern).
		delete(g.calls, key)
		g.mu.Unlock()
		c.val, c.err = val, ferr
		close(c.done)
		cancel()
	}()
	return g.wait(ctx, key, c, false)
}

// wait blocks until the flight completes or the caller's ctx ends,
// detaching the caller in the latter case.
func (g *Group[V]) wait(ctx context.Context, key string, c *call[V], joined bool) (V, bool, error) {
	select {
	case <-c.done:
		return c.val, joined, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			// Last interested caller is gone: stop the execution. The
			// flight goroutine still runs to completion (fn returns its
			// cancellation error) and unregisters itself.
			c.cancel()
		}
		g.mu.Unlock()
		var zero V
		return zero, joined, context.Cause(ctx)
	}
}

// InFlight reports how many executions are currently running (for tests
// and introspection).
func (g *Group[V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
