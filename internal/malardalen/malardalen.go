// Package malardalen provides the 37 benchmark programs of the evaluation
// (the paper's Table 1). The originals are the C programs of the Mälardalen
// WCET benchmark suite; since this reproduction works on a synthetic IR (see
// DESIGN.md), each program is rebuilt with the builder combinators so that
// its *control structure* — loop nesting, bounds, branchiness — and its
// *relative code size* mirror the original. Cache and WCET behavior depend
// on exactly those properties, not on the C semantics.
//
// Programs are listed alphabetically and labeled p1..p37 like the paper's
// Table 1.
package malardalen

import (
	"sort"

	"ucp/internal/isa"
)

// Benchmark is one suite entry.
type Benchmark struct {
	// ID is the paper's label (p1..p37, alphabetical).
	ID string
	// Name is the Mälardalen program name.
	Name string
	// Prog is the synthetic reconstruction.
	Prog *isa.Program
	// Note says which traits of the original the reconstruction keeps.
	Note string
}

type spec struct {
	name  string
	note  string
	build func() *isa.Program
}

var specs = []spec{
	{"adpcm", "ADPCM encoder/decoder: one sample loop over branchy quantizer sections with small inner filter loops", adpcm},
	{"bs", "binary search over 15 entries: short data-dependent loop with a three-way decision", bs},
	{"bsort100", "bubble sort of 100 elements: triangular double loop with a swap branch", bsort100},
	{"cnt", "counts non-negatives in a 10×10 matrix: double loop with a sign branch", cnt},
	{"compress", "data compression skeleton: scan loop with hash-hit branch and emit paths", compress},
	{"cover", "coverage torture test: loops over very wide switch cascades", cover},
	{"crc", "CRC over 40 bytes: byte loop with an 8-round bit loop and xor branch", crc},
	{"duff", "Duff's device copy: unrolled straight-line switch entry plus residual loop", duff},
	{"edn", "EDN DSP kernels: a sequence of FIR/latsynth style double loops", edn},
	{"expint", "exponential integral: outer series loop with inner product loop and guard", expint},
	{"fac", "factorial of 5, called for 6 values: two tiny nested loops", fac},
	{"fdct", "fast DCT: two long unrolled straight-line passes", fdct},
	{"fft1", "1024-point FFT: log-depth outer loop, butterfly double loop, twiddle branches", fft1},
	{"fibcall", "iterative Fibonacci(30): one tiny counted loop", fibcall},
	{"fir", "FIR filter over 700 samples with a 32-tap MAC loop", fir},
	{"insertsort", "insertion sort of 10 keys: triangular nested loops with early-exit branch", insertsort},
	{"janne_complex", "two nested loops whose trip counts interact through mode branches", janneComplex},
	{"jfdctint", "integer JPEG DCT: two unrolled row/column passes", jfdctint},
	{"lcdnum", "LCD digit driver: short loop over a 10-way switch", lcdnum},
	{"lms", "LMS adaptive filter: sample loop with coefficient-update inner loop", lms},
	{"ludcmp", "LU decomposition of a 6×6 system: triple nested triangular loops with pivot branches", ludcmp},
	{"matmult", "20×20 matrix multiply: perfectly nested triple loop with a tiny MAC body", matmult},
	{"minver", "3×3 matrix inversion: a chain of small loops and singularity branches", minver},
	{"ndes", "DES-like block cipher: 16-round loop over permutation/sbox inner loops", ndes},
	{"ns", "4-dimensional array search: four nested loops with a match branch", ns},
	{"nsichneu", "Petri-net simulation: two automaton iterations over a very large guarded-action cascade", nsichneu},
	{"prime", "primality test: trial-division loop with divisibility branches", prime},
	{"qsort-exam", "quicksort of 20 floats: partition double loop under a depth loop (recursion flattened)", qsortExam},
	{"qurt", "quadratic root finder: Newton iteration loop with discriminant branches", qurt},
	{"recursion", "recursive Fibonacci, flattened to a bounded call-depth loop with branchy body", recursion},
	{"select", "k-th smallest selection: partition loops like qsort but single-sided", selectKth},
	{"sqrt", "integer square root by Newton iteration: one short loop with a convergence branch", sqrtProg},
	{"st", "statistics package: five sequential passes (sum, mean, var, corr) over 1000 samples", st},
	{"statemate", "generated statechart engine: one step loop over wide state-predicate cascades", statemate},
	{"ud", "LU-based linear solver on a 5×5 system: forward/backward triangular loop nests", ud},
	{"whet", "Whetstone-like synthetic: module loops around long arithmetic straight-line blocks", whet},
	{"minmax", "min/max of three values: tiny branch diamond cascade, no loops", minmax},
}

// All builds the whole suite, alphabetically ordered with IDs assigned like
// Table 1.
func All() []Benchmark {
	ss := append([]spec(nil), specs...)
	sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
	out := make([]Benchmark, len(ss))
	for i, s := range ss {
		out[i] = Benchmark{
			ID:   "p" + itoa(i+1),
			Name: s.name,
			Prog: s.build(),
			Note: s.note,
		}
	}
	return out
}

// ByName builds one benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names lists the suite alphabetically.
func Names() []string {
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.name)
	}
	sort.Strings(out)
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v -= v % 10
		v /= 10
	}
	return string(buf[i:])
}

// Shorthand aliases to keep the program definitions readable.
var (
	c  = isa.Code
	s  = isa.S
	l  = isa.Loop
	fi = isa.If
	ft = isa.IfThen
)

func adpcm() *isa.Program {
	// ~5.6 KB of text: one sample loop over branchy quantizer sections with
	// small inner filter loops, preceded by large table-setup code.
	quantize := fi(0.5,
		s(c(120), ft(0.4, c(80))),
		s(c(110), ft(0.6, c(60))),
	)
	return isa.Build("adpcm",
		c(160), // setup, tables
		l(240, 230,
			c(90),
			quantize,
			l(6, 6, c(64)), // filter
			fi(0.3, s(c(100)), s(c(50))),
			l(4, 4, c(40)), // predictor update
			c(70),
		),
		c(80),
	)
}

func bs() *isa.Program {
	return isa.Build("bs",
		c(10),
		l(4, 3, // log2(15) probes
			c(8),
			fi(0.4, s(c(6)), s(ft(0.5, c(5)), c(4))),
		),
		c(5),
	)
}

func bsort100() *isa.Program {
	return isa.Build("bsort100",
		c(20),
		l(100, 100,
			c(10),
			l(99, 99,
				c(22),
				ft(0.5, c(26)), // swap
			),
		),
		c(10),
	)
}

func cnt() *isa.Program {
	return isa.Build("cnt",
		c(22),
		l(10, 10,
			c(8),
			l(10, 10,
				c(14),
				fi(0.85, s(c(12)), s(c(9))),
			),
		),
		c(12),
	)
}

func compress() *isa.Program {
	return isa.Build("compress",
		c(90),
		l(200, 195,
			c(50),
			fi(0.8,
				s(c(70), ft(0.2, c(90))),  // hash hit, maybe collision chain
				s(c(100), l(3, 2, c(30))), // miss: insert + probe loop
			),
			ft(0.2, c(110)), // emit block
			c(30),
		),
		c(60),
	)
}

func cover() *isa.Program {
	bigSwitch := func(cases, size int) isa.Node {
		w := make([]float64, cases)
		cs := make([][]isa.Node, cases)
		for i := range cs {
			w[i] = 1
			cs[i] = s(c(size))
		}
		return isa.Switch(w, cs...)
	}
	return isa.Build("cover",
		c(10),
		l(60, 58, bigSwitch(24, 6), c(3)),
		l(60, 58, bigSwitch(16, 8), c(3)),
		l(60, 58, bigSwitch(10, 11), c(3)),
		c(8),
	)
}

func crc() *isa.Program {
	return isa.Build("crc",
		c(40),
		l(256, 256,
			c(20),
			l(8, 8,
				c(12),
				fi(0.5, s(c(14)), s(c(6))), // xor with polynomial or shift
			),
		),
		c(24),
	)
}

func duff() *isa.Program {
	return isa.Build("duff",
		c(16),
		isa.Switch([]float64{1, 1, 1, 1}, s(c(52)), s(c(40)), s(c(28)), s(c(16))), // unrolled entry
		l(40, 38, c(68)), // 8-fold unrolled copy body
		c(10),
	)
}

func edn() *isa.Program {
	return isa.Build("edn",
		c(40),
		l(100, 100, c(20), l(8, 8, c(26))), // vec_mpy / mac
		l(50, 50, c(24), ft(0.9, c(22))),   // fir with saturation branch
		l(20, 20, c(16), l(10, 10, c(32))), // latsynth
		l(16, 16, c(44)),                   // iir
		c(30),
	)
}

func expint() *isa.Program {
	return isa.Build("expint",
		c(24),
		fi(0.5,
			s(l(30, 22, c(22), ft(0.3, c(16)))),
			s(l(20, 14, c(16), l(5, 5, c(12)))),
		),
		c(14),
	)
}

func fac() *isa.Program {
	return isa.Build("fac",
		c(8),
		l(6, 6, c(5), l(5, 5, c(6))),
		c(6),
	)
}

func fdct() *isa.Program {
	return isa.Build("fdct",
		c(16),
		l(8, 8, c(280)), // row pass, unrolled butterfly
		l(8, 8, c(300)), // column pass
		c(12),
	)
}

func fft1() *isa.Program {
	return isa.Build("fft1",
		c(50),
		l(10, 10, // log2(1024) stages
			c(24),
			l(64, 64,
				c(30),
				fi(0.5, s(c(36)), s(c(28))), // twiddle selection
				l(4, 3, c(20)),              // butterfly core
			),
		),
		l(16, 16, ft(0.5, c(24)), c(12)), // bit-reversal pass
		c(30),
	)
}

func fibcall() *isa.Program {
	return isa.Build("fibcall",
		c(6),
		l(30, 30, c(6)),
		c(4),
	)
}

func fir() *isa.Program {
	return isa.Build("fir",
		c(20),
		l(256, 256,
			c(12),
			l(32, 32, c(9)), // MAC taps
			ft(0.1, c(10)),  // saturation
		),
		c(12),
	)
}

func insertsort() *isa.Program {
	return isa.Build("insertsort",
		c(12),
		l(10, 9,
			c(8),
			l(9, 4,
				c(10),
				fi(0.5, s(c(10)), s(c(4))), // shift or stop
			),
		),
		c(6),
	)
}

func janneComplex() *isa.Program {
	return isa.Build("janne_complex",
		c(8),
		l(30, 16,
			c(7),
			fi(0.4, s(c(10)), s(c(6))),
			l(11, 6,
				c(9),
				fi(0.5, s(c(8), ft(0.5, c(6))), s(c(4))),
			),
		),
		c(6),
	)
}

func jfdctint() *isa.Program {
	return isa.Build("jfdctint",
		c(20),
		l(8, 8, c(330)),
		l(8, 8, c(350)),
		c(16),
	)
}

func lcdnum() *isa.Program {
	w := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	cs := make([][]isa.Node, 10)
	for i := range cs {
		cs[i] = s(c(8))
	}
	return isa.Build("lcdnum",
		c(8),
		l(10, 10, c(5), isa.Switch(w, cs...), c(4)),
		c(5),
	)
}

func lms() *isa.Program {
	return isa.Build("lms",
		c(50),
		l(201, 198,
			c(36),
			l(32, 32, c(14)), // filter
			c(26),
			l(32, 32, c(18)), // coefficient update
			ft(0.3, c(36)),   // normalization
		),
		c(30),
	)
}

func ludcmp() *isa.Program {
	return isa.Build("ludcmp",
		c(44),
		l(6, 6,
			c(26),
			l(6, 4, c(20), l(6, 3, c(24))),
			ft(0.2, c(40)), // pivot fix-up
			l(6, 4, c(28)),
		),
		l(6, 6, c(20), l(6, 3, c(26))), // forward substitution
		l(6, 6, c(20), l(6, 3, c(26))), // backward substitution
		c(30),
	)
}

func matmult() *isa.Program {
	return isa.Build("matmult",
		c(24),
		l(20, 20,
			c(8),
			l(20, 20,
				c(10),
				l(20, 20, c(14)),
				c(8),
			),
		),
		c(12),
	)
}

func minver() *isa.Program {
	return isa.Build("minver",
		c(40),
		l(3, 3, c(20), l(3, 3, c(26))),
		ft(0.1, c(30)), // singular matrix bail-out
		l(3, 3,
			c(26),
			l(3, 2, c(30), ft(0.5, c(22))),
			l(3, 3, c(26)),
		),
		l(3, 3, c(18), l(3, 3, c(22))),
		c(30),
	)
}

func ndes() *isa.Program {
	return isa.Build("ndes",
		c(80),
		l(8, 8, c(22), l(8, 8, c(18))), // key schedule
		l(16, 16, // rounds
			c(40),
			l(8, 8, c(26)),                 // expansion
			l(8, 8, c(24), ft(0.9, c(12))), // s-boxes
			l(4, 4, c(32)),                 // permutation
			c(34),
		),
		l(8, 8, c(20)), // final permutation
		c(40),
	)
}

func ns() *isa.Program {
	return isa.Build("ns",
		c(16),
		l(5, 5,
			c(8),
			l(5, 5,
				c(8),
				l(5, 5,
					c(8),
					l(5, 4,
						c(12),
						fi(0.1, s(c(14)), s(c(6))), // match found
					),
				),
			),
		),
		c(10),
	)
}

func nsichneu() *isa.Program {
	// Hundreds of guarded Petri-net transitions, each "if (enabled) fire".
	guards := make([]isa.Node, 0, 320)
	for i := 0; i < 160; i++ {
		size := 14 + (i*7)%11
		guards = append(guards, ft(0.8, c(size)))
		guards = append(guards, c(5))
	}
	return isa.Build("nsichneu",
		c(20),
		l(2, 2, guards...),
		c(10),
	)
}

func prime() *isa.Program {
	return isa.Build("prime",
		c(14),
		ft(0.5, c(8)),
		l(45, 42,
			c(12),
			fi(0.3, s(c(8)), s(c(4))), // divisible?
		),
		c(8),
	)
}

func qsortExam() *isa.Program {
	return isa.Build("qsort-exam",
		c(30),
		l(10, 7, // stack depth loop (recursion flattened)
			c(30),
			l(20, 12, c(18), ft(0.5, c(14))), // partition left scan
			l(20, 12, c(18), ft(0.5, c(14))), // partition right scan
			fi(0.5, s(c(26)), s(c(16))),      // push/pop
		),
		c(16),
	)
}

func qurt() *isa.Program {
	return isa.Build("qurt",
		c(44),
		fi(0.3,
			s(c(40)), // complex roots path
			s(l(20, 12, c(32), ft(0.4, c(18)))),
		),
		c(26),
	)
}

func recursion() *isa.Program {
	return isa.Build("recursion",
		c(8),
		l(25, 20,
			c(7),
			fi(0.5, s(c(8), ft(0.5, c(6))), s(c(4))),
		),
		c(6),
	)
}

func selectKth() *isa.Program {
	return isa.Build("select",
		c(24),
		l(8, 5,
			c(22),
			l(20, 10, c(14), ft(0.5, c(12))),
			l(20, 10, c(14), ft(0.5, c(12))),
			fi(0.5, s(c(18)), s(c(10))),
		),
		c(14),
	)
}

func sqrtProg() *isa.Program {
	return isa.Build("sqrt",
		c(14),
		l(19, 19, c(16), ft(0.2, c(8))),
		c(8),
	)
}

func st() *isa.Program {
	return isa.Build("st",
		c(30),
		l(1000, 1000, c(16)),                 // sum
		l(1000, 1000, c(20)),                 // mean/dev
		l(1000, 1000, c(24), ft(0.9, c(10))), // variance
		l(1000, 1000, c(30)),                 // correlation
		c(26),
	)
}

func statemate() *isa.Program {
	// Generated statechart code: a step loop over long predicate cascades.
	var cascades []isa.Node
	for i := 0; i < 76; i++ {
		size := 22 + (i*5)%15
		cascades = append(cascades, fi(0.85, s(c(size)), s(c(8))))
	}
	return isa.Build("statemate",
		c(30),
		l(40, 36, cascades...),
		c(16),
	)
}

func ud() *isa.Program {
	return isa.Build("ud",
		c(30),
		l(5, 5, c(16), l(5, 3, c(20), l(5, 3, c(16)))),
		l(5, 5, c(16), l(5, 3, c(18))),
		l(5, 5, c(14), l(5, 3, c(16))),
		c(16),
	)
}

func whet() *isa.Program {
	return isa.Build("whet",
		c(24),
		l(50, 50, c(110)),                 // module 1: floating arithmetic
		l(40, 40, c(90), ft(0.95, c(24))), // module 2
		l(30, 30, c(120)),                 // module 3: trig block
		l(40, 40, c(76)),                  // module 4
		c(20),
	)
}

func minmax() *isa.Program {
	return isa.Build("minmax",
		c(8),
		fi(0.5, s(c(6), ft(0.5, c(5))), s(c(7))),
		fi(0.5, s(c(6)), s(c(5), ft(0.5, c(4)))),
		c(6),
	)
}
