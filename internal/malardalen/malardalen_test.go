package malardalen

import (
	"context"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/sim"
	"ucp/internal/vivu"
	"ucp/internal/wcet"
)

func TestSuiteHas37Programs(t *testing.T) {
	all := All()
	if len(all) != 37 {
		t.Fatalf("suite has %d programs, want 37 (Table 1)", len(all))
	}
	seen := map[string]bool{}
	for i, b := range all {
		if b.ID != "p"+itoa(i+1) {
			t.Errorf("%s labeled %s, want p%d", b.Name, b.ID, i+1)
		}
		if seen[b.Name] {
			t.Errorf("duplicate program %s", b.Name)
		}
		seen[b.Name] = true
		if i > 0 && all[i-1].Name >= b.Name {
			t.Errorf("suite not alphabetical at %s", b.Name)
		}
		if b.Note == "" {
			t.Errorf("%s lacks a reconstruction note", b.Name)
		}
	}
}

func TestEveryProgramValidatesAndExpands(t *testing.T) {
	for _, b := range All() {
		if err := isa.Validate(b.Prog); err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if _, err := vivu.Expand(b.Prog); err != nil {
			t.Errorf("%s: expand: %v", b.Name, err)
		}
	}
}

func TestEveryProgramAnalyzesAndRuns(t *testing.T) {
	par := wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 16}
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	for _, b := range All() {
		res, err := wcet.Analyze(context.Background(), b.Prog, cfg, par)
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if res.TauW <= 0 {
			t.Errorf("%s: non-positive WCET", b.Name)
		}
		st := sim.Run(b.Prog, cfg, sim.Options{Par: par, Runs: 1, Seed: 3})
		if st.Fetches == 0 {
			t.Errorf("%s: simulated zero fetches", b.Name)
		}
		// The WCET bound must dominate any simulated run.
		if st.Cycles > res.TauW {
			t.Errorf("%s: simulated %d cycles exceeds WCET bound %d", b.Name, st.Cycles, res.TauW)
		}
	}
}

func TestSizeSpreadCoversCacheLadder(t *testing.T) {
	// The suite must straddle the 256B..8KB ladder: some programs below
	// 512B of text, some above 8KB, most in between.
	var small, large int
	for _, b := range All() {
		bytes := b.Prog.NInstr() * isa.InstrBytes
		if bytes <= 512 {
			small++
		}
		if bytes >= 8192 {
			large++
		}
	}
	if small < 3 {
		t.Errorf("only %d programs under 512B of text", small)
	}
	if large < 2 {
		t.Errorf("only %d programs over 8KB of text", large)
	}
}

func TestMissRateBandAcrossConfigs(t *testing.T) {
	// The paper selected configurations so the pre-optimization average
	// miss rate spans roughly 1..10%. Check the suite reproduces a wide
	// band across the capacity ladder.
	par := wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 16}
	var rates []float64
	for _, ci := range []int{1, 13, 25, 34} { // 256B..8KB samples
		cfg := cache.Table2()[ci]
		var sum float64
		n := 0
		for _, b := range All() {
			st := sim.Run(b.Prog, cfg, sim.Options{Par: par, Runs: 1, Seed: 5})
			sum += st.MissRate()
			n++
		}
		rates = append(rates, sum/float64(n))
	}
	if rates[0] < 0.01 {
		t.Errorf("smallest cache average miss rate %.3f, want >= 1%%", rates[0])
	}
	if rates[len(rates)-1] > 0.10 {
		t.Errorf("largest cache average miss rate %.3f, want <= 10%%", rates[len(rates)-1])
	}
	if rates[0] <= rates[len(rates)-1] {
		t.Errorf("miss rate must fall with capacity: %v", rates)
	}
}

func TestByName(t *testing.T) {
	b, ok := ByName("matmult")
	if !ok || b.Name != "matmult" {
		t.Fatal("ByName(matmult) failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("ByName should reject unknown programs")
	}
	if len(Names()) != 37 {
		t.Fatal("Names() must list all 37 programs")
	}
}

func TestNsichneuIsTheGiant(t *testing.T) {
	ns, _ := ByName("nsichneu")
	for _, b := range All() {
		if b.Name != "nsichneu" && b.Prog.NInstr() > ns.Prog.NInstr() {
			t.Fatalf("%s (%d instrs) outgrew nsichneu (%d)", b.Name, b.Prog.NInstr(), ns.Prog.NInstr())
		}
	}
}
