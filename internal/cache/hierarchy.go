package cache

import "fmt"

// Hierarchy describes a one- or two-level instruction cache: the L1
// configuration the paper's single-level model analyzes, plus an optional
// L2. The zero value of L2 (no associativity, no capacity) means "no second
// level", so a Hierarchy built from a bare L1 config behaves — and hashes —
// exactly like the single-level model. Hierarchy is comparable, which the
// analysis layers rely on for their identity checks (prev.Hier != hier).
type Hierarchy struct {
	L1 Config
	L2 Config
}

// Hier1 wraps a single-level configuration into a hierarchy with no L2.
func Hier1(l1 Config) Hierarchy { return Hierarchy{L1: l1} }

// HasL2 reports whether a second cache level is configured.
func (h Hierarchy) HasL2() bool { return h.L2 != (Config{}) }

// Valid reports whether the hierarchy is internally consistent: the L1 must
// be valid on its own; a configured L2 must be valid, at least as large as
// the L1, and use a block size that is a multiple of the L1's (so one L2
// fill covers whole L1 blocks — the geometry every multi-level cache
// analysis, including Hardy & Puaut's, assumes).
func (h Hierarchy) Valid() error {
	if err := h.L1.Valid(); err != nil {
		return err
	}
	if !h.HasL2() {
		return nil
	}
	if err := h.L2.Valid(); err != nil {
		return err
	}
	if h.L2.CapacityBytes < h.L1.CapacityBytes {
		return fmt.Errorf("cache: L2 capacity %d smaller than L1 capacity %d",
			h.L2.CapacityBytes, h.L1.CapacityBytes)
	}
	if h.L2.BlockBytes%h.L1.BlockBytes != 0 {
		return fmt.Errorf("cache: L2 block size %d not a multiple of L1 block size %d",
			h.L2.BlockBytes, h.L1.BlockBytes)
	}
	return nil
}

// String renders the hierarchy: the L1 alone for a single-level hierarchy,
// "L1+L2" otherwise.
func (h Hierarchy) String() string {
	if !h.HasL2() {
		return h.L1.String()
	}
	return h.L1.String() + "+" + h.L2.String()
}
