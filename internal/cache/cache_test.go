package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTable2MatchesPaper(t *testing.T) {
	cfgs := Table2()
	if len(cfgs) != 36 {
		t.Fatalf("Table 2 has %d entries, want 36", len(cfgs))
	}
	// Spot-check the paper's labels.
	if cfgs[0] != (Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 256}) {
		t.Fatalf("k1 = %v", cfgs[0])
	}
	if cfgs[3] != (Config{Assoc: 1, BlockBytes: 32, CapacityBytes: 256}) {
		t.Fatalf("k4 = %v", cfgs[3])
	}
	if cfgs[35] != (Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 8192}) {
		t.Fatalf("k36 = %v", cfgs[35])
	}
	if ConfigID(6) != "k7" {
		t.Fatalf("ConfigID(6) = %s", ConfigID(6))
	}
	for i, c := range cfgs {
		if err := c.Valid(); err != nil {
			t.Fatalf("config %d invalid: %v", i, err)
		}
	}
}

func TestNumSets(t *testing.T) {
	c := Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	if c.NumSets() != 16 {
		t.Fatalf("sets = %d, want 16", c.NumSets())
	}
	if c.NumBlocks() != 32 {
		t.Fatalf("blocks = %d", c.NumBlocks())
	}
	if c.SetOf(33) != 1 {
		t.Fatalf("SetOf(33) = %d", c.SetOf(33))
	}
}

func TestAccessDirectMapped(t *testing.T) {
	s := NewState(Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 64}) // 4 sets
	hit, ev := s.Access(0)
	if hit || ev != InvalidBlock {
		t.Fatalf("cold access: hit=%v ev=%v", hit, ev)
	}
	hit, _ = s.Access(0)
	if !hit {
		t.Fatal("second access must hit")
	}
	// Block 4 conflicts with block 0 (same set in a 4-set cache).
	hit, ev = s.Access(4)
	if hit || ev != 0 {
		t.Fatalf("conflicting access: hit=%v ev=%v", hit, ev)
	}
	if s.Contains(0) {
		t.Fatal("block 0 must be evicted")
	}
}

func TestLRUOrder(t *testing.T) {
	s := NewState(Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 32}) // 1 set, 2 ways
	s.Access(1)
	s.Access(2)
	if got := s.Set(0); got[0] != 2 || got[1] != 1 {
		t.Fatalf("set = %v, want [2 1]", got)
	}
	s.Access(1) // promote 1 to MRU
	if got := s.Set(0); got[0] != 1 || got[1] != 2 {
		t.Fatalf("set = %v, want [1 2]", got)
	}
	_, ev := s.Access(3)
	if ev != 2 {
		t.Fatalf("evicted %v, want 2 (the LRU)", ev)
	}
}

func TestWouldEvictDoesNotMutate(t *testing.T) {
	s := NewState(Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 32})
	s.Access(1)
	s.Access(2)
	before := s.Clone()
	if ev := s.WouldEvict(3); ev != 1 {
		t.Fatalf("WouldEvict = %v, want 1", ev)
	}
	if ev := s.WouldEvict(2); ev != InvalidBlock {
		t.Fatalf("WouldEvict(resident) = %v", ev)
	}
	if !s.Equal(before) {
		t.Fatal("WouldEvict mutated the state")
	}
}

func TestInsertRedundant(t *testing.T) {
	s := NewState(Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 32})
	s.Access(1)
	s.Access(2)
	if ev := s.Insert(2); ev != InvalidBlock {
		t.Fatalf("redundant insert evicted %v", ev)
	}
	if got := s.Set(0); got[0] != 2 {
		t.Fatal("redundant insert must promote to MRU")
	}
}

// Properties 1–3 of the paper, as a quick-check invariant: an access changes
// the resident-block set by at most {inserted} and {evicted}.
func TestAccessBlockSetDelta(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState(Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 128})
		for i := 0; i < int(n); i++ {
			before := s.Blocks()
			blk := uint64(rng.Intn(24))
			hit, ev := s.Access(blk)
			after := s.Blocks()
			if hit {
				// Property 1: hit keeps the block set unchanged.
				if len(before) != len(after) || !before[blk] {
					return false
				}
				for b := range before {
					if !after[b] {
						return false
					}
				}
				continue
			}
			// Property 2: the referenced block is now resident.
			if !after[blk] || before[blk] {
				return false
			}
			// Property 3: at most one block was replaced, and it is the
			// reported one.
			for b := range before {
				if !after[b] && b != ev {
					return false
				}
			}
			if ev != InvalidBlock && (after[ev] || !before[ev]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the set-associative implementation agrees with a straightforward
// reference model (per-set slice with explicit recency list).
func TestAgainstReferenceModel(t *testing.T) {
	type refModel struct {
		sets map[int][]uint64 // MRU first
	}
	cfg := Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 256} // 4 sets
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState(cfg)
		ref := refModel{sets: map[int][]uint64{}}
		for i := 0; i < 300; i++ {
			blk := uint64(rng.Intn(40))
			si := cfg.SetOf(blk)
			// Reference update.
			set := ref.sets[si]
			found := -1
			for j, b := range set {
				if b == blk {
					found = j
					break
				}
			}
			wantHit := found >= 0
			if found >= 0 {
				set = append(set[:found], set[found+1:]...)
			} else if len(set) == cfg.Assoc {
				set = set[:len(set)-1]
			}
			ref.sets[si] = append([]uint64{blk}, set...)

			hit, _ := s.Access(blk)
			if hit != wantHit {
				return false
			}
			got := s.Set(si)
			want := ref.sets[si]
			if len(got) != len(want) {
				return false
			}
			for j := range got {
				if got[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndReset(t *testing.T) {
	s := NewState(Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64})
	s.Access(3)
	c := s.Clone()
	c.Access(7)
	if s.Contains(7) {
		t.Fatal("clone shares storage with original")
	}
	s.Reset()
	if s.Contains(3) {
		t.Fatal("reset did not clear the cache")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Assoc: 0, BlockBytes: 16, CapacityBytes: 256},
		{Assoc: 1, BlockBytes: 2, CapacityBytes: 256},
		{Assoc: 3, BlockBytes: 16, CapacityBytes: 256}, // 256/(48) not integral
		{Assoc: 2, BlockBytes: 16, CapacityBytes: 16},
	}
	for _, c := range bad {
		if err := c.Valid(); err == nil {
			t.Errorf("config %v should be invalid", c)
		}
	}
}
