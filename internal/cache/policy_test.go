package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolicyParse(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{"", LRU}, {"lru", LRU}, {"fifo", FIFO}, {"plru", PLRU}, {"tree-plru", PLRU},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("ParsePolicy(\"random\") should fail")
	}
	for _, p := range Policies() {
		rt, err := ParsePolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round trip of %v broke: got %v, %v", p, rt, err)
		}
	}
	if Policy(9).String() != "policy(9)" {
		t.Errorf("unknown policy String() = %q", Policy(9))
	}
}

func TestPolicyConfigValidation(t *testing.T) {
	// 240 / (3·16) = 5 sets: a perfectly usable geometry, except that
	// tree-PLRU needs a power-of-two associativity.
	geo := Config{Assoc: 3, BlockBytes: 16, CapacityBytes: 240}
	for _, p := range []Policy{LRU, FIFO} {
		c := geo
		c.Policy = p
		if err := c.Valid(); err != nil {
			t.Errorf("%v should be valid: %v", c, err)
		}
	}
	c := geo
	c.Policy = PLRU
	if err := c.Valid(); err == nil {
		t.Errorf("%v should reject plru with assoc 3", c)
	}
	c = Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64, Policy: Policy(9)}
	if err := c.Valid(); err == nil {
		t.Errorf("%v should reject an unknown policy", c)
	}
	// Every Table 2 associativity is a power of two, so the whole matrix
	// supports every policy.
	for i, tc := range Table2() {
		for _, p := range Policies() {
			tc.Policy = p
			if err := tc.Valid(); err != nil {
				t.Errorf("%s with %s: %v", ConfigID(i), p, err)
			}
		}
	}
}

func TestPolicyConfigString(t *testing.T) {
	c := Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	if got := c.String(); got != "(2,16,256)" {
		t.Errorf("LRU config renders as %q; the policy suffix must stay absent", got)
	}
	c.Policy = FIFO
	if got := c.String(); got != "(2,16,256,fifo)" {
		t.Errorf("FIFO config renders as %q", got)
	}
}

// The geometry accessors must not divide by zero on unvalidated configs:
// entry points check Valid, but error paths may still render or hash a
// half-built Config.
func TestPolicyDegenerateGeometry(t *testing.T) {
	for _, c := range []Config{{}, {BlockBytes: 16}, {Assoc: 2}, {Assoc: -1, BlockBytes: 16}} {
		if n := c.NumSets(); n != 0 {
			t.Errorf("NumSets(%+v) = %d, want 0", c, n)
		}
		if n := c.SetOf(5); n != 0 {
			t.Errorf("SetOf(%+v) = %d, want 0", c, n)
		}
	}
	if n := (Config{Assoc: 1, CapacityBytes: 64}).NumBlocks(); n != 0 {
		t.Errorf("NumBlocks without a block size = %d, want 0", n)
	}
}

// Property: the FIFO implementation agrees with a straightforward reference
// model (per-set queue, newest first; a hit does not reorder).
func TestPolicyFIFOAgainstReference(t *testing.T) {
	cfg := Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 256, Policy: FIFO} // 4 sets
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState(cfg)
		ref := map[int][]uint64{}
		for i := 0; i < 300; i++ {
			blk := uint64(rng.Intn(40))
			si := cfg.SetOf(blk)
			set := ref[si]
			wantHit := false
			for _, b := range set {
				if b == blk {
					wantHit = true
					break
				}
			}
			wantEvict := InvalidBlock
			if !wantHit {
				if len(set) == cfg.Assoc {
					wantEvict = set[len(set)-1]
					set = set[:len(set)-1]
				}
				set = append([]uint64{blk}, set...)
				ref[si] = set
			}

			hit, evicted := s.Access(blk)
			if hit != wantHit || evicted != wantEvict {
				return false
			}
			got := s.Set(si)
			if len(got) != len(set) {
				return false
			}
			for j := range got {
				if got[j] != set[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The defining FIFO trait: a hit does not refresh a block's position, so the
// oldest insertion is evicted even when it was just referenced.
func TestPolicyFIFOHitDoesNotRefresh(t *testing.T) {
	s := NewState(Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 32, Policy: FIFO}) // 1 set
	s.Access(1)
	s.Access(2)
	if hit, _ := s.Access(1); !hit {
		t.Fatal("block 1 should still be resident")
	}
	if _, evicted := s.Access(3); evicted != 1 {
		t.Fatalf("FIFO evicted %d; want the oldest insertion 1 despite its recent hit", evicted)
	}
}

// For one and two ways, tree-PLRU coincides exactly with true LRU.
func TestPolicyPLRUAssoc2MatchesLRU(t *testing.T) {
	lruCfg := Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64}
	plruCfg := lruCfg
	plruCfg.Policy = PLRU
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, p := NewState(lruCfg), NewState(plruCfg)
		for i := 0; i < 200; i++ {
			blk := uint64(rng.Intn(12))
			lh, le := l.Access(blk)
			ph, pe := p.Access(blk)
			if lh != ph || le != pe {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Scripted tree-PLRU trace for four ways (one set). After filling a,b,c,d
// the bit path points at a; re-touching a moves the victim to c — the
// sequence where PLRU visibly diverges from LRU (which would evict b).
func TestPolicyPLRUKnownTrace(t *testing.T) {
	s := NewState(Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 64, Policy: PLRU})
	for _, blk := range []uint64{0, 1, 2, 3} {
		if hit, ev := s.Access(blk); hit || ev != InvalidBlock {
			t.Fatalf("cold fill of %d: hit=%v evicted=%d", blk, hit, ev)
		}
	}
	if w := s.WouldEvict(4); w != 0 {
		t.Fatalf("victim after a,b,c,d is way holding 0; WouldEvict = %d", w)
	}
	if hit, _ := s.Access(0); !hit {
		t.Fatal("0 should hit")
	}
	if _, evicted := s.Access(4); evicted != 2 {
		t.Fatalf("after touching 0, PLRU evicts 2 (LRU would evict 1); got %d", evicted)
	}
	if _, evicted := s.Access(5); evicted != 1 {
		t.Fatalf("next victim is 1; got %d", evicted)
	}
}

// Properties every policy shares: WouldEvict predicts Access without
// mutating, re-access hits, and an evicted block is gone.
func TestPolicyAccessInvariants(t *testing.T) {
	for _, pol := range Policies() {
		cfg := Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 256, Policy: pol}
		rng := rand.New(rand.NewSource(11))
		s := NewState(cfg)
		for i := 0; i < 500; i++ {
			blk := uint64(rng.Intn(48))
			predicted := s.WouldEvict(blk)
			hit, evicted := s.Access(blk)
			if hit && predicted != InvalidBlock {
				t.Fatalf("%s: WouldEvict(%d) = %d before a hit", pol, blk, predicted)
			}
			if !hit && evicted != predicted {
				t.Fatalf("%s: WouldEvict(%d) = %d but Access evicted %d", pol, blk, predicted, evicted)
			}
			if !s.Contains(blk) {
				t.Fatalf("%s: %d absent right after its access", pol, blk)
			}
			if evicted != InvalidBlock && s.Contains(evicted) {
				t.Fatalf("%s: evicted block %d still resident", pol, evicted)
			}
			if h, _ := s.Access(blk); !h {
				t.Fatalf("%s: immediate re-access of %d missed", pol, blk)
			}
		}
	}
}

// Clone/CopyFrom/Equal/Reset must carry the PLRU tree bits: two states with
// identical resident blocks but different bits are different states.
func TestPolicyPLRUCloneCarriesTreeBits(t *testing.T) {
	cfg := Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 64, Policy: PLRU}
	s := NewState(cfg)
	for _, blk := range []uint64{0, 1, 2, 3} {
		s.Access(blk)
	}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Access(0) // hit: changes only the tree bits
	if s.Equal(c) {
		t.Fatal("states with different tree bits must not compare equal")
	}
	s.CopyFrom(c)
	if !s.Equal(c) {
		t.Fatal("CopyFrom did not copy the tree bits")
	}
	s.Reset()
	if !s.Equal(NewState(cfg)) {
		t.Fatal("Reset did not restore the empty PLRU state")
	}
}

// Remove leaves a hole in the PLRU way array that the next miss refills
// without evicting anything.
func TestPolicyPLRURemoveLeavesHole(t *testing.T) {
	s := NewState(Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 64, Policy: PLRU})
	for _, blk := range []uint64{0, 1, 2, 3} {
		s.Access(blk)
	}
	s.Remove(2)
	if s.Contains(2) {
		t.Fatal("2 still resident after Remove")
	}
	if hit, evicted := s.Access(9); hit || evicted != InvalidBlock {
		t.Fatalf("the freed way should absorb the miss: hit=%v evicted=%d", hit, evicted)
	}
	for _, blk := range []uint64{0, 1, 3, 9} {
		if !s.Contains(blk) {
			t.Fatalf("%d missing after refilling the hole", blk)
		}
	}
}
