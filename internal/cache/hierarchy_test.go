package cache

import "testing"

func TestHierarchyZeroValueIsSingleLevel(t *testing.T) {
	l1 := Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	h := Hier1(l1)
	if h.HasL2() {
		t.Fatal("Hier1 must not report an L2")
	}
	if err := h.Valid(); err != nil {
		t.Fatalf("single-level hierarchy invalid: %v", err)
	}
	if h != (Hierarchy{L1: l1}) {
		t.Fatal("Hier1 must equal the zero-L2 literal")
	}
}

func TestHierarchyValid(t *testing.T) {
	l1 := Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	good := Hierarchy{L1: l1, L2: Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 8192}}
	if err := good.Valid(); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
	if !good.HasL2() {
		t.Fatal("HasL2 false for configured L2")
	}
}

func TestHierarchyValidDegenerate(t *testing.T) {
	l1 := Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	cases := []struct {
		name string
		h    Hierarchy
	}{
		{"invalid L1", Hierarchy{L1: Config{Assoc: 0, BlockBytes: 16, CapacityBytes: 1024}}},
		{"invalid L2 geometry", Hierarchy{L1: l1, L2: Config{Assoc: 3, BlockBytes: 16, CapacityBytes: 8192}}},
		{"L2 zero assoc", Hierarchy{L1: l1, L2: Config{BlockBytes: 32, CapacityBytes: 8192}}},
		{"L2 smaller than L1", Hierarchy{L1: l1, L2: Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}}},
		{"L2 block not multiple of L1", Hierarchy{L1: Config{Assoc: 2, BlockBytes: 32, CapacityBytes: 1024}, L2: Config{Assoc: 2, BlockBytes: 48, CapacityBytes: 8192}}},
		{"L2 block smaller than L1", Hierarchy{L1: Config{Assoc: 2, BlockBytes: 32, CapacityBytes: 1024}, L2: Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 8192}}},
	}
	for _, tc := range cases {
		if err := tc.h.Valid(); err == nil {
			t.Errorf("%s: Valid() accepted %+v", tc.name, tc.h)
		}
	}
}

func TestHierarchyString(t *testing.T) {
	l1 := Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	if got := Hier1(l1).String(); got != l1.String() {
		t.Fatalf("single-level String = %q, want %q", got, l1.String())
	}
	h := Hierarchy{L1: l1, L2: Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 8192}}
	want := "(2,16,1024)+(4,32,8192)"
	if got := h.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
