package cache

import "fmt"

// Policy selects the replacement policy of a cache configuration. The zero
// value is true LRU — the policy of the paper's machine model — so every
// pre-existing Config literal, the Table 2 entries, fingerprints, and cache
// keys keep their meaning unchanged.
type Policy uint8

const (
	// LRU is true least-recently-used replacement (the paper's model).
	LRU Policy = iota
	// FIFO replaces in insertion order: a hit does not touch the
	// replacement state, a miss inserts the block and evicts the oldest
	// insertion of the set.
	FIFO
	// PLRU is tree-based pseudo-LRU: one bit per internal node of a binary
	// tree over the ways points away from the most recently touched way;
	// the victim is found by following the bits. Requires a power-of-two
	// associativity. For 1 and 2 ways tree-PLRU coincides exactly with LRU.
	PLRU
)

// Policies returns every supported policy, LRU first.
func Policies() []Policy { return []Policy{LRU, FIFO, PLRU} }

// String returns the lower-case policy name used in flags, the API, and
// cache keys.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case PLRU:
		return "plru"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy resolves a policy name. The empty string is LRU, so omitted
// flags and absent JSON fields select the paper's default.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "lru":
		return LRU, nil
	case "fifo":
		return FIFO, nil
	case "plru", "tree-plru":
		return PLRU, nil
	}
	return 0, fmt.Errorf("unknown replacement policy %q (want lru, fifo or plru)", s)
}

// valid reports whether the policy is usable with the given associativity.
func (p Policy) valid(assoc int) error {
	switch p {
	case LRU, FIFO:
		return nil
	case PLRU:
		if assoc&(assoc-1) != 0 {
			return fmt.Errorf("cache: plru needs a power-of-two associativity, got %d", assoc)
		}
		return nil
	}
	return fmt.Errorf("cache: unknown replacement policy %d", uint8(p))
}

// --- FIFO concrete state -------------------------------------------------
//
// FIFO shares the LRU representation (sets[si][0] is the newest entry), but
// order means insertion order, and a hit leaves it untouched.

func (s *State) fifoAccess(block uint64) (hit bool, evicted uint64) {
	si := s.cfg.SetOf(block)
	for _, b := range s.sets[si] {
		if b == block {
			return true, InvalidBlock
		}
	}
	return false, s.pushFront(si, block)
}

// pushFront inserts block as the newest entry of set si, evicting the
// oldest entry when the set is full (the shared miss path of LRU and FIFO).
func (s *State) pushFront(si int, block uint64) (evicted uint64) {
	set := s.sets[si]
	evicted = InvalidBlock
	if len(set) < s.cfg.Assoc {
		set = append(set, 0)
	} else {
		evicted = set[len(set)-1]
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = block
	s.sets[si] = set
	return evicted
}

// --- tree-PLRU concrete state --------------------------------------------
//
// The ways of a set are fixed slots (sets[si] has length assoc, with
// InvalidBlock marking empty ways) and plru[si] holds the tree bits,
// heap-indexed: node 1 is the root, node n's children are 2n and 2n+1, and
// the leaves n ∈ [assoc, 2·assoc) map to way n−assoc. Bit 0 points the
// victim search left, bit 1 right; touching a way flips the bits on its
// root path away from it.

func (s *State) plruAccess(block uint64) (hit bool, evicted uint64) {
	si := s.cfg.SetOf(block)
	ways := s.sets[si]
	for w, b := range ways {
		if b == block {
			s.plruTouch(si, w)
			return true, InvalidBlock
		}
	}
	w := -1
	for i, b := range ways {
		if b == InvalidBlock {
			w = i
			break
		}
	}
	evicted = InvalidBlock
	if w < 0 {
		w = s.plruVictim(si)
		evicted = ways[w]
	}
	ways[w] = block
	s.plruTouch(si, w)
	return false, evicted
}

// plruVictim follows the tree bits from the root to the pseudo-LRU way.
func (s *State) plruVictim(si int) int {
	assoc := s.cfg.Assoc
	node := 1
	for node < assoc {
		node = 2*node + int(s.plru[si]>>uint(node)&1)
	}
	return node - assoc
}

// plruTouch points every bit on way w's root path away from it.
func (s *State) plruTouch(si, w int) {
	for node := s.cfg.Assoc + w; node > 1; node /= 2 {
		parent := node / 2
		if node&1 == 1 {
			// Came from the right child: the victim side is the left.
			s.plru[si] &^= 1 << uint(parent)
		} else {
			s.plru[si] |= 1 << uint(parent)
		}
	}
}

func (s *State) plruWouldEvict(block uint64) uint64 {
	si := s.cfg.SetOf(block)
	for _, b := range s.sets[si] {
		if b == block || b == InvalidBlock {
			return InvalidBlock
		}
	}
	return s.sets[si][s.plruVictim(si)]
}
