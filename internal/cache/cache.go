// Package cache models a set-associative instruction cache with true-LRU
// replacement: the configuration space of the paper's Table 2 and the
// concrete cache states manipulated by both the trace simulator and the
// reverse prefetching analysis (the [MRU, LRU] states of Figure 1).
package cache

import "fmt"

// InvalidBlock is the sentinel for an empty cache way (the paper's invalid
// block I).
const InvalidBlock = ^uint64(0)

// Config describes one instruction-cache configuration k = (a, b, c): the
// associativity, the block (line) size in bytes, and the total capacity in
// bytes.
type Config struct {
	Assoc         int // a: blocks per set
	BlockBytes    int // b: block size in bytes
	CapacityBytes int // c: total capacity in bytes
}

// NumSets returns the number of cache sets.
func (c Config) NumSets() int { return c.CapacityBytes / (c.BlockBytes * c.Assoc) }

// NumBlocks returns the total number of cache blocks.
func (c Config) NumBlocks() int { return c.CapacityBytes / c.BlockBytes }

// SetOf maps a memory block index to its cache set.
func (c Config) SetOf(block uint64) int { return int(block % uint64(c.NumSets())) }

// Valid reports whether the configuration is internally consistent.
func (c Config) Valid() error {
	if c.Assoc < 1 || c.BlockBytes < 4 || c.CapacityBytes < c.BlockBytes*c.Assoc {
		return fmt.Errorf("cache: invalid configuration %+v", c)
	}
	if c.CapacityBytes%(c.BlockBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache: capacity %d not divisible by set size %d", c.CapacityBytes, c.BlockBytes*c.Assoc)
	}
	return nil
}

// String renders the configuration in the paper's (a, b, c) notation.
func (c Config) String() string {
	return fmt.Sprintf("(%d,%d,%d)", c.Assoc, c.BlockBytes, c.CapacityBytes)
}

// Table2 returns the 36 cache configurations of the paper's Table 2, in
// k1..k36 order: capacity ascending over {256..8192}, block size over
// {16, 32}, associativity over {1, 2, 4}.
func Table2() []Config {
	var out []Config
	for _, capacity := range []int{256, 512, 1024, 2048, 4096, 8192} {
		for _, block := range []int{16, 32} {
			for _, assoc := range []int{1, 2, 4} {
				out = append(out, Config{Assoc: assoc, BlockBytes: block, CapacityBytes: capacity})
			}
		}
	}
	return out
}

// ConfigID returns the paper's label (k1..k36) for the i-th Table 2 entry.
func ConfigID(i int) string { return fmt.Sprintf("k%d", i+1) }

// State is a concrete cache state: for every set, the resident memory blocks
// ordered from most to least recently used. It implements the update
// function U of Definition 1.
type State struct {
	cfg  Config
	sets [][]uint64 // sets[s][0] is the MRU block of set s
}

// NewState returns an empty (all-invalid) cache state for cfg.
func NewState(cfg Config) *State {
	if err := cfg.Valid(); err != nil {
		panic(err)
	}
	s := &State{cfg: cfg, sets: make([][]uint64, cfg.NumSets())}
	return s
}

// Config returns the configuration the state was built for.
func (s *State) Config() Config { return s.cfg }

// Contains reports whether the memory block is resident.
func (s *State) Contains(block uint64) bool {
	for _, b := range s.sets[s.cfg.SetOf(block)] {
		if b == block {
			return true
		}
	}
	return false
}

// Access references the memory block: on a hit the block becomes MRU of its
// set; on a miss it is inserted as MRU, evicting the LRU block when the set
// is full. It returns whether the access hit and, if a block was evicted,
// which one (evicted == InvalidBlock means nothing was displaced).
//
// Access realizes Properties 1–3 of the paper: the before/after block sets
// differ by at most the inserted block and the evicted block.
func (s *State) Access(block uint64) (hit bool, evicted uint64) {
	si := s.cfg.SetOf(block)
	set := s.sets[si]
	for i, b := range set {
		if b == block {
			// Hit: rotate to MRU.
			copy(set[1:i+1], set[:i])
			set[0] = block
			return true, InvalidBlock
		}
	}
	// Miss: insert as MRU.
	evicted = InvalidBlock
	if len(set) < s.cfg.Assoc {
		set = append(set, 0)
	} else {
		evicted = set[len(set)-1]
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = block
	s.sets[si] = set
	return false, evicted
}

// Insert loads a block as if by a completed prefetch fill: the block becomes
// MRU of its set, evicting the LRU block when needed. If the block was
// already resident it is promoted to MRU without any eviction (a redundant
// prefetch). It returns the evicted block or InvalidBlock.
func (s *State) Insert(block uint64) (evicted uint64) {
	_, ev := s.Access(block)
	return ev
}

// WouldEvict returns the block that an access (or fill) of the given memory
// block would displace, without mutating the state. It returns InvalidBlock
// when the access would hit, when the set still has a free way, or when the
// block is already resident.
func (s *State) WouldEvict(block uint64) uint64 {
	si := s.cfg.SetOf(block)
	set := s.sets[si]
	for _, b := range set {
		if b == block {
			return InvalidBlock
		}
	}
	if len(set) < s.cfg.Assoc {
		return InvalidBlock
	}
	return set[len(set)-1]
}

// Remove deletes the block from its set if resident, preserving the LRU
// order of the remaining blocks.
func (s *State) Remove(block uint64) {
	si := s.cfg.SetOf(block)
	set := s.sets[si]
	for i, b := range set {
		if b == block {
			s.sets[si] = append(set[:i], set[i+1:]...)
			return
		}
	}
}

// Blocks returns the set of resident memory blocks (the paper's B(ĉ)).
func (s *State) Blocks() map[uint64]bool {
	out := make(map[uint64]bool)
	for _, set := range s.sets {
		for _, b := range set {
			out[b] = true
		}
	}
	return out
}

// Set returns a copy of the contents of set si, MRU first.
func (s *State) Set(si int) []uint64 {
	return append([]uint64(nil), s.sets[si]...)
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{cfg: s.cfg, sets: make([][]uint64, len(s.sets))}
	for i, set := range s.sets {
		if len(set) > 0 {
			c.sets[i] = append([]uint64(nil), set...)
		}
	}
	return c
}

// CopyFrom makes s an exact copy of o (which must share s's configuration),
// reusing s's per-set storage so repeated copies do not allocate.
func (s *State) CopyFrom(o *State) {
	for i := range s.sets {
		s.sets[i] = append(s.sets[i][:0], o.sets[i]...)
	}
}

// Equal reports whether two states hold the same blocks in the same LRU
// order for every set.
func (s *State) Equal(o *State) bool {
	if s.cfg != o.cfg {
		return false
	}
	for i := range s.sets {
		if len(s.sets[i]) != len(o.sets[i]) {
			return false
		}
		for j := range s.sets[i] {
			if s.sets[i][j] != o.sets[i][j] {
				return false
			}
		}
	}
	return true
}

// Reset empties every set.
func (s *State) Reset() {
	for i := range s.sets {
		s.sets[i] = s.sets[i][:0]
	}
}
