// Package cache models a set-associative instruction cache: the
// configuration space of the paper's Table 2 and the concrete cache states
// manipulated by both the trace simulator and the reverse prefetching
// analysis (the [MRU, LRU] states of Figure 1). Replacement is selected per
// configuration by [Policy]; the default (and the paper's machine model) is
// true LRU, with FIFO and tree-PLRU available as alternative policies.
package cache

import "fmt"

// InvalidBlock is the sentinel for an empty cache way (the paper's invalid
// block I).
const InvalidBlock = ^uint64(0)

// Config describes one instruction-cache configuration k = (a, b, c): the
// associativity, the block (line) size in bytes, and the total capacity in
// bytes, plus the replacement policy (zero value = LRU, so plain (a, b, c)
// literals keep describing the paper's machine model).
type Config struct {
	Assoc         int    // a: blocks per set
	BlockBytes    int    // b: block size in bytes
	CapacityBytes int    // c: total capacity in bytes
	Policy        Policy // replacement policy; zero value is LRU
}

// NumSets returns the number of cache sets, or 0 when the configuration is
// degenerate (zero or negative associativity or block size). Callers that
// need a usable geometry must check Valid first; NumSets merely refuses to
// divide by zero for unvalidated configs.
func (c Config) NumSets() int {
	setBytes := c.BlockBytes * c.Assoc
	if setBytes <= 0 {
		return 0
	}
	return c.CapacityBytes / setBytes
}

// NumBlocks returns the total number of cache blocks, or 0 for a degenerate
// block size.
func (c Config) NumBlocks() int {
	if c.BlockBytes <= 0 {
		return 0
	}
	return c.CapacityBytes / c.BlockBytes
}

// SetOf maps a memory block index to its cache set. On a degenerate
// configuration (NumSets() == 0) it returns 0 instead of dividing by zero.
func (c Config) SetOf(block uint64) int {
	ns := c.NumSets()
	if ns <= 0 {
		return 0
	}
	return int(block % uint64(ns))
}

// Valid reports whether the configuration is internally consistent.
func (c Config) Valid() error {
	if c.Assoc < 1 || c.BlockBytes < 4 || c.CapacityBytes < c.BlockBytes*c.Assoc {
		return fmt.Errorf("cache: invalid configuration %+v", c)
	}
	if c.CapacityBytes%(c.BlockBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache: capacity %d not divisible by set size %d", c.CapacityBytes, c.BlockBytes*c.Assoc)
	}
	return c.Policy.valid(c.Assoc)
}

// String renders the configuration in the paper's (a, b, c) notation, with
// the policy appended for non-LRU configurations.
func (c Config) String() string {
	if c.Policy == LRU {
		return fmt.Sprintf("(%d,%d,%d)", c.Assoc, c.BlockBytes, c.CapacityBytes)
	}
	return fmt.Sprintf("(%d,%d,%d,%s)", c.Assoc, c.BlockBytes, c.CapacityBytes, c.Policy)
}

// Table2 returns the 36 cache configurations of the paper's Table 2, in
// k1..k36 order: capacity ascending over {256..8192}, block size over
// {16, 32}, associativity over {1, 2, 4}.
func Table2() []Config {
	var out []Config
	for _, capacity := range []int{256, 512, 1024, 2048, 4096, 8192} {
		for _, block := range []int{16, 32} {
			for _, assoc := range []int{1, 2, 4} {
				out = append(out, Config{Assoc: assoc, BlockBytes: block, CapacityBytes: capacity})
			}
		}
	}
	return out
}

// ConfigID returns the paper's label (k1..k36) for the i-th Table 2 entry.
func ConfigID(i int) string { return fmt.Sprintf("k%d", i+1) }

// State is a concrete cache state. For LRU and FIFO each set holds its
// resident blocks ordered newest first (recency order for LRU, insertion
// order for FIFO); for tree-PLRU each set is a fixed array of ways with
// InvalidBlock marking empty slots, plus the per-set tree bits. State
// implements the update function U of Definition 1 for the configured
// policy.
type State struct {
	cfg  Config
	sets [][]uint64 // sets[s][0] is the newest block (LRU/FIFO); way array (PLRU)
	plru []uint64   // per-set tree bits, heap-indexed; nil unless Policy == PLRU
}

// NewState returns an empty (all-invalid) cache state for cfg.
func NewState(cfg Config) *State {
	if err := cfg.Valid(); err != nil {
		panic(err)
	}
	s := &State{cfg: cfg, sets: make([][]uint64, cfg.NumSets())}
	if cfg.Policy == PLRU {
		s.plru = make([]uint64, cfg.NumSets())
		for i := range s.sets {
			ways := make([]uint64, cfg.Assoc)
			for w := range ways {
				ways[w] = InvalidBlock
			}
			s.sets[i] = ways
		}
	}
	return s
}

// Config returns the configuration the state was built for.
func (s *State) Config() Config { return s.cfg }

// Contains reports whether the memory block is resident.
func (s *State) Contains(block uint64) bool {
	for _, b := range s.sets[s.cfg.SetOf(block)] {
		if b == block {
			return true
		}
	}
	return false
}

// Access references the memory block, updating the set according to the
// configured replacement policy: LRU promotes a hit to MRU and evicts the
// least recently used block on a full miss; FIFO leaves hits untouched and
// evicts the oldest insertion; tree-PLRU points the tree bits away from the
// touched way and evicts along the bit path. It returns whether the access
// hit and, if a block was evicted, which one (evicted == InvalidBlock means
// nothing was displaced).
//
// Access realizes Properties 1–3 of the paper: the before/after block sets
// differ by at most the inserted block and the evicted block.
func (s *State) Access(block uint64) (hit bool, evicted uint64) {
	switch s.cfg.Policy {
	case FIFO:
		return s.fifoAccess(block)
	case PLRU:
		return s.plruAccess(block)
	}
	si := s.cfg.SetOf(block)
	set := s.sets[si]
	for i, b := range set {
		if b == block {
			// Hit: rotate to MRU.
			copy(set[1:i+1], set[:i])
			set[0] = block
			return true, InvalidBlock
		}
	}
	// Miss: insert as MRU.
	return false, s.pushFront(si, block)
}

// Insert loads a block as if by a completed prefetch fill, updating the
// replacement state exactly like an access: under LRU the block becomes MRU
// (a redundant prefetch of a resident block promotes it); under FIFO a
// redundant fill is a no-op; under tree-PLRU the fill touches the block's
// way. It returns the evicted block or InvalidBlock.
func (s *State) Insert(block uint64) (evicted uint64) {
	_, ev := s.Access(block)
	return ev
}

// WouldEvict returns the block that an access (or fill) of the given memory
// block would displace, without mutating the state. It returns InvalidBlock
// when the access would hit, when the set still has a free way, or when the
// block is already resident.
func (s *State) WouldEvict(block uint64) uint64 {
	if s.cfg.Policy == PLRU {
		return s.plruWouldEvict(block)
	}
	si := s.cfg.SetOf(block)
	set := s.sets[si]
	for _, b := range set {
		if b == block {
			return InvalidBlock
		}
	}
	if len(set) < s.cfg.Assoc {
		return InvalidBlock
	}
	return set[len(set)-1]
}

// Remove deletes the block from its set if resident, preserving the order
// (LRU/FIFO) or way positions and tree bits (PLRU) of the remaining blocks.
func (s *State) Remove(block uint64) {
	si := s.cfg.SetOf(block)
	set := s.sets[si]
	for i, b := range set {
		if b == block {
			if s.cfg.Policy == PLRU {
				set[i] = InvalidBlock
			} else {
				s.sets[si] = append(set[:i], set[i+1:]...)
			}
			return
		}
	}
}

// Blocks returns the set of resident memory blocks (the paper's B(ĉ)).
func (s *State) Blocks() map[uint64]bool {
	out := make(map[uint64]bool)
	for _, set := range s.sets {
		for _, b := range set {
			if b != InvalidBlock {
				out[b] = true
			}
		}
	}
	return out
}

// Set returns a copy of the contents of set si: newest first for LRU and
// FIFO, way order (with InvalidBlock holes) for PLRU.
func (s *State) Set(si int) []uint64 {
	return append([]uint64(nil), s.sets[si]...)
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{cfg: s.cfg, sets: make([][]uint64, len(s.sets))}
	for i, set := range s.sets {
		if len(set) > 0 {
			c.sets[i] = append([]uint64(nil), set...)
		}
	}
	if s.plru != nil {
		c.plru = append([]uint64(nil), s.plru...)
	}
	return c
}

// CopyFrom makes s an exact copy of o (which must share s's configuration),
// reusing s's per-set storage so repeated copies do not allocate.
func (s *State) CopyFrom(o *State) {
	for i := range s.sets {
		s.sets[i] = append(s.sets[i][:0], o.sets[i]...)
	}
	copy(s.plru, o.plru)
}

// Equal reports whether two states hold the same blocks in the same order
// for every set (and, for PLRU, the same tree bits).
func (s *State) Equal(o *State) bool {
	if s.cfg != o.cfg {
		return false
	}
	for i := range s.sets {
		if len(s.sets[i]) != len(o.sets[i]) {
			return false
		}
		for j := range s.sets[i] {
			if s.sets[i][j] != o.sets[i][j] {
				return false
			}
		}
		if s.plru != nil && s.plru[i] != o.plru[i] {
			return false
		}
	}
	return true
}

// Reset empties every set.
func (s *State) Reset() {
	for i := range s.sets {
		if s.cfg.Policy == PLRU {
			for w := range s.sets[i] {
				s.sets[i][w] = InvalidBlock
			}
		} else {
			s.sets[i] = s.sets[i][:0]
		}
	}
	for i := range s.plru {
		s.plru[i] = 0
	}
}
