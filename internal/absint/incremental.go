package absint

import (
	"context"

	"ucp/internal/cache"
	"ucp/internal/interrupt"
	"ucp/internal/isa"
	"ucp/internal/obs"
	"ucp/internal/vivu"
)

// This file implements the incremental re-analysis entry point and the
// machinery the shared fixpoint needs to stay allocation-light: a per-call
// state pool, hash-consed interning of converged set states for retained
// results, and a flat-array replacement for the map-based effectiveness BFS.
//
// Soundness of the incremental restart (see DESIGN.md for the long form):
// the dirty set D is the set of expanded blocks whose transfer function
// changed (different opRec row — fetched blocks, prefetch flags, targets,
// or effectiveness). Every slot is seeded with the previous solution and
// the fixpoint walks the strongly-connected components of the graph in
// condensation topological order (see solve in absint.go). By induction
// over that order, when a component is reached its external inputs are
// final: a clean component (no dirty member, no input change propagated
// into it) keeps its previous values, which are exactly the new least-
// fixpoint values since neither its equations nor its inputs changed; a
// dirty acyclic block is solved by one transfer; a dirty cyclic component
// restarts from bottom as a whole and iterates to its subsystem's least
// fixpoint. Recomputing a block whose exit state comes out equal to the
// previous value propagates nothing (value cutoff), so the recomputed
// region is the set of blocks whose solution *actually* changed — typically
// far smaller than the structural forward closure of D. (Seeding a cyclic
// component with its previous values instead of bottom would only be sound
// for a post-fixpoint *upper* iteration and could overshoot the least
// fixpoint; the reset is what makes the result bit-identical, which the
// differential tests in internal/wcet pin down.)

// AnalyzeFrom re-runs the analysis after a program mutation, reusing prev
// wherever the transfer functions did not change. It yields a Result
// bit-identical to Analyze on the mutated program. prev must come from an
// Analyze/AnalyzeFrom call on the same expanded program (the expansion is
// structural, so in-place instruction edits keep it valid); when prev is
// nil or incompatible the call degrades to a full analysis. An aborted call
// (canceled ctx) returns a typed interrupt error and leaves prev fully
// usable for a later retry.
func AnalyzeFrom(ctx context.Context, x *vivu.Prog, lay *isa.Layout, cfg cache.Config, lambda int, prev *Result) (*Result, error) {
	if prev == nil || prev.X != x || prev.Cfg != cfg || prev.lambda != lambda {
		prev = nil
	}
	return analyze(ctx, x, lay, cfg, lambda, prev)
}

// analyze is the shared implementation behind Analyze (prev == nil) and
// AnalyzeFrom.
func analyze(ctx context.Context, x *vivu.Prog, lay *isa.Layout, cfg cache.Config, lambda int, prev *Result) (*Result, error) {
	// The amortized checker only polls every checkInterval steps, which a
	// small (or fully clean incremental) analysis may never reach; the
	// upfront check guarantees an already-dead context is always honored.
	if err := interrupt.Cause(ctx); err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "absint.solve")
	defer span.End()
	n := len(x.Blocks)
	res := &Result{
		X:         x,
		Cfg:       cfg,
		In:        make([]*State, n),
		Class:     make([][]Classification, n),
		Effective: make([][]bool, n),
		lambda:    lambda,
		out:       make([]*State, n),
	}
	full := prev == nil
	var sc *scratch
	if !full {
		sc = prev.scr
	}
	if sc == nil {
		sc = newScratch(cfg)
	}
	res.scr = sc
	a := &analyzer{
		x: x, cfg: cfg, res: res, sp: &sc.sp,
		ctx: ctx, chk: interrupt.NewChecker(ctx, checkInterval),
	}

	// Build the per-block transfer rows. In the incremental case the program
	// was mutated in place, so the previous instructions are gone — the
	// previous result's opRec rows are the only diffable snapshot. Rows that
	// match byte for byte alias the previous row (keeping its effectiveness
	// bits); the rest are the base-dirty set.
	ops := make([][]opRec, n)
	baseDirty := flags(&sc.baseDirty, n)
	rowBuf := sc.row
	for _, xb := range x.Blocks {
		instrs := x.Prog.Blocks[xb.Orig].Instrs
		rowBuf = rowBuf[:0]
		for i, ins := range instrs {
			op := opRec{acc: lay.MemBlock(isa.InstrRef{Block: xb.Orig, Index: i}, cfg.BlockBytes)}
			// A prefetch targeting level 2 fills the L2 only; at this (L1)
			// level its fetch is an ordinary reference with no fill effect.
			if ins.Kind == isa.KindPrefetch && ins.Level < 2 {
				op.pft = true
				op.tgt = lay.MemBlock(ins.Target, cfg.BlockBytes)
			}
			rowBuf = append(rowBuf, op)
		}
		if !full && rowBaseEqual(rowBuf, prev.ops[xb.ID]) {
			ops[xb.ID] = prev.ops[xb.ID]
		} else {
			ops[xb.ID] = append(make([]opRec, 0, len(rowBuf)), rowBuf...)
			baseDirty[xb.ID] = true
		}
	}
	sc.row = rowBuf
	a.ops = ops
	res.ops = ops

	// Prefetch effectiveness (latency hiding, Definition 10). The BFS for a
	// prefetch only inspects instructions within lambda fetches of it, so
	// its verdict can only change when a base-dirty block lies inside that
	// horizon; effScope over-approximates the set of blocks whose prefetches
	// need recomputing. Everything else keeps its previous bits.
	ec := newEffCalc(x, ops, sc.ec)
	sc.ec = ec
	dirty := flags(&sc.dirty, n)
	copy(dirty, baseDirty)
	if full {
		for id := range ops {
			row := ops[id]
			for i := range row {
				if row[i].pft {
					row[i].eff = ec.hidden(id, i, row[i].tgt, lambda)
				}
			}
		}
	} else {
		scope := effScope(x, ops, baseDirty, lambda)
		for id, inScope := range scope {
			if !inScope {
				continue
			}
			row := ops[id]
			if baseDirty[id] {
				for i := range row {
					if row[i].pft {
						row[i].eff = ec.hidden(id, i, row[i].tgt, lambda)
					}
				}
				continue
			}
			// Row aliases the previous result: copy-on-write, and only if a
			// bit actually flips does the block become dirty.
			var fresh []opRec
			for i, op := range row {
				if !op.pft {
					continue
				}
				if e := ec.hidden(id, i, op.tgt, lambda); e != op.eff {
					if fresh == nil {
						fresh = append(make([]opRec, 0, len(row)), row...)
					}
					fresh[i].eff = e
				}
			}
			if fresh != nil {
				ops[id] = fresh
				dirty[id] = true
			}
		}
	}

	for id := range ops {
		if !full && !dirty[id] {
			res.Effective[id] = prev.Effective[id]
			continue
		}
		effRow := make([]bool, len(ops[id]))
		for i, op := range ops[id] {
			effRow[i] = op.eff
		}
		res.Effective[id] = effRow
	}

	if full {
		res.sccs = buildSCCPlan(x)
	} else {
		res.sccs = prev.sccs
		res.interns = prev.interns
	}

	// rowDirty snapshots the transfer-row changes before solve consumes the
	// dirty flags as its worklist.
	var rowDirty []bool
	if !full {
		rowDirty = flags(&sc.rowDirty, n)
		copy(rowDirty, dirty)
	}

	// Seed the fixpoint with the previous solution (bottom on a cold start)
	// and solve. Only blocks the value cutoff lets the dirtiness reach are
	// recomputed.
	a.out = res.out
	a.ownOut = flags(&sc.ownOut, n)
	a.dirty = dirty
	a.outChanged = flags(&sc.outChanged, n)
	if span != nil {
		nd := 0
		for _, d := range dirty {
			if d {
				nd++
			}
		}
		span.Attr("incremental", !full)
		span.Attr("blocks", n)
		span.Attr("dirty_blocks", nd)
	}
	if !full {
		copy(a.out, prev.out)
	}
	a.scrA, a.scrB = a.sp.get(), a.sp.get()
	a.empty = sc.empty
	if err := a.solve(res.sccs); err != nil {
		a.sp.put(a.scrA)
		a.sp.put(a.scrB)
		return nil, err
	}

	// A block needs re-classification iff its transfer row changed or some
	// predecessor's exit state changed (its in-state value moved); everything
	// else aliases the previous result — same in-state value, same transfer
	// row, hence the same classifications.
	if !full {
		changed := make([]bool, n)
		for id := range changed {
			if rowDirty[id] {
				changed[id] = true
				continue
			}
			for _, p := range x.Blocks[id].Preds {
				if a.outChanged[p] {
					changed[id] = true
					break
				}
			}
		}
		res.Changed = changed
	}
	walk := a.sp.get()
	for _, id := range x.Topo {
		if err := a.chk.Check(); err != nil {
			a.sp.put(walk)
			a.sp.put(a.scrA)
			a.sp.put(a.scrB)
			return nil, err
		}
		if !full && !res.Changed[id] {
			res.In[id] = prev.In[id]
			res.Class[id] = prev.Class[id]
			continue
		}
		a.classify(id, a.inState(id), walk)
	}
	a.sp.put(walk)
	a.sp.put(a.scrA)
	a.sp.put(a.scrB)
	if span != nil {
		span.Attr("rounds", a.rounds)
		span.Attr("states_pooled", len(sc.sp.free))
		if res.Changed != nil {
			nc := 0
			for _, c := range res.Changed {
				if c {
					nc++
				}
			}
			span.Attr("changed_blocks", nc)
		}
	}
	return res, nil
}

// inState builds the converged in-state of block id: the single live
// predecessor's exit state is aliased (both are immutable once the result is
// returned), a multi-predecessor join gets a fresh compact state, and the
// entry (or an unreachable block) gets the cold-cache state.
func (a *analyzer) inState(id int) *State {
	if id == a.x.Entry {
		return NewState(a.cfg)
	}
	live := 0
	for _, p := range a.x.Blocks[id].Preds {
		if a.out[p] != nil {
			live++
		}
	}
	st := a.joinPreds(id)
	switch {
	case st == nil:
		return NewState(a.cfg)
	case live == 1:
		return st
	default:
		c := NewState(a.cfg)
		c.copyCompact(st)
		return c
	}
}

// rowBaseEqual compares transfer rows ignoring effectiveness bits (which
// are derived, not part of the program).
func rowBaseEqual(a, b []opRec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].acc != b[i].acc || a[i].pft != b[i].pft || a[i].tgt != b[i].tgt {
			return false
		}
	}
	return true
}

// effScope over-approximates the blocks whose prefetch-effectiveness bits
// may change: a prefetch's BFS reads instructions at most lambda fetches
// ahead of it, so its verdict is stable unless a base-dirty block starts
// within that horizon. dist[u] below is the minimal number of instruction
// fetches strictly between u's exit and the entry of some base-dirty block;
// a prefetch in u (at worst on u's last instruction) reaches dirty
// instructions iff dist[u] < lambda.
func effScope(x *vivu.Prog, ops [][]opRec, baseDirty []bool, lambda int) []bool {
	const inf = int32(1) << 30
	n := len(x.Blocks)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = inf
	}
	var stack []int32
	relax := func(u int, v int32) {
		if v < dist[u] {
			dist[u] = v
			stack = append(stack, int32(u))
		}
	}
	for id, d := range baseDirty {
		if !d {
			continue
		}
		for _, p := range x.Blocks[id].Preds {
			relax(p, 0)
		}
	}
	for len(stack) > 0 {
		u := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		v := dist[u] + int32(len(ops[u]))
		if v >= int32(lambda) {
			continue // predecessors would already be past the horizon
		}
		for _, p := range x.Blocks[u].Preds {
			relax(p, v)
		}
	}
	scope := make([]bool, n)
	for id := range scope {
		scope[id] = baseDirty[id] || dist[id] < int32(lambda)
	}
	return scope
}

// scratch carries every reusable buffer of the analysis along a chain of
// incremental re-analyses: the state pool, the effectiveness calculator's
// flat arrays, the worklist flag slices, and the shared cold-cache entry
// state. It travels inside the Result (like the interning table) and is
// shared by every Result of one chain, so a steady-state re-analysis
// allocates almost nothing beyond the states it actually retains. A chain
// is inherently sequential; two AnalyzeFrom calls seeded from the same
// chain must not run concurrently.
type scratch struct {
	sp    statePool
	ec    *effCalc
	empty *State
	// flag slices, re-cleared per call
	baseDirty, dirty, rowDirty, ownOut, outChanged []bool
	row                                            []opRec
}

func newScratch(cfg cache.Config) *scratch {
	return &scratch{sp: statePool{cfg: cfg}, empty: NewState(cfg)}
}

// flags returns n cleared bools backed by *buf, growing it as needed.
func flags(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
		return *buf
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// statePool recycles State buffers across fixpoint rounds and, via the
// scratch carrier, across the re-analyses of a chain. Slot states the
// fixpoint replaces go back into the pool; states seeded from a previous
// Result are never recycled (they are shared, possibly interned).
type statePool struct {
	cfg  cache.Config
	free []*State
}

func (p *statePool) get() *State {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return NewState(p.cfg)
}

func (p *statePool) put(s *State) {
	if s != nil {
		p.free = append(p.free, s)
	}
}

// internTable hash-conses converged set states so identical per-set states
// across calling contexts — and across the whole chain of incremental
// re-analyses, since the table travels inside the Result — share one
// canonical compact copy.
type internTable struct {
	m map[uint64][]setState
}

func newInternTable() *internTable { return &internTable{m: map[uint64][]setState{}} }

// canon returns the canonical copy of s and its hash.
func (t *internTable) canon(s setState) (setState, uint64) {
	h := s.hash()
	if len(s) == 0 {
		return nil, h
	}
	for _, c := range t.m[h] {
		if c.equal(s) {
			return c, h
		}
	}
	c := append(make(setState, 0, len(s)), s...)
	t.m[h] = append(t.m[h], c)
	return c, h
}

// Intern hash-conses the set states of the result so identical per-set
// states across calling contexts — and across a chain of incremental
// re-analyses, since the table travels inside the Result — share one
// canonical compact copy, and the pooled backing buffers (sized with
// headroom for the fixpoint's in-place updates) are released. It is meant
// for results retained long-term (a result cache, a baseline kept across a
// sweep); the analysis itself never pays for it. States already interned by
// an earlier call in the chain are skipped in O(1). The result must not be
// re-analyzed concurrently with Intern.
func (r *Result) Intern() {
	if r.interns == nil {
		r.interns = newInternTable()
	}
	for _, s := range r.In {
		if s != nil && !s.hashOK {
			r.interns.internState(s)
		}
	}
	for _, s := range r.out {
		if s != nil && !s.hashOK {
			r.interns.internState(s)
		}
	}
}

// internState replaces every set slice of s with its canonical copy, drops
// the private backing buffer, and records the structural hash (giving Equal
// its O(1) fast path on interned states). The state must not be mutated
// afterwards.
func (t *internTable) internState(s *State) {
	h := uint64(fnvOffset)
	for i := range s.must {
		c, ch := t.canon(s.must[i])
		s.must[i] = c
		h = (h ^ ch) * fnvPrime
	}
	for i := range s.may {
		c, ch := t.canon(s.may[i])
		s.may[i] = c
		h = (h ^ ch) * fnvPrime
	}
	for i := range s.pers {
		c, ch := t.canon(s.pers[i])
		s.pers[i] = c
		h = (h ^ ch) * fnvPrime
	}
	s.buf = nil
	s.hash, s.hashOK = h, true
}

// effCalc answers latency-hiding queries (is every first use of the target
// at least lambda fetches downstream of the prefetch?) with the same BFS the
// map-based latencyHidden used, but over flat stamped arrays indexed by a
// global instruction numbering, so a query allocates nothing.
type effCalc struct {
	x     *vivu.Prog
	ops   [][]opRec
	base  []int32 // base[xb]: flat index of instruction 0 of expanded block xb
	dist  []int32
	stamp []int32
	cur   int32
	queue []effNode
}

type effNode struct {
	xb, idx, dist int32
}

// newEffCalc prepares the calculator for the current transfer rows, reusing
// old's arrays when they are large enough. The visit counter keeps running
// across reuses: stamps recorded by earlier calls are strictly below the
// current counter, so stale entries can never read as visited.
func newEffCalc(x *vivu.Prog, ops [][]opRec, old *effCalc) *effCalc {
	c := old
	if c == nil {
		c = &effCalc{}
	}
	c.x, c.ops = x, ops
	if cap(c.base) < len(ops) {
		c.base = make([]int32, len(ops))
	}
	c.base = c.base[:len(ops)]
	total := 0
	for id, row := range ops {
		c.base[id] = int32(total)
		total += len(row)
	}
	if cap(c.dist) < total {
		grown := total + total/4
		c.dist = make([]int32, grown)
		c.stamp = make([]int32, grown)
	}
	c.dist, c.stamp = c.dist[:total], c.stamp[:total]
	if c.cur > 1<<30 { // counter headroom exhausted: restart the epoch
		for i := range c.stamp {
			c.stamp[i] = 0
		}
		c.cur = 0
	}
	return c
}

// hidden reports whether at least lambda instruction fetches separate the
// prefetch at (xb, idx) from every first use of memory block tgt reachable
// from it, on every path of the expanded graph. Each fetch takes at least
// one cycle, so lambda intervening fetches guarantee the fill has completed.
func (c *effCalc) hidden(xb, idx int, tgt uint64, lambda int) bool {
	c.cur++
	c.queue = c.queue[:0]
	start := c.base[xb] + int32(idx)
	c.stamp[start] = c.cur
	c.dist[start] = 0
	c.queue = append(c.queue, effNode{int32(xb), int32(idx), 0})
	for head := 0; head < len(c.queue); head++ {
		cur := c.queue[head]
		d := cur.dist + 1
		if int(cur.idx)+1 < len(c.ops[cur.xb]) {
			if !c.step(cur.xb, cur.idx+1, d, tgt, lambda) {
				return false
			}
		} else {
			for _, e := range c.x.Blocks[cur.xb].Succs {
				if !c.step(int32(e.To), 0, d, tgt, lambda) {
					return false
				}
			}
		}
	}
	return true
}

// step visits one successor reference at distance d; false means a use of
// tgt fewer than lambda fetches after the prefetch was found. A use at or
// beyond lambda is covered and not explored past; any other reference at
// distance lambda or more is safely beyond the latency window.
func (c *effCalc) step(sxb, sidx, d int32, tgt uint64, lambda int) bool {
	if c.ops[sxb][sidx].acc == tgt {
		return int(d)-1 >= lambda
	}
	if int(d) >= lambda {
		return true
	}
	f := c.base[sxb] + sidx
	if c.stamp[f] != c.cur || d < c.dist[f] {
		c.stamp[f] = c.cur
		c.dist[f] = d
		c.queue = append(c.queue, effNode{sxb, sidx, d})
	}
	return true
}

// joinMust and joinMay are the allocating forms of the join functions,
// retained for tests and external callers.
func joinMust(a, b setState) setState { return joinMustInto(nil, a, b) }
func joinMay(a, b setState) setState  { return joinMayInto(nil, a, b) }
