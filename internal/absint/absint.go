// Package absint implements the abstract cache semantics of classical
// cache-aware WCET analysis (Ferdinand-style must/may analysis with LRU
// aging), extended — as the paper requires — with the effect of software
// prefetch instructions. The fixpoint runs on the VIVU-expanded graph, so
// first-iteration and other-iteration references of every loop are
// classified separately.
//
// Classification soundness is the load-bearing invariant: a reference
// classified AlwaysHit must hit in every concrete execution that respects
// the loop bounds (a property test in this repository checks exactly that).
// Prefetch fills therefore enter the must state only when the fill latency
// is provably hidden (the prefetch is *effective* in the sense of the
// paper's Definition 10); otherwise the fill only ages the target set in the
// must state and joins the may state.
package absint

import (
	"sort"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/vivu"
)

// Classification is the outcome of abstract interpretation for one
// reference.
type Classification uint8

const (
	// NotClassified: the reference may hit or miss; WCET analysis must
	// assume a miss.
	NotClassified Classification = iota
	// AlwaysHit: the must analysis guarantees the block is cached.
	AlwaysHit
	// AlwaysMiss: the may analysis guarantees the block is absent.
	AlwaysMiss
	// FirstMiss: the persistence analysis guarantees the block, once
	// loaded, is never evicted — the reference misses at most on the first
	// iteration of its context. WCET analysis charges the miss to the
	// first-iteration instance and a hit to the other-iterations one.
	FirstMiss
)

// String returns the conventional two-letter tag for the classification.
func (c Classification) String() string {
	switch c {
	case AlwaysHit:
		return "AH"
	case AlwaysMiss:
		return "AM"
	case FirstMiss:
		return "FM"
	default:
		return "NC"
	}
}

type entry struct {
	blk uint64
	age uint8
}

// setState is the abstract state of a single cache set: blocks paired with
// age bounds (upper bounds in must states, lower bounds in may states),
// sorted by block for canonical comparison.
type setState []entry

func (s setState) find(blk uint64) int {
	i := sort.Search(len(s), func(i int) bool { return s[i].blk >= blk })
	if i < len(s) && s[i].blk == blk {
		return i
	}
	return -1
}

func (s setState) insert(blk uint64, age uint8) setState {
	i := sort.Search(len(s), func(i int) bool { return s[i].blk >= blk })
	s = append(s, entry{})
	copy(s[i+1:], s[i:])
	s[i] = entry{blk, age}
	return s
}

func (s setState) remove(i int) setState { return append(s[:i], s[i+1:]...) }

func (s setState) equal(o setState) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// State is an abstract cache state: a must, a may, and a persistence
// component per set. The persistence component tracks, for every block ever
// loaded, an upper bound on its maximal LRU age since that load; a block
// whose bound stays below the associativity can never have been evicted
// (ages are capped at the associativity, the "maybe evicted" top element).
type State struct {
	cfg  cache.Config
	must []setState
	may  []setState
	pers []setState
}

// NewState returns the abstract state of an empty cache: nothing is
// guaranteed resident (must = ∅) and nothing may be resident (may = ∅), the
// cold-start state ĉ_I.
func NewState(cfg cache.Config) *State {
	return &State{
		cfg:  cfg,
		must: make([]setState, cfg.NumSets()),
		may:  make([]setState, cfg.NumSets()),
		pers: make([]setState, cfg.NumSets()),
	}
}

// Clone deep-copies the state. All per-set slices are carved out of one
// backing array (with two spare slots per set, so the following transfer's
// insertions rarely reallocate); this keeps the fixpoint from drowning in
// small allocations.
func (s *State) Clone() *State {
	const headroom = 2
	n := len(s.must)
	total := 0
	for i := 0; i < n; i++ {
		total += len(s.must[i]) + len(s.may[i]) + len(s.pers[i]) + 3*headroom
	}
	buf := make([]entry, total)
	c := &State{cfg: s.cfg, must: make([]setState, n), may: make([]setState, n), pers: make([]setState, n)}
	off := 0
	carve := func(src setState) setState {
		l := len(src)
		dst := buf[off : off+l : off+l+headroom]
		copy(dst, src)
		off += l + headroom
		return dst
	}
	for i := 0; i < n; i++ {
		c.must[i] = carve(s.must[i])
		c.may[i] = carve(s.may[i])
		c.pers[i] = carve(s.pers[i])
	}
	return c
}

// Equal reports whether two states are identical.
func (s *State) Equal(o *State) bool {
	if s.cfg != o.cfg {
		return false
	}
	for i := range s.must {
		if !s.must[i].equal(o.must[i]) {
			return false
		}
	}
	for i := range s.may {
		if !s.may[i].equal(o.may[i]) {
			return false
		}
	}
	for i := range s.pers {
		if !s.pers[i].equal(o.pers[i]) {
			return false
		}
	}
	return true
}

// MustContains reports whether blk is guaranteed resident.
func (s *State) MustContains(blk uint64) bool {
	return s.must[s.cfg.SetOf(blk)].find(blk) >= 0
}

// MayContains reports whether blk may be resident.
func (s *State) MayContains(blk uint64) bool {
	return s.may[s.cfg.SetOf(blk)].find(blk) >= 0
}

// Persistent reports whether blk, if it was ever loaded, is guaranteed not
// to have been evicted since (its persistence age bound is below the
// associativity).
func (s *State) Persistent(blk uint64) bool {
	set := s.pers[s.cfg.SetOf(blk)]
	if i := set.find(blk); i >= 0 {
		return set[i].age < uint8(s.cfg.Assoc)
	}
	// Never loaded on any path reaching here: the access itself will be
	// the (single) first load.
	return true
}

// Classify returns the classification of an access to blk in this state.
func (s *State) Classify(blk uint64) Classification {
	if s.MustContains(blk) {
		return AlwaysHit
	}
	if !s.MayContains(blk) {
		return AlwaysMiss
	}
	return NotClassified
}

// Access applies the abstract LRU update for a reference to blk to both
// components (the abstract update function Û).
func (s *State) Access(blk uint64) {
	si := s.cfg.SetOf(blk)
	a := uint8(s.cfg.Assoc)
	s.must[si] = mustUpdate(s.must[si], blk, a)
	s.may[si] = mayUpdate(s.may[si], blk, a)
	s.pers[si] = persUpdate(s.pers[si], blk, a)
}

// PrefetchFill applies the abstract effect of a prefetch fill of blk.
//
// Must component: when the prefetch is effective the fill is guaranteed
// complete before the next use of blk, so it behaves like an access;
// otherwise the fill lands at an unknown time and may displace any
// guaranteed block, so the component only ages.
//
// May component: the fill *may* have landed immediately, so blk enters at
// age zero — but it may equally still be in flight, so no other block's
// minimum age grows (the join of the filled and unfilled possibilities).
func (s *State) PrefetchFill(blk uint64, effective bool) {
	si := s.cfg.SetOf(blk)
	a := uint8(s.cfg.Assoc)
	if effective {
		s.must[si] = mustUpdate(s.must[si], blk, a)
	} else {
		s.must[si] = mustAgeAll(s.must[si], a)
	}
	s.may[si] = mayInsertFresh(s.may[si], blk)
	// The fill may displace any block at an unknown time: age the
	// persistence bounds; the target itself may land (age 0 is only safe
	// when effective — otherwise keep whatever bound it had).
	if effective {
		s.pers[si] = persUpdate(s.pers[si], blk, a)
	} else {
		s.pers[si] = persAgeAll(s.pers[si], a)
	}
}

// mustUpdate is the must-analysis LRU update: the accessed block gets age 0;
// blocks younger than its previous upper-bound age grow older by one; blocks
// aged past the associativity are no longer guaranteed. The input slice is
// updated in place (callers own their states).
func mustUpdate(s setState, m uint64, assoc uint8) setState {
	prev := assoc // treat "not guaranteed" as the oldest possible age
	if i := s.find(m); i >= 0 {
		prev = s[i].age
		s = s.remove(i)
	}
	w := 0
	for _, e := range s {
		if e.age < prev {
			e.age++
		}
		if e.age < assoc {
			s[w] = e
			w++
		}
	}
	return s[:w].insert(m, 0)
}

// mustAgeAll ages every guaranteed block by one (the conservative must
// update for a fill whose completion time is unknown), in place.
func mustAgeAll(s setState, assoc uint8) setState {
	w := 0
	for _, e := range s {
		e.age++
		if e.age < assoc {
			s[w] = e
			w++
		}
	}
	return s[:w]
}

// mayInsertFresh adds blk at minimum age zero without aging anything else:
// the may effect of an event that may or may not have happened yet.
func mayInsertFresh(s setState, blk uint64) setState {
	if i := s.find(blk); i >= 0 {
		s[i].age = 0
		return s
	}
	return s.insert(blk, 0)
}

// persUpdate is the persistence update: the accessed block's age bound
// resets to zero; younger blocks age by one, capped at the associativity
// (the "maybe evicted" marker) but never removed — once a block has been
// seen, the analysis keeps tracking whether it could have been evicted.
func persUpdate(s setState, m uint64, assoc uint8) setState {
	prev := assoc
	if i := s.find(m); i >= 0 {
		prev = s[i].age
		s = s.remove(i)
	}
	for i := range s {
		if s[i].age < prev && s[i].age < assoc {
			s[i].age++
		}
	}
	return s.insert(m, 0)
}

// persAgeAll ages every tracked bound (a fill at an unknown time).
func persAgeAll(s setState, assoc uint8) setState {
	for i := range s {
		if s[i].age < assoc {
			s[i].age++
		}
	}
	return s
}

// joinPers merges persistence states: union with maximal age bounds.
func joinPers(a, b setState) setState {
	out := make(setState, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].blk < b[j].blk:
			out = append(out, a[i])
			i++
		case a[i].blk > b[j].blk:
			out = append(out, b[j])
			j++
		default:
			age := a[i].age
			if b[j].age > age {
				age = b[j].age
			}
			out = append(out, entry{a[i].blk, age})
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mayUpdate is the may-analysis LRU update: the accessed block gets age 0;
// blocks whose lower-bound age does not exceed its previous lower bound grow
// older by one; blocks aged past the associativity cannot be resident.
func mayUpdate(s setState, m uint64, assoc uint8) setState {
	prev := assoc
	if i := s.find(m); i >= 0 {
		prev = s[i].age
		s = s.remove(i)
	}
	w := 0
	for _, e := range s {
		if e.age <= prev {
			e.age++
		}
		if e.age < assoc {
			s[w] = e
			w++
		}
	}
	return s[:w].insert(m, 0)
}

// Join merges two abstract states flowing into a common program point: the
// must component intersects (keeping maximal ages) and the may component
// unites (keeping minimal ages) — the classical join functions of [8].
func Join(a, b *State) *State {
	out := &State{
		cfg:  a.cfg,
		must: make([]setState, len(a.must)),
		may:  make([]setState, len(a.may)),
		pers: make([]setState, len(a.pers)),
	}
	for i := range a.must {
		out.must[i] = joinMust(a.must[i], b.must[i])
		out.may[i] = joinMay(a.may[i], b.may[i])
		out.pers[i] = joinPers(a.pers[i], b.pers[i])
	}
	return out
}

func joinMust(a, b setState) setState {
	var out setState
	for _, ea := range a {
		if j := b.find(ea.blk); j >= 0 {
			age := ea.age
			if b[j].age > age {
				age = b[j].age
			}
			out = append(out, entry{ea.blk, age})
		}
	}
	return out
}

func joinMay(a, b setState) setState {
	out := make(setState, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].blk < b[j].blk:
			out = append(out, a[i])
			i++
		case a[i].blk > b[j].blk:
			out = append(out, b[j])
			j++
		default:
			age := a[i].age
			if b[j].age < age {
				age = b[j].age
			}
			out = append(out, entry{a[i].blk, age})
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Result holds the outcome of the fixpoint: the in-state of every expanded
// block and the classification of every expanded reference.
type Result struct {
	X   *vivu.Prog
	Cfg cache.Config
	// In[xb] is the abstract state on entry to expanded block xb.
	In []*State
	// Class[xb][i] classifies the i-th instruction fetch of expanded
	// block xb.
	Class [][]Classification
	// Effective[xb][i] is meaningful for prefetch instructions: whether
	// the fill latency is provably hidden before the first use of the
	// target block (Definition 10, checked with the conservative
	// one-cycle-per-instruction lower bound).
	Effective [][]bool
}

type analyzer struct {
	x   *vivu.Prog
	lay *isa.Layout
	cfg cache.Config
	res *Result
	// blkOf[xb][i] is the memory block fetched by the i-th instruction of
	// expanded block xb.
	blkOf [][]uint64
}

// Analyze runs the must/may fixpoint for the expanded program x laid out by
// lay on cache configuration cfg, with a prefetch latency of lambda cycles.
func Analyze(x *vivu.Prog, lay *isa.Layout, cfg cache.Config, lambda int) *Result {
	n := len(x.Blocks)
	res := &Result{
		X:         x,
		Cfg:       cfg,
		In:        make([]*State, n),
		Class:     make([][]Classification, n),
		Effective: make([][]bool, n),
	}
	a := &analyzer{x: x, lay: lay, cfg: cfg, res: res, blkOf: make([][]uint64, n)}
	for _, xb := range x.Blocks {
		instrs := x.Prog.Blocks[xb.Orig].Instrs
		res.Class[xb.ID] = make([]Classification, len(instrs))
		res.Effective[xb.ID] = make([]bool, len(instrs))
		row := make([]uint64, len(instrs))
		for i := range instrs {
			row[i] = lay.MemBlock(isa.InstrRef{Block: xb.Orig, Index: i}, cfg.BlockBytes)
		}
		a.blkOf[xb.ID] = row
	}

	// Precompute prefetch effectiveness (latency hiding) per expanded
	// prefetch instance; it feeds the must-component of every transfer.
	for _, xb := range x.Blocks {
		instrs := x.Prog.Blocks[xb.Orig].Instrs
		for i, in := range instrs {
			if in.Kind == isa.KindPrefetch {
				tgt := lay.MemBlock(in.Target, cfg.BlockBytes)
				res.Effective[xb.ID][i] = latencyHidden(x, lay, cfg, vivu.Ref{XB: xb.ID, Index: i}, tgt, lambda)
			}
		}
	}

	// Fixpoint over the expanded graph (back edges included), iterating in
	// topological order of the acyclic skeleton with cached out-states and
	// dirty tracking. Ages are bounded by the associativity, so the chain
	// height is small and the loop converges in a few rounds.
	in := make([]*State, n)
	out := make([]*State, n)
	dirty := make([]bool, n)
	for id := range dirty {
		dirty[id] = true
	}
	for changed := true; changed; {
		changed = false
		for _, id := range x.Topo {
			if !dirty[id] {
				continue
			}
			dirty[id] = false
			xb := x.Blocks[id]
			var st *State
			if id == x.Entry {
				st = NewState(cfg)
			} else {
				for _, p := range xb.Preds {
					if out[p] == nil {
						continue
					}
					if st == nil {
						st = out[p]
					} else {
						st = Join(st, out[p])
					}
				}
				if st == nil {
					// No predecessor state yet: the first predecessor to
					// produce one re-marks this block dirty.
					continue
				}
			}
			if in[id] != nil && in[id].Equal(st) {
				continue
			}
			in[id] = st
			newOut := a.transfer(st, id)
			if out[id] == nil || !out[id].Equal(newOut) {
				out[id] = newOut
				for _, e := range xb.Succs {
					dirty[e.To] = true
				}
				changed = true
			}
		}
	}
	for id := range in {
		if in[id] == nil {
			in[id] = NewState(cfg) // only the entry has no predecessors
		}
	}

	// One final pass to record in-states and per-reference classification.
	for _, id := range x.Topo {
		xb := x.Blocks[id]
		res.In[id] = in[id]
		st := in[id].Clone()
		instrs := x.Prog.Blocks[xb.Orig].Instrs
		inRest := len(xb.Ctx) > 0 && xb.Ctx[len(xb.Ctx)-1] == 'R'
		for i, ins := range instrs {
			blk := a.blkOf[id][i]
			cl := st.Classify(blk)
			// Persistence upgrade (first-miss classification): a
			// not-classified reference in an other-iterations context whose
			// block can never have been evicted since its load pays its one
			// miss in the first-iteration context; here it is a hit.
			if cl == NotClassified && inRest && st.Persistent(blk) {
				cl = FirstMiss
			}
			res.Class[id][i] = cl
			st.Access(blk)
			if ins.Kind == isa.KindPrefetch {
				tgt := lay.MemBlock(ins.Target, cfg.BlockBytes)
				st.PrefetchFill(tgt, res.Effective[id][i])
			}
		}
	}
	return res
}

// transfer pushes the in-state of expanded block p through its instruction
// sequence, applying the precise (effectiveness-aware) prefetch fill.
func (a *analyzer) transfer(st *State, p int) *State {
	xb := a.x.Blocks[p]
	out := st.Clone()
	instrs := a.x.Prog.Blocks[xb.Orig].Instrs
	for i, ins := range instrs {
		out.Access(a.blkOf[p][i])
		if ins.Kind == isa.KindPrefetch {
			tgt := a.lay.MemBlock(ins.Target, a.cfg.BlockBytes)
			out.PrefetchFill(tgt, a.res.Effective[p][i])
		}
	}
	return out
}

// latencyHidden reports whether at least lambda instruction fetches separate
// the prefetch at r from every first use of memory block tgt reachable from
// it, on every path of the expanded graph. Each fetch takes at least one
// cycle, so lambda intervening fetches guarantee the fill has completed.
func latencyHidden(x *vivu.Prog, lay *isa.Layout, cfg cache.Config, r vivu.Ref, tgt uint64, lambda int) bool {
	type node struct {
		xb, idx int
	}
	// Breadth-first exploration counting fetched instructions after the
	// prefetch; stop a branch when its count reaches lambda.
	start := node{r.XB, r.Index}
	type qent struct {
		n    node
		dist int
	}
	seen := map[node]int{start: 0}
	queue := []qent{{start, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Successor references of cur.
		xb := x.Blocks[cur.n.xb]
		instrs := x.Prog.Blocks[xb.Orig].Instrs
		var succs []node
		if cur.n.idx+1 < len(instrs) {
			succs = []node{{cur.n.xb, cur.n.idx + 1}}
		} else {
			for _, e := range xb.Succs {
				succs = append(succs, node{e.To, 0})
			}
		}
		for _, s := range succs {
			d := cur.dist + 1
			sb := x.Blocks[s.xb]
			blk := lay.MemBlock(isa.InstrRef{Block: sb.Orig, Index: s.idx}, cfg.BlockBytes)
			if blk == tgt {
				if d-1 < lambda {
					// Fewer than lambda fetches between the prefetch and
					// this use: the fill may still be in flight.
					return false
				}
				continue // this use is covered; don't explore past it
			}
			if d >= lambda {
				continue // any later use is safely beyond the latency
			}
			if old, ok := seen[s]; !ok || d < old {
				seen[s] = d
				queue = append(queue, qent{s, d})
			}
		}
	}
	return true
}
