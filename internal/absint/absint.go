// Package absint implements the abstract cache semantics of classical
// cache-aware WCET analysis (Ferdinand-style must/may analysis with LRU
// aging), extended — as the paper requires — with the effect of software
// prefetch instructions. The fixpoint runs on the VIVU-expanded graph, so
// first-iteration and other-iteration references of every loop are
// classified separately. The transfer functions are selected by the cache
// configuration's replacement policy (see policy.go): LRU is the paper's
// exact semantics, FIFO and tree-PLRU use sound but coarser transfers.
//
// Classification soundness is the load-bearing invariant: a reference
// classified AlwaysHit must hit in every concrete execution that respects
// the loop bounds (a property test in this repository checks exactly that).
// Prefetch fills therefore enter the must state only when the fill latency
// is provably hidden (the prefetch is *effective* in the sense of the
// paper's Definition 10); otherwise the fill only ages the target set in the
// must state and joins the may state.
//
// Besides the from-scratch Analyze, the package offers AnalyzeFrom, an
// incremental re-analysis seeded from a previous Result (see
// incremental.go): only the blocks whose transfer function actually changed
// — and the region reachable from them — are re-solved, which is what makes
// the optimizer's validate-and-commit loop affordable.
package absint

import (
	"context"
	"sort"

	"ucp/internal/cache"
	"ucp/internal/faults"
	"ucp/internal/interrupt"
	"ucp/internal/isa"
	"ucp/internal/vivu"
)

// Classification is the outcome of abstract interpretation for one
// reference.
type Classification uint8

const (
	// NotClassified: the reference may hit or miss; WCET analysis must
	// assume a miss.
	NotClassified Classification = iota
	// AlwaysHit: the must analysis guarantees the block is cached.
	AlwaysHit
	// AlwaysMiss: the may analysis guarantees the block is absent.
	AlwaysMiss
	// FirstMiss: the persistence analysis guarantees the block, once
	// loaded, is never evicted — the reference misses at most on the first
	// iteration of its context. WCET analysis charges the miss to the
	// first-iteration instance and a hit to the other-iterations one.
	FirstMiss
)

// String returns the conventional two-letter tag for the classification.
func (c Classification) String() string {
	switch c {
	case AlwaysHit:
		return "AH"
	case AlwaysMiss:
		return "AM"
	case FirstMiss:
		return "FM"
	default:
		return "NC"
	}
}

// entry packs a memory block and its age bound into one word: the block
// number in the upper 56 bits, the age in the low 8. Memory-block numbers
// are addresses divided by the line size, far below 2^56, and ages are
// capped at the associativity, far below 2^8. The packing halves the bytes
// every state copy, join, and comparison moves, and makes entry comparison
// a single integer compare. Within one cache set a block appears at most
// once, so ordering entries by their packed value orders them by block.
type entry uint64

const ageBits = 8

func mkEntry(blk uint64, age uint8) entry { return entry(blk<<ageBits | uint64(age)) }

func (e entry) blk() uint64 { return uint64(e) >> ageBits }
func (e entry) age() uint8  { return uint8(e) }

// setState is the abstract state of a single cache set: blocks paired with
// age bounds (upper bounds in must states, lower bounds in may states),
// sorted by block for canonical comparison.
type setState []entry

// smallSetScan is the length up to which find and insert use a linear scan
// instead of a binary search. Every Table 2 configuration has assoc ≤ 4, so
// must and may sets never exceed four entries and always take the scan path;
// only persistence sets (which track every block ever seen) can grow past
// it.
const smallSetScan = 8

func (s setState) find(blk uint64) int {
	if len(s) <= smallSetScan {
		for i := range s {
			if b := s[i].blk(); b == blk {
				return i
			} else if b > blk {
				return -1
			}
		}
		return -1
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].blk() >= blk })
	if i < len(s) && s[i].blk() == blk {
		return i
	}
	return -1
}

func (s setState) insert(blk uint64, age uint8) setState {
	var i int
	if len(s) <= smallSetScan {
		for i < len(s) && s[i].blk() < blk {
			i++
		}
	} else {
		i = sort.Search(len(s), func(i int) bool { return s[i].blk() >= blk })
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = mkEntry(blk, age)
	return s
}

func (s setState) remove(i int) setState { return append(s[:i], s[i+1:]...) }

func (s setState) equal(o setState) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// fnv-1a over the entries; used for the State hash and set interning.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (s setState) hash() uint64 {
	h := uint64(fnvOffset)
	for _, e := range s {
		h = (h ^ uint64(e)) * fnvPrime
	}
	return h
}

// State is an abstract cache state: a must, a may, and a persistence
// component per set. The persistence component tracks, for every block ever
// loaded, an upper bound on its maximal LRU age since that load; a block
// whose bound stays below the associativity can never have been evicted
// (ages are capped at the associativity, the "maybe evicted" top element).
type State struct {
	cfg  cache.Config
	tr   policyTransfer // transfer functions for cfg.Policy (see policy.go)
	must []setState
	may  []setState
	pers []setState
	// nMust/nMay/nPers cache the total entry count per component so Equal
	// rejects differing states in O(1) — the dominant outcome inside the
	// fixpoint.
	nMust, nMay, nPers int32
	// hash caches the structural hash; valid only while hashOK. Mutators
	// clear it, interning (see incremental.go) sets it, and Equal uses a
	// mismatch of two valid hashes as a second O(1) early exit.
	hash   uint64
	hashOK bool
	// buf is the backing array the per-set slices are carved from; pooled
	// states reuse it across fixpoint rounds instead of reallocating.
	buf []entry
}

// NewState returns the abstract state of an empty cache: nothing is
// guaranteed resident (must = ∅) and nothing may be resident (may = ∅), the
// cold-start state ĉ_I.
func NewState(cfg cache.Config) *State {
	n := cfg.NumSets()
	// One header array backs all three components, so a fresh state costs
	// two allocations instead of four.
	h := make([]setState, 3*n)
	return &State{
		cfg:  cfg,
		tr:   transferFor(cfg),
		must: h[0:n:n],
		may:  h[n : 2*n : 2*n],
		pers: h[2*n:],
	}
}

// cloneHeadroom is the spare capacity carved per set so the following
// transfer's insertions rarely reallocate.
const cloneHeadroom = 2

// copyFrom makes s an exact copy of src, reusing s's backing buffer when it
// is large enough. s and src must share a configuration.
func (s *State) copyFrom(src *State) {
	n := len(src.must)
	total := 0
	for i := 0; i < n; i++ {
		total += len(src.must[i]) + len(src.may[i]) + len(src.pers[i]) + 3*cloneHeadroom
	}
	if cap(s.buf) < total {
		s.buf = make([]entry, total)
	}
	buf := s.buf[:cap(s.buf)]
	off := 0
	carve := func(from setState) setState {
		l := len(from)
		dst := buf[off : off+l : off+l+cloneHeadroom]
		copy(dst, from)
		off += l + cloneHeadroom
		return dst
	}
	for i := 0; i < n; i++ {
		s.must[i] = carve(src.must[i])
		s.may[i] = carve(src.may[i])
		s.pers[i] = carve(src.pers[i])
	}
	s.nMust, s.nMay, s.nPers = src.nMust, src.nMay, src.nPers
	s.hash, s.hashOK = src.hash, src.hashOK
}

// copyCompact makes s an exact-size copy of src, with no growth headroom:
// the copy for states that are retained but never mutated again (the
// recorded in-states of a result).
func (s *State) copyCompact(src *State) {
	n := len(src.must)
	total := int(src.nMust + src.nMay + src.nPers)
	if cap(s.buf) < total {
		s.buf = make([]entry, total)
	}
	buf := s.buf[:cap(s.buf)]
	off := 0
	carve := func(from setState) setState {
		l := len(from)
		dst := buf[off : off+l : off+l]
		copy(dst, from)
		off += l
		return dst
	}
	for i := 0; i < n; i++ {
		s.must[i] = carve(src.must[i])
		s.may[i] = carve(src.may[i])
		s.pers[i] = carve(src.pers[i])
	}
	s.nMust, s.nMay, s.nPers = src.nMust, src.nMay, src.nPers
	s.hash, s.hashOK = src.hash, src.hashOK
}

// Clone deep-copies the state. All per-set slices are carved out of one
// backing array (with spare slots per set, so the following transfer's
// insertions rarely reallocate); this keeps the fixpoint from drowning in
// small allocations.
func (s *State) Clone() *State {
	c := NewState(s.cfg)
	c.copyFrom(s)
	return c
}

// Equal reports whether two states are identical. The cached entry counts
// and (when both are valid) the cached hashes reject unequal states without
// walking the sets.
func (s *State) Equal(o *State) bool {
	if s == o {
		return true
	}
	if s.cfg != o.cfg || s.nMust != o.nMust || s.nMay != o.nMay || s.nPers != o.nPers {
		return false
	}
	if s.hashOK && o.hashOK && s.hash != o.hash {
		return false
	}
	for i := range s.must {
		if !s.must[i].equal(o.must[i]) {
			return false
		}
	}
	for i := range s.may {
		if !s.may[i].equal(o.may[i]) {
			return false
		}
	}
	for i := range s.pers {
		if !s.pers[i].equal(o.pers[i]) {
			return false
		}
	}
	return true
}

// Entries returns the total number of tracked entries across the must, may,
// and persistence components (a size measure for benchmarks and diagnostics).
func (s *State) Entries() int { return int(s.nMust + s.nMay + s.nPers) }

// MustContains reports whether blk is guaranteed resident.
func (s *State) MustContains(blk uint64) bool {
	return s.must[s.cfg.SetOf(blk)].find(blk) >= 0
}

// MayContains reports whether blk may be resident.
func (s *State) MayContains(blk uint64) bool {
	return s.may[s.cfg.SetOf(blk)].find(blk) >= 0
}

// Persistent reports whether blk, if it was ever loaded, is guaranteed not
// to have been evicted since (its persistence age bound is below the
// policy's persistence horizon — the associativity for LRU and FIFO, the
// log2(a)+1 virtual associativity for tree-PLRU).
func (s *State) Persistent(blk uint64) bool {
	set := s.pers[s.cfg.SetOf(blk)]
	if i := set.find(blk); i >= 0 {
		return set[i].age() < s.tr.persLimit()
	}
	// Never loaded on any path reaching here: the access itself will be
	// the (single) first load.
	return true
}

// Classify returns the classification of an access to blk in this state.
func (s *State) Classify(blk uint64) Classification {
	if s.MustContains(blk) {
		return AlwaysHit
	}
	if !s.MayContains(blk) {
		return AlwaysMiss
	}
	return NotClassified
}

// Access applies the abstract update for a reference to blk to all
// components (the abstract update function Û) under the configured
// replacement policy.
func (s *State) Access(blk uint64) {
	si := s.cfg.SetOf(blk)
	m0, y0, p0 := len(s.must[si]), len(s.may[si]), len(s.pers[si])
	s.tr.access(s, si, blk)
	s.nMust += int32(len(s.must[si]) - m0)
	s.nMay += int32(len(s.may[si]) - y0)
	s.nPers += int32(len(s.pers[si]) - p0)
	s.hashOK = false
}

// PrefetchFill applies the abstract effect of a prefetch fill of blk.
//
// Must component: when the prefetch is effective the fill is guaranteed
// complete before the next use of blk, so it behaves like an access;
// otherwise the fill lands at an unknown time and may displace any
// guaranteed block, so the component only ages.
//
// May component: the fill *may* have landed immediately, so blk enters at
// age zero — but it may equally still be in flight, so no other block's
// minimum age grows (the join of the filled and unfilled possibilities).
func (s *State) PrefetchFill(blk uint64, effective bool) {
	si := s.cfg.SetOf(blk)
	m0, y0, p0 := len(s.must[si]), len(s.may[si]), len(s.pers[si])
	s.tr.fill(s, si, blk, effective)
	s.nMust += int32(len(s.must[si]) - m0)
	s.nMay += int32(len(s.may[si]) - y0)
	s.nPers += int32(len(s.pers[si]) - p0)
	s.hashOK = false
}

// mustUpdate is the must-analysis LRU update: the accessed block gets age 0;
// blocks younger than its previous upper-bound age grow older by one; blocks
// aged past the associativity are no longer guaranteed. The input slice is
// updated in place (callers own their states).
func mustUpdate(s setState, m uint64, assoc uint8) setState {
	prev := assoc // treat "not guaranteed" as the oldest possible age
	if i := s.find(m); i >= 0 {
		prev = s[i].age()
		s = s.remove(i)
	}
	w := 0
	for _, e := range s {
		if e.age() < prev {
			e++ // ages live in the low bits, so +1 ages the entry
		}
		if e.age() < assoc {
			s[w] = e
			w++
		}
	}
	return s[:w].insert(m, 0)
}

// mustAgeAll ages every guaranteed block by one (the conservative must
// update for a fill whose completion time is unknown), in place.
func mustAgeAll(s setState, assoc uint8) setState {
	w := 0
	for _, e := range s {
		e++
		if e.age() < assoc {
			s[w] = e
			w++
		}
	}
	return s[:w]
}

// mayInsertFresh adds blk at minimum age zero without aging anything else:
// the may effect of an event that may or may not have happened yet.
func mayInsertFresh(s setState, blk uint64) setState {
	if i := s.find(blk); i >= 0 {
		s[i] = mkEntry(blk, 0)
		return s
	}
	return s.insert(blk, 0)
}

// persUpdate is the persistence update: the accessed block's age bound
// resets to zero; younger blocks age by one, capped at the associativity
// (the "maybe evicted" marker) but never removed — once a block has been
// seen, the analysis keeps tracking whether it could have been evicted.
func persUpdate(s setState, m uint64, assoc uint8) setState {
	prev := assoc
	if i := s.find(m); i >= 0 {
		prev = s[i].age()
		s = s.remove(i)
	}
	for i := range s {
		if a := s[i].age(); a < prev && a < assoc {
			s[i]++
		}
	}
	return s.insert(m, 0)
}

// persAgeAll ages every tracked bound (a fill at an unknown time).
func persAgeAll(s setState, assoc uint8) setState {
	for i := range s {
		if s[i].age() < assoc {
			s[i]++
		}
	}
	return s
}

// joinPersInto merges persistence states (union with maximal age bounds)
// by appending to dst, which the caller sizes to len(a)+len(b).
func joinPersInto(dst, a, b setState) setState {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch ba, bb := a[i].blk(), b[j].blk(); {
		case ba < bb:
			dst = append(dst, a[i])
			i++
		case ba > bb:
			dst = append(dst, b[j])
			j++
		default:
			// Equal blocks: the larger packed value carries the larger age.
			e := a[i]
			if b[j] > e {
				e = b[j]
			}
			dst = append(dst, e)
			i, j = i+1, j+1
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// mayUpdate is the may-analysis LRU update: the accessed block gets age 0;
// blocks whose lower-bound age does not exceed its previous lower bound grow
// older by one; blocks aged past the associativity cannot be resident.
func mayUpdate(s setState, m uint64, assoc uint8) setState {
	prev := assoc
	if i := s.find(m); i >= 0 {
		prev = s[i].age()
		s = s.remove(i)
	}
	w := 0
	for _, e := range s {
		if e.age() <= prev {
			e++
		}
		if e.age() < assoc {
			s[w] = e
			w++
		}
	}
	return s[:w].insert(m, 0)
}

// joinInto sets s to the join of a and b (which must not be s), reusing s's
// backing buffer: the must component intersects (keeping maximal ages) and
// the may component unites (keeping minimal ages) — the classical join
// functions of [8] — without allocating per set.
func (s *State) joinInto(a, b *State) {
	n := len(a.must)
	total := 0
	for i := 0; i < n; i++ {
		total += min(len(a.must[i]), len(b.must[i])) +
			len(a.may[i]) + len(b.may[i]) +
			len(a.pers[i]) + len(b.pers[i])
	}
	if cap(s.buf) < total {
		s.buf = make([]entry, total)
	}
	buf := s.buf[:cap(s.buf)]
	off := 0
	var nm, ny, np int32
	for i := 0; i < n; i++ {
		bound := min(len(a.must[i]), len(b.must[i]))
		dst := joinMustInto(buf[off:off:off+bound], a.must[i], b.must[i])
		s.must[i] = dst
		nm += int32(len(dst))
		off += bound

		bound = len(a.may[i]) + len(b.may[i])
		dst = joinMayInto(buf[off:off:off+bound], a.may[i], b.may[i])
		s.may[i] = dst
		ny += int32(len(dst))
		off += bound

		bound = len(a.pers[i]) + len(b.pers[i])
		dst = joinPersInto(buf[off:off:off+bound], a.pers[i], b.pers[i])
		s.pers[i] = dst
		np += int32(len(dst))
		off += bound
	}
	s.nMust, s.nMay, s.nPers = nm, ny, np
	s.hashOK = false
}

// Join merges two abstract states flowing into a common program point.
func Join(a, b *State) *State {
	out := NewState(a.cfg)
	out.joinInto(a, b)
	return out
}

func joinMustInto(dst, a, b setState) setState {
	for _, ea := range a {
		if j := b.find(ea.blk()); j >= 0 {
			// Equal blocks: the larger packed value carries the larger age.
			e := ea
			if b[j] > e {
				e = b[j]
			}
			dst = append(dst, e)
		}
	}
	return dst
}

func joinMayInto(dst, a, b setState) setState {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch ba, bb := a[i].blk(), b[j].blk(); {
		case ba < bb:
			dst = append(dst, a[i])
			i++
		case ba > bb:
			dst = append(dst, b[j])
			j++
		default:
			// Equal blocks: the smaller packed value carries the smaller age.
			e := a[i]
			if b[j] < e {
				e = b[j]
			}
			dst = append(dst, e)
			i, j = i+1, j+1
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// Result holds the outcome of the fixpoint: the in-state of every expanded
// block and the classification of every expanded reference.
type Result struct {
	X   *vivu.Prog
	Cfg cache.Config
	// In[xb] is the abstract state on entry to expanded block xb.
	In []*State
	// Class[xb][i] classifies the i-th instruction fetch of expanded
	// block xb.
	Class [][]Classification
	// Effective[xb][i] is meaningful for prefetch instructions: whether
	// the fill latency is provably hidden before the first use of the
	// target block (Definition 10, checked with the conservative
	// one-cycle-per-instruction lower bound).
	Effective [][]bool
	// Changed[xb] reports whether block xb's transfer row or in-state value
	// differs from the previous result's, i.e. whether anything derived
	// from the block could differ. It is nil after a full analysis (every
	// block counts as changed) and set by AnalyzeFrom, so downstream
	// consumers (the WCET assembly) can reuse per-block derivatives of
	// unchanged blocks.
	Changed []bool

	lambda int
	// ops[xb] is the transfer-function encoding of expanded block xb; the
	// incremental path diffs it against the previous result to find the
	// dirty region. Rows of unchanged blocks alias the previous result's.
	ops [][]opRec
	// out[xb] is the abstract state at the exit of xb (nil = bottom, the
	// block was never reached); it seeds incremental re-analysis.
	out []*State
	// sccs is the fixpoint iteration plan; it depends only on the graph
	// structure and is shared across incremental re-analyses.
	sccs *sccPlan
	// scr carries the reusable analysis buffers along the chain of
	// incremental re-analyses seeded from this result.
	scr *scratch
	// interns is the hash-consing table canonical set states live in. It is
	// populated lazily by Intern — interning every converged state would
	// burden the analysis hot path, so only results a caller retains
	// long-term (e.g. a result cache) pay for the deduplication.
	interns *internTable
}

// opRec is one instruction of a transfer function: the memory block the
// fetch accesses and, for prefetches, the target block and effectiveness.
// Two blocks with equal opRec rows have identical transfer functions and
// identical classification behavior for equal in-states.
type opRec struct {
	acc uint64
	tgt uint64
	pft bool
	eff bool
}

type analyzer struct {
	x   *vivu.Prog
	cfg cache.Config
	res *Result
	ops [][]opRec
	sp  *statePool
	ctx context.Context
	chk *interrupt.Checker

	// Fixpoint slots. out[id] is the current exit state of block id (nil =
	// bottom); ownOut marks states created by this call (recyclable through
	// the pool — states seeded from a previous Result are shared and must
	// never be recycled). outChanged records, for the incremental path,
	// whether a block's exit state ended up different from the previous
	// solution's.
	out        []*State
	ownOut     []bool
	dirty      []bool
	outChanged []bool
	// rounds counts cyclic-component convergence rounds, for tracing.
	rounds int
	// scrA/scrB ping-pong through multi-predecessor joins; empty is the
	// cold-cache entry state.
	scrA, scrB, empty *State
}

// checkInterval is how many fixpoint steps pass between context polls: the
// amortized cancellation check costs a counter increment on the hot path and
// still reacts to cancellation within a few microseconds of work.
const checkInterval = 256

// Analyze runs the must/may fixpoint for the expanded program x laid out by
// lay on cache configuration cfg, with a prefetch latency of lambda cycles.
// Cancelling ctx aborts the fixpoint cooperatively: the call returns a typed
// interrupt error (interrupt.ErrCanceled / interrupt.ErrDeadline) and no
// Result.
func Analyze(ctx context.Context, x *vivu.Prog, lay *isa.Layout, cfg cache.Config, lambda int) (*Result, error) {
	return analyze(ctx, x, lay, cfg, lambda, nil)
}

// transferInto pushes src through the instruction sequence of expanded block
// p into dst, applying the precise (effectiveness-aware) prefetch fill.
func (a *analyzer) transferInto(dst, src *State, p int) {
	dst.copyFrom(src)
	for _, op := range a.ops[p] {
		dst.Access(op.acc)
		if op.pft {
			dst.PrefetchFill(op.tgt, op.eff)
		}
	}
}

// joinPreds returns the join of the predecessors' exit states of block id —
// the in-state the transfer function is applied to. The returned state may
// alias a predecessor's out slot (single live predecessor) or one of the
// scratch states; it is only valid until the next joinPreds call. nil means
// bottom: no predecessor has produced a state yet.
func (a *analyzer) joinPreds(id int) *State {
	if id == a.x.Entry {
		return a.empty
	}
	var st *State
	scr := a.scrA
	for _, p := range a.x.Blocks[id].Preds {
		o := a.out[p]
		if o == nil {
			continue
		}
		if st == nil {
			st = o
			continue
		}
		scr.joinInto(st, o)
		st = scr
		if scr == a.scrA {
			scr = a.scrB
		} else {
			scr = a.scrA
		}
	}
	return st
}

// processBlock recomputes one block's equation: join the predecessors,
// apply the transfer function, and publish the new exit state when it
// differs (marking the successors dirty). Reports whether the exit state
// changed. When the recomputed state equals the current one the tentative
// state is recycled and nothing propagates — this is the value cutoff that
// keeps incremental re-analysis local.
func (a *analyzer) processBlock(id int) bool {
	a.dirty[id] = false
	st := a.joinPreds(id)
	if st == nil {
		// No predecessor state yet: the first predecessor to produce one
		// re-marks this block dirty.
		return false
	}
	tmp := a.sp.get()
	a.transferInto(tmp, st, id)
	if a.out[id] != nil && a.out[id].Equal(tmp) {
		a.sp.put(tmp)
		return false
	}
	if a.ownOut[id] {
		a.sp.put(a.out[id])
	}
	a.out[id] = tmp
	a.ownOut[id] = true
	for _, e := range a.x.Blocks[id].Succs {
		a.dirty[e.To] = true
	}
	return true
}

// solve runs the fixpoint over the strongly-connected components of the
// expanded graph in condensation topological order. When a component is
// reached, every predecessor outside it already holds its final (least
// fixpoint) value, so:
//
//   - an acyclic (singleton, no self edge) component is solved by a single
//     transfer — and if the result equals the seeded previous value, nothing
//     propagates;
//   - a cyclic component with a dirty member restarts from bottom as a
//     whole and iterates to convergence, which is the least fixpoint of the
//     subsystem under its (final) external inputs; members whose converged
//     state equals the previous solution get their previous state pointer
//     restored, so sharing across chained results is preserved.
//
// Components with no dirty member are skipped entirely: their equations and
// inputs are unchanged, so the seeded previous values are already final.
//
// The fixpoint is interruptible: the amortized checker is polled once per
// component and once per cyclic convergence round, so a canceled context
// unwinds the solve within one round. An aborted solve leaves the seed
// result (prev) untouched — seeded states are shared, never mutated, never
// recycled — so the caller's previous Result stays valid for a later retry.
func (a *analyzer) solve(plan *sccPlan) error {
	var stash []*State
	for ci, comp := range plan.comps {
		if err := a.chk.Check(); err != nil {
			return err
		}
		if !plan.cyclic[ci] {
			id := comp[0]
			if a.dirty[id] && a.processBlock(id) {
				a.outChanged[id] = true
			}
			continue
		}
		hasDirty := false
		for _, id := range comp {
			if a.dirty[id] {
				hasDirty = true
				break
			}
		}
		if !hasDirty {
			continue
		}
		// Restart the whole component from bottom. Continuing from seeded
		// (previous-solution) states would not be monotone from below and
		// could overshoot the least fixpoint.
		stash = stash[:0]
		for _, id := range comp {
			stash = append(stash, a.out[id])
			a.out[id] = nil
			a.ownOut[id] = false // seeds are shared; new states re-mark themselves
			a.dirty[id] = true
		}
		for changed := true; changed; {
			a.rounds++
			if err := a.chk.Check(); err != nil {
				return err
			}
			if err := faults.Fire(a.ctx, "absint.round", ""); err != nil {
				return err
			}
			changed = false
			for _, id := range comp {
				if a.dirty[id] && a.processBlock(id) {
					changed = true
				}
			}
		}
		for k, id := range comp {
			prev := stash[k]
			switch {
			case prev == nil:
				a.outChanged[id] = a.out[id] != nil
			case a.out[id] != nil && a.out[id].Equal(prev):
				// Same value: restore the previous pointer and recycle the
				// recomputed state (downstream consumers keep sharing).
				if a.ownOut[id] {
					a.sp.put(a.out[id])
				}
				a.out[id] = prev
				a.ownOut[id] = false
			default:
				a.outChanged[id] = true
			}
		}
	}
	return nil
}

// classify records the in-state and the per-reference classification of
// expanded block id into the result.
func (a *analyzer) classify(id int, in *State, walk *State) {
	x := a.x
	xb := x.Blocks[id]
	res := a.res
	res.In[id] = in
	walk.copyFrom(in)
	row := a.ops[id]
	cls := make([]Classification, len(row))
	inRest := len(xb.Ctx) > 0 && xb.Ctx[len(xb.Ctx)-1] == 'R'
	for i, op := range row {
		cl := walk.Classify(op.acc)
		// Persistence upgrade (first-miss classification): a
		// not-classified reference in an other-iterations context whose
		// block can never have been evicted since its load pays its one
		// miss in the first-iteration context; here it is a hit.
		if cl == NotClassified && inRest && walk.Persistent(op.acc) {
			cl = FirstMiss
		}
		cls[i] = cl
		walk.Access(op.acc)
		if op.pft {
			walk.PrefetchFill(op.tgt, op.eff)
		}
	}
	res.Class[id] = cls
}
