package absint

import (
	"sort"

	"ucp/internal/vivu"
)

// sccPlan is the iteration strategy of the fixpoint: the strongly-connected
// components of the expanded graph in condensation topological order, each
// member list in ACFG topological order. Acyclic components are solved by a
// single transfer once their predecessors are final; cyclic components
// (residual-loop regions) iterate locally to convergence. The plan depends
// only on the graph structure — in-place instruction edits keep it valid —
// so it travels inside the Result and is reused across incremental
// re-analyses.
type sccPlan struct {
	comps  [][]int
	cyclic []bool
}

// buildSCCPlan runs Tarjan's algorithm over the expanded graph and orders
// the components topologically (Tarjan emits them in reverse topological
// order of the condensation).
func buildSCCPlan(x *vivu.Prog) *sccPlan {
	n := len(x.Blocks)
	index := make([]int32, n) // 0 = unvisited, else visit order + 1
	low := make([]int32, n)
	onStack := make([]bool, n)
	selfLoop := make([]bool, n)
	stack := make([]int32, 0, n)
	plan := &sccPlan{}
	var next int32
	var strong func(v int)
	strong = func(v int) {
		next++
		index[v], low[v] = next, next
		stack = append(stack, int32(v))
		onStack[v] = true
		for _, e := range x.Blocks[v].Succs {
			w := e.To
			if w == v {
				selfLoop[v] = true
			}
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := int(stack[len(stack)-1])
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			plan.comps = append(plan.comps, comp)
			plan.cyclic = append(plan.cyclic, len(comp) > 1 || selfLoop[v])
		}
	}
	for _, v := range x.Topo {
		if index[v] == 0 {
			strong(v)
		}
	}
	// Reverse into condensation topological order.
	for i, j := 0, len(plan.comps)-1; i < j; i, j = i+1, j-1 {
		plan.comps[i], plan.comps[j] = plan.comps[j], plan.comps[i]
		plan.cyclic[i], plan.cyclic[j] = plan.cyclic[j], plan.cyclic[i]
	}
	// Iterate cyclic components in ACFG topological order, which reaches
	// convergence in the fewest passes on reducible regions.
	pos := make([]int32, n)
	for i, v := range x.Topo {
		pos[v] = int32(i)
	}
	for _, comp := range plan.comps {
		if len(comp) > 1 {
			sort.Slice(comp, func(i, j int) bool { return pos[comp[i]] < pos[comp[j]] })
		}
	}
	return plan
}
