package absint

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/vivu"
)

// policiesUnderTest returns the replacement policies the TestPolicy* tests
// should cover: every supported policy, or just the one named by the
// UCP_POLICY environment variable (the CI policy matrix runs the suite once
// per policy that way).
func policiesUnderTest(t *testing.T) []cache.Policy {
	t.Helper()
	s := strings.ToLower(strings.TrimSpace(os.Getenv("UCP_POLICY")))
	if s == "" || s == "all" {
		return cache.Policies()
	}
	p, err := cache.ParsePolicy(s)
	if err != nil {
		t.Fatalf("UCP_POLICY: %v", err)
	}
	return []cache.Policy{p}
}

// TestPolicyClassificationSoundness is TestClassificationSoundness run under
// every replacement policy: the concrete driver replays the program against
// a cache.State with the same policy the abstract analysis modeled, so a
// single unsound transfer (an AH that can miss, an AM that can hit) fails
// the matching policy here.
func TestPolicyClassificationSoundness(t *testing.T) {
	programs := []*isa.Program{
		isa.Build("p1", isa.Loop(6, 4, isa.Code(10)), isa.Code(5)),
		isa.Build("p2", isa.If(0.5, isa.S(isa.Code(8)), isa.S(isa.Code(12))), isa.Loop(5, 3, isa.Code(6))),
		isa.Build("p3", isa.Loop(4, 3, isa.Code(3), isa.Loop(3, 2, isa.Code(5)), isa.Code(2))),
		isa.Build("p4", isa.Loop(8, 6, isa.IfThen(0.3, isa.Code(20)), isa.Code(4))),
	}
	cfgs := []cache.Config{
		{Assoc: 1, BlockBytes: 16, CapacityBytes: 128},
		{Assoc: 2, BlockBytes: 16, CapacityBytes: 256},
		{Assoc: 4, BlockBytes: 32, CapacityBytes: 512},
	}
	for _, pol := range policiesUnderTest(t) {
		for _, p := range programs {
			for _, base := range cfgs {
				cfg := base
				cfg.Policy = pol
				if err := cfg.Valid(); err != nil {
					t.Fatal(err)
				}
				x, err := vivu.Expand(p)
				if err != nil {
					t.Fatal(err)
				}
				lay := isa.NewLayout(p)
				res := testAnalyze(t, x, lay, cfg, 10)

				classOf := func(block, index int, iter int) Classification {
					agg := Classification(255)
					for _, xb := range x.Blocks {
						if xb.Orig != block {
							continue
						}
						if len(xb.Ctx) > 0 {
							last := xb.Ctx[len(xb.Ctx)-1]
							if iter == 0 && last != 'F' {
								continue
							}
							if iter > 0 && last != 'R' {
								continue
							}
						}
						cl := res.Class[xb.ID][index]
						if agg == 255 {
							agg = cl
						} else if agg != cl {
							return NotClassified
						}
					}
					if agg == 255 {
						return NotClassified
					}
					return agg
				}

				rng := rand.New(rand.NewSource(42))
				for run := 0; run < 10; run++ {
					for _, ev := range concreteRun(p, cfg, rng) {
						cl := classOf(ev.block, ev.index, ev.iteration)
						if cl == AlwaysHit && !ev.hit {
							t.Fatalf("%s/%v: AH ref (%d,%d) missed concretely (iter %d)",
								p.Name, cfg, ev.block, ev.index, ev.iteration)
						}
						if cl == AlwaysMiss && ev.hit {
							t.Fatalf("%s/%v: AM ref (%d,%d) hit concretely (iter %d)",
								p.Name, cfg, ev.block, ev.index, ev.iteration)
						}
					}
				}
			}
		}
	}
}

// Property: must ⊆ may under every policy, through accesses and both kinds
// of prefetch fills.
func TestPolicyMustSubsetOfMay(t *testing.T) {
	for _, pol := range policiesUnderTest(t) {
		cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64, Policy: pol}
		f := func(ops []uint8) bool {
			st := NewState(cfg)
			for _, op := range ops {
				blk := uint64(op % 16)
				switch op >> 6 {
				case 0, 1:
					st.Access(blk)
				case 2:
					st.PrefetchFill(blk, true)
				default:
					st.PrefetchFill(blk, false)
				}
				for b := uint64(0); b < 16; b++ {
					if st.MustContains(b) && !st.MayContains(b) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
}

// transferFor must keep LRU on the exact classical path, reduce 2-way PLRU
// to it, and pick the virtual associativity log2(a)+1 for wider PLRU.
func TestPolicyTransferSelection(t *testing.T) {
	lru := cache.Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 256}
	if _, ok := transferFor(lru).(lruTransfer); !ok {
		t.Fatal("LRU config did not select the exact LRU transfer")
	}
	p2 := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64, Policy: cache.PLRU}
	if _, ok := transferFor(p2).(lruTransfer); !ok {
		t.Fatal("2-way PLRU must reduce to the exact LRU transfer")
	}
	for _, c := range []struct {
		assoc int
		eff   uint8
	}{{4, 3}, {8, 4}} {
		cfg := cache.Config{Assoc: c.assoc, BlockBytes: 16, CapacityBytes: 16 * c.assoc, Policy: cache.PLRU}
		tr, ok := transferFor(cfg).(plruTransfer)
		if !ok || tr.eff != c.eff {
			t.Fatalf("assoc %d: got %#v, want plruTransfer{eff: %d}", c.assoc, transferFor(cfg), c.eff)
		}
	}
	fifo := cache.Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 256, Policy: cache.FIFO}
	if _, ok := transferFor(fifo).(fifoTransfer); !ok {
		t.Fatal("FIFO config did not select the FIFO transfer")
	}
}

// A FIFO hit does not refresh the accessed block's position, so after an
// unknown hit/miss access the block's persistence bound must be kept, not
// reset — resetting would claim more residency than a hit delivers.
func TestPolicyFIFOPersistenceNoRefresh(t *testing.T) {
	s := setState{mkEntry(3, 2), mkEntry(7, 1)}
	out := fifoPersUnknown(s, 3, 4)
	if i := out.find(3); i < 0 || out[i].age() != 2 {
		t.Fatalf("block 3's bound must stay at 2, got %v", out)
	}
	if i := out.find(7); i < 0 || out[i].age() != 2 {
		t.Fatalf("block 7 must age to 2, got %v", out)
	}

	// A definite miss restarts the block and ages everyone else.
	out = fifoPersMiss(setState{mkEntry(3, 2), mkEntry(7, 1)}, 3, 4)
	if i := out.find(3); i < 0 || out[i].age() != 0 {
		t.Fatalf("a definite miss reloads block 3 at bound 0, got %v", out)
	}
	if i := out.find(7); i < 0 || out[i].age() != 2 {
		t.Fatalf("block 7 must age to 2, got %v", out)
	}
}

// The FIFO unknown-access must update keeps the accessed block only at the
// weakest bound (resident either way, position unknown) and ages the rest.
func TestPolicyFIFOMustUnknown(t *testing.T) {
	out := fifoMustUnknown(setState{mkEntry(3, 1), mkEntry(7, 3)}, 9, 4)
	if i := out.find(9); i < 0 || out[i].age() != 3 {
		t.Fatalf("accessed block must enter at assoc-1, got %v", out)
	}
	if i := out.find(3); i < 0 || out[i].age() != 2 {
		t.Fatalf("block 3 must age to 2, got %v", out)
	}
	if out.find(7) >= 0 {
		t.Fatalf("block 7 at bound assoc-1 must fall out when aged, got %v", out)
	}
}

// Under FIFO a definitely-resident block stays classified AH through
// further misses only while its insertion bound allows; under LRU the same
// access pattern keeps it hot. The abstract states must reflect that:
// re-accessing a resident block refreshes the must bound under LRU but not
// under FIFO.
func TestPolicyFIFOAccessDoesNotPromote(t *testing.T) {
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 32, Policy: cache.FIFO} // 1 set
	st := NewState(cfg)
	st.Access(1) // definite miss: must = {1@0}
	st.Access(2) // definite miss: must = {2@0, 1@1}
	st.Access(1) // definite hit: FIFO state untouched
	st.Access(3) // definite miss: shifts 1 out
	if st.MustContains(1) {
		t.Fatal("FIFO: block 1's recent hit must not have refreshed its must bound")
	}

	lruCfg := cfg
	lruCfg.Policy = cache.LRU
	lst := NewState(lruCfg)
	lst.Access(1)
	lst.Access(2)
	lst.Access(1)
	lst.Access(3)
	if !lst.MustContains(1) {
		t.Fatal("LRU: the re-access promotes block 1, which must survive the next miss")
	}
}
