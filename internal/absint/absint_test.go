package absint

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ucp/internal/cache"
	"ucp/internal/interrupt"
	"ucp/internal/isa"
	"ucp/internal/vivu"
)

func mustExpand(t *testing.T, p *isa.Program) (*vivu.Prog, *isa.Layout) {
	t.Helper()
	x, err := vivu.Expand(p)
	if err != nil {
		t.Fatal(err)
	}
	return x, isa.NewLayout(p)
}

func testAnalyze(t *testing.T, x *vivu.Prog, lay *isa.Layout, cfg cache.Config, lambda int) *Result {
	t.Helper()
	res, err := Analyze(context.Background(), x, lay, cfg, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMustUpdateAges(t *testing.T) {
	var s setState
	s = mustUpdate(s, 10, 2)
	s = mustUpdate(s, 20, 2)
	// 20 is MRU (age 0), 10 aged to 1.
	if i := s.find(20); i < 0 || s[i].age() != 0 {
		t.Fatalf("state = %v", s)
	}
	if i := s.find(10); i < 0 || s[i].age() != 1 {
		t.Fatalf("state = %v", s)
	}
	// Re-access 10: both present, ages swap.
	s = mustUpdate(s, 10, 2)
	if i := s.find(20); i < 0 || s[i].age() != 1 {
		t.Fatalf("state = %v", s)
	}
	// A third block evicts the oldest from the must state.
	s = mustUpdate(s, 30, 2)
	if s.find(20) >= 0 {
		t.Fatalf("20 should have aged out: %v", s)
	}
}

func TestMustUpdateDoesNotAgeOlderBlocks(t *testing.T) {
	// Access to a block younger than b must not age b.
	var s setState
	s = mustUpdate(s, 1, 4) // ages: 1:0
	s = mustUpdate(s, 2, 4) // 2:0 1:1
	s = mustUpdate(s, 3, 4) // 3:0 2:1 1:2
	s = mustUpdate(s, 2, 4) // re-access 2 (age 1): only younger (3) ages
	if i := s.find(1); s[i].age() != 2 {
		t.Fatalf("block 1 aged on re-access of a younger block: %v", s)
	}
	if i := s.find(3); s[i].age() != 1 {
		t.Fatalf("block 3 should age to 1: %v", s)
	}
}

func TestJoinMustIntersectsMaxAge(t *testing.T) {
	a := setState{}.insert(1, 0).insert(2, 1)
	b := setState{}.insert(2, 0).insert(3, 1)
	j := joinMust(a, b)
	if j.find(1) >= 0 || j.find(3) >= 0 {
		t.Fatalf("join kept non-common blocks: %v", j)
	}
	if i := j.find(2); i < 0 || j[i].age() != 1 {
		t.Fatalf("join age = %v", j)
	}
}

func TestJoinMayUnionMinAge(t *testing.T) {
	a := setState{}.insert(1, 0).insert(2, 1)
	b := setState{}.insert(2, 0).insert(3, 1)
	j := joinMay(a, b)
	if j.find(1) < 0 || j.find(3) < 0 {
		t.Fatalf("may join must keep the union: %v", j)
	}
	if i := j.find(2); j[i].age() != 0 {
		t.Fatalf("may join age = %v", j)
	}
}

func TestClassifyColdStart(t *testing.T) {
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64}
	st := NewState(cfg)
	if got := st.Classify(5); got != AlwaysMiss {
		t.Fatalf("cold access = %v, want AM", got)
	}
	st.Access(5)
	if got := st.Classify(5); got != AlwaysHit {
		t.Fatalf("after access = %v, want AH", got)
	}
}

func TestAnalyzeCanceled(t *testing.T) {
	p := isa.Build("loop", isa.Loop(10, 8, isa.Code(4)))
	x, lay := mustExpand(t, p)
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Analyze(ctx, x, lay, cfg, 10)
	if res != nil || err == nil {
		t.Fatalf("Analyze on canceled ctx = (%v, %v), want (nil, error)", res, err)
	}
	if !errors.Is(err, interrupt.ErrCanceled) {
		t.Fatalf("err = %v, want interrupt.ErrCanceled", err)
	}
}

func TestAnalyzeFromAbortLeavesPrevUsable(t *testing.T) {
	// An aborted incremental re-analysis must not corrupt the seed result:
	// a later retry from the same prev must still yield the full answer.
	p := isa.Build("loop", isa.Loop(10, 8, isa.Code(4)))
	x, lay := mustExpand(t, p)
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	prev := testAnalyze(t, x, lay, cfg, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := AnalyzeFrom(ctx, x, lay, cfg, 10, prev); res != nil || err == nil {
		t.Fatalf("aborted AnalyzeFrom = (%v, %v), want (nil, error)", res, err)
	}
	retry, err := AnalyzeFrom(context.Background(), x, lay, cfg, 10, prev)
	if err != nil {
		t.Fatal(err)
	}
	want := testAnalyze(t, x, lay, cfg, 10)
	for id := range want.Class {
		for i := range want.Class[id] {
			if retry.Class[id][i] != want.Class[id][i] {
				t.Fatalf("block %d ref %d: retry %v, want %v", id, i, retry.Class[id][i], want.Class[id][i])
			}
		}
	}
}

func TestLoopFirstMissRestHit(t *testing.T) {
	// A loop whose body fits comfortably in cache: the R-context refs must
	// classify always-hit, the F-context refs always-miss (cold start).
	p := isa.Build("loop", isa.Loop(10, 8, isa.Code(4)))
	x, lay := mustExpand(t, p)
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	res := testAnalyze(t, x, lay, cfg, 10)
	for _, xb := range x.Blocks {
		for i, cl := range res.Class[xb.ID] {
			switch {
			case len(xb.Ctx) > 0 && xb.Ctx[len(xb.Ctx)-1] == 'R':
				if cl != AlwaysHit {
					t.Errorf("R-context ref %v/%d classified %v, want AH", xb.Ctx, i, cl)
				}
			}
		}
	}
	// At least one cold F-context miss must exist.
	foundMiss := false
	for _, xb := range x.Blocks {
		for _, cl := range res.Class[xb.ID] {
			if cl == AlwaysMiss {
				foundMiss = true
			}
		}
	}
	if !foundMiss {
		t.Error("no cold miss classified in a cold cache")
	}
}

func TestConflictingLoopNotAllHits(t *testing.T) {
	// A loop body much larger than the cache cannot be all always-hit in
	// its R context.
	p := isa.Build("big", isa.Loop(10, 8, isa.Code(600)))
	x, lay := mustExpand(t, p)
	cfg := cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 256}
	res := testAnalyze(t, x, lay, cfg, 10)
	misses := 0
	for _, xb := range x.Blocks {
		if len(xb.Ctx) == 0 || xb.Ctx[len(xb.Ctx)-1] != 'R' {
			continue
		}
		for _, cl := range res.Class[xb.ID] {
			if cl != AlwaysHit {
				misses++
			}
		}
	}
	if misses == 0 {
		t.Fatal("thrashing loop classified fully always-hit")
	}
}

// concreteRun executes the program with a random driver respecting the loop
// bounds and returns, for every (expanded-block-matching) reference
// executed, whether it hit, so the must analysis can be checked for
// soundness.
type concreteEvent struct {
	block, index int
	iteration    int // 0 = first visit of this loop entry
	hit          bool
}

func concreteRun(p *isa.Program, cfg cache.Config, rng *rand.Rand) []concreteEvent {
	lay := isa.NewLayout(p)
	st := cache.NewState(cfg)
	var events []concreteEvent
	loopIters := map[int]int{} // remaining iterations per loop index
	// headVisits[li] counts header executions since loop li was entered.
	// The VIVU F context covers the first iteration: the header's first
	// check and any body block running before the second check.
	headVisits := map[int]int{}
	cur := p.Entry
	prev := -1
	steps := 0
	for {
		steps++
		if steps > 200000 {
			panic("concrete run did not terminate")
		}
		b := p.Blocks[cur]
		li := p.LoopOf(cur)
		isHead := li >= 0 && p.Loops[li].Head == cur
		if isHead {
			fresh := true
			if prev >= 0 {
				for _, m := range p.Loops[li].Blocks {
					if m == prev {
						fresh = false
					}
				}
			}
			if fresh {
				loopIters[li] = rng.Intn(p.Loops[li].Bound + 1)
				headVisits[li] = 0
			}
		}
		it := 0
		if li >= 0 {
			if isHead {
				it = headVisits[li]
				headVisits[li]++
			} else {
				it = headVisits[li] - 1
			}
		}
		for i := range b.Instrs {
			blk := lay.MemBlock(isa.InstrRef{Block: cur, Index: i}, cfg.BlockBytes)
			hit, _ := st.Access(blk)
			events = append(events, concreteEvent{cur, i, it, hit})
		}
		if len(b.Succs) == 0 {
			return events
		}
		prev = cur
		if isHead {
			if loopIters[li] > 0 {
				loopIters[li]--
				cur = b.Succs[0]
			} else {
				cur = b.Succs[1]
			}
			continue
		}
		if b.Terminator().Kind == isa.KindBranch {
			if rng.Intn(2) == 0 {
				cur = b.Succs[0]
			} else {
				cur = b.Succs[1]
			}
			continue
		}
		cur = b.Succs[0]
	}
}

// Soundness property: no reference classified AlwaysHit may miss in any
// concrete execution, and no reference classified AlwaysMiss may hit —
// where the classification for a concrete visit is looked up in the VIVU
// context matching the visit (first vs. later iteration of the innermost
// loop).
func TestClassificationSoundness(t *testing.T) {
	programs := []*isa.Program{
		isa.Build("p1", isa.Loop(6, 4, isa.Code(10)), isa.Code(5)),
		isa.Build("p2", isa.If(0.5, isa.S(isa.Code(8)), isa.S(isa.Code(12))), isa.Loop(5, 3, isa.Code(6))),
		isa.Build("p3", isa.Loop(4, 3, isa.Code(3), isa.Loop(3, 2, isa.Code(5)), isa.Code(2))),
		isa.Build("p4", isa.Loop(8, 6, isa.IfThen(0.3, isa.Code(20)), isa.Code(4))),
	}
	cfgs := []cache.Config{
		{Assoc: 1, BlockBytes: 16, CapacityBytes: 128},
		{Assoc: 2, BlockBytes: 16, CapacityBytes: 256},
		{Assoc: 4, BlockBytes: 32, CapacityBytes: 512},
	}
	for _, p := range programs {
		for _, cfg := range cfgs {
			x, err := vivu.Expand(p)
			if err != nil {
				t.Fatal(err)
			}
			lay := isa.NewLayout(p)
			res := testAnalyze(t, x, lay, cfg, 10)

			// classOf(block, index, firstIter) — join classifications over
			// all matching contexts (conservative check: if ANY context
			// classifies AH and the concrete visit under that context
			// missed, it is unsound; we map first-iteration visits to
			// all-F contexts of the innermost loop and later visits to
			// ...R contexts).
			classOf := func(block, index int, iter int) Classification {
				agg := Classification(255)
				for _, xb := range x.Blocks {
					if xb.Orig != block {
						continue
					}
					if len(xb.Ctx) > 0 {
						last := xb.Ctx[len(xb.Ctx)-1]
						if iter == 0 && last != 'F' {
							continue
						}
						if iter > 0 && last != 'R' {
							continue
						}
					}
					cl := res.Class[xb.ID][index]
					if agg == 255 {
						agg = cl
					} else if agg != cl {
						return NotClassified // contexts disagree: weakest
					}
				}
				if agg == 255 {
					return NotClassified
				}
				return agg
			}

			rng := rand.New(rand.NewSource(42))
			for run := 0; run < 10; run++ {
				for _, ev := range concreteRun(p, cfg, rng) {
					cl := classOf(ev.block, ev.index, ev.iteration)
					if cl == AlwaysHit && !ev.hit {
						t.Fatalf("%s/%v: AH ref (%d,%d) missed concretely (iter %d)",
							p.Name, cfg, ev.block, ev.index, ev.iteration)
					}
					if cl == AlwaysMiss && ev.hit {
						t.Fatalf("%s/%v: AM ref (%d,%d) hit concretely (iter %d)",
							p.Name, cfg, ev.block, ev.index, ev.iteration)
					}
				}
			}
		}
	}
}

func TestStateCloneEqual(t *testing.T) {
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64}
	a := NewState(cfg)
	a.Access(1)
	a.Access(2)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Access(3)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
}

func TestPrefetchFillMustOnlyWhenEffective(t *testing.T) {
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64}
	st := NewState(cfg)
	st.PrefetchFill(7, true)
	if !st.MustContains(7) {
		t.Fatal("effective fill must enter the must state")
	}
	st2 := NewState(cfg)
	st2.PrefetchFill(7, false)
	if st2.MustContains(7) {
		t.Fatal("non-effective fill must not enter the must state")
	}
	if !st2.MayContains(7) {
		t.Fatal("non-effective fill must enter the may state")
	}
}

func TestNonEffectiveFillAgesMust(t *testing.T) {
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 32} // 1 set
	st := NewState(cfg)
	st.Access(1)
	st.Access(2) // must: 2@0, 1@1
	st.PrefetchFill(9, false)
	if st.MustContains(1) {
		t.Fatal("a fill at unknown time may displace the oldest guaranteed block")
	}
	if !st.MayContains(1) {
		t.Fatal("may must keep the possibly-resident block")
	}
}

// Property: must ⊆ may at every point of any access sequence.
func TestMustSubsetOfMay(t *testing.T) {
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 64}
	f := func(accs []uint8) bool {
		st := NewState(cfg)
		for _, a := range accs {
			st.Access(uint64(a % 16))
			for b := uint64(0); b < 16; b++ {
				if st.MustContains(b) && !st.MayContains(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEffectivenessDistance(t *testing.T) {
	// Prefetch at the start of a long straight block, target far away:
	// effective for small lambda, not for huge lambda.
	p := isa.Build("eff", isa.Code(40))
	// Insert a prefetch at index 1 targeting the instruction at index 30.
	p.InsertInstr(isa.InstrRef{Block: 0, Index: 0}, isa.Instr{Kind: isa.KindPrefetch, Target: isa.InstrRef{Block: 0, Index: 30}})
	x, err := vivu.Expand(p)
	if err != nil {
		t.Fatal(err)
	}
	lay := isa.NewLayout(p)
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 128}

	resShort := testAnalyze(t, x, lay, cfg, 4)
	if !resShort.Effective[x.Topo[0]][1] {
		t.Fatal("prefetch 29+ instructions ahead should hide a 4-cycle latency")
	}
	resLong := testAnalyze(t, x, lay, cfg, 1000)
	if resLong.Effective[x.Topo[0]][1] {
		t.Fatal("a 1000-cycle latency cannot hide in 29 instructions")
	}
}

func TestPersistenceFirstMissClassification(t *testing.T) {
	// A loop over a switch: each arm's block is loaded in whatever
	// iteration first takes it, and never evicted (everything fits).
	// The arm references cannot be always-hit (the must join loses them)
	// but must be recognized as first-miss in the R context.
	p := isa.Build("switchloop",
		isa.Loop(10, 10,
			isa.Switch([]float64{1, 1, 1},
				isa.S(isa.Code(4)), isa.S(isa.Code(4)), isa.S(isa.Code(4))),
			isa.Code(2),
		),
	)
	x, lay := mustExpand(t, p)
	cfg := cache.Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 1024}
	res := testAnalyze(t, x, lay, cfg, 10)
	fm := 0
	for _, xb := range x.Blocks {
		if len(xb.Ctx) == 0 || xb.Ctx[len(xb.Ctx)-1] != 'R' {
			continue
		}
		for _, cl := range res.Class[xb.ID] {
			if cl == FirstMiss {
				fm++
			}
		}
	}
	if fm == 0 {
		t.Fatal("persistence analysis found no first-miss references in a fitting switch loop")
	}
}

func TestPersistentAfterEvictionIsFalse(t *testing.T) {
	cfg := cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 32} // 2 sets
	st := NewState(cfg)
	st.Access(0)
	if !st.Persistent(0) {
		t.Fatal("freshly loaded block must be persistent")
	}
	st.Access(2) // same set (2 mod 2 == 0): evicts block 0
	if st.Persistent(0) {
		t.Fatal("a possibly-evicted block must not be persistent")
	}
	// A never-seen block: its access would be the one first load.
	if !st.Persistent(1) {
		t.Fatal("an untouched block's single load is its first miss")
	}
}
