package absint

import (
	"math/bits"

	"ucp/internal/cache"
)

// policyTransfer is the seam between the policy-independent abstract-state
// machinery (packed entries, pooling, interning, joins — see incremental.go)
// and the policy-specific transfer functions. Implementations mutate the
// per-set slices of a State directly; the entry-count and hash bookkeeping
// stays in State.Access / State.PrefetchFill, and the join functions stay
// shared because must/may/persistence joins are lattice operations on age
// bounds, independent of how the bounds evolve.
//
// LRU transfers are the exact classical updates of Ferdinand-style analysis
// and remain bit-identical to the pre-refactor code path. FIFO and PLRU
// transfers are sound but deliberately coarser; see DESIGN.md §9.
type policyTransfer interface {
	// access applies the abstract update of a reference to blk in set si.
	access(s *State, si int, blk uint64)
	// fill applies the abstract effect of a prefetch fill of blk in set si;
	// effective means the fill provably completes before blk's next use.
	fill(s *State, si int, blk uint64, effective bool)
	// persLimit is the age bound below which a persistence entry still
	// guarantees "never evicted since load" (the component's top element).
	persLimit() uint8
}

// transferFor selects the transfer implementation for a configuration.
func transferFor(cfg cache.Config) policyTransfer {
	a := uint8(cfg.Assoc)
	switch cfg.Policy {
	case cache.FIFO:
		return fifoTransfer{assoc: a}
	case cache.PLRU:
		if cfg.Assoc <= 2 {
			// Tree-PLRU with one or two ways is exactly LRU.
			return lruTransfer{assoc: a}
		}
		// Sound must/persistence horizon for tree-PLRU: a block accessed is
		// guaranteed resident for the next log2(a)+1 distinct-block
		// insertions (Heckmann et al., "The influence of processor
		// architecture on the design and the results of WCET tools").
		return plruTransfer{eff: uint8(bits.Len(uint(cfg.Assoc)))}
	}
	return lruTransfer{assoc: a}
}

// --- LRU -----------------------------------------------------------------

// lruTransfer is the paper's exact abstract LRU semantics: the pre-existing
// update functions of this package, called in the pre-existing order.
type lruTransfer struct{ assoc uint8 }

func (t lruTransfer) access(s *State, si int, blk uint64) {
	s.must[si] = mustUpdate(s.must[si], blk, t.assoc)
	s.may[si] = mayUpdate(s.may[si], blk, t.assoc)
	s.pers[si] = persUpdate(s.pers[si], blk, t.assoc)
}

func (t lruTransfer) fill(s *State, si int, blk uint64, effective bool) {
	if effective {
		s.must[si] = mustUpdate(s.must[si], blk, t.assoc)
	} else {
		s.must[si] = mustAgeAll(s.must[si], t.assoc)
	}
	s.may[si] = mayInsertFresh(s.may[si], blk)
	// The fill may displace any block at an unknown time: age the
	// persistence bounds; the target itself may land (age 0 is only safe
	// when effective — otherwise keep whatever bound it had).
	if effective {
		s.pers[si] = persUpdate(s.pers[si], blk, t.assoc)
	} else {
		s.pers[si] = persAgeAll(s.pers[si], t.assoc)
	}
}

func (t lruTransfer) persLimit() uint8 { return t.assoc }

// --- FIFO ----------------------------------------------------------------

// fifoTransfer models FIFO replacement, where a hit leaves the set
// untouched and a miss shifts every block by exactly one position. The
// update is a case split on what the current state can prove about the
// access:
//
//   - blk in must: a definite hit — no component changes (exact).
//   - blk not in may: a definite miss — the insertion shifts everything by
//     one, which is precisely the LRU update functions with the accessed
//     block absent (their "previous age" refinement degenerates to
//     age-everything), except that persistence must age every tracked
//     bound (fifoPersMiss).
//   - otherwise: the join of the hit outcome (no change) and the miss
//     outcome (everything ages, blk at position 0): must ages everything
//     and keeps blk only at the weakest bound assoc−1 (resident either
//     way, position unknown); may takes the minimum, i.e. no aging and blk
//     at lower bound 0; persistence ages every other bound but must NOT
//     reset blk's own bound — unlike LRU, a FIFO hit does not refresh the
//     block's position, so its age keeps counting from the original load.
type fifoTransfer struct{ assoc uint8 }

func (t fifoTransfer) access(s *State, si int, blk uint64) {
	if s.must[si].find(blk) >= 0 {
		return // definite hit: FIFO state is untouched
	}
	if s.may[si].find(blk) < 0 {
		// Definite miss: exact one-position shift of the whole set.
		s.must[si] = mustUpdate(s.must[si], blk, t.assoc)
		s.may[si] = mayUpdate(s.may[si], blk, t.assoc)
		s.pers[si] = fifoPersMiss(s.pers[si], blk, t.assoc)
		return
	}
	// Unknown hit/miss: join of both outcomes.
	s.must[si] = fifoMustUnknown(s.must[si], blk, t.assoc)
	s.may[si] = mayInsertFresh(s.may[si], blk)
	s.pers[si] = fifoPersUnknown(s.pers[si], blk, t.assoc)
}

func (t fifoTransfer) fill(s *State, si int, blk uint64, effective bool) {
	if effective {
		// An effective fill completes before blk's next use, so it behaves
		// exactly like an access: a redundant fill of a resident block is
		// squashed (the definite-hit case), otherwise the block is inserted.
		t.access(s, si, blk)
		return
	}
	s.must[si] = mustAgeAll(s.must[si], t.assoc)
	s.may[si] = mayInsertFresh(s.may[si], blk)
	s.pers[si] = persAgeAll(s.pers[si], t.assoc)
}

func (t fifoTransfer) persLimit() uint8 { return t.assoc }

// fifoMustUnknown is the must update for an access that may hit or miss
// under FIFO: every other bound ages by one (the miss outcome dominates the
// join), and the accessed block is guaranteed resident either way but at an
// unknown position, so it enters at the weakest bound assoc−1.
func fifoMustUnknown(s setState, m uint64, assoc uint8) setState {
	w := 0
	for _, e := range s {
		e++ // ages live in the low bits, so +1 ages the entry
		if e.age() < assoc {
			s[w] = e
			w++
		}
	}
	return s[:w].insert(m, assoc-1)
}

// fifoPersMiss is the persistence update for a definite FIFO miss: the
// insertion shifts the whole set, so every tracked bound ages (capped at
// the limit), and the freshly loaded block restarts at zero.
func fifoPersMiss(s setState, m uint64, assoc uint8) setState {
	if i := s.find(m); i >= 0 {
		s = s.remove(i)
	}
	for j := range s {
		if s[j].age() < assoc {
			s[j]++
		}
	}
	return s.insert(m, 0)
}

// fifoPersUnknown is the persistence update for a may-hit-may-miss FIFO
// access: other bounds age (miss outcome), but the accessed block's own
// bound is kept — a FIFO hit does not reset a block's position, so
// resetting it here would be unsound. A block never tracked before starts
// at zero (this access is its first load on every path through here).
func fifoPersUnknown(s setState, m uint64, assoc uint8) setState {
	found := false
	for j := range s {
		if s[j].blk() == m {
			found = true
			continue
		}
		if s[j].age() < assoc {
			s[j]++
		}
	}
	if !found {
		s = s.insert(m, 0)
	}
	return s
}

// --- tree-PLRU -----------------------------------------------------------

// plruTransfer models tree-PLRU through the classical reduction: the must
// and persistence components run the exact LRU updates against a virtual
// associativity of eff = log2(a)+1, the number of accesses a touched block
// is guaranteed to survive under tree bits (Heckmann et al.). The may
// component cannot bound evictions usefully (a PLRU victim can be almost
// any way), so it only accumulates possibly-resident blocks: AlwaysMiss is
// claimed only for blocks never loaded in the set.
type plruTransfer struct{ eff uint8 }

func (t plruTransfer) access(s *State, si int, blk uint64) {
	s.must[si] = mustUpdate(s.must[si], blk, t.eff)
	s.may[si] = mayInsertFresh(s.may[si], blk)
	s.pers[si] = persUpdate(s.pers[si], blk, t.eff)
}

func (t plruTransfer) fill(s *State, si int, blk uint64, effective bool) {
	if effective {
		s.must[si] = mustUpdate(s.must[si], blk, t.eff)
		s.pers[si] = persUpdate(s.pers[si], blk, t.eff)
	} else {
		s.must[si] = mustAgeAll(s.must[si], t.eff)
		s.pers[si] = persAgeAll(s.pers[si], t.eff)
	}
	s.may[si] = mayInsertFresh(s.may[si], blk)
}

func (t plruTransfer) persLimit() uint8 { return t.eff }
