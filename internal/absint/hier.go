package absint

import (
	"context"

	"ucp/internal/cache"
	"ucp/internal/interrupt"
	"ucp/internal/isa"
	"ucp/internal/obs"
	"ucp/internal/vivu"
)

// This file implements the L2 half of the multi-level analysis after Hardy &
// Puaut ("WCET analysis of multi-level set-associative instruction caches"):
// a must/may/persistence fixpoint over the same VIVU-expanded graph, where
// every transfer is gated by the cache access classification (CAC) derived
// from the L1 analysis. A reference that always hits the L1 never reaches
// the L2 (Never: the L2 state is untouched); one that always misses the L1
// always accesses the L2 (Always: the plain update applies); anything in
// between is Uncertain, and the L2 state after it is the join of the
// access-applied and the access-skipped branches — sound whichever way the
// concrete execution goes.
//
// The analyzer reuses the packed-entry domain, the per-policy transfer
// functions, and the join machinery of the L1 analysis verbatim; only the
// CAC gate and the per-level block mapping are new. It runs as a full
// fixpoint per call (no incremental path): the L2 analysis only executes for
// hierarchy runs, and the graphs are the same small expanded programs the L1
// fixpoint converges on in microseconds.

// cacClass is Hardy & Puaut's cache access classification: whether a
// reference reaches the next cache level.
type cacClass uint8

const (
	// cacNever: the reference is guaranteed to hit the L1, the L2 never
	// sees it.
	cacNever cacClass = iota
	// cacAlways: the reference is guaranteed to miss the L1, the L2 always
	// sees it.
	cacAlways
	// cacUncertain: the reference may or may not reach the L2; both
	// branches must be joined.
	cacUncertain
)

// cacOf derives the CAC from an L1 classification. FirstMiss accesses the
// L2 at most once per region entry, which Uncertain covers soundly.
func cacOf(c Classification) cacClass {
	switch c {
	case AlwaysHit:
		return cacNever
	case AlwaysMiss:
		return cacAlways
	default:
		return cacUncertain
	}
}

// l2op is one instruction of an L2 transfer function: the L2 memory block
// the fetch maps to, the CAC gate, and the fill effect of prefetches.
type l2op struct {
	acc uint64   // L2 memory block of this fetch
	tgt uint64   // L2 memory block of the prefetch target
	cac cacClass // does the fetch reach the L2?
	pft bool     // the instruction is a prefetch (its fill touches the L2)
	l2  bool     // the prefetch targets the L2 (isa.Instr.Level == 2)
	eff bool     // fill latency provably hidden at L2 (L2-level prefetches)
}

type l2analyzer struct {
	x   *vivu.Prog
	cfg cache.Config
	ops [][]l2op
	sp  statePool
	chk *interrupt.Checker
	out []*State
	// tmp/jn serve the Uncertain join inside one op; scrA/scrB ping-pong
	// through multi-predecessor joins; empty is the cold entry state.
	tmp, jn, scrA, scrB, empty *State
}

// AnalyzeL2 runs the CAC-gated L2 fixpoint for hierarchy h over the expanded
// program x, consuming the classifications of the completed L1 analysis l1.
// lambda is the prefetch fill latency in cycles (the same Λ as at L1: both
// fills come from memory). The returned Result classifies every reference
// against the L2 — meaningful only for references whose CAC is not Never;
// the WCET pricing consults the L1 class first, so the others never matter.
func AnalyzeL2(ctx context.Context, x *vivu.Prog, lay *isa.Layout, h cache.Hierarchy, lambda int, l1 *Result) (*Result, error) {
	if err := interrupt.Cause(ctx); err != nil {
		return nil, err
	}
	_, span := obs.Start(ctx, "absint.solve_l2")
	defer span.End()
	cfg := h.L2
	n := len(x.Blocks)
	res := &Result{
		X:         x,
		Cfg:       cfg,
		In:        make([]*State, n),
		Class:     make([][]Classification, n),
		Effective: make([][]bool, n),
		lambda:    lambda,
		out:       make([]*State, n),
	}

	// Per-block transfer rows: the L2 block of every fetch, its CAC from the
	// L1 class, and the prefetch fill targets mapped to L2 granularity. The
	// parallel opRec rows feed the effectiveness walk, which needs the fetch
	// sequence at L2 block granularity.
	ops := make([][]l2op, n)
	ecOps := make([][]opRec, n)
	for _, xb := range x.Blocks {
		instrs := x.Prog.Blocks[xb.Orig].Instrs
		row := make([]l2op, len(instrs))
		ecRow := make([]opRec, len(instrs))
		for i, ins := range instrs {
			op := l2op{
				acc: lay.MemBlock(isa.InstrRef{Block: xb.Orig, Index: i}, cfg.BlockBytes),
				cac: cacOf(l1.Class[xb.ID][i]),
			}
			if ins.Kind == isa.KindPrefetch {
				op.pft = true
				op.l2 = ins.Level == 2
				op.tgt = lay.MemBlock(ins.Target, cfg.BlockBytes)
			}
			row[i] = op
			ecRow[i] = opRec{acc: op.acc, pft: op.pft, tgt: op.tgt}
		}
		ops[xb.ID] = row
		ecOps[xb.ID] = ecRow
	}
	// Effectiveness at L2 (Definition 10 against the L2 block granularity):
	// only prefetches that target the L2 enter the must state when hidden;
	// L1-level prefetch fills pass through the L2 at an unknown time and are
	// always applied as non-effective (age-only) fills.
	ec := newEffCalc(x, ecOps, nil)
	for id, row := range ops {
		effRow := make([]bool, len(row))
		for i := range row {
			if row[i].pft && row[i].l2 {
				row[i].eff = ec.hidden(id, i, row[i].tgt, lambda)
			}
			effRow[i] = row[i].eff
		}
		res.Effective[id] = effRow
	}

	a := &l2analyzer{
		x: x, cfg: cfg, ops: ops,
		sp:  statePool{cfg: cfg},
		chk: interrupt.NewChecker(ctx, checkInterval),
		out: res.out,
	}
	a.tmp, a.jn = a.sp.get(), a.sp.get()
	a.scrA, a.scrB = a.sp.get(), a.sp.get()
	a.empty = NewState(cfg)

	// Round-robin fixpoint in topological order: the domain is finite and
	// every transfer is monotone, so the iteration reaches the least
	// fixpoint; back edges make extra rounds, which the small expanded
	// graphs absorb easily.
	rounds := 0
	for changed := true; changed; {
		rounds++
		changed = false
		for _, id := range x.Topo {
			if err := a.chk.Check(); err != nil {
				return nil, err
			}
			in := a.joinPreds(id)
			if in == nil {
				continue
			}
			next := a.sp.get()
			a.transferInto(next, in, id)
			if a.out[id] != nil && a.out[id].Equal(next) {
				a.sp.put(next)
				continue
			}
			a.sp.put(a.out[id])
			a.out[id] = next
			changed = true
		}
	}
	if span != nil {
		span.Attr("blocks", n)
		span.Attr("rounds", rounds)
	}

	// Classification pass: walk every block's converged in-state through its
	// transfer, classifying each reference before its own update, with the
	// same first-miss persistence upgrade as at L1.
	walk := a.sp.get()
	for _, id := range x.Topo {
		if err := a.chk.Check(); err != nil {
			return nil, err
		}
		a.classify(res, id, walk)
	}
	return res, nil
}

// joinPreds returns the join of the predecessors' exit states of block id
// (the cold state for the entry; nil when no predecessor has a state yet).
// The returned state may alias a predecessor's slot or a scratch state and
// is only valid until the next joinPreds call.
func (a *l2analyzer) joinPreds(id int) *State {
	if id == a.x.Entry {
		return a.empty
	}
	var st *State
	scr := a.scrA
	for _, p := range a.x.Blocks[id].Preds {
		o := a.out[p]
		if o == nil {
			continue
		}
		if st == nil {
			st = o
			continue
		}
		scr.joinInto(st, o)
		st = scr
		if scr == a.scrA {
			scr = a.scrB
		} else {
			scr = a.scrA
		}
	}
	return st
}

// transferInto pushes src through block id's CAC-gated transfer into dst.
func (a *l2analyzer) transferInto(dst, src *State, id int) {
	dst.copyFrom(src)
	for _, op := range a.ops[id] {
		a.applyOp(dst, op)
	}
}

// applyOp applies one reference to an L2 state under its CAC gate: Always
// is the plain update, Never leaves the state untouched, and Uncertain joins
// the applied and unapplied branches. A prefetch fill targeting the L2
// applies with its computed effectiveness; an L1-level prefetch's fill
// passes through the L2 at an unknown time, which the non-effective fill
// soundly over-approximates (it also covers the fill not happening at all —
// a redundant prefetch).
func (a *l2analyzer) applyOp(st *State, op l2op) {
	switch op.cac {
	case cacAlways:
		st.Access(op.acc)
	case cacUncertain:
		a.tmp.copyFrom(st)
		a.tmp.Access(op.acc)
		a.jn.joinInto(st, a.tmp)
		st.copyFrom(a.jn)
	}
	if op.pft {
		st.PrefetchFill(op.tgt, op.l2 && op.eff)
	}
}

// classify records block id's in-state and per-reference L2 classification.
func (a *l2analyzer) classify(res *Result, id int, walk *State) {
	xb := a.x.Blocks[id]
	in := a.inState(id)
	res.In[id] = in
	walk.copyFrom(in)
	row := a.ops[id]
	cls := make([]Classification, len(row))
	inRest := len(xb.Ctx) > 0 && xb.Ctx[len(xb.Ctx)-1] == 'R'
	for i, op := range row {
		cl := walk.Classify(op.acc)
		if cl == NotClassified && inRest && walk.Persistent(op.acc) {
			cl = FirstMiss
		}
		cls[i] = cl
		a.applyOp(walk, op)
	}
	res.Class[id] = cls
}

// inState materializes the converged in-state of block id for the result:
// aliased when a single predecessor feeds it, compact-copied for joins.
func (a *l2analyzer) inState(id int) *State {
	if id == a.x.Entry {
		return NewState(a.cfg)
	}
	live := 0
	for _, p := range a.x.Blocks[id].Preds {
		if a.out[p] != nil {
			live++
		}
	}
	st := a.joinPreds(id)
	switch {
	case st == nil:
		return NewState(a.cfg)
	case live == 1:
		return st
	default:
		c := NewState(a.cfg)
		c.copyCompact(st)
		return c
	}
}
