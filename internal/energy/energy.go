// Package energy is the analytic stand-in for the CACTI 6.5 power/energy
// model the paper uses (Supplement S.4): per-access dynamic energies and
// leakage powers for the level-one instruction cache, plus access energy and
// latency for the 128 MB level-two DRAM, at the two process technologies of
// the evaluation (45 nm and 32 nm).
//
// The constants are not CACTI outputs; they are chosen to preserve the
// relations the paper's conclusions rest on (see DESIGN.md):
//
//   - dynamic read energy grows with capacity, associativity, and block
//     size;
//   - leakage power grows (roughly linearly) with capacity;
//   - scaling from 45 nm to 32 nm shrinks dynamic energy but *raises* the
//     static share of the total — the trend that makes cache locking
//     increasingly unattractive (Section 2.3);
//   - a DRAM access costs vastly more energy and time than a cache hit.
package energy

import (
	"fmt"
	"math"

	"ucp/internal/cache"
	"ucp/internal/wcet"
)

// Tech is a process technology node.
type Tech int

const (
	// Tech45 is the 45 nm node.
	Tech45 Tech = iota
	// Tech32 is the 32 nm node.
	Tech32
)

// String names the node.
func (t Tech) String() string {
	if t == Tech32 {
		return "32nm"
	}
	return "45nm"
}

// Techs returns the technology nodes of the paper's evaluation.
func Techs() []Tech { return []Tech{Tech45, Tech32} }

// techParams holds the node-dependent scale factors.
type techParams struct {
	dynScale   float64 // dynamic energy multiplier vs. the 45 nm base
	leakScale  float64 // leakage power multiplier vs. the 45 nm base
	cycleNS    float64 // clock cycle in nanoseconds
	missCycles int64   // DRAM access latency in cycles
}

func paramsFor(t Tech) techParams {
	switch t {
	case Tech32:
		// Faster clock: the same DRAM latency spans more cycles. Dynamic
		// energy shrinks with feature size; leakage grows.
		return techParams{dynScale: 0.62, leakScale: 1.85, cycleNS: 1.67, missCycles: 24}
	default:
		return techParams{dynScale: 1.0, leakScale: 1.0, cycleNS: 2.5, missCycles: 16}
	}
}

// Model provides energies and timings for one cache configuration at one
// technology node.
type Model struct {
	Cfg  cache.Config
	Tech Tech

	// CacheReadPJ is the dynamic energy of one cache access (tag + data).
	CacheReadPJ float64
	// CacheFillPJ is the dynamic energy of writing one block into the
	// cache (a miss fill or a prefetch fill).
	CacheFillPJ float64
	// LeakageMW is the cache's static power.
	LeakageMW float64
	// DRAMStandbyMW is the background power of the 128 MB level-two DRAM
	// (refresh + standby). It drains over the whole execution, so any
	// ACET reduction converts directly into energy — the effect Section
	// 2.3 of the paper builds its argument on.
	DRAMStandbyMW float64
	// DRAMAccessPJ is the energy of one level-two access (one block).
	DRAMAccessPJ float64
	// CycleNS is the clock period.
	CycleNS float64
	// HitCycles and MissPenalty are the fetch timings; Lambda is the
	// prefetch fill latency.
	HitCycles   int64
	MissPenalty int64
	Lambda      int64

	// Hier is the cache hierarchy the model was derived for; Hier.L1 == Cfg
	// always. The remaining fields are zero for single-level models.
	Hier cache.Hierarchy
	// L2ReadPJ and L2FillPJ are the dynamic energies of an L2 access and an
	// L2 block fill; L2LeakageMW is the L2's static power.
	L2ReadPJ    float64
	L2FillPJ    float64
	L2LeakageMW float64
	// L2HitCycles is the additional fetch time of an L1 miss served by the
	// L2 (beyond HitCycles); always < MissPenalty.
	L2HitCycles int64
}

// NewModel derives the model for cfg at tech.
func NewModel(cfg cache.Config, tech Tech) Model {
	return NewModelHier(cache.Hier1(cfg), tech)
}

// NewModelHier derives the model for the hierarchy h at tech. With no L2
// configured it is exactly NewModel on h.L1: every L2 field stays zero and
// the timing parameters are unchanged, so single-level results are
// bit-identical. With an L2, the same geometric formulas price the L2's
// reads, fills, and leakage, and the L2 hit latency is a deterministic
// integer that grows logarithmically with capacity and always undercuts the
// memory penalty.
func NewModelHier(h cache.Hierarchy, tech Tech) Model {
	if err := h.Valid(); err != nil {
		panic(err)
	}
	cfg := h.L1
	tp := paramsFor(tech)
	capKB := float64(cfg.CapacityBytes) / 1024

	// Dynamic read energy: grows sublinearly with capacity (longer word
	// and bit lines), with associativity (parallel tag/data ways), and
	// with block size (wider data output).
	read := 4.2 * math.Pow(capKB, 0.45) * math.Pow(float64(cfg.Assoc), 0.32) *
		math.Pow(float64(cfg.BlockBytes)/16, 0.22) * tp.dynScale
	// Fill energy: a whole block is written; scales with block size.
	fill := 6.5 * math.Pow(capKB, 0.30) * math.Pow(float64(cfg.BlockBytes)/16, 0.85) * tp.dynScale
	// Leakage: proportional to the number of bits, heavier at 32 nm.
	leak := 0.011 * capKB * tp.leakScale

	// DRAM: 128 MB module; energy per block transfer grows mildly with the
	// block size, and the module's refresh/standby power drains for the
	// whole execution.
	dram := 610 * math.Pow(float64(cfg.BlockBytes)/16, 0.6) * (0.5 + 0.5*tp.dynScale)
	// The 128 MB module is off-chip commodity DRAM: its standby power does
	// not scale with the processor's technology node.
	standby := 42.0

	m := Model{
		Cfg:           cfg,
		Tech:          tech,
		Hier:          h,
		CacheReadPJ:   read,
		CacheFillPJ:   fill,
		LeakageMW:     leak,
		DRAMStandbyMW: standby,
		DRAMAccessPJ:  dram,
		CycleNS:       tp.cycleNS,
		HitCycles:     1,
		MissPenalty:   tp.missCycles,
		Lambda:        tp.missCycles,
	}
	if h.HasL2() {
		l2 := h.L2
		l2KB := float64(l2.CapacityBytes) / 1024
		// The L2 is a larger, slower array of the same technology: the same
		// read/fill/leakage formulas apply to its geometry.
		m.L2ReadPJ = 4.2 * math.Pow(l2KB, 0.45) * math.Pow(float64(l2.Assoc), 0.32) *
			math.Pow(float64(l2.BlockBytes)/16, 0.22) * tp.dynScale
		m.L2FillPJ = 6.5 * math.Pow(l2KB, 0.30) * math.Pow(float64(l2.BlockBytes)/16, 0.85) * tp.dynScale
		m.L2LeakageMW = 0.011 * l2KB * tp.leakScale
		// L2 hit latency: 2 cycles of array access plus one per doubling of
		// capacity, clamped strictly below the memory penalty so an L2 hit
		// always beats a miss (wcet.Params.Valid enforces the same bound).
		lat := 2 + int64(math.Round(math.Log2(l2KB)))
		if lat < 1 {
			lat = 1
		}
		if lat >= m.MissPenalty {
			lat = m.MissPenalty - 1
		}
		m.L2HitCycles = lat
	}
	return m
}

// WCETParams returns the timing parameters for the WCET analysis and the
// optimizer.
func (m Model) WCETParams() wcet.Params {
	return wcet.Params{
		HitCycles:   m.HitCycles,
		MissPenalty: m.MissPenalty,
		Lambda:      m.Lambda,
		L2HitCycles: m.L2HitCycles,
	}
}

// Account is the activity extract the energy model consumes: how often each
// energy-bearing event occurred, and how long the program ran.
type Account struct {
	// CacheReads is the number of cache accesses (every instruction fetch,
	// hit or miss, including prefetch instruction fetches).
	CacheReads int64
	// CacheFills is the number of blocks written into the cache (miss
	// fills plus completed prefetch fills).
	CacheFills int64
	// DRAMReads is the number of memory accesses (miss fills plus
	// non-redundant prefetch fills).
	DRAMReads int64
	// L2Reads and L2Fills count L2 cache accesses and block fills; zero when
	// no L2 is modeled, making their energy terms vanish.
	L2Reads int64
	L2Fills int64
	// Cycles is the execution time the static power drains over.
	Cycles int64
}

// Breakdown is an energy result in picojoules.
type Breakdown struct {
	DynamicPJ float64
	StaticPJ  float64
}

// TotalPJ is the total memory-system energy.
func (b Breakdown) TotalPJ() float64 {
	return b.DynamicPJ + b.StaticPJ
}

// Energy evaluates the account under the model. The L2 terms (dynamic per
// L2 read/fill, static L2 leakage) are all zero for single-level models, so
// pre-hierarchy breakdowns are unchanged to the bit.
func (m Model) Energy(a Account) Breakdown {
	dyn := float64(a.CacheReads)*m.CacheReadPJ +
		float64(a.CacheFills)*m.CacheFillPJ +
		float64(a.DRAMReads)*m.DRAMAccessPJ +
		float64(a.L2Reads)*m.L2ReadPJ +
		float64(a.L2Fills)*m.L2FillPJ
	static := (m.LeakageMW + m.L2LeakageMW + m.DRAMStandbyMW) * float64(a.Cycles) * m.CycleNS // mW·ns = pJ
	return Breakdown{DynamicPJ: dyn, StaticPJ: static}
}

// String renders the model for reports.
func (m Model) String() string {
	return fmt.Sprintf("%s %v: read=%.1fpJ fill=%.1fpJ dram=%.0fpJ leak=%.3fmW miss=%dcyc",
		m.Tech, m.Cfg, m.CacheReadPJ, m.CacheFillPJ, m.DRAMAccessPJ, m.LeakageMW, m.MissPenalty)
}
