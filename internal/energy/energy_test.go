package energy

import (
	"testing"
	"testing/quick"

	"ucp/internal/cache"
)

func TestModelMonotonicities(t *testing.T) {
	// Dynamic read energy grows with capacity, associativity and block
	// size; leakage grows with capacity.
	base := NewModel(cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}, Tech45)

	bigger := NewModel(cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 4096}, Tech45)
	if bigger.CacheReadPJ <= base.CacheReadPJ {
		t.Error("read energy must grow with capacity")
	}
	if bigger.LeakageMW <= base.LeakageMW {
		t.Error("leakage must grow with capacity")
	}

	wider := NewModel(cache.Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 1024}, Tech45)
	if wider.CacheReadPJ <= base.CacheReadPJ {
		t.Error("read energy must grow with associativity")
	}

	fatter := NewModel(cache.Config{Assoc: 2, BlockBytes: 32, CapacityBytes: 1024}, Tech45)
	if fatter.CacheReadPJ <= base.CacheReadPJ {
		t.Error("read energy must grow with block size")
	}
	if fatter.DRAMAccessPJ <= base.DRAMAccessPJ {
		t.Error("DRAM transfer energy must grow with block size")
	}
}

func TestTechnologyScaling(t *testing.T) {
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 2048}
	m45 := NewModel(cfg, Tech45)
	m32 := NewModel(cfg, Tech32)
	if m32.CacheReadPJ >= m45.CacheReadPJ {
		t.Error("32nm dynamic energy must shrink vs 45nm")
	}
	if m32.LeakageMW <= m45.LeakageMW {
		t.Error("32nm leakage must grow vs 45nm")
	}
	// The share of the *cache's* leakage in the total must be larger at
	// 32 nm — the trend Section 2.3 builds on (the off-chip DRAM module
	// does not scale with the processor node).
	acc := Account{CacheReads: 100000, CacheFills: 3000, DRAMReads: 3000, Cycles: 120000}
	b45 := m45.Energy(acc)
	b32 := m32.Energy(acc)
	cacheStatic45 := m45.LeakageMW * float64(acc.Cycles) * m45.CycleNS
	cacheStatic32 := m32.LeakageMW * float64(acc.Cycles) * m32.CycleNS
	share45 := cacheStatic45 / b45.TotalPJ()
	share32 := cacheStatic32 / b32.TotalPJ()
	if share32 <= share45 {
		t.Errorf("cache leakage share must grow when scaling down: 45nm %.4f vs 32nm %.4f", share45, share32)
	}
}

func TestDRAMDwarfsCacheAccess(t *testing.T) {
	for _, cfg := range cache.Table2() {
		for _, tech := range Techs() {
			m := NewModel(cfg, tech)
			if m.DRAMAccessPJ < 10*m.CacheReadPJ {
				t.Fatalf("%v/%v: DRAM access (%.0fpJ) should dwarf a cache read (%.1fpJ)",
					cfg, tech, m.DRAMAccessPJ, m.CacheReadPJ)
			}
			if m.MissPenalty <= m.HitCycles {
				t.Fatalf("%v/%v: miss penalty must exceed hit time", cfg, tech)
			}
			if m.Lambda < m.MissPenalty {
				t.Fatalf("%v/%v: a fill cannot land faster than a miss", cfg, tech)
			}
		}
	}
}

func TestEnergyLinearInActivity(t *testing.T) {
	m := NewModel(cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}, Tech45)
	f := func(reads, fills, dram, cycles uint16) bool {
		a := Account{
			CacheReads: int64(reads), CacheFills: int64(fills),
			DRAMReads: int64(dram), Cycles: int64(cycles),
		}
		double := Account{
			CacheReads: 2 * a.CacheReads, CacheFills: 2 * a.CacheFills,
			DRAMReads: 2 * a.DRAMReads, Cycles: 2 * a.Cycles,
		}
		e1 := m.Energy(a).TotalPJ()
		e2 := m.Energy(double).TotalPJ()
		return e2 > e1*1.999 && e2 < e1*2.001 || e1 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWCETParamsValid(t *testing.T) {
	for _, cfg := range cache.Table2() {
		for _, tech := range Techs() {
			if err := NewModel(cfg, tech).WCETParams().Valid(); err != nil {
				t.Fatalf("%v/%v: %v", cfg, tech, err)
			}
		}
	}
}

func TestShorterRunSavesStaticEnergy(t *testing.T) {
	m := NewModel(cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}, Tech32)
	slow := m.Energy(Account{CacheReads: 1000, DRAMReads: 100, Cycles: 50000})
	fast := m.Energy(Account{CacheReads: 1000, DRAMReads: 100, Cycles: 40000})
	if fast.TotalPJ() >= slow.TotalPJ() {
		t.Error("a shorter run with identical activity must cost less energy")
	}
}

func TestStringers(t *testing.T) {
	if Tech45.String() != "45nm" || Tech32.String() != "32nm" {
		t.Error("tech names")
	}
	m := NewModel(cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 256}, Tech45)
	if m.String() == "" {
		t.Error("model string empty")
	}
}
