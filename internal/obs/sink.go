package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ucp/internal/faults"
)

// This file is the durable half of tracing: an append-only NDJSON sink
// that persists sampled span trees and operational events per process, so
// a trace survives the request — and the crash — instead of living only
// in a ?trace=1 response body.
//
// Durability follows the journal's discipline: every append is one write
// followed by fsync, and reads are corruption-tolerant — a torn final
// line (crash mid-append) or an unparsable line is skipped, never fatal,
// because a trace log is an operational aid, not a system of record.
// Growth is bounded by size-based rotation: the active file rolls over to
// a numbered segment and the oldest segments are pruned.

// DefaultSinkMaxBytes bounds one sink segment before rotation.
const DefaultSinkMaxBytes = 8 << 20

// sinkKeepSegments is how many rotated segments survive pruning; with the
// active file, the sink holds at most (sinkKeepSegments+1) × maxBytes.
const sinkKeepSegments = 4

// sinkActive is the segment currently appended to.
const sinkActive = "trace.ndjson"

// SinkRecord is one NDJSON line of the trace sink: either a completed
// span tree ("trace") or a point event ("event").
type SinkRecord struct {
	Kind string    `json:"kind"`
	Time time.Time `json:"time"`
	// RequestID correlates the record with the request logs of every
	// replica that touched the request.
	RequestID string         `json:"request_id,omitempty"`
	TraceID   string         `json:"trace_id,omitempty"`
	Event     string         `json:"event,omitempty"`
	Attrs     map[string]any `json:"attrs,omitempty"`
	Trace     *SpanTree      `json:"trace,omitempty"`
}

// Sink is one process's durable trace/event log. Safe for concurrent use;
// a nil *Sink is valid and inert, so callers need no "is tracing durable"
// guards.
type Sink struct {
	dir      string
	maxBytes int64

	mu     sync.Mutex
	f      *os.File
	size   int64
	seq    int // next rotation segment number
	closed bool
}

// OpenSink creates dir if needed and opens the active segment for
// appending. maxBytes bounds one segment (<= 0 uses DefaultSinkMaxBytes).
func OpenSink(dir string, maxBytes int64) (*Sink, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSinkMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace sink: %w", err)
	}
	s := &Sink{dir: dir, maxBytes: maxBytes, seq: 1}
	for _, n := range sinkSegments(dir) {
		if n >= s.seq {
			s.seq = n + 1
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, sinkActive), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace sink: %w", err)
	}
	if fi, err := f.Stat(); err == nil {
		s.size = fi.Size()
	}
	s.f = f
	return s, nil
}

// Dir returns the sink directory ("" on a nil sink).
func (s *Sink) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// WriteTrace durably appends one completed span tree. The faults site
// "trace.append" (key = trace ID) injects append failures; callers treat
// sink errors as an observability downgrade, never a request failure.
func (s *Sink) WriteTrace(ctx context.Context, requestID string, t *SpanTree) error {
	if s == nil || t == nil {
		return nil
	}
	return s.write(ctx, SinkRecord{
		Kind: "trace", Time: time.Now().UTC(),
		RequestID: requestID, TraceID: t.TraceID, Trace: t,
	})
}

// WriteEvent durably appends one point event with free-form attributes.
func (s *Sink) WriteEvent(ctx context.Context, event, requestID, traceID string, attrs map[string]any) error {
	if s == nil {
		return nil
	}
	return s.write(ctx, SinkRecord{
		Kind: "event", Time: time.Now().UTC(),
		RequestID: requestID, TraceID: traceID, Event: event, Attrs: attrs,
	})
}

// write marshals, rotates if the active segment is full, appends, and
// fsyncs one record.
func (s *Sink) write(ctx context.Context, r SinkRecord) error {
	if err := faults.Fire(ctx, "trace.append", r.TraceID); err != nil {
		return err
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("trace sink: marshal: %w", err)
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("trace sink: closed")
	}
	if s.size > 0 && s.size+int64(len(b)) > s.maxBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	n, err := s.f.Write(b)
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("trace sink: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("trace sink: sync: %w", err)
	}
	return nil
}

// rotate seals the active segment under the next segment number and opens
// a fresh one, pruning the oldest segments beyond the keep bound. Caller
// holds s.mu.
func (s *Sink) rotate() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("trace sink: sync: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("trace sink: close: %w", err)
	}
	sealed := filepath.Join(s.dir, fmt.Sprintf("trace-%06d.ndjson", s.seq))
	if err := os.Rename(filepath.Join(s.dir, sinkActive), sealed); err != nil {
		return fmt.Errorf("trace sink: rotate: %w", err)
	}
	s.seq++
	segs := sinkSegments(s.dir)
	for len(segs) > sinkKeepSegments {
		os.Remove(filepath.Join(s.dir, fmt.Sprintf("trace-%06d.ndjson", segs[0])))
		segs = segs[1:]
	}
	f, err := os.OpenFile(filepath.Join(s.dir, sinkActive), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("trace sink: %w", err)
	}
	s.f, s.size = f, 0
	return nil
}

// Close fsyncs and closes the active segment. Idempotent; nil-safe.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sinkSegments lists the rotated segment numbers in dir, ascending.
func sinkSegments(dir string) []int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "trace-") || !strings.HasSuffix(name, ".ndjson") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "trace-"), ".ndjson"))
		if err == nil && n > 0 {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs
}

// sinkMaxLine bounds one sink line during reads; a deep sweep trace runs
// to a few hundred KiB, so 8 MiB is generous headroom.
const sinkMaxLine = 8 << 20

// ReadSink replays every record in a sink directory, rotated segments
// first (oldest to newest) and the active segment last. Unparsable lines
// — a torn tail after a crash, corruption — are counted in skipped and
// ignored, mirroring the journal's replay semantics.
func ReadSink(dir string) (records []SinkRecord, skipped int, err error) {
	var paths []string
	for _, n := range sinkSegments(dir) {
		paths = append(paths, filepath.Join(dir, fmt.Sprintf("trace-%06d.ndjson", n)))
	}
	paths = append(paths, filepath.Join(dir, sinkActive))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return records, skipped, fmt.Errorf("trace sink: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 64<<10), sinkMaxLine)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var r SinkRecord
			if json.Unmarshal(line, &r) != nil || (r.Kind != "trace" && r.Kind != "event") {
				skipped++
				continue
			}
			records = append(records, r)
		}
		// A scanner error (over-long or torn line) truncates this segment's
		// replay; everything before it is still good.
		f.Close()
	}
	return records, skipped, nil
}

// Sampler makes head sampling decisions for the sink: Sample reports true
// for roughly rate of calls, drawing from the process ID source so a
// seeded SetIDSource makes the decision sequence deterministic. A nil
// *Sampler never samples.
type Sampler struct {
	rate float64
}

// NewSampler returns a sampler firing at rate (clamped to [0, 1]).
func NewSampler(rate float64) *Sampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Sampler{rate: rate}
}

// Sample makes one head decision.
func (s *Sampler) Sample() bool {
	if s == nil || s.rate <= 0 {
		return false
	}
	if s.rate >= 1 {
		return true
	}
	return float64(randID()>>11)/(1<<53) < s.rate
}
