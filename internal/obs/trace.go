package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the cross-process half of tracing: W3C-style traceparent
// contexts. A Recorder owns a 128-bit trace ID; every span gets a 64-bit
// span ID; Traceparent serializes the current span's identity into the
// "00-<32 hex>-<16 hex>-01" header a coordinator sends with a dispatched
// cell, and NewChildRecorder adopts it on the worker side so both
// processes' span trees share one trace ID. The coordinator stitches the
// worker's returned tree under its dispatch span with Span.AttachTree.
//
// IDs come from an injectable random source (SetIDSource) so tests and
// journal replay stay deterministic; the default source is seeded per
// process.

// idSource yields random 64-bit values for trace and span IDs. Stored as
// an atomic so SetIDSource is safe against concurrent ID generation.
var idSource atomic.Pointer[func() uint64]

// idMu serializes draws from the installed source: sources need not be
// safe for concurrent use (a seeded test counter is not).
var idMu sync.Mutex

// SetIDSource installs fn as the process-wide ID source (nil restores the
// default seeded source). Draws are serialized, so fn need not be
// goroutine-safe — a deterministic counter works.
func SetIDSource(fn func() uint64) {
	if fn == nil {
		idSource.Store(nil)
		return
	}
	idSource.Store(&fn)
}

// randID draws one nonzero 64-bit ID from the installed source.
func randID() uint64 {
	for {
		var v uint64
		if fn := idSource.Load(); fn != nil {
			idMu.Lock()
			v = (*fn)()
			idMu.Unlock()
		} else {
			v = rand.Uint64()
		}
		if v != 0 {
			return v
		}
	}
}

// newTraceID returns a fresh 128-bit trace ID as 32 lowercase hex digits.
func newTraceID() string {
	return fmt.Sprintf("%016x%016x", randID(), randID())
}

// newSpanID returns a fresh 64-bit span ID as 16 lowercase hex digits.
func newSpanID() string {
	return fmt.Sprintf("%016x", randID())
}

// Traceparent serializes the identity of the span carried by ctx in the
// W3C traceparent format, "00-<trace id>-<span id>-01". It returns ""
// when tracing is off or ctx carries no span — callers can set the header
// unconditionally and send nothing when dark.
func Traceparent(ctx context.Context) string {
	if activeRecorders.Load() == 0 {
		return ""
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	if s == nil || s.rec == nil {
		return ""
	}
	return "00-" + s.rec.traceID + "-" + s.id + "-01"
}

// ParseTraceparent splits a traceparent header into its trace and parent
// span IDs. Malformed headers — wrong field count, wrong widths, non-hex
// digits, all-zero IDs — report ok=false, and the caller falls back to a
// fresh root trace.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return "", "", false
	}
	if parts[0] != "00" || !isHex(parts[1]) || !isHex(parts[2]) {
		return "", "", false
	}
	if allZero(parts[1]) || allZero(parts[2]) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	return strings.Count(s, "0") == len(s)
}

// requestIDKey carries the request ID through contexts, so a process
// boundary (coordinator → worker HTTP dispatch) can forward it and both
// replicas' logs correlate under one grep.
type requestIDKey struct{}

// WithRequestID returns a context carrying id as the request identity.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
