package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartDisabledIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatal("Start without a recorder must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a recorder must return the context unchanged")
	}
	// The nil span is fully inert.
	sp.Attr("k", 1)
	sp.End()
}

func TestSpanTree(t *testing.T) {
	r := NewRecorder("request")
	defer r.Release()
	ctx := r.Install(context.Background())

	ctx1, a := Start(ctx, "outer")
	if a == nil {
		t.Fatal("Start under a live recorder must return a span")
	}
	a.Attr("n", 42)
	_, b := Start(ctx1, "inner")
	b.Attr("s", "v")
	b.End()
	a.End()

	// A sibling of outer, started from the root context.
	_, c := Start(ctx, "sibling")
	c.End()

	tree := r.Tree()
	if tree.Name != "request" || len(tree.Children) != 2 {
		t.Fatalf("tree = %+v", tree)
	}
	outer := tree.Children[0]
	if outer.Name != "outer" || outer.Attrs["n"] != 42 {
		t.Fatalf("outer = %+v", outer)
	}
	if len(outer.Children) != 1 || outer.Children[0].Name != "inner" {
		t.Fatalf("inner missing: %+v", outer)
	}
	if tree.Children[1].Name != "sibling" {
		t.Fatalf("sibling missing: %+v", tree)
	}
}

func TestSpanChildCap(t *testing.T) {
	r := NewRecorder("root")
	defer r.Release()
	ctx := r.Install(context.Background())
	for i := 0; i < maxChildren+7; i++ {
		_, s := Start(ctx, "c")
		s.End()
	}
	tree := r.Tree()
	if len(tree.Children) != maxChildren {
		t.Fatalf("children = %d, want %d", len(tree.Children), maxChildren)
	}
	if tree.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", tree.Dropped)
	}
}

func TestRecorderOnEnd(t *testing.T) {
	r := NewRecorder("root")
	defer r.Release()
	var gotName string
	var gotAttrs []Attr
	r.OnEnd = func(name string, d time.Duration, attrs []Attr) {
		if name == "cell" {
			gotName, gotAttrs = name, attrs
		}
	}
	ctx := r.Install(context.Background())
	_, s := Start(ctx, "cell")
	s.Attr("program", "crc")
	s.End()
	if gotName != "cell" || len(gotAttrs) != 1 || gotAttrs[0].Value != "crc" {
		t.Fatalf("OnEnd got %q %+v", gotName, gotAttrs)
	}
}

func TestNearestRankRoundsHalfUp(t *testing.T) {
	// Over 10 samples, p99 must pick the maximum (index 9); the old
	// flooring scheme picked index 8.
	if got := nearestRank(0.99, 10); got != 9 {
		t.Fatalf("nearestRank(0.99, 10) = %d, want 9", got)
	}
	if got := nearestRank(0.5, 10); got != 5 {
		t.Fatalf("nearestRank(0.5, 10) = %d, want 5", got)
	}
	if got := nearestRank(0, 10); got != 0 {
		t.Fatalf("nearestRank(0, 10) = %d, want 0", got)
	}
	if got := nearestRank(1, 1); got != 0 {
		t.Fatalf("nearestRank(1, 1) = %d, want 0", got)
	}
}

func TestHistogramQuantilesAndBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "help.", []float64{1, 10}, []float64{0.5, 0.99})
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 10 || s.Sum != 55 {
		t.Fatalf("count/sum = %d/%g", s.Count, s.Sum)
	}
	// Buckets: <=1 holds 1, <=10 holds 9, +Inf 0.
	if s.Buckets[0] != 1 || s.Buckets[1] != 9 || s.Buckets[2] != 0 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if s.Values[1] != 10 {
		t.Fatalf("p99 over 1..10 = %g, want 10 (round half-up)", s.Values[1])
	}
}

// TestHistogramConcurrentObserveSnapshot hammers one histogram from
// writer and reader goroutines; -race verifies the quantile window and
// the atomic counters never tear.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer_seconds", "h", []float64{0.5, 1}, nil)
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				var inBuckets int64
				for _, b := range s.Buckets {
					inBuckets += b
				}
				if inBuckets != s.Count {
					t.Errorf("bucket total %d != count %d", inBuckets, s.Count)
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%3) * 0.6)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
}

func TestHistogramVecRendersPerLabel(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("ucp_cell_seconds", "Per-worker cell latency.", "worker", []float64{1}, []float64{0.5})
	v.With("w1").Observe(0.25)
	v.With("w1").Observe(0.75)
	v.With("w2").Observe(2)
	if v.With("w1") != v.With("w1") {
		t.Fatal("With must return the same child for the same label")
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ucp_cell_seconds Per-worker cell latency.
# TYPE ucp_cell_seconds summary
ucp_cell_seconds{worker="w1",quantile="0.5"} 0.750000
ucp_cell_seconds_sum{worker="w1"} 1.000000
ucp_cell_seconds_count{worker="w1"} 2
ucp_cell_seconds{worker="w2",quantile="0.5"} 2.000000
ucp_cell_seconds_sum{worker="w2"} 2.000000
ucp_cell_seconds_count{worker="w2"} 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := Lint(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("labeled histogram exposition fails lint: %v", err)
	}
}

func TestGetOrCreateSharesAndPanicsOnMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h")
	b := r.Counter("c_total", "h")
	if a != b {
		t.Fatal("re-registering the same counter must return the same instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering c_total as a vec must panic")
		}
	}()
	r.CounterVec("c_total", "h", "k")
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ucp_b_total", "Plain counter.")
	c.Add(3)
	v := r.CounterVec("ucp_a_total", "Labeled counter.", "route")
	v.With(`GET /x`).Add(2)
	v.With("with\"quote").Inc()
	r.GaugeFunc("ucp_g", "A gauge.", func() float64 { return 1.5 })
	r.GaugeVecFunc("ucp_jobs", "Jobs by state.", "state", func() []Sample {
		return []Sample{{Label: "done", Value: 2}, {Label: "queued", Value: 0}}
	})
	h := r.Histogram("ucp_lat_seconds", "Latency.", nil, nil)
	h.Observe(0.25)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ucp_a_total Labeled counter.
# TYPE ucp_a_total counter
ucp_a_total{route="GET /x"} 2
ucp_a_total{route="with\"quote"} 1
# HELP ucp_b_total Plain counter.
# TYPE ucp_b_total counter
ucp_b_total 3
# HELP ucp_g A gauge.
# TYPE ucp_g gauge
ucp_g 1.5
# HELP ucp_jobs Jobs by state.
# TYPE ucp_jobs gauge
ucp_jobs{state="done"} 2
ucp_jobs{state="queued"} 0
# HELP ucp_lat_seconds Latency.
# TYPE ucp_lat_seconds summary
ucp_lat_seconds{quantile="0.5"} 0.250000
ucp_lat_seconds{quantile="0.99"} 0.250000
ucp_lat_seconds_sum 0.250000
ucp_lat_seconds_count 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := Lint(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("golden exposition fails lint: %v", err)
	}
}

func TestWritePrometheusRejectsCrossRegistryDuplicates(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("dup_total", "h")
	r2.Counter("dup_total", "h")
	var sb strings.Builder
	if err := WritePrometheus(&sb, r1, r2); err == nil {
		t.Fatal("duplicate family across registries must be an error")
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"sample before HELP/TYPE", "x_total 1\n"},
		{"TYPE without HELP", "# TYPE x_total counter\nx_total 1\n"},
		{"duplicate family", "# HELP x h\n# TYPE x counter\nx 1\n# HELP y h\n# TYPE y counter\ny 1\n# HELP x h\n# TYPE x counter\nx 2\n"},
		{"unescaped quote", "# HELP x h\n# TYPE x counter\nx{l=\"a\"b\"} 1\n"},
		{"unquoted label", "# HELP x h\n# TYPE x counter\nx{l=abc} 1\n"},
		{"non-numeric value", "# HELP x h\n# TYPE x counter\nx nope\n"},
		{"foreign sample in family", "# HELP x h\n# TYPE x counter\ny_total 1\n"},
		{"unknown type", "# HELP x h\n# TYPE x widget\nx 1\n"},
	}
	for _, tc := range cases {
		if err := Lint(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: lint accepted %q", tc.name, tc.in)
		}
	}
	ok := "# HELP x h\n# TYPE x summary\nx{quantile=\"0.5\"} 1\nx_sum 2\nx_count 3\n"
	if err := Lint(strings.NewReader(ok)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}
