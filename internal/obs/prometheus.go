package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family of the given registries in the
// Prometheus text exposition format (version 0.0.4), families sorted by
// name across all registries so the output is stable regardless of
// registration order. A family name registered in more than one of the
// registries is an error — the exposition format forbids duplicate
// families, and silently merging two owners would mis-attribute samples.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	type named struct {
		name string
		f    *family
	}
	var fams []named
	seen := map[string]bool{}
	for _, r := range regs {
		r.mu.Lock()
		for _, name := range r.names {
			if seen[name] {
				r.mu.Unlock()
				return fmt.Errorf("obs: family %q registered in more than one registry", name)
			}
			seen[name] = true
			fams = append(fams, named{name, r.byName[name]})
		}
		r.mu.Unlock()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	ew := &errWriter{w: w}
	for _, nf := range fams {
		nf.f.render(ew)
	}
	return ew.err
}

// render writes one family: HELP and TYPE first, then every sample.
func (f *family) render(w *errWriter) {
	w.printf("# HELP %s %s\n", f.name, f.help)
	w.printf("# TYPE %s %s\n", f.name, f.typ)
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case f.pullable:
		for _, s := range f.pull() {
			if f.labelKey == "" {
				w.printf("%s %s\n", f.name, formatValue(s.Value))
			} else {
				w.printf("%s{%s=\"%s\"} %s\n", f.name, f.labelKey, escapeLabel(s.Label), formatValue(s.Value))
			}
		}
	case f.vec != nil:
		values := make([]string, 0, len(f.vec))
		for v := range f.vec {
			values = append(values, v)
		}
		sort.Strings(values)
		for _, v := range values {
			w.printf("%s{%s=\"%s\"} %d\n", f.name, f.labelKey, escapeLabel(v), f.vec[v].Value())
		}
	case f.counter != nil:
		w.printf("%s %d\n", f.name, f.counter.Value())
	case f.histVec != nil:
		values := make([]string, 0, len(f.histVec))
		for v := range f.histVec {
			values = append(values, v)
		}
		sort.Strings(values)
		for _, v := range values {
			snap := f.histVec[v].Snapshot()
			lv := escapeLabel(v)
			for i, q := range snap.Quantiles {
				w.printf("%s{%s=\"%s\",quantile=%q} %.6f\n", f.name, f.labelKey, lv,
					strconv.FormatFloat(q, 'g', -1, 64), snap.Values[i])
			}
			w.printf("%s_sum{%s=\"%s\"} %.6f\n", f.name, f.labelKey, lv, snap.Sum)
			w.printf("%s_count{%s=\"%s\"} %d\n", f.name, f.labelKey, lv, snap.Count)
		}
	case f.hist != nil:
		snap := f.hist.Snapshot()
		for i, q := range snap.Quantiles {
			w.printf("%s{quantile=%q} %.6f\n", f.name, strconv.FormatFloat(q, 'g', -1, 64), snap.Values[i])
		}
		w.printf("%s_sum %.6f\n", f.name, snap.Sum)
		w.printf("%s_count %d\n", f.name, snap.Count)
	}
}

// formatValue renders a float sample: integral values print without a
// decimal point (counters and entry counts read naturally), the rest in
// shortest-roundtrip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// errWriter latches the first write error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Lint checks a Prometheus text exposition for the invariants the
// renderer promises: every sample belongs to a family whose HELP and TYPE
// lines precede it, no family appears twice, sample names match their
// family (allowing the _sum/_count/_bucket suffixes of summaries and
// histograms), label values are properly quoted and escaped, and every
// sample parses to a number. It returns the first violation found.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		curFam  string // family currently open (HELP+TYPE seen)
		haveCur bool
		help    = map[string]bool{}
		typ     = map[string]bool{}
		closed  = map[string]bool{} // families already finished
		line    int
	)
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			name := metaName(text[len("# HELP "):])
			if name == "" {
				return fmt.Errorf("line %d: malformed HELP line", line)
			}
			if help[name] {
				return fmt.Errorf("line %d: duplicate HELP for family %s", line, name)
			}
			if closed[name] {
				return fmt.Errorf("line %d: family %s reopened", line, name)
			}
			if haveCur && curFam != name {
				closed[curFam] = true
			}
			help[name] = true
			curFam, haveCur = name, false
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			rest := text[len("# TYPE "):]
			name := metaName(rest)
			if name == "" {
				return fmt.Errorf("line %d: malformed TYPE line", line)
			}
			if typ[name] {
				return fmt.Errorf("line %d: duplicate TYPE for family %s", line, name)
			}
			if !help[name] || curFam != name {
				return fmt.Errorf("line %d: TYPE %s without preceding HELP", line, name)
			}
			kind := strings.TrimSpace(rest[len(name):])
			switch kind {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", line, kind)
			}
			typ[name] = true
			haveCur = true
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // other comments are legal
		}
		// A sample line: name[{labels}] value
		if !haveCur {
			return fmt.Errorf("line %d: sample before any HELP/TYPE: %q", line, text)
		}
		name, rest, err := splitSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		if !sampleBelongs(name, curFam) {
			return fmt.Errorf("line %d: sample %s outside its family (current family %s)", line, name, curFam)
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			return fmt.Errorf("line %d: non-numeric sample value %q", line, strings.TrimSpace(rest))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return nil
}

// metaName extracts the leading metric name of a HELP/TYPE payload.
func metaName(s string) string {
	i := strings.IndexAny(s, " \t")
	if i <= 0 {
		return strings.TrimSpace(s)
	}
	return s[:i]
}

// sampleBelongs reports whether a sample name belongs to family fam,
// allowing the summary/histogram child suffixes.
func sampleBelongs(name, fam string) bool {
	if name == fam {
		return true
	}
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		if name == fam+suf {
			return true
		}
	}
	return false
}

// splitSample splits one sample line into its metric name and the value
// text, validating the label block's quoting and escaping on the way.
func splitSample(s string) (name, value string, err error) {
	brace := strings.IndexByte(s, '{')
	if brace < 0 {
		sp := strings.IndexAny(s, " \t")
		if sp <= 0 {
			return "", "", fmt.Errorf("malformed sample %q", s)
		}
		return s[:sp], s[sp+1:], nil
	}
	name = s[:brace]
	if name == "" {
		return "", "", fmt.Errorf("malformed sample %q", s)
	}
	// Walk the label block respecting quotes and escapes.
	i := brace + 1
	for i < len(s) && s[i] != '}' {
		// label name
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return "", "", fmt.Errorf("unterminated label in %q", s)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return "", "", fmt.Errorf("unquoted label value in %q", s)
		}
		i++ // past opening quote
		for i < len(s) {
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return "", "", fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return "", "", fmt.Errorf("invalid escape \\%c in %q", s[i+1], s)
				}
				i += 2
			case '"':
				goto closedQuote
			case '\n':
				return "", "", fmt.Errorf("raw newline in label value of %q", s)
			default:
				i++
			}
		}
		return "", "", fmt.Errorf("unterminated label value in %q", s)
	closedQuote:
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	if i >= len(s) || s[i] != '}' {
		return "", "", fmt.Errorf("unterminated label block in %q", s)
	}
	rest := strings.TrimSpace(s[i+1:])
	if rest == "" {
		return "", "", fmt.Errorf("sample %q has no value", s)
	}
	return name, rest, nil
}
