// Package obs is the zero-dependency observability core of the pipeline:
// a context-carried span API for tracing where time goes inside an
// analysis, and a process-wide metric registry with a Prometheus text
// renderer (see metrics.go and prometheus.go).
//
// Tracing is designed to be free when nobody is looking. obs.Start costs a
// single atomic load when no Recorder exists in the process, and every
// method of the returned *Span is a no-op on nil — instrumented code never
// branches on "is tracing on". Only when a Recorder is live (a traced HTTP
// request, ucp-wcet -trace, ucp-bench -v) does Start consult the context,
// allocate a span, and read the clock. The Figure 3 benchmark guard
// (BENCH_PR5.json vs BENCH_PR3.json) pins the disabled path down to noise.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// activeRecorders counts live Recorders process-wide. Start bails after one
// atomic load when it is zero — the whole cost of tracing-disabled runs.
var activeRecorders atomic.Int64

type spanCtxKey struct{}

// Attr is one span attribute. Values should be small and JSON-encodable
// (ints, strings, bools): they end up in ?trace=1 responses verbatim.
type Attr struct {
	Key   string
	Value any
}

// maxChildren bounds the children recorded per span. The optimizer's
// validate-and-commit loop can run hundreds of re-analyses; an unbounded
// trace of such a run would dwarf the result it annotates. Beyond the
// bound, children are counted but dropped, and the count is surfaced as a
// "dropped_children" attribute on the parent.
const maxChildren = 128

// Span is one timed region of a traced execution. A nil *Span is valid and
// inert: every method is a no-op, so instrumentation sites need no guards.
type Span struct {
	rec      *Recorder
	name     string
	id       string // 16 hex digits, for traceparent propagation
	start    time.Time
	duration time.Duration
	attrs    []Attr
	children []*Span
	grafts   []*SpanTree // remote subtrees attached via AttachTree
	dropped  int
	ended    bool
}

// Start opens a child span under the span carried by ctx. When tracing is
// disabled (no live Recorder, or none installed in this context) it
// returns the context unchanged and a nil span, after one atomic load.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if activeRecorders.Load() == 0 {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	r := parent.rec
	s := &Span{rec: r, name: name, id: newSpanID(), start: time.Now()}
	r.mu.Lock()
	if len(parent.children) < maxChildren {
		parent.children = append(parent.children, s)
	} else {
		parent.dropped++
	}
	r.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// Attr records one attribute on the span. No-op on nil.
func (s *Span) Attr(key string, value any) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.rec.mu.Unlock()
}

// End closes the span, fixing its duration. No-op on nil; a second End is
// ignored. When the owning Recorder has an OnEnd hook it is invoked (after
// the span is sealed, outside the recorder lock) with the span's name,
// duration, and a snapshot of its attributes — ucp-bench's -v progress
// lines hang off this.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.rec
	r.mu.Lock()
	if s.ended {
		r.mu.Unlock()
		return
	}
	s.ended = true
	s.duration = time.Since(s.start)
	var attrs []Attr
	if r.OnEnd != nil {
		attrs = append(attrs, s.attrs...)
	}
	hook := r.OnEnd
	d := s.duration
	name := s.name
	r.mu.Unlock()
	if hook != nil {
		hook(name, d, attrs)
	}
}

// Recorder collects one span tree. Create with NewRecorder, install into a
// context with Install, and Release when the traced execution is over (the
// process-wide tracing-enabled flag stays up while any Recorder is live).
type Recorder struct {
	// OnEnd, when non-nil, is called synchronously every time a span of
	// this recorder ends. Set it before the first Start; it must be safe
	// for concurrent calls (sweep cells end on worker goroutines).
	OnEnd func(name string, d time.Duration, attrs []Attr)

	traceID      string // 32 hex digits, shared across process boundaries
	parentSpanID string // remote parent adopted by NewChildRecorder, or ""

	mu       sync.Mutex
	root     *Span
	released bool
}

// NewRecorder creates a live Recorder whose root span is named name and
// starts now, under a fresh trace ID. While at least one Recorder is
// live, obs.Start pays the context lookup; Release the recorder when done.
func NewRecorder(name string) *Recorder {
	r := &Recorder{traceID: newTraceID()}
	r.root = &Span{rec: r, name: name, id: newSpanID(), start: time.Now()}
	activeRecorders.Add(1)
	return r
}

// NewChildRecorder creates a live Recorder that continues a remote trace:
// it adopts the trace ID of the given traceparent header and records the
// remote span as the root's parent, so the two processes' trees stitch
// into one trace. A malformed or empty header falls back to a fresh root
// trace (never an error — tracing must not fail a request).
func NewChildRecorder(name, traceparent string) *Recorder {
	r := NewRecorder(name)
	if tid, sid, ok := ParseTraceparent(traceparent); ok {
		r.traceID = tid
		r.parentSpanID = sid
	}
	return r
}

// TraceID returns the recorder's 32-hex-digit trace ID.
func (r *Recorder) TraceID() string { return r.traceID }

// Install returns a context carrying the recorder's root span; Start calls
// under it attach children to this recorder.
func (r *Recorder) Install(ctx context.Context) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, r.root)
}

// Root returns the recorder's root span (for attaching request-level
// attributes like a request ID). A nil recorder yields the nil span, whose
// methods are all inert — callers can attach attrs unconditionally.
func (r *Recorder) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// Release ends the root span and decrements the process-wide live-recorder
// count. Idempotent. The tree remains readable via Tree after Release.
func (r *Recorder) Release() {
	r.root.End()
	r.mu.Lock()
	done := r.released
	r.released = true
	r.mu.Unlock()
	if !done {
		activeRecorders.Add(-1)
	}
}

// AttachTree grafts an externally produced span tree (a worker replica's
// serialized trace, returned with its cell payload) under this span: the
// coordinator calls it on the dispatch span so the stitched tree spans
// both processes. The subtree is retained as-is and appears after the
// span's own children in snapshots. No-op on nil span or nil tree.
func (s *Span) AttachTree(t *SpanTree) {
	if s == nil || t == nil {
		return
	}
	s.rec.mu.Lock()
	s.grafts = append(s.grafts, t)
	s.rec.mu.Unlock()
}

// SpanTree is the exported, JSON-ready snapshot of a span.
type SpanTree struct {
	Name string `json:"name"`
	// TraceID is set on the root span only: the 32-hex-digit trace the
	// whole tree belongs to, shared across process boundaries.
	TraceID string `json:"trace_id,omitempty"`
	// SpanID is this span's 16-hex-digit identity within the trace.
	SpanID string `json:"span_id,omitempty"`
	// ParentSpanID is set on the root of a child recorder's tree: the
	// remote span (in another process) this tree hangs under.
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// DurationUS is the span's wall time in microseconds; for a span still
	// open when the snapshot was taken, the time elapsed so far.
	DurationUS int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	// Dropped counts children beyond the per-span bound that were timed
	// but not retained.
	Dropped  int         `json:"dropped_children,omitempty"`
	Children []*SpanTree `json:"children,omitempty"`
}

// Tree snapshots the recorder's span tree. Safe to call at any time; spans
// still open report the time elapsed so far.
func (r *Recorder) Tree() *SpanTree {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := snapshot(r.root)
	t.TraceID = r.traceID
	t.ParentSpanID = r.parentSpanID
	return t
}

// snapshot converts a span subtree; caller holds the recorder lock.
func snapshot(s *Span) *SpanTree {
	d := s.duration
	if !s.ended {
		d = time.Since(s.start)
	}
	t := &SpanTree{
		Name:       s.name,
		SpanID:     s.id,
		DurationUS: d.Microseconds(),
		Dropped:    s.dropped,
	}
	if len(s.attrs) > 0 {
		t.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			t.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		t.Children = append(t.Children, snapshot(c))
	}
	t.Children = append(t.Children, s.grafts...)
	return t
}
