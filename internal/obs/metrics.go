package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metric registry: typed families (counter, gauge,
// summary-rendered histogram) that packages register once — at init for
// process-wide series, at construction for per-instance ones — and that
// WritePrometheus renders in one pass. Registration is get-or-create, so
// two callers asking for the same family share it; asking for the same
// name with a different shape (type or label key) panics at registration
// time rather than producing a corrupt exposition.
//
// Process-wide series (the wcet analysis-mode counters, the pool panic
// counter) live in the Global registry. Per-instance series (one HTTP
// server's request counters) live in a private NewRegistry so tests can
// stand up several servers in one process without cross-talk; the server's
// /metrics handler renders its own registry and Global together.

// Registry holds metric families in registration order.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	names  []string
}

// family is one exposition family: a name, HELP/TYPE metadata, and either
// registered instruments or a pull callback evaluated at render time.
type family struct {
	name, help, typ string
	labelKey        string // label key for vec families ("" = unlabeled)

	mu       sync.Mutex
	counter  *Counter
	vec      map[string]*Counter // CounterVec children by label value
	hist     *Histogram
	histVec  map[string]*Histogram // HistogramVec children by label value
	pull     func() []Sample       // gauge/counter funcs, evaluated at render
	pullable bool
}

// Sample is one pulled value of a callback-backed family; Label is the
// value of the family's label key ("" for unlabeled families).
type Sample struct {
	Label string
	Value float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// global is the process-wide registry package-level helpers register into.
var global = NewRegistry()

// Global returns the process-wide registry.
func Global() *Registry { return global }

// register returns the family for name, creating it on first use and
// panicking when a previous registration disagrees on type or label key —
// a programming error best caught at init.
func (r *Registry) register(name, help, typ, labelKey string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || f.labelKey != labelKey {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q, was %s/%q",
				name, typ, labelKey, f.typ, f.labelKey))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labelKey: labelKey}
	r.byName[name] = f
	r.names = append(r.names, name)
	return f
}

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers (or finds) an unlabeled counter family.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct {
	f *family
}

// With returns the child counter for one label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.vec[value]
	if !ok {
		c = &Counter{}
		v.f.vec[value] = c
	}
	return c
}

// CounterVec registers (or finds) a counter family with one label key.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	f := r.register(name, help, "counter", labelKey)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.vec == nil {
		f.vec = map[string]*Counter{}
	}
	return &CounterVec{f: f}
}

// CounterFunc registers a counter family whose value is pulled from fn at
// render time (for counters owned by another component, like a cache's
// hit count). Re-registering rebinds the callback — the most recent owner
// (e.g. the latest Server sharing a registry) wins.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.register(name, help, "counter", "")
	f.mu.Lock()
	f.pullable = true
	f.pull = func() []Sample { return []Sample{{Value: float64(fn())}} }
	f.mu.Unlock()
}

// GaugeFunc registers a gauge family pulled from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", "")
	f.mu.Lock()
	f.pullable = true
	f.pull = func() []Sample { return []Sample{{Value: fn()}} }
	f.mu.Unlock()
}

// GaugeVecFunc registers a labeled gauge family pulled from fn at render
// time; fn returns one Sample per label value.
func (r *Registry) GaugeVecFunc(name, help, labelKey string, fn func() []Sample) {
	f := r.register(name, help, "gauge", labelKey)
	f.mu.Lock()
	f.pullable = true
	f.pull = fn
	f.mu.Unlock()
}

// histWindow is how many recent observations the quantile estimator keeps.
// A fixed ring keeps rendering O(window) regardless of uptime; with 1024
// samples a p99 estimate rests on ~10 observations — coarse but honest for
// an operational dashboard.
const histWindow = 1024

// Histogram records float64 observations into fixed cumulative buckets
// plus a bounded ring of recent values for quantile estimation. It renders
// as a Prometheus summary — quantile series, _sum, and _count — so the
// series names predating the registry stay stable; the bucket counts are
// available programmatically via Snapshot.
//
// Observe is designed for hot paths (per-phase and per-dispatch latency):
// the bucket counters, count, and sum are atomics, and only the quantile
// ring takes a mutex — one that Snapshot shares, so a concurrent
// Observe/Snapshot pair can never tear the window (the ring's position
// and fill counters move only under ringMu).
type Histogram struct {
	bounds  []float64      // bucket upper bounds, ascending; immutable
	buckets []atomic.Int64 // buckets[i] counts observations <= bounds[i]; last = +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated via math.Float64bits

	quantiles []float64 // immutable after registration

	ringMu sync.Mutex
	ring   [histWindow]float64
	pos, n int
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := len(h.buckets) - 1 // +Inf
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.ringMu.Lock()
	h.ring[h.pos] = v
	h.pos = (h.pos + 1) % histWindow
	if h.n < histWindow {
		h.n++
	}
	h.ringMu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds    []float64 // bucket upper bounds; the final bucket is +Inf
	Buckets   []int64
	Count     int64
	Sum       float64
	Quantiles []float64 // requested quantiles, in registration order
	Values    []float64 // estimated value per quantile (nearest rank)
}

// Snapshot returns the histogram's current state, including the
// nearest-rank quantile estimates over the recent-observation window.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:    append([]float64(nil), h.bounds...),
		Buckets:   make([]int64, len(h.buckets)),
		Quantiles: append([]float64(nil), h.quantiles...),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	h.ringMu.Lock()
	window := make([]float64, h.n)
	copy(window, h.ring[:h.n])
	h.ringMu.Unlock()

	s.Values = make([]float64, len(s.Quantiles))
	if len(window) == 0 {
		return s
	}
	sort.Float64s(window)
	for i, q := range s.Quantiles {
		s.Values[i] = window[nearestRank(q, len(window))]
	}
	return s
}

// nearestRank maps quantile q over n sorted samples to an index, rounding
// half-up. Flooring int(q*(n-1)) — the scheme this replaces — biases high
// quantiles low on small windows: over 10 samples it reported the 9th for
// p99 when the 10th is nearer (0.99·9 = 8.91 rounds to 9, not 8).
func nearestRank(q float64, n int) int {
	rank := int(math.Floor(q*float64(n-1) + 0.5))
	if rank < 0 {
		rank = 0
	}
	if rank > n-1 {
		rank = n - 1
	}
	return rank
}

// DefBuckets are the default latency buckets, in seconds: sub-millisecond
// cache hits up through multi-minute sweeps.
var DefBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60, 120}

// newHistogram builds one histogram instrument, applying the registry
// defaults (DefBuckets; 0.5 and 0.99 quantiles).
func newHistogram(buckets, quantiles []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	if quantiles == nil {
		quantiles = []float64{0.5, 0.99}
	}
	return &Histogram{
		bounds:    append([]float64(nil), buckets...),
		buckets:   make([]atomic.Int64, len(buckets)+1),
		quantiles: append([]float64(nil), quantiles...),
	}
}

// Histogram registers (or finds) a histogram family. buckets are the
// cumulative upper bounds (nil = DefBuckets); quantiles are the summary
// quantiles rendered to the exposition (nil = 0.5 and 0.99).
func (r *Registry) Histogram(name, help string, buckets, quantiles []float64) *Histogram {
	f := r.register(name, help, "summary", "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hist == nil {
		f.hist = newHistogram(buckets, quantiles)
	}
	return f.hist
}

// HistogramVec is a histogram family with one label dimension — one
// summary (quantiles, _sum, _count) per label value, e.g. per-phase or
// per-worker latency.
type HistogramVec struct {
	f         *family
	buckets   []float64
	quantiles []float64
}

// With returns the child histogram for one label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h, ok := v.f.histVec[value]
	if !ok {
		h = newHistogram(v.buckets, v.quantiles)
		v.f.histVec[value] = h
	}
	return h
}

// HistogramVec registers (or finds) a labeled histogram family. buckets
// and quantiles follow the Histogram defaults and apply to every child.
func (r *Registry) HistogramVec(name, help, labelKey string, buckets, quantiles []float64) *HistogramVec {
	f := r.register(name, help, "summary", labelKey)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.histVec == nil {
		f.histVec = map[string]*Histogram{}
	}
	return &HistogramVec{f: f, buckets: buckets, quantiles: quantiles}
}

// Package-level helpers registering into the Global registry — the form
// packages use at init for process-wide series.

// NewCounter registers an unlabeled counter in the Global registry.
func NewCounter(name, help string) *Counter { return global.Counter(name, help) }

// NewCounterVec registers a labeled counter in the Global registry.
func NewCounterVec(name, help, labelKey string) *CounterVec {
	return global.CounterVec(name, help, labelKey)
}

// NewGaugeFunc registers a pulled gauge in the Global registry.
func NewGaugeFunc(name, help string, fn func() float64) { global.GaugeFunc(name, help, fn) }

// NewGaugeVecFunc registers a labeled pulled gauge in the Global registry.
// Re-registering rebinds the pull to fn, so the latest owner of a shared
// name (e.g. the newest Coordinator) is the one rendered.
func NewGaugeVecFunc(name, help, labelKey string, fn func() []Sample) {
	global.GaugeVecFunc(name, help, labelKey, fn)
}

// NewHistogram registers a histogram in the Global registry.
func NewHistogram(name, help string, buckets, quantiles []float64) *Histogram {
	return global.Histogram(name, help, buckets, quantiles)
}

// NewHistogramVec registers a labeled histogram in the Global registry.
func NewHistogramVec(name, help, labelKey string, buckets, quantiles []float64) *HistogramVec {
	return global.HistogramVec(name, help, labelKey, buckets, quantiles)
}
