package obs

import (
	"context"
	"strings"
	"testing"
)

// seededIDs installs a deterministic ID source for the test and restores
// the default on cleanup.
func seededIDs(t *testing.T, start uint64) {
	t.Helper()
	n := start
	SetIDSource(func() uint64 { n++; return n })
	t.Cleanup(func() { SetIDSource(nil) })
}

func TestTraceparentRoundTrip(t *testing.T) {
	seededIDs(t, 0x100)
	r := NewRecorder("root")
	defer r.Release()
	ctx := r.Install(context.Background())
	_, s := Start(ctx, "dispatch")
	ctx2, _ := Start(ctx, "dispatch")
	_ = s

	h := Traceparent(ctx2)
	if h == "" {
		t.Fatal("Traceparent under a live recorder must not be empty")
	}
	parts := strings.Split(h, "-")
	if len(parts) != 4 || parts[0] != "00" || parts[3] != "01" {
		t.Fatalf("traceparent %q not in 00-…-…-01 form", h)
	}
	tid, sid, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent rejected its own output %q", h)
	}
	if tid != r.TraceID() {
		t.Fatalf("trace id %s, want recorder's %s", tid, r.TraceID())
	}
	if len(sid) != 16 {
		t.Fatalf("span id %q not 16 hex digits", sid)
	}
}

func TestTraceparentDisabled(t *testing.T) {
	if h := Traceparent(context.Background()); h != "" {
		t.Fatalf("Traceparent without a recorder = %q, want empty", h)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // wrong version
		"00-0123456789abcdef0123456789abcdeZ-0123456789abcdef-01", // non-hex
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef",    // missing flags
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
}

func TestSeededIDSourceIsDeterministic(t *testing.T) {
	seededIDs(t, 7)
	a := NewRecorder("a")
	a.Release()
	seededIDs(t, 7)
	b := NewRecorder("b")
	b.Release()
	if a.TraceID() != b.TraceID() {
		t.Fatalf("same seed produced different trace IDs: %s vs %s", a.TraceID(), b.TraceID())
	}
}

func TestChildRecorderAdoptsRemoteParent(t *testing.T) {
	seededIDs(t, 0x2000)
	parent := NewRecorder("coordinator")
	defer parent.Release()
	ctx := parent.Install(context.Background())
	ctx, dispatch := Start(ctx, "dist.cell")

	h := Traceparent(ctx)
	child := NewChildRecorder("worker.cell", h)
	wctx := child.Install(context.Background())
	_, ws := Start(wctx, "experiment.cell")
	ws.End()
	child.Release()

	wt := child.Tree()
	if wt.TraceID != parent.TraceID() {
		t.Fatalf("child trace id %s, want parent's %s", wt.TraceID, parent.TraceID())
	}
	_, sid, _ := ParseTraceparent(h)
	if wt.ParentSpanID != sid {
		t.Fatalf("child parent span %s, want dispatch span %s", wt.ParentSpanID, sid)
	}

	// Stitch: the coordinator grafts the worker tree under its dispatch
	// span; the combined tree carries spans of both "processes".
	dispatch.AttachTree(wt)
	dispatch.End()
	tree := parent.Tree()
	if len(tree.Children) != 1 || tree.Children[0].Name != "dist.cell" {
		t.Fatalf("tree = %+v", tree)
	}
	grafted := tree.Children[0].Children
	if len(grafted) != 1 || grafted[0].Name != "worker.cell" {
		t.Fatalf("worker tree not grafted under dispatch: %+v", tree.Children[0])
	}
	if grafted[0].Children[0].Name != "experiment.cell" {
		t.Fatalf("worker subtree lost its spans: %+v", grafted[0])
	}
	if grafted[0].TraceID != tree.TraceID {
		t.Fatalf("stitched tree spans two trace IDs: %s vs %s", grafted[0].TraceID, tree.TraceID)
	}
}

func TestChildRecorderFallsBackOnBadHeader(t *testing.T) {
	r := NewChildRecorder("worker", "garbage")
	defer r.Release()
	if len(r.TraceID()) != 32 {
		t.Fatalf("fallback trace id %q not 32 hex digits", r.TraceID())
	}
	if r.Tree().ParentSpanID != "" {
		t.Fatal("fallback must not invent a remote parent")
	}
}
