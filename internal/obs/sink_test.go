package obs

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openTestSink(t *testing.T, dir string, maxBytes int64) *Sink {
	t.Helper()
	s, err := OpenSink(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSinkWriteAndRead(t *testing.T) {
	dir := t.TempDir()
	s := openTestSink(t, dir, 0)
	ctx := context.Background()

	r := NewRecorder("request")
	r.Release()
	tree := r.Tree()
	if err := s.WriteTrace(ctx, "req-000001", tree); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteEvent(ctx, "job_finished", "req-000002", tree.TraceID, map[string]any{"cells": 4}); err != nil {
		t.Fatal(err)
	}

	recs, skipped, err := ReadSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != 2 {
		t.Fatalf("records/skipped = %d/%d, want 2/0", len(recs), skipped)
	}
	if recs[0].Kind != "trace" || recs[0].TraceID != tree.TraceID || recs[0].Trace == nil {
		t.Fatalf("trace record = %+v", recs[0])
	}
	if recs[0].Trace.Name != "request" || recs[0].RequestID != "req-000001" {
		t.Fatalf("trace payload = %+v", recs[0].Trace)
	}
	if recs[1].Kind != "event" || recs[1].Event != "job_finished" || recs[1].Attrs["cells"] != float64(4) {
		t.Fatalf("event record = %+v", recs[1])
	}
}

func TestSinkNilIsInert(t *testing.T) {
	var s *Sink
	if err := s.WriteTrace(context.Background(), "", &SpanTree{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteEvent(context.Background(), "e", "", "", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSinkCorruptionTolerance mirrors the journal's replay contract: a
// corrupt line mid-file and a torn final line are skipped, everything
// else replays.
func TestSinkCorruptionTolerance(t *testing.T) {
	dir := t.TempDir()
	s := openTestSink(t, dir, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := s.WriteEvent(ctx, "cell_finished", "", "", map[string]any{"index": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the middle line and tear the tail, as a crash mid-append
	// would.
	path := filepath.Join(dir, sinkActive)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	lines[1] = "{\"kind\":\"event\",\"ev" + "%%corrupt%%\n"
	mangled := strings.Join(lines[:3], "") + `{"kind":"event","event":"torn`
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, skipped, err := ReadSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (first and third)", len(recs))
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2 (corrupt middle + torn tail)", skipped)
	}
	if recs[0].Attrs["index"] != float64(0) || recs[1].Attrs["index"] != float64(2) {
		t.Fatalf("surviving records = %+v", recs)
	}

	// Unknown-kind lines are skipped too, not misread as traces.
	if err := os.WriteFile(path, []byte("{\"kind\":\"mystery\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err = ReadSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || skipped != 1 {
		t.Fatalf("unknown kind: records/skipped = %d/%d, want 0/1", len(recs), skipped)
	}
}

func TestSinkRotationBoundsSize(t *testing.T) {
	dir := t.TempDir()
	s := openTestSink(t, dir, 256) // tiny segments force rotation
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := s.WriteEvent(ctx, "cell_finished", "req-000001", "", map[string]any{"index": i}); err != nil {
			t.Fatal(err)
		}
	}
	segs := sinkSegments(dir)
	if len(segs) == 0 {
		t.Fatal("no rotation happened under a tiny segment bound")
	}
	if len(segs) > sinkKeepSegments {
		t.Fatalf("%d rotated segments survive, bound is %d", len(segs), sinkKeepSegments)
	}
	// Pruning dropped the oldest segments; replay still works, oldest
	// surviving record first, and the newest record is present.
	recs, skipped, err := ReadSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) == 0 {
		t.Fatalf("records/skipped = %d/%d", len(recs), skipped)
	}
	last := recs[len(recs)-1]
	if last.Attrs["index"] != float64(99) {
		t.Fatalf("newest record = %+v, want index 99", last)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Attrs["index"].(float64) != recs[i-1].Attrs["index"].(float64)+1 {
			t.Fatalf("replay order broken at %d: %+v", i, recs[i])
		}
	}
}

func TestSinkConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	s := openTestSink(t, dir, 4096)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s.WriteEvent(ctx, "e", "", "", map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	recs, skipped, err := ReadSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("concurrent writes produced %d unparsable lines", skipped)
	}
	if len(recs) == 0 {
		t.Fatal("no records survive")
	}
}

func TestSamplerDeterministicUnderSeededSource(t *testing.T) {
	decisions := func() []bool {
		seeded := uint64(42)
		SetIDSource(func() uint64 { seeded++; return seeded * 0x9E3779B97F4A7C15 })
		defer SetIDSource(nil)
		sm := NewSampler(0.3)
		out := make([]bool, 64)
		for i := range out {
			out[i] = sm.Sample()
		}
		return out
	}
	a, b := decisions(), decisions()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.3 fired %d/%d times — not sampling", fired, len(a))
	}
}

func TestSamplerEdges(t *testing.T) {
	if (*Sampler)(nil).Sample() {
		t.Fatal("nil sampler must never fire")
	}
	if NewSampler(0).Sample() {
		t.Fatal("rate 0 must never fire")
	}
	always := NewSampler(1)
	for i := 0; i < 32; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 must always fire")
		}
	}
}
