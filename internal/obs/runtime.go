package obs

import "runtime"

// Go runtime health gauges, registered process-wide at init so every
// binary that renders the Global registry (ucp-serve /metrics, worker
// replicas) exposes them without wiring. All three are pulled at render
// time — a scrape pays the ReadMemStats, idle processes pay nothing.
func init() {
	global.GaugeFunc("ucp_go_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	global.GaugeFunc("ucp_go_heap_bytes",
		"Heap bytes currently allocated and in use.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	global.GaugeFunc("ucp_go_gc_pause_seconds",
		"Cumulative stop-the-world GC pause time in seconds.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.PauseTotalNs) / 1e9
		})
	global.GaugeVecFunc("ucp_build_info",
		"Build metadata; the value is always 1.", "go_version",
		func() []Sample { return []Sample{{Label: runtime.Version(), Value: 1}} })
}
