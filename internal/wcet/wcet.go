// Package wcet orchestrates the classical cache-aware WCET analysis the
// paper builds on: VIVU expansion, must/may abstract interpretation, and the
// determination of the WCET scenario (Section 3.3). Besides the IPET/ILP
// reference path (internal/ipet), it implements a fast structural solver
// for the reducible graphs our builder produces; the two are cross-checked
// in tests.
package wcet

import (
	"context"
	"fmt"

	"ucp/internal/absint"
	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/obs"
	"ucp/internal/vivu"
)

// Params are the timing parameters of the memory system, in cycles.
type Params struct {
	// HitCycles is the time of an instruction fetch that hits in cache.
	HitCycles int64
	// MissPenalty is the additional time of a fetch that misses (the
	// level-two access).
	MissPenalty int64
	// Lambda is the prefetch latency Λ (Definition 4): the time between a
	// prefetch issuing and the block being resident.
	Lambda int64
	// L2HitCycles is the additional time of a fetch that misses the L1 but
	// hits the L2, beyond HitCycles. Zero means no L2 is modeled: a fetch
	// either hits (HitCycles) or goes to memory (HitCycles+MissPenalty),
	// exactly the pre-hierarchy timing. Hierarchy analyses require it ≥ 1
	// and < MissPenalty (an L2 hit must beat a memory access).
	L2HitCycles int64
}

// Valid reports whether the parameters are usable.
func (p Params) Valid() error {
	if p.HitCycles < 1 || p.MissPenalty < 1 || p.Lambda < 1 {
		return fmt.Errorf("wcet: non-positive timing parameters %+v", p)
	}
	if p.L2HitCycles < 0 || p.L2HitCycles >= p.MissPenalty {
		return fmt.Errorf("wcet: L2 hit cycles %d outside [0, miss penalty %d)", p.L2HitCycles, p.MissPenalty)
	}
	return nil
}

// MissCycles is the total fetch time on a miss.
func (p Params) MissCycles() int64 { return p.HitCycles + p.MissPenalty }

// Result is the outcome of a full WCET analysis of one program on one cache
// configuration.
type Result struct {
	Prog *isa.Program
	X    *vivu.Prog
	Lay  *isa.Layout
	AI   *absint.Result
	Cfg  cache.Config
	Par  Params

	// Hier is the cache hierarchy the result was computed against; for a
	// single-level analysis it is Hier1(Cfg). AI2 is the L2 abstract
	// interpretation, nil when no L2 is configured.
	Hier cache.Hierarchy
	AI2  *absint.Result

	// Tw[xb][i] is t_w of the i-th reference of expanded block xb: its
	// fetch time in the WCET scenario (Section 3.3).
	Tw [][]int64
	// Cost[xb] = Σ_i Tw[xb][i], the per-block memory time t_w(bb).
	Cost []int64
	// Extra[xb] is the one-time cost charged once per entry of the
	// residual loop region containing xb (the first-miss charges of
	// persistence-classified references).
	Extra []int64
	// Nw[xb] is the execution count of expanded block xb in the WCET
	// scenario (n^w_bb); zero off the WCET path.
	Nw []int64
	// TauW is the memory contribution to the WCET, Σ Cost·Nw (Equation 3).
	TauW int64
	// Misses is the number of L1 cache misses in the WCET scenario
	// (references not classified always-hit, weighted by Nw).
	Misses int64
	// L2Misses is the number of fetches that also miss the L2 in the WCET
	// scenario (pay the full MissPenalty). Zero for single-level analyses,
	// where every L1 miss goes straight to memory.
	L2Misses int64
	// Fetches is the number of instruction fetches in the WCET scenario.
	Fetches int64
}

// Analyze expands p and analyzes it on cfg with parameters par. The analysis
// is cooperatively cancellable: when ctx is canceled or its deadline passes,
// the fixpoint unwinds and the call returns a typed interrupt error
// (interrupt.ErrCanceled / interrupt.ErrDeadline).
func Analyze(ctx context.Context, p *isa.Program, cfg cache.Config, par Params) (*Result, error) {
	x, err := vivu.ExpandCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	return AnalyzeX(ctx, x, cfg, par)
}

// AnalyzeX analyzes a pre-expanded program. The expansion depends only on
// the control-flow structure, not on the instruction sequences, so the
// optimizer reuses one expansion across its insertion iterations.
func AnalyzeX(ctx context.Context, x *vivu.Prog, cfg cache.Config, par Params) (*Result, error) {
	if err := par.Valid(); err != nil {
		return nil, err
	}
	if err := cfg.Valid(); err != nil {
		return nil, err
	}
	statFull.Inc()
	ctx, span := obs.Start(ctx, "wcet.analyze")
	span.Attr("mode", "full")
	defer span.End()
	lay := isa.NewLayout(x.Prog)
	ai, err := absint.Analyze(ctx, x, lay, cfg, int(par.Lambda))
	if err != nil {
		return nil, err
	}
	return assemble(ctx, x, cfg, par, lay, ai, nil)
}

// SolveCounts runs the structural WCET-scenario solver for externally
// supplied per-block costs, returning the counts n_w and the optimum τ_w.
// The locking baseline uses it with its own fixed hit/miss cost vector.
func SolveCounts(x *vivu.Prog, cost []int64) (nw []int64, tau int64, err error) {
	return solveStructural(x, cost)
}

// OnWCETPath reports whether expanded block xb executes in the WCET
// scenario.
func (r *Result) OnWCETPath(xb int) bool { return r.Nw[xb] > 0 }

// RefTime returns t_w of a reference (the fetch time of one access in the
// WCET scenario).
func (r *Result) RefTime(ref vivu.Ref) int64 { return r.Tw[ref.XB][ref.Index] }

// RefCount returns n_w of the expanded block containing the reference.
func (r *Result) RefCount(ref vivu.Ref) int64 { return r.Nw[ref.XB] }

// Contribution returns τ_w(r) = t_w(r)·n_w(B(r)) (Equation 2).
func (r *Result) Contribution(ref vivu.Ref) int64 {
	return r.RefTime(ref) * r.RefCount(ref)
}
