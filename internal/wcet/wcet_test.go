package wcet

import (
	"context"
	"math/rand"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/ipet"
	"ucp/internal/isa"
	"ucp/internal/vivu"
)

var testPar = Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}

func analyze(t *testing.T, p *isa.Program, cfg cache.Config) *Result {
	t.Helper()
	res, err := Analyze(context.Background(), p, cfg, testPar)
	if err != nil {
		t.Fatalf("Analyze(context.Background(), %s): %v", p.Name, err)
	}
	return res
}

func TestStraightLineWCET(t *testing.T) {
	// 12 instructions (prologue + 10 + epilogue), cold cache, block 16B =
	// 4 instructions: 3 misses + 9 hits = 3*10 + 9*1 = 39.
	p := isa.Build("s", isa.Code(10))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	res := analyze(t, p, cfg)
	if res.TauW != 39 {
		t.Fatalf("TauW = %d, want 39", res.TauW)
	}
	if res.Misses != 3 || res.Fetches != 12 {
		t.Fatalf("misses=%d fetches=%d", res.Misses, res.Fetches)
	}
}

func TestIfTakesLongerArm(t *testing.T) {
	// Arms of 4 and 40 instructions: the WCET path must take the long arm.
	p := isa.Build("if", isa.If(0.5, isa.S(isa.Code(4)), isa.S(isa.Code(40))))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 4096}
	res := analyze(t, p, cfg)

	short, long := -1, -1
	for _, xb := range res.X.Blocks {
		n := len(p.Blocks[xb.Orig].Instrs)
		if n == 5 { // 4 + jump
			short = xb.ID
		}
		if n == 41 {
			long = xb.ID
		}
	}
	if short == -1 || long == -1 {
		t.Fatal("arm blocks not found")
	}
	if res.Nw[long] != 1 || res.Nw[short] != 0 {
		t.Fatalf("Nw long=%d short=%d", res.Nw[long], res.Nw[short])
	}
}

func TestLoopBoundScalesWCET(t *testing.T) {
	mk := func(bound int) *isa.Program {
		return isa.Build("lb", isa.Loop(bound, float64(bound), isa.Code(6)))
	}
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	r10 := analyze(t, mk(10), cfg)
	r20 := analyze(t, mk(20), cfg)
	if r20.TauW <= r10.TauW {
		t.Fatalf("TauW(20)=%d should exceed TauW(10)=%d", r20.TauW, r10.TauW)
	}
	// With a cache-resident body, doubling the bound adds exactly
	// 10 * (hits per iteration) cycles.
	// body: 6 ops + jump = 7 refs; head: 2 refs. One extra iteration adds
	// 9 hit cycles.
	if diff := r20.TauW - r10.TauW; diff != 10*9 {
		t.Fatalf("TauW difference = %d, want 90", diff)
	}
}

func TestHeaderCountsBoundPlusOne(t *testing.T) {
	p := isa.Build("h", isa.Loop(5, 3, isa.Code(4)))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	res := analyze(t, p, cfg)
	head := p.Loops[0].Head
	f := res.X.Lookup(head, "F")
	r := res.X.Lookup(head, "R")
	if res.Nw[f] != 1 {
		t.Fatalf("Nw(headF) = %d, want 1", res.Nw[f])
	}
	if res.Nw[r] != 5 {
		t.Fatalf("Nw(headR) = %d, want 5 (bound)", res.Nw[r])
	}
}

func TestNestedLoopCounts(t *testing.T) {
	p := isa.Build("n", isa.Loop(4, 3, isa.Loop(3, 2, isa.Code(2))))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	res := analyze(t, p, cfg)
	innerHead := p.Loops[1].Head
	// Inner head in FF: first outer iteration, first inner check: 1.
	if n := res.Nw[res.X.Lookup(innerHead, "FF")]; n != 1 {
		t.Fatalf("Nw(FF) = %d, want 1", n)
	}
	// Inner head in FR: first outer iteration, later checks: 3 (= inner bound).
	if n := res.Nw[res.X.Lookup(innerHead, "FR")]; n != 3 {
		t.Fatalf("Nw(FR) = %d, want 3", n)
	}
	// Outer R iterations: 3 of them, each 1 first check + 3 later checks.
	if n := res.Nw[res.X.Lookup(innerHead, "RF")]; n != 3 {
		t.Fatalf("Nw(RF) = %d, want 3", n)
	}
	if n := res.Nw[res.X.Lookup(innerHead, "RR")]; n != 9 {
		t.Fatalf("Nw(RR) = %d, want 9", n)
	}
}

func TestTauEqualsCostDotNw(t *testing.T) {
	p := isa.Build("dot", isa.Loop(7, 4, isa.IfThen(0.4, isa.Code(12)), isa.Code(3)), isa.Code(5))
	cfg := cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 256}
	res := analyze(t, p, cfg)
	var sum, extras int64
	for id, n := range res.Nw {
		sum += res.Cost[id] * n
	}
	for _, e := range res.Extra {
		extras += e
	}
	if res.TauW < sum || res.TauW > sum+extras {
		t.Fatalf("TauW = %d outside [Σcost·n, +extras] = [%d, %d]", res.TauW, sum, sum+extras)
	}
}

// randomProgram builds a random structured program for the cross-check.
func randomProgram(rng *rand.Rand, name string) *isa.Program {
	var gen func(depth int) []isa.Node
	gen = func(depth int) []isa.Node {
		var nodes []isa.Node
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch k := rng.Intn(6); {
			case k < 3 || depth >= 3:
				nodes = append(nodes, isa.Code(1+rng.Intn(18)))
			case k == 3:
				nodes = append(nodes, isa.If(rng.Float64(), gen(depth+1), gen(depth+1)))
			case k == 4:
				nodes = append(nodes, isa.IfThen(rng.Float64(), gen(depth+1)...))
			default:
				b := 1 + rng.Intn(6)
				nodes = append(nodes, isa.Loop(b, float64(rng.Intn(b))+rng.Float64()*0.5, gen(depth+1)...))
			}
		}
		return nodes
	}
	return isa.Build(name, gen(0)...)
}

// The load-bearing cross-check: the fast structural solver must agree with
// the IPET integer linear program on τ_w for a corpus of random structured
// programs and several cache configurations.
func TestStructuralMatchesIPET(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfgs := []cache.Config{
		{Assoc: 1, BlockBytes: 16, CapacityBytes: 128},
		{Assoc: 2, BlockBytes: 16, CapacityBytes: 256},
		{Assoc: 4, BlockBytes: 32, CapacityBytes: 512},
	}
	for i := 0; i < 25; i++ {
		p := randomProgram(rng, "rnd")
		for _, cfg := range cfgs {
			res, err := Analyze(context.Background(), p, cfg, testPar)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			form, err := ipet.BuildExtra(res.X, res.Cost, res.Extra)
			if err != nil {
				t.Fatalf("ipet.Build: %v", err)
			}
			ref, err := form.Solve()
			if err != nil {
				t.Fatalf("ipet.Solve: %v", err)
			}
			if ref.TauW != res.TauW {
				t.Fatalf("program %d cfg %v: structural τ=%d, IPET τ=%d", i, cfg, res.TauW, ref.TauW)
			}
		}
	}
}

// The structural counts must themselves be IPET-feasible: conservation and
// loop bounds hold.
func TestStructuralCountsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	for i := 0; i < 25; i++ {
		p := randomProgram(rng, "feas")
		res, err := Analyze(context.Background(), p, cfg, testPar)
		if err != nil {
			t.Fatal(err)
		}
		x := res.X
		// Entry executes once.
		if res.Nw[x.Entry] != 1 {
			t.Fatalf("entry count = %d", res.Nw[x.Entry])
		}
		// Conservation: inflow == count for every non-entry block with the
		// chosen-path semantics (inflow counts only non-back plus back).
		// We verify the loop bounds instead, which is the binding fact.
		for _, inst := range x.Loops {
			entries := res.Nw[inst.HeadFirst]
			if inst.HeadRest == -1 {
				continue
			}
			rest := res.Nw[inst.HeadRest]
			if rest > int64(inst.Bound)*entries {
				t.Fatalf("loop %d/%s: headR count %d exceeds bound %d × entries %d",
					inst.Orig, inst.Enclosing, rest, inst.Bound, entries)
			}
		}
		// Non-negative counts.
		for id, n := range res.Nw {
			if n < 0 {
				t.Fatalf("negative count %d at block %d", n, id)
			}
		}
	}
}

func TestSmallerCacheNeverFasterWCET(t *testing.T) {
	// Monotonicity: growing the cache (same assoc/block) must not increase
	// τ_w.
	p := isa.Build("mono",
		isa.Loop(12, 9, isa.Code(30), isa.IfThen(0.5, isa.Code(25))),
		isa.Loop(6, 4, isa.Code(40)),
	)
	var prev int64 = 1 << 62
	for _, capacity := range []int{256, 512, 1024, 2048, 4096} {
		cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: capacity}
		res := analyze(t, p, cfg)
		if res.TauW > prev {
			t.Fatalf("τ_w grew from %d to %d when capacity reached %d", prev, res.TauW, capacity)
		}
		prev = res.TauW
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{HitCycles: 0, MissPenalty: 10, Lambda: 10},
		{HitCycles: 1, MissPenalty: 0, Lambda: 10},
		{HitCycles: 1, MissPenalty: 10, Lambda: 0},
	}
	for _, par := range bad {
		if err := par.Valid(); err == nil {
			t.Errorf("params %+v should be invalid", par)
		}
	}
	if (Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}).MissCycles() != 10 {
		t.Error("MissCycles arithmetic")
	}
}

func TestRefAccessors(t *testing.T) {
	p := isa.Build("acc", isa.Loop(3, 2, isa.Code(2)))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	res := analyze(t, p, cfg)
	head := p.Loops[0].Head
	rF := vivu.Ref{XB: res.X.Lookup(head, "F"), Index: 0}
	rR := vivu.Ref{XB: res.X.Lookup(head, "R"), Index: 0}
	if res.RefCount(rF) != 1 || res.RefCount(rR) != 3 {
		t.Fatalf("counts: F=%d R=%d", res.RefCount(rF), res.RefCount(rR))
	}
	if res.Contribution(rR) != res.RefTime(rR)*3 {
		t.Fatal("Contribution arithmetic")
	}
	if !res.OnWCETPath(rR.XB) {
		t.Fatal("loop header R must be on the WCET path")
	}
}
