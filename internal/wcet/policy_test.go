package wcet

import (
	"context"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/isa"
)

// Analyze is an entry point for unvalidated configurations, so it must
// reject them instead of dividing by zero or analyzing nonsense.
func TestPolicyAnalyzeValidatesConfig(t *testing.T) {
	p := isa.Build("v", isa.Code(8))
	par := Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}
	bad := []cache.Config{
		{},
		{Assoc: 0, BlockBytes: 16, CapacityBytes: 256},
		{Assoc: 3, BlockBytes: 16, CapacityBytes: 240, Policy: cache.PLRU},
		{Assoc: 2, BlockBytes: 16, CapacityBytes: 64, Policy: cache.Policy(9)},
	}
	for _, cfg := range bad {
		if _, err := Analyze(context.Background(), p, cfg, par); err == nil {
			t.Errorf("Analyze accepted invalid config %v", cfg)
		}
	}
}

// The analysis must run to completion under every policy and produce a
// non-degenerate bound; with an empty initial cache the entry reference can
// never be a hit, so τ_w is positive under any sound policy model.
func TestPolicyAnalyzeCompletes(t *testing.T) {
	p := isa.Build("pol", isa.Loop(6, 4, isa.Code(10)), isa.Code(5))
	par := Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}
	bounds := map[cache.Policy]int64{}
	for _, pol := range cache.Policies() {
		cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256, Policy: pol}
		res, err := Analyze(context.Background(), p, cfg, par)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.TauW <= 0 || res.Fetches <= 0 || res.Misses <= 0 {
			t.Fatalf("%s: degenerate result TauW=%d Fetches=%d Misses=%d",
				pol, res.TauW, res.Fetches, res.Misses)
		}
		bounds[pol] = res.TauW
	}
	// The FIFO and PLRU transfers are deliberately coarser than exact LRU,
	// and this program's WCET path is identical for all policies, so their
	// bounds cannot undercut the LRU bound.
	for _, pol := range []cache.Policy{cache.FIFO, cache.PLRU} {
		if bounds[pol] < bounds[cache.LRU] {
			t.Errorf("%s bound %d undercuts the LRU bound %d", pol, bounds[pol], bounds[cache.LRU])
		}
	}
}
