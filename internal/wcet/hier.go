package wcet

import (
	"context"
	"fmt"

	"ucp/internal/absint"
	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/obs"
	"ucp/internal/vivu"
)

// This file extends the WCET analysis to an L1+L2 hierarchy. The L1
// abstract interpretation runs exactly as before (with its incremental
// path); the L2 runs the CAC-gated fixpoint of absint.AnalyzeL2; and the
// assembly prices every reference with three outcomes instead of two:
//
//	L1 hit              HitCycles
//	L1 miss, L2 hit     HitCycles + L2HitCycles
//	L2 miss             HitCycles + L2HitCycles + MissPenalty
//
// First-miss classifications at either level move their charge into the
// once-per-region-entry extra vector, as in the single-level assembly. With
// no L2 configured every entry point delegates to the single-level analysis
// unchanged, so results stay bit-identical to the pre-hierarchy code.

// AnalyzeHier expands p and analyzes it against the hierarchy h. With no L2
// configured it is exactly Analyze on h.L1.
func AnalyzeHier(ctx context.Context, p *isa.Program, h cache.Hierarchy, par Params) (*Result, error) {
	x, err := vivu.ExpandCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	return AnalyzeXHier(ctx, x, h, par)
}

// AnalyzeXHier analyzes a pre-expanded program against the hierarchy h.
func AnalyzeXHier(ctx context.Context, x *vivu.Prog, h cache.Hierarchy, par Params) (*Result, error) {
	return AnalyzeXHierFrom(ctx, x, h, par, nil)
}

// AnalyzeXHierFrom re-analyzes a mutated program against hierarchy h,
// seeding the L1 abstract interpretation from prev when compatible. The L2
// fixpoint always runs in full: its transfer rows depend on the L1
// classifications, which any mutation can shift globally, and the CAC-gated
// pass is cheap on the expanded graphs the optimizer works with. With no L2
// configured the call is exactly AnalyzeXFrom on h.L1.
func AnalyzeXHierFrom(ctx context.Context, x *vivu.Prog, h cache.Hierarchy, par Params, prev *Result) (*Result, error) {
	if !h.HasL2() {
		return AnalyzeXFrom(ctx, x, h.L1, par, prev)
	}
	if err := par.Valid(); err != nil {
		return nil, err
	}
	if par.L2HitCycles < 1 {
		return nil, fmt.Errorf("wcet: hierarchy analysis needs L2HitCycles >= 1, have %d", par.L2HitCycles)
	}
	if err := h.Valid(); err != nil {
		return nil, err
	}
	incremental := prev != nil && prev.X == x && prev.Hier == h && prev.Par == par
	if incremental {
		statIncremental.Inc()
	} else {
		statFull.Inc()
		prev = nil
	}
	ctx, span := obs.Start(ctx, "wcet.analyze")
	span.Attr("mode", map[bool]string{true: "hier-incremental", false: "hier-full"}[incremental])
	defer span.End()
	lay := isa.NewLayout(x.Prog)
	var ai *absint.Result
	var err error
	if incremental {
		ai, err = absint.AnalyzeFrom(ctx, x, lay, h.L1, int(par.Lambda), prev.AI)
	} else {
		ai, err = absint.Analyze(ctx, x, lay, h.L1, int(par.Lambda))
	}
	if err != nil {
		return nil, err
	}
	ai2, err := absint.AnalyzeL2(ctx, x, lay, h, int(par.Lambda), ai)
	if err != nil {
		return nil, err
	}
	return assembleHier(ctx, x, h, par, lay, ai, ai2, prev)
}

// assembleHier turns the two per-level abstract interpretations into a WCET
// Result with three-outcome pricing. Rows are always recomputed (they are a
// linear pass over the instructions); the structural solve is skipped when
// the cost and extra vectors match prev's, in which case the counts and
// totals are provably identical.
func assembleHier(ctx context.Context, x *vivu.Prog, h cache.Hierarchy, par Params, lay *isa.Layout, ai, ai2 *absint.Result, prev *Result) (*Result, error) {
	n := len(x.Blocks)
	res := &Result{
		Prog: x.Prog, X: x, Lay: lay, AI: ai, AI2: ai2,
		Cfg: h.L1, Hier: h, Par: par,
		Tw:   make([][]int64, n),
		Cost: make([]int64, n),
	}
	extra := make([]int64, n)
	costSame := prev != nil
	for _, xb := range x.Blocks {
		id := xb.ID
		instrs := x.Prog.Blocks[xb.Orig].Instrs
		row := make([]int64, len(instrs))
		total := int64(0)
		for i := range instrs {
			t := par.HitCycles
			switch ai.Class[id][i] {
			case absint.AlwaysHit:
				// Served by the L1; the L2 never sees the fetch.
			case absint.FirstMiss:
				// Reaches the L2 once per region entry; the L2 verdict
				// decides whether that one access also goes to memory.
				extra[id] += par.L2HitCycles
				if ai2.Class[id][i] != absint.AlwaysHit {
					extra[id] += par.MissPenalty
				}
			default:
				// May reach the L2 on every execution.
				t += par.L2HitCycles
				switch ai2.Class[id][i] {
				case absint.AlwaysHit:
				case absint.FirstMiss:
					extra[id] += par.MissPenalty
				default:
					t += par.MissPenalty
				}
			}
			row[i] = t
			total += t
		}
		res.Tw[id] = row
		res.Cost[id] = total
		if costSame && (total != prev.Cost[id] || extra[id] != prev.Extra[id]) {
			costSame = false
		}
	}
	res.Extra = extra

	if costSame {
		res.Nw = prev.Nw
		res.TauW = prev.TauW
		res.Misses = prev.Misses
		res.L2Misses = prev.L2Misses
		res.Fetches = prev.Fetches
		if _, sp := obs.Start(ctx, "wcet.solve"); sp != nil {
			sp.Attr("skipped", true)
			sp.Attr("tau_w", res.TauW)
			sp.End()
		}
		return res, nil
	}

	_, sp := obs.Start(ctx, "wcet.solve")
	nw, tau, err := solveStructuralExtra(x, res.Cost, extra)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Attr("tau_w", tau)
	sp.End()
	res.Nw = nw
	res.TauW = tau
	for _, xb := range x.Blocks {
		cnt := nw[xb.ID]
		if cnt == 0 {
			continue
		}
		res.Fetches += cnt * int64(len(x.Prog.Blocks[xb.Orig].Instrs))
		for i := range x.Prog.Blocks[xb.Orig].Instrs {
			c1 := ai.Class[xb.ID][i]
			switch c1 {
			case absint.AlwaysHit:
				continue
			case absint.FirstMiss:
				res.Misses++ // at most one L1 miss regardless of n_w
			default:
				res.Misses += cnt
			}
			// The fetch reaches the L2 (always, or once per region for a
			// first miss); count how often it also goes to memory.
			switch c2 := ai2.Class[xb.ID][i]; {
			case c2 == absint.AlwaysHit:
			case c1 == absint.FirstMiss || c2 == absint.FirstMiss:
				res.L2Misses++
			default:
				res.L2Misses += cnt
			}
		}
	}
	return res, nil
}
