package wcet

import (
	"context"

	"ucp/internal/absint"
	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/obs"
	"ucp/internal/vivu"
)

// Counters for observability: how many analyses ran the full from-scratch
// pipeline versus the incremental warm path. They live in the process-wide
// obs registry, so the service /metrics endpoint (and anything else that
// renders obs.Global) picks them up without wiring.
var (
	statFull = obs.NewCounter("ucp_analysis_full_reanalyses_total",
		"WCET analyses computed from scratch.")
	statIncremental = obs.NewCounter("ucp_analysis_incremental_hits_total",
		"WCET re-analyses seeded incrementally from a previous result.")
)

// AnalysisStats is a snapshot of the process-wide analysis counters.
type AnalysisStats struct {
	// Full counts analyses that ran the from-scratch fixpoint.
	Full int64
	// Incremental counts re-analyses served by AnalyzeXFrom's warm path.
	Incremental int64
}

// Stats returns the current analysis counters.
func Stats() AnalysisStats {
	return AnalysisStats{Full: statFull.Value(), Incremental: statIncremental.Value()}
}

// AnalyzeXFrom re-analyzes a mutated program incrementally, seeded from a
// previous Result for the same expansion and parameters. The abstract
// interpretation restarts only the region affected by the mutation (see
// absint.AnalyzeFrom), per-block cost rows are recomputed only for blocks
// the fixpoint actually revisited, and the structural WCET solve is skipped
// entirely when the cost and extra vectors came out unchanged — in that
// case the previous counts are provably identical. The returned Result is
// bit-identical (classifications, Tw, Nw, τ_w, miss and fetch counts) to
// what AnalyzeX would compute from scratch; the differential tests pin this
// down. When prev is nil or was produced under different parameters the
// call degrades to a full AnalyzeX.
func AnalyzeXFrom(ctx context.Context, x *vivu.Prog, cfg cache.Config, par Params, prev *Result) (*Result, error) {
	if prev == nil || prev.X != x || prev.Cfg != cfg || prev.Par != par {
		return AnalyzeX(ctx, x, cfg, par)
	}
	if err := par.Valid(); err != nil {
		return nil, err
	}
	statIncremental.Inc()
	ctx, span := obs.Start(ctx, "wcet.analyze")
	span.Attr("mode", "incremental")
	defer span.End()
	lay := isa.NewLayout(x.Prog)
	ai, err := absint.AnalyzeFrom(ctx, x, lay, cfg, int(par.Lambda), prev.AI)
	if err != nil {
		return nil, err
	}
	return assemble(ctx, x, cfg, par, lay, ai, prev)
}

// assemble turns an abstract-interpretation result into a WCET Result,
// reusing prev's per-block rows for blocks the analysis did not revisit and
// prev's solve outputs when the cost vectors are unchanged.
func assemble(ctx context.Context, x *vivu.Prog, cfg cache.Config, par Params, lay *isa.Layout, ai *absint.Result, prev *Result) (*Result, error) {
	n := len(x.Blocks)
	res := &Result{
		Prog: x.Prog, X: x, Lay: lay, AI: ai, Cfg: cfg, Par: par,
		Hier: cache.Hier1(cfg),
		Tw:   make([][]int64, n),
		Cost: make([]int64, n),
	}
	// extra[xb] carries the one-time first-miss charges of the block's
	// persistence-classified references: each pays one miss penalty per
	// entry of its loop region, not per execution.
	extra := make([]int64, n)
	changed := ai.Changed
	costSame := prev != nil
	for _, xb := range x.Blocks {
		id := xb.ID
		if prev != nil && changed != nil && !changed[id] {
			res.Tw[id] = prev.Tw[id]
			res.Cost[id] = prev.Cost[id]
			extra[id] = prev.Extra[id]
			continue
		}
		instrs := x.Prog.Blocks[xb.Orig].Instrs
		row := make([]int64, len(instrs))
		total := int64(0)
		for i := range instrs {
			t := par.MissCycles()
			switch ai.Class[id][i] {
			case absint.AlwaysHit:
				t = par.HitCycles
			case absint.FirstMiss:
				t = par.HitCycles
				extra[id] += par.MissPenalty
			}
			row[i] = t
			total += t
		}
		res.Tw[id] = row
		res.Cost[id] = total
		if prev != nil && (total != prev.Cost[id] || extra[id] != prev.Extra[id]) {
			costSame = false
		}
	}
	res.Extra = extra

	// Unchanged cost and extra vectors determine the solve completely, and
	// (since every fetch costs at least one cycle) force the per-block
	// class-category counts to be unchanged too — so counts, τ_w, misses,
	// and fetches are all exactly prev's.
	if costSame {
		res.Nw = prev.Nw
		res.TauW = prev.TauW
		res.Misses = prev.Misses
		res.Fetches = prev.Fetches
		if _, sp := obs.Start(ctx, "wcet.solve"); sp != nil {
			sp.Attr("skipped", true)
			sp.Attr("tau_w", res.TauW)
			sp.End()
		}
		return res, nil
	}

	_, sp := obs.Start(ctx, "wcet.solve")
	nw, tau, err := solveStructuralExtra(x, res.Cost, extra)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Attr("tau_w", tau)
	sp.End()
	res.Nw = nw
	res.TauW = tau
	for _, xb := range x.Blocks {
		cnt := nw[xb.ID]
		if cnt == 0 {
			continue
		}
		res.Fetches += cnt * int64(len(x.Prog.Blocks[xb.Orig].Instrs))
		for i := range x.Prog.Blocks[xb.Orig].Instrs {
			switch ai.Class[xb.ID][i] {
			case absint.AlwaysHit:
			case absint.FirstMiss:
				res.Misses++ // at most one miss regardless of n_w
			default:
				res.Misses += cnt
			}
		}
	}
	return res, nil
}
