package wcet

import (
	"fmt"
	"sort"

	"ucp/internal/vivu"
)

// solveStructural computes the WCET scenario (block counts and total memory
// time) of an expanded program by hierarchical reduction: every residual
// loop region (the R-context copy of a loop) is collapsed, innermost first,
// into a supernode whose weight accounts for its bounded iteration, and the
// remaining DAG is solved by longest path. For the network-like IPET
// instances our structured programs generate this yields exactly the ILP
// optimum (a property checked against internal/ipet in tests) at a fraction
// of the cost.
func solveStructural(x *vivu.Prog, cost []int64) (nw []int64, tau int64, err error) {
	return solveStructuralExtra(x, cost, nil)
}

// solveStructuralExtra additionally takes per-block one-time costs charged
// once per entry of the residual loop region containing the block (the
// IPET encoding of first-miss/persistence classifications). extra may be
// nil.
func solveStructuralExtra(x *vivu.Prog, cost, extra []int64) (nw []int64, tau int64, err error) {
	s := &structSolver{x: x}
	s.init(cost, extra)
	if err := s.collapseLoops(); err != nil {
		return nil, 0, err
	}
	return s.finish()
}

type superNode struct {
	inst     vivu.LoopInstance
	headNode int
	// iterPath is the chosen maximal iteration path (head first, back-edge
	// source last), as node IDs at the time of collapse.
	iterPath []int
	// iterChoice[n] = chosen successor of node n along the iteration path.
	iterCost int64
}

type structSolver struct {
	x *vivu.Prog

	// Node space: 0..nXB-1 are expanded blocks; supernodes appended.
	weight []int64
	// extra holds per-node one-time costs, consumed (folded into the
	// supernode weight) when the node's region collapses; whatever remains
	// at the top level is charged once on the final path.
	extra  []int64
	succs  [][]int
	alive  []bool
	key    []int // topological key (position in x.Topo of the representative)
	find   []int // xblock -> current node
	supers map[int]*superNode

	nXB int
}

func (s *structSolver) init(cost, extra []int64) {
	n := len(s.x.Blocks)
	s.nXB = n
	s.weight = append([]int64(nil), cost...)
	s.extra = make([]int64, n)
	if extra != nil {
		copy(s.extra, extra)
	}
	s.succs = make([][]int, n)
	s.alive = make([]bool, n)
	s.key = make([]int, n)
	s.find = make([]int, n)
	s.supers = map[int]*superNode{}
	for i := 0; i < n; i++ {
		s.alive[i] = true
		s.find[i] = i
	}
	for pos, id := range s.x.Topo {
		s.key[id] = pos
	}
	for _, xb := range s.x.Blocks {
		for _, e := range xb.Succs {
			if !e.Back {
				s.succs[xb.ID] = append(s.succs[xb.ID], e.To)
			}
		}
	}
}

// collapseLoops processes the residual loop regions innermost first.
func (s *structSolver) collapseLoops() error {
	insts := append([]vivu.LoopInstance(nil), s.x.Loops...)
	sort.SliceStable(insts, func(i, j int) bool {
		return len(insts[i].Enclosing) > len(insts[j].Enclosing)
	})
	for _, inst := range insts {
		if inst.HeadRest == -1 {
			continue
		}
		if err := s.collapse(inst); err != nil {
			return err
		}
	}
	return nil
}

func (s *structSolver) collapse(inst vivu.LoopInstance) error {
	members := s.x.RegionMembers(inst)
	region := map[int]bool{}
	for _, xb := range members {
		region[s.find[xb]] = true
	}
	head := s.find[inst.HeadRest]
	if !region[head] {
		return fmt.Errorf("wcet: loop %d/%s head outside its region", inst.Orig, inst.Enclosing)
	}

	// Back-edge sources (xblock level) and their current nodes.
	backSrc := map[int]bool{}
	for _, p := range s.x.Blocks[inst.HeadRest].Preds {
		for _, e := range s.x.Blocks[p].Succs {
			if e.To == inst.HeadRest && e.Back {
				backSrc[s.find[p]] = true
			}
		}
	}
	if len(backSrc) == 0 {
		return fmt.Errorf("wcet: loop %d/%s has no residual back edge", inst.Orig, inst.Enclosing)
	}

	// Longest head→back-source path inside the region (node-weighted,
	// endpoints included), over the region-internal DAG.
	nodes := make([]int, 0, len(region))
	for n := range region {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return s.key[nodes[i]] < s.key[nodes[j]] })

	const minusInf = int64(-1) << 62
	best := map[int]int64{}
	choice := map[int]int{}
	for n := range region {
		best[n] = minusInf
	}
	best[head] = s.weight[head]
	var iterCost int64 = minusInf
	var iterEnd = -1
	for _, n := range nodes {
		if best[n] == minusInf {
			continue
		}
		if backSrc[n] && best[n] > iterCost {
			iterCost = best[n]
			iterEnd = n
		}
		for _, t := range s.succs[n] {
			if !region[t] {
				continue
			}
			if v := best[n] + s.weight[t]; v > best[t] {
				best[t] = v
				choice[t] = n
			}
		}
	}
	if iterEnd == -1 {
		return fmt.Errorf("wcet: loop %d/%s back-edge source unreachable from its header", inst.Orig, inst.Enclosing)
	}
	var iterPath []int
	for n := iterEnd; ; {
		iterPath = append(iterPath, n)
		if n == head {
			break
		}
		prev, ok := choice[n]
		if !ok {
			return fmt.Errorf("wcet: broken iteration path reconstruction")
		}
		n = prev
	}
	// Reverse to head-first order.
	for i, j := 0, len(iterPath)-1; i < j; i, j = i+1, j-1 {
		iterPath[i], iterPath[j] = iterPath[j], iterPath[i]
	}

	// External successors must all leave from the header (our structured
	// programs have no breaks; the solver checks rather than assumes).
	var exits []int
	for n := range region {
		for _, t := range s.succs[n] {
			if region[t] {
				continue
			}
			if n != head {
				return fmt.Errorf("wcet: loop %d/%s exits from non-header node %d", inst.Orig, inst.Enclosing, n)
			}
			exits = append(exits, t)
		}
	}

	// Create the supernode. Every member's one-time cost (first-miss
	// charges of persistence-classified references) is paid once per
	// region entry, so it folds directly into the supernode's weight.
	nu := len(s.weight)
	b := int64(inst.Bound)
	var regionExtra int64
	for n := range region {
		regionExtra += s.extra[n]
	}
	s.weight = append(s.weight, (b-1)*iterCost+s.weight[head]+regionExtra)
	s.succs = append(s.succs, exits)
	s.alive = append(s.alive, true)
	s.extra = append(s.extra, 0)
	s.key = append(s.key, s.key[head])
	s.supers[nu] = &superNode{inst: inst, headNode: head, iterPath: iterPath, iterCost: iterCost}

	// Redirect external edges into the region (they may only target the
	// header) and retire the region nodes.
	for n := range s.alive[:nu] {
		if !s.alive[n] || region[n] {
			continue
		}
		for i, t := range s.succs[n] {
			if region[t] {
				if t != head {
					return fmt.Errorf("wcet: loop %d/%s entered at non-header node %d", inst.Orig, inst.Enclosing, t)
				}
				s.succs[n][i] = nu
			}
		}
	}
	for n := range region {
		s.alive[n] = false
	}
	for xb := range s.find {
		if region[s.find[xb]] {
			s.find[xb] = nu
		}
	}
	return nil
}

// finish solves the remaining DAG by longest path and reconstructs the
// per-block WCET counts.
func (s *structSolver) finish() ([]int64, int64, error) {
	entry := s.find[s.x.Entry]
	order := make([]int, 0, len(s.weight))
	for n := range s.weight {
		if s.alive[n] {
			order = append(order, n)
		}
	}
	sort.Slice(order, func(i, j int) bool { return s.key[order[i]] < s.key[order[j]] })

	const minusInf = int64(-1) << 62
	best := make([]int64, len(s.weight))
	choice := make([]int, len(s.weight))
	for i := range best {
		best[i] = minusInf
		choice[i] = -1
	}
	// Longest path *to* each node from the entry; process forward, then
	// pick the best sink. (Weights are non-negative, so the longest path
	// always runs entry→sink.)
	best[entry] = s.weight[entry] + s.extra[entry]
	for _, n := range order {
		if best[n] == minusInf {
			continue
		}
		for _, t := range s.succs[n] {
			if v := best[n] + s.weight[t] + s.extra[t]; v > best[t] {
				best[t] = v
				choice[t] = n
			}
		}
	}
	tau := minusInf
	end := -1
	for _, n := range order {
		if len(s.succs[n]) == 0 && best[n] > tau {
			tau = best[n]
			end = n
		}
	}
	if end == -1 {
		return nil, 0, fmt.Errorf("wcet: no reachable sink")
	}

	nw := make([]int64, s.nXB)
	var assign func(node int, mult int64)
	assign = func(node int, mult int64) {
		if sn, ok := s.supers[node]; ok {
			bound := int64(sn.inst.Bound)
			// The header runs once more than the residual iterations (the
			// exit check); every node of the chosen iteration path runs
			// bound-1 times.
			assign(sn.headNode, mult)
			for _, n := range sn.iterPath {
				assign(n, (bound-1)*mult)
			}
			return
		}
		nw[node] += mult
	}
	for n := end; n != -1; n = choice[n] {
		assign(n, 1)
	}
	return nw, tau, nil
}
