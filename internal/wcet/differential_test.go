package wcet_test

import (
	"context"
	"math/rand"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/malardalen"
	"ucp/internal/vivu"
	"ucp/internal/wcet"
)

// These tests pin the core claim of the incremental path: AnalyzeXFrom must
// be bit-identical — classifications, effectiveness, Tw, Cost, Extra, Nw,
// τ_w, misses, fetches — to a from-scratch AnalyzeX after every mutation,
// across a chain of mutations (each incremental result seeds the next).

var diffPrograms = []string{"adpcm", "compress", "crc", "fdct", "statemate"}
var diffConfigs = []int{0, 4, 8, 13, 26, 32}

func compareResults(t *testing.T, where string, inc, full *wcet.Result) {
	t.Helper()
	if inc.TauW != full.TauW {
		t.Fatalf("%s: τ_w incremental %d != full %d", where, inc.TauW, full.TauW)
	}
	if inc.Misses != full.Misses || inc.Fetches != full.Fetches {
		t.Fatalf("%s: misses/fetches incremental %d/%d != full %d/%d",
			where, inc.Misses, inc.Fetches, full.Misses, full.Fetches)
	}
	for id := range full.Nw {
		if inc.Nw[id] != full.Nw[id] {
			t.Fatalf("%s: Nw[%d] incremental %d != full %d", where, id, inc.Nw[id], full.Nw[id])
		}
		if inc.Cost[id] != full.Cost[id] || inc.Extra[id] != full.Extra[id] {
			t.Fatalf("%s: cost/extra[%d] diverge", where, id)
		}
		if len(inc.Tw[id]) != len(full.Tw[id]) {
			t.Fatalf("%s: Tw[%d] length diverges", where, id)
		}
		for i := range full.Tw[id] {
			if inc.Tw[id][i] != full.Tw[id][i] {
				t.Fatalf("%s: Tw[%d][%d] incremental %d != full %d",
					where, id, i, inc.Tw[id][i], full.Tw[id][i])
			}
		}
		for i := range full.AI.Class[id] {
			if inc.AI.Class[id][i] != full.AI.Class[id][i] {
				t.Fatalf("%s: class[%d][%d] incremental %v != full %v",
					where, id, i, inc.AI.Class[id][i], full.AI.Class[id][i])
			}
		}
		for i := range full.AI.Effective[id] {
			if inc.AI.Effective[id][i] != full.AI.Effective[id][i] {
				t.Fatalf("%s: effectiveness[%d][%d] diverges", where, id, i)
			}
		}
		if !inc.AI.In[id].Equal(full.AI.In[id]) {
			t.Fatalf("%s: abstract in-state of block %d diverges", where, id)
		}
	}
}

// randomRef picks an existing instruction of p.
func randomRef(rng *rand.Rand, p *isa.Program) isa.InstrRef {
	b := p.Blocks[rng.Intn(len(p.Blocks))]
	return isa.InstrRef{Block: b.ID, Index: rng.Intn(len(b.Instrs))}
}

// insertAt returns a random legal insertion anchor: any instruction that is
// not the block's last (so a terminator is never displaced), in a block
// with at least two instructions.
func insertAt(rng *rand.Rand, p *isa.Program) (isa.InstrRef, bool) {
	for tries := 0; tries < 32; tries++ {
		b := p.Blocks[rng.Intn(len(p.Blocks))]
		if len(b.Instrs) < 2 {
			continue
		}
		return isa.InstrRef{Block: b.ID, Index: rng.Intn(len(b.Instrs) - 1)}, true
	}
	return isa.InstrRef{}, false
}

// mutate applies one random program edit of the kinds the optimizer
// performs (prefetch insertion/removal) plus pad insertion, which shifts
// addresses and exercises wide dirty regions.
func mutate(rng *rand.Rand, p *isa.Program) bool {
	switch rng.Intn(4) {
	case 0: // remove a random prefetch, if any
		var pfts []isa.InstrRef
		for _, b := range p.Blocks {
			for i, in := range b.Instrs {
				if in.Kind == isa.KindPrefetch {
					pfts = append(pfts, isa.InstrRef{Block: b.ID, Index: i})
				}
			}
		}
		if len(pfts) > 0 {
			p.RemoveInstr(pfts[rng.Intn(len(pfts))])
			return true
		}
		fallthrough
	case 1, 2: // insert a prefetch of a random existing reference
		at, ok := insertAt(rng, p)
		if !ok {
			return false
		}
		p.InsertInstr(at, isa.Instr{Kind: isa.KindPrefetch, Target: randomRef(rng, p)})
		return true
	default: // insert a pad (pure layout shift)
		at, ok := insertAt(rng, p)
		if !ok {
			return false
		}
		p.InsertInstr(at, isa.Instr{Kind: isa.KindPad})
		return true
	}
}

func TestDifferentialIncrementalVsFull(t *testing.T) {
	t.Parallel()
	configs := cache.Table2()
	par := wcet.Params{HitCycles: 1, MissPenalty: 10, Lambda: 10}
	steps := 8
	if testing.Short() {
		steps = 3
	}
	for _, name := range diffPrograms {
		bm, ok := malardalen.ByName(name)
		if !ok {
			t.Fatalf("unknown program %s", name)
		}
		for _, ci := range diffConfigs {
			cfg := configs[ci]
			p := bm.Prog.Clone()
			x, err := vivu.Expand(p)
			if err != nil {
				t.Fatal(err)
			}
			prev, err := wcet.AnalyzeX(context.Background(), x, cfg, par)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(ci)*1009 + int64(len(name))))
			for step := 0; step < steps; step++ {
				if !mutate(rng, p) {
					continue
				}
				inc, err := wcet.AnalyzeXFrom(context.Background(), x, cfg, par, prev)
				if err != nil {
					t.Fatal(err)
				}
				full, err := wcet.AnalyzeX(context.Background(), x, cfg, par)
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, name+"/"+cache.ConfigID(ci), inc, full)
				prev = inc // chain: the next round seeds from the incremental result
			}
		}
	}
}

// TestDifferentialDirtyPropagationFuzz hammers one program×config with many
// random mutations per round (so dirty regions overlap and interact) and
// checks the propagated fixpoint still matches a from-scratch analysis
// exactly.
func TestDifferentialDirtyPropagationFuzz(t *testing.T) {
	t.Parallel()
	cfg := cache.Table2()[8]
	par := wcet.Params{HitCycles: 1, MissPenalty: 10, Lambda: 10}
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for _, name := range []string{"crc", "statemate"} {
		bm, _ := malardalen.ByName(name)
		p := bm.Prog.Clone()
		x, err := vivu.Expand(p)
		if err != nil {
			t.Fatal(err)
		}
		prev, err := wcet.AnalyzeX(context.Background(), x, cfg, par)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for round := 0; round < rounds; round++ {
			for k := 0; k < 1+rng.Intn(4); k++ {
				mutate(rng, p)
			}
			inc, err := wcet.AnalyzeXFrom(context.Background(), x, cfg, par, prev)
			if err != nil {
				t.Fatal(err)
			}
			full, err := wcet.AnalyzeX(context.Background(), x, cfg, par)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, name, inc, full)
			prev = inc
		}
	}
}
