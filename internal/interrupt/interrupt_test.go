package interrupt

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCauseLiveContext(t *testing.T) {
	if err := Cause(context.Background()); err != nil {
		t.Fatalf("Cause(live ctx) = %v, want nil", err)
	}
}

func TestCauseCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Cause(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, must also wrap context.Canceled", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, must not match ErrDeadline", err)
	}
}

func TestCauseDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := Cause(ctx)
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, must also wrap context.DeadlineExceeded", err)
	}
}

func TestWrapIdempotentAndPassthrough(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	typed := Cause(ctx)
	if got := Wrap(typed); got != typed {
		t.Errorf("Wrap(typed) rewrapped: %v", got)
	}
	plain := errors.New("boom")
	if got := Wrap(plain); got != plain {
		t.Errorf("Wrap(plain) = %v, want passthrough", got)
	}
	if Wrap(nil) != nil {
		t.Error("Wrap(nil) != nil")
	}
}

func TestIs(t *testing.T) {
	if Is(errors.New("boom")) {
		t.Error("Is(plain error) = true")
	}
	if !Is(context.DeadlineExceeded) || !Is(context.Canceled) {
		t.Error("Is must accept raw context errors")
	}
	if !Is(ErrCanceled) || !Is(ErrDeadline) {
		t.Error("Is must accept the typed sentinels")
	}
}

func TestCheckerTripsAndLatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	chk := NewChecker(ctx, 4)
	for i := 0; i < 16; i++ {
		if err := chk.Check(); err != nil {
			t.Fatalf("Check() = %v before cancellation", err)
		}
	}
	cancel()
	// Within one interval the checker must observe the cancellation.
	var err error
	for i := 0; i < 4 && err == nil; i++ {
		err = chk.Check()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check() after cancel = %v, want ErrCanceled", err)
	}
	if got := chk.Check(); !errors.Is(got, ErrCanceled) {
		t.Fatalf("Check() must latch: got %v", got)
	}
}
