// Package interrupt is the shared vocabulary of cooperative cancellation
// across the analysis stack: typed errors distinguishing "the caller gave
// up" from "the deadline passed", a cheap amortized context checker for
// tight fixpoint loops, and helpers for classifying errors that crossed
// several layers (solver → optimizer → sweep → service).
//
// Every long-running loop in this repository (the absint fixpoint, the
// optimizer's validate-and-commit passes, the sweep's cells) polls a
// Checker; on cancellation it unwinds with an error that wraps both the
// typed sentinel (ErrCanceled / ErrDeadline) and the underlying context
// error, so callers can match either with errors.Is.
package interrupt

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled reports that an analysis was stopped because its context was
// canceled (client disconnect, shutdown, sibling failure).
var ErrCanceled = errors.New("analysis canceled")

// ErrDeadline reports that an analysis was stopped because its context's
// deadline passed (request timeout, job timeout).
var ErrDeadline = errors.New("analysis deadline exceeded")

// Cause returns nil while ctx is live, and otherwise a typed error that
// wraps both the matching sentinel and the context's cause, so both
// errors.Is(err, ErrDeadline) and errors.Is(err, context.DeadlineExceeded)
// hold.
func Cause(ctx context.Context) error {
	if ctx.Err() == nil {
		return nil
	}
	return Wrap(context.Cause(ctx))
}

// Wrap lifts a raw context error into the typed form; errors that are
// neither canceled nor deadline-related (or already typed) pass through.
func Wrap(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline):
		return err
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	default:
		return err
	}
}

// Is reports whether err is (or wraps) either interruption sentinel — the
// test callers use to tell "stop everything" from "this cell failed".
func Is(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Checker amortizes context polling for tight loops: Check is a counter
// increment on most calls and consults the context only once per interval.
// Once tripped it keeps returning the same error. A Checker is owned by a
// single goroutine (the analyses that embed one are sequential).
type Checker struct {
	ctx      context.Context
	interval uint32
	n        uint32
	err      error
}

// NewChecker returns a Checker polling ctx every interval Check calls
// (non-positive intervals poll on every call).
func NewChecker(ctx context.Context, interval int) *Checker {
	if interval <= 0 {
		interval = 1
	}
	return &Checker{ctx: ctx, interval: uint32(interval)}
}

// Check returns a typed cancellation error once the context is done.
func (c *Checker) Check() error {
	if c.err != nil {
		return c.err
	}
	c.n++
	if c.n%c.interval != 0 {
		return nil
	}
	c.err = Cause(c.ctx)
	return c.err
}
