// Package ipet builds the Implicit Path Enumeration Technique formulation of
// WCET analysis (Section 3.2–3.3 of the paper) over the VIVU-expanded graph:
// an integer linear program whose variables are edge execution counts, whose
// constraints encode flow conservation and the loop bounds, and whose
// objective maximizes the memory contribution Σ t_w(bb)·n_bb. The program is
// solved by the from-scratch solver in internal/ilp.
//
// The fast structural solver in internal/wcet computes the same optimum for
// the reducible graphs our builder produces; this package is the reference
// implementation the structural solver is validated against.
package ipet

import (
	"context"
	"fmt"
	"math"

	"ucp/internal/ilp"
	"ucp/internal/obs"
	"ucp/internal/vivu"
)

// Formulation is an IPET instance for one expanded program.
type Formulation struct {
	X *vivu.Prog
	// Cost[xb] is the WCET-scenario time contribution of one execution of
	// expanded block xb (the t_w(bb) of Equation 1).
	Cost []int64

	prob *ilp.Problem
	// edgeVar[from] aligns with X.Blocks[from].Succs.
	edgeVar  [][]int
	entryVar int
	exitVars []int
	nVars    int
}

// Build constructs the ILP for the expanded program x with the given
// per-block costs.
func Build(x *vivu.Prog, cost []int64) (*Formulation, error) {
	return BuildExtra(x, cost, nil)
}

// BuildExtra additionally accepts per-block one-time costs charged once per
// entry of the residual loop region containing the block — the encoding of
// first-miss (persistence) classifications. The charge attaches to the
// region's entry flow: the non-back edges into its HeadRest block.
func BuildExtra(x *vivu.Prog, cost, extra []int64) (*Formulation, error) {
	if len(cost) != len(x.Blocks) {
		return nil, fmt.Errorf("ipet: cost vector length %d != %d blocks", len(cost), len(x.Blocks))
	}
	if extra != nil && len(extra) != len(x.Blocks) {
		return nil, fmt.Errorf("ipet: extra vector length %d != %d blocks", len(extra), len(x.Blocks))
	}
	f := &Formulation{X: x, Cost: cost}

	// Allocate one variable per edge, plus a virtual entry edge and one
	// virtual exit edge per sink block.
	f.edgeVar = make([][]int, len(x.Blocks))
	n := 0
	for _, xb := range x.Blocks {
		vars := make([]int, len(xb.Succs))
		for i := range xb.Succs {
			vars[i] = n
			n++
		}
		f.edgeVar[xb.ID] = vars
	}
	f.entryVar = n
	n++
	for _, xb := range x.Blocks {
		if len(xb.Succs) == 0 {
			f.exitVars = append(f.exitVars, n)
			n++
		}
	}
	f.nVars = n

	prob := ilp.NewProblem(n)
	// Objective: Σ cost(b) · n_b, with n_b expressed as the inflow of b.
	inflow := make([]map[int]float64, len(x.Blocks))
	for id := range inflow {
		inflow[id] = map[int]float64{}
	}
	for _, xb := range x.Blocks {
		for i, e := range xb.Succs {
			inflow[e.To][f.edgeVar[xb.ID][i]] = 1
		}
	}
	inflow[x.Entry][f.entryVar] = 1
	for id, terms := range inflow {
		for v, c := range terms {
			prob.Objective[v] += float64(cost[id]) * c
		}
	}

	// Flow conservation: inflow(b) = outflow(b) for every block.
	exitIdx := 0
	for _, xb := range x.Blocks {
		coeffs := map[int]float64{}
		for v, c := range inflow[xb.ID] {
			coeffs[v] += c
		}
		if len(xb.Succs) == 0 {
			coeffs[f.exitVars[exitIdx]] -= 1
			exitIdx++
		}
		for i := range xb.Succs {
			coeffs[f.edgeVar[xb.ID][i]] -= 1
		}
		prob.Eq(coeffs, 0, fmt.Sprintf("flow@%d", xb.ID))
	}

	// The program executes exactly once.
	prob.Eq(map[int]float64{f.entryVar: 1}, 1, "entry")

	// Per-entry one-time charges (first-miss classifications): each
	// residual region's aggregate extra rides on its entry flow.
	if extra != nil {
		for _, inst := range x.Loops {
			if inst.HeadRest == -1 {
				continue
			}
			var regionExtra float64
			for _, xb := range x.RegionMembers(inst) {
				// Attribute each block's charge to its *innermost* region
				// only; enclosing regions would double-count it (their
				// entries subsume the inner entries).
				if len(x.Blocks[xb].Ctx) == len(inst.Enclosing)+1 {
					regionExtra += float64(extra[xb])
				}
			}
			if regionExtra == 0 {
				continue
			}
			for _, p := range x.Blocks[inst.HeadRest].Preds {
				pb := x.Blocks[p]
				for i, e := range pb.Succs {
					if e.To == inst.HeadRest && !e.Back {
						prob.Objective[f.edgeVar[p][i]] += regionExtra
					}
				}
			}
		}
	}

	// Loop bounds: the residual back-edge flow into HeadRest is at most
	// (bound−1) times the flow entering HeadFirst, and the F→R entry flow
	// into HeadRest is also at most the HeadFirst entries (the body runs at
	// most once in its first-iteration context per loop entry).
	for _, inst := range x.Loops {
		headEntry := map[int]float64{}
		for _, p := range x.Blocks[inst.HeadFirst].Preds {
			pb := x.Blocks[p]
			for i, e := range pb.Succs {
				if e.To == inst.HeadFirst {
					headEntry[f.edgeVar[p][i]] = 1
				}
			}
		}
		if inst.HeadFirst == x.Entry {
			headEntry[f.entryVar] = 1
		}
		if inst.HeadRest == -1 {
			continue
		}
		backIn := map[int]float64{}
		for _, p := range x.Blocks[inst.HeadRest].Preds {
			pb := x.Blocks[p]
			for i, e := range pb.Succs {
				if e.To != inst.HeadRest {
					continue
				}
				if e.Back {
					backIn[f.edgeVar[p][i]] += 1
				}
			}
		}
		coeffs := map[int]float64{}
		for v, c := range backIn {
			coeffs[v] += c
		}
		for v, c := range headEntry {
			coeffs[v] -= float64(inst.Bound-1) * c
		}
		prob.Le(coeffs, 0, fmt.Sprintf("bound@loop%d/%s", inst.Orig, inst.Enclosing))
	}

	f.prob = prob
	return f, nil
}

// Result is the solved WCET scenario.
type Result struct {
	// TauW is the memory contribution to the WCET (Equation 3).
	TauW int64
	// N[xb] is the execution count n_w of expanded block xb in the WCET
	// scenario (Section 3.3).
	N []int64
}

// SolveCtx is Solve with an "ipet.solve" span recording the instance size
// and the optimum.
func (f *Formulation) SolveCtx(ctx context.Context) (*Result, error) {
	_, sp := obs.Start(ctx, "ipet.solve")
	res, err := f.Solve()
	if sp != nil && err == nil {
		sp.Attr("blocks", len(f.X.Blocks))
		sp.Attr("tau_w", res.TauW)
	}
	sp.End()
	return res, err
}

// Solve optimizes the formulation. The LP relaxation of an IPET instance on
// these network-like matrices is integral in practice; Solve rounds the
// solution and verifies integrality.
func (f *Formulation) Solve() (*Result, error) {
	sol, err := f.prob.SolveLP()
	if err != nil {
		return nil, fmt.Errorf("ipet: %w", err)
	}
	counts := make([]int64, len(f.X.Blocks))
	for _, xb := range f.X.Blocks {
		acc := 0.0
		for _, p := range xb.Preds {
			pb := f.X.Blocks[p]
			for i, e := range pb.Succs {
				if e.To == xb.ID {
					acc += sol.X[f.edgeVar[p][i]]
				}
			}
		}
		if xb.ID == f.X.Entry {
			acc += sol.X[f.entryVar]
		}
		counts[xb.ID] = int64(acc + 0.5)
		if diff := acc - float64(counts[xb.ID]); diff > 1e-4 || diff < -1e-4 {
			return nil, fmt.Errorf("ipet: non-integral count %g for block %d", acc, xb.ID)
		}
	}
	// The objective carries the per-block costs and the per-entry
	// first-miss charges, so the optimum itself is τ_w.
	tau := int64(math.Round(sol.Objective))
	return &Result{TauW: tau, N: counts}, nil
}
