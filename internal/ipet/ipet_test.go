package ipet

import (
	"testing"

	"ucp/internal/isa"
	"ucp/internal/vivu"
)

func expand(t *testing.T, p *isa.Program) *vivu.Prog {
	t.Helper()
	x, err := vivu.Expand(p)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func unitCosts(x *vivu.Prog) []int64 {
	cost := make([]int64, len(x.Blocks))
	for _, xb := range x.Blocks {
		cost[xb.ID] = int64(len(x.Prog.Blocks[xb.Orig].Instrs))
	}
	return cost
}

func solve(t *testing.T, x *vivu.Prog, cost []int64) *Result {
	t.Helper()
	f, err := Build(x, cost)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStraightLine(t *testing.T) {
	p := isa.Build("s", isa.Code(10))
	x := expand(t, p)
	r := solve(t, x, unitCosts(x))
	if r.TauW != int64(p.NInstr()) {
		t.Fatalf("TauW = %d, want %d", r.TauW, p.NInstr())
	}
	if r.N[x.Entry] != 1 {
		t.Fatalf("entry count = %d", r.N[x.Entry])
	}
}

func TestDiamondPicksLongArm(t *testing.T) {
	p := isa.Build("d", isa.If(0.5, isa.S(isa.Code(30)), isa.S(isa.Code(5))))
	x := expand(t, p)
	r := solve(t, x, unitCosts(x))
	// Entry (1+1 branch) + long arm (30+1 jump) + join (1 epilogue).
	want := int64(2 + 31 + 1)
	if r.TauW != want {
		t.Fatalf("TauW = %d, want %d", r.TauW, want)
	}
}

func TestLoopBound(t *testing.T) {
	p := isa.Build("l", isa.Loop(7, 4, isa.Code(3)))
	x := expand(t, p)
	r := solve(t, x, unitCosts(x))
	// prologue+jump (2) + head (2 × 8 executions) + body (4 × 7) + epilogue (1).
	want := int64(2 + 2*8 + 4*7 + 1)
	if r.TauW != want {
		t.Fatalf("TauW = %d, want %d", r.TauW, want)
	}
	// Header R context executes bound times.
	head := p.Loops[0].Head
	if n := r.N[x.Lookup(head, "R")]; n != 7 {
		t.Fatalf("headR count = %d, want 7", n)
	}
}

func TestNestedLoopProduct(t *testing.T) {
	p := isa.Build("n", isa.Loop(4, 2, isa.Loop(5, 2, isa.Code(2))))
	x := expand(t, p)
	r := solve(t, x, unitCosts(x))
	// The inner body must run 4 × 5 = 20 times across its four contexts.
	inner := p.Loops[1]
	var bodyTotal int64
	for _, xb := range x.Blocks {
		if xb.Orig != inner.Head && contains(inner.Blocks, xb.Orig) && xb.Orig != p.Loops[0].Head {
			// body blocks of the inner loop
			if len(p.Blocks[xb.Orig].Instrs) == 3 { // 2 + jump
				bodyTotal += r.N[xb.ID]
			}
		}
	}
	if bodyTotal != 20 {
		t.Fatalf("inner body executions = %d, want 20", bodyTotal)
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestFlowConservation(t *testing.T) {
	p := isa.Build("fc", isa.Loop(6, 3, isa.IfThen(0.5, isa.Code(4)), isa.Code(2)), isa.Code(3))
	x := expand(t, p)
	r := solve(t, x, unitCosts(x))
	// Sink executes exactly once; every count non-negative.
	for _, xb := range x.Blocks {
		if r.N[xb.ID] < 0 {
			t.Fatalf("negative count at block %d", xb.ID)
		}
		if len(xb.Succs) == 0 && r.N[xb.ID] != 1 {
			t.Fatalf("sink executes %d times", r.N[xb.ID])
		}
	}
}

func TestBuildRejectsBadCostVector(t *testing.T) {
	p := isa.Build("bad", isa.Code(3))
	x := expand(t, p)
	if _, err := Build(x, []int64{1, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Fatal("expected cost-length error")
	}
}
