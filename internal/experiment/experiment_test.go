package experiment

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"ucp/internal/energy"
	"ucp/internal/malardalen"
)

func smallSweep(t *testing.T) *Suite {
	t.Helper()
	s, err := Run(Options{
		Programs:         []string{"fdct", "crc", "minmax"},
		Configs:          []int{0, 13, 32}, // 256B, 1KB, 8KB samples
		Techs:            []energy.Tech{energy.Tech45},
		Runs:             1,
		ValidationBudget: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepShape(t *testing.T) {
	s := smallSweep(t)
	if len(s.Cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(s.Cells))
	}
	for _, c := range s.Cells {
		if c.TauOrig <= 0 || c.ACETOrig <= 0 || c.EnergyOrig <= 0 {
			t.Fatalf("%s/%s: degenerate originals: %+v", c.Program, c.ConfigID, c)
		}
		// Theorem 1 and the guards: nothing may regress.
		if c.TauOpt > c.TauOrig {
			t.Fatalf("%s/%s: WCET regressed", c.Program, c.ConfigID)
		}
		if c.ACETOpt > c.ACETOrig*1.003 {
			t.Fatalf("%s/%s: ACET regressed: %.1f -> %.1f", c.Program, c.ConfigID, c.ACETOrig, c.ACETOpt)
		}
		if c.EnergyOpt > c.EnergyOrig*1.003 {
			t.Fatalf("%s/%s: energy regressed", c.Program, c.ConfigID)
		}
	}
}

func TestFigureRenderers(t *testing.T) {
	s := smallSweep(t)
	var buf bytes.Buffer
	s.Headline(&buf)
	s.Figure3(&buf)
	s.Figure4(&buf)
	s.Figure5(&buf)
	s.Figure7(&buf)
	s.Figure8(&buf)
	out := buf.String()
	for _, want := range []string{
		"overall average improvement",
		"Figure 3", "Figure 4", "Figure 5", "Figure 7", "Figure 8",
		"256B", "8192B", "regressed: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figures missing %q", want)
		}
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"adpcm", "p37", "(1,16,256)", "k36"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

func TestRunCellReducedCaches(t *testing.T) {
	b, _ := malardalen.ByName("crc")
	cell, err := RunCell(context.Background(), b, 13, energy.Tech45, Options{Runs: 1, ValidationBudget: 20}) // k14 = (2,16,1024)
	if err != nil {
		t.Fatal(err)
	}
	if !cell.HasHalf || !cell.HasQuarter {
		t.Fatalf("1KB cell must have half and quarter runs: %+v", cell)
	}
	if cell.ACETHalf < cell.ACETOpt {
		t.Error("halving the cache should not speed the program up")
	}
	// k1 = (1,16,256): quarter = 64B, valid for assoc 1.
	cellSmall, err := RunCell(context.Background(), b, 0, energy.Tech45, Options{Runs: 1, ValidationBudget: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !cellSmall.HasHalf {
		t.Error("256B direct-mapped cell should allow a 128B half-size run")
	}
}

// TestParallelSweepDeterministic checks the acceptance property of the
// worker pool: a parallel sweep must produce byte-identical CSV output to
// the serial run, whatever the completion order.
func TestParallelSweepDeterministic(t *testing.T) {
	opts := Options{
		Programs:         []string{"fibcall", "fac", "bs"},
		Configs:          []int{0, 13},
		Techs:            []energy.Tech{energy.Tech45},
		Runs:             1,
		ValidationBudget: 20,
	}
	serial := opts
	serial.Workers = 1
	parallel := opts
	parallel.Workers = 8

	s1, err := Sweep(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := Sweep(context.Background(), parallel)
	if err != nil {
		t.Fatal(err)
	}

	var b1, b8 bytes.Buffer
	if err := s1.WriteCSV(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s8.WriteCSV(&b8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Fatalf("parallel CSV differs from serial:\nserial:\n%s\nparallel:\n%s", b1.String(), b8.String())
	}

	var f1, f8 bytes.Buffer
	if err := s1.Headline(&f1); err != nil {
		t.Fatal(err)
	}
	if err := s8.Headline(&f8); err != nil {
		t.Fatal(err)
	}
	if f1.String() != f8.String() {
		t.Fatal("parallel headline differs from serial")
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, Options{
		Programs: []string{"fibcall"},
		Configs:  []int{0},
		Techs:    []energy.Tech{energy.Tech45},
		Runs:     1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// brokenWriter fails after the first n bytes, as a full disk would.
type brokenWriter struct {
	n   int
	err error
}

func (b *brokenWriter) Write(p []byte) (int, error) {
	if len(p) <= b.n {
		b.n -= len(p)
		return len(p), nil
	}
	n := b.n
	b.n = 0
	return n, b.err
}

// TestRenderersPropagateWriterErrors checks that figure, table, and CSV
// rendering surface I/O failures instead of dropping them.
func TestRenderersPropagateWriterErrors(t *testing.T) {
	s := smallSweep(t)
	sentinel := errors.New("disk full")
	renderers := map[string]func(io.Writer) error{
		"Headline": s.Headline,
		"Figure3":  s.Figure3,
		"Figure4":  s.Figure4,
		"Figure5":  s.Figure5,
		"Figure7":  s.Figure7,
		"Figure8":  s.Figure8,
		"Table1":   Table1,
		"Table2":   Table2,
		"WriteCSV": s.WriteCSV,
	}
	for name, render := range renderers {
		if err := render(&brokenWriter{n: 10, err: sentinel}); !errors.Is(err, sentinel) {
			t.Errorf("%s: err = %v, want sentinel", name, err)
		}
		var ok bytes.Buffer
		if err := render(&ok); err != nil {
			t.Errorf("%s: err on healthy writer: %v", name, err)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	s := smallSweep(t)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(s.Cells)+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines), len(s.Cells)+1)
	}
	if !strings.HasPrefix(lines[0], "program,config,assoc") {
		t.Fatalf("csv header: %s", lines[0])
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != strings.Count(lines[0], ",") {
			t.Fatalf("ragged csv row: %s", line)
		}
	}
}

// TestOnCellHook: every completed cell fires OnCell exactly once with the
// index its result lands at, including under concurrent workers.
func TestOnCellHook(t *testing.T) {
	seen := map[int]Cell{}
	s, err := Run(Options{
		Programs:         []string{"fibcall", "fac"},
		Configs:          []int{0, 13},
		Techs:            []energy.Tech{energy.Tech45},
		Runs:             1,
		ValidationBudget: 20,
		SkipReduced:      true,
		Workers:          4,
		OnCell: func(i int, c Cell) {
			if _, dup := seen[i]; dup {
				t.Errorf("OnCell fired twice for index %d", i)
			}
			seen[i] = c
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(s.Cells) {
		t.Fatalf("OnCell fired %d times, want %d", len(seen), len(s.Cells))
	}
	for i, c := range seen {
		got := s.Cells[i]
		if got.Program != c.Program || got.ConfigID != c.ConfigID || got.TauOpt != c.TauOpt {
			t.Errorf("OnCell index %d carried a different cell than the suite", i)
		}
	}
}
