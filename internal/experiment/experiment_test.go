package experiment

import (
	"bytes"
	"strings"
	"testing"

	"ucp/internal/energy"
	"ucp/internal/malardalen"
)

func smallSweep(t *testing.T) *Suite {
	t.Helper()
	s, err := Run(Options{
		Programs:         []string{"fdct", "crc", "minmax"},
		Configs:          []int{0, 13, 32}, // 256B, 1KB, 8KB samples
		Techs:            []energy.Tech{energy.Tech45},
		Runs:             1,
		ValidationBudget: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepShape(t *testing.T) {
	s := smallSweep(t)
	if len(s.Cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(s.Cells))
	}
	for _, c := range s.Cells {
		if c.TauOrig <= 0 || c.ACETOrig <= 0 || c.EnergyOrig <= 0 {
			t.Fatalf("%s/%s: degenerate originals: %+v", c.Program, c.ConfigID, c)
		}
		// Theorem 1 and the guards: nothing may regress.
		if c.TauOpt > c.TauOrig {
			t.Fatalf("%s/%s: WCET regressed", c.Program, c.ConfigID)
		}
		if c.ACETOpt > c.ACETOrig*1.003 {
			t.Fatalf("%s/%s: ACET regressed: %.1f -> %.1f", c.Program, c.ConfigID, c.ACETOrig, c.ACETOpt)
		}
		if c.EnergyOpt > c.EnergyOrig*1.003 {
			t.Fatalf("%s/%s: energy regressed", c.Program, c.ConfigID)
		}
	}
}

func TestFigureRenderers(t *testing.T) {
	s := smallSweep(t)
	var buf bytes.Buffer
	s.Headline(&buf)
	s.Figure3(&buf)
	s.Figure4(&buf)
	s.Figure5(&buf)
	s.Figure7(&buf)
	s.Figure8(&buf)
	out := buf.String()
	for _, want := range []string{
		"overall average improvement",
		"Figure 3", "Figure 4", "Figure 5", "Figure 7", "Figure 8",
		"256B", "8192B", "regressed: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figures missing %q", want)
		}
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"adpcm", "p37", "(1,16,256)", "k36"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

func TestRunCellReducedCaches(t *testing.T) {
	b, _ := malardalen.ByName("crc")
	cell, err := RunCell(b, 13, energy.Tech45, Options{Runs: 1, ValidationBudget: 20}) // k14 = (2,16,1024)
	if err != nil {
		t.Fatal(err)
	}
	if !cell.HasHalf || !cell.HasQuarter {
		t.Fatalf("1KB cell must have half and quarter runs: %+v", cell)
	}
	if cell.ACETHalf < cell.ACETOpt {
		t.Error("halving the cache should not speed the program up")
	}
	// k1 = (1,16,256): quarter = 64B, valid for assoc 1.
	cellSmall, err := RunCell(b, 0, energy.Tech45, Options{Runs: 1, ValidationBudget: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !cellSmall.HasHalf {
		t.Error("256B direct-mapped cell should allow a 128B half-size run")
	}
}

func TestWriteCSV(t *testing.T) {
	s := smallSweep(t)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(s.Cells)+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines), len(s.Cells)+1)
	}
	if !strings.HasPrefix(lines[0], "program,config,assoc") {
		t.Fatalf("csv header: %s", lines[0])
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != strings.Count(lines[0], ",") {
			t.Fatalf("ragged csv row: %s", line)
		}
	}
}
