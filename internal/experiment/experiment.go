// Package experiment reproduces the paper's evaluation (Section 5 and
// Supplement S.5): it sweeps the 37 benchmark programs over the 36 cache
// configurations of Table 2 and the two process technologies, optimizes
// every use case, measures WCET, ACET, miss rate, executed instructions and
// energy, and renders the series behind Figures 3, 4, 5, 7 and 8 as well as
// Tables 1 and 2.
package experiment

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"ucp/internal/cache"
	"ucp/internal/core"
	"ucp/internal/energy"
	"ucp/internal/faults"
	"ucp/internal/interrupt"
	"ucp/internal/isa"
	"ucp/internal/malardalen"
	"ucp/internal/obs"
	"ucp/internal/pool"
	"ucp/internal/sim"
)

// Cell is the measurement of one use case (program × configuration ×
// technology), the unit behind every figure.
type Cell struct {
	Program  string
	ConfigID string
	Cfg      cache.Config
	// L2Cfg is the second level of the swept hierarchy; the zero value
	// means the cell ran the paper's single-level model.
	L2Cfg cache.Config
	Tech  energy.Tech

	Inserted int
	// InsertedL2 counts the prefetch-into-L2 instructions among Inserted.
	InsertedL2  int
	Validations int
	// Cond3Reverted records that the optimized binary was discarded
	// because its simulated ACET regressed (Condition 3 guard).
	Cond3Reverted bool
	// Decisions is the optimizer's explain report (Options.Explain): one
	// entry per prefetch candidate, inserted and rejected alike.
	Decisions []core.Decision `json:",omitempty"`

	TauOrig, TauOpt         int64
	MissWOrig, MissWOpt     int64
	L2MissWOrig, L2MissWOpt int64

	ACETOrig, ACETOpt             float64
	MissRateOrig, MissRateOpt     float64
	L2MissRateOrig, L2MissRateOpt float64
	EnergyOrig, EnergyOpt         float64 // total memory energy, pJ
	DynOrig, DynOpt               float64
	StaticOrig, StaticOpt         float64
	FetchesOrig, FetchesOpt       float64

	// Reduced-capacity runs of the optimized binary (Figure 5); valid only
	// when the halved/quartered configuration exists.
	HasHalf                    bool
	TauHalf                    int64
	ACETHalf, EnergyHalf       float64
	HasQuarter                 bool
	TauQuarter                 int64
	ACETQuarter, EnergyQuarter float64
}

// HasL2 reports whether the cell measured a two-level hierarchy.
func (c Cell) HasL2() bool { return c.L2Cfg != (cache.Config{}) }

// CellExec executes one cell of the sweep matrix; its signature matches
// RunCell, the local implementation. It is the remote-execution seam: a
// distributed coordinator (internal/dist) satisfies it by shipping the
// cell to a worker replica over HTTP, and the analysis service satisfies
// it per-configuration, so every consumer of the sweep engine — figures,
// CSV, the batch API — is transparently local or distributed.
type CellExec func(ctx context.Context, b malardalen.Benchmark, cfgIdx int, tech energy.Tech, o Options) (Cell, error)

// Options configures a sweep.
type Options struct {
	// Programs restricts the benchmark set (nil = all 37).
	Programs []string
	// Configs restricts the Table 2 indices (nil = all 36).
	Configs []int
	// Techs restricts the technology nodes (nil = both).
	Techs []energy.Tech
	// Policy selects the cache replacement policy applied to every swept
	// configuration (zero value = LRU, the paper's model).
	Policy cache.Policy
	// L2 backs every swept Table 2 configuration (the L1) with this second
	// cache level. The zero value keeps the paper's single-level model.
	L2 cache.Config
	// L2s sweeps the hierarchy axis: the whole matrix runs once per entry
	// (a zero entry means single-level). When set it overrides L2. The
	// axis nests innermost, so the (program, config, technology) output
	// order of single-level sweeps is unchanged.
	L2s []cache.Config
	// Runs is the number of average-case executions per measurement
	// (default 3).
	Runs int
	// ValidationBudget caps the optimizer's re-analyses per cell
	// (0 = optimizer default).
	ValidationBudget int
	// Workers is the number of cells analyzed concurrently
	// (0 = GOMAXPROCS, 1 = serial). Whatever the completion order, the
	// resulting Suite lists cells in deterministic (program, config,
	// technology) order, so rendered figures and CSV output are
	// byte-stable across worker counts.
	Workers int
	// SkipReduced skips the half/quarter-capacity re-optimization runs
	// (Figure 5); the analysis service sets this because its results do
	// not include the reduced-capacity series.
	SkipReduced bool
	// Progress, when non-nil, receives one line per completed cell (in
	// completion order when Workers > 1).
	Progress io.Writer
	// Explain forwards core.Options.Explain: every cell's optimization
	// records its per-prefetch decision log into Cell.Decisions.
	Explain bool
	// Exec replaces local cell execution (nil = RunCell in this process).
	// The sweep's determinism does not depend on where cells run: results
	// land by index, so a distributed sweep renders byte-identical output.
	Exec CellExec `json:"-"`
	// OnCell, when non-nil, is invoked once per completed cell with its
	// matrix index and result, in completion order (concurrent workers
	// serialize through the progress mutex, so implementations need no
	// locking of their own). It is the durability seam: a caller
	// journaling sweep progress hooks here without owning the pool loop.
	OnCell func(index int, c Cell) `json:"-"`
}

// Suite is a completed sweep.
type Suite struct {
	Cells []Cell
}

// Run executes the sweep. It is Sweep with a background context.
func Run(o Options) (*Suite, error) {
	return Sweep(context.Background(), o)
}

// unit is one (program, configuration, technology) cell of the sweep
// matrix, in its deterministic output position.
type unit struct {
	b    malardalen.Benchmark
	ci   int
	tech energy.Tech
	l2   cache.Config
}

// units expands the options into the deterministic cell list.
func units(o Options) []unit {
	benches := malardalen.All()
	if o.Programs != nil {
		want := map[string]bool{}
		for _, p := range o.Programs {
			want[p] = true
		}
		var filtered []malardalen.Benchmark
		for _, b := range benches {
			if want[b.Name] {
				filtered = append(filtered, b)
			}
		}
		benches = filtered
	}
	cfgIdxs := o.Configs
	if cfgIdxs == nil {
		for i := range cache.Table2() {
			cfgIdxs = append(cfgIdxs, i)
		}
	}
	techs := o.Techs
	if techs == nil {
		techs = energy.Techs()
	}
	l2s := o.L2s
	if l2s == nil {
		l2s = []cache.Config{o.L2}
	}
	var out []unit
	for _, b := range benches {
		for _, ci := range cfgIdxs {
			for _, tech := range techs {
				for _, l2 := range l2s {
					out = append(out, unit{b: b, ci: ci, tech: tech, l2: l2})
				}
			}
		}
	}
	return out
}

// Sweep executes the evaluation matrix, analyzing up to Options.Workers
// cells concurrently through a bounded worker pool. Cancelling ctx stops
// new cells from starting and aborts cells already in flight — every cell
// analysis polls the context cooperatively — and returns a typed interrupt
// error. The returned Suite lists cells in (program, config, technology)
// order regardless of completion order.
func Sweep(ctx context.Context, o Options) (*Suite, error) {
	if o.Runs <= 0 {
		o.Runs = 3
	}
	us := units(o)
	ctx, span := obs.Start(ctx, "experiment.sweep")
	span.Attr("cells", len(us))
	defer span.End()
	cells := make([]Cell, len(us))
	var progressMu sync.Mutex
	exec := o.Exec
	if exec == nil {
		exec = RunCell
	}
	p := pool.New(o.Workers)
	err := p.ForEach(ctx, len(us), func(ctx context.Context, i int) error {
		u := us[i]
		// The hierarchy axis rides in the options so the CellExec seam —
		// and every remote implementation behind it — stays unchanged.
		uo := o
		uo.L2, uo.L2s = u.l2, nil
		cell, err := exec(ctx, u.b, u.ci, u.tech, uo)
		if err != nil {
			return fmt.Errorf("experiment: %s/%s/%v: %w", u.b.Name, cache.ConfigID(u.ci), u.tech, err)
		}
		cells[i] = cell
		if o.OnCell != nil {
			progressMu.Lock()
			o.OnCell(i, cell)
			progressMu.Unlock()
		}
		if o.Progress != nil {
			progressMu.Lock()
			fmt.Fprintf(o.Progress, "%-14s %-4s %-4s ins=%-3d τ %.3f  acet %.3f  energy %.3f\n",
				cell.Program, cell.ConfigID, cell.Tech, cell.Inserted,
				ratio(float64(cell.TauOpt), float64(cell.TauOrig)),
				ratio(cell.ACETOpt, cell.ACETOrig),
				ratio(cell.EnergyOpt, cell.EnergyOrig))
			progressMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Suite{Cells: cells}, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

// RunCell measures one use case. The analysis is cooperatively cancellable
// through ctx; an interrupted cell returns a typed interrupt error and no
// measurements.
func RunCell(ctx context.Context, b malardalen.Benchmark, cfgIdx int, tech energy.Tech, o Options) (Cell, error) {
	cfg := cache.Table2()[cfgIdx]
	cfg.Policy = o.Policy
	if err := cfg.Valid(); err != nil {
		return Cell{}, err
	}
	h := cache.Hier1(cfg)
	if o.L2 != (cache.Config{}) {
		h.L2 = o.L2
	}
	if err := h.Valid(); err != nil {
		return Cell{}, err
	}
	if err := faults.Fire(ctx, "experiment.cell", fmt.Sprintf("%s/%s/%v", b.Name, cache.ConfigID(cfgIdx), tech)); err != nil {
		return Cell{}, err
	}
	ctx, span := obs.Start(ctx, "experiment.cell")
	if span != nil {
		span.Attr("program", b.Name)
		span.Attr("config", cache.ConfigID(cfgIdx))
		span.Attr("tech", tech.String())
		span.Attr("policy", cfg.Policy.String())
		if h.HasL2() {
			span.Attr("l2", h.L2.String())
		}
	}
	defer span.End()
	mdl := energy.NewModelHier(h, tech)
	par := mdl.WCETParams()

	cell := Cell{
		Program:  b.Name,
		ConfigID: cache.ConfigID(cfgIdx),
		Cfg:      cfg,
		L2Cfg:    h.L2,
		Tech:     tech,
	}

	phase := time.Now()
	opt, rep, err := core.OptimizeHier(ctx, b.Prog, h, core.Options{Par: par, ValidationBudget: o.ValidationBudget, Explain: o.Explain})
	phaseSeconds.With("optimize").Observe(time.Since(phase).Seconds())
	if err != nil {
		return cell, err
	}
	cell.Inserted = rep.Inserted
	cell.InsertedL2 = countL2Prefetches(opt)
	cell.Validations = rep.Validations
	cell.Decisions = rep.Decisions
	cell.TauOrig, cell.TauOpt = rep.TauBefore, rep.TauAfter
	cell.MissWOrig, cell.MissWOpt = rep.MissesBefore, rep.MissesAfter
	cell.L2MissWOrig, cell.L2MissWOpt = rep.L2MissesBefore, rep.L2MissesAfter

	runs := o.Runs
	if runs <= 0 {
		runs = 3
	}
	so := sim.Options{Par: par, Seed: 7, Runs: runs}
	phase = time.Now()
	sOrig := sim.RunHier(b.Prog, h, so)
	sOpt := sim.RunHier(opt, h, so)
	phaseSeconds.With("simulate").Observe(time.Since(phase).Seconds())

	// Conditions 2 and 3 (Section 2.3): a transformation that increases the
	// measured ACET or the measured memory energy is rejected wholesale.
	// The paper relies on the WCET/ACET correlation and reports energy
	// savings without ACET increase for every use case; when the
	// correlation fails (strongly data-dependent control flow, or prefetch
	// traffic outweighing the removed misses), shipping the original binary
	// is the conservative choice.
	if rep.Inserted > 0 {
		eOrig := mdl.Energy(sOrig.Account()).TotalPJ()
		eOpt := mdl.Energy(sOpt.Account()).TotalPJ()
		if sOpt.ACETCycles() > sOrig.ACETCycles()*1.002 || eOpt > eOrig*1.002 {
			cell.Cond3Reverted = true
			cell.Inserted = 0
			cell.InsertedL2 = 0
			opt = b.Prog
			cell.TauOpt = cell.TauOrig
			cell.MissWOpt = cell.MissWOrig
			cell.L2MissWOpt = cell.L2MissWOrig
			sOpt = sOrig
		}
	}
	span.Attr("inserted", cell.Inserted)
	recordLevelTallies(span, h, sOpt)
	cell.ACETOrig, cell.ACETOpt = sOrig.ACETCycles(), sOpt.ACETCycles()
	cell.MissRateOrig, cell.MissRateOpt = sOrig.MissRate(), sOpt.MissRate()
	cell.L2MissRateOrig, cell.L2MissRateOpt = sOrig.L2MissRate(), sOpt.L2MissRate()
	cell.FetchesOrig, cell.FetchesOpt = sOrig.FetchesPerRun(), sOpt.FetchesPerRun()
	eo, ep := mdl.Energy(sOrig.Account()), mdl.Energy(sOpt.Account())
	cell.EnergyOrig, cell.EnergyOpt = eo.TotalPJ(), ep.TotalPJ()
	cell.DynOrig, cell.DynOpt = eo.DynamicPJ, ep.DynamicPJ
	cell.StaticOrig, cell.StaticOpt = eo.StaticPJ, ep.StaticPJ

	// Figure 5: re-target the optimization at half and quarter capacity and
	// compare against the original binary on the full-size cache — the
	// "smaller caches through prefetching" experiment.
	if !o.SkipReduced {
		phase = time.Now()
		defer func() { phaseSeconds.With("reduced").Observe(time.Since(phase).Seconds()) }()
		tau, acet, e, ok, err := reducedRun(ctx, b, h, 2, tech, o)
		if err != nil {
			return cell, err
		}
		if ok {
			cell.HasHalf = true
			cell.TauHalf, cell.ACETHalf, cell.EnergyHalf = tau, acet, e
		}
		tau, acet, e, ok, err = reducedRun(ctx, b, h, 4, tech, o)
		if err != nil {
			return cell, err
		}
		if ok {
			cell.HasQuarter = true
			cell.TauQuarter, cell.ACETQuarter, cell.EnergyQuarter = tau, acet, e
		}
	}
	return cell, nil
}

// reducedRun optimizes the program for the hierarchy with a shrunk L1 and
// measures it there (the L2, when present, keeps its size — the experiment
// asks whether prefetching lets the *first* level shrink). A shrunk
// configuration that cannot be optimized is reported as ok=false (the
// figure simply lacks the series) — except for interruptions, which must
// stop the whole cell and therefore propagate.
func reducedRun(ctx context.Context, b malardalen.Benchmark, h cache.Hierarchy, factor int, tech energy.Tech, o Options) (tau int64, acet, energyPJ float64, ok bool, err error) {
	small, valid := shrink(h.L1, factor)
	if !valid {
		return 0, 0, 0, false, nil
	}
	h2 := h
	h2.L1 = small
	if err := h2.Valid(); err != nil {
		return 0, 0, 0, false, nil
	}
	mdl := energy.NewModelHier(h2, tech)
	par := mdl.WCETParams()
	opt, rep, err := core.OptimizeHier(ctx, b.Prog, h2, core.Options{Par: par, ValidationBudget: o.ValidationBudget})
	if err != nil {
		if interrupt.Is(err) {
			return 0, 0, 0, false, err
		}
		return 0, 0, 0, false, nil
	}
	runs := o.Runs
	if runs <= 0 {
		runs = 3
	}
	s := sim.RunHier(opt, h2, sim.Options{Par: par, Seed: 7, Runs: runs})
	return rep.TauAfter, s.ACETCycles(), mdl.Energy(s.Account()).TotalPJ(), true, nil
}

// Per-level simulated hit/miss tallies, labeled by cache level. The cell
// span carries the same numbers, so `ucp-bench -v` and traced service
// requests show them per cell while /metrics aggregates them per process.
var (
	levelHits = obs.NewCounterVec("ucp_cache_level_hits_total",
		"Simulated cache hits of the shipped binary, by cache level.", "level")
	levelMisses = obs.NewCounterVec("ucp_cache_level_misses_total",
		"Simulated cache misses of the shipped binary, by cache level.", "level")
	// phaseSeconds times each pipeline phase once per cell — deliberately
	// coarse (one Observe per phase, not per inner iteration) so the
	// disabled-tracing fast path of the cell stays unmeasurable against the
	// seconds-long phases themselves.
	phaseSeconds = obs.NewHistogramVec("ucp_phase_seconds",
		"Wall-clock pipeline phase duration per cell, by phase, in seconds.", "phase", nil, nil)
)

// recordLevelTallies publishes the per-level hit/miss counts of the
// measured (post-Condition-3) binary to the cell span and the metrics
// registry. An L1 miss that the L2 serves counts as an L2 hit; only a miss
// at the last level is a miss of that level.
func recordLevelTallies(span *obs.Span, h cache.Hierarchy, s sim.Stats) {
	if span != nil {
		span.Attr("l1_hits", s.Hits)
		span.Attr("l1_misses", s.Misses)
		if h.HasL2() {
			span.Attr("l2_hits", s.L2Hits)
			span.Attr("l2_misses", s.L2Misses)
		}
	}
	levelHits.With("1").Add(s.Hits)
	levelMisses.With("1").Add(s.Misses)
	if h.HasL2() {
		levelHits.With("2").Add(s.L2Hits)
		levelMisses.With("2").Add(s.L2Misses)
	}
}

// countL2Prefetches counts the prefetch-into-L2 instructions of a program.
func countL2Prefetches(p *isa.Program) int {
	n := 0
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == isa.KindPrefetch && in.Level == 2 {
				n++
			}
		}
	}
	return n
}

func shrink(cfg cache.Config, factor int) (cache.Config, bool) {
	s := cfg
	s.CapacityBytes = cfg.CapacityBytes / factor
	if err := s.Valid(); err != nil {
		return cache.Config{}, false
	}
	return s, true
}

// OptimizedProgram exposes the per-cell optimization for the CLI tools.
func OptimizedProgram(ctx context.Context, b malardalen.Benchmark, cfgIdx int, tech energy.Tech, budget int, policy cache.Policy) (*isa.Program, *core.Report, error) {
	return OptimizedProgramHier(ctx, b, cfgIdx, tech, budget, policy, cache.Config{})
}

// OptimizedProgramHier is OptimizedProgram with an optional L2 behind the
// swept Table 2 configuration (zero value = single-level).
func OptimizedProgramHier(ctx context.Context, b malardalen.Benchmark, cfgIdx int, tech energy.Tech, budget int, policy cache.Policy, l2 cache.Config) (*isa.Program, *core.Report, error) {
	cfg := cache.Table2()[cfgIdx]
	cfg.Policy = policy
	h := cache.Hier1(cfg)
	h.L2 = l2
	if err := h.Valid(); err != nil {
		return nil, nil, err
	}
	mdl := energy.NewModelHier(h, tech)
	return core.OptimizeHier(ctx, b.Prog, h, core.Options{Par: mdl.WCETParams(), ValidationBudget: budget})
}
