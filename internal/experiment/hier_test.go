package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/energy"
	"ucp/internal/malardalen"
)

func testL2() cache.Config {
	return cache.Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 8192}
}

func hierSweep(t *testing.T) *Suite {
	t.Helper()
	s, err := Run(Options{
		Programs:         []string{"fdct", "crc"},
		Configs:          []int{0, 13}, // 256B and 1KB L1s
		Techs:            []energy.Tech{energy.Tech45},
		Runs:             1,
		ValidationBudget: 40,
		SkipReduced:      true,
		L2s:              []cache.Config{{}, testL2()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepHierarchyAxis(t *testing.T) {
	s := hierSweep(t)
	if len(s.Cells) != 8 {
		t.Fatalf("cells = %d, want 8 (2 programs × 2 configs × 2 L2s)", len(s.Cells))
	}
	sawL2 := false
	for _, c := range s.Cells {
		if c.TauOpt > c.TauOrig {
			t.Fatalf("%s/%s: WCET regressed", c.Program, c.ConfigID)
		}
		if !c.HasL2() {
			if c.L2MissWOrig != 0 || c.L2MissRateOrig != 0 || c.InsertedL2 != 0 {
				t.Fatalf("single-level cell carries L2 measurements: %+v", c)
			}
			continue
		}
		sawL2 = true
		if c.MissWOrig > 0 && c.L2MissWOrig == 0 && c.L2MissRateOrig == 0 {
			t.Errorf("%s/%s: L1 misses but no L2 activity recorded", c.Program, c.ConfigID)
		}
		if c.L2MissWOpt+c.MissWOpt > c.L2MissWOrig+c.MissWOrig {
			t.Errorf("%s/%s: joint WCET misses regressed", c.Program, c.ConfigID)
		}
	}
	if !sawL2 {
		t.Fatal("hierarchy axis produced no L2 cells")
	}
}

// TestSweepSingleLevelByteIdentical is the differential golden check at the
// sweep engine level: threading the hierarchy through optimizer, simulator
// and energy model must leave single-level results byte-for-byte unchanged,
// CSV and figures included.
func TestSweepSingleLevelByteIdentical(t *testing.T) {
	a := smallSweep(t)
	b, err := Run(Options{
		Programs:         []string{"fdct", "crc", "minmax"},
		Configs:          []int{0, 13, 32},
		Techs:            []energy.Tech{energy.Tech45},
		Runs:             1,
		ValidationBudget: 40,
		L2s:              []cache.Config{{}}, // explicit single-level axis
	})
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteCSV(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatal("single-level CSV differs between plain and explicit-axis sweeps")
	}
	if strings.Contains(bufA.String(), "l2_assoc") {
		t.Fatal("single-level CSV grew L2 columns")
	}
}

func TestRunCellDegenerateHierarchy(t *testing.T) {
	b, ok := malardalen.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	// L2 block smaller than the L1 block of config 13 → invalid geometry.
	_, err := RunCell(context.Background(), b, 13, energy.Tech45,
		Options{Runs: 1, L2: cache.Config{Assoc: 1, BlockBytes: 4, CapacityBytes: 65536}})
	if err == nil {
		t.Fatal("want error for degenerate hierarchy geometry")
	}
	_, err = RunCell(context.Background(), b, 0, energy.Tech45,
		Options{Runs: 1, L2: cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 128}})
	if err == nil {
		t.Fatal("want error for L2 smaller than L1")
	}
}

func TestHierarchyFrontierRenderer(t *testing.T) {
	s := hierSweep(t)
	var buf bytes.Buffer
	if err := s.HierarchyFrontier(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Hierarchy frontier", "none (single-level)", testL2().String()} {
		if !strings.Contains(out, want) {
			t.Errorf("frontier output missing %q:\n%s", want, out)
		}
	}
	var csvBuf bytes.Buffer
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "l2_capacity_bytes") {
		t.Error("hierarchy sweep CSV missing L2 columns")
	}
}
