package experiment

import (
	"fmt"
	"io"
	"sort"

	"ucp/internal/cache"
	"ucp/internal/malardalen"
)

// This file renders the paper's figures and tables as text: the same series
// the paper plots, printed as aligned columns so EXPERIMENTS.md can quote
// them directly. Every renderer returns the first error of the underlying
// writer (via errWriter in csv.go) instead of dropping it.

func capacities() []int { return []int{256, 512, 1024, 2048, 4096, 8192} }

type agg struct {
	n   int
	sum float64
}

func (a *agg) add(v float64) { a.n++; a.sum += v }
func (a *agg) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Headline prints the overall averages the abstract quotes: energy −11.2 %,
// ACET −10.2 %, WCET −17.4 % in the paper.
func (s *Suite) Headline(w io.Writer) error {
	ew := &errWriter{w: w}
	var e, a, t agg
	for _, c := range s.Cells {
		e.add(1 - ratio(c.EnergyOpt, c.EnergyOrig))
		a.add(1 - ratio(c.ACETOpt, c.ACETOrig))
		t.add(1 - ratio(float64(c.TauOpt), float64(c.TauOrig)))
	}
	fmt.Fprintf(ew, "overall average improvement over %d use cases:\n", len(s.Cells))
	fmt.Fprintf(ew, "  energy   %6.2f%%   (paper: 11.2%%)\n", 100*e.mean())
	fmt.Fprintf(ew, "  ACET     %6.2f%%   (paper: 10.2%%)\n", 100*a.mean())
	fmt.Fprintf(ew, "  WCET     %6.2f%%   (paper: 17.4%%)\n", 100*t.mean())
	return ew.err
}

// Figure3 prints the average improvement of energy consumption, ACET and
// WCET per cache size (the three series of the paper's Figure 3).
func (s *Suite) Figure3(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "Figure 3 — average improvement per cache size (percent)")
	fmt.Fprintf(ew, "%8s %10s %10s %10s %8s\n", "size", "energy", "ACET", "WCET", "cells")
	for _, capacity := range capacities() {
		var e, a, t agg
		for _, c := range s.Cells {
			if c.Cfg.CapacityBytes != capacity {
				continue
			}
			e.add(1 - ratio(c.EnergyOpt, c.EnergyOrig))
			a.add(1 - ratio(c.ACETOpt, c.ACETOrig))
			t.add(1 - ratio(float64(c.TauOpt), float64(c.TauOrig)))
		}
		if e.n == 0 {
			continue
		}
		fmt.Fprintf(ew, "%7dB %9.2f%% %9.2f%% %9.2f%% %8d\n",
			capacity, 100*e.mean(), 100*a.mean(), 100*t.mean(), e.n)
	}
	return ew.err
}

// Figure4 prints the average miss rate before and after the optimization
// per cache size (the paper's Figure 4).
func (s *Suite) Figure4(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "Figure 4 — average miss rate per cache size (percent)")
	fmt.Fprintf(ew, "%8s %12s %12s %12s\n", "size", "original", "optimized", "reduction")
	for _, capacity := range capacities() {
		var mo, mp agg
		for _, c := range s.Cells {
			if c.Cfg.CapacityBytes != capacity {
				continue
			}
			mo.add(c.MissRateOrig)
			mp.add(c.MissRateOpt)
		}
		if mo.n == 0 {
			continue
		}
		red := 0.0
		if mo.mean() > 0 {
			red = 1 - mp.mean()/mo.mean()
		}
		fmt.Fprintf(ew, "%7dB %11.2f%% %11.2f%% %11.2f%%\n",
			capacity, 100*mo.mean(), 100*mp.mean(), 100*red)
	}
	return ew.err
}

// Figure5 prints the average reductions when the optimized binary runs on
// half and quarter of the original capacity, compared to the original
// binary on the full capacity (the paper's Figure 5).
func (s *Suite) Figure5(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "Figure 5 — optimized binary on reduced capacity vs. original on full (percent improvement)")
	fmt.Fprintf(ew, "%8s | %10s %10s %10s | %10s %10s %10s\n",
		"size", "E (1/2)", "ACET (1/2)", "WCET (1/2)", "E (1/4)", "ACET (1/4)", "WCET (1/4)")
	for _, capacity := range capacities() {
		var eh, ah, th, eq, aq, tq agg
		for _, c := range s.Cells {
			if c.Cfg.CapacityBytes != capacity {
				continue
			}
			if c.HasHalf {
				eh.add(1 - ratio(c.EnergyHalf, c.EnergyOrig))
				ah.add(1 - ratio(c.ACETHalf, c.ACETOrig))
				th.add(1 - ratio(float64(c.TauHalf), float64(c.TauOrig)))
			}
			if c.HasQuarter {
				eq.add(1 - ratio(c.EnergyQuarter, c.EnergyOrig))
				aq.add(1 - ratio(c.ACETQuarter, c.ACETOrig))
				tq.add(1 - ratio(float64(c.TauQuarter), float64(c.TauOrig)))
			}
		}
		if eh.n == 0 && eq.n == 0 {
			continue
		}
		fmt.Fprintf(ew, "%7dB | %9.2f%% %9.2f%% %9.2f%% | %9.2f%% %9.2f%% %9.2f%%\n",
			capacity, 100*eh.mean(), 100*ah.mean(), 100*th.mean(),
			100*eq.mean(), 100*aq.mean(), 100*tq.mean())
	}
	return ew.err
}

// Figure7 prints the per-use-case WCET ratio (Inequation 12): a summary and
// the worst offenders. The paper's guarantee is that no ratio exceeds one.
func (s *Suite) Figure7(w io.Writer) error {
	ew := &errWriter{w: w}
	type uc struct {
		name  string
		ratio float64
	}
	var all []uc
	over := 0
	for _, c := range s.Cells {
		r := ratio(float64(c.TauOpt), float64(c.TauOrig))
		all = append(all, uc{fmt.Sprintf("%s/%s/%v", c.Program, c.ConfigID, c.Tech), r})
		if r > 1.0000001 {
			over++
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ratio < all[j].ratio })
	fmt.Fprintln(ew, "Figure 7 — WCET ratio τ_w(optimized)/τ_w(original) per use case")
	if len(all) == 0 {
		return ew.err
	}
	var mean agg
	improved := 0
	for _, u := range all {
		mean.add(u.ratio)
		if u.ratio < 0.9999999 {
			improved++
		}
	}
	fmt.Fprintf(ew, "  use cases: %d   improved: %d   unchanged: %d   regressed: %d (must be 0)\n",
		len(all), improved, len(all)-improved-over, over)
	fmt.Fprintf(ew, "  best ratio: %.4f   mean ratio: %.4f   worst ratio: %.4f\n",
		all[0].ratio, mean.mean(), all[len(all)-1].ratio)
	fmt.Fprintln(ew, "  ten largest reductions:")
	for i := 0; i < len(all) && i < 10; i++ {
		fmt.Fprintf(ew, "    %-28s %.4f\n", all[i].name, all[i].ratio)
	}
	return ew.err
}

// Figure8 prints the executed-instruction ratio per cache size (the paper's
// Figure 8; their maximal increase was 1.32 %).
func (s *Suite) Figure8(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "Figure 8 — executed instructions, optimized/original")
	fmt.Fprintf(ew, "%8s %10s %10s\n", "size", "average", "max")
	worst := 0.0
	for _, capacity := range capacities() {
		var a agg
		mx := 0.0
		for _, c := range s.Cells {
			if c.Cfg.CapacityBytes != capacity {
				continue
			}
			r := ratio(c.FetchesOpt, c.FetchesOrig)
			a.add(r)
			if r > mx {
				mx = r
			}
		}
		if a.n == 0 {
			continue
		}
		if mx > worst {
			worst = mx
		}
		fmt.Fprintf(ew, "%7dB %10.4f %10.4f\n", capacity, a.mean(), mx)
	}
	fmt.Fprintf(ew, "  maximal increase: %+.2f%%  (paper: +1.32%%)\n", 100*(worst-1))
	return ew.err
}

// HierarchyFrontier prints the WCET/energy frontier of a sweep over the
// hierarchy axis (Options.L2s): one row per swept L2 (single-level rows
// first), with the average improvement of energy, ACET and WCET over the
// matching use cases, the average L2 miss-rate reduction, and how many
// cells shipped at least one prefetch-into-L2 instruction. Reading down
// the rows shows what each additional L2 capacity buys — the
// "hierarchy frontier" of EXPERIMENTS.md.
func (s *Suite) HierarchyFrontier(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "Hierarchy frontier — average improvement per swept L2 (percent)")
	fmt.Fprintf(ew, "%-24s %10s %10s %10s %10s %8s %8s\n",
		"L2", "energy", "ACET", "WCET", "L2 miss", "pft@L2", "cells")
	var keys []cache.Config
	seen := map[cache.Config]bool{}
	for _, c := range s.Cells {
		if !seen[c.L2Cfg] {
			seen[c.L2Cfg] = true
			keys = append(keys, c.L2Cfg)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].CapacityBytes != keys[j].CapacityBytes {
			return keys[i].CapacityBytes < keys[j].CapacityBytes
		}
		if keys[i].BlockBytes != keys[j].BlockBytes {
			return keys[i].BlockBytes < keys[j].BlockBytes
		}
		return keys[i].Assoc < keys[j].Assoc
	})
	for _, k := range keys {
		var e, a, t, m agg
		pftCells := 0
		for _, c := range s.Cells {
			if c.L2Cfg != k {
				continue
			}
			e.add(1 - ratio(c.EnergyOpt, c.EnergyOrig))
			a.add(1 - ratio(c.ACETOpt, c.ACETOrig))
			t.add(1 - ratio(float64(c.TauOpt), float64(c.TauOrig)))
			if c.L2MissRateOrig > 0 {
				m.add(1 - c.L2MissRateOpt/c.L2MissRateOrig)
			}
			if c.InsertedL2 > 0 {
				pftCells++
			}
		}
		name := "none (single-level)"
		if k != (cache.Config{}) {
			name = k.String()
		}
		fmt.Fprintf(ew, "%-24s %9.2f%% %9.2f%% %9.2f%% %9.2f%% %8d %8d\n",
			name, 100*e.mean(), 100*a.mean(), 100*t.mean(), 100*m.mean(), pftCells, e.n)
	}
	return ew.err
}

// Table1 prints the program identification table.
func Table1(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "Table 1 — program identification")
	benches := malardalen.All()
	for i := 0; i < len(benches); i += 3 {
		for j := i; j < i+3 && j < len(benches); j++ {
			fmt.Fprintf(ew, "%-14s %-5s", benches[j].Name, benches[j].ID)
		}
		fmt.Fprintln(ew)
	}
	return ew.err
}

// Table2 prints the cache configuration table.
func Table2(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "Table 2 — cache configurations (a, b, c) = (assoc, block bytes, capacity bytes)")
	cfgs := cache.Table2()
	for i := 0; i < len(cfgs); i += 3 {
		for j := i; j < i+3 && j < len(cfgs); j++ {
			fmt.Fprintf(ew, "%-14s %-5s", cfgs[j].String(), cache.ConfigID(j))
		}
		fmt.Fprintln(ew)
	}
	return ew.err
}
