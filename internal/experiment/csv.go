package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
)

// errWriter latches the first error of the underlying writer so the
// fmt.Fprintf-heavy renderers in figures.go can report I/O failures
// (a full disk, a closed pipe) instead of silently dropping them. After
// the first failure every Write is a cheap no-op returning that error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// WriteCSV emits the raw per-use-case measurements, one row per cell, for
// external plotting or statistics. Every figure of the paper can be
// recomputed from these columns. The first writer error aborts the
// rendering and is returned (csv.Writer buffers, so it would otherwise
// surface only at Flush).
func (s *Suite) WriteCSV(w io.Writer) error {
	ew := &errWriter{w: w}
	cw := csv.NewWriter(ew)
	// The L2 columns appear only when the sweep actually ran a hierarchy;
	// single-level sweeps keep the exact historical byte layout.
	hasL2 := false
	for _, c := range s.Cells {
		if c.HasL2() {
			hasL2 = true
			break
		}
	}
	header := []string{
		"program", "config", "assoc", "block_bytes", "capacity_bytes", "policy", "tech",
		"inserted", "cond3_reverted",
		"tau_orig", "tau_opt", "wcet_misses_orig", "wcet_misses_opt",
		"acet_orig", "acet_opt", "missrate_orig", "missrate_opt",
		"energy_orig_pj", "energy_opt_pj", "dyn_orig_pj", "dyn_opt_pj",
		"static_orig_pj", "static_opt_pj", "fetches_orig", "fetches_opt",
		"tau_half", "acet_half", "energy_half_pj",
		"tau_quarter", "acet_quarter", "energy_quarter_pj",
	}
	if hasL2 {
		header = append(header,
			"l2_assoc", "l2_block_bytes", "l2_capacity_bytes", "l2_policy",
			"inserted_l2", "l2_wcet_misses_orig", "l2_wcet_misses_opt",
			"l2_missrate_orig", "l2_missrate_opt")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.4f", v) }
	d := func(v int64) string { return fmt.Sprintf("%d", v) }
	for _, c := range s.Cells {
		row := []string{
			c.Program, c.ConfigID,
			d(int64(c.Cfg.Assoc)), d(int64(c.Cfg.BlockBytes)), d(int64(c.Cfg.CapacityBytes)),
			c.Cfg.Policy.String(), c.Tech.String(),
			d(int64(c.Inserted)), fmt.Sprintf("%t", c.Cond3Reverted),
			d(c.TauOrig), d(c.TauOpt), d(c.MissWOrig), d(c.MissWOpt),
			f(c.ACETOrig), f(c.ACETOpt), f(c.MissRateOrig), f(c.MissRateOpt),
			f(c.EnergyOrig), f(c.EnergyOpt), f(c.DynOrig), f(c.DynOpt),
			f(c.StaticOrig), f(c.StaticOpt), f(c.FetchesOrig), f(c.FetchesOpt),
		}
		if c.HasHalf {
			row = append(row, d(c.TauHalf), f(c.ACETHalf), f(c.EnergyHalf))
		} else {
			row = append(row, "", "", "")
		}
		if c.HasQuarter {
			row = append(row, d(c.TauQuarter), f(c.ACETQuarter), f(c.EnergyQuarter))
		} else {
			row = append(row, "", "", "")
		}
		if hasL2 {
			if c.HasL2() {
				row = append(row,
					d(int64(c.L2Cfg.Assoc)), d(int64(c.L2Cfg.BlockBytes)), d(int64(c.L2Cfg.CapacityBytes)),
					c.L2Cfg.Policy.String(),
					d(int64(c.InsertedL2)), d(c.L2MissWOrig), d(c.L2MissWOpt),
					f(c.L2MissRateOrig), f(c.L2MissRateOpt))
			} else {
				row = append(row, "", "", "", "", "", "", "", "", "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
		// csv.Writer buffers; bail out as soon as the underlying writer
		// has failed rather than formatting the remaining cells.
		if ew.err != nil {
			return ew.err
		}
	}
	cw.Flush()
	return cw.Error()
}
