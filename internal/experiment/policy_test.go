package experiment

import (
	"context"
	"strings"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/energy"
	"ucp/internal/malardalen"
)

// RunCell is an entry point for externally supplied options, so it must
// reject an unusable policy before any analysis runs.
func TestPolicyRunCellValidates(t *testing.T) {
	b, _ := malardalen.ByName("fibcall")
	if _, err := RunCell(context.Background(), b, 0, energy.Tech45, Options{Policy: cache.Policy(9), Runs: 1}); err == nil {
		t.Fatal("RunCell accepted an unknown policy")
	}
}

// A non-LRU cell must complete and carry its policy into the cell (and from
// there into the CSV policy column).
func TestPolicyRunCellAndCSV(t *testing.T) {
	b, _ := malardalen.ByName("fibcall")
	cell, err := RunCell(context.Background(), b, 0, energy.Tech45, Options{
		Policy: cache.FIFO, Runs: 1, ValidationBudget: 20, SkipReduced: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Cfg.Policy != cache.FIFO {
		t.Fatalf("cell policy = %v, want fifo", cell.Cfg.Policy)
	}
	if cell.TauOrig <= 0 || cell.ACETOrig <= 0 {
		t.Fatalf("degenerate cell: %+v", cell)
	}

	var sb strings.Builder
	if err := (&Suite{Cells: []Cell{cell}}).WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	hdr := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	col := -1
	for i, h := range hdr {
		if h == "policy" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("CSV header has no policy column: %s", lines[0])
	}
	if row[col] != "fifo" {
		t.Fatalf("CSV policy cell = %q, want fifo", row[col])
	}
}
