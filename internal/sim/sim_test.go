package sim

import (
	"testing"
	"testing/quick"

	"ucp/internal/cache"
	"ucp/internal/hwpref"
	"ucp/internal/isa"
	"ucp/internal/wcet"
)

var testPar = wcet.Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}

func run(p *isa.Program, cfg cache.Config, o Options) Stats {
	if o.Par == (wcet.Params{}) {
		o.Par = testPar
	}
	return Run(p, cfg, o)
}

func TestStraightLineDeterministic(t *testing.T) {
	p := isa.Build("s", isa.Code(30))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	s := run(p, cfg, Options{Runs: 1})
	// 32 instructions, 16-byte blocks, aligned base: 8 cold misses.
	if s.Fetches != 32 {
		t.Fatalf("fetches = %d, want 32", s.Fetches)
	}
	if s.Misses != 8 {
		t.Fatalf("misses = %d, want 8", s.Misses)
	}
	wantCycles := int64(8*10 + 24*1)
	if s.Cycles != wantCycles {
		t.Fatalf("cycles = %d, want %d", s.Cycles, wantCycles)
	}
	if s.DRAMReads != 8 || s.CacheFills != 8 {
		t.Fatalf("dram=%d fills=%d, want 8/8", s.DRAMReads, s.CacheFills)
	}
}

func TestRunsAggregate(t *testing.T) {
	p := isa.Build("agg", isa.Code(30))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	one := run(p, cfg, Options{Runs: 1})
	three := run(p, cfg, Options{Runs: 3})
	if three.Fetches != 3*one.Fetches || three.Cycles != 3*one.Cycles {
		t.Fatalf("three cold runs must be exactly three times one run")
	}
	if three.ACETCycles() != float64(one.Cycles) {
		t.Fatalf("ACETCycles = %v, want %v", three.ACETCycles(), one.Cycles)
	}
}

func TestLoopRespectsAvgIters(t *testing.T) {
	// Deterministic loop (avg == bound): body must run exactly bound times.
	p := isa.Build("loop", isa.Loop(10, 10, isa.Code(5)))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	s := run(p, cfg, Options{Runs: 1})
	// prologue 1 + jump 1, header 2 per check (11 checks), body 6 per
	// iteration (10 iterations), epilogue 1.
	want := int64(2 + 11*2 + 10*6 + 1)
	if s.Fetches != want {
		t.Fatalf("fetches = %d, want %d", s.Fetches, want)
	}
}

func TestSoftwarePrefetchConvertsMiss(t *testing.T) {
	// A prefetch early in a long straight block, targeting an instruction
	// far ahead: the target's block must arrive before execution does.
	p := isa.Build("pf", isa.Code(60))
	tgt := isa.InstrRef{Block: 0, Index: 50}
	p.InsertInstr(isa.InstrRef{Block: 0, Index: 1}, isa.Instr{Kind: isa.KindPrefetch, Target: tgt})
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}

	base := run(isa.Build("pf0", isa.Code(60)), cfg, Options{Runs: 1})
	with := run(p, cfg, Options{Runs: 1})
	if with.PrefetchExecuted != 1 || with.PrefetchIssued != 1 {
		t.Fatalf("prefetch not executed/issued: %+v", with)
	}
	if with.Misses != base.Misses-1 {
		t.Fatalf("misses with prefetch = %d, want %d", with.Misses, base.Misses-1)
	}
	// DRAM traffic is unchanged: the fill replaced the demand miss.
	if with.DRAMReads != base.DRAMReads {
		t.Fatalf("DRAM reads changed: %d vs %d", with.DRAMReads, base.DRAMReads)
	}
}

func TestPrefetchTooLateStalls(t *testing.T) {
	// Prefetch immediately before the use: the fetch must stall on the
	// in-flight fill instead of paying a full miss.
	p := isa.Build("late", isa.Code(40))
	tgt := isa.InstrRef{Block: 0, Index: 20} // 16-byte block boundary at index 20 (base aligned)
	p.InsertInstr(isa.InstrRef{Block: 0, Index: 18}, isa.Instr{Kind: isa.KindPrefetch, Target: tgt})
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	s := run(p, cfg, Options{Runs: 1})
	if s.Stalls == 0 {
		t.Fatalf("expected a stall on the in-flight fill: %+v", s)
	}
	if s.StallCycles <= 0 || s.StallCycles > testPar.Lambda {
		t.Fatalf("stall cycles = %d, want within (0, Λ]", s.StallCycles)
	}
}

func TestRedundantPrefetchSkipsDRAM(t *testing.T) {
	p := isa.Build("red", isa.Code(30))
	// Target the prefetch's own surroundings: resident by then.
	p.InsertInstr(isa.InstrRef{Block: 0, Index: 10}, isa.Instr{Kind: isa.KindPrefetch, Target: isa.InstrRef{Block: 0, Index: 9}})
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	s := run(p, cfg, Options{Runs: 1})
	if s.PrefetchRedundant != 1 || s.PrefetchIssued != 0 {
		t.Fatalf("redundant prefetch accounting: %+v", s)
	}
}

func TestLockedCacheSemantics(t *testing.T) {
	p := isa.Build("lock", isa.Loop(5, 5, isa.Code(8)))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	lay := isa.NewLayout(p)
	// Lock every block the program touches: everything hits.
	locked := map[uint64]bool{}
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			locked[lay.MemBlock(isa.InstrRef{Block: b.ID, Index: i}, cfg.BlockBytes)] = true
		}
	}
	all := run(p, cfg, Options{Runs: 1, Locked: locked})
	if all.Misses != 0 || all.DRAMReads != 0 {
		t.Fatalf("fully locked cache must not miss: %+v", all)
	}
	// Lock nothing: everything misses.
	none := run(p, cfg, Options{Runs: 1, Locked: map[uint64]bool{}})
	if none.Hits != 0 || none.Misses != none.Fetches {
		t.Fatalf("empty locked cache must always miss: %+v", none)
	}
}

func TestHardwarePrefetcherReducesSequentialMisses(t *testing.T) {
	p := isa.Build("hw", isa.Code(400))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	base := run(p, cfg, Options{Runs: 1})
	tagged := run(p, cfg, Options{Runs: 1, HW: &hwpref.NextLine{Policy: hwpref.Tagged}})
	if tagged.HWIssued == 0 {
		t.Fatal("tagged next-line prefetcher never fired")
	}
	if tagged.Cycles >= base.Cycles {
		t.Fatalf("sequential prefetching should speed up straight-line code: %d vs %d", tagged.Cycles, base.Cycles)
	}
}

func TestSeedsDeterministic(t *testing.T) {
	p := isa.Build("det", isa.Loop(20, 12, isa.IfThen(0.5, isa.Code(12)), isa.Code(4)))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	a := run(p, cfg, Options{Runs: 2, Seed: 42})
	b := run(p, cfg, Options{Runs: 2, Seed: 42})
	if a != b {
		t.Fatalf("same seed must reproduce identical stats:\n%+v\n%+v", a, b)
	}
	c := run(p, cfg, Options{Runs: 2, Seed: 43})
	if a == c {
		t.Fatal("different seeds should perturb a data-dependent program")
	}
}

// Property: cycle accounting is exactly hits + misses + stalls.
func TestCycleAccountingProperty(t *testing.T) {
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	f := func(seed int64, n uint8) bool {
		p := isa.Build("prop", isa.Loop(3+int(n%8), float64(2+n%4), isa.Code(10+int(n)%60)), isa.Code(int(n)%30))
		s := run(p, cfg, Options{Runs: 1, Seed: seed})
		expect := s.Hits*testPar.HitCycles + s.Misses*testPar.MissCycles() + s.StallCycles
		return s.Cycles == expect && s.Hits+s.Misses == s.Fetches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: miss count never exceeds the number of distinct memory blocks
// times the visits... weaker but useful: misses ≤ fetches and the miss rate
// is within [0, 1].
func TestMissBoundsProperty(t *testing.T) {
	cfg := cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 128}
	f := func(seed int64) bool {
		p := isa.Build("mb", isa.Loop(6, 4, isa.Code(40)), isa.Code(20))
		s := run(p, cfg, Options{Runs: 2, Seed: seed})
		return s.Misses <= s.Fetches && s.MissRate() >= 0 && s.MissRate() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAccountMatchesStats(t *testing.T) {
	p := isa.Build("acc", isa.Code(50))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	s := run(p, cfg, Options{Runs: 1})
	a := s.Account()
	if a.CacheReads != s.Fetches || a.DRAMReads != s.DRAMReads || a.Cycles != s.Cycles || a.CacheFills != s.CacheFills {
		t.Fatalf("account mismatch: %+v vs %+v", a, s)
	}
}
