// Package sim is the trace-driven simulator standing in for the
// instruction-set simulator (GEM5) of the paper's setup (Supplement S.4):
// it executes a program under a seeded average-case driver — loop trip
// counts drawn around their annotated means, branches by their annotated
// probabilities — through a concrete cache with a non-blocking prefetch
// port, and accounts every event the energy model needs.
//
// The simulator measures the *memory contribution* to the execution time,
// exactly the quantity the paper evaluates: every instruction costs its
// fetch time (hit time, or the miss penalty, or a stall on an in-flight
// fill); software prefetches overlap with execution.
package sim

import (
	"math"
	"math/rand"

	"ucp/internal/cache"
	"ucp/internal/energy"
	"ucp/internal/hwpref"
	"ucp/internal/isa"
	"ucp/internal/wcet"
)

// Options configures a simulation.
type Options struct {
	// Par are the memory timings (hit, miss penalty, prefetch latency).
	Par wcet.Params
	// Seed drives the average-case branch/loop behavior; run r uses
	// Seed+r.
	Seed int64
	// Runs is the number of independent cold-start executions to average
	// over (default 1).
	Runs int
	// HW optionally attaches a hardware prefetcher baseline.
	HW hwpref.Prefetcher
	// MaxOutstanding bounds the fill queue (default 4); further prefetch
	// requests are dropped, as a real prefetch buffer would.
	MaxOutstanding int
	// Locked, when non-nil, switches the cache to statically locked
	// operation: accesses to locked blocks always hit, every other access
	// goes to memory without allocating (the cache-locking baseline of
	// Section 2.2).
	Locked map[uint64]bool
	// OnFetch, when non-nil, observes every demand instruction fetch with
	// its static reference and whether it hit the cache (a stall on an
	// in-flight fill counts as a hit). The cross-layer soundness tests use
	// it to check classifications against concrete behavior per reference.
	OnFetch func(ref isa.InstrRef, hit bool)
	// OnFetch2, when non-nil, observes every demand fetch that misses the
	// L1 and probes the L2, with whether the L2 hit (a wait on an in-flight
	// L2 fill counts as a hit). Never called without a configured L2.
	OnFetch2 func(ref isa.InstrRef, hit bool)
}

// Stats aggregates the events of all runs.
type Stats struct {
	Runs    int
	Cycles  int64 // memory cycles over all runs
	Fetches int64 // instructions executed (including prefetches)
	Hits    int64
	Misses  int64 // demand fetches that paid the full miss penalty
	Stalls  int64 // demand fetches that waited on an in-flight fill
	// StallCycles is the total time spent waiting on in-flight fills.
	StallCycles int64

	PrefetchExecuted  int64 // software prefetch instructions fetched
	PrefetchIssued    int64 // fills enqueued by software prefetches
	PrefetchRedundant int64 // software prefetches whose block was resident
	HWIssued          int64 // fills enqueued by the hardware prefetcher
	HWDropped         int64 // hardware requests dropped on a full queue

	DRAMReads  int64 // memory block transfers
	CacheFills int64 // blocks written into the L1

	L2Hits   int64 // L1 misses served by the L2
	L2Misses int64 // L1 misses that also missed the L2 (went to memory)
	L2Reads  int64 // L2 lookups (demand probes plus prefetch probes)
	L2Fills  int64 // blocks written into the L2
}

// ACETCycles is the average memory time of one run.
func (s Stats) ACETCycles() float64 { return float64(s.Cycles) / float64(s.Runs) }

// MissRate is misses per demand fetch.
func (s Stats) MissRate() float64 {
	demand := s.Fetches
	if demand == 0 {
		return 0
	}
	return float64(s.Misses) / float64(demand)
}

// L2MissRate is L2 misses per demand L2 probe (an L1 miss that went to the
// L2). Zero when no L2 is simulated.
func (s Stats) L2MissRate() float64 {
	demand := s.L2Hits + s.L2Misses
	if demand == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(demand)
}

// FetchesPerRun is the average dynamic instruction count.
func (s Stats) FetchesPerRun() float64 { return float64(s.Fetches) / float64(s.Runs) }

// Account converts the statistics into the energy model's activity vector
// (per-run averages scaled back to totals is unnecessary: energy of one run
// is Account()/Runs-proportional, and all figures use ratios).
func (s Stats) Account() energy.Account {
	return energy.Account{
		CacheReads: s.Fetches,
		CacheFills: s.CacheFills,
		DRAMReads:  s.DRAMReads,
		L2Reads:    s.L2Reads,
		L2Fills:    s.L2Fills,
		Cycles:     s.Cycles,
	}
}

type fill struct {
	block uint64
	ready int64
	// l2 marks a fill that installs into the L2 only (a Level-2 software
	// prefetch); block is then an L2 block number.
	l2 bool
}

type machine struct {
	p   *isa.Program
	lay *isa.Layout
	cfg cache.Config
	o   Options
	st  *cache.State
	// l2 is the concrete L2 state, nil when no L2 is configured — every
	// L2 branch below is gated on it, so single-level runs execute the
	// exact pre-hierarchy paths.
	l2    *cache.State
	h     cache.Hierarchy
	rng   *rand.Rand
	t     int64
	fills []fill
	// firstUse tracks the tagged-prefetch bit: blocks not yet demand-read
	// since arriving.
	firstUse map[uint64]bool
	stats    *Stats
}

// Run simulates the program on a single-level cache and returns the
// aggregated statistics.
func Run(p *isa.Program, cfg cache.Config, o Options) Stats {
	return RunHier(p, cache.Hier1(cfg), o)
}

// RunHier simulates the program on the cache hierarchy h. With no L2
// configured it is exactly Run on h.L1. The Locked mode stays single-level:
// the locking baseline of the paper locks the L1 and bypasses allocation
// entirely, so a configured L2 is rejected there.
func RunHier(p *isa.Program, h cache.Hierarchy, o Options) Stats {
	if o.Runs <= 0 {
		o.Runs = 1
	}
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 4
	}
	if err := o.Par.Valid(); err != nil {
		panic(err)
	}
	if err := h.Valid(); err != nil {
		panic(err)
	}
	if h.HasL2() {
		if o.Par.L2HitCycles < 1 {
			panic("sim: hierarchy simulation needs Par.L2HitCycles >= 1")
		}
		if o.Locked != nil {
			panic("sim: locked mode is single-level; configure no L2")
		}
	}
	stats := Stats{Runs: o.Runs}
	lay := isa.NewLayout(p)
	for r := 0; r < o.Runs; r++ {
		m := &machine{
			p:        p,
			lay:      lay,
			cfg:      h.L1,
			h:        h,
			o:        o,
			st:       cache.NewState(h.L1),
			rng:      rand.New(rand.NewSource(o.Seed + int64(r))),
			firstUse: map[uint64]bool{},
			stats:    &stats,
		}
		if h.HasL2() {
			m.l2 = cache.NewState(h.L2)
		}
		if o.HW != nil {
			o.HW.Reset()
		}
		m.run()
	}
	return stats
}

func (m *machine) run() {
	loopIters := map[int]int{}
	cur := m.p.Entry
	prev := -1
	guard := 0
	for {
		guard++
		if guard > 2_000_000 {
			panic("sim: execution did not terminate (loop annotations inconsistent?)")
		}
		b := m.p.Blocks[cur]
		li := m.p.LoopOf(cur)
		isHead := li >= 0 && m.p.Loops[li].Head == cur
		if isHead && m.freshEntry(li, prev) {
			loopIters[li] = m.drawIters(li)
		}
		m.execBlock(b, loopIters)
		if len(b.Succs) == 0 {
			m.stats.Cycles += m.t
			return
		}
		prev = cur
		switch {
		case isHead:
			if loopIters[li] > 0 {
				loopIters[li]--
				cur = b.Succs[0]
			} else {
				cur = b.Succs[1]
			}
		case b.Terminator().Kind == isa.KindBranch:
			if m.rng.Float64() < b.TakenProb {
				cur = b.Succs[0]
			} else {
				cur = b.Succs[1]
			}
		default:
			cur = b.Succs[0]
		}
	}
}

func (m *machine) freshEntry(li, prev int) bool {
	if prev < 0 {
		return true
	}
	for _, member := range m.p.Loops[li].Blocks {
		if member == prev {
			return false
		}
	}
	return true
}

// drawIters samples the trip count of one loop entry: normally distributed
// around the annotated mean, clamped to [0, bound]. A mean equal to the
// bound makes the loop deterministic (counted loops like matrix kernels).
func (m *machine) drawIters(li int) int {
	l := m.p.Loops[li]
	if l.AvgIters >= float64(l.Bound) {
		return l.Bound
	}
	spread := math.Max(1, l.AvgIters*0.2)
	v := int(math.Round(m.rng.NormFloat64()*spread + l.AvgIters))
	if v < 0 {
		v = 0
	}
	if v > l.Bound {
		v = l.Bound
	}
	return v
}

// execBlock fetches every instruction of the block, handling prefetch
// issues and hardware prefetch triggers.
func (m *machine) execBlock(b *isa.Block, loopIters map[int]int) {
	for i, in := range b.Instrs {
		ref := isa.InstrRef{Block: b.ID, Index: i}
		pc := m.lay.Addr(ref)
		blk := pc / uint64(m.cfg.BlockBytes)
		hit := m.fetch(ref, pc, blk)
		if m.o.OnFetch != nil {
			m.o.OnFetch(ref, hit)
		}

		m.stats.Fetches++
		if in.Kind == isa.KindPrefetch {
			m.stats.PrefetchExecuted++
			switch {
			case in.Level == 2 && m.l2 != nil:
				m.issueL2(m.lay.MemBlock(in.Target, m.h.L2.BlockBytes))
			case in.Level == 2:
				// A Level-2 prefetch on a machine with no L2 has nothing to
				// fill; its fetch already cost a cycle.
			default:
				var tgt2 uint64
				if m.l2 != nil {
					tgt2 = m.lay.MemBlock(in.Target, m.h.L2.BlockBytes)
				}
				m.issueSoftware(m.lay.MemBlock(in.Target, m.cfg.BlockBytes), tgt2)
			}
		}
		if m.o.HW != nil {
			m.triggerHW(b, i, pc, blk, hit, loopIters)
		}
	}
}

// fetch performs one demand access at the current time and advances the
// clock.
func (m *machine) fetch(ref isa.InstrRef, pc, blk uint64) bool {
	m.applyFills()
	if m.o.Locked != nil {
		// Statically locked cache: no state changes ever.
		if m.o.Locked[blk] {
			m.stats.Hits++
			m.t += m.o.Par.HitCycles
			return true
		}
		m.stats.Misses++
		m.stats.DRAMReads++
		m.t += m.o.Par.MissCycles()
		return false
	}
	if m.st.Contains(blk) {
		m.st.Access(blk)
		if m.firstUse[blk] {
			delete(m.firstUse, blk)
		}
		m.stats.Hits++
		m.t += m.o.Par.HitCycles
		return true
	}
	// In-flight L1 fill?
	for _, f := range m.fills {
		if f.l2 || f.block != blk {
			continue
		}
		// Stall until the fill lands, then hit.
		if f.ready > m.t {
			m.stats.StallCycles += f.ready - m.t
			m.t = f.ready
		}
		m.stats.Stalls++
		m.applyFills()
		if !m.st.Contains(blk) {
			// The fill landed and was immediately evicted by another fill
			// applied in the same instant; treat as a miss refill.
			m.st.Access(blk)
			m.stats.CacheFills++
		} else {
			m.st.Access(blk)
		}
		m.stats.Hits++
		m.t += m.o.Par.HitCycles
		return true
	}
	// L1 miss: probe the L2 when one is configured.
	if m.l2 != nil {
		return m.fetchL2(ref, pc, blk)
	}
	// Full miss straight to memory.
	m.st.Access(blk)
	m.firstUse[blk] = true
	m.stats.Misses++
	m.stats.DRAMReads++
	m.stats.CacheFills++
	m.t += m.o.Par.MissCycles()
	return false
}

// fetchL2 serves a demand L1 miss from the L2, waiting out an in-flight
// L2-targeted prefetch fill of the block if there is one, and going to
// memory (filling both levels) on an L2 miss.
func (m *machine) fetchL2(ref isa.InstrRef, pc, blk uint64) bool {
	blk2 := pc / uint64(m.h.L2.BlockBytes)
	m.stats.Misses++
	m.stats.L2Reads++
	for _, f := range m.fills {
		if !f.l2 || f.block != blk2 {
			continue
		}
		if f.ready > m.t {
			m.stats.StallCycles += f.ready - m.t
			m.t = f.ready
		}
		m.stats.Stalls++
		m.applyFills()
		break
	}
	if m.l2.Contains(blk2) {
		m.l2.Access(blk2)
		m.stats.L2Hits++
		if m.o.OnFetch2 != nil {
			m.o.OnFetch2(ref, true)
		}
		m.st.Access(blk)
		m.firstUse[blk] = true
		m.stats.CacheFills++
		m.t += m.o.Par.HitCycles + m.o.Par.L2HitCycles
		return false
	}
	// L2 miss: the block comes from memory and fills both levels.
	m.stats.L2Misses++
	m.stats.DRAMReads++
	if m.o.OnFetch2 != nil {
		m.o.OnFetch2(ref, false)
	}
	m.l2.Access(blk2)
	m.stats.L2Fills++
	m.st.Access(blk)
	m.firstUse[blk] = true
	m.stats.CacheFills++
	m.t += m.o.Par.HitCycles + m.o.Par.L2HitCycles + m.o.Par.MissPenalty
	return false
}

// issueSoftware enqueues a software prefetch fill into the L1. With an L2
// configured, the fill is served from the L2 when the target's L2 block is
// resident (arriving after only the L2 hit latency, touching no memory);
// otherwise it comes from memory and installs into both levels.
func (m *machine) issueSoftware(blk, blk2 uint64) {
	if m.o.Locked != nil {
		return // locked cache cannot be refilled
	}
	if m.st.Contains(blk) || m.pending(blk) {
		m.stats.PrefetchRedundant++
		return
	}
	if len(m.fills) >= m.o.MaxOutstanding {
		m.waitForSlot()
	}
	ready := m.t + m.o.Par.Lambda
	if m.l2 != nil {
		m.stats.L2Reads++
		if m.l2.Contains(blk2) {
			m.l2.Access(blk2)
			ready = m.t + m.o.Par.L2HitCycles
		} else {
			m.stats.DRAMReads++
			// The block passes through the L2 on its way into the L1.
			m.l2.Access(blk2)
			m.stats.L2Fills++
		}
	} else {
		m.stats.DRAMReads++
	}
	m.fills = append(m.fills, fill{block: blk, ready: ready})
	m.stats.PrefetchIssued++
}

// issueL2 enqueues a Level-2 software prefetch: the fill installs into the
// L2 only, leaving the L1 (and its fill queue slots' semantics) unchanged.
func (m *machine) issueL2(blk uint64) {
	m.stats.L2Reads++
	if m.l2.Contains(blk) {
		m.l2.Access(blk)
		m.stats.PrefetchRedundant++
		return
	}
	if m.pendingL2(blk) {
		m.stats.PrefetchRedundant++
		return
	}
	if len(m.fills) >= m.o.MaxOutstanding {
		m.waitForSlot()
	}
	m.fills = append(m.fills, fill{block: blk, ready: m.t + m.o.Par.Lambda, l2: true})
	m.stats.PrefetchIssued++
	m.stats.DRAMReads++
}

// waitForSlot blocks until the earliest outstanding fill retires: a software
// prefetch waits for a queue slot rather than being dropped.
func (m *machine) waitForSlot() {
	earliest := m.fills[0].ready
	for _, f := range m.fills {
		if f.ready < earliest {
			earliest = f.ready
		}
	}
	if earliest > m.t {
		m.stats.StallCycles += earliest - m.t
		m.t = earliest
	}
	m.applyFills()
}

// issueHW enqueues a hardware prefetch fill, dropping on a full queue.
func (m *machine) issueHW(blk uint64) {
	if m.st.Contains(blk) || m.pending(blk) {
		return
	}
	if len(m.fills) >= m.o.MaxOutstanding {
		m.stats.HWDropped++
		return
	}
	m.fills = append(m.fills, fill{block: blk, ready: m.t + m.o.Par.Lambda})
	m.stats.HWIssued++
	m.stats.DRAMReads++
}

func (m *machine) pending(blk uint64) bool {
	for _, f := range m.fills {
		if !f.l2 && f.block == blk {
			return true
		}
	}
	return false
}

func (m *machine) pendingL2(blk uint64) bool {
	for _, f := range m.fills {
		if f.l2 && f.block == blk {
			return true
		}
	}
	return false
}

// applyFills retires every fill whose latency has elapsed, into the level
// it targets.
func (m *machine) applyFills() {
	if len(m.fills) == 0 {
		return
	}
	rest := m.fills[:0]
	for _, f := range m.fills {
		switch {
		case f.ready > m.t:
			rest = append(rest, f)
		case f.l2:
			m.l2.Insert(f.block)
			m.stats.L2Fills++
		default:
			m.st.Insert(f.block)
			m.firstUse[f.block] = true
			m.stats.CacheFills++
		}
	}
	m.fills = rest
}

// triggerHW builds the prefetcher event for the fetch just performed and
// enqueues whatever the mechanism requests.
func (m *machine) triggerHW(b *isa.Block, i int, pc, blk uint64, hit bool, loopIters map[int]int) {
	in := b.Instrs[i]
	ev := hwpref.Event{
		PC:       pc,
		Block:    blk,
		Hit:      hit,
		FirstUse: m.firstUse[blk],
		IsBranch: in.Kind == isa.KindBranch,
	}
	if ev.IsBranch && len(b.Succs) == 2 {
		ev.TakenPC = m.lay.Addr(isa.InstrRef{Block: b.Succs[0], Index: 0})
		ev.FallPC = m.lay.Addr(isa.InstrRef{Block: b.Succs[1], Index: 0})
		// Resolve the branch the same way run() will: peek the driver
		// state without consuming randomness (approximation: predict the
		// likelier arm; the RPT learns from it).
		li := m.p.LoopOf(b.ID)
		if li >= 0 && m.p.Loops[li].Head == b.ID {
			if loopIters[li] > 0 {
				ev.NextPC = ev.TakenPC
			} else {
				ev.NextPC = ev.FallPC
			}
		} else if b.TakenProb >= 0.5 {
			ev.NextPC = ev.TakenPC
		} else {
			ev.NextPC = ev.FallPC
		}
	}
	for _, pb := range m.o.HW.OnAccess(ev, m.cfg.BlockBytes) {
		m.issueHW(pb)
	}
}
