package sim

import (
	"context"
	"os"
	"strings"
	"testing"

	"ucp/internal/absint"
	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/malardalen"
	"ucp/internal/wcet"
)

// policiesUnderTest returns the replacement policies the TestPolicy* tests
// should cover: every supported policy, or just the one named by the
// UCP_POLICY environment variable (the CI policy matrix runs the suite once
// per policy that way).
func policiesUnderTest(t *testing.T) []cache.Policy {
	t.Helper()
	s := strings.ToLower(strings.TrimSpace(os.Getenv("UCP_POLICY")))
	if s == "" || s == "all" {
		return cache.Policies()
	}
	p, err := cache.ParsePolicy(s)
	if err != nil {
		t.Fatalf("UCP_POLICY: %v", err)
	}
	return []cache.Policy{p}
}

// soundnessConfigs samples the Table 2 axis: one configuration per
// associativity, small enough that the benchmarks actually contend for sets.
var soundnessConfigs = []cache.Config{
	{Assoc: 1, BlockBytes: 16, CapacityBytes: 256},
	{Assoc: 2, BlockBytes: 16, CapacityBytes: 512},
	{Assoc: 4, BlockBytes: 32, CapacityBytes: 1024},
}

// TestPolicySoundnessCrossLayer checks the analysis against the simulator
// end to end: for every Mälardalen benchmark, sampled configuration, and
// replacement policy, a reference the abstract interpretation classifies
// always-hit in EVERY VIVU context must never miss in any concrete
// execution of the same program on the same cache. The simulator's OnFetch
// hook provides the per-reference miss accounting; both layers build their
// cache model from the same Config, so a policy mismatch or an unsound
// transfer function shows up as an AH reference that missed.
func TestPolicySoundnessCrossLayer(t *testing.T) {
	par := wcet.Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}
	benches := malardalen.All()
	if testing.Short() {
		benches = benches[:8]
	}
	for _, pol := range policiesUnderTest(t) {
		for _, base := range soundnessConfigs {
			cfg := base
			cfg.Policy = pol
			for _, b := range benches {
				res, err := wcet.Analyze(context.Background(), b.Prog, cfg, par)
				if err != nil {
					t.Fatalf("%s/%v: %v", b.Name, cfg, err)
				}
				// A reference is provably always-hit only when every context
				// that executes it agrees; a single weaker context means a
				// concrete visit may take that path and miss legitimately.
				type ref struct{ block, index int }
				allAH := map[ref]bool{}
				for _, xb := range res.X.Blocks {
					for i, cl := range res.AI.Class[xb.ID] {
						key := ref{xb.Orig, i}
						seen, ok := allAH[key]
						if !ok {
							seen = true
						}
						allAH[key] = seen && cl == absint.AlwaysHit
					}
				}

				missed := map[ref]bool{}
				Run(b.Prog, cfg, Options{
					Par:  par,
					Seed: 13,
					Runs: 3,
					OnFetch: func(r isa.InstrRef, hit bool) {
						if !hit {
							missed[ref{r.Block, r.Index}] = true
						}
					},
				})
				for key, ah := range allAH {
					if ah && missed[key] {
						t.Errorf("%s/%v: reference (bb%d,%d) classified always-hit in every context but missed concretely",
							b.Name, cfg, key.block, key.index)
					}
				}
			}
		}
	}
}

// TestPolicyOnFetchAccounting pins the OnFetch contract on a program with
// no prefetches: one callback per demand fetch, and the callback's
// hit/miss tally must reconcile with the aggregate Stats (stalls cannot
// occur without prefetchers, so callback misses equal Stats.Misses).
func TestPolicyOnFetchAccounting(t *testing.T) {
	par := wcet.Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}
	p := isa.Build("acct", isa.Loop(6, 4, isa.Code(10)), isa.Code(5))
	for _, pol := range policiesUnderTest(t) {
		cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 128, Policy: pol}
		var calls, misses int64
		st := Run(p, cfg, Options{Par: par, Seed: 3, Runs: 2, OnFetch: func(_ isa.InstrRef, hit bool) {
			calls++
			if !hit {
				misses++
			}
		}})
		if calls != st.Fetches {
			t.Errorf("%s: %d OnFetch calls for %d fetches", pol, calls, st.Fetches)
		}
		if misses != st.Misses {
			t.Errorf("%s: OnFetch saw %d misses, Stats counted %d", pol, misses, st.Misses)
		}
		if st.Stalls != 0 {
			t.Errorf("%s: %d stalls without prefetchers", pol, st.Stalls)
		}
	}
}
