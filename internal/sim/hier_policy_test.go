package sim

import (
	"context"
	"testing"

	"ucp/internal/absint"
	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/malardalen"
	"ucp/internal/wcet"
)

// hierPar prices the three fetch outcomes of a two-level hierarchy.
var hierPar = wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 10, L2HitCycles: 5}

// TestHierarchySoundnessCrossLayer extends the cross-layer soundness check
// to both levels of a hierarchy, per replacement policy per level: for
// every Mälardalen benchmark, a reference the abstract interpretation
// classifies always-hit at a level in EVERY VIVU context must never miss
// that level in any concrete execution. The L1 check exercises the L1
// domain under a live L2 underneath it; the L2 check exercises the
// CAC-filtered L2 domain against the simulator's demand-only L2 probes
// (OnFetch2 fires exactly when a demand fetch misses the L1).
func TestHierarchySoundnessCrossLayer(t *testing.T) {
	// One hierarchy per (policy, level) pairing: the policy under test
	// drives one level while the other stays LRU, so an unsound transfer
	// function is attributable to a single level.
	type variant struct {
		name string
		h    cache.Hierarchy
	}
	variants := func(pol cache.Policy) []variant {
		l1 := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256, Policy: pol}
		l2 := cache.Config{Assoc: 4, BlockBytes: 32, CapacityBytes: 1024, Policy: cache.LRU}
		atL1 := cache.Hierarchy{L1: l1, L2: l2}
		l1.Policy, l2.Policy = cache.LRU, pol
		atL2 := cache.Hierarchy{L1: l1, L2: l2}
		return []variant{{"l1-" + pol.String(), atL1}, {"l2-" + pol.String(), atL2}}
	}

	benches := malardalen.All()
	if testing.Short() {
		benches = benches[:8]
	}
	for _, pol := range policiesUnderTest(t) {
		for _, v := range variants(pol) {
			if err := v.h.Valid(); err != nil {
				t.Fatalf("%s: %v", v.name, err)
			}
			for _, b := range benches {
				res, err := wcet.AnalyzeHier(context.Background(), b.Prog, v.h, hierPar)
				if err != nil {
					t.Fatalf("%s/%s: %v", b.Name, v.name, err)
				}
				// A reference is provably always-hit at a level only when
				// every context that executes it agrees.
				type ref struct{ block, index int }
				joinAH := func(class [][]absint.Classification) map[ref]bool {
					all := map[ref]bool{}
					for _, xb := range res.X.Blocks {
						for i, cl := range class[xb.ID] {
							key := ref{xb.Orig, i}
							seen, ok := all[key]
							if !ok {
								seen = true
							}
							all[key] = seen && cl == absint.AlwaysHit
						}
					}
					return all
				}
				ahL1 := joinAH(res.AI.Class)
				ahL2 := joinAH(res.AI2.Class)

				missedL1 := map[ref]bool{}
				missedL2 := map[ref]bool{}
				RunHier(b.Prog, v.h, Options{
					Par:  hierPar,
					Seed: 13,
					Runs: 3,
					OnFetch: func(r isa.InstrRef, hit bool) {
						if !hit {
							missedL1[ref{r.Block, r.Index}] = true
						}
					},
					OnFetch2: func(r isa.InstrRef, hit bool) {
						if !hit {
							missedL2[ref{r.Block, r.Index}] = true
						}
					},
				})
				for key, ah := range ahL1 {
					if ah && missedL1[key] {
						t.Errorf("%s/%s: reference (bb%d,%d) always-hit at L1 in every context but missed the L1 concretely",
							b.Name, v.name, key.block, key.index)
					}
				}
				for key, ah := range ahL2 {
					if ah && missedL2[key] {
						t.Errorf("%s/%s: reference (bb%d,%d) always-hit at L2 in every context but missed the L2 concretely",
							b.Name, v.name, key.block, key.index)
					}
				}
			}
		}
	}
}

// TestHierarchyOnFetch2Accounting pins the OnFetch2 contract: one callback
// per L2 probe (demand fetches that miss the L1), and its hit/miss tally
// must reconcile with the aggregate L2 Stats on a prefetch-free program.
func TestHierarchyOnFetch2Accounting(t *testing.T) {
	p := isa.Build("acct2", isa.Loop(6, 4, isa.Code(30)), isa.Code(9))
	for _, pol := range policiesUnderTest(t) {
		h := cache.Hierarchy{
			L1: cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 64, Policy: pol},
			L2: cache.Config{Assoc: 2, BlockBytes: 32, CapacityBytes: 256, Policy: pol},
		}
		var calls, hits, misses int64
		st := RunHier(p, h, Options{Par: hierPar, Seed: 3, Runs: 2, OnFetch2: func(_ isa.InstrRef, hit bool) {
			calls++
			if hit {
				hits++
			} else {
				misses++
			}
		}})
		if calls != st.L2Hits+st.L2Misses {
			t.Errorf("%s: %d OnFetch2 calls for %d L2 accesses", pol, calls, st.L2Hits+st.L2Misses)
		}
		if hits != st.L2Hits || misses != st.L2Misses {
			t.Errorf("%s: OnFetch2 saw %d/%d hit/miss, Stats counted %d/%d",
				pol, hits, misses, st.L2Hits, st.L2Misses)
		}
		if calls != st.Misses {
			t.Errorf("%s: L2 probes (%d) do not equal L1 misses (%d) on a prefetch-free program", pol, calls, st.Misses)
		}
	}
}
