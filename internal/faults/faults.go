// Package faults is a deterministic fault-injection harness for the
// analysis execution layer. Hook points in the worker pool, the service,
// the sweep engine, and the solvers call Fire with a site name and a key
// (a cell index, a program name, or "" when the site has no natural
// identity); when a matching rule is armed, the hook panics, delays,
// hangs until cancellation, or returns an injected error — exactly where
// a real pathological analysis would misbehave.
//
// The harness is disarmed by default and costs one atomic load per hook.
// It arms only through Arm (tests) or the UCP_FAULTS environment variable
// (CI matrix entries and manual chaos runs), so production binaries never
// trip a fault by accident.
//
// Rule syntax (comma- or semicolon-separated list):
//
//	site:key=action[@count]
//
// where key is an exact match or "*", count bounds how often the rule
// fires (default: unlimited), and action is one of
//
//	panic        panic at the hook
//	err          return an injected error
//	cancel       return a typed interrupt.ErrCanceled error
//	delay:<dur>  sleep for <dur> (aborted early by context cancellation)
//	hang         block until the hook's context is canceled — the
//	             infinite-loop equivalent for timeout and drain tests
//	exit[:code]  terminate the process immediately (default code 1) — the
//	             crashed-replica equivalent for distributed failover tests;
//	             pair with @count to let a few cells through first
//
// Example:
//
//	UCP_FAULTS='pool.task:3=panic,experiment.cell:*=delay:50ms@2'
//
// Sites currently wired: pool.task (key = task index), service.analyze
// (key = program name), experiment.cell (key = program/config/tech),
// worker.cell (key = program/config/tech, fired by the worker replica's
// cell endpoint), absint.round (key = "", one hook per cyclic-component
// restart round), journal.append (key = job ID, fired before every job
// journal write), trace.append (key = trace ID, fired before every trace
// sink write), and dist.probe (key = worker URL, fired by the
// coordinator's health prober — arming it "kills" a worker from the
// prober's point of view without touching the real server).
package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"ucp/internal/interrupt"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// KindPanic panics at the hook.
	KindPanic Kind = iota
	// KindErr returns a generic injected error.
	KindErr
	// KindCancel returns a typed interrupt.ErrCanceled error.
	KindCancel
	// KindDelay sleeps for the rule's duration (context-interruptible).
	KindDelay
	// KindHang blocks until the hook's context is canceled.
	KindHang
	// KindExit terminates the process with the rule's exit code — a
	// worker replica crashing mid-cell, as far as a coordinator can tell.
	KindExit
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindErr:
		return "err"
	case KindCancel:
		return "cancel"
	case KindDelay:
		return "delay"
	case KindHang:
		return "hang"
	case KindExit:
		return "exit"
	default:
		return fmt.Sprintf("Kind(%d)", k)
	}
}

// rule is one armed fault.
type rule struct {
	key       string // exact key or "*"
	kind      Kind
	delay     time.Duration
	exitCode  int
	remaining int64 // fires left; < 0 = unlimited
}

var (
	armed atomic.Bool
	mu    sync.Mutex
	rules map[string][]*rule // site -> rules, matched in spec order
	fired map[string]int64   // site -> hooks that actually injected
)

func init() {
	if spec := os.Getenv("UCP_FAULTS"); spec != "" {
		if err := Arm(spec); err != nil {
			// A typo'd fault spec must not silently run a chaos test
			// without its faults; fail loudly at startup.
			panic(fmt.Sprintf("faults: bad UCP_FAULTS: %v", err))
		}
	}
}

// Armed reports whether any fault rules are installed.
func Armed() bool { return armed.Load() }

// Arm parses spec and installs its rules, replacing any previous set.
func Arm(spec string) error {
	parsed, err := parse(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	rules = parsed
	fired = map[string]int64{}
	mu.Unlock()
	armed.Store(len(parsed) > 0)
	return nil
}

// Disarm removes every rule. Tests pair Arm with t.Cleanup(faults.Disarm).
func Disarm() {
	mu.Lock()
	rules = nil
	fired = nil
	mu.Unlock()
	armed.Store(false)
}

// Count returns how many times hooks at site actually injected a fault.
func Count(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return fired[site]
}

// parse builds the rule table from the spec grammar above.
func parse(spec string) (map[string][]*rule, error) {
	out := map[string][]*rule{}
	for _, ent := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		lhs, action, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q: want site:key=action", ent)
		}
		site, key, ok := strings.Cut(lhs, ":")
		if !ok || site == "" || key == "" {
			return nil, fmt.Errorf("faults: %q: want site:key before '='", ent)
		}
		r := &rule{key: key, remaining: -1}
		if action, cnt, ok := strings.Cut(action, "@"); ok {
			n, err := strconv.ParseInt(cnt, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("faults: %q: bad count %q", ent, cnt)
			}
			r.remaining = n
			_ = action
		}
		action, _, _ = strings.Cut(action, "@")
		name, param, _ := strings.Cut(action, ":")
		switch name {
		case "panic":
			r.kind = KindPanic
		case "err":
			r.kind = KindErr
		case "cancel":
			r.kind = KindCancel
		case "hang":
			r.kind = KindHang
		case "delay":
			d, err := time.ParseDuration(param)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: %q: bad delay %q", ent, param)
			}
			r.kind, r.delay = KindDelay, d
		case "exit":
			code := 1
			if param != "" {
				n, err := strconv.Atoi(param)
				if err != nil || n < 0 || n > 255 {
					return nil, fmt.Errorf("faults: %q: bad exit code %q", ent, param)
				}
				code = n
			}
			r.kind, r.exitCode = KindExit, code
		default:
			return nil, fmt.Errorf("faults: %q: unknown action %q", ent, name)
		}
		out[site] = append(out[site], r)
	}
	return out, nil
}

// Fire is the hook entry point. When a rule matches (site, key) it injects
// the rule's fault: KindPanic panics, KindDelay sleeps (aborted early and
// reported as a typed cancellation if ctx is done first), KindHang blocks
// until ctx is done and returns the typed cancellation, and KindErr /
// KindCancel return their errors. Disarmed, it is a single atomic load.
func Fire(ctx context.Context, site, key string) error {
	if !armed.Load() {
		return nil
	}
	r := match(site, key)
	if r == nil {
		return nil
	}
	switch r.kind {
	case KindPanic:
		panic(fmt.Sprintf("faults: injected panic at %s:%s", site, key))
	case KindErr:
		return fmt.Errorf("faults: injected error at %s:%s", site, key)
	case KindCancel:
		return fmt.Errorf("%w: faults: injected cancellation at %s:%s", interrupt.ErrCanceled, site, key)
	case KindDelay:
		t := time.NewTimer(r.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return interrupt.Cause(ctx)
		}
	case KindHang:
		<-ctx.Done()
		return interrupt.Cause(ctx)
	case KindExit:
		// A crash, not a shutdown: no drain, no flush, no goodbye. The
		// coordinator's failover path is the thing under test.
		fmt.Fprintf(os.Stderr, "faults: injected exit(%d) at %s:%s\n", r.exitCode, site, key)
		os.Exit(r.exitCode)
	}
	return nil
}

// match finds the first live rule for (site, key), consumes one fire from
// its budget, and records the injection.
func match(site, key string) *rule {
	mu.Lock()
	defer mu.Unlock()
	for _, r := range rules[site] {
		if r.key != "*" && r.key != key {
			continue
		}
		if r.remaining == 0 {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		fired[site]++
		return r
	}
	return nil
}
