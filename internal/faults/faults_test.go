package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"ucp/internal/interrupt"
)

func arm(t *testing.T, spec string) {
	t.Helper()
	if err := Arm(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Disarm)
}

func TestDisarmedIsNoop(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() after Disarm")
	}
	if err := Fire(context.Background(), "pool.task", "0"); err != nil {
		t.Fatalf("disarmed Fire = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"nonsense",
		"site=panic",          // missing key
		"site:key=frobnicate", // unknown action
		"site:key=delay:xyz",  // bad duration
		"site:key=panic@zero", // bad count
		"site:key=panic@0",    // non-positive count
		"site:key=delay:-5ms", // negative delay
		"site:key=exit:x",     // bad exit code
		"site:key=exit:-1",    // negative exit code
		"site:key=exit:300",   // exit code out of range
		"site:key",            // no action at all
	} {
		if err := Arm(spec); err == nil {
			Disarm()
			t.Errorf("Arm(%q) accepted a bad spec", spec)
		}
	}
}

// TestExitParses checks the exit action's grammar without firing it — an
// injected os.Exit would take the test binary with it; the end-to-end kill
// is exercised by the two-process coordinator/worker smoke test in CI.
func TestExitParses(t *testing.T) {
	arm(t, "worker.cell:*=delay:1ms@2,worker.cell:*=exit:7")
	mu.Lock()
	defer mu.Unlock()
	rs := rules["worker.cell"]
	if len(rs) != 2 {
		t.Fatalf("rules = %d, want 2", len(rs))
	}
	if rs[0].kind != KindDelay || rs[0].remaining != 2 {
		t.Errorf("rule 0 = %v@%d, want delay@2", rs[0].kind, rs[0].remaining)
	}
	if rs[1].kind != KindExit || rs[1].exitCode != 7 {
		t.Errorf("rule 1 = %v code %d, want exit code 7", rs[1].kind, rs[1].exitCode)
	}
	if KindExit.String() != "exit" {
		t.Errorf("KindExit.String() = %q", KindExit.String())
	}
}

func TestErrAndCancelInjection(t *testing.T) {
	arm(t, "a:k1=err,a:k2=cancel")
	if err := Fire(context.Background(), "a", "k1"); err == nil || interrupt.Is(err) {
		t.Errorf("err action: got %v, want plain injected error", err)
	}
	if err := Fire(context.Background(), "a", "k2"); !errors.Is(err, interrupt.ErrCanceled) {
		t.Errorf("cancel action: got %v, want ErrCanceled", err)
	}
	if err := Fire(context.Background(), "a", "other"); err != nil {
		t.Errorf("unmatched key fired: %v", err)
	}
	if err := Fire(context.Background(), "b", "k1"); err != nil {
		t.Errorf("unmatched site fired: %v", err)
	}
	if got := Count("a"); got != 2 {
		t.Errorf("Count(a) = %d, want 2", got)
	}
}

func TestPanicInjection(t *testing.T) {
	arm(t, "boom:*=panic")
	defer func() {
		if recover() == nil {
			t.Error("panic action did not panic")
		}
	}()
	Fire(context.Background(), "boom", "anything")
}

func TestCountBudget(t *testing.T) {
	arm(t, "a:*=err@2")
	ctx := context.Background()
	if Fire(ctx, "a", "x") == nil || Fire(ctx, "a", "y") == nil {
		t.Fatal("budgeted rule must fire twice")
	}
	if err := Fire(ctx, "a", "z"); err != nil {
		t.Fatalf("exhausted rule fired again: %v", err)
	}
	if got := Count("a"); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func TestDelayRespectsContext(t *testing.T) {
	arm(t, "slow:*=delay:30s")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Fire(ctx, "slow", "cell")
	if !errors.Is(err, interrupt.ErrCanceled) {
		t.Fatalf("interrupted delay: got %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay ignored cancellation (%v)", elapsed)
	}
}

func TestHangUntilDeadline(t *testing.T) {
	arm(t, "loop:*=hang")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := Fire(ctx, "loop", "")
	if !errors.Is(err, interrupt.ErrDeadline) {
		t.Fatalf("hang under deadline: got %v, want ErrDeadline", err)
	}
}

func TestShortDelayCompletes(t *testing.T) {
	arm(t, "slow:*=delay:1ms")
	if err := Fire(context.Background(), "slow", "x"); err != nil {
		t.Fatalf("completed delay returned %v", err)
	}
}
