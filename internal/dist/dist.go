// Package dist fans sweep cells out across worker replicas of the
// analysis service. A Coordinator satisfies experiment.CellExec — the
// remote-execution seam — by POSTing each cell to a worker's
// /v1/worker/cell endpoint, so experiment.Sweep, the batch API, and
// ucp-bench become distributed by swapping one function value and nothing
// about their determinism changes: results land by index, output stays
// byte-identical to a local run.
//
// The failure model is crash-stop workers behind an unreliable network.
// Health is managed actively: each worker sits behind a three-state
// circuit breaker (closed → open on consecutive failures, open → half-open
// after a cooldown or a successful probe, half-open → closed on the next
// success), and an optional background prober GETs every worker's /readyz
// on an interval so a dead or saturated replica is ejected within one
// probe period instead of after it has eaten a cell. Transient failures
// (transport errors, 5xx) are retried on another replica with jittered
// exponential backoff; 4xx responses are permanent (the request itself is
// wrong; another replica would answer the same); context cancellation
// stops retrying immediately. Straggler cells can be hedged: after a
// p99-based delay the cell is re-issued to a second healthy worker, the
// first result wins, and the loser is canceled — results are
// deterministic, so hedging never changes an answer.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucp/internal/cache"
	"ucp/internal/energy"
	"ucp/internal/experiment"
	"ucp/internal/faults"
	"ucp/internal/interrupt"
	"ucp/internal/malardalen"
	"ucp/internal/obs"
)

// Options configures a Coordinator.
type Options struct {
	// Workers lists worker base URLs ("http://host:port"); at least one is
	// required. Trailing slashes are trimmed.
	Workers []string
	// Client issues the cell requests (nil = a dedicated client with no
	// global timeout — per-cell bounds come from the request context).
	Client *http.Client
	// MaxAttempts bounds tries per cell across all workers (0 = 4).
	MaxAttempts int
	// Backoff is the first retry's base delay; it doubles per attempt and
	// is jittered uniformly over [d/2, 3d/2) so synchronized retriers do
	// not thunder onto a recovering worker in lockstep (0 = 50ms).
	Backoff time.Duration
	// Cooldown is how long an open breaker holds before the worker is
	// allowed one half-open trial (0 = 1s). Open workers are still used
	// when every worker is open — a degraded replica beats failing the
	// sweep.
	Cooldown time.Duration
	// FailureThreshold is the consecutive-failure count that trips a
	// closed breaker open (0 = 3). A failure during half-open reopens
	// immediately regardless.
	FailureThreshold int
	// ProbeInterval enables the background health prober: every interval,
	// each worker's /readyz is checked; a failure opens its breaker at
	// once, a success walks it open → half-open → closed. Zero disables
	// probing (breakers are then driven by cell traffic alone). Stop the
	// prober with Close.
	ProbeInterval time.Duration
	// Hedge enables hedged dispatch: a cell still unanswered after the
	// hedge delay is re-issued to a second healthy worker; the first
	// result wins and the loser's request is canceled.
	Hedge bool
	// HedgeDelay fixes the hedge delay. Zero means adaptive: the p99 of
	// recent cell latencies (once minHedgeSamples have been observed, with
	// a floor of minHedgeDelay) — only genuine stragglers get hedged.
	HedgeDelay time.Duration
}

// Cell-level counters are process-global (one coordinator per process in
// practice; tests read deltas), matching the pool's panic counter.
var (
	distCells = obs.NewCounter("ucp_dist_cells_total",
		"Cells dispatched to workers (completed, all attempts counted once).")
	distRetries = obs.NewCounter("ucp_dist_retries_total",
		"Cell attempts retried after a worker failure.")
	distWorkerFailures = obs.NewCounterVec("ucp_dist_worker_failures_total",
		"Transport errors and 5xx responses, by worker.", "worker")
	distHedges = obs.NewCounter("ucp_dist_hedges_total",
		"Straggler cells re-issued to a second worker (hedged dispatch).")
	distCellSeconds = obs.NewHistogramVec("ucp_dist_cell_seconds",
		"Successful cell dispatch latency by worker, in seconds.", "worker", nil, nil)
)

// breakerState is a worker's circuit-breaker position. The numeric values
// are the ucp_dist_breaker_state gauge encoding — monotone in badness.
type breakerState int

const (
	breakerClosed   breakerState = 0 // healthy, full traffic
	breakerHalfOpen breakerState = 1 // cooled down or probe-recovered: one trial allowed
	breakerOpen     breakerState = 2 // ejected; selection avoids it
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// worker is one replica plus its selection and breaker state.
type worker struct {
	url string

	mu       sync.Mutex
	inflight int
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	trial    bool      // a half-open trial is in flight
}

// effState returns the effective breaker state: an open breaker whose
// cooldown has elapsed counts as half-open (one trial allowed) without
// waiting for a probe to promote it. Caller holds w.mu.
func (w *worker) effStateLocked(now time.Time, cooldown time.Duration) breakerState {
	if w.state == breakerOpen && now.Sub(w.openedAt) >= cooldown {
		return breakerHalfOpen
	}
	return w.state
}

func (w *worker) effState(now time.Time, cooldown time.Duration) breakerState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.effStateLocked(now, cooldown)
}

// onSuccess closes the breaker: any successful cell or probe proves the
// worker back.
func (w *worker) onSuccess() {
	w.mu.Lock()
	w.state = breakerClosed
	w.fails = 0
	w.trial = false
	w.mu.Unlock()
}

// onFailure advances the breaker on one transient cell failure: a closed
// breaker opens after threshold consecutive failures; a half-open trial
// failing — or any failure while open — (re)opens immediately.
func (w *worker) onFailure(now time.Time, cooldown time.Duration, threshold int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch w.effStateLocked(now, cooldown) {
	case breakerClosed:
		w.fails++
		if w.fails >= threshold {
			w.state = breakerOpen
			w.openedAt = now
			w.trial = false
		}
	default: // half-open trial failed, or already open: (re)start the clock
		w.state = breakerOpen
		w.openedAt = now
		w.fails = 0
		w.trial = false
	}
}

// onProbeFailure ejects the worker immediately — a failed readiness probe
// is authoritative, no threshold applies.
func (w *worker) onProbeFailure(now time.Time) {
	w.mu.Lock()
	w.state = breakerOpen
	w.openedAt = now
	w.fails = 0
	w.trial = false
	w.mu.Unlock()
}

// onProbeSuccess walks the breaker one step toward closed: open →
// half-open (the probe proves liveness; one real cell must still succeed),
// half-open → closed, closed stays closed with the failure streak reset.
func (w *worker) onProbeSuccess(now time.Time, cooldown time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch w.effStateLocked(now, cooldown) {
	case breakerOpen:
		w.state = breakerHalfOpen
		w.trial = false
	case breakerHalfOpen:
		w.state = breakerClosed
		w.fails = 0
		w.trial = false
	default:
		w.fails = 0
	}
}

func (w *worker) release() {
	w.mu.Lock()
	w.inflight--
	w.mu.Unlock()
}

// Coordinator distributes cells over the configured workers. Its Exec
// method is an experiment.CellExec. Close stops the background prober (a
// no-op when none was configured).
type Coordinator struct {
	client      *http.Client
	workers     []*worker
	maxAttempts int
	backoff     time.Duration
	cooldown    time.Duration
	threshold   int
	hedge       bool
	hedgeDelay  time.Duration
	rr          atomic.Uint64 // rotates tie-breaking across workers
	lat         latencyWindow

	stopProbe context.CancelFunc
	probeDone chan struct{}
}

// New validates the options and builds a Coordinator.
func New(o Options) (*Coordinator, error) {
	if len(o.Workers) == 0 {
		return nil, fmt.Errorf("dist: no workers configured")
	}
	c := &Coordinator{
		client:      o.Client,
		maxAttempts: o.MaxAttempts,
		backoff:     o.Backoff,
		cooldown:    o.Cooldown,
		threshold:   o.FailureThreshold,
		hedge:       o.Hedge,
		hedgeDelay:  o.HedgeDelay,
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = 4
	}
	if c.backoff <= 0 {
		c.backoff = 50 * time.Millisecond
	}
	if c.cooldown <= 0 {
		c.cooldown = time.Second
	}
	if c.threshold <= 0 {
		c.threshold = 3
	}
	for _, u := range o.Workers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("dist: empty worker URL")
		}
		c.workers = append(c.workers, &worker{url: u})
	}
	// The gauge pulls from this coordinator; re-registration rebinds, so
	// the newest coordinator in a process owns the family.
	obs.NewGaugeVecFunc("ucp_dist_breaker_state",
		"Per-worker circuit-breaker state (0 closed, 1 half-open, 2 open).",
		"worker", c.breakerStates)
	if o.ProbeInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		c.stopProbe = cancel
		c.probeDone = make(chan struct{})
		go c.probeLoop(ctx, o.ProbeInterval)
	}
	return c, nil
}

// Close stops the background health prober and waits for it to exit. Safe
// to call when no prober runs, and more than once.
func (c *Coordinator) Close() {
	if c.stopProbe == nil {
		return
	}
	c.stopProbe()
	<-c.probeDone
}

// breakerStates snapshots every worker's effective breaker state for the
// ucp_dist_breaker_state gauge (and tests).
func (c *Coordinator) breakerStates() []obs.Sample {
	now := time.Now()
	out := make([]obs.Sample, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, obs.Sample{Label: w.url, Value: float64(w.effState(now, c.cooldown))})
	}
	return out
}

// probeLoop drives the health prober: one immediate round, then one per
// tick, until Close.
func (c *Coordinator) probeLoop(ctx context.Context, every time.Duration) {
	defer close(c.probeDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		for _, w := range c.workers {
			c.probe(ctx, w, every)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// probe checks one worker's /readyz and drives its breaker: failure (or an
// injected "dist.probe" fault, keyed by worker URL) opens it immediately;
// success walks it open → half-open → closed. A readyz 503 — draining or
// saturated — counts as failure: the replica asked not to receive work.
func (c *Coordinator) probe(ctx context.Context, w *worker, every time.Duration) {
	timeout := every
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	if err := faults.Fire(pctx, "dist.probe", w.url); err != nil {
		w.onProbeFailure(time.Now())
		return
	}
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.url+"/readyz", nil)
	if err != nil {
		w.onProbeFailure(time.Now())
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // Close raced the probe; not the worker's fault
		}
		w.onProbeFailure(time.Now())
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBody))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		w.onProbeSuccess(time.Now(), c.cooldown)
	} else {
		w.onProbeFailure(time.Now())
	}
}

// cellRequest mirrors the worker endpoint's wire format
// (service.workerCellRequest).
type cellRequest struct {
	Program          string         `json:"program"`
	Config           string         `json:"config"`
	Tech             string         `json:"tech"`
	Policy           string         `json:"policy,omitempty"`
	Runs             int            `json:"runs,omitempty"`
	ValidationBudget int            `json:"validation_budget,omitempty"`
	L2               *cellL2Request `json:"l2,omitempty"`
	SkipReduced      bool           `json:"skip_reduced,omitempty"`
	Explain          bool           `json:"explain,omitempty"`
}

// cellL2Request mirrors service.L2Request: the optional second cache level
// of a hierarchy cell.
type cellL2Request struct {
	Assoc         int    `json:"assoc"`
	BlockBytes    int    `json:"block_bytes"`
	CapacityBytes int    `json:"capacity_bytes"`
	Policy        string `json:"policy,omitempty"`
}

// cellResponse mirrors the worker endpoint's response envelope
// (service.workerCellResponse): the measured cell plus, when the dispatch
// carried a traceparent, the worker's serialized span tree for stitching.
type cellResponse struct {
	Cell  experiment.Cell `json:"cell"`
	Trace *obs.SpanTree   `json:"trace,omitempty"`
}

// permanentError is a worker answer that retrying cannot change.
type permanentError struct {
	status int
	body   string
}

func (e *permanentError) Error() string {
	return fmt.Sprintf("worker rejected cell (%d): %s", e.status, e.body)
}

// Exec ships one cell to a worker and returns its measurement. It is the
// experiment.CellExec implementation: breaker-healthiest least-loaded
// worker first, jittered exponential backoff across replicas on transient
// failure, optional hedging for stragglers.
func (c *Coordinator) Exec(ctx context.Context, b malardalen.Benchmark, cfgIdx int, tech energy.Tech, o experiment.Options) (experiment.Cell, error) {
	ctx, span := obs.Start(ctx, "dist.cell")
	span.Attr("program", b.Name)
	span.Attr("config", cache.ConfigID(cfgIdx))
	defer span.End()

	req := cellRequest{
		Program:          b.Name,
		Config:           cache.ConfigID(cfgIdx),
		Tech:             tech.String(),
		Policy:           o.Policy.String(),
		Runs:             o.Runs,
		ValidationBudget: o.ValidationBudget,
		SkipReduced:      o.SkipReduced,
		Explain:          o.Explain,
	}
	if o.L2 != (cache.Config{}) {
		req.L2 = &cellL2Request{
			Assoc:         o.L2.Assoc,
			BlockBytes:    o.L2.BlockBytes,
			CapacityBytes: o.L2.CapacityBytes,
			Policy:        o.L2.Policy.String(),
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return experiment.Cell{}, err
	}

	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			distRetries.Inc()
			span.Attr("retries", attempt)
			// Jittered exponential backoff, interruptible: a canceled sweep
			// must not sit out its backoff before noticing.
			t := time.NewTimer(c.retryDelay(attempt))
			select {
			case <-ctx.Done():
				t.Stop()
				return experiment.Cell{}, interrupt.Cause(ctx)
			case <-t.C:
			}
		}
		if err := ctx.Err(); err != nil {
			return experiment.Cell{}, interrupt.Cause(ctx)
		}

		cell, err := c.attempt(ctx, body, attempt)
		if err == nil {
			distCells.Inc()
			return cell, nil
		}
		if interrupt.Is(err) || ctx.Err() != nil {
			return experiment.Cell{}, interrupt.Wrap(err)
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return experiment.Cell{}, err
		}
		lastErr = err
	}
	return experiment.Cell{}, fmt.Errorf("dist: cell %s/%s/%s failed after %d attempts: %w",
		b.Name, cache.ConfigID(cfgIdx), tech, c.maxAttempts, lastErr)
}

// retryDelay is the backoff before attempt n (n >= 1): the base doubles
// per attempt and the result is spread uniformly over [d/2, 3d/2), so a
// herd of cells that failed together does not retry together.
func (c *Coordinator) retryDelay(attempt int) time.Duration {
	d := c.backoff << (attempt - 1)
	return d/2 + rand.N(d)
}

// settle does the failure/success accounting for one post against one
// worker: success closes the breaker and feeds the latency window;
// transient failure advances it. Permanent (4xx) answers and interrupts
// are not the worker's fault.
func (c *Coordinator) settle(w *worker, err error, elapsed time.Duration) {
	if err == nil {
		w.onSuccess()
		c.lat.observe(elapsed)
		distCellSeconds.With(w.url).Observe(elapsed.Seconds())
		return
	}
	if interrupt.Is(err) {
		return
	}
	var perm *permanentError
	if errors.As(err, &perm) {
		return
	}
	distWorkerFailures.With(w.url).Inc()
	w.onFailure(time.Now(), c.cooldown, c.threshold)
}

// attempt runs one (possibly hedged) dispatch. Without hedging it is a
// single pick-post-settle. With hedging, a cell still unanswered after the
// hedge delay is raced against a second healthy worker on a shared
// cancelable context: the first success cancels the other request, whose
// canceled error is never charged to its worker.
func (c *Coordinator) attempt(ctx context.Context, body []byte, attemptNo int) (experiment.Cell, error) {
	w := c.pick(nil)
	start := time.Now()
	delay, hedge := c.hedgeAfter()
	if !hedge {
		cell, err := c.dispatch(ctx, w, body, attemptNo, false)
		c.settle(w, err, time.Since(start))
		return cell, err
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser once a winner returns

	type outcome struct {
		cell experiment.Cell
		err  error
		w    *worker
	}
	ch := make(chan outcome, 2)
	launch := func(lw *worker, hedged bool) {
		go func() {
			cell, err := c.dispatch(actx, lw, body, attemptNo, hedged)
			ch <- outcome{cell: cell, err: err, w: lw}
		}()
	}
	launch(w, false)
	pending := 1
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var lastErr error
	for {
		select {
		case <-timer.C:
			if w2 := c.pickHealthy(w); w2 != nil {
				distHedges.Inc()
				pending++
				launch(w2, true)
			}
		case o := <-ch:
			pending--
			if o.err == nil {
				c.settle(o.w, nil, time.Since(start))
				return o.cell, nil
			}
			if interrupt.Is(o.err) && ctx.Err() == nil && actx.Err() != nil {
				// The hedge race canceled this attempt after its sibling won;
				// that branch returned already. Reaching here means the
				// sibling lost too — treat as transient, not worker fault.
				lastErr = o.err
			} else {
				c.settle(o.w, o.err, 0)
				var perm *permanentError
				if errors.As(o.err, &perm) || interrupt.Is(o.err) || ctx.Err() != nil {
					return experiment.Cell{}, o.err
				}
				lastErr = o.err
			}
			if pending == 0 {
				return experiment.Cell{}, lastErr
			}
		case <-ctx.Done():
			return experiment.Cell{}, interrupt.Cause(ctx)
		}
	}
}

// hedgeAfter decides whether this dispatch hedges and after how long:
// never with hedging off or fewer than two workers; at the fixed
// HedgeDelay when configured; otherwise at the p99 of recent latencies
// once the window has enough samples to mean something.
func (c *Coordinator) hedgeAfter() (time.Duration, bool) {
	if !c.hedge || len(c.workers) < 2 {
		return 0, false
	}
	if c.hedgeDelay > 0 {
		return c.hedgeDelay, true
	}
	d, ok := c.lat.p99()
	if !ok {
		return 0, false
	}
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	return d, true
}

// pick selects the worker with the best (breaker state, inflight) pair:
// closed beats half-open beats open, fewest in-flight cells within a
// class; when every worker is open, the least-loaded one is used anyway.
// Ties rotate round-robin so a serial caller still spreads cells across
// replicas instead of pinning the first URL. A half-open worker admits
// only one trial at a time — a second pick ranks it as open. The returned
// worker's inflight count is already incremented; post releases it.
// exclude (may be nil) is skipped — the hedge must find a different
// worker.
func (c *Coordinator) pick(exclude *worker) *worker {
	now := time.Now()
	off := int(c.rr.Add(1)) % len(c.workers)
	var best *worker
	var bestState breakerState
	bestLoad := 0
	for i := range c.workers {
		w := c.workers[(off+i)%len(c.workers)]
		if w == exclude {
			continue
		}
		w.mu.Lock()
		st := w.effStateLocked(now, c.cooldown)
		if st == breakerHalfOpen && w.trial {
			st = breakerOpen // trial slot taken; treat as ejected for now
		}
		load := w.inflight
		w.mu.Unlock()
		if best == nil || st < bestState || (st == bestState && load < bestLoad) {
			best, bestState, bestLoad = w, st, load
		}
	}
	if best == nil {
		return nil
	}
	best.mu.Lock()
	best.inflight++
	if best.effStateLocked(now, c.cooldown) == breakerHalfOpen {
		best.trial = true
	}
	best.mu.Unlock()
	return best
}

// pickHealthy returns a closed-breaker worker other than exclude (the
// hedge target), or nil when none qualifies — hedging onto a sick worker
// would amplify load exactly when it hurts most.
func (c *Coordinator) pickHealthy(exclude *worker) *worker {
	now := time.Now()
	off := int(c.rr.Add(1)) % len(c.workers)
	var best *worker
	bestLoad := 0
	for i := range c.workers {
		w := c.workers[(off+i)%len(c.workers)]
		if w == exclude {
			continue
		}
		w.mu.Lock()
		st := w.effStateLocked(now, c.cooldown)
		load := w.inflight
		w.mu.Unlock()
		if st != breakerClosed {
			continue
		}
		if best == nil || load < bestLoad {
			best, bestLoad = w, load
		}
	}
	if best != nil {
		best.mu.Lock()
		best.inflight++
		best.mu.Unlock()
	}
	return best
}

// maxErrorBody bounds how much of a worker error response is kept for the
// error message.
const maxErrorBody = 4 << 10

// dispatch runs one post under a "dist.attempt" span, so retries and
// hedges appear as sibling spans under the cell's dispatch span, tagged
// with the attempt ordinal and whether this is the hedged duplicate. The
// worker's returned span tree (present when the request carried a
// traceparent) is grafted under the attempt span — the stitch that makes
// one trace span both processes.
func (c *Coordinator) dispatch(ctx context.Context, w *worker, body []byte, attemptNo int, hedged bool) (experiment.Cell, error) {
	ctx, sp := obs.Start(ctx, "dist.attempt")
	sp.Attr("worker", w.url)
	sp.Attr("attempt", attemptNo)
	sp.Attr("hedge", hedged)
	defer sp.End()
	cell, tree, err := c.post(ctx, w, body)
	if err != nil {
		sp.Attr("error", true)
	}
	sp.AttachTree(tree)
	return cell, err
}

// post performs one attempt against one worker. The current span identity
// and request ID travel with the request (traceparent / X-Request-Id), so
// the worker's trace and logs correlate with the coordinator's.
func (c *Coordinator) post(ctx context.Context, w *worker, body []byte) (experiment.Cell, *obs.SpanTree, error) {
	defer w.release()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.url+"/v1/worker/cell", bytes.NewReader(body))
	if err != nil {
		return experiment.Cell{}, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := obs.Traceparent(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	if rid := obs.RequestIDFrom(ctx); rid != "" {
		req.Header.Set("X-Request-Id", rid)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return experiment.Cell{}, nil, interrupt.Cause(ctx)
		}
		return experiment.Cell{}, nil, fmt.Errorf("dist: %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var env cellResponse
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			// A torn response (worker died mid-write) is transient: the
			// cell is deterministic, another replica recomputes it.
			return experiment.Cell{}, nil, fmt.Errorf("dist: %s: decode cell: %w", w.url, err)
		}
		return env.Cell, env.Trace, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return experiment.Cell{}, nil, &permanentError{status: resp.StatusCode, body: strings.TrimSpace(string(msg))}
	default:
		// 5xx: the worker is draining, overloaded, or broke on this cell;
		// 503/504 in particular mean "try a sibling".
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return experiment.Cell{}, nil, fmt.Errorf("dist: %s: status %d: %s",
			w.url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

// minHedgeSamples is how many completed cells the latency window needs
// before an adaptive p99 is trusted; minHedgeDelay floors the delay so a
// burst of cache-hit-fast cells cannot make hedging fire on everything.
const (
	minHedgeSamples = 8
	minHedgeDelay   = 25 * time.Millisecond
	latWindowSize   = 128
)

// latencyWindow is a bounded ring of recent cell latencies feeding the
// adaptive hedge delay.
type latencyWindow struct {
	mu   sync.Mutex
	ring [latWindowSize]time.Duration
	pos  int
	n    int
}

func (l *latencyWindow) observe(d time.Duration) {
	l.mu.Lock()
	l.ring[l.pos] = d
	l.pos = (l.pos + 1) % latWindowSize
	if l.n < latWindowSize {
		l.n++
	}
	l.mu.Unlock()
}

// p99 is the nearest-rank 99th percentile over the window; ok is false
// until minHedgeSamples observations exist.
func (l *latencyWindow) p99() (time.Duration, bool) {
	l.mu.Lock()
	if l.n < minHedgeSamples {
		l.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, l.n)
	copy(buf, l.ring[:l.n])
	l.mu.Unlock()
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	rank := (99*len(buf) + 99) / 100 // ceil(0.99n), 1-based nearest rank
	if rank > len(buf) {
		rank = len(buf)
	}
	return buf[rank-1], true
}
