// Package dist fans sweep cells out across worker replicas of the
// analysis service. A Coordinator satisfies experiment.CellExec — the
// remote-execution seam — by POSTing each cell to a worker's
// /v1/worker/cell endpoint, so experiment.Sweep, the batch API, and
// ucp-bench become distributed by swapping one function value and nothing
// about their determinism changes: results land by index, output stays
// byte-identical to a local run.
//
// The failure model is crash-stop workers behind an unreliable network:
// transport errors and 5xx responses are retried on another replica with
// exponential backoff, the failing worker sits out a cooldown, and only
// when every attempt is exhausted does the cell — and with it the sweep —
// fail. 4xx responses are permanent (the request itself is wrong; another
// replica would answer the same), and context cancellation stops retrying
// immediately.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucp/internal/cache"
	"ucp/internal/energy"
	"ucp/internal/experiment"
	"ucp/internal/interrupt"
	"ucp/internal/malardalen"
	"ucp/internal/obs"
)

// Options configures a Coordinator.
type Options struct {
	// Workers lists worker base URLs ("http://host:port"); at least one is
	// required. Trailing slashes are trimmed.
	Workers []string
	// Client issues the cell requests (nil = a dedicated client with no
	// global timeout — per-cell bounds come from the request context).
	Client *http.Client
	// MaxAttempts bounds tries per cell across all workers (0 = 4).
	MaxAttempts int
	// Backoff is the first retry's delay; it doubles per attempt (0 = 50ms).
	Backoff time.Duration
	// Cooldown keeps a worker out of selection after a transport or 5xx
	// failure (0 = 1s). Cooling workers are still used when every worker
	// is cooling — a degraded replica beats failing the sweep.
	Cooldown time.Duration
}

// Cell-level counters are process-global (one coordinator per process in
// practice; tests read deltas), matching the pool's panic counter.
var (
	distCells = obs.NewCounter("ucp_dist_cells_total",
		"Cells dispatched to workers (completed, all attempts counted once).")
	distRetries = obs.NewCounter("ucp_dist_retries_total",
		"Cell attempts retried after a worker failure.")
	distWorkerFailures = obs.NewCounterVec("ucp_dist_worker_failures_total",
		"Transport errors and 5xx responses, by worker.", "worker")
)

// worker is one replica plus its selection state.
type worker struct {
	url string

	mu       sync.Mutex
	inflight int
	coolTill time.Time
}

// Coordinator distributes cells over the configured workers. Its Exec
// method is an experiment.CellExec.
type Coordinator struct {
	client      *http.Client
	workers     []*worker
	maxAttempts int
	backoff     time.Duration
	cooldown    time.Duration
	rr          atomic.Uint64 // rotates tie-breaking across workers
}

// New validates the options and builds a Coordinator.
func New(o Options) (*Coordinator, error) {
	if len(o.Workers) == 0 {
		return nil, fmt.Errorf("dist: no workers configured")
	}
	c := &Coordinator{
		client:      o.Client,
		maxAttempts: o.MaxAttempts,
		backoff:     o.Backoff,
		cooldown:    o.Cooldown,
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = 4
	}
	if c.backoff <= 0 {
		c.backoff = 50 * time.Millisecond
	}
	if c.cooldown <= 0 {
		c.cooldown = time.Second
	}
	for _, u := range o.Workers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("dist: empty worker URL")
		}
		c.workers = append(c.workers, &worker{url: u})
	}
	return c, nil
}

// cellRequest mirrors the worker endpoint's wire format
// (service.workerCellRequest).
type cellRequest struct {
	Program          string         `json:"program"`
	Config           string         `json:"config"`
	Tech             string         `json:"tech"`
	Policy           string         `json:"policy,omitempty"`
	Runs             int            `json:"runs,omitempty"`
	ValidationBudget int            `json:"validation_budget,omitempty"`
	L2               *cellL2Request `json:"l2,omitempty"`
	SkipReduced      bool           `json:"skip_reduced,omitempty"`
	Explain          bool           `json:"explain,omitempty"`
}

// cellL2Request mirrors service.L2Request: the optional second cache level
// of a hierarchy cell.
type cellL2Request struct {
	Assoc         int    `json:"assoc"`
	BlockBytes    int    `json:"block_bytes"`
	CapacityBytes int    `json:"capacity_bytes"`
	Policy        string `json:"policy,omitempty"`
}

// permanentError is a worker answer that retrying cannot change.
type permanentError struct {
	status int
	body   string
}

func (e *permanentError) Error() string {
	return fmt.Sprintf("worker rejected cell (%d): %s", e.status, e.body)
}

// Exec ships one cell to a worker and returns its measurement. It is the
// experiment.CellExec implementation: least-loaded healthy worker first,
// exponential backoff across replicas on transient failure.
func (c *Coordinator) Exec(ctx context.Context, b malardalen.Benchmark, cfgIdx int, tech energy.Tech, o experiment.Options) (experiment.Cell, error) {
	ctx, span := obs.Start(ctx, "dist.cell")
	span.Attr("program", b.Name)
	span.Attr("config", cache.ConfigID(cfgIdx))
	defer span.End()

	req := cellRequest{
		Program:          b.Name,
		Config:           cache.ConfigID(cfgIdx),
		Tech:             tech.String(),
		Policy:           o.Policy.String(),
		Runs:             o.Runs,
		ValidationBudget: o.ValidationBudget,
		SkipReduced:      o.SkipReduced,
		Explain:          o.Explain,
	}
	if o.L2 != (cache.Config{}) {
		req.L2 = &cellL2Request{
			Assoc:         o.L2.Assoc,
			BlockBytes:    o.L2.BlockBytes,
			CapacityBytes: o.L2.CapacityBytes,
			Policy:        o.L2.Policy.String(),
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return experiment.Cell{}, err
	}

	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			distRetries.Inc()
			span.Attr("retries", attempt)
			// Exponential backoff, interruptible: a canceled sweep must not
			// sit out its backoff before noticing.
			t := time.NewTimer(c.backoff << (attempt - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return experiment.Cell{}, interrupt.Cause(ctx)
			case <-t.C:
			}
		}
		if err := ctx.Err(); err != nil {
			return experiment.Cell{}, interrupt.Cause(ctx)
		}

		w := c.pick()
		cell, err := c.post(ctx, w, body)
		if err == nil {
			distCells.Inc()
			return cell, nil
		}
		if interrupt.Is(err) || ctx.Err() != nil {
			return experiment.Cell{}, interrupt.Wrap(err)
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return experiment.Cell{}, err
		}
		// Transient: cool the worker so the next pick prefers its siblings,
		// and go around.
		distWorkerFailures.With(w.url).Inc()
		w.cool(c.cooldown)
		lastErr = err
	}
	return experiment.Cell{}, fmt.Errorf("dist: cell %s/%s/%s failed after %d attempts: %w",
		b.Name, cache.ConfigID(cfgIdx), tech, c.maxAttempts, lastErr)
}

// pick selects the healthy worker with the fewest cells in flight
// (join-shortest-queue); when every worker is cooling, the least-loaded
// one is used anyway. Ties rotate round-robin so a serial caller still
// spreads cells across replicas instead of pinning the first URL. The
// returned worker's inflight count is already incremented; post releases
// it.
func (c *Coordinator) pick() *worker {
	now := time.Now()
	off := int(c.rr.Add(1)) % len(c.workers)
	var best *worker
	bestLoad := 0
	bestCooling := false
	for i := range c.workers {
		w := c.workers[(off+i)%len(c.workers)]
		w.mu.Lock()
		load, cooling := w.inflight, now.Before(w.coolTill)
		w.mu.Unlock()
		if best == nil ||
			(bestCooling && !cooling) ||
			(cooling == bestCooling && load < bestLoad) {
			best, bestLoad, bestCooling = w, load, cooling
		}
	}
	best.mu.Lock()
	best.inflight++
	best.mu.Unlock()
	return best
}

// cool marks the worker unhealthy for the cooldown window.
func (w *worker) cool(d time.Duration) {
	w.mu.Lock()
	w.coolTill = time.Now().Add(d)
	w.mu.Unlock()
}

func (w *worker) release() {
	w.mu.Lock()
	w.inflight--
	w.mu.Unlock()
}

// maxErrorBody bounds how much of a worker error response is kept for the
// error message.
const maxErrorBody = 4 << 10

// post performs one attempt against one worker.
func (c *Coordinator) post(ctx context.Context, w *worker, body []byte) (experiment.Cell, error) {
	defer w.release()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.url+"/v1/worker/cell", bytes.NewReader(body))
	if err != nil {
		return experiment.Cell{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return experiment.Cell{}, interrupt.Cause(ctx)
		}
		return experiment.Cell{}, fmt.Errorf("dist: %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var cell experiment.Cell
		if err := json.NewDecoder(resp.Body).Decode(&cell); err != nil {
			// A torn response (worker died mid-write) is transient: the
			// cell is deterministic, another replica recomputes it.
			return experiment.Cell{}, fmt.Errorf("dist: %s: decode cell: %w", w.url, err)
		}
		return cell, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return experiment.Cell{}, &permanentError{status: resp.StatusCode, body: strings.TrimSpace(string(msg))}
	default:
		// 5xx: the worker is draining, overloaded, or broke on this cell;
		// 503/504 in particular mean "try a sibling".
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return experiment.Cell{}, fmt.Errorf("dist: %s: status %d: %s",
			w.url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}
