package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"ucp/internal/energy"
	"ucp/internal/experiment"
	"ucp/internal/faults"
	"ucp/internal/malardalen"
)

// benchByName fetches one suite benchmark for direct Exec calls.
func benchByName(t *testing.T, name string) malardalen.Benchmark {
	t.Helper()
	for _, b := range malardalen.All() {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("no benchmark %q", name)
	return malardalen.Benchmark{}
}

// stateOf reads one worker's effective breaker state via the same snapshot
// the ucp_dist_breaker_state gauge renders.
func stateOf(t *testing.T, c *Coordinator, url string) breakerState {
	t.Helper()
	for _, s := range c.breakerStates() {
		if s.Label == url {
			return breakerState(int(s.Value))
		}
	}
	t.Fatalf("no worker %q in breaker snapshot", url)
	return 0
}

// waitState polls until the worker's breaker reaches want or the deadline
// passes.
func waitState(t *testing.T, c *Coordinator, url string, want breakerState, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if got := stateOf(t, c, url); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s breaker = %v, want %v after %v", url, stateOf(t, c, url), want, within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBackoffJitterSpread (satellite): retry delays must stay inside
// [d/2, 3d/2) and actually spread — a degenerate constant would mean the
// thundering herd is back.
func TestBackoffJitterSpread(t *testing.T) {
	c := &Coordinator{backoff: 20 * time.Millisecond}
	const attempt = 2 // base doubles once: d = 40ms, window [20ms, 60ms)
	d := c.backoff << (attempt - 1)
	lo, hi := d/2, d+d/2
	minSeen, maxSeen := hi, lo
	for i := 0; i < 500; i++ {
		got := c.retryDelay(attempt)
		if got < lo || got >= hi {
			t.Fatalf("retryDelay(%d) = %v outside [%v, %v)", attempt, got, lo, hi)
		}
		if got < minSeen {
			minSeen = got
		}
		if got > maxSeen {
			maxSeen = got
		}
	}
	// 500 draws over a 40ms window: demand at least a quarter of the span.
	if maxSeen-minSeen < d/4 {
		t.Fatalf("jitter spread %v over 500 draws is too narrow (min %v, max %v)", maxSeen-minSeen, minSeen, maxSeen)
	}
}

// TestBreakerOpensOnDeadWorkerAndRecovers is the acceptance check: a
// fault-injected dead worker's breaker opens within one probe interval,
// then walks open → half-open → closed after recovery. Cooldown is huge so
// every transition here is probe-driven and observable.
func TestBreakerOpensOnDeadWorkerAndRecovers(t *testing.T) {
	w := newWorker(t)
	const probe = 10 * time.Millisecond
	c, err := New(Options{
		Workers:       []string{w.URL},
		ProbeInterval: probe,
		Cooldown:      time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitState(t, c, w.URL, breakerClosed, time.Second)

	// Kill the worker from the prober's point of view: the dist.probe fault
	// site makes every probe fail without touching the real server.
	if err := faults.Arm("dist.probe:*=err"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)
	// "Within one probe interval": generous polling margin for CI, but the
	// mechanism is a single failed probe → open.
	waitState(t, c, w.URL, breakerOpen, 20*probe)

	// Recovery: the next good probe proves liveness (half-open), the one
	// after closes the breaker.
	faults.Disarm()
	waitState(t, c, w.URL, breakerHalfOpen, 20*probe)
	waitState(t, c, w.URL, breakerClosed, 20*probe)
}

// TestProbeEjectsSaturatedWorker: a readyz 503 (draining/saturated) is an
// ejection signal just like a dead socket.
func TestProbeEjectsSaturatedWorker(t *testing.T) {
	var sick atomic.Bool
	backend := newWorker(t)
	target, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	proxy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && sick.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		rp.ServeHTTP(rw, r)
	}))
	t.Cleanup(proxy.Close)

	const probe = 10 * time.Millisecond
	c, err := New(Options{Workers: []string{proxy.URL}, ProbeInterval: probe, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitState(t, c, proxy.URL, breakerClosed, time.Second)
	sick.Store(true)
	waitState(t, c, proxy.URL, breakerOpen, 20*probe)
	sick.Store(false)
	waitState(t, c, proxy.URL, breakerHalfOpen, 20*probe)
	waitState(t, c, proxy.URL, breakerClosed, 20*probe)
}

// TestBreakerOpensFromCellFailures: without a prober, threshold
// consecutive transient cell failures trip the breaker, and pick then
// prefers the healthy sibling.
func TestBreakerOpensFromCellFailures(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	healthy := newWorker(t)

	c, err := New(Options{
		Workers:          []string{dead.URL, healthy.URL},
		FailureThreshold: 3,
		Backoff:          time.Millisecond,
		Cooldown:         time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	b := benchByName(t, "fibcall")
	opts := experiment.Options{Runs: 1, ValidationBudget: 20, SkipReduced: true}
	// Drive cells until the dead worker has eaten its threshold; the
	// coordinator's retries land them on the healthy one, so every Exec
	// still succeeds.
	for i := 0; i < 4; i++ {
		if _, err := c.Exec(context.Background(), b, 0, energy.Tech45, opts); err != nil {
			t.Fatalf("Exec %d: %v", i, err)
		}
	}
	if got := stateOf(t, c, dead.URL); got != breakerOpen {
		t.Fatalf("dead worker breaker = %v, want open", got)
	}
	if got := stateOf(t, c, healthy.URL); got != breakerClosed {
		t.Fatalf("healthy worker breaker = %v, want closed", got)
	}
	// With the breaker open, pick must avoid the dead worker outright.
	for i := 0; i < 5; i++ {
		w := c.pick(nil)
		if w.url == dead.URL {
			t.Fatal("pick chose an open-breaker worker while a closed one existed")
		}
		w.release()
	}
}

// TestHedgedDispatchRacesStraggler: a slow worker's cell is re-issued to
// the fast sibling after the fixed hedge delay; the fast result wins and
// the hedge counter moves.
func TestHedgedDispatchRacesStraggler(t *testing.T) {
	fast := newWorker(t)
	slow := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		// A straggler, not a corpse: it would answer eventually (with a
		// retryable 502), but hedging should win long before.
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		rw.WriteHeader(http.StatusBadGateway)
	}))
	t.Cleanup(slow.Close)

	c, err := New(Options{
		Workers:    []string{slow.URL, fast.URL},
		Hedge:      true,
		HedgeDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	b := benchByName(t, "fibcall")
	opts := experiment.Options{Runs: 1, ValidationBudget: 20, SkipReduced: true}
	before := distHedges.Value()
	// Two Execs: round-robin rotation guarantees the slow worker is picked
	// first at least once, and that dispatch must hedge onto the fast one.
	for i := 0; i < 2; i++ {
		start := time.Now()
		cell, err := c.Exec(context.Background(), b, 0, energy.Tech45, opts)
		if err != nil {
			t.Fatalf("Exec %d: %v", i, err)
		}
		if cell.Program != "fibcall" {
			t.Fatalf("Exec %d returned cell for %q", i, cell.Program)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("Exec %d took %v; hedging should have beaten the 2s straggler", i, elapsed)
		}
	}
	if got := distHedges.Value() - before; got < 1 {
		t.Fatalf("hedges delta = %d, want >= 1", got)
	}
}

// TestHedgeRequiresTwoWorkers: with one worker, hedging silently disables
// rather than double-hitting the only replica.
func TestHedgeRequiresTwoWorkers(t *testing.T) {
	w := newWorker(t)
	c, err := New(Options{Workers: []string{w.URL}, Hedge: true, HedgeDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, on := c.hedgeAfter(); on {
		t.Fatal("hedging enabled with a single worker")
	}
}

// TestAdaptiveHedgeDelay: the p99 window arms only after enough samples
// and floors at minHedgeDelay.
func TestAdaptiveHedgeDelay(t *testing.T) {
	c := &Coordinator{hedge: true, workers: []*worker{{url: "a"}, {url: "b"}}}
	if _, on := c.hedgeAfter(); on {
		t.Fatal("adaptive hedge armed with an empty latency window")
	}
	for i := 0; i < minHedgeSamples; i++ {
		c.lat.observe(time.Millisecond)
	}
	d, on := c.hedgeAfter()
	if !on {
		t.Fatal("adaptive hedge not armed after enough samples")
	}
	if d != minHedgeDelay {
		t.Fatalf("hedge delay = %v, want floor %v for fast cells", d, minHedgeDelay)
	}
	c.lat.observe(500 * time.Millisecond)
	if d, _ := c.hedgeAfter(); d != 500*time.Millisecond {
		t.Fatalf("hedge delay = %v, want the p99 straggler 500ms", d)
	}
}

// TestCoordinatorCloseStopsProber: Close must end the probe goroutine and
// be idempotent.
func TestCoordinatorCloseStopsProber(t *testing.T) {
	w := newWorker(t)
	c, err := New(Options{Workers: []string{w.URL}, ProbeInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { c.Close(); c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
}
