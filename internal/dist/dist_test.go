package dist

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ucp/internal/experiment"
	"ucp/internal/service"
)

// newWorker spins up one worker replica of the analysis service.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{
		EnableWorker: true,
		Workers:      2,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// sweepOpts is the small matrix the tests sweep: 2 programs × 2 configs ×
// 1 technology = 4 cells, with the reduced-capacity runs on so the full
// Cell payload (including the Figure 5 series) crosses the wire.
func sweepOpts(exec experiment.CellExec) experiment.Options {
	return experiment.Options{
		Programs:         []string{"fibcall", "fac"},
		Configs:          []int{0, 1},
		Techs:            nil, // both — exercises tech round-tripping too
		Runs:             1,
		ValidationBudget: 20,
		Workers:          4,
		Exec:             exec,
	}
}

// csvOf renders a suite to CSV bytes.
func csvOf(t *testing.T, s *experiment.Suite) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistributedSweepMatchesLocal is the central determinism criterion: a
// sweep fanned across two workers renders byte-identical CSV to the same
// sweep run in-process.
func TestDistributedSweepMatchesLocal(t *testing.T) {
	local, err := experiment.Sweep(context.Background(), sweepOpts(nil))
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := newWorker(t), newWorker(t)
	coord, err := New(Options{Workers: []string{w1.URL, w2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	distributed, err := experiment.Sweep(context.Background(), sweepOpts(coord.Exec))
	if err != nil {
		t.Fatal(err)
	}

	localCSV, distCSV := csvOf(t, local), csvOf(t, distributed)
	if !bytes.Equal(localCSV, distCSV) {
		t.Errorf("distributed CSV differs from local:\n--- local ---\n%s\n--- distributed ---\n%s",
			localCSV, distCSV)
	}
	if n := distCells.Value(); n < 8 {
		t.Errorf("ucp_dist_cells_total = %d, want >= 8 (2 programs x 2 configs x 2 techs)", n)
	}
}

// flakyWorker fronts a real worker but dies after serving okBudget
// requests: later connections are reset at the TCP level, exactly what a
// coordinator sees when a replica is SIGKILLed mid-sweep.
type flakyWorker struct {
	ts     *httptest.Server
	served atomic.Int64
	budget int64
}

func newFlakyWorker(t *testing.T, budget int64) *flakyWorker {
	t.Helper()
	svc := service.New(service.Config{
		EnableWorker: true,
		Workers:      2,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	f := &flakyWorker{budget: budget}
	inner := svc.Handler()
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.served.Add(1) > f.budget {
			// Dead replica: reset the connection without an HTTP response.
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test writer cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			conn.Close()
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		f.ts.Close()
		svc.Close()
	})
	return f
}

// TestWorkerLossMidSweepRetriesAndCompletes is the issue's kill-a-worker
// criterion: one of two workers dies after its first cells; the
// coordinator retries the lost cells on the survivor and the sweep
// completes with the same deterministic CSV.
func TestWorkerLossMidSweepRetriesAndCompletes(t *testing.T) {
	local, err := experiment.Sweep(context.Background(), sweepOpts(nil))
	if err != nil {
		t.Fatal(err)
	}

	healthy := newWorker(t)
	dying := newFlakyWorker(t, 2) // serves two cells, then "crashes"
	retriesBefore := distRetries.Value()

	coord, err := New(Options{
		Workers:  []string{healthy.URL, dying.ts.URL},
		Backoff:  5 * time.Millisecond,
		Cooldown: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	distributed, err := experiment.Sweep(context.Background(), sweepOpts(coord.Exec))
	if err != nil {
		t.Fatalf("sweep must survive the worker loss: %v", err)
	}

	if got, want := csvOf(t, distributed), csvOf(t, local); !bytes.Equal(got, want) {
		t.Errorf("post-failover CSV differs from local:\n--- local ---\n%s\n--- distributed ---\n%s",
			want, got)
	}
	if d := distRetries.Value() - retriesBefore; d < 1 {
		t.Errorf("ucp_dist_retries_total delta = %d, want >= 1 (the dead worker's cells)", d)
	}
	if dying.served.Load() <= dying.budget {
		t.Errorf("dying worker served %d requests; the failure path never fired", dying.served.Load())
	}
}

// TestAllWorkersDownFailsAfterRetries: with every replica dead the cell
// exhausts its attempts and reports the transport failure.
func TestAllWorkersDownFailsAfterRetries(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close() // nothing listens; every dial is refused

	coord, err := New(Options{
		Workers:     []string{dead.URL},
		MaxAttempts: 2,
		Backoff:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = experiment.Sweep(context.Background(), experiment.Options{
		Programs: []string{"fibcall"},
		Configs:  []int{0},
		Runs:     1,
		Exec:     coord.Exec,
	})
	if err == nil {
		t.Fatal("sweep against only dead workers must fail")
	}
}

// TestPermanent4xxIsNotRetried: a worker that rejects the request (4xx)
// answers for every replica — retrying would repeat the same rejection.
func TestPermanent4xxIsNotRetried(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"unknown benchmark"}`, http.StatusNotFound)
	}))
	t.Cleanup(ts.Close)

	coord, err := New(Options{Workers: []string{ts.URL}, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = experiment.Sweep(context.Background(), experiment.Options{
		Programs: []string{"fibcall"},
		Configs:  []int{0},
		Runs:     1,
		Exec:     coord.Exec,
	})
	if err == nil {
		t.Fatal("4xx from the worker must fail the cell")
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("worker saw %d requests, want exactly 1 (no retry on 4xx)", n)
	}
}

// TestCancellationStopsRetrying: a canceled sweep context aborts the
// backoff loop promptly instead of burning the remaining attempts.
func TestCancellationStopsRetrying(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close()

	coord, err := New(Options{
		Workers:     []string{dead.URL},
		MaxAttempts: 100,
		Backoff:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := experiment.Sweep(ctx, experiment.Options{
			Programs: []string{"fibcall"},
			Configs:  []int{0},
			Runs:     1,
			Exec:     coord.Exec,
		})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled sweep returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep did not notice cancellation (stuck in backoff)")
	}
	wg.Wait()
}

// TestNewValidation pins the constructor's contract.
func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New with no workers must fail")
	}
	if _, err := New(Options{Workers: []string{"  "}}); err == nil {
		t.Error("New with a blank worker URL must fail")
	}
	c, err := New(Options{Workers: []string{"http://a/", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.workers[0].url != "http://a" {
		t.Errorf("trailing slash not trimmed: %q", c.workers[0].url)
	}
	if c.maxAttempts != 4 || c.backoff != 50*time.Millisecond || c.cooldown != time.Second {
		t.Errorf("defaults = %d/%v/%v", c.maxAttempts, c.backoff, c.cooldown)
	}
}
