// Package locking implements the static instruction-cache locking baseline
// the paper positions itself against (Section 2.2): the cache is preloaded
// with a fixed set of memory blocks and locked, so accesses to those blocks
// always hit and every other access goes to memory. Locking trades
// performance (and, as technology scales, energy) for trivially predictable
// timing — the trade-off the unlocked-prefetching technique is designed to
// avoid.
//
// A locked cache never replaces anything, so the selection is independent of
// the configuration's replacement policy: only the geometry (sets × ways)
// matters, and the same baseline applies to LRU, FIFO, and PLRU sweeps.
package locking

import (
	"context"
	"sort"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/obs"
	"ucp/internal/vivu"
	"ucp/internal/wcet"
)

// Selection is a chosen locked cache content.
type Selection struct {
	// Blocks maps each locked memory block to true.
	Blocks map[uint64]bool
	// TauW is the memory contribution to the WCET under the locked cache:
	// exactly computable without abstract interpretation, since hits and
	// misses are fixed by the selection.
	TauW int64
	// Misses is the WCET-scenario miss count under the selection.
	Misses int64
}

// Select greedily picks the locked content that minimizes the WCET: memory
// blocks are ranked by their WCET-scenario access frequency (the classical
// frequency-based content selection for static locking), respecting the
// per-set way limits of the configuration.
func Select(ctx context.Context, p *isa.Program, cfg cache.Config, par wcet.Params) (*Selection, error) {
	ctx, span := obs.Start(ctx, "locking.select")
	defer span.End()
	x, err := vivu.ExpandCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	// A cost vector of all-miss times yields the execution counts of the
	// worst-case path of the *locked* machine, where every reference costs
	// the same; the actual lock selection then fixes per-block costs.
	res, err := wcet.AnalyzeX(ctx, x, cfg, par)
	if err != nil {
		return nil, err
	}
	lay := res.Lay

	// Accumulate WCET-scenario access counts per memory block.
	weight := map[uint64]int64{}
	for _, xb := range x.Blocks {
		n := res.Nw[xb.ID]
		if n == 0 {
			continue
		}
		for i := range p.Blocks[xb.Orig].Instrs {
			blk := lay.MemBlock(isa.InstrRef{Block: xb.Orig, Index: i}, cfg.BlockBytes)
			weight[blk] += n
		}
	}

	type cand struct {
		blk uint64
		w   int64
	}
	bySet := map[int][]cand{}
	for blk, w := range weight {
		si := cfg.SetOf(blk)
		bySet[si] = append(bySet[si], cand{blk, w})
	}
	sel := &Selection{Blocks: map[uint64]bool{}}
	for si, cands := range bySet {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w > cands[j].w
			}
			return cands[i].blk < cands[j].blk
		})
		limit := cfg.Assoc
		if limit > len(cands) {
			limit = len(cands)
		}
		for _, c := range cands[:limit] {
			sel.Blocks[c.blk] = true
		}
		_ = si
	}

	// The locked WCET: per reference, hit time if locked else miss time,
	// weighted by the WCET counts of the locked machine. (Counts are
	// recomputed with locked costs so the maximization is consistent.)
	cost := make([]int64, len(x.Blocks))
	for _, xb := range x.Blocks {
		var c int64
		for i := range p.Blocks[xb.Orig].Instrs {
			blk := lay.MemBlock(isa.InstrRef{Block: xb.Orig, Index: i}, cfg.BlockBytes)
			if sel.Blocks[blk] {
				c += par.HitCycles
			} else {
				c += par.MissCycles()
			}
		}
		cost[xb.ID] = c
	}
	nw, tau, err := wcet.SolveCounts(x, cost)
	if err != nil {
		return nil, err
	}
	sel.TauW = tau
	for _, xb := range x.Blocks {
		if nw[xb.ID] == 0 {
			continue
		}
		for i := range p.Blocks[xb.Orig].Instrs {
			blk := lay.MemBlock(isa.InstrRef{Block: xb.Orig, Index: i}, cfg.BlockBytes)
			if !sel.Blocks[blk] {
				sel.Misses += nw[xb.ID]
			}
		}
	}
	if span != nil {
		span.Attr("locked_blocks", len(sel.Blocks))
		span.Attr("tau_w", sel.TauW)
	}
	return sel, nil
}
