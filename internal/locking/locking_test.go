package locking

import (
	"context"
	"testing"

	"ucp/internal/cache"
	"ucp/internal/isa"
	"ucp/internal/sim"
	"ucp/internal/wcet"
)

var testPar = wcet.Params{HitCycles: 1, MissPenalty: 9, Lambda: 10}

func TestSelectRespectsWayLimits(t *testing.T) {
	p := isa.Build("sel", isa.Loop(20, 16, isa.Code(120)), isa.Code(30))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	s, err := Select(context.Background(), p, cfg, testPar)
	if err != nil {
		t.Fatal(err)
	}
	perSet := map[int]int{}
	for blk := range s.Blocks {
		perSet[cfg.SetOf(blk)]++
	}
	for set, n := range perSet {
		if n > cfg.Assoc {
			t.Fatalf("set %d holds %d locked blocks, exceeds associativity %d", set, n, cfg.Assoc)
		}
	}
	if len(s.Blocks) == 0 {
		t.Fatal("nothing locked")
	}
}

func TestSelectPrefersHotBlocks(t *testing.T) {
	// A hot loop and a cold tail: the loop's blocks must win the ways.
	p := isa.Build("hot", isa.Loop(50, 45, isa.Code(24)), isa.Code(200))
	cfg := cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 128} // 8 blocks lockable
	s, err := Select(context.Background(), p, cfg, testPar)
	if err != nil {
		t.Fatal(err)
	}
	lay := isa.NewLayout(p)
	head := p.Loops[0].Head
	hotBlk := lay.MemBlock(isa.InstrRef{Block: head, Index: 0}, cfg.BlockBytes)
	if !s.Blocks[hotBlk] {
		t.Fatal("the loop header's block must be locked")
	}
}

func TestLockedWCETConsistentWithSim(t *testing.T) {
	// With deterministic control flow, the locked-cache WCET must equal the
	// simulated locked execution time.
	p := isa.Build("det", isa.Loop(10, 10, isa.Code(20)), isa.Code(10))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	s, err := Select(context.Background(), p, cfg, testPar)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run(p, cfg, sim.Options{Par: testPar, Runs: 1, Locked: s.Blocks})
	if st.Cycles != s.TauW {
		t.Fatalf("locked sim %d cycles vs locked WCET %d", st.Cycles, s.TauW)
	}
}

func TestLockingGivesUpACET(t *testing.T) {
	// Section 2.3: cache locking trades average-case performance for
	// predictability. With a hot loop slightly exceeding the lockable
	// capacity, the locked cache misses the overflow every iteration while
	// an unlocked LRU cache keeps most of it resident — so the locked ACET
	// must be worse, which is exactly what makes locking increasingly
	// energy-inefficient as static power grows.
	p := isa.Build("overflow", isa.Loop(30, 28, isa.Code(150)))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}
	sel, err := Select(context.Background(), p, cfg, testPar)
	if err != nil {
		t.Fatal(err)
	}
	locked := sim.Run(p, cfg, sim.Options{Par: testPar, Runs: 1, Locked: sel.Blocks})
	unlocked := sim.Run(p, cfg, sim.Options{Par: testPar, Runs: 1})
	if locked.Cycles <= unlocked.Cycles {
		t.Fatalf("locked ACET (%d) should exceed unlocked ACET (%d) on an overflowing loop",
			locked.Cycles, unlocked.Cycles)
	}
}

func TestLockedBoundCanBeatUnlockedBound(t *testing.T) {
	// The flip side (Section 2.2): for a fitting hot loop the locked
	// cache's *bound* is exact, while cache-aware analysis keeps some
	// conservatism at control-flow joins — the predictability argument of
	// the locking camp.
	p := isa.Build("fit", isa.Loop(30, 28, isa.IfThen(0.5, isa.Code(40)), isa.Code(40)))
	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
	sel, err := Select(context.Background(), p, cfg, testPar)
	if err != nil {
		t.Fatal(err)
	}
	unlocked, err := wcet.Analyze(context.Background(), p, cfg, testPar)
	if err != nil {
		t.Fatal(err)
	}
	if sel.TauW > unlocked.TauW+unlocked.TauW/2 {
		t.Fatalf("locked bound (%d) wildly above unlocked (%d) for a fitting loop", sel.TauW, unlocked.TauW)
	}
}

func TestLockedMissesCount(t *testing.T) {
	p := isa.Build("m", isa.Code(100))
	cfg := cache.Config{Assoc: 1, BlockBytes: 16, CapacityBytes: 64}
	sel, err := Select(context.Background(), p, cfg, testPar)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Misses == 0 {
		t.Fatal("a 100-instruction program cannot fully fit 4 locked blocks")
	}
}
