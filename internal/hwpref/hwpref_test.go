package hwpref

import "testing"

func ev(block uint64, hit, first bool) Event {
	return Event{PC: block * 16, Block: block, Hit: hit, FirstUse: first}
}

func TestNextLineAlways(t *testing.T) {
	p := &NextLine{Policy: Always}
	for _, hit := range []bool{true, false} {
		got := p.OnAccess(ev(7, hit, false), 16)
		if len(got) != 1 || got[0] != 8 {
			t.Fatalf("always policy: got %v", got)
		}
	}
}

func TestNextLineOnMiss(t *testing.T) {
	p := &NextLine{Policy: OnMiss}
	if got := p.OnAccess(ev(7, true, false), 16); got != nil {
		t.Fatalf("hit must not trigger on-miss policy: %v", got)
	}
	if got := p.OnAccess(ev(7, false, false), 16); len(got) != 1 || got[0] != 8 {
		t.Fatalf("miss must trigger: %v", got)
	}
}

func TestNextLineTagged(t *testing.T) {
	p := &NextLine{Policy: Tagged}
	if got := p.OnAccess(ev(7, true, true), 16); len(got) != 1 || got[0] != 8 {
		t.Fatalf("first use must trigger tagged policy: %v", got)
	}
	if got := p.OnAccess(ev(7, true, false), 16); got != nil {
		t.Fatalf("re-use must not trigger tagged policy: %v", got)
	}
}

func TestNextNLine(t *testing.T) {
	p := &NextNLine{N: 3}
	got := p.OnAccess(ev(10, false, true), 16)
	if len(got) != 3 || got[0] != 11 || got[2] != 13 {
		t.Fatalf("next-3-line: %v", got)
	}
	if got := p.OnAccess(ev(10, true, false), 16); got != nil {
		t.Fatalf("hits must not trigger next-N-line: %v", got)
	}
}

func TestTargetRPTLearnsTakenBranches(t *testing.T) {
	p := &Target{}
	br := Event{PC: 0x1000, Block: 0x100, IsBranch: true, TakenPC: 0x2000, FallPC: 0x1004, NextPC: 0x2000}
	// First encounter: nothing predicted yet, but the taken target is
	// learned.
	if got := p.OnAccess(br, 16); got != nil {
		t.Fatalf("cold RPT predicted %v", got)
	}
	// Second encounter: the learned target block is prefetched.
	got := p.OnAccess(br, 16)
	if len(got) != 1 || got[0] != 0x2000/16 {
		t.Fatalf("RPT should predict the learned target: %v", got)
	}
	// Non-branches never touch the RPT.
	if got := p.OnAccess(ev(5, false, false), 16); got != nil {
		t.Fatalf("non-branch triggered RPT: %v", got)
	}
}

func TestTargetRPTDoesNotLearnFallThrough(t *testing.T) {
	p := &Target{}
	br := Event{PC: 0x1000, Block: 0x100, IsBranch: true, TakenPC: 0x2000, FallPC: 0x1004, NextPC: 0x1004}
	p.OnAccess(br, 16)
	if got := p.OnAccess(br, 16); got != nil {
		t.Fatalf("RPT must not learn fall-through outcomes: %v", got)
	}
}

func TestTargetReset(t *testing.T) {
	p := &Target{}
	br := Event{PC: 0x1000, IsBranch: true, TakenPC: 0x2000, NextPC: 0x2000}
	p.OnAccess(br, 16)
	p.Reset()
	if got := p.OnAccess(br, 16); got != nil {
		t.Fatalf("reset RPT still predicts: %v", got)
	}
}

func TestWrongPathPrefetchesBothArms(t *testing.T) {
	p := WrongPath{}
	br := Event{PC: 0x1000, IsBranch: true, TakenPC: 0x2000, FallPC: 0x1004, NextPC: 0x1004}
	got := p.OnAccess(br, 16)
	if len(got) != 2 || got[0] != 0x2000/16 || got[1] != 0x1004/16 {
		t.Fatalf("wrong-path: %v", got)
	}
	if got := p.OnAccess(ev(3, false, false), 16); got != nil {
		t.Fatalf("non-branch triggered wrong-path: %v", got)
	}
}

func TestAllHaveDistinctNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range All() {
		n := p.Name()
		if n == "" || names[n] {
			t.Fatalf("duplicate or empty prefetcher name %q", n)
		}
		names[n] = true
	}
	if len(names) != 6 {
		t.Fatalf("expected 6 baseline mechanisms, got %d", len(names))
	}
}
