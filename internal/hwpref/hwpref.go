// Package hwpref implements the hardware instruction-prefetching mechanisms
// the paper's related-work section surveys (Section 2): sequential
// prefetching in its three classic flavors (next-line always, next-line on
// miss, tagged), next-N-line prefetching, target prefetching with a
// reference prediction table (RPT), and wrong-path prefetching. They plug
// into the trace simulator as baselines for the ablation experiments.
package hwpref

// Event describes one instruction fetch as seen by a hardware prefetcher.
type Event struct {
	// PC is the address of the fetched instruction.
	PC uint64
	// Block is the memory block of PC.
	Block uint64
	// Hit reports whether the fetch hit in the cache.
	Hit bool
	// FirstUse reports whether this is the first demand access to Block
	// since it was (pre)fetched — the tag bit of tagged prefetching.
	FirstUse bool
	// IsBranch marks conditional-branch instructions.
	IsBranch bool
	// TakenPC and FallPC are the two potential successors of a branch
	// (zero when not a branch).
	TakenPC, FallPC uint64
	// NextPC is the resolved address of the next instruction executed.
	NextPC uint64
}

// Prefetcher decides which memory blocks to load ahead of demand.
type Prefetcher interface {
	// Name identifies the mechanism in reports.
	Name() string
	// OnAccess observes one fetch and returns the memory blocks to
	// prefetch (possibly none).
	OnAccess(ev Event, blockBytes int) []uint64
	// Reset clears internal state between runs.
	Reset()
}

// NextLine is sequential prefetching: fetch block b triggers a prefetch of
// block b+1 under one of the three classic policies.
type NextLine struct {
	// Policy selects when the next line is prefetched.
	Policy NextLinePolicy
}

// NextLinePolicy enumerates the sequential prefetch triggers of [18].
type NextLinePolicy int

const (
	// Always prefetches the next line on every access.
	Always NextLinePolicy = iota
	// OnMiss prefetches the next line only on a miss.
	OnMiss
	// Tagged prefetches the next line on the first use of a block.
	Tagged
)

// Name implements Prefetcher.
func (n *NextLine) Name() string {
	switch n.Policy {
	case OnMiss:
		return "next-line-on-miss"
	case Tagged:
		return "next-line-tagged"
	default:
		return "next-line-always"
	}
}

// OnAccess implements Prefetcher.
func (n *NextLine) OnAccess(ev Event, blockBytes int) []uint64 {
	switch n.Policy {
	case OnMiss:
		if ev.Hit {
			return nil
		}
	case Tagged:
		if !ev.FirstUse {
			return nil
		}
	}
	return []uint64{ev.Block + 1}
}

// Reset implements Prefetcher.
func (n *NextLine) Reset() {}

// NextNLine extends sequential prefetching to the N contiguous lines.
type NextNLine struct {
	N int
}

// Name implements Prefetcher.
func (n *NextNLine) Name() string { return "next-n-line" }

// OnAccess implements Prefetcher.
func (n *NextNLine) OnAccess(ev Event, blockBytes int) []uint64 {
	if ev.Hit {
		return nil
	}
	out := make([]uint64, 0, n.N)
	for i := 1; i <= n.N; i++ {
		out = append(out, ev.Block+uint64(i))
	}
	return out
}

// Reset implements Prefetcher.
func (n *NextNLine) Reset() {}

// Target implements target prefetching [19]: a reference prediction table
// maps a branch's address to its last taken-target block; matching the
// table on a later execution of the branch prefetches that block (the
// implicit always-taken assumption the paper points out).
type Target struct {
	// TableSize bounds the RPT (direct-mapped on the branch address).
	TableSize int

	rpt map[uint64]uint64 // branch PC -> predicted target block
}

// Name implements Prefetcher.
func (t *Target) Name() string { return "target-rpt" }

// OnAccess implements Prefetcher.
func (t *Target) OnAccess(ev Event, blockBytes int) []uint64 {
	if !ev.IsBranch {
		return nil
	}
	if t.rpt == nil {
		t.rpt = make(map[uint64]uint64)
	}
	var out []uint64
	if blk, ok := t.rpt[t.slot(ev.PC)]; ok {
		out = append(out, blk)
	}
	// Learn: store the target the branch actually took this time, but only
	// taken targets (an RPT records taken branches).
	if ev.NextPC == ev.TakenPC {
		if len(t.rpt) < t.size() || t.hasSlot(ev.PC) {
			t.rpt[t.slot(ev.PC)] = ev.NextPC / uint64(blockBytes)
		}
	}
	return out
}

func (t *Target) size() int {
	if t.TableSize <= 0 {
		return 64
	}
	return t.TableSize
}

func (t *Target) slot(pc uint64) uint64 { return pc % (uint64(t.size()) * 4096) }

func (t *Target) hasSlot(pc uint64) bool {
	_, ok := t.rpt[t.slot(pc)]
	return ok
}

// Reset implements Prefetcher.
func (t *Target) Reset() { t.rpt = nil }

// WrongPath implements wrong-path prefetching [13]: both the taken target
// and the fall-through of a branch are prefetched, profiting whichever path
// executes at the price of more ineffective prefetches.
type WrongPath struct{}

// Name implements Prefetcher.
func (WrongPath) Name() string { return "wrong-path" }

// OnAccess implements Prefetcher.
func (WrongPath) OnAccess(ev Event, blockBytes int) []uint64 {
	if !ev.IsBranch {
		return nil
	}
	bb := uint64(blockBytes)
	return []uint64{ev.TakenPC / bb, ev.FallPC / bb}
}

// Reset implements Prefetcher.
func (WrongPath) Reset() {}

// All returns one instance of every baseline mechanism.
func All() []Prefetcher {
	return []Prefetcher{
		&NextLine{Policy: Always},
		&NextLine{Policy: OnMiss},
		&NextLine{Policy: Tagged},
		&NextNLine{N: 2},
		&Target{},
		WrongPath{},
	}
}
