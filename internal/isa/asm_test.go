package isa

import (
	"math/rand"
	"strings"
	"testing"
)

const sampleAsm = `
# a small filter task
program filter
  code 12
  loop 64 avg 60
    code 40
    if 0.8
      code 30
    else
      code 12
    end
    code 35
  end
  code 8
end
`

func TestParseAsm(t *testing.T) {
	p, err := ParseAsmString(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "filter" {
		t.Fatalf("name = %q", p.Name)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	if len(p.Loops) != 1 || p.Loops[0].Bound != 64 || p.Loops[0].AvgIters != 60 {
		t.Fatalf("loop metadata: %+v", p.Loops)
	}
	// 12+1(branch in loop head? no...) — just compare against the builder.
	want := Build("filter",
		Code(12),
		Loop(64, 60,
			Code(40),
			If(0.8, S(Code(30)), S(Code(12))),
			Code(35),
		),
		Code(8),
	)
	if p.NInstr() != want.NInstr() || len(p.Blocks) != len(want.Blocks) {
		t.Fatalf("parsed program differs from builder: %d/%d instrs, %d/%d blocks",
			p.NInstr(), want.NInstr(), len(p.Blocks), len(want.Blocks))
	}
}

func TestParseAsmErrors(t *testing.T) {
	cases := []string{
		"",                                    // no header
		"program x\ncode 3\n",                 // missing end
		"program x\nbogus 1\nend\n",           // unknown statement
		"program x\ncode -1\nend\n",           // bad count
		"program x\nloop 0\nend\nend\n",       // bad bound
		"program x\nif 2\nend\nend\n",         // bad probability
		"program x\ncode 1\nend\ncode 2\n",    // trailing input
		"program x\nloop 3 avg 9\nend\nend\n", // avg > bound
	}
	for _, src := range cases {
		if _, err := ParseAsmString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestWriteAsmRoundTrip(t *testing.T) {
	p, err := ParseAsmString(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteAsm(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ParseAsmString(buf.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if !PrefetchEquivalent(p, q) {
		t.Fatalf("round trip changed the program:\n%s", buf.String())
	}
	if len(p.Loops) != len(q.Loops) {
		t.Fatalf("loops lost in round trip")
	}
}

// Property: any random builder tree survives a serialize→parse round trip
// modulo prefetches (of which there are none).
func TestWriteAsmRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var gen func(depth int) []Node
	gen = func(depth int) []Node {
		var nodes []Node
		for i := 0; i < 1+rng.Intn(3); i++ {
			switch k := rng.Intn(6); {
			case k < 3 || depth >= 3:
				nodes = append(nodes, Code(1+rng.Intn(20)))
			case k == 3:
				nodes = append(nodes, If(float64(rng.Intn(11))/10, gen(depth+1), gen(depth+1)))
			case k == 4:
				nodes = append(nodes, If(float64(rng.Intn(11))/10, gen(depth+1), nil))
			default:
				b := 1 + rng.Intn(9)
				nodes = append(nodes, Loop(b, float64(b), gen(depth+1)...))
			}
		}
		return nodes
	}
	for i := 0; i < 50; i++ {
		p := Build("prop", gen(0)...)
		var buf strings.Builder
		if err := WriteAsm(&buf, p); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		q, err := ParseAsmString(buf.String())
		if err != nil {
			t.Fatalf("case %d: parse: %v\n%s", i, err, buf.String())
		}
		if !PrefetchEquivalent(p, q) {
			t.Fatalf("case %d: round trip mismatch\n%s", i, buf.String())
		}
		if len(p.Loops) != len(q.Loops) {
			t.Fatalf("case %d: loop count changed", i)
		}
	}
}

func TestWriteAsmRejectsOptimized(t *testing.T) {
	p := Build("opt", Code(8))
	p.InsertInstr(InstrRef{0, 1}, Instr{Kind: KindPrefetch, Target: InstrRef{0, 5}})
	var buf strings.Builder
	if err := WriteAsm(&buf, p); err == nil {
		t.Fatal("serializing an optimized program must fail")
	}
}
