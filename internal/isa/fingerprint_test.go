package isa

import (
	"strings"
	"testing"
)

// fpProg builds a small two-block program with a loop the way the
// benchmark builders do, so repeated invocations exercise the same path.
func fpProg() *Program {
	return Build("fp",
		Code(3),
		Loop(8, 6.0, Code(4)),
		Code(2),
	)
}

func TestFingerprintDeterministic(t *testing.T) {
	a := Fingerprint(fpProg())
	b := Fingerprint(fpProg())
	if a != b {
		t.Fatalf("two identical builder invocations disagree:\n%s\n%s", a, b)
	}
	if len(a) != 64 || strings.ToLower(a) != a {
		t.Fatalf("fingerprint is not lowercase hex sha256: %q", a)
	}
	if Fingerprint(fpProg().Clone()) != a {
		t.Error("Clone changed the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(fpProg())

	// One added instruction.
	p := fpProg()
	p.InsertInstr(InstrRef{Block: 0, Index: 0}, Instr{Kind: KindOp})
	if Fingerprint(p) == base {
		t.Error("inserting an instruction did not change the fingerprint")
	}

	// One changed instruction kind, same shape.
	p = fpProg()
	p.Blocks[0].Instrs[0].Kind = KindPad
	if Fingerprint(p) == base {
		t.Error("changing an instruction kind did not change the fingerprint")
	}

	// A changed prefetch target.
	p = fpProg()
	p.InsertInstr(InstrRef{Block: 0, Index: 0}, Instr{Kind: KindPrefetch, Target: InstrRef{Block: 0, Index: 2}})
	q := fpProg()
	q.InsertInstr(InstrRef{Block: 0, Index: 0}, Instr{Kind: KindPrefetch, Target: InstrRef{Block: 0, Index: 1}})
	if Fingerprint(p) == Fingerprint(q) {
		t.Error("prefetch target is not part of the fingerprint")
	}

	// A changed loop bound (flow fact), identical instructions.
	p = fpProg()
	p.Loops[0].Bound++
	if Fingerprint(p) == base {
		t.Error("loop bound is not part of the fingerprint")
	}

	// A different base address relocates every memory block.
	p = fpProg()
	p.Base = 0x20000
	if Fingerprint(p) == base {
		t.Error("base address is not part of the fingerprint")
	}

	// A renamed program is a different cache identity.
	p = fpProg()
	p.Name = "fp2"
	if Fingerprint(p) == base {
		t.Error("name is not part of the fingerprint")
	}
}
