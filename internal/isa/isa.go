// Package isa defines the compact RISC-like intermediate representation on
// which the whole pipeline operates: fixed-size instructions grouped into
// basic blocks, programs with annotated natural loops, and an address
// layout with aligned loop headers.
//
// The representation deliberately abstracts away operand semantics: the
// unlocked-cache prefetching optimization (and the WCET analysis it relies
// on) only observes instruction *fetches* — their addresses, the memory
// blocks those addresses map to, and the control flow between them. This is
// the substitution, documented in DESIGN.md, for the ARMv7 binaries used by
// the original paper.
package isa

// InstrBytes is the size of every instruction in bytes (ARM-like fixed
// width). All addresses are multiples of InstrBytes.
const InstrBytes = 4

// Kind discriminates the instruction categories the analyses care about.
type Kind uint8

const (
	// KindOp is an ordinary instruction: it is fetched and falls through.
	KindOp Kind = iota
	// KindBranch is a conditional block terminator with two successors
	// (Succs[0] = taken, Succs[1] = fall-through).
	KindBranch
	// KindJump is an unconditional block terminator with one successor.
	KindJump
	// KindPrefetch is a software prefetch: besides being fetched like any
	// other instruction, it loads the memory block containing its Target
	// reference into the cache after the prefetch latency elapses.
	KindPrefetch
	// KindPad is a nop. The optimizer's PadToBlock ablation emits pads
	// with each prefetch so an insertion grows the text by a whole cache
	// block. Pads are fetched and cost one cycle like any other
	// instruction.
	KindPad
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindOp:
		return "op"
	case KindBranch:
		return "br"
	case KindJump:
		return "jmp"
	case KindPrefetch:
		return "pft"
	case KindPad:
		return "pad"
	default:
		return "?"
	}
}

// InstrRef names one instruction position inside a Program: instruction
// Index within block Block. It is the stable handle used by prefetch
// instructions to identify the item whose memory block they load (the paper's
// r_j): the concrete memory block is only resolved against a Layout, because
// relocation moves block boundaries.
type InstrRef struct {
	Block int // basic block ID
	Index int // instruction index within the block
}

// Instr is a single instruction. The zero value is a plain KindOp.
type Instr struct {
	Kind Kind
	// Level is meaningful only for KindPrefetch: the cache level the fill
	// targets. 0 and 1 both mean the L1 (the zero value keeps every
	// pre-hierarchy program identical); 2 means the fill installs into the
	// L2 only, leaving the L1 untouched — the prefetch-into-L2 candidate
	// class of the hierarchy optimizer.
	Level uint8
	// Target is meaningful only for KindPrefetch: the instruction whose
	// memory block this prefetch loads.
	Target InstrRef
}

// Block is a basic block: a maximal straight-line instruction sequence.
// Only the last instruction may be a KindBranch or KindJump.
type Block struct {
	ID     int
	Instrs []Instr
	// Succs lists successor block IDs. A block ending in KindBranch has
	// two (taken, fall-through); one ending in KindJump or falling through
	// has one; the program sink has none.
	Succs []int
	// TakenProb is the probability, used only by the average-case trace
	// driver, that a terminating KindBranch goes to Succs[0].
	TakenProb float64
	// Align, when non-zero, aligns the block's first instruction to a
	// multiple of Align bytes with assembler padding (the -falign-loops
	// behavior of the paper's GCC toolchain). Alignment boundaries act as
	// relocation firewalls: an inserted prefetch shifts addresses only up
	// to the next boundary, where the padding absorbs it.
	Align int
}

// NInstr returns the number of instructions in the block.
func (b *Block) NInstr() int { return len(b.Instrs) }

// Terminator returns the last instruction, or a zero Instr for an empty
// block.
func (b *Block) Terminator() Instr {
	if len(b.Instrs) == 0 {
		return Instr{}
	}
	return b.Instrs[len(b.Instrs)-1]
}

// Loop describes one natural loop of the program. Loops are annotated by the
// builder (or by cfg.FindLoops) and carry the flow bound required by WCET
// analysis.
type LoopInfo struct {
	// Head is the block ID of the loop header. The header's terminator is
	// a KindBranch whose taken edge (Succs[0]) enters the body and whose
	// fall-through edge exits the loop.
	Head int
	// Blocks lists the IDs of all member blocks, header included.
	Blocks []int
	// Bound is the maximum number of body executions per loop entry
	// (inclusive); it is the flow fact the IPET formulation consumes.
	Bound int
	// AvgIters is the mean number of iterations used by the average-case
	// trace driver; it must not exceed Bound.
	AvgIters float64
	// Parent is the index in Program.Loops of the innermost enclosing
	// loop, or -1 for a top-level loop.
	Parent int
}

// Program is a complete unit of analysis: an entry block, a set of basic
// blocks laid out in slice order, and loop annotations.
type Program struct {
	Name   string
	Blocks []*Block
	Entry  int
	Loops  []LoopInfo
	// Base is the address of the first text byte (DefaultBaseAddr when
	// zero). Blocks are laid out in slice order from here, with alignment
	// padding before every block that requests it.
	Base uint64
}

// NInstr returns the total number of instructions across all blocks.
func (p *Program) NInstr() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// NPrefetch returns the number of prefetch instructions in the program.
func (p *Program) NPrefetch() int {
	n := 0
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == KindPrefetch {
				n++
			}
		}
	}
	return n
}

// Instr returns the instruction named by ref.
func (p *Program) Instr(ref InstrRef) Instr {
	return p.Blocks[ref.Block].Instrs[ref.Index]
}

// LoopOf returns the index in p.Loops of the innermost loop containing block
// id, or -1 when the block is not inside any loop.
func (p *Program) LoopOf(id int) int {
	inner := -1
	for i := range p.Loops {
		for _, b := range p.Loops[i].Blocks {
			if b != id {
				continue
			}
			// Prefer the deepest (most nested) loop containing id.
			if inner == -1 || loopDepth(p, i) > loopDepth(p, inner) {
				inner = i
			}
		}
	}
	return inner
}

func loopDepth(p *Program, li int) int {
	d := 0
	for li >= 0 {
		d++
		li = p.Loops[li].Parent
	}
	return d
}

// InsertInstr inserts instruction in immediately after position at (so the
// new instruction occupies index at.Index+1). All InstrRef targets held by
// prefetch instructions anywhere in the program are adjusted so they keep
// naming the same instruction. It returns the reference of the inserted
// instruction.
//
// Inserting after a block terminator is rejected because it would change the
// control flow; callers must pick an in-block insertion point.
func (p *Program) InsertInstr(at InstrRef, in Instr) InstrRef {
	b := p.Blocks[at.Block]
	if at.Index >= len(b.Instrs) {
		panic("isa: InsertInstr index out of range")
	}
	term := b.Instrs[at.Index].Kind
	if (term == KindBranch || term == KindJump) && at.Index == len(b.Instrs)-1 {
		panic("isa: InsertInstr after block terminator")
	}
	pos := at.Index + 1
	b.Instrs = append(b.Instrs, Instr{})
	copy(b.Instrs[pos+1:], b.Instrs[pos:])
	b.Instrs[pos] = in

	// Keep every prefetch target pointing at the same instruction.
	for _, blk := range p.Blocks {
		for i := range blk.Instrs {
			ins := &blk.Instrs[i]
			if ins.Kind != KindPrefetch {
				continue
			}
			// This includes the inserted instruction itself: its caller
			// computed the target against the pre-insertion indexing.
			if ins.Target.Block == at.Block && ins.Target.Index >= pos {
				ins.Target.Index++
			}
		}
	}
	return InstrRef{Block: at.Block, Index: pos}
}

// InsertInstrBefore inserts instruction in immediately before position at
// (the new instruction takes index at.Index, shifting at and everything
// after it). Prefetch targets are adjusted like InsertInstr. It returns the
// reference of the inserted instruction.
func (p *Program) InsertInstrBefore(at InstrRef, in Instr) InstrRef {
	b := p.Blocks[at.Block]
	if at.Index < 0 || at.Index >= len(b.Instrs) {
		panic("isa: InsertInstrBefore index out of range")
	}
	pos := at.Index
	b.Instrs = append(b.Instrs, Instr{})
	copy(b.Instrs[pos+1:], b.Instrs[pos:])
	b.Instrs[pos] = in
	// Adjust every prefetch target computed against the pre-insertion
	// indexing, including the inserted instruction's own.
	for _, blk := range p.Blocks {
		for i := range blk.Instrs {
			ins := &blk.Instrs[i]
			if ins.Kind != KindPrefetch {
				continue
			}
			if ins.Target.Block == at.Block && ins.Target.Index >= pos {
				ins.Target.Index++
			}
		}
	}
	return InstrRef{Block: at.Block, Index: pos}
}

// RemoveInstr deletes the instruction at ref (used to roll back a tentative
// prefetch insertion). Prefetch targets pointing past the removed slot are
// shifted back. Removing a block terminator is rejected.
func (p *Program) RemoveInstr(ref InstrRef) {
	b := p.Blocks[ref.Block]
	k := b.Instrs[ref.Index].Kind
	if k == KindBranch || k == KindJump {
		panic("isa: RemoveInstr would delete a terminator")
	}
	b.Instrs = append(b.Instrs[:ref.Index], b.Instrs[ref.Index+1:]...)
	for _, blk := range p.Blocks {
		for i := range blk.Instrs {
			ins := &blk.Instrs[i]
			if ins.Kind != KindPrefetch {
				continue
			}
			if ins.Target.Block == ref.Block && ins.Target.Index > ref.Index {
				ins.Target.Index--
			}
		}
	}
}

// Clone returns a deep copy of the program. Optimizers work on clones so the
// original stays available as the comparison baseline (the paper's p vs p').
func (p *Program) Clone() *Program {
	q := &Program{
		Name:   p.Name,
		Entry:  p.Entry,
		Base:   p.Base,
		Blocks: make([]*Block, len(p.Blocks)),
		Loops:  make([]LoopInfo, len(p.Loops)),
	}
	for i, b := range p.Blocks {
		nb := &Block{
			ID:        b.ID,
			Instrs:    append([]Instr(nil), b.Instrs...),
			Succs:     append([]int(nil), b.Succs...),
			TakenProb: b.TakenProb,
			Align:     b.Align,
		}
		q.Blocks[i] = nb
	}
	for i, l := range p.Loops {
		q.Loops[i] = LoopInfo{
			Head:     l.Head,
			Blocks:   append([]int(nil), l.Blocks...),
			Bound:    l.Bound,
			AvgIters: l.AvgIters,
			Parent:   l.Parent,
		}
	}
	return q
}

// PrefetchEquivalent reports whether p and q are indistinguishable except
// for their prefetch instructions and the alignment pads accompanying them
// (the paper's Definition 5). It compares control flow and the sequence of
// remaining instructions block by block.
func PrefetchEquivalent(p, q *Program) bool {
	if len(p.Blocks) != len(q.Blocks) || p.Entry != q.Entry {
		return false
	}
	for i := range p.Blocks {
		pb, qb := p.Blocks[i], q.Blocks[i]
		if pb.ID != qb.ID || len(pb.Succs) != len(qb.Succs) {
			return false
		}
		for j := range pb.Succs {
			if pb.Succs[j] != qb.Succs[j] {
				return false
			}
		}
		if !sameModuloPrefetch(pb.Instrs, qb.Instrs) {
			return false
		}
	}
	return true
}

func sameModuloPrefetch(a, b []Instr) bool {
	fa := stripPrefetch(a)
	fb := stripPrefetch(b)
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i].Kind != fb[i].Kind {
			return false
		}
	}
	return true
}

func stripPrefetch(in []Instr) []Instr {
	out := make([]Instr, 0, len(in))
	for _, x := range in {
		if x.Kind != KindPrefetch && x.Kind != KindPad {
			out = append(out, x)
		}
	}
	return out
}
