package isa

import (
	"testing"
	"testing/quick"
)

func straightLine(n int) *Program { return Build("straight", Code(n)) }

func TestBuildStraightLine(t *testing.T) {
	p := straightLine(10)
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.NInstr(); got != 12 { // prologue + 10 + epilogue
		t.Fatalf("NInstr = %d, want 12", got)
	}
	if len(p.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(p.Blocks))
	}
}

func TestBuildIf(t *testing.T) {
	p := Build("if", Code(2), If(0.5, S(Code(3)), S(Code(4))), Code(1))
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// entry(+branch), join, then, else
	if len(p.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(p.Blocks))
	}
	cond := p.Blocks[0]
	if cond.Terminator().Kind != KindBranch || len(cond.Succs) != 2 {
		t.Fatalf("entry should end in a two-way branch, got %v/%v", cond.Terminator().Kind, cond.Succs)
	}
}

func TestBuildIfThenOnly(t *testing.T) {
	p := Build("ifthen", IfThen(0.9, Code(5)))
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cond := p.Blocks[0]
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %v", cond.Succs)
	}
	// Fall-through must go directly to the join block.
	if cond.Succs[1] != 1 {
		t.Fatalf("else target = %d, want join block 1", cond.Succs[1])
	}
}

func TestBuildLoop(t *testing.T) {
	p := Build("loop", Loop(8, 6, Code(4)))
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(p.Loops))
	}
	l := p.Loops[0]
	if l.Bound != 8 || l.AvgIters != 6 || l.Parent != -1 {
		t.Fatalf("loop metadata = %+v", l)
	}
	head := p.Blocks[l.Head]
	if head.Terminator().Kind != KindBranch {
		t.Fatalf("loop head must end in branch")
	}
}

func TestBuildNestedLoops(t *testing.T) {
	p := Build("nest", Loop(5, 5, Code(2), Loop(3, 2, Code(1)), Code(2)))
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(p.Loops))
	}
	if p.Loops[1].Parent != 0 {
		t.Fatalf("inner loop parent = %d, want 0", p.Loops[1].Parent)
	}
	// Inner loop blocks must be a subset of outer loop blocks.
	outer := map[int]bool{}
	for _, b := range p.Loops[0].Blocks {
		outer[b] = true
	}
	for _, b := range p.Loops[1].Blocks {
		if !outer[b] {
			t.Fatalf("inner loop block %d not contained in outer loop", b)
		}
	}
}

func TestSwitchLowering(t *testing.T) {
	p := Build("switch", Switch([]float64{1, 2, 1}, S(Code(2)), S(Code(3)), S(Code(4))))
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestLayoutStartAnchored(t *testing.T) {
	p := straightLine(10)
	lay := NewLayout(p)
	if got := lay.StartAddr(); got != DefaultBaseAddr {
		t.Fatalf("start addr = %#x, want %#x", got, uint64(DefaultBaseAddr))
	}
	if got := lay.Addr(InstrRef{Block: 0, Index: 11}); got != DefaultBaseAddr+11*InstrBytes {
		t.Fatalf("last instr addr = %#x", got)
	}
	if lay.NInstr() != 12 {
		t.Fatalf("NInstr = %d", lay.NInstr())
	}
}

func TestLayoutAlignsLoopHeaders(t *testing.T) {
	p := Build("al", Code(3), Loop(4, 2, Code(5)), Code(2))
	lay := NewLayout(p)
	head := p.Loops[0].Head
	if addr := lay.Addr(InstrRef{Block: head, Index: 0}); addr%DefaultLoopAlign != 0 {
		t.Fatalf("loop header at %#x not %d-byte aligned", addr, DefaultLoopAlign)
	}
	if lay.TextBytes() < uint64(p.NInstr()*InstrBytes) {
		t.Fatal("text smaller than its instructions")
	}
}

// The relocation property the optimizer relies on: inserting an instruction
// leaves every upstream address unchanged and every address beyond the next
// alignment firewall either unchanged or shifted by a whole alignment
// quantum; only the region between the insertion point and that firewall
// slides by InstrBytes.
func TestInsertRelocationFirewall(t *testing.T) {
	p := Build("reloc", Code(4), Loop(5, 3, Code(6)), Code(5))
	before := NewLayout(p)
	head := p.Loops[0].Head
	headAddr := before.Addr(InstrRef{Block: head, Index: 0})
	entryAddr := before.Addr(InstrRef{Block: 0, Index: 1})

	// Insert into the entry block, upstream of the aligned loop header.
	ins := p.InsertInstr(InstrRef{Block: 0, Index: 2}, Instr{Kind: KindPrefetch, Target: InstrRef{Block: head, Index: 0}})
	after := NewLayout(p)

	if after.Addr(InstrRef{Block: 0, Index: 1}) != entryAddr {
		t.Fatal("address before the insertion point moved")
	}
	if d := after.Addr(ins) - before.Addr(InstrRef{Block: 0, Index: 2}); d != InstrBytes {
		t.Fatalf("inserted instruction at unexpected offset (%d)", d)
	}
	newHead := after.Addr(InstrRef{Block: head, Index: 0})
	if newHead%DefaultLoopAlign != 0 {
		t.Fatal("loop header lost its alignment")
	}
	if newHead != headAddr && newHead != headAddr+DefaultLoopAlign {
		t.Fatalf("header moved by a non-quantum amount: %#x -> %#x", headAddr, newHead)
	}
}

func TestInsertAdjustsPrefetchTargets(t *testing.T) {
	p := Build("targets", Code(6))
	// Prefetch pointing at block 0 index 4.
	p.InsertInstr(InstrRef{0, 0}, Instr{Kind: KindPrefetch, Target: InstrRef{0, 4}})
	// Target shifted to index 5 by the insertion at index 1.
	if got := p.Blocks[0].Instrs[1].Target; got != (InstrRef{0, 5}) {
		t.Fatalf("target after first insert = %v, want {0 5}", got)
	}
	// Insert another plain op before the target: target shifts again.
	p.InsertInstr(InstrRef{0, 2}, Instr{Kind: KindOp})
	if got := p.Blocks[0].Instrs[1].Target; got != (InstrRef{0, 6}) {
		t.Fatalf("target after second insert = %v, want {0 6}", got)
	}
	// Insert after the target: no shift.
	p.InsertInstr(InstrRef{0, 6}, Instr{Kind: KindOp})
	if got := p.Blocks[0].Instrs[1].Target; got != (InstrRef{0, 6}) {
		t.Fatalf("target after third insert = %v, want {0 6}", got)
	}
}

func TestRemoveInstrUndoesInsert(t *testing.T) {
	p := Build("undo", Code(5), IfThen(0.5, Code(3)))
	q := p.Clone()
	at := q.InsertInstr(InstrRef{0, 1}, Instr{Kind: KindPrefetch, Target: InstrRef{2, 0}})
	q.RemoveInstr(at)
	if !PrefetchEquivalent(p, q) {
		t.Fatalf("programs differ after insert+remove")
	}
	if p.NInstr() != q.NInstr() {
		t.Fatalf("instruction counts differ: %d vs %d", p.NInstr(), q.NInstr())
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Build("clone", Code(3), Loop(4, 2, Code(2)))
	q := p.Clone()
	q.Blocks[0].Instrs[0].Kind = KindPrefetch
	q.Loops[0].Bound = 99
	if p.Blocks[0].Instrs[0].Kind == KindPrefetch {
		t.Fatal("clone shares instruction storage")
	}
	if p.Loops[0].Bound == 99 {
		t.Fatal("clone shares loop storage")
	}
}

func TestPrefetchEquivalent(t *testing.T) {
	p := Build("eq", Code(4), IfThen(0.3, Code(2)))
	q := p.Clone()
	if !PrefetchEquivalent(p, q) {
		t.Fatal("clone should be prefetch-equivalent")
	}
	q.InsertInstr(InstrRef{0, 1}, Instr{Kind: KindPrefetch, Target: InstrRef{0, 0}})
	if !PrefetchEquivalent(p, q) {
		t.Fatal("adding a prefetch must preserve prefetch-equivalence")
	}
	q.InsertInstr(InstrRef{0, 1}, Instr{Kind: KindOp})
	if PrefetchEquivalent(p, q) {
		t.Fatal("adding a plain op must break prefetch-equivalence")
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	p := straightLine(3)
	p.Blocks[0].Succs = []int{42}
	if err := Validate(p); err == nil {
		t.Fatal("expected out-of-range successor error")
	}

	p = straightLine(3)
	p.Blocks[0].Instrs = nil
	if err := Validate(p); err == nil {
		t.Fatal("expected empty block error")
	}

	p = Build("loopbad", Loop(3, 2, Code(1)))
	p.Loops[0].Bound = 0
	if err := Validate(p); err == nil {
		t.Fatal("expected loop bound error")
	}
}

// Property: for any sequence of insert positions, the layout stays
// monotonically increasing, instruction-contiguous within blocks, and every
// aligned block stays aligned.
func TestLayoutInvariantProperty(t *testing.T) {
	f := func(positions []uint8) bool {
		p := Build("prop", Code(6), Loop(3, 2, Code(7)), IfThen(0.5, Code(4)), Code(3))
		for _, pos := range positions {
			n := p.NInstr()
			k := int(pos) % n
			bi, ii := 0, 0
			g := 0
			for biX, b := range p.Blocks {
				if g+len(b.Instrs) > k {
					bi, ii = biX, k-g
					break
				}
				g += len(b.Instrs)
			}
			kind := p.Blocks[bi].Instrs[ii].Kind
			if (kind == KindBranch || kind == KindJump) && ii == len(p.Blocks[bi].Instrs)-1 {
				continue
			}
			p.InsertInstr(InstrRef{bi, ii}, Instr{Kind: KindOp})
		}
		lay := NewLayout(p)
		prev := uint64(0)
		for _, b := range p.Blocks {
			if b.Align > 0 && lay.Addr(InstrRef{b.ID, 0})%uint64(b.Align) != 0 {
				return false
			}
			for ii := range b.Instrs {
				a := lay.Addr(InstrRef{b.ID, ii})
				if a <= prev {
					return false
				}
				if ii > 0 && a != lay.Addr(InstrRef{b.ID, ii - 1})+InstrBytes {
					return false
				}
				prev = a
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveInstrRejectsTerminator(t *testing.T) {
	p := Build("term", IfThen(0.5, Code(2)))
	defer func() {
		if recover() == nil {
			t.Fatal("removing a terminator must panic")
		}
	}()
	b := p.Blocks[0]
	p.RemoveInstr(InstrRef{0, len(b.Instrs) - 1})
}

func TestInsertInstrBeforeHead(t *testing.T) {
	p := Build("head", Code(4))
	ref := p.InsertInstrBefore(InstrRef{0, 0}, Instr{Kind: KindPrefetch, Target: InstrRef{0, 2}})
	if ref != (InstrRef{0, 0}) {
		t.Fatalf("inserted at %v", ref)
	}
	if p.Blocks[0].Instrs[0].Kind != KindPrefetch {
		t.Fatal("prefetch not at block head")
	}
	// Its own target shifted past the insertion.
	if got := p.Blocks[0].Instrs[0].Target; got != (InstrRef{0, 3}) {
		t.Fatalf("target = %v, want {0 3}", got)
	}
}

func TestNPrefetchAndLoopOf(t *testing.T) {
	p := Build("meta", Loop(3, 2, Code(2)))
	if p.NPrefetch() != 0 {
		t.Fatal("fresh program has no prefetches")
	}
	head := p.Loops[0].Head
	if p.LoopOf(head) != 0 {
		t.Fatal("LoopOf(header) must be its loop")
	}
	if p.LoopOf(p.Entry) != -1 {
		t.Fatal("entry is outside all loops")
	}
}
