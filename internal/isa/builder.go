package isa

import "fmt"

// The structured builder constructs reducible programs from a small
// combinator language (straight-line code, if/else, bounded loops). All 37
// benchmark programs in internal/malardalen are written with it, and the
// structure it records (loop headers, members, bounds) is what the VIVU
// transformation and the IPET formulation consume.

// Node is one element of the structured program tree.
type Node interface {
	lower(lw *lowerer)
}

type codeNode struct{ n int }

type ifNode struct {
	prob      float64
	then, els []Node
}

type loopNode struct {
	bound    int
	avgIters float64
	body     []Node
}

// Code emits n straight-line instructions.
func Code(n int) Node {
	if n < 0 {
		panic("isa: Code with negative length")
	}
	return codeNode{n: n}
}

// If emits a two-way conditional. prob is the probability, used by the
// average-case driver, that the then-branch is taken. Either arm may be nil
// or empty.
func If(prob float64, then, els []Node) Node {
	return ifNode{prob: prob, then: then, els: els}
}

// IfThen is If with an empty else arm.
func IfThen(prob float64, then ...Node) Node { return ifNode{prob: prob, then: then} }

// Loop emits a bounded natural loop: the body executes at most bound times
// per entry, and on average avgIters times in the trace driver.
func Loop(bound int, avgIters float64, body ...Node) Node {
	if bound < 1 {
		panic("isa: Loop bound must be at least 1")
	}
	if avgIters > float64(bound) {
		panic("isa: Loop average iterations exceed the bound")
	}
	return loopNode{bound: bound, avgIters: avgIters, body: body}
}

// S groups nodes into a slice; a small convenience for If arms.
func S(nodes ...Node) []Node { return nodes }

// Switch emits a cascade of two-way conditionals approximating a k-way
// switch: case i carries weight[i] relative probability and body cases[i].
func Switch(weights []float64, cases ...[]Node) Node {
	if len(weights) != len(cases) {
		panic("isa: Switch weights and cases mismatch")
	}
	return buildSwitch(weights, cases)
}

func buildSwitch(weights []float64, cases [][]Node) Node {
	if len(cases) == 1 {
		return ifNode{prob: 1, then: cases[0]}
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	p := 0.0
	if total > 0 {
		p = weights[0] / total
	}
	rest := buildSwitch(weights[1:], cases[1:])
	return ifNode{prob: p, then: cases[0], els: []Node{rest}}
}

type lowerer struct {
	prog      *Program
	cur       *Block
	loopStack []int // indexes into prog.Loops of open loops
}

// Build lowers a structured program tree into a Program. The resulting
// program always starts with a non-empty entry block and ends in a dedicated
// sink block.
func Build(name string, body ...Node) *Program {
	lw := &lowerer{prog: &Program{Name: name, Entry: 0, Base: DefaultBaseAddr}}
	lw.cur = lw.newBlock()
	lw.cur.Align = DefaultLoopAlign
	lw.emitOps(1) // program prologue
	for _, n := range body {
		n.lower(lw)
	}
	lw.emitOps(1) // program epilogue; guarantees a non-empty sink
	if err := Validate(lw.prog); err != nil {
		panic(fmt.Sprintf("isa: Build produced an invalid program: %v", err))
	}
	return lw.prog
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{ID: len(lw.prog.Blocks)}
	lw.prog.Blocks = append(lw.prog.Blocks, b)
	for _, li := range lw.loopStack {
		lp := &lw.prog.Loops[li]
		lp.Blocks = append(lp.Blocks, b.ID)
	}
	return b
}

func (lw *lowerer) emitOps(n int) {
	for i := 0; i < n; i++ {
		lw.cur.Instrs = append(lw.cur.Instrs, Instr{Kind: KindOp})
	}
}

func (c codeNode) lower(lw *lowerer) { lw.emitOps(c.n) }

func (f ifNode) lower(lw *lowerer) {
	cond := lw.cur
	cond.Instrs = append(cond.Instrs, Instr{Kind: KindBranch})
	cond.TakenProb = f.prob

	join := lw.newBlock()

	thenEntry := lw.newBlock()
	// Taken-branch targets are aligned like GCC's -falign-jumps does; the
	// join is aligned too when it is only reachable by jumps (both arms
	// exist), matching the "reached by jumping" rule.
	thenEntry.Align = DefaultLoopAlign
	if len(f.els) > 0 {
		join.Align = DefaultLoopAlign
	}
	lw.cur = thenEntry
	for _, n := range f.then {
		n.lower(lw)
	}
	lw.cur.Instrs = append(lw.cur.Instrs, Instr{Kind: KindJump})
	lw.cur.Succs = []int{join.ID}

	elseTarget := join.ID
	if len(f.els) > 0 {
		elseEntry := lw.newBlock()
		lw.cur = elseEntry
		for _, n := range f.els {
			n.lower(lw)
		}
		lw.cur.Instrs = append(lw.cur.Instrs, Instr{Kind: KindJump})
		lw.cur.Succs = []int{join.ID}
		elseTarget = elseEntry.ID
	}
	cond.Succs = []int{thenEntry.ID, elseTarget}
	lw.cur = join
}

func (l loopNode) lower(lw *lowerer) {
	pre := lw.cur
	pre.Instrs = append(pre.Instrs, Instr{Kind: KindJump})

	li := len(lw.prog.Loops)
	parent := -1
	if len(lw.loopStack) > 0 {
		parent = lw.loopStack[len(lw.loopStack)-1]
	}
	lw.prog.Loops = append(lw.prog.Loops, LoopInfo{
		Bound:    l.bound,
		AvgIters: l.avgIters,
		Parent:   parent,
	})
	lw.loopStack = append(lw.loopStack, li)

	head := lw.newBlock()
	head.Align = DefaultLoopAlign
	head.Instrs = append(head.Instrs, Instr{Kind: KindOp}, Instr{Kind: KindBranch})
	lw.prog.Loops[li].Head = head.ID

	body := lw.newBlock()
	body.Align = DefaultLoopAlign // taken target of the header branch
	lw.cur = body
	for _, n := range l.body {
		n.lower(lw)
	}
	lw.cur.Instrs = append(lw.cur.Instrs, Instr{Kind: KindJump})
	lw.cur.Succs = []int{head.ID} // back edge

	lw.loopStack = lw.loopStack[:len(lw.loopStack)-1]

	exit := lw.newBlock()
	head.Succs = []int{body.ID, exit.ID}
	pre.Succs = []int{head.ID}
	lw.cur = exit
}

// Validate checks the structural invariants every pipeline stage relies on:
// non-empty blocks, terminators consistent with the successor lists, valid
// block references, loop annotations with sane bounds, and an entry that
// reaches every block.
func Validate(p *Program) error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("program %q has no blocks", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Blocks) {
		return fmt.Errorf("program %q entry %d out of range", p.Name, p.Entry)
	}
	for i, b := range p.Blocks {
		if b.ID != i {
			return fmt.Errorf("block %d carries ID %d", i, b.ID)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %d is empty", i)
		}
		for j, in := range b.Instrs {
			isTerm := j == len(b.Instrs)-1
			switch in.Kind {
			case KindBranch:
				if !isTerm {
					return fmt.Errorf("block %d: branch at non-terminator position %d", i, j)
				}
				if len(b.Succs) != 2 {
					return fmt.Errorf("block %d: branch terminator with %d successors", i, len(b.Succs))
				}
			case KindJump:
				if !isTerm {
					return fmt.Errorf("block %d: jump at non-terminator position %d", i, j)
				}
				if len(b.Succs) != 1 {
					return fmt.Errorf("block %d: jump terminator with %d successors", i, len(b.Succs))
				}
			case KindPrefetch:
				t := in.Target
				if t.Block < 0 || t.Block >= len(p.Blocks) {
					return fmt.Errorf("block %d: prefetch target block %d out of range", i, t.Block)
				}
				if t.Index < 0 || t.Index >= len(p.Blocks[t.Block].Instrs) {
					return fmt.Errorf("block %d: prefetch target index %d out of range", i, t.Index)
				}
			}
		}
		t := b.Terminator().Kind
		if t != KindBranch && t != KindJump && len(b.Succs) > 1 {
			return fmt.Errorf("block %d: fall-through with %d successors", i, len(b.Succs))
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(p.Blocks) {
				return fmt.Errorf("block %d: successor %d out of range", i, s)
			}
		}
	}
	for li, l := range p.Loops {
		if l.Bound < 1 {
			return fmt.Errorf("loop %d: bound %d < 1", li, l.Bound)
		}
		if l.AvgIters < 0 || l.AvgIters > float64(l.Bound) {
			return fmt.Errorf("loop %d: average iterations %g outside [0,%d]", li, l.AvgIters, l.Bound)
		}
		if l.Head < 0 || l.Head >= len(p.Blocks) {
			return fmt.Errorf("loop %d: head %d out of range", li, l.Head)
		}
		if l.Parent >= len(p.Loops) || l.Parent < -1 {
			return fmt.Errorf("loop %d: parent %d out of range", li, l.Parent)
		}
		member := false
		for _, b := range l.Blocks {
			if b == l.Head {
				member = true
			}
			if b < 0 || b >= len(p.Blocks) {
				return fmt.Errorf("loop %d: member %d out of range", li, b)
			}
		}
		if !member {
			return fmt.Errorf("loop %d: head %d not among members", li, l.Head)
		}
	}
	// Reachability from the entry.
	seen := make([]bool, len(p.Blocks))
	stack := []int{p.Entry}
	seen[p.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("block %d unreachable from entry", i)
		}
	}
	return nil
}
