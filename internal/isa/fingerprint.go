package isa

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a stable, content-addressed hash of the program: a
// hex-encoded SHA-256 over a canonical binary encoding of everything that
// determines analysis results — the instruction stream (kinds and prefetch
// targets), the control flow (entry, successors), the layout inputs (base
// address, alignment requests, block order), and the loop annotations
// (bounds, average iterations, nesting).
//
// Two Programs with equal Fingerprint are analysis-equivalent: the WCET
// analysis, the optimizer, and the simulator are deterministic functions
// of exactly the encoded fields (plus their own options), so the service
// layer keys its result cache on this hash. Field values are length- and
// position-delimited, making the encoding prefix-free; a one-instruction
// change, a different successor, or a changed loop bound all produce a
// different digest.
func Fingerprint(p *Program) string {
	h := sha256.New()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i := func(v int) { u(uint64(int64(v))) }
	f := func(v float64) { u(math.Float64bits(v)) }
	str := func(s string) {
		u(uint64(len(s)))
		h.Write([]byte(s))
	}

	str(p.Name)
	u(p.Base)
	i(p.Entry)
	i(len(p.Blocks))
	for _, b := range p.Blocks {
		i(b.ID)
		i(b.Align)
		f(b.TakenProb)
		i(len(b.Succs))
		for _, s := range b.Succs {
			i(s)
		}
		i(len(b.Instrs))
		for _, in := range b.Instrs {
			// The prefetch level rides in the high bits of the kind word so
			// level-0 programs (every pre-hierarchy program) keep their
			// exact historical digests.
			u(uint64(in.Kind) | uint64(in.Level)<<8)
			i(in.Target.Block)
			i(in.Target.Index)
		}
	}
	i(len(p.Loops))
	for _, l := range p.Loops {
		i(l.Head)
		i(l.Bound)
		f(l.AvgIters)
		i(l.Parent)
		i(len(l.Blocks))
		for _, b := range l.Blocks {
			i(b)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
