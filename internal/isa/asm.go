package isa

// This file implements the textual program format: a tiny structured
// assembly that mirrors the builder combinators, so benchmark programs and
// user tasks can live in plain files instead of Go code. cmd/ucp-opt and
// friends accept such files via -file.
//
// Grammar (newline-separated, '#' starts a comment):
//
//	program <name>
//	  code <n>                     # n straight-line instructions
//	  loop <bound> [avg <a>]       # bounded loop; avg defaults to bound
//	    ...body...
//	  end
//	  if <prob>                    # two-way conditional
//	    ...then...
//	  else                         # optional
//	    ...else...
//	  end
//	end
//
// Indentation is free-form; block structure comes from loop/if … end.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseAsm reads the textual program format and builds the program.
func ParseAsm(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	var toks []asmLine
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		toks = append(toks, asmLine{no: lineNo, fields: fields})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	p := &asmParser{lines: toks}
	return p.program()
}

// ParseAsmString is ParseAsm over a string.
func ParseAsmString(s string) (*Program, error) { return ParseAsm(strings.NewReader(s)) }

type asmLine struct {
	no     int
	fields []string
}

type asmParser struct {
	lines []asmLine
	pos   int
}

func (p *asmParser) errf(l asmLine, format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", l.no, fmt.Sprintf(format, args...))
}

func (p *asmParser) next() (asmLine, bool) {
	if p.pos >= len(p.lines) {
		return asmLine{}, false
	}
	l := p.lines[p.pos]
	p.pos++
	return l, true
}

func (p *asmParser) peek() (asmLine, bool) {
	if p.pos >= len(p.lines) {
		return asmLine{}, false
	}
	return p.lines[p.pos], true
}

func (p *asmParser) program() (*Program, error) {
	l, ok := p.next()
	if !ok || l.fields[0] != "program" || len(l.fields) != 2 {
		return nil, fmt.Errorf("asm: expected `program <name>` header")
	}
	name := l.fields[1]
	body, err := p.nodes()
	if err != nil {
		return nil, err
	}
	end, ok := p.next()
	if !ok || end.fields[0] != "end" {
		return nil, fmt.Errorf("asm: missing final `end` for program %q", name)
	}
	if extra, ok := p.peek(); ok {
		return nil, p.errf(extra, "trailing input after program end")
	}
	var prog *Program
	err = capturePanic(func() { prog = Build(name, body...) })
	if err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return prog, nil
}

// nodes parses statements until an `end` or `else` (not consumed).
func (p *asmParser) nodes() ([]Node, error) {
	var out []Node
	for {
		l, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("asm: unexpected end of input (missing `end`?)")
		}
		switch l.fields[0] {
		case "end", "else":
			return out, nil
		case "code":
			p.next()
			if len(l.fields) != 2 {
				return nil, p.errf(l, "usage: code <n>")
			}
			n, err := strconv.Atoi(l.fields[1])
			if err != nil || n < 0 {
				return nil, p.errf(l, "bad instruction count %q", l.fields[1])
			}
			out = append(out, Code(n))
		case "loop":
			p.next()
			node, err := p.loop(l)
			if err != nil {
				return nil, err
			}
			out = append(out, node)
		case "if":
			p.next()
			node, err := p.conditional(l)
			if err != nil {
				return nil, err
			}
			out = append(out, node)
		default:
			return nil, p.errf(l, "unknown statement %q", l.fields[0])
		}
	}
}

func (p *asmParser) loop(l asmLine) (Node, error) {
	if len(l.fields) != 2 && !(len(l.fields) == 4 && l.fields[2] == "avg") {
		return nil, p.errf(l, "usage: loop <bound> [avg <a>]")
	}
	bound, err := strconv.Atoi(l.fields[1])
	if err != nil || bound < 1 {
		return nil, p.errf(l, "bad loop bound %q", l.fields[1])
	}
	avg := float64(bound)
	if len(l.fields) == 4 {
		avg, err = strconv.ParseFloat(l.fields[3], 64)
		if err != nil || avg < 0 || avg > float64(bound) {
			return nil, p.errf(l, "bad average iteration count %q", l.fields[3])
		}
	}
	body, err := p.nodes()
	if err != nil {
		return nil, err
	}
	end, ok := p.next()
	if !ok || end.fields[0] != "end" {
		return nil, p.errf(l, "loop not closed with `end`")
	}
	return Loop(bound, avg, body...), nil
}

func (p *asmParser) conditional(l asmLine) (Node, error) {
	if len(l.fields) != 2 {
		return nil, p.errf(l, "usage: if <taken-probability>")
	}
	prob, err := strconv.ParseFloat(l.fields[1], 64)
	if err != nil || prob < 0 || prob > 1 {
		return nil, p.errf(l, "bad probability %q", l.fields[1])
	}
	then, err := p.nodes()
	if err != nil {
		return nil, err
	}
	var els []Node
	if nl, ok := p.peek(); ok && nl.fields[0] == "else" {
		p.next()
		els, err = p.nodes()
		if err != nil {
			return nil, err
		}
	}
	end, ok := p.next()
	if !ok || end.fields[0] != "end" {
		return nil, p.errf(l, "if not closed with `end`")
	}
	return If(prob, then, els), nil
}

func capturePanic(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	f()
	return nil
}

// WriteAsm serializes a structured program back to the textual format. Only
// programs with the shapes the builder produces can be serialized; it
// returns an error for irregular control flow (hand-built CFGs) and for
// programs already carrying prefetch instructions.
func WriteAsm(w io.Writer, p *Program) error {
	s := &asmWriter{p: p, w: w}
	fmt.Fprintf(w, "program %s\n", p.Name)
	if err := s.region(p.Entry, -1, 1); err != nil {
		return err
	}
	fmt.Fprintln(w, "end")
	return nil
}

type asmWriter struct {
	p *Program
	w io.Writer
}

func (s *asmWriter) indent(depth int) string { return strings.Repeat("  ", depth) }

// region emits the chain of blocks from id until stop (exclusive), following
// the shapes Build generates.
func (s *asmWriter) region(id, stop, depth int) error {
	p := s.p
	for id != stop {
		b := p.Blocks[id]
		plain := len(b.Instrs)
		term := b.Terminator().Kind
		if term == KindBranch || term == KindJump {
			plain--
		}
		// Build adds one synthetic prologue and epilogue instruction; they
		// must not be re-serialized or every round trip would grow by two.
		if id == p.Entry {
			plain--
		}
		if len(b.Succs) == 0 {
			plain--
		}
		for _, in := range b.Instrs {
			if in.Kind == KindPrefetch || in.Kind == KindPad {
				return fmt.Errorf("asm: cannot serialize optimized programs (prefetch present)")
			}
		}
		if plain > 0 {
			fmt.Fprintf(s.w, "%scode %d\n", s.indent(depth), plain)
		}
		switch term {
		case KindBranch:
			li := s.loopHeadedBy(id)
			if li >= 0 {
				// Emitted by the caller via the loop construct.
				return fmt.Errorf("asm: unexpected loop header in region at block %d", id)
			}
			join, err := s.emitIf(b, depth)
			if err != nil {
				return err
			}
			id = join
		case KindJump:
			next := b.Succs[0]
			if next == stop {
				// The region-closing jump (an arm end or a loop latch's
				// back edge); the caller continues from here.
				return nil
			}
			if li := s.loopHeadedBy(next); li >= 0 {
				exit, err := s.emitLoop(li, depth)
				if err != nil {
					return err
				}
				id = exit
				continue
			}
			id = next
		default:
			return nil // sink
		}
	}
	return nil
}

func (s *asmWriter) loopHeadedBy(id int) int {
	for li := range s.p.Loops {
		if s.p.Loops[li].Head == id {
			return li
		}
	}
	return -1
}

func (s *asmWriter) emitLoop(li, depth int) (exit int, err error) {
	l := s.p.Loops[li]
	head := s.p.Blocks[l.Head]
	if len(head.Succs) != 2 {
		return 0, fmt.Errorf("asm: loop %d header malformed", li)
	}
	if l.AvgIters == float64(l.Bound) {
		fmt.Fprintf(s.w, "%sloop %d\n", s.indent(depth), l.Bound)
	} else {
		fmt.Fprintf(s.w, "%sloop %d avg %g\n", s.indent(depth), l.Bound, l.AvgIters)
	}
	if err := s.region(head.Succs[0], l.Head, depth+1); err != nil {
		return 0, err
	}
	fmt.Fprintf(s.w, "%send\n", s.indent(depth))
	return head.Succs[1], nil
}

func (s *asmWriter) emitIf(b *Block, depth int) (join int, err error) {
	fmt.Fprintf(s.w, "%sif %g\n", s.indent(depth), b.TakenProb)
	thenEntry, elseTarget := b.Succs[0], b.Succs[1]
	join = s.joinOf(thenEntry)
	if err := s.region(thenEntry, join, depth+1); err != nil {
		return 0, err
	}
	if elseTarget != join {
		fmt.Fprintf(s.w, "%selse\n", s.indent(depth))
		if err := s.region(elseTarget, join, depth+1); err != nil {
			return 0, err
		}
	}
	fmt.Fprintf(s.w, "%send\n", s.indent(depth))
	return join, nil
}

// joinOf finds where an if-arm rejoins: the target of the arm's final jump.
func (s *asmWriter) joinOf(entry int) int {
	id := entry
	for steps := 0; steps < len(s.p.Blocks)*4; steps++ {
		b := s.p.Blocks[id]
		switch b.Terminator().Kind {
		case KindJump:
			next := b.Succs[0]
			if li := s.loopHeadedBy(next); li >= 0 {
				id = s.p.Blocks[next].Succs[1] // loop exit
				continue
			}
			// A jump whose target we can only confirm as the join by
			// structure: the builder ends each arm with a jump to the join.
			if s.isArmEnd(id) {
				return next
			}
			id = next
		case KindBranch:
			// Nested if inside the arm: skip to its join.
			id = s.joinOf(b.Succs[0])
		default:
			return id // ran into a sink
		}
	}
	return id
}

// isArmEnd reports whether the block's jump is the arm-closing jump (its
// target has multiple predecessors — a join block).
func (s *asmWriter) isArmEnd(id int) bool {
	target := s.p.Blocks[id].Succs[0]
	preds := 0
	for _, b := range s.p.Blocks {
		for _, v := range b.Succs {
			if v == target {
				preds++
			}
		}
	}
	return preds >= 2
}
