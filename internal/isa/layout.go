package isa

// DefaultBaseAddr is the address at which program text starts when a
// program does not override it via EndAddr-compatible settings. The value
// is block-aligned for every cache block size in the evaluation.
const DefaultBaseAddr = 1 << 16

// DefaultLoopAlign is the alignment, in bytes, applied to loop headers by
// the builder — the moral equivalent of GCC's -falign-loops on the paper's
// ARM toolchain.
const DefaultLoopAlign = 16

// Layout assigns an address to every instruction of a program.
//
// Blocks are laid out in slice order from a fixed base address. A block
// with a non-zero Align starts at the next multiple of its alignment; the
// assembler-style padding in between belongs to no instruction and is never
// fetched.
//
// The alignment boundaries are what makes prefetch insertion tractable:
// inserting an instruction shifts only the addresses between the insertion
// point and the next aligned block, whose padding absorbs the growth (or
// moves the remainder of the text by whole alignment quanta). Without them
// a 4-byte insertion would re-phase every downstream cache-block boundary
// in the program, and the relocation cost rcost (Equation 8 of the paper)
// would reject almost every candidate.
type Layout struct {
	prog  *Program
	addrs [][]uint64 // addrs[blockID][instrIndex]
	total int        // total instruction count
	end   uint64     // one past the last instruction
}

// NewLayout computes the address layout of p.
func NewLayout(p *Program) *Layout {
	base := p.Base
	if base == 0 {
		base = DefaultBaseAddr
	}
	l := &Layout{prog: p, addrs: make([][]uint64, len(p.Blocks))}
	addr := base
	n := 0
	for i, b := range p.Blocks {
		if b.Align > 0 {
			rem := addr % uint64(b.Align)
			if rem != 0 {
				addr += uint64(b.Align) - rem
			}
		}
		row := make([]uint64, len(b.Instrs))
		for j := range b.Instrs {
			row[j] = addr
			addr += InstrBytes
			n++
		}
		l.addrs[i] = row
	}
	l.total = n
	l.end = addr
	return l
}

// Addr returns the address of the instruction at ref.
func (l *Layout) Addr(ref InstrRef) uint64 { return l.addrs[ref.Block][ref.Index] }

// StartAddr returns the address of the first instruction of the program
// text.
func (l *Layout) StartAddr() uint64 {
	for _, row := range l.addrs {
		if len(row) > 0 {
			return row[0]
		}
	}
	return l.end
}

// EndAddr returns the address one past the last instruction.
func (l *Layout) EndAddr() uint64 { return l.end }

// NInstr returns the total number of instructions covered by the layout.
func (l *Layout) NInstr() int { return l.total }

// TextBytes returns the total text size including alignment padding.
func (l *Layout) TextBytes() uint64 { return l.end - l.StartAddr() }

// MemBlock returns the memory block index of ref for the given cache block
// size in bytes. Two instructions share a memory block exactly when they
// share this index; the index is also what a prefetch instruction loads.
func (l *Layout) MemBlock(ref InstrRef, blockBytes int) uint64 {
	return l.Addr(ref) / uint64(blockBytes)
}

// BlockSpan returns the first and one-past-last memory block indexes covered
// by the program text for the given cache block size.
func (l *Layout) BlockSpan(blockBytes int) (lo, hi uint64) {
	return l.StartAddr() / uint64(blockBytes), (l.end + uint64(blockBytes) - 1) / uint64(blockBytes)
}

// PrefetchTargetBlock resolves the memory block loaded by the prefetch
// instruction at ref. It panics if ref does not name a prefetch.
func (l *Layout) PrefetchTargetBlock(ref InstrRef, blockBytes int) uint64 {
	in := l.prog.Instr(ref)
	if in.Kind != KindPrefetch {
		panic("isa: PrefetchTargetBlock on a non-prefetch instruction")
	}
	return l.MemBlock(in.Target, blockBytes)
}
