// Package store is the persistent tier of the content-addressed result
// cache: a directory of immutable, sha256-keyed entry files that survives
// process restarts and can be shared by several ucp-serve replicas over a
// common filesystem. The analysis pipeline is deterministic — one
// (program, config, tech, policy, options) key always names one result —
// so an entry, once written, never changes; the store only ever creates,
// reads, and deletes whole files.
//
// Durability and integrity:
//
//   - Writes are atomic: the envelope goes to a temporary file in the same
//     directory, is fsynced, and is then renamed over the final name.
//     Readers (this process or a sibling replica) see either the complete
//     entry or none at all, never a torn write.
//   - Every entry is a versioned envelope carrying the key it was written
//     under and a SHA-256 over the payload bytes. Get verifies both; a
//     truncated, corrupted, or misfiled entry is deleted and reported as a
//     miss — the caller re-runs the analysis and rewrites the entry, so
//     disk rot degrades into recomputation, never into wrong answers.
//   - Flush fsyncs the directory itself, making the rename batch durable;
//     ucp-serve calls it (via Close) while draining.
//
// Capacity is bounded by total payload bytes with least-recently-used
// eviction. Recency is tracked in memory (seeded from file modification
// times at Open), so eviction order is approximate across replicas —
// acceptable for a cache whose misses are merely slower, not wrong.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// envelopeVersion tags the on-disk format; bumping it invalidates every
// existing entry wholesale (they fail decoding and are evicted lazily).
const envelopeVersion = 1

// entrySuffix names entry files: <key>.ucp in the store directory.
const entrySuffix = ".ucp"

// envelope is the on-disk entry format. Sum is the lowercase hex SHA-256
// of Payload exactly as stored; Key repeats the content address so a file
// renamed or copied under the wrong name is detected as misfiled.
type envelope struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	Sum     string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Stats is a point-in-time snapshot of the store's counters and occupancy.
type Stats struct {
	Hits      int64 // Get calls answered from a verified entry
	Misses    int64 // Get calls with no (usable) entry
	Evictions int64 // entries removed: capacity pressure or failed integrity
	Corrupt   int64 // subset of Evictions caused by integrity failures
	Entries   int   // resident entries (as indexed by this process)
	Bytes     int64 // resident payload+envelope bytes
}

// Store is a bounded, persistent, content-addressed result store. Safe for
// concurrent use by multiple goroutines; safe for concurrent use by
// multiple processes sharing the directory (entries are immutable and
// writes atomic — only the eviction accounting is per-process).
type Store struct {
	dir      string
	maxBytes int64

	mu   sync.Mutex
	ents map[string]*entry // key -> index entry
	size int64             // sum of indexed file sizes
	seq  int64             // recency clock; higher = more recent

	hits, misses, evictions, corrupt atomic.Int64
	closed                           atomic.Bool
}

// entry is the in-memory index record for one on-disk file.
type entry struct {
	size int64
	seq  int64 // last-use tick (monotonic, per process)
}

// DefaultMaxBytes bounds a store whose caller passed no explicit budget:
// 256 MiB holds on the order of a hundred thousand result envelopes.
const DefaultMaxBytes = 256 << 20

// Open creates (if needed) and indexes the store directory. Existing
// entries are adopted with recency seeded from their modification times;
// their contents are verified lazily on Get, not up front, so opening a
// large store is one directory scan. An unreadable directory is an error;
// unreadable individual files are skipped (they will read as misses).
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, ents: map[string]*entry{}}

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	type adopted struct {
		key   string
		size  int64
		mtime int64
	}
	var found []adopted
	for _, de := range names {
		name := de.Name()
		key, ok := strings.CutSuffix(name, entrySuffix)
		if !ok || !validKey(key) {
			// Foreign files (editor droppings, tmp files from a crashed
			// writer) are left alone and never counted against the budget.
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, adopted{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	// Oldest first, so the in-memory recency order reproduces the on-disk
	// modification order and eviction starts with the stalest entries.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, a := range found {
		s.seq++
		s.ents[a.key] = &entry{size: a.size, seq: s.seq}
		s.size += a.size
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// validKey constrains keys to lowercase hex (the sha256 content addresses
// the service produces), which doubles as a path-traversal guard: a key
// can never name anything outside the store directory.
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+entrySuffix)
}

// Get returns the payload stored under key, verifying the envelope's
// version, key echo, and integrity hash. A missing entry is a miss; an
// unreadable or corrupted one is deleted (counted as a corrupt eviction)
// and reported as a miss — never as an error, because the caller can
// always recompute. Entries written by sibling replicas are found even if
// this process has never indexed them.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil || !validKey(key) || s.closed.Load() {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		s.drop(key, false)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil ||
		env.V != envelopeVersion || env.Key != key || !sumMatches(env) {
		// Truncated write from a crashed sibling, bit rot, or a misfiled
		// copy: evict the carcass so the next Put can heal it.
		s.misses.Add(1)
		s.corrupt.Add(1)
		s.evictions.Add(1)
		s.removeFile(key)
		s.drop(key, false)
		return nil, false
	}
	s.touch(key, int64(len(raw)))
	s.hits.Add(1)
	return env.Payload, true
}

func sumMatches(env envelope) bool {
	want, err := hex.DecodeString(env.Sum)
	if err != nil || len(want) != sha256.Size {
		return false
	}
	got := sha256.Sum256(env.Payload)
	return got == [sha256.Size]byte(want)
}

// Put stores payload under key with write-temp-then-rename atomicity. A
// key already resident is refreshed in recency but not rewritten (entries
// are immutable — same key, same bytes). Putting more than the budget in
// one entry is allowed; it simply evicts everything else.
func (s *Store) Put(key string, payload []byte) error {
	if s == nil {
		return nil
	}
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if s.closed.Load() {
		return fmt.Errorf("store: closed")
	}

	s.mu.Lock()
	if e, ok := s.ents[key]; ok {
		s.seq++
		e.seq = s.seq
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	sum := sha256.Sum256(payload)
	raw, err := json.Marshal(envelope{
		V:       envelopeVersion,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: json.RawMessage(payload),
	})
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", key, err)
	}

	// Temp file in the same directory so the rename is same-filesystem and
	// atomic; fsync before rename so the entry is never renamed into place
	// with its data still in flight.
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, s.path(key))
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", key, err)
	}

	s.mu.Lock()
	s.seq++
	// A racing Put of the same key may have indexed it while we wrote; the
	// rename already collapsed the files, so only refresh the index.
	if e, ok := s.ents[key]; ok {
		e.seq = s.seq
		e.size = int64(len(raw))
	} else {
		s.ents[key] = &entry{size: int64(len(raw)), seq: s.seq}
		s.size += int64(len(raw))
	}
	victims := s.evictLocked(key)
	s.mu.Unlock()
	for _, v := range victims {
		s.evictions.Add(1)
		s.removeFile(v)
	}
	return nil
}

// evictLocked selects least-recently-used victims until the store is back
// within budget, never evicting keep. It updates the index; the caller
// removes the files outside the lock. Caller holds s.mu.
func (s *Store) evictLocked(keep string) []string {
	if s.size <= s.maxBytes {
		return nil
	}
	type cand struct {
		key string
		seq int64
	}
	cands := make([]cand, 0, len(s.ents))
	for k, e := range s.ents {
		if k != keep {
			cands = append(cands, cand{key: k, seq: e.seq})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	var victims []string
	for _, c := range cands {
		if s.size <= s.maxBytes {
			break
		}
		s.size -= s.ents[c.key].size
		delete(s.ents, c.key)
		victims = append(victims, c.key)
	}
	return victims
}

// touch records a use of key, adopting entries this process has not
// indexed yet (a sibling replica wrote them).
func (s *Store) touch(key string, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if e, ok := s.ents[key]; ok {
		e.seq = s.seq
		return
	}
	s.ents[key] = &entry{size: size, seq: s.seq}
	s.size += size
}

// drop removes key from the index only (the file is handled separately).
func (s *Store) drop(key string, _ bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.ents[key]; ok {
		s.size -= e.size
		delete(s.ents, key)
	}
}

// removeFile best-effort deletes key's entry file; a racing sibling may
// have removed it already.
func (s *Store) removeFile(key string) {
	_ = os.Remove(s.path(key))
}

// Flush makes the current entry set durable by fsyncing the store
// directory: every rename performed so far survives a crash after Flush
// returns. Entry data is already fsynced at Put time.
func (s *Store) Flush() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// Close flushes and marks the store closed; subsequent Gets miss and Puts
// fail. Close is how a draining ucp-serve guarantees its last results are
// on disk before the process exits.
func (s *Store) Close() error {
	if s == nil || s.closed.Swap(true) {
		return nil
	}
	return s.Flush()
}

// Stats snapshots the counters and occupancy.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	entries, bytes := len(s.ents), s.size
	s.mu.Unlock()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}
