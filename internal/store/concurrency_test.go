package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// ckey derives a valid (lowercase-hex) store key from an integer.
func ckey(n int) string { return fmt.Sprintf("%064x", n) }

// cpayload is a self-describing JSON payload (the store envelopes
// json.RawMessage): any torn or cross-wired read surfaces as a mismatch
// against the key it was fetched under.
func cpayload(n int) []byte {
	k := ckey(n)
	return []byte(fmt.Sprintf(`{"key":%q,"fill":%q}`, k, k+k+k+k+k+k)) // ~480 bytes
}

// TestStoreConcurrentPutGetEvict (satellite) hammers Put/Get under -race
// with a budget small enough that eviction runs constantly. Two
// invariants: a Get that hits returns exactly the bytes written for that
// key (no torn reads — the checksum envelope must turn any partial write
// into a miss, never garbage), and a Put never evicts the key it just
// wrote (the keep guard), so write-then-read on one goroutine always hits.
func TestStoreConcurrentPutGetEvict(t *testing.T) {
	// ~4 payloads fit; every few Puts evict.
	s, err := Open(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Sequential warm-up pins the keep guard without concurrency noise:
	// even while older entries fall out, the just-written key must hit.
	for i := 0; i < 32; i++ {
		if err := s.Put(ckey(i), cpayload(i)); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get(ckey(i))
		if !ok {
			t.Fatalf("Put(%d) then Get missed: eviction dropped the just-written key", i)
		}
		if !bytes.Equal(got, cpayload(i)) {
			t.Fatalf("Get(%d) returned wrong payload", i)
		}
	}

	const (
		writers   = 4
		readers   = 4
		keySpace  = 16
		perWorker = 150
	)
	var wg sync.WaitGroup
	errs := make(chan string, (writers+readers)*perWorker)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := (w*perWorker + i) % keySpace
				if err := s.Put(ckey(n), cpayload(n)); err != nil {
					errs <- fmt.Sprintf("Put(%d): %v", n, err)
					return
				}
				// A sibling writer may legitimately evict this key between
				// our Put and Get; a hit, though, must be byte-exact.
				if got, ok := s.Get(ckey(n)); ok && !bytes.Equal(got, cpayload(n)) {
					errs <- fmt.Sprintf("writer %d: torn read on key %d", w, n)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := (r + i) % keySpace
				// A miss is legal (evicted or not yet written); a hit must be
				// byte-exact.
				if got, ok := s.Get(ckey(n)); ok && !bytes.Equal(got, cpayload(n)) {
					errs <- fmt.Sprintf("reader %d: torn read on key %d (%d bytes)", r, n, len(got))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The budget held: the store never reports more bytes than its cap
	// plus one in-flight entry.
	if st := s.Stats(); st.Bytes > 4096+int64(len(cpayload(0))) {
		t.Errorf("store size %d exceeds budget slack", st.Bytes)
	}
}
