package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// key returns a distinct valid content address for test entry i.
func key(i int) string {
	h := sha256.Sum256([]byte{byte(i), byte(i >> 8)})
	return hex.EncodeToString(h[:])
}

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	payload := []byte(`{"program":"crc","wcet_opt":1234,"energy_opt_pj":56.78}`)
	if err := s.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(1))
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip not byte-identical:\n got %s\nwant %s", got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 0 misses, 1 entry", st)
	}
}

// TestReopenServesWithoutRecompute is the restart round-trip: a second
// Store over the same directory serves byte-identical payloads.
func TestReopenServesWithoutRecompute(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	payload := []byte(`{"tau":99}`)
	if err := s.Put(key(7), payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(7)); ok {
		t.Fatal("closed store must miss")
	}

	s2 := mustOpen(t, dir, 0)
	got, ok := s2.Get(key(7))
	if !ok {
		t.Fatal("reopened store missed a persisted entry")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("restart round trip not byte-identical: %s", got)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

// TestTruncatedEntryIsMissAndEvicted covers a torn write from a crashed
// sibling: the integrity envelope fails to decode, the entry reads as a
// miss, and the carcass is removed from disk.
func TestTruncatedEntryIsMissAndEvicted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put(key(3), []byte(`{"a":1,"b":"some longer payload to truncate"}`)); err != nil {
		t.Fatal(err)
	}
	path := s.path(key(3))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key(3)); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("truncated entry not evicted from disk: %v", err)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Corrupt != 1 || st.Evictions != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 miss, 1 corrupt, 1 eviction, 0 entries", st)
	}
	// The next Put heals the slot.
	if err := s.Put(key(3), []byte(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(3)); !ok {
		t.Fatal("rewritten entry missed")
	}
}

// TestCorruptedPayloadFailsIntegrityHash flips one payload byte in an
// otherwise well-formed envelope: the sha256 check must catch it.
func TestCorruptedPayloadFailsIntegrityHash(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put(key(4), []byte(`{"value":12345}`)); err != nil {
		t.Fatal(err)
	}
	path := s.path(key(4))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the payload; the envelope JSON stays valid.
	mut := bytes.Replace(raw, []byte("12345"), []byte("12945"), 1)
	if bytes.Equal(mut, raw) {
		t.Fatal("test setup: payload byte not found")
	}
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key(4)); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want corrupt=1 evictions=1", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupted entry not removed")
	}
}

// TestMisfiledEntryRejected: an entry copied under a different (valid) key
// fails the key echo check even though its hash is internally consistent.
func TestMisfiledEntryRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put(key(5), []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(key(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key(6)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(6)); ok {
		t.Fatal("misfiled entry served under the wrong key")
	}
	if _, ok := s.Get(key(5)); !ok {
		t.Fatal("original entry lost")
	}
}

func TestEvictionKeepsStoreWithinBudget(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 256)
	body := fmt.Sprintf(`{"pad":%q}`, payload)
	// Budget for roughly three entries (envelope overhead included).
	s := mustOpen(t, dir, 3*int64(len(body)+200))
	for i := 0; i < 8; i++ {
		if err := s.Put(key(i), []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the byte budget")
	}
	if st.Bytes > 3*int64(len(body)+200) {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
	// The most recent entry must always survive.
	if _, ok := s.Get(key(7)); !ok {
		t.Fatal("most recently written entry was evicted")
	}
	// The oldest must be gone, from the index and from disk.
	if _, err := os.Stat(s.path(key(0))); !os.IsNotExist(err) {
		t.Fatal("oldest entry still on disk after eviction")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != st.Entries {
		t.Fatalf("disk has %d entries, index has %d", len(files), st.Entries)
	}
}

// TestEvictionPrefersLeastRecentlyUsed: touching an old entry via Get
// saves it from the next eviction round.
func TestEvictionPrefersLeastRecentlyUsed(t *testing.T) {
	body := fmt.Sprintf(`{"pad":%q}`, bytes.Repeat([]byte("y"), 256))
	s := mustOpen(t, t.TempDir(), 3*int64(len(body)+200))
	for i := 0; i < 3; i++ {
		if err := s.Put(key(i), []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(key(0)); !ok { // promote the oldest
		t.Fatal("entry 0 missing")
	}
	if err := s.Put(key(9), []byte(body)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, err := os.Stat(s.path(key(1))); !os.IsNotExist(err) {
		t.Fatal("least recently used entry survived eviction")
	}
}

// TestSiblingWrittenEntryIsFound: an entry that appeared in the directory
// after Open (another replica wrote it) is served and adopted.
func TestSiblingWrittenEntryIsFound(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	sibling := mustOpen(t, dir, 0)
	if err := sibling.Put(key(11), []byte(`{"shared":true}`)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(11))
	if !ok {
		t.Fatal("entry written by a sibling replica missed")
	}
	if string(got) != `{"shared":true}` {
		t.Fatalf("payload = %s", got)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("sibling entry not adopted into the index: %+v", st)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	for _, k := range []string{"", "short", "../../../../etc/passwd", "ABCDEF0123456789ABCDEF", key(1) + "/x"} {
		if err := s.Put(k, []byte("{}")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", k)
		}
		if _, ok := s.Get(k); ok {
			t.Errorf("Get(%q) hit on an invalid key", k)
		}
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "put-123.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, 0)
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("foreign files adopted: %+v", st)
	}
}

// TestConcurrentPutGet exercises the locking under the race detector.
func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := key(i % 5)
				if err := s.Put(k, []byte(fmt.Sprintf(`{"i":%d}`, i%5))); err != nil {
					t.Error(err)
					return
				}
				s.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != 5 {
		t.Fatalf("entries = %d, want 5", st.Entries)
	}
}
