package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	p := New(4)
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	var done [100]atomic.Bool
	err := p.ForEach(context.Background(), len(done), func(_ context.Context, i int) error {
		done[i].Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, peak atomic.Int64
	err := p.ForEach(context.Background(), 50, func(_ context.Context, i int) error {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds bound %d", got, workers)
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	p := New(2)
	boom := errors.New("boom")
	var started atomic.Int64
	err := p.ForEach(context.Background(), 1000, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		select {
		case <-ctx.Done():
		case <-time.After(50 * time.Millisecond):
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); n == 1000 {
		t.Error("error did not stop new tasks from starting")
	}
}

func TestForEachParentCancel(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ran := 0
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := p.ForEach(ctx, 10000, func(context.Context, int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran == 10000 {
		t.Error("cancellation did not stop the spawn loop")
	}
}

func TestForEachRecoversPanic(t *testing.T) {
	p := New(2)
	before := PanicsRecovered()
	var ran atomic.Int64
	err := p.ForEach(context.Background(), 8, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Task != 2 {
		t.Errorf("PanicError.Task = %d, want 2", pe.Task)
	}
	if pe.Value != "kaboom" {
		t.Errorf("PanicError.Value = %v, want kaboom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
	if got := PanicsRecovered(); got != before+1 {
		t.Errorf("PanicsRecovered = %d, want %d", got, before+1)
	}
}

func TestRecoverHelper(t *testing.T) {
	if err := Recover(func() error { return nil }); err != nil {
		t.Fatalf("Recover(ok fn) = %v", err)
	}
	boom := errors.New("boom")
	if err := Recover(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Recover(err fn) = %v, want %v", err, boom)
	}
	err := Recover(func() error { panic(42) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Recover(panic fn) = %v (%T), want *PanicError", err, err)
	}
	if pe.Task != -1 {
		t.Errorf("PanicError.Task = %d, want -1", pe.Task)
	}
	if pe.Value != 42 {
		t.Errorf("PanicError.Value = %v, want 42", pe.Value)
	}
}

func TestPanicFailsBatchNotSiblings(t *testing.T) {
	// A panic fails its ForEach batch (first-error semantics) but tasks
	// that already started still run to completion — the pool never loses
	// the process or strands siblings mid-flight.
	p := New(4)
	var completed atomic.Int64
	err := p.ForEach(context.Background(), 4, func(ctx context.Context, i int) error {
		if i == 0 {
			panic("one bad cell")
		}
		time.Sleep(5 * time.Millisecond)
		completed.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if completed.Load() == 0 {
		t.Error("no sibling task completed after one panicked")
	}
}

func TestSharedPoolAcrossForEach(t *testing.T) {
	p := New(2)
	var cur, peak atomic.Int64
	task := func(context.Context, int) error {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.ForEach(context.Background(), 10, task); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("shared pool peak %d exceeds bound 2", got)
	}
}
