// Package pool provides the bounded worker pool shared by the analysis
// service (internal/service) and the evaluation sweep
// (internal/experiment). One Pool instance bounds the number of analysis
// cells in flight across every caller that shares it, so a server with
// GOMAXPROCS workers cannot be pushed past the hardware by a burst of
// sweep jobs.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Pool bounds the number of concurrently running tasks. The zero value is
// not usable; construct with New.
type Pool struct {
	workers int
	sem     chan struct{}
}

// New returns a pool running at most workers tasks at once. A
// non-positive workers selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(ctx, i) for i in [0, n), at most Workers at a time, and
// waits for every started task to finish. The first non-nil error cancels
// the context passed to the remaining tasks and stops new tasks from
// starting; that error is returned. If the parent context is cancelled
// before all tasks have started, ForEach stops launching and returns the
// context's error (already-started tasks still run to completion).
//
// Several ForEach calls may share one Pool concurrently; the bound applies
// to the union of their tasks. Do not call ForEach from inside a task of
// the same pool — the held slot can deadlock the inner call.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

spawn:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break spawn
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.sem }()
				if err := fn(ctx, i); err != nil {
					fail(err)
				}
			}(i)
		}
	}
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return context.Cause(ctx)
}
