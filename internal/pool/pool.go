// Package pool provides the bounded worker pool shared by the analysis
// service (internal/service) and the evaluation sweep
// (internal/experiment). One Pool instance bounds the number of analysis
// cells in flight across every caller that shares it, so a server with
// GOMAXPROCS workers cannot be pushed past the hardware by a burst of
// sweep jobs.
//
// Every task runs behind a panic barrier: a panic inside a task is
// recovered, converted into a *PanicError carrying the stack, and treated
// as that task's error instead of crashing the process. Callers that want
// finer-grained isolation (fail one unit of work, keep the batch going)
// wrap the risky region with Recover themselves.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"

	"ucp/internal/faults"
	"ucp/internal/obs"
)

// PanicError is a panic recovered at a task boundary, preserved as an
// error: the panic value, the goroutine stack at the point of the panic,
// and the task index (-1 when recovered outside ForEach). The stack is
// for the server log; Error() deliberately omits it so the message is
// safe to surface to clients.
type PanicError struct {
	Task  int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Task < 0 {
		return fmt.Sprintf("panic recovered: %v", e.Value)
	}
	return fmt.Sprintf("task %d panicked: %v", e.Task, e.Value)
}

// panicsRecovered counts every panic converted to a *PanicError, process
// wide, registered directly in the obs registry as
// ucp_panics_recovered_total.
var panicsRecovered = obs.NewCounter("ucp_panics_recovered_total",
	"Panics recovered from analysis tasks.")

// PanicsRecovered returns the process-wide recovered-panic count.
func PanicsRecovered() int64 { return panicsRecovered.Value() }

// Recover runs fn and converts a panic into a *PanicError (Task = -1).
// It is the isolation primitive ForEach applies per task; callers that
// must survive a failing unit of work (a sweep recording one cell as
// failed and moving on) use it directly around the risky region.
func Recover(fn func() error) (err error) {
	return recoverTask(-1, fn)
}

func recoverTask(task int, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			panicsRecovered.Inc()
			err = &PanicError{Task: task, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Pool bounds the number of concurrently running tasks. The zero value is
// not usable; construct with New.
type Pool struct {
	workers int
	sem     chan struct{}
}

// New returns a pool running at most workers tasks at once. A
// non-positive workers selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(ctx, i) for i in [0, n), at most Workers at a time, and
// waits for every started task to finish. The first non-nil error cancels
// the context passed to the remaining tasks and stops new tasks from
// starting; that error is returned. A panic inside fn is recovered and
// counts as that task's error, as a *PanicError carrying the stack — one
// misbehaving task can fail its batch but never the process. If the
// parent context is cancelled before all tasks have started, ForEach
// stops launching and returns the context's error (already-started tasks
// still run to completion).
//
// Several ForEach calls may share one Pool concurrently; the bound applies
// to the union of their tasks. Do not call ForEach from inside a task of
// the same pool — the held slot can deadlock the inner call.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

spawn:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break spawn
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.sem }()
				err := recoverTask(i, func() error {
					if ferr := faults.Fire(ctx, "pool.task", strconv.Itoa(i)); ferr != nil {
						return ferr
					}
					return fn(ctx, i)
				})
				if err != nil {
					fail(err)
				}
			}(i)
		}
	}
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return context.Cause(ctx)
}
