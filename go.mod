module ucp

go 1.22
