// Quickstart: build a small real-time task with the structured program
// builder, run the cache-aware WCET analysis, optimize it with
// unlocked-cache prefetching, and verify the paper's guarantee — the memory
// contribution to the WCET never grows (Theorem 1) while misses drop.
package main

import (
	"context"
	"fmt"
	"log"

	"ucp/internal/cache"
	"ucp/internal/core"
	"ucp/internal/isa"
	"ucp/internal/sim"
	"ucp/internal/wcet"
)

func main() {
	// A little DSP-ish task: a sample loop whose body slightly overflows
	// the instruction cache — the classic situation where on-demand
	// fetching keeps paying conflict misses every iteration.
	task := isa.Build("quickstart",
		isa.Code(12), // setup
		isa.Loop(64, 60,
			isa.Code(40), // filter stage
			isa.If(0.8, isa.S(isa.Code(30)), isa.S(isa.Code(12))), // common vs. rare path
			isa.Code(35), // accumulate
		),
		isa.Code(8), // epilogue
	)

	cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}
	par := wcet.Params{HitCycles: 1, MissPenalty: 16, Lambda: 16}

	before, err := wcet.Analyze(context.Background(), task, cfg, par)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original:  τ_w = %d cycles, %d WCET-scenario misses\n", before.TauW, before.Misses)

	optimized, report, err := core.Optimize(context.Background(), task, cfg, core.Options{Par: par})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized: τ_w = %d cycles, %d WCET-scenario misses (%d prefetches inserted)\n",
		report.TauAfter, report.MissesAfter, report.Inserted)

	if report.TauAfter > before.TauW {
		log.Fatal("Theorem 1 violated — this must never happen")
	}
	fmt.Printf("guarantee: τ_w reduced by %.1f%% and provably never increased\n",
		100*(1-float64(report.TauAfter)/float64(before.TauW)))

	// The average case follows along (the paper's Condition 3).
	so := sim.Options{Par: par, Seed: 1, Runs: 5}
	a := sim.Run(task, cfg, so)
	b := sim.Run(optimized, cfg, so)
	fmt.Printf("simulated: ACET %.0f -> %.0f cycles (%.1f%%), miss rate %.2f%% -> %.2f%%\n",
		a.ACETCycles(), b.ACETCycles(), 100*(1-b.ACETCycles()/a.ACETCycles()),
		100*a.MissRate(), 100*b.MissRate())
}
