// Rtostask models the paper's motivating scenario (Section 1): a baseband
// task set on an RTOS, where each task owns an effective slice of the
// instruction cache and must meet a WCET budget. The optimization buys
// headroom on every task without ever invalidating a budget — the
// reconciliation of real-time guarantees and energy efficiency.
package main

import (
	"context"
	"fmt"
	"log"

	"ucp/internal/cache"
	"ucp/internal/core"
	"ucp/internal/energy"
	"ucp/internal/malardalen"
	"ucp/internal/wcet"
)

// task pairs a program with its effective cache slice and deadline budget
// (in memory cycles — the quantity the analysis bounds).
type task struct {
	name     string
	slice    cache.Config
	budgetCy int64
}

func main() {
	// A protocol-stack flavored task set: tight slices for the small
	// helpers, a bigger slice for the state machine.
	tasks := []task{
		{"crc", cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 256}, 0},
		{"adpcm", cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}, 0},
		{"compress", cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 512}, 0},
		{"statemate", cache.Config{Assoc: 4, BlockBytes: 16, CapacityBytes: 2048}, 0},
	}

	fmt.Println("RTOS task set: WCET budgets before and after unlocked-cache prefetching (32nm)")
	fmt.Printf("\n%-12s %-12s %12s %12s %9s %9s\n", "task", "cache slice", "bound before", "bound after", "headroom", "pft")

	var totalBefore, totalAfter int64
	for _, tk := range tasks {
		b, ok := malardalen.ByName(tk.name)
		if !ok {
			log.Fatalf("unknown task %s", tk.name)
		}
		mdl := energy.NewModel(tk.slice, energy.Tech32)
		par := mdl.WCETParams()

		before, err := wcet.Analyze(context.Background(), b.Prog, tk.slice, par)
		if err != nil {
			log.Fatal(err)
		}
		_, rep, err := core.Optimize(context.Background(), b.Prog, tk.slice, core.Options{Par: par})
		if err != nil {
			log.Fatal(err)
		}
		// A schedulability budget set 5% above the original bound: the
		// optimized task must still fit (Theorem 1 makes this trivial) and
		// the freed cycles are schedulable slack.
		budget := before.TauW + before.TauW/20
		if rep.TauAfter > budget {
			log.Fatalf("%s: optimized bound exceeds its budget — impossible by Theorem 1", tk.name)
		}
		totalBefore += before.TauW
		totalAfter += rep.TauAfter
		fmt.Printf("%-12s %-12v %12d %12d %8.2f%% %9d\n",
			tk.name, tk.slice, before.TauW, rep.TauAfter,
			100*(1-float64(rep.TauAfter)/float64(before.TauW)), rep.Inserted)
	}
	fmt.Printf("\ntask-set memory WCET: %d -> %d cycles (%.2f%% schedulable slack gained)\n",
		totalBefore, totalAfter, 100*(1-float64(totalAfter)/float64(totalBefore)))
	fmt.Println("every per-task budget provably still holds: the optimization never increases a bound.")
}
