// Smallercache demonstrates the paper's Figure-5 argument: because
// prefetching is independent from locality, a binary optimized for a cache
// 2–4× smaller can approach (or beat) the original binary on the full-size
// cache — and the smaller cache leaks less and costs less per access, so
// the energy drops further. The example scans a few candidates and reports
// the cells where the trade works (the paper's "shaded areas").
package main

import (
	"context"
	"fmt"
	"log"

	"ucp/internal/cache"
	"ucp/internal/core"
	"ucp/internal/energy"
	"ucp/internal/malardalen"
	"ucp/internal/sim"
)

func main() {
	fmt.Println("binaries optimized for a half-size cache vs. the original on the full cache (45nm)")
	fmt.Printf("\n%-12s %10s | %12s %12s | %12s %12s\n",
		"program", "full", "ACET ratio", "energy ratio", "sustained?", "prefetches")

	programs := []string{"crc", "fdct", "whet", "compress", "adpcm", "lms", "qsort-exam", "select", "edn"}
	for _, name := range programs {
		b, ok := malardalen.ByName(name)
		if !ok {
			log.Fatalf("unknown program %s", name)
		}
		// Pick the smallest full-size cache that comfortably holds the
		// program, then drop to half of it.
		text := b.Prog.NInstr() * 4
		full := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: 1024}
		for full.CapacityBytes < text && full.CapacityBytes < 8192 {
			full.CapacityBytes *= 2
		}
		half := full
		half.CapacityBytes /= 2

		mFull := energy.NewModel(full, energy.Tech45)
		mHalf := energy.NewModel(half, energy.Tech45)

		orig := sim.Run(b.Prog, full, sim.Options{Par: mFull.WCETParams(), Seed: 9, Runs: 3})
		eOrig := mFull.Energy(orig.Account()).TotalPJ()

		opt, rep, err := core.Optimize(context.Background(), b.Prog, half, core.Options{Par: mHalf.WCETParams()})
		if err != nil {
			log.Fatal(err)
		}
		small := sim.Run(opt, half, sim.Options{Par: mHalf.WCETParams(), Seed: 9, Runs: 3})
		eSmall := mHalf.Energy(small.Account()).TotalPJ()

		acetRatio := small.ACETCycles() / orig.ACETCycles()
		energyRatio := eSmall / eOrig
		sustained := "no"
		if acetRatio <= 1.02 {
			sustained = "YES"
		}
		fmt.Printf("%-12s %9dB | %11.3f %12.3f | %12s %12d\n",
			name, full.CapacityBytes, acetRatio, energyRatio, sustained, rep.Inserted)
	}
	fmt.Println("\nratios < 1 mean the half-size deployment is cheaper/faster than the full-size original;")
	fmt.Println("\"sustained\" marks the cells inside the paper's shaded areas, where halving the cache is free.")
}
