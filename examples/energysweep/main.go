// Energysweep reproduces the Figure-3 experience for one program: optimize
// it for every cache capacity of the paper's ladder and watch how the
// energy, ACET and WCET improvements move with the cache size — large when
// the program overflows the cache, fading once everything fits.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ucp/internal/cache"
	"ucp/internal/cliutil"
	"ucp/internal/core"
	"ucp/internal/energy"
	"ucp/internal/sim"
)

func main() {
	name := "fdct"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := cliutil.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("energy sweep for %s (%d instructions ≈ %d bytes of text) at 45nm, 2-way, 16B blocks\n\n",
		b.Name, b.Prog.NInstr(), b.Prog.NInstr()*4)
	fmt.Printf("%9s %6s %9s %9s %9s %10s\n", "capacity", "pft", "WCETΔ", "ACETΔ", "energyΔ", "missrate")

	for _, capacity := range []int{256, 512, 1024, 2048, 4096, 8192} {
		cfg := cache.Config{Assoc: 2, BlockBytes: 16, CapacityBytes: capacity}
		mdl := energy.NewModel(cfg, energy.Tech45)
		par := mdl.WCETParams()

		opt, rep, err := core.Optimize(context.Background(), b.Prog, cfg, core.Options{Par: par})
		if err != nil {
			log.Fatal(err)
		}
		so := sim.Options{Par: par, Seed: 7, Runs: 3}
		orig := sim.Run(b.Prog, cfg, so)
		after := sim.Run(opt, cfg, so)
		eOrig := mdl.Energy(orig.Account()).TotalPJ()
		eOpt := mdl.Energy(after.Account()).TotalPJ()

		fmt.Printf("%8dB %6d %8.2f%% %8.2f%% %8.2f%%   %5.2f%%→%5.2f%%\n",
			capacity, rep.Inserted,
			100*(1-float64(rep.TauAfter)/float64(rep.TauBefore)),
			100*(1-after.ACETCycles()/orig.ACETCycles()),
			100*(1-eOpt/eOrig),
			100*orig.MissRate(), 100*after.MissRate())
	}
}
