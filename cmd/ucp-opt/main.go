// Command ucp-opt runs the unlocked-cache prefetching optimization on one
// benchmark program and reports what it did: insertions, the rejection
// breakdown of the joint improvement criterion, and the before/after WCET.
//
// Usage:
//
//	ucp-opt -program fdct -config k5 -tech 45nm [-policy lru|fifo|plru] [-budget 700] [-dump] [-explain]
//	ucp-opt -program fdct -config k5 -tech 45nm -trace [-trace-dir /tmp/traces]
//	ucp-opt -program fdct -config k1 -l2-assoc 4 -l2-block-bytes 32 -l2-capacity-bytes 8192 -explain
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ucp/internal/cache"
	"ucp/internal/cliutil"
	"ucp/internal/core"
	"ucp/internal/energy"
	"ucp/internal/interrupt"
	"ucp/internal/isa"
	"ucp/internal/obs"
)

func main() {
	var (
		program  = flag.String("program", "fdct", "benchmark name (see ucp-bench -table 1) or path to a program file (isa asm format)")
		config   = flag.String("config", "k5", "cache configuration label k1..k36 (see ucp-bench -table 2)")
		policy   = flag.String("policy", "lru", "cache replacement policy: lru, fifo, or plru")
		tech     = flag.String("tech", "45nm", "process technology: 45nm or 32nm")
		budget   = flag.Int("budget", 0, "validation budget (0 = default)")
		dump     = flag.Bool("dump", false, "dump the optimized program's prefetch instructions")
		explain  = flag.Bool("explain", false, "print the per-candidate decision report (why each prefetch was inserted or rejected)")
		trace    = flag.Bool("trace", false, "print the optimization span tree (where the time went)")
		traceDir = flag.String("trace-dir", "", "persist the optimization span tree to this durable trace-sink directory (implies recording)")
	)
	l2Flag := cliutil.L2Flags(nil)
	flag.Parse()

	prog, label, err := cliutil.LoadProgram(*program)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	_, cfg, tn, err := cliutil.ConfigTech(*config, *tech)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.Policy, err = cliutil.Policy(*policy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	l2, err := l2Flag()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h := cache.Hier1(cfg)
	h.L2 = l2
	if err := h.Valid(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM abort the optimization cooperatively: the current pass
	// unwinds, nothing is emitted (the optimization is all-or-nothing), and
	// the exit code is non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -trace/-trace-dir record the optimization under a span recorder: the
	// same "core.optimize" spans that feed ucp-serve's ?trace=1 feed the
	// terminal here, and the durable sink when -trace-dir is set.
	var rec *obs.Recorder
	if *trace || *traceDir != "" {
		rec = obs.NewRecorder("opt")
		ctx = rec.Install(ctx)
	}

	mdl := energy.NewModelHier(h, tn)
	opt, rep, err := core.OptimizeHier(ctx, prog, h, core.Options{
		Par: mdl.WCETParams(), ValidationBudget: *budget, Explain: *explain,
	})
	if err != nil {
		if interrupt.Is(err) {
			fmt.Fprintln(os.Stderr, "ucp-opt: interrupted — optimization aborted, no output produced")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "optimize:", err)
		os.Exit(1)
	}

	fmt.Printf("program   %s: %d instructions, %d blocks, %d loops\n",
		label, prog.NInstr(), len(prog.Blocks), len(prog.Loops))
	fmt.Printf("cache     %s %v  (%d sets × %d ways, %dB blocks)\n",
		*config, cfg, cfg.NumSets(), cfg.Assoc, cfg.BlockBytes)
	if h.HasL2() {
		fmt.Printf("L2        %v  (%d sets × %d ways, %dB blocks)\n",
			h.L2, h.L2.NumSets(), h.L2.Assoc, h.L2.BlockBytes)
	}
	fmt.Printf("memory    %s\n", mdl)
	fmt.Println()
	if h.HasL2() {
		var l2pft int
		for _, blk := range opt.Blocks {
			for _, in := range blk.Instrs {
				if in.Kind == isa.KindPrefetch && in.Level == 2 {
					l2pft++
				}
			}
		}
		fmt.Printf("prefetches inserted   %d (%d into L1, %d into L2; after pruning %d parasites)\n",
			rep.Inserted, rep.Inserted-l2pft, l2pft, rep.Pruned)
	} else {
		fmt.Printf("prefetches inserted   %d (after pruning %d parasites)\n", rep.Inserted, rep.Pruned)
	}
	fmt.Printf("candidates examined   %d over %d passes, %d re-analyses\n", rep.Candidates, rep.Passes, rep.Validations)
	fmt.Printf("rejections            terminator=%d no-use=%d already-hit=%d ineffective=%d "+
		"target-is-prefetch=%d duplicate=%d validation=%d\n",
		rep.RejectedTerminator, rep.RejectedNoUse, rep.RejectedAlreadyHit, rep.RejectedIneffective,
		rep.RejectedTargetIsPft, rep.RejectedDuplicate, rep.RejectedValidation)
	fmt.Println()
	fmt.Printf("τ_w (memory WCET)     %d -> %d cycles  (%.2f%% reduction)\n",
		rep.TauBefore, rep.TauAfter, 100*(1-float64(rep.TauAfter)/float64(rep.TauBefore)))
	fmt.Printf("WCET-scenario misses  %d -> %d\n", rep.MissesBefore, rep.MissesAfter)
	if h.HasL2() {
		fmt.Printf("WCET L2 misses        %d -> %d\n", rep.L2MissesBefore, rep.L2MissesAfter)
	}
	fmt.Printf("WCET-scenario fetches %d -> %d (%+.2f%%)\n",
		rep.FetchesBefore, rep.FetchesAfter,
		100*(float64(rep.FetchesAfter)/float64(rep.FetchesBefore)-1))

	if rec != nil {
		rec.Release()
		if *trace {
			fmt.Println("\ntrace (span, wall time, attributes):")
			cliutil.PrintSpanTree(os.Stdout, rec.Tree(), 1)
		}
		if err := cliutil.SaveTrace(*traceDir, "opt-"+label, rec.Tree()); err != nil {
			fmt.Fprintln(os.Stderr, "trace sink:", err)
		}
	}

	if *explain {
		fmt.Println("\ndecision report (candidate → verdict):")
		for _, d := range rep.Decisions {
			verdict := "rejected"
			if d.Inserted {
				verdict = "INSERTED"
			}
			lvl := ""
			if d.Level == 2 {
				lvl = " L2"
			}
			fmt.Printf("  bb%d[%d]%s target %#x: %-8s %-18s", d.Block, d.Index, lvl, d.Target, verdict, d.Reason)
			switch d.Reason {
			case "no-next-use":
				// No insertion point was ever established; the costs are
				// meaningless for this candidate.
			case "terminator":
				fmt.Printf(" use=bb%d[%d] mcost=%d", d.Use.Block, d.Use.Index, d.MCost)
			default:
				fmt.Printf(" at=bb%d[%d] use=bb%d[%d] mcost=%d pcost=%d",
					d.At.Block, d.At.Index, d.Use.Block, d.Use.Index, d.MCost, d.PCost)
				if d.RCost > 0 {
					fmt.Printf(" rcost=%d", d.RCost)
				}
				fmt.Printf(" gap=%d Λ=%d effective=%t profitable=%t",
					d.Gap, d.Lambda, d.Effective, d.Profitable)
				if d.L1Class != "" || d.L2Class != "" {
					fmt.Printf(" class(L1/L2)=%s/%s", d.L1Class, d.L2Class)
				}
			}
			fmt.Println()
		}
	}

	if *dump {
		fmt.Println("\ninserted prefetch instructions:")
		lay := isa.NewLayout(opt)
		for _, blk := range opt.Blocks {
			for i, in := range blk.Instrs {
				if in.Kind != isa.KindPrefetch {
					continue
				}
				ref := isa.InstrRef{Block: blk.ID, Index: i}
				bb, level := cfg.BlockBytes, "L1"
				if in.Level == 2 {
					bb, level = h.L2.BlockBytes, "L2"
				}
				fmt.Printf("  %#06x: prefetch %s block %#x (target %v at %#06x)\n",
					lay.Addr(ref), level, lay.PrefetchTargetBlock(ref, bb),
					in.Target, lay.Addr(in.Target))
			}
		}
	}
}
