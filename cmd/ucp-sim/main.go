// Command ucp-sim runs the trace-driven simulator on one benchmark program —
// original and optimized — and reports ACET, miss rate, prefetch traffic,
// and the energy breakdown, optionally against a hardware prefetcher or a
// statically locked cache.
//
// Usage:
//
//	ucp-sim -program adpcm -config k2 -tech 32nm [-policy lru|fifo|plru] [-runs 5] [-hw next-line-tagged] [-locked]
//	ucp-sim -program adpcm -config k1 -l2-assoc 4 -l2-block-bytes 32 -l2-capacity-bytes 8192
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ucp/internal/cache"
	"ucp/internal/cliutil"
	"ucp/internal/core"
	"ucp/internal/energy"
	"ucp/internal/hwpref"
	"ucp/internal/locking"
	"ucp/internal/sim"
)

func main() {
	var (
		program = flag.String("program", "adpcm", "benchmark program name")
		config  = flag.String("config", "k2", "cache configuration label k1..k36")
		policy  = flag.String("policy", "lru", "cache replacement policy: lru, fifo, or plru")
		tech    = flag.String("tech", "45nm", "process technology: 45nm or 32nm")
		runs    = flag.Int("runs", 3, "average-case executions")
		seed    = flag.Int64("seed", 7, "driver seed")
		hwName  = flag.String("hw", "", "attach a hardware prefetcher baseline (e.g. next-line-tagged)")
		locked  = flag.Bool("locked", false, "also report the statically locked cache baseline")
	)
	l2Flag := cliutil.L2Flags(nil)
	flag.Parse()

	b, err := cliutil.Benchmark(*program)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	_, cfg, tn, err := cliutil.ConfigTech(*config, *tech)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.Policy, err = cliutil.Policy(*policy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	l2, err := l2Flag()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h := cache.Hier1(cfg)
	h.L2 = l2
	if err := h.Valid(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	mdl := energy.NewModelHier(h, tn)
	par := mdl.WCETParams()
	base := sim.Options{Par: par, Seed: *seed, Runs: *runs}

	if h.HasL2() {
		fmt.Printf("program %s on %s %v + L2 %v at %s (%d runs)\n\n", b.Name, *config, cfg, h.L2, tn, *runs)
	} else {
		fmt.Printf("program %s on %s %v at %s (%d runs)\n\n", b.Name, *config, cfg, tn, *runs)
	}
	report := func(label string, s sim.Stats) {
		e := mdl.Energy(s.Account())
		fmt.Printf("%-22s acet=%-9.0f missrate=%6.2f%%  dram=%-7d pft(iss/red)=%d/%d  energy=%.1fnJ (dyn %.1f + static %.1f)",
			label, s.ACETCycles(), 100*s.MissRate(), s.DRAMReads,
			s.PrefetchIssued, s.PrefetchRedundant,
			e.TotalPJ()/1e3/float64(s.Runs), e.DynamicPJ/1e3/float64(s.Runs), e.StaticPJ/1e3/float64(s.Runs))
		if h.HasL2() {
			fmt.Printf("  l2(hit/miss)=%d/%d l2missrate=%.2f%%", s.L2Hits, s.L2Misses, 100*s.L2MissRate())
		}
		fmt.Println()
	}

	orig := sim.RunHier(b.Prog, h, base)
	report("original", orig)

	opt, rep, err := core.OptimizeHier(context.Background(), b.Prog, h, core.Options{Par: par})
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimize:", err)
		os.Exit(1)
	}
	optStats := sim.RunHier(opt, h, base)
	report(fmt.Sprintf("optimized (+%d pft)", rep.Inserted), optStats)

	if *hwName != "" {
		var hw hwpref.Prefetcher
		for _, p := range hwpref.All() {
			if p.Name() == *hwName {
				hw = p
			}
		}
		if hw == nil {
			names := make([]string, 0, 6)
			for _, p := range hwpref.All() {
				names = append(names, p.Name())
			}
			fmt.Fprintf(os.Stderr, "unknown prefetcher %q; known: %v\n", *hwName, names)
			os.Exit(2)
		}
		o := base
		o.HW = hw
		report("hw: "+hw.Name(), sim.RunHier(b.Prog, h, o))
	}

	if *locked {
		sel, err := locking.Select(context.Background(), b.Prog, cfg, par)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locking:", err)
			os.Exit(1)
		}
		o := base
		o.Locked = sel.Blocks
		report(fmt.Sprintf("locked (%d blocks)", len(sel.Blocks)), sim.RunHier(b.Prog, h, o))
		fmt.Printf("\nlocked-cache WCET bound: %d cycles (exact); unlocked analysis bound: see ucp-wcet\n", sel.TauW)
	}
}
