// Command ucp-serve runs the analysis-as-a-service HTTP server: the full
// unlocked-cache-prefetching pipeline behind a JSON API with a
// content-addressed result cache, a bounded worker pool, and Prometheus
// metrics. See internal/service for the endpoint list.
//
// Usage:
//
//	ucp-serve -addr :8080
//	ucp-serve -addr :8080 -store-dir /var/lib/ucp/results   # restart-proof cache
//	ucp-serve -addr :8080 -journal-dir /var/lib/ucp/jobs    # crash-recoverable sweep jobs
//	ucp-serve -addr :8081 -worker                           # worker replica
//	ucp-serve -addr :8080 -worker-urls http://w1:8081,http://w2:8081
//	                                                        # coordinator: cells run on replicas
//	ucp-serve -addr :8080 -trace-dir /var/lib/ucp/traces -trace-sample 0.01
//	                                                        # durable trace/event sink
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/analyze \
//	     -d '{"program":"crc","config":"k14","tech":"45nm"}'
//
// The server drains gracefully on SIGINT/SIGTERM: listeners close, in
// -flight requests finish (up to -drain), and running sweep jobs are
// cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers on DefaultServeMux, served only when -pprof is enabled
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ucp/internal/dist"
	"ucp/internal/journal"
	"ucp/internal/obs"
	"ucp/internal/service"
	"ucp/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent analysis cells (0 = GOMAXPROCS)")
		entries  = flag.Int("cache-entries", 512, "result-cache bound (entries)")
		maxBody  = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		timeout  = flag.Duration("job-timeout", 15*time.Minute, "per-sweep-job deadline")
		drain    = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
		storeDir = flag.String("store-dir", "", "persistent result-store directory; empty disables the disk tier")
		storeMax = flag.Int64("store-max-bytes", store.DefaultMaxBytes, "persistent result-store size bound in bytes")
		jrnlDir  = flag.String("journal-dir", "", "job-journal directory; sweep jobs survive a crash and resume on restart (empty disables)")
		worker   = flag.Bool("worker", false, "expose POST /v1/worker/cell for a distributed coordinator")
		workerAt = flag.String("worker-urls", "", "comma-separated worker base URLs (ucp-serve -worker); cells dispatch to replicas instead of running in-process")
		probeIvl = flag.Duration("probe-interval", 2*time.Second, "worker health-probe interval for -worker-urls (0 disables the prober)")
		traceDir = flag.String("trace-dir", "", "durable trace/event sink directory; empty keeps traces response-only")
		traceSmp = flag.Float64("trace-sample", 0, "head-sampling rate [0..1] for persisting successful request traces (failed and slow requests always persist)")
		traceMax = flag.Int64("trace-max-bytes", obs.DefaultSinkMaxBytes, "trace-sink segment size bound in bytes before rotation")
		pprofAt  = flag.String("pprof", "", "pprof listen address (e.g. localhost:6060); empty disables profiling")
		logJSON  = flag.Bool("log-json", false, "emit request logs as JSON lines instead of logfmt-style text")
	)
	flag.Parse()

	// One structured line per request (with its request ID) comes from the
	// service's logging middleware; this only picks the encoding.
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	// Profiling is off by default: the API handler never touches
	// http.DefaultServeMux, so the pprof routes are reachable only through
	// this separate listener, enabled by -pprof or the UCP_PPROF env var.
	if *pprofAt == "" {
		*pprofAt = os.Getenv("UCP_PPROF")
	}
	if *pprofAt != "" {
		go func(addr string) {
			logger.Info("pprof listening", "addr", addr)
			if err := http.ListenAndServe(addr, nil); err != nil {
				logger.Error("pprof", "err", err)
			}
		}(*pprofAt)
	}
	// The persistent tier outlives the service: it opens before and closes
	// after, so a drain's final cache writes are flushed durably.
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, *storeMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Info("result store open", "dir", *storeDir, "max_bytes", *storeMax,
			"entries", st.Stats().Entries, "bytes", st.Stats().Bytes)
	}
	// The journal likewise outlives the service: service.New replays it and
	// resumes any interrupted sweep jobs before the listener exists, so a
	// poller that reconnects after the restart never observes a gap.
	var jnl *journal.Journal
	if *jrnlDir != "" {
		var err error
		jnl, err = journal.Open(*jrnlDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Info("job journal open", "dir", *jrnlDir, "seq", jnl.Seq())
	}
	// The trace sink outlives the service for the same reason the store
	// does: the drain's last traced requests must land durably before the
	// process exits.
	var sink *obs.Sink
	if *traceDir != "" {
		var err error
		sink, err = obs.OpenSink(*traceDir, *traceMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Info("trace sink open", "dir", *traceDir, "sample", *traceSmp)
	}
	// -worker-urls turns this replica into a coordinator: sweep cells and
	// analyze requests execute on the listed workers via internal/dist,
	// with traceparent and X-Request-Id propagated on every dispatch.
	var coord *dist.Coordinator
	if *workerAt != "" {
		var urls []string
		for _, u := range strings.Split(*workerAt, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		var err error
		coord, err = dist.New(dist.Options{
			Workers:       urls,
			ProbeInterval: *probeIvl,
			Hedge:         true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer coord.Close()
		logger.Info("coordinator mode", "workers", len(urls))
	}
	cfg := service.Config{
		Workers:      *workers,
		CacheEntries: *entries,
		MaxBodyBytes: *maxBody,
		JobTimeout:   *timeout,
		Store:        st,
		Journal:      jnl,
		EnableWorker: *worker,
		TraceSink:    sink,
		TraceSample:  *traceSmp,
		Logger:       logger,
	}
	if coord != nil {
		cfg.CellExec = coord.Exec
	}
	svc := service.New(cfg)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("ucp-serve listening", "addr", *addr, "workers", *workers)

	select {
	case err := <-errc:
		// Listener failed before any signal (e.g. port in use).
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", *drain)
	// Flip /readyz to 503 and cancel running sweep jobs first, so in-flight
	// cells start unwinding while the listener drains its last requests.
	svc.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown", "err", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err)
	}
	// Wait for the job goroutines to exit, then flush the store: every
	// result computed up to the drain is durable for the next process.
	svc.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			logger.Error("store close", "err", err)
		}
	}
	if err := sink.Close(); err != nil {
		logger.Error("trace sink close", "err", err)
	}
	logger.Info("bye")
}
