// Command ucp-bench reproduces the paper's evaluation: it sweeps benchmark
// programs over cache configurations and technologies, then renders the
// requested figure or table of the paper (Figures 3, 4, 5, 7, 8; Tables 1
// and 2), or everything at once.
//
// Usage:
//
//	ucp-bench -table 1
//	ucp-bench -figure 3 -programs fdct,crc -configs k1,k5,k14 [-policy plru]
//	ucp-bench -all -out results.txt          # the full 37×36×2 sweep
//	ucp-bench -figure 3 -worker-urls http://w1:8081,http://w2:8081
//	                                         # fan the cells across replicas
//	ucp-bench -figure 9 -programs fdct,crc -configs k1 -l2s none,4x32x8192
//	                                         # hierarchy frontier: L1-only vs L1+L2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ucp/internal/cache"
	"ucp/internal/cliutil"
	"ucp/internal/dist"
	"ucp/internal/experiment"
	"ucp/internal/interrupt"
	"ucp/internal/obs"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "render one figure: 3, 4, 5, 7, 8 or 9 (hierarchy frontier)")
		table    = flag.Int("table", 0, "render one table: 1 or 2")
		all      = flag.Bool("all", false, "render every figure (and the headline averages)")
		programs = flag.String("programs", "all", "comma-separated benchmark subset")
		configs  = flag.String("configs", "all", "comma-separated configuration subset (k labels)")
		techs    = flag.String("techs", "all", "comma-separated technology subset")
		policy   = flag.String("policy", "lru", "cache replacement policy for the sweep: lru, fifo, or plru")
		runs     = flag.Int("runs", 3, "average-case executions per measurement")
		budget   = flag.Int("budget", 0, "optimizer validation budget per cell (0 = default)")
		workers  = flag.Int("workers", 0, "cells analyzed concurrently (0 = GOMAXPROCS, 1 = serial)")
		workerAt = flag.String("worker-urls", "", "comma-separated worker base URLs (ucp-serve -worker); empty runs the sweep in-process")
		probeIvl = flag.Duration("probe-interval", 2*time.Second, "worker health-probe interval for -worker-urls (0 disables the prober)")
		hedge    = flag.Bool("hedge", true, "hedge straggling cells onto a second healthy worker (-worker-urls only)")
		progress = flag.Bool("progress", false, "print one line per completed cell to stderr")
		verbose  = flag.Bool("v", false, "print per-cell completion lines (benchmark, config, policy, duration) to stderr via the span recorder")
		traceDir = flag.String("trace-dir", "", "persist the sweep's span tree to this durable trace-sink directory")
		out      = flag.String("out", "", "also write the report to this file")
		csvOut   = flag.String("csv", "", "write the raw per-use-case measurements to this CSV file")
		l2Sweep  = flag.String("l2s", "", "comma-separated L2 sweep axis (ASSOCxBLOCKxCAPACITY[:policy] or none), e.g. none,4x32x8192")
	)
	l2Flag := cliutil.L2Flags(nil)
	flag.Parse()

	if *table != 0 {
		switch *table {
		case 1:
			exitOn(experiment.Table1(os.Stdout))
		case 2:
			exitOn(experiment.Table2(os.Stdout))
		default:
			fmt.Fprintln(os.Stderr, "unknown table; want 1 or 2")
			os.Exit(2)
		}
		return
	}
	if *figure == 0 && !*all {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -figure N, -table N or -all")
		os.Exit(2)
	}

	progs, err := cliutil.ProgramList(*programs)
	exitOn(err)
	cfgs, err := cliutil.ConfigList(*configs)
	exitOn(err)
	tns, err := cliutil.TechList(*techs)
	exitOn(err)
	pol, err := cliutil.Policy(*policy)
	exitOn(err)
	l2, err := l2Flag()
	exitOn(err)
	l2s, err := cliutil.L2GeometryList(*l2Sweep)
	exitOn(err)
	if l2 != (cache.Config{}) && len(l2s) > 0 {
		fmt.Fprintln(os.Stderr, "pass either the -l2-* flags (one L2 for every cell) or -l2s (a sweep axis), not both")
		os.Exit(2)
	}

	opts := experiment.Options{
		Programs:         progs,
		Configs:          cfgs,
		Techs:            tns,
		Policy:           pol,
		L2:               l2,
		L2s:              l2s,
		Runs:             *runs,
		ValidationBudget: *budget,
		Workers:          *workers,
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	// -worker-urls swaps the cell executor for the distributed coordinator;
	// nothing downstream changes — results land by index, so figures and
	// CSV are byte-identical to an in-process sweep.
	if *workerAt != "" {
		var urls []string
		for _, u := range strings.Split(*workerAt, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		coord, err := dist.New(dist.Options{
			Workers:       urls,
			ProbeInterval: *probeIvl,
			Hedge:         *hedge,
		})
		exitOn(err)
		defer coord.Close()
		opts.Exec = coord.Exec
	}

	// SIGINT/SIGTERM cancel the sweep cooperatively: in-flight cells unwind
	// at their next cancellation check, no partial results are rendered, and
	// the exit code is non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -v hangs per-cell completion lines off the span recorder: every
	// "experiment.cell" span that ends is one analyzed use case. The same
	// spans feed ?trace=1 in ucp-serve; here they feed stderr, and with
	// -trace-dir the finished tree lands in the durable sink — including
	// the dist.attempt spans and grafted worker trees of a -worker-urls
	// sweep, so a distributed run leaves one stitched trace on disk.
	var rec *obs.Recorder
	if *verbose || *traceDir != "" {
		rec = obs.NewRecorder("sweep")
		ctx = rec.Install(ctx)
		defer rec.Release()
	}
	if *verbose {
		rec.OnEnd = func(name string, d time.Duration, attrs []obs.Attr) {
			if name != "experiment.cell" {
				return
			}
			get := func(key string) any {
				for _, a := range attrs {
					if a.Key == key {
						return a.Value
					}
				}
				return ""
			}
			line := fmt.Sprintf("cell %-12v %-4v %-5v %-5v inserted=%-3v",
				get("program"), get("config"), get("tech"), get("policy"), get("inserted"))
			// Hierarchy cells carry per-level tallies; single-level cells
			// only the L1 pair.
			if h := get("l1_hits"); h != "" {
				line += fmt.Sprintf(" l1(hit/miss)=%v/%v", h, get("l1_misses"))
			}
			if h := get("l2_hits"); h != "" {
				line += fmt.Sprintf(" l2(hit/miss)=%v/%v", h, get("l2_misses"))
			}
			fmt.Fprintf(os.Stderr, "%s %v\n", line, d.Round(time.Millisecond))
		}
	}

	start := time.Now()
	suite, err := experiment.Sweep(ctx, opts)
	if err != nil {
		if errors.Is(err, interrupt.ErrCanceled) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ucp-bench: interrupted — sweep aborted, partial results discarded")
			os.Exit(130)
		}
		exitOn(err)
	}
	if *traceDir != "" {
		rec.Release() // seal the root span; the deferred second call is a no-op
		if err := cliutil.SaveTrace(*traceDir, "bench-sweep", rec.Tree()); err != nil {
			fmt.Fprintln(os.Stderr, "trace sink:", err)
		}
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		exitOn(err)
		exitOn(suite.WriteCSV(f))
		exitOn(f.Close())
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		exitOn(err)
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "ucp-bench: %d use cases in %v\n\n", len(suite.Cells), time.Since(start).Round(time.Second))
	if *all {
		exitOn(suite.Headline(w))
		fmt.Fprintln(w)
		exitOn(suite.Figure3(w))
		fmt.Fprintln(w)
		exitOn(suite.Figure4(w))
		fmt.Fprintln(w)
		exitOn(suite.Figure5(w))
		fmt.Fprintln(w)
		exitOn(suite.Figure7(w))
		fmt.Fprintln(w)
		exitOn(suite.Figure8(w))
		if hierSweep(suite) {
			fmt.Fprintln(w)
			exitOn(suite.HierarchyFrontier(w))
		}
		return
	}
	switch *figure {
	case 3:
		exitOn(suite.Figure3(w))
	case 4:
		exitOn(suite.Figure4(w))
	case 5:
		exitOn(suite.Figure5(w))
	case 7:
		exitOn(suite.Figure7(w))
	case 8:
		exitOn(suite.Figure8(w))
	case 9:
		exitOn(suite.HierarchyFrontier(w))
	default:
		fmt.Fprintln(os.Stderr, "unknown figure; want 3, 4, 5, 7, 8 or 9")
		os.Exit(2)
	}
}

// hierSweep reports whether any cell of the sweep ran a two-level
// hierarchy (the hierarchy frontier is only worth rendering then).
func hierSweep(s *experiment.Suite) bool {
	for _, c := range s.Cells {
		if c.HasL2() {
			return true
		}
	}
	return false
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
