// Command ucp-wcet runs the cache-aware WCET analysis on one benchmark
// program and prints the classification statistics and the memory
// contribution to the WCET, optionally cross-checking the structural solver
// against the IPET integer linear program.
//
// Usage:
//
//	ucp-wcet -program crc -config k14 -tech 45nm [-policy lru|fifo|plru] [-ilp] [-contexts] [-trace]
//	ucp-wcet -program crc -config k14 -tech 45nm -trace-dir /tmp/traces   # durable span tree
//	ucp-wcet -program crc -config k1 -l2-assoc 4 -l2-block-bytes 32 -l2-capacity-bytes 8192
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ucp/internal/absint"
	"ucp/internal/cache"
	"ucp/internal/cliutil"
	"ucp/internal/energy"
	"ucp/internal/ipet"
	"ucp/internal/obs"
	"ucp/internal/wcet"
)

func main() {
	var (
		program  = flag.String("program", "crc", "benchmark program name")
		config   = flag.String("config", "k14", "cache configuration label k1..k36")
		policy   = flag.String("policy", "lru", "cache replacement policy: lru, fifo, or plru")
		tech     = flag.String("tech", "45nm", "process technology: 45nm or 32nm")
		ilpCheck = flag.Bool("ilp", false, "cross-check the structural solver against the IPET ILP")
		contexts = flag.Bool("contexts", false, "print the per-context classification table")
		trace    = flag.Bool("trace", false, "print the pipeline span tree (where the analysis time went)")
		traceDir = flag.String("trace-dir", "", "persist the analysis span tree to this durable trace-sink directory (implies recording)")
	)
	l2Flag := cliutil.L2Flags(nil)
	flag.Parse()

	b, err := cliutil.Benchmark(*program)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	_, cfg, tn, err := cliutil.ConfigTech(*config, *tech)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.Policy, err = cliutil.Policy(*policy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	l2, err := l2Flag()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h := cache.Hier1(cfg)
	h.L2 = l2
	if err := h.Valid(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	mdl := energy.NewModelHier(h, tn)
	ctx := context.Background()
	var rec *obs.Recorder
	if *trace || *traceDir != "" {
		rec = obs.NewRecorder("wcet")
		ctx = rec.Install(ctx)
	}
	res, err := wcet.AnalyzeHier(ctx, b.Prog, h, mdl.WCETParams())
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}

	var ah, am, nc int64
	for _, xb := range res.X.Blocks {
		for _, cl := range res.AI.Class[xb.ID] {
			switch cl {
			case absint.AlwaysHit:
				ah++
			case absint.AlwaysMiss:
				am++
			default:
				nc++
			}
		}
	}
	total := ah + am + nc

	fmt.Printf("program    %s (%s): %d instructions, %d expanded references in %d contexts\n",
		b.Name, b.ID, b.Prog.NInstr(), total, len(res.X.Blocks))
	fmt.Printf("cache      %s %v\n", *config, cfg)
	if h.HasL2() {
		fmt.Printf("L2         %v\n", h.L2)
		fmt.Printf("timing     hit=%d l2hit=%d miss=%d Λ=%d cycles\n",
			res.Par.HitCycles, res.Par.HitCycles+res.Par.L2HitCycles, res.Par.MissCycles(), res.Par.Lambda)
	} else {
		fmt.Printf("timing     hit=%d miss=%d Λ=%d cycles\n", res.Par.HitCycles, res.Par.MissCycles(), res.Par.Lambda)
	}
	fmt.Println()
	fmt.Printf("classification  AH %d (%.1f%%)  AM %d (%.1f%%)  NC %d (%.1f%%)\n",
		ah, pct(ah, total), am, pct(am, total), nc, pct(nc, total))
	if res.AI2 != nil {
		var ah2, am2, nc2 int64
		for _, xb := range res.X.Blocks {
			for _, cl := range res.AI2.Class[xb.ID] {
				switch cl {
				case absint.AlwaysHit:
					ah2++
				case absint.AlwaysMiss:
					am2++
				default:
					nc2++
				}
			}
		}
		fmt.Printf("L2 class        AH %d (%.1f%%)  AM %d (%.1f%%)  NC %d (%.1f%%)\n",
			ah2, pct(ah2, total), am2, pct(am2, total), nc2, pct(nc2, total))
	}
	if h.HasL2() {
		fmt.Printf("τ_w             %d cycles over %d WCET-scenario fetches (%d L1 misses, %d L2 misses)\n",
			res.TauW, res.Fetches, res.Misses, res.L2Misses)
	} else {
		fmt.Printf("τ_w             %d cycles over %d WCET-scenario fetches (%d misses)\n",
			res.TauW, res.Fetches, res.Misses)
	}

	if *ilpCheck {
		form, err := ipet.BuildExtra(res.X, res.Cost, res.Extra)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipet:", err)
			os.Exit(1)
		}
		ref, err := form.Solve()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ilp:", err)
			os.Exit(1)
		}
		status := "MATCH"
		if ref.TauW != res.TauW {
			status = "MISMATCH"
		}
		fmt.Printf("IPET ILP        τ_w = %d  [%s]\n", ref.TauW, status)
	}

	if rec != nil {
		rec.Release()
		if *trace {
			fmt.Println("\ntrace (span, wall time, attributes):")
			cliutil.PrintSpanTree(os.Stdout, rec.Tree(), 1)
		}
		if err := cliutil.SaveTrace(*traceDir, "wcet-"+b.Name, rec.Tree()); err != nil {
			fmt.Fprintln(os.Stderr, "trace sink:", err)
		}
	}

	if *contexts {
		fmt.Println("\nper-context summary (block, context, n_w, AH/AM/NC):")
		for _, xb := range res.X.Blocks {
			var a, m, n int
			for _, cl := range res.AI.Class[xb.ID] {
				switch cl {
				case absint.AlwaysHit:
					a++
				case absint.AlwaysMiss:
					m++
				default:
					n++
				}
			}
			fmt.Printf("  bb%-4d %-8s n_w=%-6d AH=%-4d AM=%-4d NC=%-4d\n",
				xb.Orig, xb.Ctx, res.Nw[xb.ID], a, m, n)
		}
	}
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
