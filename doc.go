// Package ucp is the root of the unlocked-cache prefetching reproduction:
// a WCET-safe software-prefetch insertion framework with its full analysis
// stack (VIVU expansion, must/may abstract interpretation, IPET) and the
// evaluation harness reproducing every figure and table of the paper
// "Reconciling real-time guarantees and energy efficiency through
// unlocked-cache prefetching" (DAC 2013).
//
// The root package only anchors the module documentation and the
// benchmark suite in bench_test.go; the implementation lives under
// internal/ (see DESIGN.md for the map) and the runnable entry points
// under cmd/ and examples/.
package ucp
